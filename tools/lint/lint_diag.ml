(* Diagnostics and inline suppression comments.

   A diagnostic prints as

     lib/util/int_sorted.ml:3:13: [L1] polymorphic comparison in a hot-path library: `compare'
       hint: use Int.compare / String.compare or a comparator from the element's module

   Suppression: a comment of the form

     (* apex_lint: allow L2 -- bounds established by the loop header *)

   disables the named rule(s) on every line the comment spans and on the
   line immediately after it, so it works both trailing an offending
   expression and on its own line above one. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : Lint_rules.rule;
  ident : string;  (* the offending identifier or construct, for the message *)
  hint : string;
}

let of_location ~file ~rule ~ident ~hint (loc : Location.t) =
  let p = loc.loc_start in
  { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; ident; hint }

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else String.compare (Lint_rules.rule_id a.rule) (Lint_rules.rule_id b.rule)

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s: `%s'@.  hint: %s@." d.file d.line d.col
    (Lint_rules.rule_id d.rule)
    (Lint_rules.rule_title d.rule)
    d.ident d.hint

(* --- suppression comments --- *)

type suppression = { from_line : int; to_line : int; rules : Lint_rules.rule list }

(* Scan [text] for OCaml comments (tracking nesting and string literals
   well enough for our own sources) and extract apex_lint directives. *)
let scan_suppressions text =
  let n = String.length text in
  let line = ref 1 in
  let sups = ref [] in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  let parse_directive body from_line to_line =
    (* body is the comment payload; look for "apex_lint:" then "allow"
       then one or more rule ids. *)
    let find_sub s sub =
      let ls = String.length s and lb = String.length sub in
      let rec go i = if i + lb > ls then None else if String.sub s i lb = sub then Some i else go (i + 1) in
      go 0
    in
    match find_sub body "apex_lint:" with
    | None -> ()
    | Some at ->
      let rest = String.sub body (at + 10) (String.length body - at - 10) in
      (match find_sub rest "allow" with
       | None -> ()
       | Some at' ->
         let rest = String.sub rest (at' + 5) (String.length rest - at' - 5) in
         (* only the run of rule-id tokens right after "allow" counts;
            the free-text reason may mention rule ids without enabling them *)
         let tokens =
           String.split_on_char ' ' rest
           |> List.concat_map (String.split_on_char ',')
           |> List.filter (fun t -> t <> "")
         in
         let rec take acc = function
           | t :: tl ->
             (match Lint_rules.rule_of_id t with
              | Some r -> take (r :: acc) tl
              | None -> acc)
           | [] -> acc
         in
         let rules = take [] tokens in
         if rules <> [] then
           sups := { from_line; to_line = to_line + 1; rules } :: !sups)
  in
  while !i < n do
    let c = text.[!i] in
    if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let from_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        let c = text.[!i] in
        bump c;
        if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
          incr depth;
          incr i
        end
        else if c = '*' && !i + 1 < n && text.[!i + 1] = ')' then begin
          decr depth;
          incr i
        end
        else Buffer.add_char buf c;
        incr i
      done;
      parse_directive (Buffer.contents buf) from_line !line
    end
    else if c = '"' then begin
      (* skip string literal so comment openers inside strings are ignored *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        let c = text.[!i] in
        bump c;
        if c = '\\' && !i + 1 < n then i := !i + 2
        else begin
          if c = '"' then fin := true;
          incr i
        end
      done
    end
    else begin
      bump c;
      incr i
    end
  done;
  !sups

let suppressions_of_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> scan_suppressions text
  | exception Sys_error _ -> []

let is_suppressed sups d =
  List.exists
    (fun s -> d.line >= s.from_line && d.line <= s.to_line && List.mem d.rule s.rules)
    sups
