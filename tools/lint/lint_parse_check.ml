(* Parsetree-mode checks: a syntactic approximation used when no
   up-to-date .cmt is available for a file. Identifier matching is by
   written name (`compare`, `List.nth`, ...), so aliased or shadowed
   names can escape it — the typedtree checker (lint_typed_check.ml) is
   the authoritative pass. *)

open Parsetree

let flatten_lident (l : Longident.t) =
  match Longident.flatten l with exception _ -> [] | parts -> parts

(* Strip a leading Stdlib so `Stdlib.compare` and `compare` match alike. *)
let normalize = function "Stdlib" :: rest -> rest | parts -> parts

let l1_idents = [ [ "compare" ]; [ "min" ]; [ "max" ]; [ "Hashtbl"; "hash" ] ]

let l2_idents =
  [
    [ "Array"; "unsafe_get" ];
    [ "Array"; "unsafe_set" ];
    [ "Bytes"; "unsafe_get" ];
    [ "Bytes"; "unsafe_set" ];
    [ "String"; "unsafe_get" ];
  ]

let l3_idents = [ [ "List"; "nth" ]; [ "List"; "hd" ]; [ "Option"; "get" ] ]

let l5_idents = [ [ "Obj"; "magic" ] ]

(* The full-decode entry point, as written from lib/apex (bare module
   name via the wrapped-library alias, or fully qualified). *)
let l7_idents =
  [
    [ "Extent_codec"; "decode_all" ];
    [ "Repro_storage"; "Extent_codec"; "decode_all" ];
  ]

(* Functions that print straight to stdout/stderr. Formatter-parameterized
   printers (Format.fprintf ppf, pp_print_string ppf) and string builders
   (Printf.sprintf) are fine — the caller chooses the sink. *)
let l6_idents =
  [
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ];
    [ "print_string" ];
    [ "print_endline" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "prerr_string" ];
    [ "prerr_endline" ];
    [ "prerr_newline" ];
  ]

(* Syntactic L9: a top-level binding whose right-hand side is (or starts
   with) an application of a mutable-state allocator. The typed pass
   (lint_escape.ml) is the authoritative one — it judges the binding's
   *type* through the transitive mutability map — but the common global
   patterns (`let enabled = ref false`, `let cache = Hashtbl.create 16`)
   are recognizable from syntax alone. *)
let l9_alloc_idents =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
  ]

let l9_alloc_head (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let parts = normalize (flatten_lident txt) in
    if List.mem parts l9_alloc_idents then Some (String.concat "." parts) else None
  | _ -> None

(* Does the top level of a try-handler pattern catch everything? We must
   not fire on wildcards nested under a constructor (e.g. Failure _). *)
let rec catches_all (p : pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> catches_all a || catches_all b
  | Ppat_alias (p, _) -> catches_all p
  | Ppat_constraint (p, _) -> catches_all p
  | _ -> false

let check ~(scope : Lint_rules.scope) ~file (str : structure) : Lint_diag.t list =
  let diags = ref [] in
  let emit rule ident hint loc =
    diags := Lint_diag.of_location ~file ~rule ~ident ~hint loc :: !diags
  in
  let check_ident loc lid =
    let parts = normalize (flatten_lident lid) in
    let name = String.concat "." parts in
    if scope.hot_path && List.mem parts l1_idents then
      emit L1 name (Lint_rules.l1_hint name) loc;
    if (not scope.l2_allowed) && List.mem parts l2_idents then
      emit L2 name Lint_rules.l2_hint loc;
    if scope.lib_code && List.mem parts l3_idents then
      emit L3 name (Lint_rules.l3_hint name) loc;
    if List.mem parts l5_idents then emit L5 name Lint_rules.l5_hint loc;
    if scope.no_direct_print && List.mem parts l6_idents then
      emit L6 name Lint_rules.l6_hint loc;
    if scope.no_full_decode && List.mem parts l7_idents then
      emit L7 name Lint_rules.l7_hint loc
  in
  let super = Ast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } -> check_ident loc txt
     | Pexp_try (_, cases) ->
       List.iter
         (fun c ->
           if catches_all c.pc_lhs then
             emit L4 "try ... with _ ->" Lint_rules.l4_hint c.pc_lhs.ppat_loc)
         cases
     | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it str;
  (* top-level structure items only: a let-bound table inside a function
     body is per-call state, not a global *)
  if scope.global_audit then
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              match l9_alloc_head vb.pvb_expr with
              | Some alloc when Lint_mutmap.guard_tag vb.pvb_attributes = None ->
                emit L9 alloc Lint_rules.l9_hint vb.pvb_pat.ppat_loc
              | _ -> ())
            vbs
        | _ -> ())
      str;
  !diags
