(* Escape checking for the epoch-snapshot freeze discipline.

   Given the shared-root reachability computed by Lint_mutmap, this pass
   finds every program point that mutates state reachable from a shared
   root and classifies it:

     Guarded tag   the mutated field (or the field path it was reached
                   through) carries [@apex.guarded "tag"]: the mutation
                   follows a named discipline the server layer enforces.
                   Recorded in the guarded-mutation inventory.
     Writer        the file is part of the single-writer surface
                   (Lint_rules.writer_dirs/writer_files). Inventory.
     Owner         the site lives in the defining module of the mutated
                   type: its own maintenance API. Inventory; the call
                   graph reports who can reach it.
     Violation     anything else — rule L8.

   Mutation sites are detected structurally: record-field assignment, and
   applications of the known mutator functions of the stdlib containers
   (:=, Array.set, Hashtbl.replace, Buffer.add_*, ...). The target is
   resolved by walking the projection chain (t.cache.tbl): the innermost
   expression whose type head is shared-reachable decides, and any
   [@apex.guarded] tag on a crossed field takes precedence. Known
   approximation (documented in DESIGN.md): a builtin container first
   aliased to a plain let-binding and mutated through the alias escapes the
   chain walk; declared intermediate types do not, because their type head
   is itself in the reachability map.

   The same pass audits top-level bindings for rule L9: a binding whose
   type is transitively mutable (and not a function) is hidden cross-domain
   sharing. Atomic.t globals are domain-safe by construction and only
   inventoried; [@@apex.guarded "tag"] bindings are inventoried under their
   tag. For function bindings, a mutable allocation on the let-spine above
   the lambda (the memoized-closure pattern: `let c = ref 0 in fun () ->
   ...`) is flagged when the closure references it. *)

open Typedtree

type site_class = Guarded of string | Writer | Owner | Violation

let class_id = function
  | Guarded _ -> "guarded"
  | Writer -> "writer"
  | Owner -> "owner"
  | Violation -> "violation"

type site = {
  s_file : string;
  s_line : int;
  s_col : int;
  s_op : string;  (* "<- extent" or "Hashtbl.replace" *)
  s_target : string;  (* reachability key, e.g. "Extent_store.cache" *)
  s_fn : string;  (* enclosing top-level binding, "Apex.flush_dirty" *)
  s_class : site_class;
}

type global_class = Gmutable | Gatomic | Gguarded of string

type global_entry = {
  g_file : string;
  g_line : int;
  g_name : string;
  g_type : string;  (* leading mutability reasons, for the report *)
  g_class : global_class;
}

(* --- the stdlib mutator table: normalized path -> mutated arg index --- *)

let mutators =
  [
    ([ ":=" ], 0);
    ([ "incr" ], 0);
    ([ "decr" ], 0);
    ([ "Array"; "set" ], 0);
    ([ "Array"; "unsafe_set" ], 0);
    ([ "Array"; "fill" ], 0);
    ([ "Array"; "blit" ], 2);
    ([ "Array"; "sort" ], 1);
    ([ "Array"; "stable_sort" ], 1);
    ([ "Array"; "fast_sort" ], 1);
    ([ "Bytes"; "set" ], 0);
    ([ "Bytes"; "unsafe_set" ], 0);
    ([ "Bytes"; "fill" ], 0);
    ([ "Bytes"; "blit" ], 2);
    ([ "Bytes"; "blit_string" ], 2);
    ([ "Hashtbl"; "add" ], 0);
    ([ "Hashtbl"; "replace" ], 0);
    ([ "Hashtbl"; "remove" ], 0);
    ([ "Hashtbl"; "reset" ], 0);
    ([ "Hashtbl"; "clear" ], 0);
    ([ "Hashtbl"; "filter_map_inplace" ], 1);
    ([ "Buffer"; "add_char" ], 0);
    ([ "Buffer"; "add_string" ], 0);
    ([ "Buffer"; "add_bytes" ], 0);
    ([ "Buffer"; "add_subbytes" ], 0);
    ([ "Buffer"; "add_substring" ], 0);
    ([ "Buffer"; "add_buffer" ], 0);
    ([ "Buffer"; "clear" ], 0);
    ([ "Buffer"; "reset" ], 0);
    ([ "Buffer"; "truncate" ], 0);
    ([ "Queue"; "push" ], 1);
    ([ "Queue"; "add" ], 1);
    ([ "Queue"; "pop" ], 0);
    ([ "Queue"; "take" ], 0);
    ([ "Queue"; "clear" ], 0);
    ([ "Stack"; "push" ], 1);
    ([ "Stack"; "pop" ], 0);
    ([ "Stack"; "clear" ], 0);
    ([ "Atomic"; "set" ], 0);
    ([ "Atomic"; "exchange" ], 0);
    ([ "Atomic"; "compare_and_set" ], 0);
    ([ "Atomic"; "fetch_and_add" ], 0);
    ([ "Atomic"; "incr" ], 0);
    ([ "Atomic"; "decr" ], 0);
    ([ "Weak"; "set" ], 0);
    ([ "Vec"; "push" ], 0);
    ([ "Vec"; "set" ], 0);
    ([ "Vec"; "clear" ], 0);
  ]

let normalize_expr_path (p : Path.t) =
  Option.map Lint_mutmap.normalize_parts (Lint_mutmap.flatten_path p)

(* --- target resolution --- *)

(* head key of an expression's type, resolved against the current module *)
let head_of_type ~modname (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Lint_mutmap.head_key ~modname p
  | _ -> None

(* Walk the projection chain of the mutated expression, innermost first.
   Returns the first shared-reachable hit: (key, guard), where guard is a
   tag found on a crossed field, else the reachability entry's tag. *)
let shared_target ~(reach : Lint_mutmap.reach) ~modname (e : expression) =
  let rec go (e : expression) pending_guard =
    let here =
      match head_of_type ~modname e.exp_type with
      | Some key ->
        (match Hashtbl.find_opt reach key with
         | Some (entry : Lint_mutmap.reach_entry) ->
           let guard =
             match pending_guard with Some _ -> pending_guard | None -> entry.guard
           in
           Some (key, guard)
         | None -> None)
      | None -> None
    in
    match here with
    | Some _ -> here
    | None ->
      (match e.exp_desc with
       | Texp_field (e', _, ld) ->
         let pending =
           match Lint_mutmap.guard_tag ld.lbl_attributes with
           | Some t -> Some t
           | None -> pending_guard
         in
         go e' pending
       | _ -> None)
  in
  go e None

let owner_module key =
  match String.index_opt key '.' with
  | Some i -> String.sub key 0 i
  | None -> key

let classify ~(scope : Lint_rules.scope) ~modname ~guard ~key =
  match guard with
  | Some tag -> Guarded tag
  | None ->
    if scope.writer_side then Writer
    else if owner_module key = modname then Owner
    else Violation

(* --- the pass --- *)

type result = {
  diags : Lint_diag.t list;
  sites : site list;
  globals : global_entry list;
}

let alloc_heads =
  [
    [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Buffer"; "create" ];
    [ "Array"; "make" ]; [ "Array"; "init" ]; [ "Array"; "create_float" ];
    [ "Bytes"; "create" ]; [ "Bytes"; "make" ]; [ "Queue"; "create" ];
    [ "Stack"; "create" ];
  ]

let is_mut_alloc (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, _) ->
    (match normalize_expr_path path with
     | Some parts -> List.mem parts alloc_heads
     | None -> false)
  | _ -> false

(* The ident a simple binding introduces. A type-constrained binding
   (`let ring : t = ...`) types as Tpat_alias over the constrained
   pattern, so both shapes must be accepted. *)
let binding_ident (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias (_, id, _) -> Some id
  | _ -> None

(* Mutable allocations bound on the let-spine of [e], above any lambda:
   these outlive every call of the function the spine ends in. *)
let rec spine_mut_allocs acc (e : expression) =
  match e.exp_desc with
  | Texp_let (_, vbs, body) ->
    let acc =
      List.fold_left
        (fun acc (vb : value_binding) ->
          match binding_ident vb.vb_pat with
          | Some id when is_mut_alloc vb.vb_expr -> id :: acc
          | _ -> acc)
        acc vbs
    in
    spine_mut_allocs acc body
  | _ -> acc

let closure_capture (e : expression) =
  match spine_mut_allocs [] e with
  | [] -> None
  | muts ->
    let found = ref None in
    let super = Tast_iterator.default_iterator in
    let expr it (e' : expression) =
      (match e'.exp_desc with
       | Texp_ident (Path.Pident id, { loc; _ }, _)
         when List.exists (Ident.same id) muts ->
         if !found = None then found := Some (Ident.name id, loc)
       | _ -> ());
      super.expr it e'
    in
    let it = { super with expr } in
    it.expr it e;
    !found

let check ~(table : Lint_mutmap.table) ~(reach : Lint_mutmap.reach)
    ~(scope : Lint_rules.scope) ~modname ~file (str : structure) : result =
  let diags = ref [] and sites = ref [] and globals = ref [] in
  let current_mod = ref modname in
  let fn_stack = ref [] in
  let current_fn () =
    match !fn_stack with
    | name :: _ -> name
    | [] -> !current_mod ^ ".<toplevel>"
  in
  let emit rule ident hint (loc : Location.t) =
    if not loc.Location.loc_ghost then
      diags := Lint_diag.of_location ~file ~rule ~ident ~hint loc :: !diags
  in
  let record_site ~op ~key ~guard (loc : Location.t) =
    let cls = classify ~scope ~modname:!current_mod ~guard ~key in
    let p = loc.Location.loc_start in
    sites :=
      {
        s_file = file;
        s_line = p.pos_lnum;
        s_col = p.pos_cnum - p.pos_bol;
        s_op = op;
        s_target = key;
        s_fn = current_fn ();
        s_class = cls;
      }
      :: !sites;
    match cls with
    | Violation ->
      emit Lint_rules.L8
        (Printf.sprintf "%s on %s" op key)
        Lint_rules.l8_hint loc
    | _ -> ()
  in
  let consider_mutation ~op (target : expression) (loc : Location.t) =
    if scope.shared_escape then
      match shared_target ~reach ~modname:!current_mod target with
      | Some (key, guard) -> record_site ~op ~key ~guard loc
      | None -> ()
  in
  (* mutation-site detection inside expressions *)
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_setfield (obj, { loc; _ }, ld, _) ->
       if scope.shared_escape then begin
         (* a guard on the assigned field itself wins over the chain *)
         let field_guard = Lint_mutmap.guard_tag ld.lbl_attributes in
         match (field_guard, shared_target ~reach ~modname:!current_mod obj) with
         | Some tag, Some (key, _) ->
           record_site ~op:("<- " ^ ld.lbl_name) ~key ~guard:(Some tag) loc
         | _, Some (key, guard) ->
           record_site ~op:("<- " ^ ld.lbl_name) ~key ~guard loc
         | _, None -> ()
       end
     | Texp_apply ({ exp_desc = Texp_ident (path, { loc; _ }, _); _ }, args) ->
       (match normalize_expr_path path with
        | Some parts ->
          (match List.assoc_opt parts mutators with
           | Some idx ->
             let plain =
               List.filter_map
                 (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
                 args
             in
             (match List.nth_opt plain idx with
              | Some target ->
                consider_mutation ~op:(String.concat "." parts) target loc
              | None -> ())
           | None -> ())
        | None -> ())
     | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  let audit_binding (vb : value_binding) =
    match binding_ident vb.vb_pat with
    | Some id ->
      let name = Ident.name id in
      let loc = vb.vb_pat.pat_loc in
      let line = loc.Location.loc_start.pos_lnum in
      let binding_guard = Lint_mutmap.guard_tag vb.vb_attributes in
      let is_arrow =
        match Types.get_desc vb.vb_pat.pat_type with Tarrow _ -> true | _ -> false
      in
      let add_global cls ty =
        globals :=
          { g_file = file; g_line = line; g_name = !current_mod ^ "." ^ name;
            g_type = ty; g_class = cls }
          :: !globals
      in
      if is_arrow then begin
        match closure_capture vb.vb_expr with
        | Some (captured, cloc) ->
          (match binding_guard with
           | Some tag -> add_global (Gguarded tag) ("closure over " ^ captured)
           | None ->
             add_global Gmutable ("closure over " ^ captured);
             emit Lint_rules.L9
               (Printf.sprintf "%s (closure over %s)" name captured)
               Lint_rules.l9_hint cloc)
        | None -> ()
      end
      else begin
        match Lint_mutmap.verdict_of_type table ~modname:!current_mod vb.vb_pat.pat_type with
        | Imm | Opaque _ -> ()
        | Mut { atomic_only = true; reasons } ->
          add_global Gatomic (String.concat ", " reasons)
        | Mut { reasons; _ } ->
          let ty = String.concat ", " reasons in
          (match binding_guard with
           | Some tag -> add_global (Gguarded tag) ty
           | None ->
             add_global Gmutable ty;
             emit Lint_rules.L9
               (Printf.sprintf "%s : %s" name ty)
               Lint_rules.l9_hint loc)
      end
    | _ -> ()
  in
  let rec walk_items items =
    List.iter
      (fun (item : structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              if scope.global_audit then audit_binding vb;
              let name =
                match binding_ident vb.vb_pat with
                | Some id -> !current_mod ^ "." ^ Ident.name id
                | None -> !current_mod ^ ".<pattern>"
              in
              fn_stack := name :: !fn_stack;
              it.expr it vb.vb_expr;
              fn_stack := List.tl !fn_stack)
            vbs
        | Tstr_module mb -> walk_module mb
        | Tstr_recmodule mbs -> List.iter walk_module mbs
        | _ -> it.structure_item it item)
      items
  and walk_module (mb : module_binding) =
    let submod = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let saved = !current_mod in
    (match mb.mb_expr.mod_desc with
     | Tmod_structure s ->
       current_mod := submod;
       walk_items s.str_items
     | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
       current_mod := submod;
       walk_items s.str_items
     | _ -> ());
    current_mod := saved
  in
  walk_items str.str_items;
  { diags = !diags; sites = !sites; globals = !globals }
