(* Rule catalogue and scoping for apex_lint.

   The rules encode the performance discipline the extent-join engine
   relies on (see DESIGN.md "Static guarantees"): no polymorphic
   structural comparison on hot paths, bounds-unchecked array access
   only in audited kernels, no accidentally-quadratic list accessors in
   library code, no swallowed exceptions, no [Obj.magic] at all, and no
   direct console printing from library code — observability goes through
   lib/telemetry, presentation through lib/harness. *)

type rule = L1 | L2 | L3 | L4 | L5 | L6 | L7

let rule_id = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"
  | L7 -> "L7"

let rule_title = function
  | L1 -> "polymorphic comparison in a hot-path library"
  | L2 -> "unsafe array access outside the kernel allowlist"
  | L3 -> "partial stdlib function in library code"
  | L4 -> "exception-swallowing wildcard handler"
  | L5 -> "Obj.magic"
  | L6 -> "direct console printing outside telemetry/harness"
  | L7 -> "full extent decode in a decode-on-gallop query path"

let rule_of_id = function
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | "L6" -> Some L6
  | "L7" -> Some L7
  | _ -> None

(* What a given source file is subject to. Derived from its path by
   [scope_of_path]; tests construct scopes directly. *)
type scope = {
  hot_path : bool;  (* L1 applies: lib/util, lib/graph, lib/storage, lib/apex *)
  l2_allowed : bool;  (* file is an audited kernel: Array.unsafe_* permitted *)
  lib_code : bool;  (* L3 applies: anything under lib/ *)
  no_direct_print : bool;
      (* L6 applies: lib/ except the layers whose job is output —
         lib/telemetry (exporters) and lib/harness (report tables) *)
  no_full_decode : bool;
      (* L7 applies: lib/apex query modules must not call
         Extent_codec.decode_all — compaction and persistence
         (apex_persist.ml) are the sanctioned full-materialization
         paths *)
}

let hot_path_dirs = [ "lib/util"; "lib/graph"; "lib/storage"; "lib/apex" ]

let print_exempt_dirs = [ "lib/telemetry"; "lib/harness" ]

(* Kernel modules audited for manual bounds reasoning; everything else
   must use checked accessors or carry an explicit suppression. *)
let unsafe_kernel_files = [ "int_sorted.ml"; "edge_set.ml"; "vec.ml" ]

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let p = if String.length p > 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2) else p in
  p

let path_has_prefix ~prefix p =
  let lp = String.length prefix and l = String.length p in
  l >= lp && String.sub p 0 lp = prefix
  && (l = lp || p.[lp] = '/')

let scope_of_path path =
  let p = normalize_path path in
  let base = Filename.basename p in
  let lib_code = path_has_prefix ~prefix:"lib" p in
  {
    hot_path = List.exists (fun d -> path_has_prefix ~prefix:d p) hot_path_dirs;
    l2_allowed = List.mem base unsafe_kernel_files;
    lib_code;
    no_direct_print =
      lib_code && not (List.exists (fun d -> path_has_prefix ~prefix:d p) print_exempt_dirs);
    no_full_decode = path_has_prefix ~prefix:"lib/apex" p && base <> "apex_persist.ml";
  }

(* Hints keyed by the offending identifier, shared by both checkers. *)
let l3_hint = function
  | "List.nth" -> "index-addressed access is O(n); iterate the list once, or use an array/Vec"
  | "List.hd" -> "match on the list and handle [] explicitly"
  | "List.tl" -> "match on the list and handle [] explicitly"
  | "Option.get" -> "match on the option and report what was missing in the None branch"
  | _ -> "replace the partial function with an explicit match"

let l1_hint = function
  | "compare" -> "use Int.compare / String.compare or a comparator from the element's module"
  | "min" | "max" -> "Stdlib.min/max call polymorphic compare; use Int.min/Int.max or an if-then-else"
  | "Hashtbl.hash" -> "polymorphic hashing walks the whole value; hash a monomorphic key instead"
  | _ -> "use a monomorphic comparison for the element type"

let l2_hint =
  "Array.unsafe_* is reserved for the audited kernels ("
  ^ String.concat ", " unsafe_kernel_files
  ^ "); use checked access, or suppress with (* apex_lint: allow L2 -- <reason> *)"

let l4_hint =
  "a bare `with _ ->` swallows Stack_overflow, Out_of_memory and bugs alike; \
   match the exceptions you expect (e.g. Not_found) explicitly"

let l5_hint = "Obj.magic defeats the type system; redesign the interface instead"

let l6_hint =
  "library code must not write to the console: record through \
   Repro_telemetry (Metrics/Trace), return data for lib/harness to render, \
   or take an explicit Format.formatter; suppress with \
   (* apex_lint: allow L6 -- <reason> *) if the print is deliberate"

let l7_hint =
  "Extent_codec.decode_all materializes the whole extent and defeats the \
   block skip tests; query kernels must use Extent_store's view API \
   (load_view / view_semijoin_*), or suppress with \
   (* apex_lint: allow L7 -- <reason> *) on a compaction/persist path"
