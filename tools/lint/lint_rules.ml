(* Rule catalogue and scoping for apex_lint.

   The rules encode the performance discipline the extent-join engine
   relies on (see DESIGN.md "Static guarantees"): no polymorphic
   structural comparison on hot paths, bounds-unchecked array access
   only in audited kernels, no accidentally-quadratic list accessors in
   library code, no swallowed exceptions, no [Obj.magic] at all, and no
   direct console printing from library code — observability goes through
   lib/telemetry, presentation through lib/harness. *)

type rule = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8 | L9

let rule_id = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"
  | L7 -> "L7"
  | L8 -> "L8"
  | L9 -> "L9"

let rule_title = function
  | L1 -> "polymorphic comparison in a hot-path library"
  | L2 -> "unsafe array access outside the kernel allowlist"
  | L3 -> "partial stdlib function in library code"
  | L4 -> "exception-swallowing wildcard handler"
  | L5 -> "Obj.magic"
  | L6 -> "direct console printing outside telemetry/harness"
  | L7 -> "full extent decode in a decode-on-gallop query path"
  | L8 -> "mutation of state reachable from a shared index root"
  | L9 -> "top-level mutable global in library code"

let rule_of_id = function
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | "L6" -> Some L6
  | "L7" -> Some L7
  | "L8" -> Some L8
  | "L9" -> Some L9
  | _ -> None

(* What a given source file is subject to. Derived from its path by
   [scope_of_path]; tests construct scopes directly. *)
type scope = {
  hot_path : bool;  (* L1 applies: lib/util, lib/graph, lib/storage, lib/apex *)
  l2_allowed : bool;  (* file is an audited kernel: Array.unsafe_* permitted *)
  lib_code : bool;  (* L3 applies: anything under lib/ *)
  no_direct_print : bool;
      (* L6 applies: lib/ except the layers whose job is output —
         lib/telemetry (exporters) and lib/harness (report tables) *)
  no_full_decode : bool;
      (* L7 applies: lib/apex query modules must not call
         Extent_codec.decode_all — compaction and persistence
         (apex_persist.ml) are the sanctioned full-materialization
         paths *)
  shared_escape : bool;
      (* L8 applies: lib/ code may not mutate state reachable from an
         [@@apex.shared] root unless the site is writer-side, owned by
         the type's defining module, or covered by [@apex.guarded] *)
  writer_side : bool;
      (* the file is part of the single-writer surface (lib/update,
         lib/adaptive, and the index build/persist modules): its
         mutations of shared state classify as writer-side, not L8 *)
  global_audit : bool;
      (* L9 applies: top-level mutable values in lib/ are hidden
         cross-domain sharing *)
}

let hot_path_dirs = [ "lib/util"; "lib/graph"; "lib/storage"; "lib/apex" ]

(* The modules allowed to mutate shared index state: the update/self-tuning
   writer layers, plus the build/maintenance/persist surface of the index
   itself. Everything else must go through [@apex.guarded] state or earn a
   justified suppression. *)
let writer_dirs = [ "lib/update"; "lib/adaptive" ]

let writer_files =
  [ "lib/apex/apex.ml"; "lib/apex/apex_persist.ml"; "lib/apex/apex_spec.ml" ]

let print_exempt_dirs = [ "lib/telemetry"; "lib/harness" ]

(* Kernel modules audited for manual bounds reasoning; everything else
   must use checked accessors or carry an explicit suppression. *)
let unsafe_kernel_files = [ "int_sorted.ml"; "edge_set.ml"; "vec.ml" ]

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  let p = if String.length p > 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2) else p in
  p

let path_has_prefix ~prefix p =
  let lp = String.length prefix and l = String.length p in
  l >= lp && String.sub p 0 lp = prefix
  && (l = lp || p.[lp] = '/')

let scope_of_path path =
  let p = normalize_path path in
  let base = Filename.basename p in
  let lib_code = path_has_prefix ~prefix:"lib" p in
  {
    hot_path = List.exists (fun d -> path_has_prefix ~prefix:d p) hot_path_dirs;
    l2_allowed = List.mem base unsafe_kernel_files;
    lib_code;
    no_direct_print =
      lib_code && not (List.exists (fun d -> path_has_prefix ~prefix:d p) print_exempt_dirs);
    no_full_decode = path_has_prefix ~prefix:"lib/apex" p && base <> "apex_persist.ml";
    shared_escape = lib_code;
    writer_side =
      List.exists (fun d -> path_has_prefix ~prefix:d p) writer_dirs
      || List.mem p writer_files;
    global_audit = lib_code;
  }

(* Hints keyed by the offending identifier, shared by both checkers. *)
let l3_hint = function
  | "List.nth" -> "index-addressed access is O(n); iterate the list once, or use an array/Vec"
  | "List.hd" -> "match on the list and handle [] explicitly"
  | "List.tl" -> "match on the list and handle [] explicitly"
  | "Option.get" -> "match on the option and report what was missing in the None branch"
  | _ -> "replace the partial function with an explicit match"

let l1_hint = function
  | "compare" -> "use Int.compare / String.compare or a comparator from the element's module"
  | "min" | "max" -> "Stdlib.min/max call polymorphic compare; use Int.min/Int.max or an if-then-else"
  | "Hashtbl.hash" -> "polymorphic hashing walks the whole value; hash a monomorphic key instead"
  | _ -> "use a monomorphic comparison for the element type"

let l2_hint =
  "Array.unsafe_* is reserved for the audited kernels ("
  ^ String.concat ", " unsafe_kernel_files
  ^ "); use checked access, or suppress with (* apex_lint: allow L2 -- <reason> *)"

let l4_hint =
  "a bare `with _ ->` swallows Stack_overflow, Out_of_memory and bugs alike; \
   match the exceptions you expect (e.g. Not_found) explicitly"

let l5_hint = "Obj.magic defeats the type system; redesign the interface instead"

let l6_hint =
  "library code must not write to the console: record through \
   Repro_telemetry (Metrics/Trace), return data for lib/harness to render, \
   or take an explicit Format.formatter; suppress with \
   (* apex_lint: allow L6 -- <reason> *) if the print is deliberate"

let l7_hint =
  "Extent_codec.decode_all materializes the whole extent and defeats the \
   block skip tests; query kernels must use Extent_store's view API \
   (load_view / view_semijoin_*), or suppress with \
   (* apex_lint: allow L7 -- <reason> *) on a compaction/persist path"

let l8_hint =
  "readers share this state once the server publishes an epoch: move the \
   mutation into the writer surface (lib/update, lib/adaptive), annotate the \
   field or type with [@apex.guarded \"<discipline>\"] if it is a cache with \
   its own safety story, or suppress with \
   (* apex_lint: allow L8 -- <reason> *)"

let l9_hint =
  "a top-level mutable value is shared by every domain in the process: move \
   it into instance state threaded from the caller, make it an Atomic.t, or \
   annotate the binding [@@apex.guarded \"<discipline>\"] with the reason it \
   is safe (or suppress with (* apex_lint: allow L9 -- <reason> *))"
