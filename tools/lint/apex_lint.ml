(* apex_lint — project-specific static analysis for the APEX reproduction.

   Usage: apex_lint [--build-dir DIR] [--verbose] ROOT...

   Checks every .ml under the given roots against the project rules
   L1–L5 (see tools/lint/lint_rules.ml and DESIGN.md "Static
   guarantees"). Exit status is 1 when any diagnostic fires. *)

let () =
  let build_dir = ref "_build/default" in
  let verbose = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--build-dir",
        Arg.Set_string build_dir,
        "DIR dune context root holding .cmt files (default _build/default)" );
      ("--verbose", Arg.Set verbose, " always print the summary line");
    ]
  in
  Arg.parse spec
    (fun r -> roots := r :: !roots)
    "apex_lint [--build-dir DIR] [--verbose] ROOT...";
  let roots = match List.rev !roots with [] -> [ "lib"; "bin"; "bench" ] | rs -> rs in
  exit (Apex_lint_core.Lint_engine.run ~build_dir:!build_dir ~verbose:!verbose roots)
