(* The machine-readable lint report behind `apexctl lint-report`.

   One JSON document per run, stable under re-runs of the same tree
   (every section is sorted), so CI can archive it per PR and diff it:

     version          report format version
     summary          file/finding counts
     mutability       every declared type in the build with its verdict
                      (immutable | opaque | mutable), the reasons, and
                      whether it is an [@@apex.shared] root
     shared_reach     the set of types reachable from shared roots, each
                      with the guard discipline of the path it was
                      reached through
     findings         the L1..L9 diagnostics that survived suppression
     mutation_sites   every shared-state mutation the escape pass found,
                      classified (guarded/writer/owner/violation) and
                      annotated with the call-graph entry points that
                      reach it — the punch-list the server PR consumes
     globals          the top-level mutable-state inventory (mutable /
                      atomic / guarded)

   The document is validated against schemas/lint_report_schema.json, a
   mini-contract in the same style as the trace exporter's schema:
   required field -> JSON type name per section, plus the legal kind
   sets for verdicts and site classes. *)

module Json = Repro_telemetry.Json

type input = {
  table : Lint_mutmap.table;
  reach : Lint_mutmap.reach;
  graph : Lint_callgraph.t;
  diags : Lint_diag.t list;  (* post-suppression, deduplicated *)
  sites : Lint_escape.site list;
  globals : Lint_escape.global_entry list;
  files_checked : int;
  files_typed : int;
}

let opt_str = function Some s -> Json.Str s | None -> Json.Null

let verdict_fields = function
  | Lint_mutmap.Imm -> (Json.Arr [], false)
  | Lint_mutmap.Opaque gaps ->
    (Json.Arr (List.map (fun g -> Json.Str g) (List.sort_uniq String.compare gaps)), false)
  | Lint_mutmap.Mut { reasons; atomic_only } ->
    ( Json.Arr (List.map (fun r -> Json.Str r) (List.sort_uniq String.compare reasons)),
      atomic_only )

let mutability_json t =
  let decls = ref [] in
  Lint_mutmap.iter_decls t (fun d -> decls := d :: !decls);
  !decls
  |> List.sort (fun (a : Lint_mutmap.decl) b -> String.compare a.key b.key)
  |> List.map (fun (d : Lint_mutmap.decl) ->
         let v =
           Option.value (Lint_mutmap.verdict t d.key) ~default:(Lint_mutmap.Opaque [])
         in
         let reasons, atomic_only = verdict_fields v in
         Json.Obj
           [
             ("type", Json.Str d.key);
             ("library", Json.Str d.library);
             ("verdict", Json.Str (Lint_mutmap.verdict_id v));
             ("atomic_only", Json.Bool atomic_only);
             ("reasons", reasons);
             ("shared", Json.Bool d.shared);
             ("guard", opt_str d.type_guard);
           ])

let reach_json (reach : Lint_mutmap.reach) =
  Hashtbl.fold (fun key (e : Lint_mutmap.reach_entry) acc -> (key, e) :: acc) reach []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (key, (e : Lint_mutmap.reach_entry)) ->
         Json.Obj
           [ ("type", Json.Str key); ("guard", opt_str e.guard); ("via", Json.Str e.via) ])

let findings_json diags =
  List.map
    (fun (d : Lint_diag.t) ->
      Json.Obj
        [
          ("rule", Json.Str (Lint_rules.rule_id d.rule));
          ("title", Json.Str (Lint_rules.rule_title d.rule));
          ("file", Json.Str d.file);
          ("line", Json.Num (float_of_int d.line));
          ("col", Json.Num (float_of_int d.col));
          ("ident", Json.Str d.ident);
        ])
    (List.sort Lint_diag.compare_diag diags)

let sites_json graph (sites : Lint_escape.site list) =
  (* one reachability query per distinct enclosing function *)
  let reach_memo = Hashtbl.create 32 in
  let reachable_from fn =
    match Hashtbl.find_opt reach_memo fn with
    | Some r -> r
    | None ->
      let r = Lint_callgraph.reachers graph [ fn ] in
      Hashtbl.add reach_memo fn r;
      r
  in
  sites
  |> List.sort (fun (a : Lint_escape.site) b ->
         let c = String.compare a.s_file b.s_file in
         if c <> 0 then c
         else
           let c = Int.compare a.s_line b.s_line in
           if c <> 0 then c
           else
             let c = Int.compare a.s_col b.s_col in
             if c <> 0 then c else String.compare a.s_op b.s_op)
  |> List.map (fun (s : Lint_escape.site) ->
         let guard =
           match s.s_class with Lint_escape.Guarded tag -> Some tag | _ -> None
         in
         Json.Obj
           [
             ("file", Json.Str s.s_file);
             ("line", Json.Num (float_of_int s.s_line));
             ("col", Json.Num (float_of_int s.s_col));
             ("op", Json.Str s.s_op);
             ("target", Json.Str s.s_target);
             ("fn", Json.Str s.s_fn);
             ("class", Json.Str (Lint_escape.class_id s.s_class));
             ("guard", opt_str guard);
             ( "reachable_from",
               Json.Arr (List.map (fun f -> Json.Str f) (reachable_from s.s_fn)) );
           ])

let globals_json (globals : Lint_escape.global_entry list) =
  globals
  |> List.sort (fun (a : Lint_escape.global_entry) b ->
         let c = String.compare a.g_file b.g_file in
         if c <> 0 then c else Int.compare a.g_line b.g_line)
  |> List.map (fun (g : Lint_escape.global_entry) ->
         let cls, guard =
           match g.g_class with
           | Lint_escape.Gmutable -> ("mutable", None)
           | Lint_escape.Gatomic -> ("atomic", None)
           | Lint_escape.Gguarded tag -> ("guarded", Some tag)
         in
         Json.Obj
           [
             ("file", Json.Str g.g_file);
             ("line", Json.Num (float_of_int g.g_line));
             ("name", Json.Str g.g_name);
             ("state", Json.Str g.g_type);
             ("class", Json.Str cls);
             ("guard", opt_str guard);
           ])

let count p l = List.length (List.filter p l)

let build (i : input) : Json.t =
  let class_count c =
    count (fun (s : Lint_escape.site) -> Lint_escape.class_id s.s_class = c) i.sites
  in
  let escape_findings =
    count (fun (d : Lint_diag.t) -> d.rule = Lint_rules.L8 || d.rule = Lint_rules.L9) i.diags
  in
  Json.Obj
    [
      ("version", Json.Num 1.);
      ( "summary",
        Json.Obj
          [
            ("files_checked", Json.Num (float_of_int i.files_checked));
            ("files_typed", Json.Num (float_of_int i.files_typed));
            ("findings", Json.Num (float_of_int (List.length i.diags)));
            ("escape_findings", Json.Num (float_of_int escape_findings));
            ("violation_sites", Json.Num (float_of_int (class_count "violation")));
            ("guarded_sites", Json.Num (float_of_int (class_count "guarded")));
            ("writer_sites", Json.Num (float_of_int (class_count "writer")));
            ("owner_sites", Json.Num (float_of_int (class_count "owner")));
          ] );
      ("mutability", Json.Arr (mutability_json i.table));
      ("shared_reach", Json.Arr (reach_json i.reach));
      ("findings", Json.Arr (findings_json i.diags));
      ("mutation_sites", Json.Arr (sites_json i.graph i.sites));
      ("globals", Json.Arr (globals_json i.globals));
    ]

let to_string json = Json.to_string json

(* --- schema validation (mini-contract, same style as Export.Schema) --- *)

module Schema = struct
  type shape = {
    required : (string * string) list;
    kinds_field : string option;
    kinds : string list;
  }

  type t = (string * shape) list  (* section name -> shape *)

  let shape_of_json j =
    let required =
      match Json.member "required" j with
      | Some (Json.Obj fields) ->
        List.filter_map (fun (k, v) -> Option.map (fun t -> (k, t)) (Json.to_str v)) fields
      | _ -> []
    in
    let kinds_field = Option.bind (Json.member "kinds_field" j) Json.to_str in
    let kinds =
      match Json.member "kinds" j with
      | Some (Json.Arr items) -> List.filter_map Json.to_str items
      | _ -> []
    in
    { required; kinds_field; kinds }

  let load path =
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | text ->
      (match Json.parse text with
       | Error e -> Error (Printf.sprintf "%s: %s" path e)
       | Ok (Json.Obj sections) ->
         Ok (List.map (fun (name, j) -> (name, shape_of_json j)) sections)
       | Ok _ -> Error (Printf.sprintf "%s: schema must be a JSON object" path))

  let check_shape (shape : shape) ctx j errors =
    List.iter
      (fun (field, expected) ->
        match Json.member field j with
        | None -> errors := Printf.sprintf "%s: missing %S" ctx field :: !errors
        | Some v ->
          let actual = Json.type_name v in
          (* "guard" style fields are declared at their non-null type; null
             means absent and is always legal *)
          if actual <> expected && actual <> "null" then
            errors :=
              Printf.sprintf "%s: field %S is %s, expected %s" ctx field actual expected
              :: !errors)
      shape.required;
    match shape.kinds_field with
    | None -> ()
    | Some field ->
      (match Option.bind (Json.member field j) Json.to_str with
       | Some v when not (List.mem v shape.kinds) ->
         errors := Printf.sprintf "%s: %S = %S not in schema kinds" ctx field v :: !errors
       | _ -> ())

  (* root array field -> the schema section describing its items *)
  let item_sections =
    [
      ("mutability", "mutability_item");
      ("shared_reach", "shared_reach_item");
      ("findings", "finding_item");
      ("mutation_sites", "site_item");
      ("globals", "global_item");
    ]

  let validate (schema : t) (json : Json.t) =
    let errors = ref [] in
    (match List.assoc_opt "top" schema with
     | Some shape -> check_shape shape "report" json errors
     | None -> errors := "schema: missing \"top\" section" :: !errors);
    List.iter
      (fun (field, section) ->
        match (List.assoc_opt section schema, Json.member field json) with
        | Some shape, Some (Json.Arr items) ->
          List.iteri
            (fun idx item ->
              check_shape shape (Printf.sprintf "%s[%d]" field idx) item errors)
            items
        | None, _ ->
          errors := Printf.sprintf "schema: missing %S section" section :: !errors
        | Some _, _ -> ()  (* missing/ill-typed root field already reported by top *))
      item_sections;
    match !errors with [] -> Ok () | errs -> Error (List.rev errs)
end
