(* Typedtree-mode checks: run on the .cmt produced by the normal build,
   so identifier matching is by resolved [Path.t] — aliasing, shadowing
   and `open` cannot fool it — and expression types are available.

   The extra precision over the parsetree pass is in L1:

   - `compare`, `min`, `max` and `Hashtbl.hash` are flagged in hot-path
     code wherever they occur: `min`/`max`/`Hashtbl.hash` are ordinary
     functions that always call the generic C comparator/hasher, and a
     `compare` that today sits where the compiler would specialize it
     degrades silently the moment it is wrapped or the type generalizes
     — hot code must name `Int.compare` (or the element module's
     comparator) instead.

   - The infix operators (`=`, `<>`, `<`, ...) are flagged only when
     they actually compile to the generic comparator: a direct
     application at a type the compiler specializes (int, char, string,
     float, ...) is allowed. Type abbreviations (`Label.t = int`,
     `nid = int`) are expanded through the environment stored in the
     .cmt, exactly as the compiler itself expands them in Translprim. *)

open Typedtree

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply _ | Path.Pextra_ty _ -> []

(* `List.nth` resolves to Stdlib.List.nth; written as Stdlib__List.nth it
   resolves to the prefixed compilation unit. Normalize both to List.nth. *)
let normalize_component c =
  let pre = "Stdlib__" in
  let lp = String.length pre in
  if String.length c > lp && String.sub c 0 lp = pre then
    String.capitalize_ascii (String.sub c lp (String.length c - lp))
  else c

let normalize_path p =
  match List.map normalize_component (flatten_path p) with
  | "Stdlib" :: rest -> rest
  | parts -> parts

(* always flagged in hot-path code *)
let banned_fns = [ [ "compare" ]; [ "min" ]; [ "max" ]; [ "Hashtbl"; "hash" ] ]

(* flagged unless directly applied at a compiler-specialized type *)
let infix_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let l2_idents = Lint_parse_check.l2_idents
let l3_idents = Lint_parse_check.l3_idents
let l5_idents = Lint_parse_check.l5_idents
let l6_idents = Lint_parse_check.l6_idents
let l7_idents = Lint_parse_check.l7_idents

(* Types at which the compiler specializes %compare/%equal and friends
   (Translprim's base types). *)
let specialized_paths =
  Predef.
    [
      path_int;
      path_char;
      path_bool;
      path_unit;
      path_string;
      path_bytes;
      path_float;
      path_int32;
      path_int64;
      path_nativeint;
    ]

let is_specialized_type ~env (ty : Types.type_expr) =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> List.exists (Path.same p) specialized_paths
  | _ -> false

let rec catches_all (p : value general_pattern) =
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_or (a, b, _) -> catches_all a || catches_all b
  | Tpat_alias (p, _, _) -> catches_all p
  | _ -> false

let loc_key (loc : Location.t) = (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

(* [expand_env] lifts the per-expression environment into one usable for
   abbreviation expansion. The engine passes [Envaux.env_of_only_summary]
   (cmt environments are stored as summaries); in-process callers that
   hold real environments pass [Fun.id]. The fallback never expands. *)
let check ?(expand_env = fun (_ : Env.t) -> Env.empty) ~(scope : Lint_rules.scope)
    ~file (str : structure) : Lint_diag.t list =
  let diags = ref [] in
  let emit rule ident hint loc =
    if not loc.Location.loc_ghost then
      diags := Lint_diag.of_location ~file ~rule ~ident ~hint loc :: !diags
  in
  (* infix-operator idents already judged at their application site *)
  let handled : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let check_ident loc path =
    let parts = normalize_path path in
    let name = String.concat "." parts in
    if scope.hot_path then begin
      if List.mem parts banned_fns then emit L1 name (Lint_rules.l1_hint name) loc;
      (match parts with
       | [ op ] when List.mem op infix_ops ->
         if not (Hashtbl.mem handled (loc_key loc)) then
           (* the operator escapes as a first-class value: every later
              call goes through the generic C comparator *)
           emit L1 name (Lint_rules.l1_hint name) loc
       | _ -> ())
    end;
    if (not scope.l2_allowed) && List.mem parts l2_idents then
      emit L2 name Lint_rules.l2_hint loc;
    if scope.lib_code && List.mem parts l3_idents then
      emit L3 name (Lint_rules.l3_hint name) loc;
    if List.mem parts l5_idents then emit L5 name Lint_rules.l5_hint loc;
    if scope.no_direct_print && List.mem parts l6_idents then
      emit L6 name Lint_rules.l6_hint loc;
    if scope.no_full_decode && List.mem parts l7_idents then
      emit L7 name Lint_rules.l7_hint loc
  in
  let super = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
     | Texp_apply ({ exp_desc = Texp_ident (path, { loc; _ }, _); _ }, args)
       when scope.hot_path ->
       (match normalize_path path with
        | [ op ] when List.mem op infix_ops ->
          Hashtbl.replace handled (loc_key loc) ();
          let plain_args =
            List.filter_map
              (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
              args
          in
          (match plain_args with
           | a :: _ :: _ when List.length args = 2 ->
             let env = try expand_env a.exp_env with _ -> Env.empty in
             if not (is_specialized_type ~env a.exp_type) then
               emit L1 op (Lint_rules.l1_hint op) loc
           | _ ->
             (* partial application: a polymorphic closure escapes *)
             emit L1 op (Lint_rules.l1_hint op) loc)
        | _ -> ())
     | Texp_ident (path, { loc; _ }, _) -> check_ident loc path
     | Texp_try (_, cases) ->
       List.iter
         (fun c ->
           if catches_all c.c_lhs then
             emit L4 "try ... with _ ->" Lint_rules.l4_hint c.c_lhs.pat_loc)
         cases
     | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it str;
  !diags
