(* Whole-program call graph over top-level value bindings.

   Nodes are "Module.fn" (submodule bindings are "Submodule.fn", matching
   the mutability map's key convention). Edges are the global identifiers a
   binding's body references, filtered — once every file has been added —
   down to identifiers that are themselves nodes. The graph is an
   over-approximation (a referenced function counts as called even if the
   reference only escapes as a value), which is the safe direction for the
   question it answers: from which functions is a shared-state mutation
   site reachable?

   The escape pass records the enclosing binding of every mutation site; the
   report combines the two to publish, per mutator, the set of entry points
   that can reach it. *)

type t = {
  defs : (string, Location.t) Hashtbl.t;  (* node -> definition site *)
  refs : (string, string list) Hashtbl.t;  (* node -> referenced idents (raw) *)
}

let create () = { defs = Hashtbl.create 256; refs = Hashtbl.create 256 }

let binding_names (pat : Typedtree.pattern) =
  let acc = ref [] in
  let rec go (p : Typedtree.pattern) =
    match p.pat_desc with
    | Tpat_var (id, _) -> acc := (Ident.name id, p.pat_loc) :: !acc
    | Tpat_alias (p, id, _) ->
      acc := (Ident.name id, p.pat_loc) :: !acc;
      go p
    | Tpat_tuple ps -> List.iter go ps
    | _ -> ()
  in
  go pat;
  !acc

(* every global identifier referenced under [e], by normalized name *)
let collect_refs (e : Typedtree.expression) =
  let acc = ref [] in
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
     | Texp_ident (path, _, _) ->
       (match Option.map Lint_mutmap.normalize_parts (Lint_mutmap.flatten_path path) with
        | Some ([ _ ] as parts) | Some ([ _; _ ] as parts) ->
          acc := String.concat "." parts :: !acc
        | Some parts when parts <> [] ->
          (* keep the last two components: "Repro_apex.Gapex.make_edge"
             -> "Gapex.make_edge" *)
          let rec last2 = function
            | [ a; b ] -> a ^ "." ^ b
            | _ :: tl -> last2 tl
            | [] -> assert false
          in
          acc := last2 parts :: !acc
        | _ -> ())
     | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !acc

let rec add_structure t ~modname (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            List.iter
              (fun (name, loc) ->
                let node = modname ^ "." ^ name in
                Hashtbl.replace t.defs node loc;
                let refs = collect_refs vb.vb_expr in
                let prev = Option.value (Hashtbl.find_opt t.refs node) ~default:[] in
                Hashtbl.replace t.refs node (refs @ prev))
              (binding_names vb.vb_pat))
          vbs
      | Tstr_module mb -> add_module_binding t mb
      | Tstr_recmodule mbs -> List.iter (add_module_binding t) mbs
      | _ -> ())
    str.str_items

and add_module_binding t (mb : Typedtree.module_binding) =
  let submod = match mb.mb_name.txt with Some n -> n | None -> "_" in
  match mb.mb_expr.mod_desc with
  | Tmod_structure str -> add_structure t ~modname:submod str
  | Tmod_constraint ({ mod_desc = Tmod_structure str; _ }, _, _, _) ->
    add_structure t ~modname:submod str
  | _ -> ()

(* callers: reverse edges restricted to known nodes. An unqualified
   reference ("helper") is resolved against the caller's own module. *)
let callers_index t =
  let callers : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun caller refs ->
      let caller_mod =
        match String.index_opt caller '.' with
        | Some i -> String.sub caller 0 i
        | None -> caller
      in
      List.iter
        (fun r ->
          let callee =
            if Hashtbl.mem t.defs r then Some r
            else
              let local = caller_mod ^ "." ^ r in
              if String.contains r '.' then None
              else if Hashtbl.mem t.defs local then Some local
              else None
          in
          match callee with
          | Some callee when callee <> caller ->
            let prev = Option.value (Hashtbl.find_opt callers callee) ~default:[] in
            if not (List.mem caller prev) then
              Hashtbl.replace callers callee (caller :: prev)
          | _ -> ())
        refs)
    t.refs;
  callers

(* all nodes that can reach any of [seeds] (inclusive), i.e. the functions
   from which a mutation inside a seed is reachable *)
let reachers t seeds =
  let callers = callers_index t in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter (fun s -> if not (Hashtbl.mem seen s) then begin
    Hashtbl.add seen s ();
    Queue.add s queue
  end) seeds;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter
      (fun c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          Queue.add c queue
        end)
      (Option.value (Hashtbl.find_opt callers n) ~default:[])
  done;
  Hashtbl.fold (fun n () acc -> n :: acc) seen []
  |> List.sort String.compare
