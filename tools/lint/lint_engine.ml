(* Driver: file discovery, .cmt lookup, per-file dispatch.

   Each .ml file is checked from its typedtree when the build tree holds
   a .cmt whose recorded source digest matches the file on disk (so a
   stale artifact can never produce stale line numbers); otherwise the
   file is parsed directly and checked syntactically. `dune build @lint`
   depends on `@check`, so in practice every file gets the typed pass. *)

type mode = Typed | Parse

(* --- .cmt index: source path -> cmt path + source digest --- *)

type cmt_entry = { cmt_path : string; source_digest : Digest.t option }
type cmt_index = (string, cmt_entry) Hashtbl.t

let rec walk_files dir ~keep_hidden acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then
          if name = "_build" || name = "_opam" || name = ".git"
             || ((not keep_hidden) && String.length name > 0 && name.[0] = '.')
          then acc
          else walk_files path ~keep_hidden acc
        else path :: acc)
      acc entries

let build_cmt_index build_dir : cmt_index =
  let index = Hashtbl.create 128 in
  if Sys.file_exists build_dir && Sys.is_directory build_dir then
    (* .cmt files live under dot-directories like .repro_util.objs, so
       hidden directories must be traversed here *)
    walk_files build_dir ~keep_hidden:true []
    |> List.iter (fun path ->
           if Filename.check_suffix path ".cmt" then
             match Cmt_format.read_cmt path with
             | exception _ -> ()
             | infos ->
               (match infos.Cmt_format.cmt_sourcefile with
                | Some src ->
                  Hashtbl.replace index
                    (Lint_rules.normalize_path src)
                    { cmt_path = path; source_digest = infos.Cmt_format.cmt_source_digest }
                | None -> ()));
  index

let typedtree_for (index : cmt_index) file =
  match Hashtbl.find_opt index (Lint_rules.normalize_path file) with
  | None -> None
  | Some { cmt_path; source_digest } ->
    let fresh =
      match source_digest with
      | Some d -> ( match Digest.file file with exception _ -> false | d' -> d = d')
      | None -> false
    in
    if not fresh then None
    else
      (match Cmt_format.read_cmt cmt_path with
       | exception _ -> None
       | { Cmt_format.cmt_annots = Implementation str; cmt_loadpath; _ } ->
         Some (str, cmt_loadpath)
       | _ -> None)

(* --- per-file dispatch --- *)

let lint_file ?scope ?(build_dir = "_build/default") ~(cmt_index : cmt_index) file =
  let scope =
    match scope with Some s -> s | None -> Lint_rules.scope_of_path file
  in
  let sups = Lint_diag.suppressions_of_file file in
  let mode, diags =
    match typedtree_for cmt_index file with
    | Some (str, loadpath) ->
      (* Point the compiler's load path at the .cmi files this unit was
         compiled against, so type abbreviations (Label.t = int, ...)
         expand exactly as they did during compilation. The recorded
         entries are relative to the dune context root. *)
      let entries =
        List.map
          (fun d -> if Filename.is_relative d then Filename.concat build_dir d else d)
          loadpath
      in
      Load_path.init ~auto_include:Load_path.no_auto_include entries;
      Envaux.reset_cache ();
      let expand_env env = Envaux.env_of_only_summary env in
      (Typed, Lint_typed_check.check ~expand_env ~scope ~file str)
    | None ->
      ( Parse,
        Lint_parse_check.check ~scope ~file
          (Pparse.parse_implementation ~tool_name:"apex_lint" file) )
  in
  (mode, List.filter (fun d -> not (Lint_diag.is_suppressed sups d)) diags)

(* --- tree runner --- *)

let discover_ml roots =
  roots
  |> List.concat_map (fun root ->
         if Sys.is_directory root then walk_files root ~keep_hidden:false []
         else [ root ])
  |> List.filter (fun p -> Filename.check_suffix p ".ml")
  |> List.map Lint_rules.normalize_path
  |> List.sort_uniq String.compare

let run ~build_dir ~verbose roots =
  let cmt_index = build_cmt_index build_dir in
  let files = discover_ml roots in
  let typed = ref 0 and parsed = ref 0 and errors = ref 0 in
  let all = ref [] in
  List.iter
    (fun file ->
      match lint_file ~build_dir ~cmt_index file with
      | Typed, diags ->
        incr typed;
        all := diags @ !all
      | Parse, diags ->
        incr parsed;
        all := diags @ !all
      | exception exn ->
        incr errors;
        Format.eprintf "apex_lint: cannot analyse %s: %s@." file
          (Printexc.to_string exn))
    files;
  let diags = List.sort Lint_diag.compare_diag !all in
  List.iter (fun d -> Format.printf "%a" Lint_diag.pp d) diags;
  if verbose || diags <> [] || !errors > 0 then
    Format.printf "apex_lint: %d file(s) checked (%d typedtree, %d parsetree), %d issue(s)%s@."
      (!typed + !parsed) !typed !parsed (List.length diags)
      (if !errors > 0 then Format.sprintf ", %d analysis error(s)" !errors else "");
  if diags = [] && !errors = 0 then 0 else 1
