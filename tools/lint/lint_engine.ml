(* Driver: file discovery, .cmt lookup, per-file dispatch.

   Each .ml file is checked from its typedtree when the build tree holds
   a .cmt whose recorded source digest matches the file on disk (so a
   stale artifact can never produce stale line numbers); otherwise the
   file is parsed directly and checked syntactically. `dune build @lint`
   depends on `@check`, so in practice every file gets the typed pass. *)

type mode = Typed | Parse

(* --- .cmt index: source path -> cmt path + source digest --- *)

type cmt_entry = { cmt_path : string; source_digest : Digest.t option }
type cmt_index = (string, cmt_entry) Hashtbl.t

let rec walk_files dir ~keep_hidden acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then
          if name = "_build" || name = "_opam" || name = ".git"
             || ((not keep_hidden) && String.length name > 0 && name.[0] = '.')
          then acc
          else walk_files path ~keep_hidden acc
        else path :: acc)
      acc entries

let build_cmt_index build_dir : cmt_index =
  let index = Hashtbl.create 128 in
  if Sys.file_exists build_dir && Sys.is_directory build_dir then
    (* .cmt files live under dot-directories like .repro_util.objs, so
       hidden directories must be traversed here *)
    walk_files build_dir ~keep_hidden:true []
    |> List.iter (fun path ->
           if Filename.check_suffix path ".cmt" then
             match Cmt_format.read_cmt path with
             | exception _ -> ()
             | infos ->
               (match infos.Cmt_format.cmt_sourcefile with
                | Some src ->
                  Hashtbl.replace index
                    (Lint_rules.normalize_path src)
                    { cmt_path = path; source_digest = infos.Cmt_format.cmt_source_digest }
                | None -> ()));
  index

let typedtree_for (index : cmt_index) file =
  match Hashtbl.find_opt index (Lint_rules.normalize_path file) with
  | None -> None
  | Some { cmt_path; source_digest } ->
    let fresh =
      match source_digest with
      | Some d -> ( match Digest.file file with exception _ -> false | d' -> d = d')
      | None -> false
    in
    if not fresh then None
    else
      (match Cmt_format.read_cmt cmt_path with
       | exception _ -> None
       | { Cmt_format.cmt_annots = Implementation str; cmt_loadpath; _ } ->
         Some (str, cmt_loadpath)
       | _ -> None)

(* --- whole-program context for the escape pass ---

   Built once per run from every .cmt in the build tree: the transitive
   mutability map (with its [@@apex.shared] roots and reachability
   closure) and the call graph. Each cmt is read exactly once and feeds
   both. *)

type global_ctx = {
  table : Lint_mutmap.table;
  reach : Lint_mutmap.reach;
  graph : Lint_callgraph.t;
}

let build_global_ctx build_dir : global_ctx =
  let table = Lint_mutmap.create () in
  let graph = Lint_callgraph.create () in
  if Sys.file_exists build_dir && Sys.is_directory build_dir then
    walk_files build_dir ~keep_hidden:true []
    |> List.sort String.compare
    |> List.iter (fun path ->
           if Filename.check_suffix path ".cmt" then
             match Cmt_format.read_cmt path with
             | exception _ -> ()
             | infos ->
               (match infos.Cmt_format.cmt_annots with
                | Implementation str ->
                  let modname =
                    Lint_mutmap.unwrap_component infos.Cmt_format.cmt_modname
                  in
                  let library = Lint_mutmap.library_of_cmt_path path in
                  Lint_mutmap.add_structure table ~library ~modname str;
                  Lint_callgraph.add_structure graph ~modname str
                | _ -> ()));
  { table; reach = Lint_mutmap.reachability table; graph }

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* --- per-file dispatch --- *)

(* [global] enables the interprocedural L8/L9 escape pass on the typed
   path; [on_escape] receives the raw escape result (mutation sites and
   the global-state inventory) for report assembly. Diagnostics from the
   base pass and the escape pass can overlap (both walk the same tree),
   so the combined list is deduplicated by (file, line, col, rule). *)
let lint_file ?scope ?(build_dir = "_build/default") ?global
    ?(on_escape = fun (_ : Lint_escape.result) -> ()) ~(cmt_index : cmt_index) file =
  let scope =
    match scope with Some s -> s | None -> Lint_rules.scope_of_path file
  in
  let sups = Lint_diag.suppressions_of_file file in
  let mode, diags =
    match typedtree_for cmt_index file with
    | Some (str, loadpath) ->
      (* Point the compiler's load path at the .cmi files this unit was
         compiled against, so type abbreviations (Label.t = int, ...)
         expand exactly as they did during compilation. The recorded
         entries are relative to the dune context root. *)
      let entries =
        List.map
          (fun d -> if Filename.is_relative d then Filename.concat build_dir d else d)
          loadpath
      in
      Load_path.init ~auto_include:Load_path.no_auto_include entries;
      Envaux.reset_cache ();
      let expand_env env = Envaux.env_of_only_summary env in
      let base = Lint_typed_check.check ~expand_env ~scope ~file str in
      let escape_diags =
        match global with
        | None -> []
        | Some { table; reach; _ } ->
          let r =
            Lint_escape.check ~table ~reach ~scope
              ~modname:(module_name_of_file file) ~file str
          in
          on_escape r;
          r.Lint_escape.diags
      in
      (Typed, escape_diags @ base)
    | None ->
      ( Parse,
        Lint_parse_check.check ~scope ~file
          (Pparse.parse_implementation ~tool_name:"apex_lint" file) )
  in
  let diags = List.filter (fun d -> not (Lint_diag.is_suppressed sups d)) diags in
  (mode, List.sort_uniq Lint_diag.compare_diag diags)

(* --- tree runner --- *)

let discover_ml roots =
  roots
  |> List.concat_map (fun root ->
         if Sys.is_directory root then walk_files root ~keep_hidden:false []
         else [ root ])
  |> List.filter (fun p -> Filename.check_suffix p ".ml")
  |> List.map Lint_rules.normalize_path
  |> List.sort_uniq String.compare

type run_result = {
  ctx : global_ctx;
  diags : Lint_diag.t list;  (* post-suppression, deduplicated, sorted *)
  sites : Lint_escape.site list;
  globals : Lint_escape.global_entry list;
  typed : int;
  parsed : int;
  errors : int;
}

let analyze ~build_dir roots : run_result =
  let cmt_index = build_cmt_index build_dir in
  let ctx = build_global_ctx build_dir in
  let files = discover_ml roots in
  let typed = ref 0 and parsed = ref 0 and errors = ref 0 in
  let all = ref [] and sites = ref [] and globals = ref [] in
  let on_escape (r : Lint_escape.result) =
    sites := r.sites @ !sites;
    globals := r.globals @ !globals
  in
  List.iter
    (fun file ->
      match lint_file ~build_dir ~global:ctx ~on_escape ~cmt_index file with
      | Typed, diags ->
        incr typed;
        all := diags @ !all
      | Parse, diags ->
        incr parsed;
        all := diags @ !all
      | exception exn ->
        incr errors;
        Format.eprintf "apex_lint: cannot analyse %s: %s@." file
          (Printexc.to_string exn))
    files;
  {
    ctx;
    diags = List.sort_uniq Lint_diag.compare_diag !all;
    sites = !sites;
    globals = !globals;
    typed = !typed;
    parsed = !parsed;
    errors = !errors;
  }

let run ~build_dir ~verbose roots =
  let r = analyze ~build_dir roots in
  List.iter (fun d -> Format.printf "%a" Lint_diag.pp d) r.diags;
  if verbose || r.diags <> [] || r.errors > 0 then
    Format.printf "apex_lint: %d file(s) checked (%d typedtree, %d parsetree), %d issue(s)%s@."
      (r.typed + r.parsed) r.typed r.parsed (List.length r.diags)
      (if r.errors > 0 then Format.sprintf ", %d analysis error(s)" r.errors else "");
  if r.diags = [] && r.errors = 0 then 0 else 1

(* Build the JSON lint report (see lint_report.ml), optionally validate it
   against a schema, and write it to [out] (stdout when "-"). Exit status:
   2 on schema violation or analysis error, 1 when any non-suppressed
   L8/L9 finding remains, 0 otherwise. *)
let run_report ~build_dir ?schema_path ~out roots =
  let r = analyze ~build_dir roots in
  let report =
    Lint_report.build
      {
        Lint_report.table = r.ctx.table;
        reach = r.ctx.reach;
        graph = r.ctx.graph;
        diags = r.diags;
        sites = r.sites;
        globals = r.globals;
        files_checked = r.typed + r.parsed;
        files_typed = r.typed;
      }
  in
  let text = Lint_report.to_string report in
  (match out with
   | "-" -> print_endline text
   | path ->
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc text;
         output_char oc '\n'));
  let schema_ok =
    match schema_path with
    | None -> true
    | Some sp ->
      (match Lint_report.Schema.load sp with
       | Error e ->
         Format.eprintf "lint-report: cannot load schema: %s@." e;
         false
       | Ok schema ->
         (match Lint_report.Schema.validate schema report with
          | Ok () -> true
          | Error errs ->
            List.iter (fun e -> Format.eprintf "lint-report: schema: %s@." e) errs;
            false))
  in
  let escape_findings =
    List.filter
      (fun (d : Lint_diag.t) -> d.rule = Lint_rules.L8 || d.rule = Lint_rules.L9)
      r.diags
  in
  List.iter (fun d -> Format.eprintf "%a" Lint_diag.pp d) escape_findings;
  if (not schema_ok) || r.errors > 0 then 2
  else if escape_findings <> [] then 1
  else 0
