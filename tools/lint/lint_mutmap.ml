(* Transitive mutability map.

   For every type declared in the build (read from the .cmt files the
   normal compilation produces, grouped and cached per dune library), the
   map answers: is mutable state reachable through a value of this type?
   The lattice is

     Imm < Opaque < Mut

   - [Imm]    only immutable structure is reachable;
   - [Opaque] the analysis hit something it cannot see through (an
              abstract type with no recorded implementation, a functor
              application, a first-class module) — treated as clean but
              reported so the gap is visible;
   - [Mut]    mutable state is reachable: mutable record fields, [ref],
              [array]/[bytes], [Hashtbl.t], [Buffer.t], [Queue.t],
              [Stack.t], [lazy_t] (forcing races under domains), or a
              function type (a closure may capture any of the above).
              [atomic_only] is true when every mutable leaf is an
              [Atomic.t] or a lock — mutable, but domain-safe by
              construction.

   Two annotations drive the escape pass (lint_escape.ml):

     type t = { ... } [@@apex.shared]        a published root: readers on
                                             other domains hold values of
                                             this type
     cache : cache option [@apex.guarded "lru"]
                                             mutations reachable through
                                             this field follow a named
                                             discipline the server layer
                                             must enforce (per-domain
                                             copy, lock, writer-only...)

   [reachability] computes the set of declared types reachable from the
   shared roots, each tagged with the guard discipline (if any) of the
   field path it was reached through; unguarded reachability dominates. *)

type verdict =
  | Imm
  | Opaque of string list  (* what the analysis could not see through *)
  | Mut of { reasons : string list; atomic_only : bool }

let verdict_id = function Imm -> "immutable" | Opaque _ -> "opaque" | Mut _ -> "mutable"

type decl = {
  key : string;  (* "Gapex.node" — defining module (unwrapped) + type name *)
  library : string;  (* dune library archive name, or "<local>" for tests *)
  modname : string;  (* defining module, for resolving unqualified refs *)
  td : Types.type_declaration;
  shared : bool;
  type_guard : string option;
  decl_loc : Location.t;
}

type table = {
  (* library name -> per-library declaration cache; resolution falls
     through all libraries so cross-library references (Apex.t ->
     Extent_store.t) land in the right cache *)
  libs : (string, (string, decl) Hashtbl.t) Hashtbl.t;
  verdicts : (string, verdict) Hashtbl.t;  (* memo, keyed like [decl.key] *)
}

let create () = { libs = Hashtbl.create 8; verdicts = Hashtbl.create 256 }

let lib_table t library =
  match Hashtbl.find_opt t.libs library with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.add t.libs library tbl;
    tbl

let find_decl t key =
  let found = ref None in
  Hashtbl.iter
    (fun _ tbl ->
      if !found = None then
        match Hashtbl.find_opt tbl key with Some d -> found := Some d | None -> ())
    t.libs;
  !found

let iter_decls t f = Hashtbl.iter (fun _ tbl -> Hashtbl.iter (fun _ d -> f d) tbl) t.libs

(* --- attribute vocabulary --- *)

let attr_payload_string (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let guard_tag (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = "apex.guarded" then
        Some (Option.value (attr_payload_string a) ~default:"unspecified")
      else None)
    attrs

let is_shared (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = "apex.shared") attrs

(* --- path normalization ---

   Wrapped-library compilation units (Repro_apex__Gapex) and Stdlib
   prefixed units (Stdlib__Hashtbl) both normalize to the module name a
   human writes, so declaration keys and reference heads line up no
   matter which alias the typechecker resolved through. *)

let unwrap_component c =
  (* split at the LAST "__": "Repro_storage__Extent_store" -> "Extent_store" *)
  let n = String.length c in
  let cut = ref (-1) in
  for i = 0 to n - 2 do
    if c.[i] = '_' && c.[i + 1] = '_' then cut := i
  done;
  if !cut < 0 || !cut + 2 >= n then c
  else String.capitalize_ascii (String.sub c (!cut + 2) (n - !cut - 2))

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> Some [ Ident.name id ]
  | Path.Pdot (p, s) ->
    Option.map (fun parts -> parts @ [ s ]) (flatten_path p)
  | Path.Papply _ | Path.Pextra_ty _ -> None

let normalize_parts parts =
  let parts = List.map unwrap_component parts in
  match parts with "Stdlib" :: rest when rest <> [] -> rest | parts -> parts

(* The lookup key for a type reference: the last module component plus the
   type name ("Extent_store.t"); unqualified references resolve against the
   module being analysed. *)
let head_key ~modname (p : Path.t) =
  match Option.map normalize_parts (flatten_path p) with
  | None | Some [] -> None
  | Some [ ty ] -> Some (modname ^ "." ^ ty)
  | Some parts ->
    let rec last2 = function
      | [ m; ty ] -> m ^ "." ^ ty
      | _ :: tl -> last2 tl
      | [] -> assert false
    in
    Some (last2 parts)

(* the written name of a head, for messages: "Hashtbl.t", "array", ... *)
let head_name (p : Path.t) =
  match Option.map normalize_parts (flatten_path p) with
  | None | Some [] -> "<complex>"
  | Some parts -> String.concat "." parts

(* --- builtin classification --- *)

let mutable_builtins =
  [ "array"; "bytes"; "floatarray"; "ref"; "Hashtbl.t"; "Buffer.t"; "Queue.t";
    "Stack.t"; "Weak.t"; "Dynarray.t"; "Bigarray.t"; "Genarray.t"; "Random.State.t" ]

let atomic_builtins = [ "Atomic.t"; "Mutex.t"; "Semaphore.t"; "Condition.t" ]

let immutable_builtins =
  [ "int"; "char"; "bool"; "unit"; "string"; "float"; "int32"; "int64";
    "nativeint"; "exn"; "Int.t"; "Char.t"; "Bool.t"; "String.t"; "Float.t";
    "Digest.t"; "Uchar.t" ]

(* containers whose mutability is exactly their element types' *)
let passthrough_builtins = [ "list"; "option"; "result"; "Either.t"; "Seq.t" ]

let builtin_of_parts parts =
  let name = String.concat "." parts in
  let tail2 =
    match List.rev parts with b :: a :: _ -> a ^ "." ^ b | _ -> name
  in
  let mem l = List.mem name l || List.mem tail2 l in
  if mem mutable_builtins then `Mutable name
  else if mem atomic_builtins then `Atomic name
  else if mem immutable_builtins then `Immutable
  else if mem passthrough_builtins then `Passthrough
  else if name = "lazy_t" || tail2 = "Lazy.t" then `Lazy
  else `Unknown

(* --- verdict computation --- *)

let join a b =
  match (a, b) with
  | Mut m, Mut m' ->
    Mut
      { reasons = m.reasons @ m'.reasons;
        atomic_only = m.atomic_only && m'.atomic_only
      }
  | (Mut _ as m), _ | _, (Mut _ as m) -> m
  | Opaque r, Opaque r' -> Opaque (r @ r')
  | (Opaque _ as o), _ | _, (Opaque _ as o) -> o
  | Imm, Imm -> Imm

let mut reason = Mut { reasons = [ reason ]; atomic_only = false }

(* [in_progress] breaks recursive-type cycles: the back edge contributes
   nothing, the rest of the structure decides. *)
let rec type_verdict t ~modname ~in_progress (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tvar _ | Tunivar _ -> Imm  (* parameters judged at the use site's args *)
  | Tarrow _ -> mut "closure (may capture mutable state)"
  | Ttuple tys ->
    List.fold_left
      (fun acc ty -> join acc (type_verdict t ~modname ~in_progress ty))
      Imm tys
  | Tpoly (body, _) -> type_verdict t ~modname ~in_progress body
  | Tconstr (p, args, _) ->
    let arg_verdict () =
      List.fold_left
        (fun acc ty -> join acc (type_verdict t ~modname ~in_progress ty))
        Imm args
    in
    (match flatten_path p with
     | None -> Opaque [ "functor application" ]
     | Some parts ->
       (match builtin_of_parts (normalize_parts parts) with
        | `Mutable name -> join (mut name) (arg_verdict ())
        | `Atomic name ->
          join (Mut { reasons = [ name ]; atomic_only = true }) (arg_verdict ())
        | `Lazy -> join (mut "lazy_t (forcing races under domains)") (arg_verdict ())
        | `Immutable -> Imm
        | `Passthrough -> arg_verdict ()
        | `Unknown ->
          (match head_key ~modname p with
           | None -> Opaque [ head_name p ]
           | Some key ->
             (match find_decl t key with
              | Some d -> join (decl_verdict t ~in_progress d) (arg_verdict ())
              | None -> join (Opaque [ head_name p ]) (arg_verdict ())))))
  | Tvariant row ->
    List.fold_left
      (fun acc (_, f) ->
        match Types.row_field_repr f with
        | Types.Rpresent (Some ty) -> join acc (type_verdict t ~modname ~in_progress ty)
        | Types.Reither (_, tys, _) ->
          List.fold_left
            (fun acc ty -> join acc (type_verdict t ~modname ~in_progress ty))
            acc tys
        | _ -> acc)
      Imm
      (Types.row_fields row)
  | Tobject _ -> mut "object (mutable instance state)"
  | Tpackage _ -> Opaque [ "first-class module" ]
  | Tfield _ | Tnil | Tlink _ | Tsubst _ -> Imm

and decl_verdict t ~in_progress (d : decl) =
  match Hashtbl.find_opt t.verdicts d.key with
  | Some v -> v
  | None ->
    if List.mem d.key in_progress then Imm
    else begin
      let in_progress = d.key :: in_progress in
      let modname = d.modname in
      let v =
        match d.td.type_kind with
        | Type_record (lds, _) ->
          List.fold_left
            (fun acc (ld : Types.label_declaration) ->
              let field =
                if ld.ld_mutable = Mutable then
                  mut (Printf.sprintf "mutable field %s.%s" d.key (Ident.name ld.ld_id))
                else Imm
              in
              join acc
                (join field (type_verdict t ~modname ~in_progress ld.ld_type)))
            Imm lds
        | Type_variant (cds, _) ->
          List.fold_left
            (fun acc (cd : Types.constructor_declaration) ->
              let args =
                match cd.cd_args with
                | Cstr_tuple tys -> tys
                | Cstr_record lds ->
                  List.map (fun (ld : Types.label_declaration) -> ld.ld_type) lds
              in
              let inline_mut =
                match cd.cd_args with
                | Cstr_record lds
                  when List.exists
                         (fun (ld : Types.label_declaration) -> ld.ld_mutable = Mutable)
                         lds ->
                  mut (Printf.sprintf "mutable inline record in %s.%s" d.key
                         (Ident.name cd.cd_id))
                | _ -> Imm
              in
              List.fold_left
                (fun acc ty -> join acc (type_verdict t ~modname ~in_progress ty))
                (join acc inline_mut) args)
            Imm cds
        (* Type_abstract / Type_open; a wildcard keeps this portable across
           the 5.1/5.2 change in Type_abstract's arity *)
        | _ ->
          (match d.td.type_manifest with
           | Some ty -> type_verdict t ~modname ~in_progress ty
           | None -> Opaque [ "abstract: " ^ d.key ])
      in
      Hashtbl.replace t.verdicts d.key v;
      v
    end

let verdict t key =
  match find_decl t key with
  | Some d -> Some (decl_verdict t ~in_progress:[] d)
  | None -> None

let verdict_of_type t ~modname ty = type_verdict t ~modname ~in_progress:[] ty

(* --- recording declarations --- *)

let add_type_declaration t ~library ~modname (td : Typedtree.type_declaration) =
  let key = modname ^ "." ^ td.typ_name.txt in
  let decl =
    {
      key;
      library;
      modname;
      td = td.typ_type;
      shared = is_shared td.typ_attributes;
      type_guard = guard_tag td.typ_attributes;
      decl_loc = td.typ_loc;
    }
  in
  Hashtbl.replace (lib_table t library) key decl

(* Walk a structure for type declarations, recursing into submodules
   (module Snapshot = struct ... end declares Snapshot.t). *)
let rec add_structure t ~library ~modname (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_type (_, tds) ->
        List.iter (add_type_declaration t ~library ~modname) tds
      | Tstr_module mb -> add_module_binding t ~library mb
      | Tstr_recmodule mbs -> List.iter (add_module_binding t ~library) mbs
      | _ -> ())
    str.str_items

and add_module_binding t ~library (mb : Typedtree.module_binding) =
  let submod = match mb.mb_name.txt with Some n -> n | None -> "_" in
  match mb.mb_expr.mod_desc with
  | Tmod_structure str -> add_structure t ~library ~modname:submod str
  | Tmod_constraint ({ mod_desc = Tmod_structure str; _ }, _, _, _) ->
    add_structure t ~library ~modname:submod str
  | _ -> ()

(* library name from a cmt path: .../.repro_apex.objs/byte/x.cmt *)
let library_of_cmt_path path =
  let rec find = function
    | [] -> "<unknown>"
    | seg :: rest ->
      let n = String.length seg in
      if n > 6 && seg.[0] = '.' && String.sub seg (n - 5) 5 = ".objs" then
        String.sub seg 1 (n - 6)
      else find rest
  in
  find (String.split_on_char '/' (Lint_rules.normalize_path path))

let add_cmt t path =
  match Cmt_format.read_cmt path with
  | exception _ -> ()
  | infos ->
    (match infos.Cmt_format.cmt_annots with
     | Implementation str ->
       let modname = unwrap_component infos.Cmt_format.cmt_modname in
       add_structure t ~library:(library_of_cmt_path path) ~modname str
     | _ -> ())

(* --- shared-root reachability --- *)

type reach_entry = { guard : string option; via : string (* "Apex.t.store" *) }
type reach = (string, reach_entry) Hashtbl.t

(* The declared-type references inside [ty], each with the guard tag (if
   any) under which it is reached. [guard] is the tag inherited from the
   field being walked. *)
let rec type_refs t ~modname ~guard ty acc =
  match Types.get_desc ty with
  | Tvar _ | Tunivar _ | Tarrow _ | Tobject _ | Tpackage _ | Tfield _ | Tnil
  | Tlink _ | Tsubst _ ->
    acc  (* closures and opaque values are not traversed: the escape pass
            cannot see mutations through them either *)
  | Ttuple tys ->
    List.fold_left (fun acc ty -> type_refs t ~modname ~guard ty acc) acc tys
  | Tpoly (body, _) -> type_refs t ~modname ~guard body acc
  | Tvariant row ->
    List.fold_left
      (fun acc (_, f) ->
        match Types.row_field_repr f with
        | Types.Rpresent (Some ty) -> type_refs t ~modname ~guard ty acc
        | Types.Reither (_, tys, _) ->
          List.fold_left (fun acc ty -> type_refs t ~modname ~guard ty acc) acc tys
        | _ -> acc)
      acc
      (Types.row_fields row)
  | Tconstr (p, args, _) ->
    let acc =
      match head_key ~modname p with
      | Some key when find_decl t key <> None -> (key, guard) :: acc
      | _ -> acc
    in
    List.fold_left (fun acc ty -> type_refs t ~modname ~guard ty acc) acc args

let decl_refs t (d : decl) =
  let modname = d.modname in
  match d.td.type_kind with
  | Type_record (lds, _) ->
    List.concat_map
      (fun (ld : Types.label_declaration) ->
        let guard = guard_tag ld.ld_attributes in
        type_refs t ~modname ~guard ld.ld_type []
        |> List.map (fun (key, g) ->
               (key, g, Printf.sprintf "%s.%s" d.key (Ident.name ld.ld_id))))
      lds
  | Type_variant (cds, _) ->
    List.concat_map
      (fun (cd : Types.constructor_declaration) ->
        let tys =
          match cd.cd_args with
          | Cstr_tuple tys -> tys
          | Cstr_record lds ->
            List.map (fun (ld : Types.label_declaration) -> ld.ld_type) lds
        in
        List.concat_map
          (fun ty ->
            type_refs t ~modname ~guard:None ty []
            |> List.map (fun (key, g) ->
                   (key, g, Printf.sprintf "%s.%s" d.key (Ident.name cd.cd_id))))
          tys)
      cds
  (* Type_abstract / Type_open (wildcard: 5.1/5.2 arity change) *)
  | _ ->
    (match d.td.type_manifest with
     | Some ty ->
       type_refs t ~modname ~guard:None ty []
       |> List.map (fun (key, g) -> (key, g, d.key))
     | None -> [])

let shared_roots t =
  let roots = ref [] in
  iter_decls t (fun d -> if d.shared then roots := d :: !roots);
  List.sort (fun a b -> String.compare a.key b.key) !roots

(* BFS from the shared roots. Unguarded reachability dominates: a type
   reachable both through a guarded field and an unguarded one is
   unguarded (the escape pass must flag its mutations). *)
let reachability t : reach =
  let reach : reach = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun d ->
      Queue.add (d.key, d.type_guard, d.key ^ " [@@apex.shared]") queue)
    (shared_roots t);
  while not (Queue.is_empty queue) do
    let key, guard, via = Queue.pop queue in
    let visit =
      match Hashtbl.find_opt reach key with
      | None -> true
      | Some prev -> prev.guard <> None && guard = None  (* upgrade to unguarded *)
    in
    if visit then begin
      Hashtbl.replace reach key { guard; via };
      match find_decl t key with
      | None -> ()
      | Some d ->
        List.iter
          (fun (key', edge_guard, via') ->
            (* a guard tag deeper in the path refines an inherited one *)
            let guard' = match edge_guard with Some _ -> edge_guard | None -> guard in
            Queue.add (key', guard', via') queue)
          (decl_refs t d)
    end
  done;
  reach
