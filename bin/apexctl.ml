(* apexctl: offline telemetry introspection.

     apexctl stats trace.jsonl                    # per-phase latency percentiles
     apexctl validate --schema schemas/trace_schema.json \
         trace.jsonl trace.trace.json             # audit exported traces

   `bench --trace PREFIX` produces the inputs; `stats` aggregates a saved
   JSONL event log into per-phase latency histograms and adaptation-event
   totals, and `validate` checks both export formats against the
   checked-in schema (field presence, JSON types, legal record kinds). *)

module Export = Repro_telemetry.Export

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let cmd_stats path =
  match Export.read_jsonl path with
  | Error e -> die "apexctl stats: %s: %s" path e
  | Ok records ->
    let spans = Export.summarize records in
    if spans = [] then print_endline "no spans recorded"
    else begin
      Printf.printf "%d records in %s\n\n" (List.length records) path;
      print_string (Export.percentile_table spans)
    end;
    let events = Export.event_totals records in
    if events <> [] then
      Printf.printf "\nadaptation events:\n%s" (Export.event_table events)

let cmd_validate schema_path paths =
  match Export.Schema.load schema_path with
  | Error e -> die "apexctl validate: %s" e
  | Ok schema ->
    let failed = ref false in
    List.iter
      (fun path ->
        let validate =
          if Filename.check_suffix path ".jsonl" then Export.Schema.validate_jsonl
          else Export.Schema.validate_chrome
        in
        match validate schema path with
        | Ok n -> Printf.printf "%s: OK (%d records)\n" path n
        | Error errors ->
          failed := true;
          Printf.printf "%s: %d violation(s)\n" path (List.length errors);
          List.iteri
            (fun i e -> if i < 20 then Printf.printf "  %s\n" e)
            errors;
          if List.length errors > 20 then
            Printf.printf "  ... and %d more\n" (List.length errors - 20))
      paths;
    if !failed then exit 1

open Cmdliner

let stats_cmd =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Aggregate a JSONL trace into per-phase latency percentiles and \
          adaptation-event totals.")
    Term.(const cmd_stats $ trace_file)

let validate_cmd =
  let schema =
    Arg.(
      required
      & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA.json"
          ~doc:"Trace schema to validate against (see schemas/trace_schema.json).")
  in
  let traces =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:
            "Trace files: *.jsonl are checked as JSONL event logs, anything else \
             as Chrome trace_event JSON.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate exported traces against the checked-in schema; exit 1 on violation.")
    Term.(const cmd_validate $ schema $ traces)

let cmd =
  Cmd.group
    (Cmd.info "apexctl" ~doc:"Telemetry introspection for the APEX reproduction")
    [ stats_cmd; validate_cmd ]

let () = exit (Cmd.eval cmd)
