(* apexctl: offline telemetry and static-analysis introspection.

     apexctl stats trace.jsonl                    # per-phase latency percentiles
     apexctl validate --schema schemas/trace_schema.json \
         trace.jsonl trace.trace.json             # audit exported traces
     apexctl lint-report --json \
         --schema schemas/lint_report_schema.json # domain-safety report

   `bench --trace PREFIX` produces the trace inputs; `stats` aggregates a
   saved JSONL event log into per-phase latency histograms and
   adaptation-event totals, and `validate` checks both export formats
   against the checked-in schema (field presence, JSON types, legal
   record kinds). `lint-report` runs the whole-program domain-safety
   analysis (tools/lint) and emits the mutability map, findings, and
   guarded-mutation inventory as schema-validated JSON for CI to diff
   across PRs. *)

module Export = Repro_telemetry.Export

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let cmd_stats path =
  match Export.read_jsonl path with
  | Error e -> die "apexctl stats: %s: %s" path e
  | Ok records ->
    let spans = Export.summarize records in
    if spans = [] then print_endline "no spans recorded"
    else begin
      Printf.printf "%d records in %s\n\n" (List.length records) path;
      print_string (Export.percentile_table spans)
    end;
    let events = Export.event_totals records in
    if events <> [] then
      Printf.printf "\nadaptation events:\n%s" (Export.event_table events)

let cmd_validate schema_path paths =
  match Export.Schema.load schema_path with
  | Error e -> die "apexctl validate: %s" e
  | Ok schema ->
    let failed = ref false in
    List.iter
      (fun path ->
        let validate =
          if Filename.check_suffix path ".jsonl" then Export.Schema.validate_jsonl
          else Export.Schema.validate_chrome
        in
        match validate schema path with
        | Ok n -> Printf.printf "%s: OK (%d records)\n" path n
        | Error errors ->
          failed := true;
          Printf.printf "%s: %d violation(s)\n" path (List.length errors);
          List.iteri
            (fun i e -> if i < 20 then Printf.printf "  %s\n" e)
            errors;
          if List.length errors > 20 then
            Printf.printf "  ... and %d more\n" (List.length errors - 20))
      paths;
    if !failed then exit 1

(* `bench-diff A.json B.json` compares per-dataset q1/q2/q3 result
   checksums between two `bench --json` outputs and exits 1 on any drift —
   the CI guard that representation changes (codecs, join kernels) never
   change answers. A hand-rolled scanner is enough: the bench writer emits
   exactly one "name" and three "checksum" fields per dataset row, in
   order, and dataset names never contain escapes. *)

let read_file ?(ctx = "bench-diff") path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error e -> die "apexctl %s: %s" ctx e

let parse_bench path =
  let text = read_file path in
  let n = String.length text in
  let name_tok = "\"name\": \"" and sum_tok = "\"checksum\": \"" in
  let starts_with tok p =
    p + String.length tok <= n && String.sub text p (String.length tok) = tok
  in
  let quoted_from p =
    match String.index_from_opt text p '"' with
    | Some stop -> (String.sub text p (stop - p), stop)
    | None -> die "apexctl bench-diff: %s: unterminated string" path
  in
  let datasets = ref [] in
  let i = ref 0 in
  while !i < n do
    if starts_with name_tok !i then begin
      let name, stop = quoted_from (!i + String.length name_tok) in
      datasets := (name, ref []) :: !datasets;
      i := stop
    end
    else if starts_with sum_tok !i then begin
      let sum, stop = quoted_from (!i + String.length sum_tok) in
      (match !datasets with
       | [] -> die "apexctl bench-diff: %s: checksum before any dataset name" path
       | (_, sums) :: _ -> sums := sum :: !sums);
      i := stop
    end;
    incr i
  done;
  List.rev_map (fun (name, sums) -> (name, List.rev !sums)) !datasets

let cmd_bench_diff base other =
  let a = parse_bench base and b = parse_bench other in
  let common = List.filter (fun (name, _) -> List.mem_assoc name b) a in
  if common = [] then
    die "apexctl bench-diff: no dataset in common between %s and %s" base other;
  let mismatches = ref 0 in
  List.iter
    (fun (name, sums_a) ->
      let sums_b = List.assoc name b in
      if List.length sums_a <> List.length sums_b then begin
        incr mismatches;
        Printf.printf "%s: %d checksum(s) vs %d\n" name (List.length sums_a)
          (List.length sums_b)
      end
      else
        List.iteri
          (fun qi ca ->
            let cb = List.nth sums_b qi in
            if ca <> cb then begin
              incr mismatches;
              Printf.printf "%s q%d: checksum %s <> %s\n" name (qi + 1) ca cb
            end)
          sums_a)
    common;
  if !mismatches > 0 then begin
    Printf.printf "%d checksum mismatch(es)\n" !mismatches;
    exit 1
  end
  else
    Printf.printf "bench checksums match: %s\n"
      (String.concat ", " (List.map fst common))

(* `drift-check BENCH_DRIFT.json` validates a drift-bench report: on every
   phase the cost-benefit policy must converge in fewer refreshes than
   support-only mining AND to a smaller index, hold a stable tail of at
   least two refreshes with zero promotion/eviction state changes, and
   stay under the committed refreshes-to-convergence bound — the CI guard
   that a policy change doesn't quietly reintroduce threshold-flapping.
   Exit 1 on any regression. *)

module Json = Repro_telemetry.Json

let cmd_drift_check report max_rtc =
  let json =
    match Json.parse (read_file ~ctx:"drift-check" report) with
    | Ok v -> v
    | Error e -> die "apexctl drift-check: %s: %s" report e
  in
  let failures = ref 0 in
  let complain fmt =
    Printf.ksprintf (fun m -> incr failures; Printf.printf "FAIL %s\n" m) fmt
  in
  let phases side =
    match Option.bind (Json.member side json) (Json.member "phases") with
    | Some (Json.Arr l) -> l
    | _ -> die "apexctl drift-check: %s: no %s.phases array" report side
  in
  let num field ph =
    match Option.bind (Json.member field ph) Json.to_float with
    | Some f -> f
    | None -> die "apexctl drift-check: %s: phase missing %s" report field
  in
  let name ph =
    match Option.bind (Json.member "name" ph) Json.to_str with
    | Some s -> s
    | None -> die "apexctl drift-check: %s: unnamed phase" report
  in
  let support = phases "support" and policy = phases "policy" in
  if List.length support <> List.length policy then
    die "apexctl drift-check: %s: %d support phases vs %d policy phases" report
      (List.length support) (List.length policy);
  List.iter2
    (fun s p ->
      let ph = name p in
      if name s <> ph then
        die "apexctl drift-check: %s: phase order mismatch (%s vs %s)" report
          (name s) ph;
      let s_rtc = num "refreshes_to_convergence" s
      and p_rtc = num "refreshes_to_convergence" p in
      if not (p_rtc < s_rtc) then
        complain "%s: policy converged in %.0f refreshes, support-only in %.0f"
          ph p_rtc s_rtc;
      if p_rtc > float_of_int max_rtc then
        complain "%s: policy took %.0f refreshes to converge (bound %d)" ph
          p_rtc max_rtc;
      let s_pages = num "index_pages" s and p_pages = num "index_pages" p in
      if not (p_pages < s_pages) then
        complain "%s: policy index %.0f pages not smaller than support-only %.0f"
          ph p_pages s_pages;
      let tail = num "stable_tail" p in
      if tail < 2. then
        complain "%s: policy stable tail %.0f refreshes (need >= 2)" ph tail;
      if not (Float.equal (num "checksum" s) (num "checksum" p)) then
        complain "%s: support and policy result checksums differ" ph)
    support policy;
  (match Json.member "invariants" json with
   | Some (Json.Obj fields) ->
     List.iter
       (fun (k, v) -> if v <> Json.Bool true then complain "invariant %s" k)
       fields
   | _ -> complain "missing invariants object");
  if !failures > 0 then begin
    Printf.printf "%d drift regression(s) in %s\n" !failures report;
    exit 1
  end
  else
    Printf.printf "drift report OK: %d phases, policy converges faster and smaller\n"
      (List.length policy)

(* `serve` runs the multi-client epoch-isolation driver on a generated
   dataset: N reader domains against a live writer applying update batches
   and refreshes, every observation differentially verified against the
   single-threaded oracle at its pinned generation. Exit 1 on any reader
   error, stall, or oracle mismatch. With --obs PREFIX the observability
   layer comes on (SLO monitor, latency watchdog, auto incident dumps)
   and the run ends by writing PREFIX.incident.json (forced flight dump),
   PREFIX.prom (exposition), and PREFIX.status.json (introspection — the
   document `apexctl top` renders). *)
let cmd_serve dataset scale readers queries batches seed out obs slo_spec watchdog =
  let spec =
    match Repro_datagen.Dataset.by_name dataset with
    | Some spec -> Repro_datagen.Dataset.scaled spec scale
    | None -> die "apexctl serve: unknown dataset %s" dataset
  in
  let module Driver = Repro_server.Driver in
  let module Server = Repro_server.Server in
  let module Slo = Repro_telemetry.Slo in
  let config =
    { Driver.default_config with Driver.readers; queries_per_reader = queries; batches; seed }
  in
  let config =
    match obs with
    | None -> config
    | Some prefix ->
      let slo =
        match slo_spec with
        | None -> Slo.default_objectives
        | Some spec ->
          (match Slo.parse_objectives spec with
           | Ok objectives -> objectives
           | Error e -> die "apexctl serve: --slo: %s" e)
      in
      { config with
        Driver.slo;
        watchdog = Some watchdog;
        incident_path = Some (prefix ^ ".incident.json")
      }
  in
  let g = Repro_datagen.Dataset.build_graph spec in
  let report = Driver.run ~config g in
  let mismatches = Driver.verify_observations report in
  let json = Driver.report_json ~dataset:spec.Repro_datagen.Dataset.name
      ~checksum_mismatches:mismatches report
  in
  (match out with
   | "-" -> print_string json
   | file ->
     Out_channel.with_open_text file (fun oc -> output_string oc json);
     Printf.printf "%d queries on %d readers across %d publishes, %d mismatches -> %s\n"
       (Driver.total_queries report) readers report.Driver.publishes mismatches file);
  (match obs with
   | None -> ()
   | Some prefix ->
     let server = report.Driver.server in
     Server.incident_dump ~reason:"apexctl serve: forced dump" server
       (prefix ^ ".incident.json");
     Repro_telemetry.Export.save_exposition (prefix ^ ".prom") (Server.metrics server);
     Out_channel.with_open_text (prefix ^ ".status.json") (fun oc ->
         output_string oc (Json.to_string (Server.introspect server));
         output_char oc '\n');
     Printf.printf "wrote %s.incident.json, %s.prom, %s.status.json\n" prefix prefix
       prefix);
  if Driver.total_errors report > 0 || Driver.stalled_readers report > 0 || mismatches > 0
  then exit 1

(* --- top: terminal dashboard over the introspection document --- *)

let jget path json =
  List.fold_left (fun acc key -> Option.bind acc (Json.member key)) (Some json) path

let jnum path json = Option.bind (jget path json) Json.to_float
let jstr path json = Option.bind (jget path json) Json.to_str
let jarr path json = match jget path json with Some (Json.Arr l) -> l | _ -> []

let jint path json =
  match jnum path json with Some f -> Printf.sprintf "%.0f" f | None -> "-"

let pp_seconds = function
  | None -> "-"
  | Some s -> Export.pp_duration s

(* One frame of the dashboard: server counters, every live epoch with its
   pin count and age, per-generation attribution, SLO status, policy
   hysteresis state, and the flight recorder's ring. *)
let render_top json =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "apex server  generation %s  publishes %s  rollbacks %s  incidents %s\n"
    (jint [ "server"; "generation" ] json)
    (jint [ "server"; "publishes" ] json)
    (jint [ "server"; "rollbacks" ] json)
    (jint [ "server"; "incidents" ] json);
  add "feedback     drained %s  dropped %s  attributed %s\n\n"
    (jint [ "server"; "feedback_drained" ] json)
    (jint [ "server"; "feedback_dropped" ] json)
    (jint [ "server"; "observed_queries" ] json);
  add "EPOCHS     gen  state      pins      age\n";
  List.iter
    (fun e ->
      add "        %6s  %-8s %5s %8s\n" (jint [ "generation" ] e)
        (Option.value (jstr [ "state" ] e) ~default:"-")
        (jint [ "pins" ] e)
        (match jnum [ "age_seconds" ] e with
         | Some a -> Printf.sprintf "%.1fs" a
         | None -> "-"))
    (jarr [ "epochs" ] json);
  let attribution = jarr [ "attribution" ] json in
  if attribution <> [] then begin
    add "\nBY EPOCH   gen  queries    pages    edges    joins      p50      p99\n";
    List.iter
      (fun a ->
        add "        %6s %8s %8s %8s %8s %8s %8s\n" (jint [ "generation" ] a)
          (jint [ "queries" ] a)
          (jint [ "extent_pages" ] a)
          (jint [ "extent_edges" ] a)
          (jint [ "join_edges" ] a)
          (pp_seconds (jnum [ "latency"; "p50" ] a))
          (pp_seconds (jnum [ "latency"; "p99" ] a)))
      attribution
  end;
  (match jarr [ "slo"; "objectives" ] json with
   | [] -> add "\nSLO        (not configured)\n"
   | objectives ->
     add "\nSLO        name   target  threshold  samples  estimate     burn  breaches\n";
     List.iter
       (fun o ->
         add "        %6s  %7s %10s %8s %9s %8s %9s%s\n"
           (Option.value (jstr [ "name" ] o) ~default:"-")
           (match jnum [ "quantile" ] o with
            | Some q -> Printf.sprintf "p%g" (q *. 100.)
            | None -> "-")
           (pp_seconds (jnum [ "threshold" ] o))
           (jint [ "samples" ] o)
           (pp_seconds (jnum [ "estimate" ] o))
           (match jnum [ "burn_rate" ] o with
            | Some r -> Printf.sprintf "%.2f" r
            | None -> "-")
           (jint [ "breaches" ] o)
           (if jget [ "breached" ] o = Some (Json.Bool true) then "  BREACHED" else ""))
       objectives);
  (match jget [ "policy" ] json with
   | Some (Json.Obj _ as p) ->
     add "\nPOLICY     queries %.1f  tracked %s  indexed %s  refreshes %s  +%s/-%s (last %s)\n"
       (Option.value (jnum [ "observed_queries" ] p) ~default:0.)
       (jint [ "tracked_paths" ] p) (jint [ "indexed_paths" ] p)
       (jint [ "refreshes" ] p) (jint [ "promotions" ] p) (jint [ "evictions" ] p)
       (jint [ "last_changes" ] p)
   | _ -> add "\nPOLICY     (support-only mining)\n");
  add "\nFLIGHT     recorded %s  retained %s  trips %s  dumps %s  armed %s\n"
    (jint [ "flight"; "recorded" ] json)
    (jint [ "flight"; "retained" ] json)
    (jint [ "flight"; "trips" ] json)
    (jint [ "flight"; "dumps" ] json)
    (match jget [ "flight"; "armed" ] json with
     | Some (Json.Bool b) -> string_of_bool b
     | _ -> "-");
  Buffer.contents b

let cmd_top file interval once =
  let frame () =
    match Json.parse (read_file ~ctx:"top" file) with
    | Ok json -> render_top json
    | Error e -> die "apexctl top: %s: %s" file e
  in
  if once then print_string (frame ())
  else begin
    (* poll the status file a live serve run keeps rewriting; ^C exits *)
    let rec loop () =
      let body = frame () in
      Printf.printf "\027[2J\027[H%s\n(polling %s every %.1fs — ^C to quit)\n%!" body
        file interval;
      Unix.sleepf interval;
      loop ()
    in
    loop ()
  end

(* --- incident-dump: validate + summarize a flight-recorder dump --- *)

let cmd_incident_dump file schema =
  let json =
    match Json.parse (read_file ~ctx:"incident-dump" file) with
    | Ok v -> v
    | Error e -> die "apexctl incident-dump: %s: %s" file e
  in
  (match schema with
   | None -> ()
   | Some schema_path ->
     (match Repro_telemetry.Flight.validate_file ~schema_path file with
      | Ok () -> Printf.printf "%s: conforms to %s\n" file schema_path
      | Error errors ->
        Printf.printf "%s: %d schema violation(s)\n" file (List.length errors);
        List.iteri (fun i e -> if i < 20 then Printf.printf "  %s\n" e) errors;
        exit 1));
  Printf.printf "incident: %s (after %ss up; %s events recorded, %s retained, %s trips)\n"
    (Option.value (jstr [ "incident"; "reason" ] json) ~default:"?")
    (jint [ "incident"; "uptime_seconds" ] json)
    (jint [ "incident"; "recorded" ] json)
    (jint [ "incident"; "retained" ] json)
    (jint [ "incident"; "watchdog_trips" ] json);
  (* events by kind, then the largest metric movements since baseline *)
  let by_kind = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match jstr [ "kind" ] e with
      | Some k ->
        Hashtbl.replace by_kind k (1 + Option.value (Hashtbl.find_opt by_kind k) ~default:0)
      | None -> ())
    (jarr [ "events" ] json);
  let kinds = Hashtbl.fold (fun k n acc -> (k, n) :: acc) by_kind [] in
  List.iter
    (fun (k, n) -> Printf.printf "  %-14s %6d\n" k n)
    (List.sort (fun (_, a) (_, b) -> Int.compare b a) kinds);
  let deltas =
    List.filter_map
      (fun m ->
        match (jstr [ "name" ] m, jnum [ "delta" ] m) with
        | Some name, Some d when not (Float.equal d 0.) -> Some (name, d)
        | _ -> None)
      (jarr [ "metrics" ] json)
  in
  let spans = List.length (jarr [ "spans" ] json) in
  if spans > 0 then Printf.printf "  %d trace spans attached\n" spans;
  if deltas <> [] then begin
    Printf.printf "top metric movements since baseline:\n";
    List.iteri
      (fun i (name, d) ->
        if i < 12 then Printf.printf "  %-40s %+.0f\n" name d)
      (List.sort (fun (_, a) (_, b) -> Float.compare (Float.abs b) (Float.abs a)) deltas)
  end

(* `lint-report` runs the same analysis as `dune build @lint` but emits
   the machine-readable report. Must run from the workspace root with a
   built tree (the .cmt files drive the mutability map): CI does
   `dune build @check` first. Exit codes follow Lint_engine.run_report:
   0 clean, 1 on any non-suppressed L8/L9 finding, 2 on schema or
   analysis errors. *)
let cmd_lint_report build_dir schema out _json roots =
  let roots = if roots = [] then [ "lib"; "bin"; "bench" ] else roots in
  exit
    (Apex_lint_core.Lint_engine.run_report ~build_dir ?schema_path:schema ~out roots)

open Cmdliner

let stats_cmd =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Aggregate a JSONL trace into per-phase latency percentiles and \
          adaptation-event totals.")
    Term.(const cmd_stats $ trace_file)

let validate_cmd =
  let schema =
    Arg.(
      required
      & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA.json"
          ~doc:"Trace schema to validate against (see schemas/trace_schema.json).")
  in
  let traces =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:
            "Trace files: *.jsonl are checked as JSONL event logs, anything else \
             as Chrome trace_event JSON.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate exported traces against the checked-in schema; exit 1 on violation.")
    Term.(const cmd_validate $ schema $ traces)

let bench_diff_cmd =
  let base =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE.json")
  in
  let other =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE.json")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare per-dataset query checksums between two `bench --json` outputs; \
          exit 1 if any differ.")
    Term.(const cmd_bench_diff $ base $ other)

let drift_check_cmd =
  let report =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BENCH_DRIFT.json")
  in
  let max_rtc =
    Arg.(
      value & opt int 8
      & info [ "max-rtc" ] ~docv:"N"
          ~doc:
            "Upper bound on the policy's refreshes-to-convergence in any \
             phase (the committed baseline converges in at most 7).")
  in
  Cmd.v
    (Cmd.info "drift-check"
       ~doc:
         "Validate a `bench drift` report: the cost-benefit policy must \
          converge faster than support-only mining, to a smaller index, with \
          a stable post-convergence tail, on every phase; exit 1 on any \
          regression.")
    Term.(const cmd_drift_check $ report $ max_rtc)

let serve_cmd =
  let dataset =
    Arg.(
      value & opt string "four_tragedy"
      & info [ "dataset" ] ~docv:"NAME" ~doc:"Dataset to serve (see Table 1 names).")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F" ~doc:"Dataset node-target factor.")
  in
  let readers =
    Arg.(value & opt int 3 & info [ "readers" ] ~docv:"N" ~doc:"Reader domains to spawn.")
  in
  let queries =
    Arg.(
      value & opt int 60
      & info [ "queries" ] ~docv:"N" ~doc:"Queries per reader stream (readers loop over it).")
  in
  let batches =
    Arg.(value & opt int 8 & info [ "batches" ] ~docv:"N" ~doc:"Writer update batches.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let out =
    Arg.(
      value
      & opt string "BENCH_SERVE.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the serve report to $(docv) ($(b,-) for standard output).")
  in
  let obs =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs" ] ~docv:"PREFIX"
          ~doc:
            "Run with the observability layer on (SLO monitor, latency watchdog, auto \
             incident dumps) and write $(docv).incident.json, $(docv).prom, and \
             $(docv).status.json.")
  in
  let slo =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "SLO objectives as name:pQQ:threshold_seconds specs joined by commas \
             (with --obs; default q1/q2/q3 at p99 <= 50ms).")
  in
  let watchdog =
    Arg.(
      value & opt float 0.25
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:"Latency watchdog threshold for the flight recorder (with --obs).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent query server under a mixed read/write workload — reader \
          domains with epoch-snapshot isolation against a live writer — and write the \
          latency/lifecycle report; every reader observation is verified against the \
          single-threaded oracle at its pinned generation (exit 1 on any mismatch, \
          error, or stall).")
    Term.(
      const cmd_serve $ dataset $ scale $ readers $ queries $ batches $ seed $ out $ obs
      $ slo $ watchdog)

let top_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"STATUS.json")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between polls of the status file.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Render a single frame and exit (no screen clearing).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Terminal dashboard over a server introspection document (the .status.json a \
          serve run with --obs writes): live epochs with pin counts, per-generation \
          attribution, SLO status, policy hysteresis state, and the flight recorder.")
    Term.(const cmd_top $ file $ interval $ once)

let incident_dump_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INCIDENT.json")
  in
  let schema =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA.json"
          ~doc:
            "Validate the incident file against this contract first (see \
             schemas/incident_schema.json); exit 1 on violation.")
  in
  Cmd.v
    (Cmd.info "incident-dump"
       ~doc:
         "Validate and summarize a flight-recorder incident file: reason, uptime, \
          events by kind, and the largest metric movements since the baseline.")
    Term.(const cmd_incident_dump $ file $ schema)

let lint_report_cmd =
  let build_dir =
    Arg.(
      value
      & opt string "_build/default"
      & info [ "build-dir" ] ~docv:"DIR"
          ~doc:"Dune context root holding the .cmt files of a completed build.")
  in
  let schema =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA.json"
          ~doc:
            "Validate the emitted report against this mini-contract schema \
             (see schemas/lint_report_schema.json); exit 2 on violation.")
  in
  let out =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) instead of standard output.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Accepted for symmetry with other subcommands; the report is \
             always JSON.")
  in
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ROOT" ~doc:"Source roots to lint (default: lib bin bench).")
  in
  Cmd.v
    (Cmd.info "lint-report"
       ~doc:
         "Run the whole-program domain-safety analysis and emit the mutability \
          map, L1-L9 findings, classified mutation sites, and global-state \
          inventory as schema-validated JSON.")
    Term.(const cmd_lint_report $ build_dir $ schema $ out $ json $ roots)

let cmd =
  Cmd.group
    (Cmd.info "apexctl" ~doc:"Telemetry introspection for the APEX reproduction")
    [ stats_cmd; validate_cmd; bench_diff_cmd; drift_check_cmd; serve_cmd; top_cmd;
      incident_dump_cmd; lint_report_cmd ]

let () = exit (Cmd.eval cmd)
