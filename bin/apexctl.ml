(* apexctl: offline telemetry and static-analysis introspection.

     apexctl stats trace.jsonl                    # per-phase latency percentiles
     apexctl validate --schema schemas/trace_schema.json \
         trace.jsonl trace.trace.json             # audit exported traces
     apexctl lint-report --json \
         --schema schemas/lint_report_schema.json # domain-safety report

   `bench --trace PREFIX` produces the trace inputs; `stats` aggregates a
   saved JSONL event log into per-phase latency histograms and
   adaptation-event totals, and `validate` checks both export formats
   against the checked-in schema (field presence, JSON types, legal
   record kinds). `lint-report` runs the whole-program domain-safety
   analysis (tools/lint) and emits the mutability map, findings, and
   guarded-mutation inventory as schema-validated JSON for CI to diff
   across PRs. *)

module Export = Repro_telemetry.Export

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let cmd_stats path =
  match Export.read_jsonl path with
  | Error e -> die "apexctl stats: %s: %s" path e
  | Ok records ->
    let spans = Export.summarize records in
    if spans = [] then print_endline "no spans recorded"
    else begin
      Printf.printf "%d records in %s\n\n" (List.length records) path;
      print_string (Export.percentile_table spans)
    end;
    let events = Export.event_totals records in
    if events <> [] then
      Printf.printf "\nadaptation events:\n%s" (Export.event_table events)

let cmd_validate schema_path paths =
  match Export.Schema.load schema_path with
  | Error e -> die "apexctl validate: %s" e
  | Ok schema ->
    let failed = ref false in
    List.iter
      (fun path ->
        let validate =
          if Filename.check_suffix path ".jsonl" then Export.Schema.validate_jsonl
          else Export.Schema.validate_chrome
        in
        match validate schema path with
        | Ok n -> Printf.printf "%s: OK (%d records)\n" path n
        | Error errors ->
          failed := true;
          Printf.printf "%s: %d violation(s)\n" path (List.length errors);
          List.iteri
            (fun i e -> if i < 20 then Printf.printf "  %s\n" e)
            errors;
          if List.length errors > 20 then
            Printf.printf "  ... and %d more\n" (List.length errors - 20))
      paths;
    if !failed then exit 1

(* `bench-diff A.json B.json` compares per-dataset q1/q2/q3 result
   checksums between two `bench --json` outputs and exits 1 on any drift —
   the CI guard that representation changes (codecs, join kernels) never
   change answers. A hand-rolled scanner is enough: the bench writer emits
   exactly one "name" and three "checksum" fields per dataset row, in
   order, and dataset names never contain escapes. *)

let read_file ?(ctx = "bench-diff") path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error e -> die "apexctl %s: %s" ctx e

let parse_bench path =
  let text = read_file path in
  let n = String.length text in
  let name_tok = "\"name\": \"" and sum_tok = "\"checksum\": \"" in
  let starts_with tok p =
    p + String.length tok <= n && String.sub text p (String.length tok) = tok
  in
  let quoted_from p =
    match String.index_from_opt text p '"' with
    | Some stop -> (String.sub text p (stop - p), stop)
    | None -> die "apexctl bench-diff: %s: unterminated string" path
  in
  let datasets = ref [] in
  let i = ref 0 in
  while !i < n do
    if starts_with name_tok !i then begin
      let name, stop = quoted_from (!i + String.length name_tok) in
      datasets := (name, ref []) :: !datasets;
      i := stop
    end
    else if starts_with sum_tok !i then begin
      let sum, stop = quoted_from (!i + String.length sum_tok) in
      (match !datasets with
       | [] -> die "apexctl bench-diff: %s: checksum before any dataset name" path
       | (_, sums) :: _ -> sums := sum :: !sums);
      i := stop
    end;
    incr i
  done;
  List.rev_map (fun (name, sums) -> (name, List.rev !sums)) !datasets

let cmd_bench_diff base other =
  let a = parse_bench base and b = parse_bench other in
  let common = List.filter (fun (name, _) -> List.mem_assoc name b) a in
  if common = [] then
    die "apexctl bench-diff: no dataset in common between %s and %s" base other;
  let mismatches = ref 0 in
  List.iter
    (fun (name, sums_a) ->
      let sums_b = List.assoc name b in
      if List.length sums_a <> List.length sums_b then begin
        incr mismatches;
        Printf.printf "%s: %d checksum(s) vs %d\n" name (List.length sums_a)
          (List.length sums_b)
      end
      else
        List.iteri
          (fun qi ca ->
            let cb = List.nth sums_b qi in
            if ca <> cb then begin
              incr mismatches;
              Printf.printf "%s q%d: checksum %s <> %s\n" name (qi + 1) ca cb
            end)
          sums_a)
    common;
  if !mismatches > 0 then begin
    Printf.printf "%d checksum mismatch(es)\n" !mismatches;
    exit 1
  end
  else
    Printf.printf "bench checksums match: %s\n"
      (String.concat ", " (List.map fst common))

(* `drift-check BENCH_DRIFT.json` validates a drift-bench report: on every
   phase the cost-benefit policy must converge in fewer refreshes than
   support-only mining AND to a smaller index, hold a stable tail of at
   least two refreshes with zero promotion/eviction state changes, and
   stay under the committed refreshes-to-convergence bound — the CI guard
   that a policy change doesn't quietly reintroduce threshold-flapping.
   Exit 1 on any regression. *)

module Json = Repro_telemetry.Json

let cmd_drift_check report max_rtc =
  let json =
    match Json.parse (read_file ~ctx:"drift-check" report) with
    | Ok v -> v
    | Error e -> die "apexctl drift-check: %s: %s" report e
  in
  let failures = ref 0 in
  let complain fmt =
    Printf.ksprintf (fun m -> incr failures; Printf.printf "FAIL %s\n" m) fmt
  in
  let phases side =
    match Option.bind (Json.member side json) (Json.member "phases") with
    | Some (Json.Arr l) -> l
    | _ -> die "apexctl drift-check: %s: no %s.phases array" report side
  in
  let num field ph =
    match Option.bind (Json.member field ph) Json.to_float with
    | Some f -> f
    | None -> die "apexctl drift-check: %s: phase missing %s" report field
  in
  let name ph =
    match Option.bind (Json.member "name" ph) Json.to_str with
    | Some s -> s
    | None -> die "apexctl drift-check: %s: unnamed phase" report
  in
  let support = phases "support" and policy = phases "policy" in
  if List.length support <> List.length policy then
    die "apexctl drift-check: %s: %d support phases vs %d policy phases" report
      (List.length support) (List.length policy);
  List.iter2
    (fun s p ->
      let ph = name p in
      if name s <> ph then
        die "apexctl drift-check: %s: phase order mismatch (%s vs %s)" report
          (name s) ph;
      let s_rtc = num "refreshes_to_convergence" s
      and p_rtc = num "refreshes_to_convergence" p in
      if not (p_rtc < s_rtc) then
        complain "%s: policy converged in %.0f refreshes, support-only in %.0f"
          ph p_rtc s_rtc;
      if p_rtc > float_of_int max_rtc then
        complain "%s: policy took %.0f refreshes to converge (bound %d)" ph
          p_rtc max_rtc;
      let s_pages = num "index_pages" s and p_pages = num "index_pages" p in
      if not (p_pages < s_pages) then
        complain "%s: policy index %.0f pages not smaller than support-only %.0f"
          ph p_pages s_pages;
      let tail = num "stable_tail" p in
      if tail < 2. then
        complain "%s: policy stable tail %.0f refreshes (need >= 2)" ph tail;
      if not (Float.equal (num "checksum" s) (num "checksum" p)) then
        complain "%s: support and policy result checksums differ" ph)
    support policy;
  (match Json.member "invariants" json with
   | Some (Json.Obj fields) ->
     List.iter
       (fun (k, v) -> if v <> Json.Bool true then complain "invariant %s" k)
       fields
   | _ -> complain "missing invariants object");
  if !failures > 0 then begin
    Printf.printf "%d drift regression(s) in %s\n" !failures report;
    exit 1
  end
  else
    Printf.printf "drift report OK: %d phases, policy converges faster and smaller\n"
      (List.length policy)

(* `serve` runs the multi-client epoch-isolation driver on a generated
   dataset: N reader domains against a live writer applying update batches
   and refreshes, every observation differentially verified against the
   single-threaded oracle at its pinned generation. Exit 1 on any reader
   error, stall, or oracle mismatch. *)
let cmd_serve dataset scale readers queries batches seed out =
  let spec =
    match Repro_datagen.Dataset.by_name dataset with
    | Some spec -> Repro_datagen.Dataset.scaled spec scale
    | None -> die "apexctl serve: unknown dataset %s" dataset
  in
  let module Driver = Repro_server.Driver in
  let config =
    { Driver.default_config with Driver.readers; queries_per_reader = queries; batches; seed }
  in
  let g = Repro_datagen.Dataset.build_graph spec in
  let report = Driver.run ~config g in
  let mismatches = Driver.verify_observations report in
  let json = Driver.report_json ~dataset:spec.Repro_datagen.Dataset.name
      ~checksum_mismatches:mismatches report
  in
  (match out with
   | "-" -> print_string json
   | file ->
     Out_channel.with_open_text file (fun oc -> output_string oc json);
     Printf.printf "%d queries on %d readers across %d publishes, %d mismatches -> %s\n"
       (Driver.total_queries report) readers report.Driver.publishes mismatches file);
  if Driver.total_errors report > 0 || Driver.stalled_readers report > 0 || mismatches > 0
  then exit 1

(* `lint-report` runs the same analysis as `dune build @lint` but emits
   the machine-readable report. Must run from the workspace root with a
   built tree (the .cmt files drive the mutability map): CI does
   `dune build @check` first. Exit codes follow Lint_engine.run_report:
   0 clean, 1 on any non-suppressed L8/L9 finding, 2 on schema or
   analysis errors. *)
let cmd_lint_report build_dir schema out _json roots =
  let roots = if roots = [] then [ "lib"; "bin"; "bench" ] else roots in
  exit
    (Apex_lint_core.Lint_engine.run_report ~build_dir ?schema_path:schema ~out roots)

open Cmdliner

let stats_cmd =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.jsonl")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Aggregate a JSONL trace into per-phase latency percentiles and \
          adaptation-event totals.")
    Term.(const cmd_stats $ trace_file)

let validate_cmd =
  let schema =
    Arg.(
      required
      & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA.json"
          ~doc:"Trace schema to validate against (see schemas/trace_schema.json).")
  in
  let traces =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"TRACE"
          ~doc:
            "Trace files: *.jsonl are checked as JSONL event logs, anything else \
             as Chrome trace_event JSON.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate exported traces against the checked-in schema; exit 1 on violation.")
    Term.(const cmd_validate $ schema $ traces)

let bench_diff_cmd =
  let base =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE.json")
  in
  let other =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CANDIDATE.json")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare per-dataset query checksums between two `bench --json` outputs; \
          exit 1 if any differ.")
    Term.(const cmd_bench_diff $ base $ other)

let drift_check_cmd =
  let report =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BENCH_DRIFT.json")
  in
  let max_rtc =
    Arg.(
      value & opt int 8
      & info [ "max-rtc" ] ~docv:"N"
          ~doc:
            "Upper bound on the policy's refreshes-to-convergence in any \
             phase (the committed baseline converges in at most 7).")
  in
  Cmd.v
    (Cmd.info "drift-check"
       ~doc:
         "Validate a `bench drift` report: the cost-benefit policy must \
          converge faster than support-only mining, to a smaller index, with \
          a stable post-convergence tail, on every phase; exit 1 on any \
          regression.")
    Term.(const cmd_drift_check $ report $ max_rtc)

let serve_cmd =
  let dataset =
    Arg.(
      value & opt string "four_tragedy"
      & info [ "dataset" ] ~docv:"NAME" ~doc:"Dataset to serve (see Table 1 names).")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F" ~doc:"Dataset node-target factor.")
  in
  let readers =
    Arg.(value & opt int 3 & info [ "readers" ] ~docv:"N" ~doc:"Reader domains to spawn.")
  in
  let queries =
    Arg.(
      value & opt int 60
      & info [ "queries" ] ~docv:"N" ~doc:"Queries per reader stream (readers loop over it).")
  in
  let batches =
    Arg.(value & opt int 8 & info [ "batches" ] ~docv:"N" ~doc:"Writer update batches.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let out =
    Arg.(
      value
      & opt string "BENCH_SERVE.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the serve report to $(docv) ($(b,-) for standard output).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent query server under a mixed read/write workload — reader \
          domains with epoch-snapshot isolation against a live writer — and write the \
          latency/lifecycle report; every reader observation is verified against the \
          single-threaded oracle at its pinned generation (exit 1 on any mismatch, \
          error, or stall).")
    Term.(const cmd_serve $ dataset $ scale $ readers $ queries $ batches $ seed $ out)

let lint_report_cmd =
  let build_dir =
    Arg.(
      value
      & opt string "_build/default"
      & info [ "build-dir" ] ~docv:"DIR"
          ~doc:"Dune context root holding the .cmt files of a completed build.")
  in
  let schema =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA.json"
          ~doc:
            "Validate the emitted report against this mini-contract schema \
             (see schemas/lint_report_schema.json); exit 2 on violation.")
  in
  let out =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) instead of standard output.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Accepted for symmetry with other subcommands; the report is \
             always JSON.")
  in
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ROOT" ~doc:"Source roots to lint (default: lib bin bench).")
  in
  Cmd.v
    (Cmd.info "lint-report"
       ~doc:
         "Run the whole-program domain-safety analysis and emit the mutability \
          map, L1-L9 findings, classified mutation sites, and global-state \
          inventory as schema-validated JSON.")
    Term.(const cmd_lint_report $ build_dir $ schema $ out $ json $ roots)

let cmd =
  Cmd.group
    (Cmd.info "apexctl" ~doc:"Telemetry introspection for the APEX reproduction")
    [ stats_cmd; validate_cmd; bench_diff_cmd; drift_check_cmd; serve_cmd; lint_report_cmd ]

let () = exit (Cmd.eval cmd)
