(** Per-key decayed signal attribution.

    Accumulates per-key measurement windows (observation count, unit cost,
    latency) as queries run; {!S.roll} folds each window into an
    exponentially-decayed accumulator ([acc <- decay * acc + window]) and
    zeroes it — one roll per refresh gives every signal a decayed view of
    recent windows, so cooling keys fade geometrically. Table-wide totals
    (queries, cost, latency) decay through the same horizon, keeping
    ratios of decayed quantities comparable. This is the measurement
    substrate the adaptation policy scores candidate paths from. *)

module type S = sig
  type key
  type t

  type stats = {
    support : float;  (** decayed count of observations of this key *)
    cost : float;     (** decayed summed unit cost *)
    latency : float;  (** decayed summed seconds *)
  }

  val create : ?max_keys:int -> decay:float -> unit -> t
  (** [decay] in [[0, 1)] is the per-roll retention (0 = windows only).
      When the table outgrows [max_keys] (default 65536), keys whose
      decayed support has faded to negligible are dropped at the next
      {!roll}. @raise Invalid_argument on out-of-range arguments. *)

  val observe_query : t -> cost:float -> latency:float -> unit
  (** Count one query into the table-wide window totals. *)

  val observe : t -> key -> cost:float -> latency:float -> unit
  (** Attribute one query's signals to [key] (call once per key the query
      touched, after {!observe_query}). *)

  val roll : t -> unit
  (** Fold every window into its decayed accumulator and zero it. *)

  val stats : t -> key -> stats
  (** Decayed accumulators for [key]; zeros when never observed. *)

  val queries : t -> float
  (** Decayed query count — the support denominator. *)

  val mean_query_cost : t -> float
  (** Decayed total cost over decayed query count; 0 before any roll. *)

  val iter : t -> (key -> stats -> unit) -> unit
  val tracked : t -> int
  val rolls : t -> int
end

module Make (Key : Hashtbl.HashedType) : S with type key = Key.t
