(* Minimal JSON: enough to write telemetry exports safely (string escaping)
   and to read them back for schema validation and tests. Numbers are
   floats; integers round-trip exactly up to 2^53, far beyond any counter
   this layer emits. Not a general-purpose JSON library: no streaming, the
   whole value lives in memory. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\":";
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> fail c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
       | None -> fail c "unterminated escape"
       | Some e ->
         advance c;
         (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if c.pos + 4 > String.length c.text then fail c "truncated \\u escape";
            let hex = String.sub c.text c.pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some v -> v
              | None -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* encode the scalar as UTF-8; surrogate pairs are passed
               through as two 3-byte sequences, fine for validation use *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail c "unknown escape"));
      go ()
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail c (Printf.sprintf "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> fail c "expected , or } in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> fail c "expected , or ] in array"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length text then
      Error (Printf.sprintf "at byte %d: trailing garbage" c.pos)
    else Ok v
  | exception Parse_error m -> Error m

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "boolean"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"
