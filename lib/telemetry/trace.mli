(** Span tracer: preallocated ring of spans and instant events.

    Disabled (the default) every entry point is a flag test — no
    allocation, no syscalls — so instrumentation can stay in hot paths
    unconditionally, the same zero-cost-when-off discipline as the Fault
    hook in Pager. Tokens are plain ints; [-1] means "tracing was off at
    [begin_]" and makes the matching [end_] free. *)

(** Span and event kinds. The first six are the query pipeline phases; the
    middle group are enclosing units of work; the [Path_promoted ..
    Block_skip] tail are instant events (adaptation decisions and
    block-skip notifications). *)
type kind =
  | Parse
  | Plan
  | Probe
  | Fetch
  | Join
  | Materialize
  | Query
  | Refresh
  | Mine
  | Prune
  | Traverse
  | Update_apply
  | Snapshot_commit
  | Recovery
  | Decode
      (** block-compressed extent payload decode; arg = blocks decoded *)
  | Epoch_publish
      (** serving: freeze + deep-copy + registry publish of a new epoch;
          arg = the published generation *)
  | Epoch_retire
      (** serving: one retire-list drain; arg = epochs actually freed *)
  | Reader_pin
      (** serving: one pinned query evaluation on a reader domain;
          arg = the generation served *)
  | Path_promoted
  | Path_evicted
  | Delta_flushed
  | Epoch_committed
  | Epoch_rolled_back
  | Update_aborted
  | Block_skip
      (** instant: compressed blocks proven disjoint from a probe by their
          header range test and never decoded; arg = blocks skipped *)
  | Slo_breach
      (** instant: an SLO objective's sliding-window estimate crossed its
          threshold; arg = objective index, note = objective name *)

val kind_name : kind -> string
val kind_is_event : kind -> bool

val enable : ?capacity:int -> unit -> unit
(** Allocate a fresh ring (default 65536 slots) and start recording.
    Discards any previous ring. *)

val disable : unit -> unit
(** Stop recording; the ring is kept for export. *)

val reset : unit -> unit
(** Stop recording and drop the ring. *)

val is_enabled : unit -> bool

val begin_ : kind -> int
(** Open a span; returns a token for [end_]. Returns [-1] without
    allocating when tracing is disabled. *)

val end_ : int -> unit

val end_arg : int -> int -> unit
(** [end_arg tok arg] closes the span and attaches an integer attribute
    (result cardinality, page count, ...). *)

val event : kind -> int -> unit
(** Record an instant event with an integer attribute. *)

val event_note : kind -> int -> string -> unit
(** Instant event with a string note; allocates the note — cold paths
    only. *)

val with_span : kind -> (unit -> 'a) -> 'a
(** Exception-safe span around [f]; allocates a closure, so for
    refresh/commit/recovery lifecycles, not the per-query hot path. *)

type span = {
  kind : kind;
  seq : int;
  start : float;  (** seconds since [enable] *)
  stop : float option;  (** [None]: never closed (e.g. aborted by fault) *)
  arg : int;
  note : string;
  is_event : bool;
}

val iter_spans : (span -> unit) -> unit
(** Spans still retained in the ring, oldest first. *)

val kind_counts : unit -> (kind * int) list
(** Per-kind totals since [enable]; survives ring wrap. *)

val kind_histogram : kind -> Metrics.histogram option
(** Duration histogram of closed spans of [kind]; [None] if empty. *)

val kind_histograms : unit -> (kind * Metrics.histogram) list

type stats = {
  recorded : int;
  retained : int;
  overwritten : int;
  dropped_ends : int;
}

val stats : unit -> stats
