(* Metrics registry: named counters, gauges, and log-bucketed histograms.
   Handles are plain mutable records so the hot path pays one load and one
   store per update — no hashtable lookup, no boxing. The registry is only
   consulted at registration and snapshot time.

   Registries are per-instance (e.g. one per Self_tuning.t): two indexes
   tuned in the same process must not share counters, and tests rely on
   exact per-instance counts. *)

type counter = { mutable count : int }

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

type gauge = { mutable level : float }

let set g v = g.level <- v
let level g = g.level

module Histogram = struct
  (* Log2-bucketed histogram. Bucket 0 holds non-positive samples; bucket
     b >= 1 holds values in [2^(b-1), 2^b) nanoseconds, i.e. the value
     scaled by 1e9 — latencies are recorded in seconds, sizes as floats of
     ints (where the 1e9 scale just shifts which buckets are used; the
     bucketing stays logarithmic and quantile estimates stay within a
     factor of 2). 96 buckets cover ~1ns to ~2.5e19s, far beyond any
     recordable value, so clamping at the top bucket never triggers in
     practice. *)
  let n_buckets = 96

  type t = {
    buckets : int array;
    mutable count : int;
    (* compensated running sum (Neumaier): [hi] is the naive accumulator,
       [comp] collects the rounding residue of every addition, so
       [hi +. comp] is the exact sum correctly rounded (up to a residue of
       the compensation additions themselves, far below one ulp of [hi]).
       Shard merges combine both parts with error-free transformations, so
       the reported sum is identical regardless of merge association —
       drift-harness reports must be bit-stable across shard orders. *)
    mutable hi : float;
    mutable comp : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () =
    { buckets = Array.make n_buckets 0;
      count = 0;
      hi = 0.;
      comp = 0.;
      vmin = infinity;
      vmax = neg_infinity }

  (* error-free transformation: returns (s, e) with s = fl(a + b) and
     s + e = a + b exactly (Knuth two-sum; no magnitude precondition) *)
  let two_sum a b =
    let s = a +. b in
    let a' = s -. b in
    let b' = s -. a' in
    let e = (a -. a') +. (b -. b') in
    (s, e)

  let scale = 1e9

  let bucket_of v =
    if not (v > 0.) then 0
    else begin
      let scaled = v *. scale in
      if scaled < 1. then 0
      else begin
        let b = 1 + int_of_float (Float.log2 scaled) in
        if b >= n_buckets then n_buckets - 1 else b
      end
    end

  (* geometric-ish midpoint of bucket b, back in value units *)
  let bucket_mid b =
    if b = 0 then 0.
    else Float.of_int (1 lsl (b - 1)) *. 1.5 /. scale

  let record t v =
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.count <- t.count + 1;
    let s, e = two_sum t.hi v in
    t.hi <- s;
    t.comp <- t.comp +. e;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.count
  let sum t = t.hi +. t.comp
  let min_value t = if t.count = 0 then 0. else t.vmin
  let max_value t = if t.count = 0 then 0. else t.vmax
  let mean t = if t.count = 0 then 0. else sum t /. Float.of_int t.count
  let bucket_counts t = Array.copy t.buckets

  let merge a b =
    let t = create () in
    for i = 0 to n_buckets - 1 do
      t.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
    done;
    t.count <- a.count + b.count;
    (* combine the (hi, comp) pairs and renormalize into a canonical
       double-double, so the merged pair — and therefore [sum] — depends
       only on the two operands' exact partial sums, not on association *)
    let s, e = two_sum a.hi b.hi in
    let s', e' = two_sum s (a.comp +. b.comp) in
    t.hi <- s';
    t.comp <- e' +. e;
    t.vmin <- Float.min a.vmin b.vmin;
    t.vmax <- Float.max a.vmax b.vmax;
    t

  (* Same observable contents: bucket counts, count, and exact-comparable
     extrema. [sum] is compared separately by the merge properties — the
     compensated representation is association-stable but the (hi, comp)
     split itself is not canonical. *)
  let equal_counts a b =
    a.count = b.count
    && a.buckets = b.buckets
    && Float.equal a.vmin b.vmin
    && Float.equal a.vmax b.vmax

  (* Quantile estimate by bucket walk: the answer is the midpoint of the
     bucket containing the q-th sample, exact to within the bucket's
     factor-of-2 width. q outside [0,1] is clamped. [quantile] of an empty
     histogram degenerates to 0. — callers that must distinguish "no data"
     from "zero latency" (SLO evaluation, percentile tables) use
     [quantile_opt]. A 1-sample histogram reports that sample exactly for
     every q: the min/max clamp collapses the bucket midpoint onto the
     single observed value. *)
  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank =
        let r = int_of_float (Float.round (q *. Float.of_int t.count)) in
        if r < 1 then 1 else if r > t.count then t.count else r
      in
      let acc = ref 0 and found = ref (-1) in
      (try
         for b = 0 to n_buckets - 1 do
           acc := !acc + t.buckets.(b);
           if !acc >= rank then begin
             found := b;
             raise Exit
           end
         done
       with Exit -> ());
      let b = if !found < 0 then n_buckets - 1 else !found in
      let est = bucket_mid b in
      (* clamp the estimate into the observed range so p0/p100 never fall
         outside [min, max] *)
      Float.max t.vmin (Float.min t.vmax est)
    end

  let quantile_opt t q = if t.count = 0 then None else Some (quantile t q)
end

type histogram = Histogram.t

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of histogram

(* A source contributes computed values at snapshot time — the bridge for
   hot structs like Io_stats / Cost that must stay plain records. *)
type source = unit -> (string * float) list

type t = {
  table : (string, metric) Hashtbl.t;
  mutable sources : (string * source) list;
}

let create () = { table = Hashtbl.create 32; sources = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let get_or_register t name make match_ =
  match Hashtbl.find_opt t.table name with
  | Some m ->
    (match match_ m with
     | Some v -> v
     | None ->
       invalid_arg
         (Printf.sprintf "Metrics: %S already registered as a %s" name
            (kind_name m)))
  | None ->
    let v, m = make () in
    Hashtbl.add t.table name m;
    v

let counter t name =
  get_or_register t name
    (fun () ->
      let c = { count = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  get_or_register t name
    (fun () ->
      let g = { level = 0. } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  get_or_register t name
    (fun () ->
      let h = Histogram.create () in
      (h, Hist h))
    (function Hist h -> Some h | _ -> None)

let register_source t name f = t.sources <- (name, f) :: t.sources

(* GC signals as a snapshot-time source: allocation regressions surface in
   bench --json and the introspection endpoint without any per-allocation
   hook. [Gc.quick_stat] skips the heap walk, so a snapshot stays cheap. *)
let gc_source () =
  let s = Gc.quick_stat () in
  (* quick_stat's minor_words is only refreshed at collection
     boundaries; Gc.minor_words reads the live allocation pointer, so
     the gauge moves even between minor collections *)
  [ ("minor_words", Gc.minor_words ());
    ("promoted_words", s.Gc.promoted_words);
    ("major_words", s.Gc.major_words);
    ("minor_collections", Float.of_int s.Gc.minor_collections);
    ("major_collections", Float.of_int s.Gc.major_collections);
    ("compactions", Float.of_int s.Gc.compactions);
    ("heap_words", Float.of_int s.Gc.heap_words) ]

let register_gc t = register_source t "gc" gc_source

type value =
  | Count of int
  | Level of float
  | Dist of histogram

let snapshot t =
  let metrics =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | Counter c -> Count c.count
          | Gauge g -> Level g.level
          | Hist h -> Dist h
        in
        (name, v) :: acc)
      t.table []
  in
  let sourced =
    List.concat_map
      (fun (prefix, f) ->
        List.map (fun (k, v) -> (prefix ^ "." ^ k, Level v)) (f ()))
      t.sources
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (metrics @ sourced)

let pp_value ppf = function
  | Count n -> Format.fprintf ppf "%d" n
  | Level v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Format.fprintf ppf "%.0f" v
    else Format.fprintf ppf "%g" v
  | Dist h ->
    if Histogram.count h = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf "n=%d mean=%.3g p50=%.3g p95=%.3g max=%.3g"
        (Histogram.count h) (Histogram.mean h)
        (Histogram.quantile h 0.5)
        (Histogram.quantile h 0.95)
        (Histogram.max_value h)

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-42s %a@." name pp_value v)
    (snapshot t)
