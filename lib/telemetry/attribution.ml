(* Per-key decayed signal attribution: the bridge between raw measurement
   (Cost counters, wall-clock latency) and an adaptation policy that needs
   "how much does this path cost the workload, lately?".

   Signals are accumulated into per-key *window* fields as queries run;
   [roll] folds each window into a decayed accumulator (acc <- decay * acc
   + window) and zeroes the windows — one roll per refresh gives every
   signal an exponentially-decayed view of the recent windows, so cooling
   keys fade geometrically instead of falling off a cliff when the log
   ring overwrites them. The same fold runs over the per-table totals
   (queries observed, total cost, total latency), so ratios of decayed
   quantities are comparable: numerator and denominator decay through the
   same horizon.

   Keyed through a functor so callers supply a proper hash (the lint pass
   bans polymorphic hashing in hot paths, and label paths need a content
   hash anyway). *)

module type S = sig
  type key
  type t

  type stats = {
    support : float;
    cost : float;
    latency : float;
  }

  val create : ?max_keys:int -> decay:float -> unit -> t
  val observe_query : t -> cost:float -> latency:float -> unit
  val observe : t -> key -> cost:float -> latency:float -> unit
  val roll : t -> unit
  val stats : t -> key -> stats
  val queries : t -> float
  val mean_query_cost : t -> float
  val iter : t -> (key -> stats -> unit) -> unit
  val tracked : t -> int
  val rolls : t -> int
end

module Make (Key : Hashtbl.HashedType) : S with type key = Key.t = struct
  module H = Hashtbl.Make (Key)

  type key = Key.t

  type stats = {
    support : float;
    cost : float;
    latency : float;
  }

  type cell = {
    mutable a_support : float;  (* decayed count of observations *)
    mutable a_cost : float;     (* decayed summed unit cost *)
    mutable a_latency : float;  (* decayed summed seconds *)
    mutable w_support : float;  (* current-window accumulators *)
    mutable w_cost : float;
    mutable w_latency : float;
  }

  type t = {
    decay : float;
    max_keys : int;
    table : cell H.t;
    mutable a_queries : float;
    mutable a_cost : float;
    mutable a_latency : float;
    mutable w_queries : float;
    mutable w_cost : float;
    mutable w_latency : float;
    mutable n_rolls : int;
  }

  let create ?(max_keys = 65536) ~decay () =
    if not (decay >= 0. && decay < 1.) then
      invalid_arg "Attribution.create: decay must be in [0, 1)";
    if max_keys <= 0 then invalid_arg "Attribution.create: max_keys must be positive";
    { decay;
      max_keys;
      table = H.create 256;
      a_queries = 0.;
      a_cost = 0.;
      a_latency = 0.;
      w_queries = 0.;
      w_cost = 0.;
      w_latency = 0.;
      n_rolls = 0 }

  let observe_query t ~cost ~latency =
    t.w_queries <- t.w_queries +. 1.;
    t.w_cost <- t.w_cost +. cost;
    t.w_latency <- t.w_latency +. latency

  let cell t key =
    match H.find_opt t.table key with
    | Some c -> c
    | None ->
      let c =
        { a_support = 0.;
          a_cost = 0.;
          a_latency = 0.;
          w_support = 0.;
          w_cost = 0.;
          w_latency = 0. }
      in
      H.add t.table key c;
      c

  let observe t key ~cost ~latency =
    let c = cell t key in
    c.w_support <- c.w_support +. 1.;
    c.w_cost <- c.w_cost +. cost;
    c.w_latency <- c.w_latency +. latency

  (* keys whose decayed support has faded below any plausible relevance;
     dropped when the table outgrows [max_keys] *)
  let negligible = 1e-6

  let roll t =
    let d = t.decay in
    t.a_queries <- (d *. t.a_queries) +. t.w_queries;
    t.a_cost <- (d *. t.a_cost) +. t.w_cost;
    t.a_latency <- (d *. t.a_latency) +. t.w_latency;
    t.w_queries <- 0.;
    t.w_cost <- 0.;
    t.w_latency <- 0.;
    let dead = ref [] in
    H.iter
      (fun k c ->
        c.a_support <- (d *. c.a_support) +. c.w_support;
        c.a_cost <- (d *. c.a_cost) +. c.w_cost;
        c.a_latency <- (d *. c.a_latency) +. c.w_latency;
        c.w_support <- 0.;
        c.w_cost <- 0.;
        c.w_latency <- 0.;
        if c.a_support < negligible then dead := k :: !dead)
      t.table;
    if H.length t.table > t.max_keys then
      List.iter (fun k -> H.remove t.table k) !dead;
    t.n_rolls <- t.n_rolls + 1

  let stats t key =
    match H.find_opt t.table key with
    | None -> { support = 0.; cost = 0.; latency = 0. }
    | Some c -> { support = c.a_support; cost = c.a_cost; latency = c.a_latency }

  let queries t = t.a_queries
  let mean_query_cost t = if t.a_queries > 0. then t.a_cost /. t.a_queries else 0.

  let iter t f =
    H.iter
      (fun k c -> f k { support = c.a_support; cost = c.a_cost; latency = c.a_latency })
      t.table

  let tracked t = H.length t.table
  let rolls t = t.n_rolls
end
