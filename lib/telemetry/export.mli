(** Exporters and auditors for the span ring.

    Writers read the live {!Trace} ring: JSONL (one object per line) and
    Chrome [trace_event] JSON for [chrome://tracing] / Perfetto. The
    reader, aggregators, and schema validator operate on saved files so a
    separate process (apexctl) can audit and summarize a trace. *)

val write_jsonl : out_channel -> unit
val write_chrome : out_channel -> unit
val save_jsonl : string -> unit
val save_chrome : string -> unit

type record = {
  name : string;
  is_event : bool;
  seq : int;
  ts : float;
  dur : float;
  arg : int;
  note : string;
}

val read_jsonl : string -> (record list, string) result

val summarize : record list -> (string * Metrics.histogram) list
(** Per-span-name duration histograms, sorted by name. *)

val event_totals : record list -> (string * int) list

val pp_duration : float -> string
(** Seconds to a human unit: ["250ns"], ["1.5us"], ["3.20ms"], ["1.200s"]. *)

val percentile_table : (string * Metrics.histogram) list -> string
(** Aligned table: count, p50/p90/p99, max, total per phase. *)

val live_percentile_table : unit -> string
(** {!percentile_table} over the live tracer's per-kind histograms. *)

val event_table : (string * int) list -> string

module Schema : sig
  (** Validator for the checked-in trace schema
      ([schemas/trace_schema.json]) — per-format required fields with
      expected JSON types plus legal record kinds. *)

  type t

  val load : string -> (t, string) result

  val validate_jsonl : t -> string -> (int, string list) result
  (** [Ok n]: all [n] lines conform. *)

  val validate_chrome : t -> string -> (int, string list) result
  (** [Ok n]: well-formed with [n] conforming trace events. *)
end
