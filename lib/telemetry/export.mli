(** Exporters and auditors for the span ring.

    Writers read the live {!Trace} ring: JSONL (one object per line) and
    Chrome [trace_event] JSON for [chrome://tracing] / Perfetto. The
    reader, aggregators, and schema validator operate on saved files so a
    separate process (apexctl) can audit and summarize a trace. *)

val write_jsonl : out_channel -> unit
val write_chrome : out_channel -> unit
val save_jsonl : string -> unit
val save_chrome : string -> unit

type record = {
  name : string;
  is_event : bool;
  seq : int;
  ts : float;
  dur : float;
  arg : int;
  note : string;
}

val read_jsonl : string -> (record list, string) result

val summarize : record list -> (string * Metrics.histogram) list
(** Per-span-name duration histograms, sorted by name. *)

val event_totals : record list -> (string * int) list

val pp_duration : float -> string
(** Seconds to a human unit: ["250ns"], ["1.5us"], ["3.20ms"], ["1.200s"]. *)

val percentile_table : (string * Metrics.histogram) list -> string
(** Aligned table: count, p50/p90/p99, max, total per phase. *)

val live_percentile_table : unit -> string
(** {!percentile_table} over the live tracer's per-kind histograms. *)

val event_table : (string * int) list -> string

val exposition : Metrics.t -> string
(** Prometheus-style text exposition of a registry snapshot: counters and
    gauges as single samples, histograms as cumulative [le]-labeled
    buckets (the log2 bucket edges) plus [_sum]/[_count]. Names are
    sanitized to [[a-zA-Z0-9_]] and prefixed ["apex_"]. *)

val write_exposition : out_channel -> Metrics.t -> unit
val save_exposition : string -> Metrics.t -> unit

module Schema : sig
  (** Validator for the checked-in trace schema
      ([schemas/trace_schema.json]) — per-format required fields with
      expected JSON types plus legal record kinds. *)

  type t

  val load : string -> (t, string) result

  type shape
  (** One record contract: required fields with expected JSON types plus
      an optional kinds-constrained field. *)

  val shape_of_json : Json.t -> shape
  val check : shape -> ctx:string -> Json.t -> string list
  (** Conformance errors of one JSON value against [shape]; [] = ok. *)

  val validate_jsonl : t -> string -> (int, string list) result
  (** [Ok n]: all [n] lines conform. *)

  val validate_chrome : t -> string -> (int, string list) result
  (** [Ok n]: well-formed with [n] conforming trace events. *)
end
