(* Flight recorder: an always-on, fixed-size incident buffer.

   Where the Trace ring is opt-in (bench --trace) and fine-grained (every
   pipeline phase), the flight recorder is cheap enough to leave armed in
   production: a few hundred slots of coarse operational events — queries
   drained, epochs published/retired, refreshes, rollbacks, SLO breaches,
   watchdog trips — so that when something goes wrong, the last seconds of
   server history are already in memory and one [dump] writes them out.

   Recording is zero-allocation when armed: slots are struct-of-arrays int
   arrays, kinds are immediate constructors, and timestamps come from a
   coarse internal clock ([tick], called by the writer at drain
   boundaries) rather than per-record [Unix.gettimeofday] — gettimeofday
   returns a boxed float, which would put an allocation on every record.
   Callers holding a better timestamp (e.g. a drained observation's
   latency capture) use [record_at] with explicit nanoseconds.

   The incident file is the union of three evidence sources: the flight
   ring itself, the last spans of the Trace ring (when tracing is on), and
   metric deltas against a baseline captured at [create]. Its JSON layout
   is contracted by schemas/incident_schema.json (the same mini-contract
   style as the trace schema) and checked by [validate_file] /
   `apexctl incident-dump`.

   A Flight.t hangs off Server.t and is mutated only by the single writer
   (record/tick/watchdog) — shared root, "flight" guard tag for L8. *)

type kind =
  | Query  (* a = generation served, b = latency ns *)
  | Publish  (* a = generation published, b = retired entries *)
  | Retire  (* a = epochs freed *)
  | Refresh  (* a = generation after refresh, b = plan changes *)
  | Update_batch  (* a = ops applied *)
  | Drain  (* a = observations drained, b = queue dropped total *)
  | Rollback  (* a = generation restored *)
  | Slo_breach  (* a = objective index, b = burn rate x1000 *)
  | Watchdog_trip  (* a = generation, b = latency ns *)
  | Fatal  (* a, b = 0; reason goes in the dump *)
  | Mark  (* free-form caller marker *)

let n_kinds = 11

let kind_index = function
  | Query -> 0
  | Publish -> 1
  | Retire -> 2
  | Refresh -> 3
  | Update_batch -> 4
  | Drain -> 5
  | Rollback -> 6
  | Slo_breach -> 7
  | Watchdog_trip -> 8
  | Fatal -> 9
  | Mark -> 10

let all_kinds =
  [| Query; Publish; Retire; Refresh; Update_batch; Drain; Rollback;
     Slo_breach; Watchdog_trip; Fatal; Mark |]
[@@apex.guarded "readonly"]

let kind_name = function
  | Query -> "query"
  | Publish -> "publish"
  | Retire -> "retire"
  | Refresh -> "refresh"
  | Update_batch -> "update_batch"
  | Drain -> "drain"
  | Rollback -> "rollback"
  | Slo_breach -> "slo_breach"
  | Watchdog_trip -> "watchdog_trip"
  | Fatal -> "fatal"
  | Mark -> "mark"

type ring = {
  cap : int;
  kinds : int array;
  seqs : int array;  (* global seq of the event occupying each slot *)
  times : int array;  (* ns since [t0], from the coarse clock *)
  args_a : int array;
  args_b : int array;
  counts : int array;  (* per kind; survives ring wrap *)
  mutable next_seq : int;
  mutable clock_ns : int;  (* refreshed by [tick]; read by [record] *)
}

type t = {
  ring : ring; [@apex.guarded "flight"]
  t0 : float;
  mutable armed : bool; [@apex.guarded "flight"]
  mutable watchdog_ns : int; [@apex.guarded "flight"]  (* 0 = no watchdog *)
  mutable trips : int; [@apex.guarded "flight"]
  mutable dumps : int; [@apex.guarded "flight"]
  baseline : (string * float) list; [@apex.guarded "flight"]
  metrics : Metrics.t option;
}
[@@apex.shared]

(* One float per metric at snapshot time: counters and gauges as their
   value, histograms as their sample count — enough to show "what moved"
   between baseline and incident. *)
let metric_levels m =
  List.map
    (fun (name, v) ->
      match v with
      | Metrics.Count n -> (name, Float.of_int n)
      | Metrics.Level l -> (name, l)
      | Metrics.Dist h -> (name, Float.of_int (Metrics.Histogram.count h)))
    (Metrics.snapshot m)

let default_capacity = 1024

let create ?(capacity = default_capacity) ?metrics () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be positive";
  { ring =
      { cap = capacity;
        kinds = Array.make capacity 0;
        seqs = Array.make capacity (-1);
        times = Array.make capacity 0;
        args_a = Array.make capacity 0;
        args_b = Array.make capacity 0;
        counts = Array.make n_kinds 0;
        next_seq = 0;
        clock_ns = 0 };
    t0 = Unix.gettimeofday ();
    armed = true;
    watchdog_ns = 0;
    trips = 0;
    dumps = 0;
    baseline = (match metrics with Some m -> metric_levels m | None -> []);
    metrics }

let arm t = t.armed <- true
let disarm t = t.armed <- false
let is_armed t = t.armed

(* Cold: refresh the coarse clock. The boxed float from gettimeofday is
   allocated here, once per drain boundary, not once per record. *)
let tick t =
  t.ring.clock_ns <- int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e9)

let record_at t k ~a ~b ~t_ns =
  if t.armed then begin
    let r = t.ring in
    let seq = r.next_seq in
    r.next_seq <- seq + 1;
    let i = seq mod r.cap in
    let ki = kind_index k in
    r.kinds.(i) <- ki;
    r.seqs.(i) <- seq;
    r.times.(i) <- t_ns;
    r.args_a.(i) <- a;
    r.args_b.(i) <- b;
    r.counts.(ki) <- r.counts.(ki) + 1
  end

let record t k ~a ~b = record_at t k ~a ~b ~t_ns:t.ring.clock_ns

(* --- watchdog --- *)

let set_watchdog t ~threshold =
  if not (threshold > 0.) then
    invalid_arg "Flight.set_watchdog: threshold must be positive";
  t.watchdog_ns <- int_of_float (threshold *. 1e9)

let clear_watchdog t = t.watchdog_ns <- 0

(* Hot (per drained observation): compare an integer-ns latency against
   the threshold; on trip, count it and drop a Watchdog_trip in the ring.
   Returns whether it tripped so the caller can decide to dump. *)
let check_latency t ~generation ~latency_ns =
  if t.watchdog_ns > 0 && latency_ns > t.watchdog_ns then begin
    t.trips <- t.trips + 1;
    record t Watchdog_trip ~a:generation ~b:latency_ns;
    true
  end
  else false

let trips t = t.trips
let dumps t = t.dumps

(* --- reading the ring --- *)

type event = {
  ev_kind : kind;
  ev_seq : int;
  ev_t : float;  (* seconds since [create] *)
  ev_a : int;
  ev_b : int;
}

let iter_events t f =
  let r = t.ring in
  let first = if r.next_seq > r.cap then r.next_seq - r.cap else 0 in
  for seq = first to r.next_seq - 1 do
    let i = seq mod r.cap in
    if r.seqs.(i) = seq then
      f
        { ev_kind = all_kinds.(r.kinds.(i));
          ev_seq = seq;
          ev_t = Float.of_int r.times.(i) /. 1e9;
          ev_a = r.args_a.(i);
          ev_b = r.args_b.(i) }
  done

type stats = { recorded : int; retained : int; overwritten : int }

let stats t =
  let r = t.ring in
  let overwritten = if r.next_seq > r.cap then r.next_seq - r.cap else 0 in
  { recorded = r.next_seq; retained = r.next_seq - overwritten; overwritten }

let kind_counts t =
  let acc = ref [] in
  for ki = n_kinds - 1 downto 0 do
    if t.ring.counts.(ki) > 0 then
      acc := (all_kinds.(ki), t.ring.counts.(ki)) :: !acc
  done;
  !acc

(* --- incident dump --- *)

let max_trace_spans = 256

(* Last [max_trace_spans] spans of the Trace ring, oldest first. *)
let trace_tail () =
  let q = Queue.create () in
  Trace.iter_spans (fun s ->
      Queue.add s q;
      if Queue.length q > max_trace_spans then ignore (Queue.pop q));
  List.of_seq (Queue.to_seq q)

let span_json (s : Trace.span) =
  let dur = match s.stop with Some stop -> stop -. s.start | None -> 0. in
  Json.Obj
    (List.concat
       [ [ ("name", Json.Str (Trace.kind_name s.kind));
           ("seq", Json.Num (Float.of_int s.seq));
           ("ts", Json.Num s.start);
           ("dur", Json.Num dur);
           ("arg", Json.Num (Float.of_int s.arg)) ];
         (if s.note = "" then [] else [ ("note", Json.Str s.note) ]);
         (if s.is_event then [ ("event", Json.Bool true) ] else []) ])

let event_json ev =
  Json.Obj
    [ ("kind", Json.Str (kind_name ev.ev_kind));
      ("seq", Json.Num (Float.of_int ev.ev_seq));
      ("t", Json.Num ev.ev_t);
      ("a", Json.Num (Float.of_int ev.ev_a));
      ("b", Json.Num (Float.of_int ev.ev_b)) ]

(* Union of baseline and current metric names: names new since the
   baseline get base 0; names that vanished from the registry report
   now = base (delta 0 — no evidence they moved). *)
let metric_deltas t =
  match t.metrics with
  | None -> []
  | Some m ->
    let now = metric_levels m in
    let base_of name =
      Option.value (List.assoc_opt name t.baseline) ~default:0.
    in
    let now_names = List.map fst now in
    let stale =
      List.filter (fun (name, _) -> not (List.mem name now_names)) t.baseline
    in
    List.map (fun (name, v) -> (name, base_of name, v)) now
    @ List.map (fun (name, v) -> (name, v, v)) stale

let incident_json ?(reason = "on-demand") ?(slo = Json.Null) t =
  let now = Unix.gettimeofday () in
  let st = stats t in
  let events = ref [] in
  iter_events t (fun ev -> events := event_json ev :: !events);
  Json.Obj
    [ ( "incident",
        Json.Obj
          [ ("schema", Json.Str "apex-incident-v1");
            ("reason", Json.Str reason);
            ("uptime_seconds", Json.Num (now -. t.t0));
            ("recorded", Json.Num (Float.of_int st.recorded));
            ("retained", Json.Num (Float.of_int st.retained));
            ("watchdog_trips", Json.Num (Float.of_int t.trips));
            ("dumps", Json.Num (Float.of_int t.dumps));
            ("armed", Json.Bool t.armed) ] );
      ("events", Json.Arr (List.rev !events));
      ("spans", Json.Arr (List.map span_json (trace_tail ())));
      ( "metrics",
        Json.Arr
          (List.map
             (fun (name, base, now) ->
               Json.Obj
                 [ ("name", Json.Str name);
                   ("base", Json.Num base);
                   ("now", Json.Num now);
                   ("delta", Json.Num (now -. base)) ])
             (metric_deltas t)) );
      ("slo", slo) ]

let dump ?reason ?slo t path =
  t.dumps <- t.dumps + 1;
  let json = incident_json ?reason ?slo t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

(* Exception-safe wrapper for a server main loop: on any exception, record
   a Fatal event, dump the incident file, and re-raise. *)
let guard t ~dump_to f =
  try f ()
  with e ->
    record t Fatal ~a:0 ~b:0;
    (* best-effort: a failing dump must not mask the original exception *)
    (try dump ~reason:("fatal: " ^ Printexc.to_string e) t dump_to
     with Sys_error _ -> ());
    raise e

(* --- incident-file validation (mini-contract, like the trace schema) --- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let validate ~schema json =
  match json with
  | Json.Obj _ ->
    let errors = ref [] in
    let shape_of name =
      match Json.member name schema with
      | Some j -> Some (Export.Schema.shape_of_json j)
      | None ->
        errors := Printf.sprintf "schema: missing %S section" name :: !errors;
        None
    in
    let check_section ~section ~shape_name =
      match shape_of shape_name with
      | None -> ()
      | Some shape ->
        (match Json.member section json with
         | Some (Json.Obj _ as j) when section = "incident" ->
           errors := Export.Schema.check shape ~ctx:section j @ !errors
         | Some (Json.Arr items) when section <> "incident" ->
           List.iteri
             (fun i item ->
               let ctx = Printf.sprintf "%s[%d]" section i in
               errors := Export.Schema.check shape ~ctx item @ !errors)
             items
         | Some j ->
           errors :=
             Printf.sprintf "%s: is %s, expected %s" section
               (Json.type_name j)
               (if section = "incident" then "object" else "array")
             :: !errors
         | None ->
           errors := Printf.sprintf "missing %S section" section :: !errors)
    in
    check_section ~section:"incident" ~shape_name:"incident";
    check_section ~section:"events" ~shape_name:"event";
    check_section ~section:"spans" ~shape_name:"span";
    check_section ~section:"metrics" ~shape_name:"metric";
    if !errors = [] then Ok () else Error (List.rev !errors)
  | j -> Error [ Printf.sprintf "top level is %s, expected object" (Json.type_name j) ]

let validate_file ~schema_path path =
  match Json.parse (read_file schema_path) with
  | exception Sys_error e -> Error [ e ]
  | Error e -> Error [ Printf.sprintf "%s: %s" schema_path e ]
  | Ok schema ->
    (match Json.parse (read_file path) with
     | exception Sys_error e -> Error [ e ]
     | Error e -> Error [ Printf.sprintf "%s: %s" path e ]
     | Ok json -> validate ~schema json)
