(* SLO monitor: per-objective latency targets (quantile + threshold)
   evaluated over a sliding window of log2 histograms.

   Each objective owns a ring of [subwindows] sub-window histograms; the
   hot side ([observe]) records into the current sub-window — one
   Histogram.record, no allocation beyond the histogram's own stores. The
   cold side ([advance], called by the server writer once per drain or on
   a timer) merges the ring into one window, estimates the target
   quantile, compares against the threshold, updates burn-rate counters,
   emits a [Trace.Slo_breach] instant per breached objective, and rotates
   the ring (the oldest sub-window is replaced by a fresh histogram). The
   effective window therefore covers the last [subwindows] advances, and
   one advance retires exactly 1/subwindows of the evidence — the standard
   sliding-window approximation.

   Low-count windows are handled explicitly: an empty window yields
   [st_estimate = None] and never breaches ("no data" is not "zero
   latency"); a 1-sample window reports that sample exactly (the
   histogram's min/max clamp collapses the bucket midpoint onto the single
   observation) and can breach only when [min_samples <= 1].

   Burn rate follows the error-budget convention: the fraction of window
   samples over the threshold, divided by the budgeted fraction [1 - q].
   A burn rate of 1.0 means the window spends its budget exactly; 2.0
   means twice as fast. "Over the threshold" is counted from the bucket
   walk — samples in buckets strictly above the threshold's bucket — so
   it under-counts by at most the threshold's own factor-of-2 bucket,
   consistent with every other quantile estimate in this layer.

   All mutation happens on the caller's (single writer) side; the monitor
   is reached from Server.t, hence shared, hence the "slo" guard tag on
   its mutable state for the L8 domain-safety pass. *)

type objective = {
  slo_name : string;
  slo_quantile : float;  (* target quantile in (0,1), e.g. 0.99 *)
  slo_threshold : float;  (* seconds *)
}

type cell = {
  c_objective : objective;
  c_windows : Metrics.histogram array;  (* sub-window ring *)
  mutable c_breaches : int;  (* windows evaluated as breached *)
  mutable c_breached : bool;  (* latest evaluation *)
}

type t = {
  subwindows : int;
  min_samples : int;
  cells : cell array; [@apex.guarded "slo"]
  mutable cur : int; [@apex.guarded "slo"]
  mutable advances : int; [@apex.guarded "slo"]
}
[@@apex.shared]

let create ?(subwindows = 6) ?(min_samples = 1) objectives =
  if subwindows < 1 then invalid_arg "Slo.create: subwindows must be positive";
  List.iter
    (fun o ->
      if not (o.slo_quantile > 0. && o.slo_quantile < 1.) then
        invalid_arg
          (Printf.sprintf "Slo.create: %s: quantile must be in (0,1)"
             o.slo_name);
      if not (o.slo_threshold > 0.) then
        invalid_arg
          (Printf.sprintf "Slo.create: %s: threshold must be positive"
             o.slo_name))
    objectives;
  { subwindows;
    min_samples;
    cells =
      Array.of_list
        (List.map
           (fun o ->
             { c_objective = o;
               c_windows =
                 Array.init subwindows (fun _ -> Metrics.Histogram.create ());
               c_breaches = 0;
               c_breached = false })
           objectives);
    cur = 0;
    advances = 0 }

let objectives t =
  Array.to_list (Array.map (fun c -> c.c_objective) t.cells)

let n_objectives t = Array.length t.cells

let index t name =
  let found = ref None in
  Array.iteri
    (fun i c -> if !found = None && c.c_objective.slo_name = name then found := Some i)
    t.cells;
  !found

let observe t i latency =
  let c = t.cells.(i) in
  Metrics.Histogram.record c.c_windows.(t.cur) latency

type status = {
  st_name : string;
  st_quantile : float;
  st_threshold : float;
  st_samples : int;  (* samples in the merged window *)
  st_estimate : float option;  (* [None]: empty window, no verdict *)
  st_burn : float;  (* error-budget burn rate over the window *)
  st_breached : bool;
  st_breaches : int;  (* cumulative breached windows *)
  st_windows : int;  (* cumulative windows evaluated *)
}

let merged_window c =
  Array.fold_left Metrics.Histogram.merge (Metrics.Histogram.create ())
    c.c_windows

(* samples in buckets strictly above the threshold's bucket *)
let over_threshold merged threshold =
  let bt = Metrics.Histogram.bucket_of threshold in
  let counts = Metrics.Histogram.bucket_counts merged in
  let over = ref 0 in
  for b = bt + 1 to Array.length counts - 1 do
    over := !over + counts.(b)
  done;
  !over

let evaluate_cell t c =
  let o = c.c_objective in
  let merged = merged_window c in
  let samples = Metrics.Histogram.count merged in
  let estimate = Metrics.Histogram.quantile_opt merged o.slo_quantile in
  let breached =
    match estimate with
    | Some e when samples >= t.min_samples -> e > o.slo_threshold
    | _ -> false
  in
  let burn =
    if samples = 0 then 0.
    else
      let bad = over_threshold merged o.slo_threshold in
      Float.of_int bad /. Float.of_int samples /. (1. -. o.slo_quantile)
  in
  { st_name = o.slo_name;
    st_quantile = o.slo_quantile;
    st_threshold = o.slo_threshold;
    st_samples = samples;
    st_estimate = estimate;
    st_burn = burn;
    st_breached = breached;
    st_breaches = c.c_breaches;
    st_windows = t.advances }

(* Evaluate without rotating or counting: the introspection view. *)
let current t = Array.to_list (Array.map (evaluate_cell t) t.cells)

let advance t =
  t.advances <- t.advances + 1;
  let statuses =
    Array.mapi
      (fun i c ->
        let st = evaluate_cell t c in
        c.c_breached <- st.st_breached;
        if st.st_breached then begin
          c.c_breaches <- c.c_breaches + 1;
          Trace.event_note Trace.Slo_breach i c.c_objective.slo_name
        end;
        { st with st_breaches = c.c_breaches; st_windows = t.advances })
      t.cells
  in
  t.cur <- (t.cur + 1) mod t.subwindows;
  Array.iter
    (fun c -> c.c_windows.(t.cur) <- Metrics.Histogram.create ())
    t.cells;
  Array.to_list statuses

let breach_total t =
  Array.fold_left (fun acc c -> acc + c.c_breaches) 0 t.cells

let breached t = Array.exists (fun c -> c.c_breached) t.cells

let advances t = t.advances

let status_json st =
  Json.Obj
    [ ("name", Json.Str st.st_name);
      ("quantile", Json.Num st.st_quantile);
      ("threshold", Json.Num st.st_threshold);
      ("samples", Json.Num (Float.of_int st.st_samples));
      ( "estimate",
        match st.st_estimate with None -> Json.Null | Some e -> Json.Num e );
      ("burn_rate", Json.Num st.st_burn);
      ("breached", Json.Bool st.st_breached);
      ("breaches", Json.Num (Float.of_int st.st_breaches));
      ("windows", Json.Num (Float.of_int st.st_windows)) ]

let to_json t =
  Json.Obj
    [ ("subwindows", Json.Num (Float.of_int t.subwindows));
      ("min_samples", Json.Num (Float.of_int t.min_samples));
      ("advances", Json.Num (Float.of_int t.advances));
      ("objectives", Json.Arr (List.map status_json (current t))) ]

let default_objectives =
  [ { slo_name = "q1"; slo_quantile = 0.99; slo_threshold = 0.05 };
    { slo_name = "q2"; slo_quantile = 0.99; slo_threshold = 0.05 };
    { slo_name = "q3"; slo_quantile = 0.99; slo_threshold = 0.05 } ]

(* Objective spec: "name:pQQ:threshold_seconds" joined by commas, e.g.
   "q1:p99:0.005,q2:p99.9:0.02". *)
let parse_objective spec =
  match String.split_on_char ':' spec with
  | [ name; q; thr ] ->
    let name = String.trim name in
    let q = String.trim q in
    let qlen = String.length q in
    if name = "" then Error (Printf.sprintf "%S: empty objective name" spec)
    else if qlen < 2 || q.[0] <> 'p' then
      Error (Printf.sprintf "%S: quantile must look like p99" spec)
    else begin
      match float_of_string_opt (String.sub q 1 (qlen - 1)) with
      | None -> Error (Printf.sprintf "%S: bad quantile %S" spec q)
      | Some pct when not (pct > 0. && pct < 100.) ->
        Error (Printf.sprintf "%S: quantile must be in (p0, p100)" spec)
      | Some pct ->
        (match float_of_string_opt (String.trim thr) with
         | None -> Error (Printf.sprintf "%S: bad threshold %S" spec thr)
         | Some t when not (t > 0.) ->
           Error (Printf.sprintf "%S: threshold must be positive" spec)
         | Some t ->
           Ok
             { slo_name = name;
               slo_quantile = pct /. 100.;
               slo_threshold = t })
    end
  | _ -> Error (Printf.sprintf "%S: expected name:pQQ:threshold" spec)

let parse_objectives s =
  let specs =
    List.filter
      (fun x -> String.trim x <> "")
      (String.split_on_char ',' s)
  in
  if specs = [] then Error "empty SLO spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | spec :: rest ->
        (match parse_objective (String.trim spec) with
         | Ok o -> go (o :: acc) rest
         | Error e -> Error e)
    in
    go [] specs
