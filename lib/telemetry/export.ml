(* Exporters for the span ring: JSONL event log (one JSON object per
   line, grep/jq-friendly, append-safe) and Chrome trace_event JSON
   (load via chrome://tracing or https://ui.perfetto.dev). Both read the
   live Trace ring; the JSONL reader and schema validator let a separate
   process (apexctl) audit and summarize a saved trace. *)

(* --- writing --- *)

let jsonl_line buf (s : Trace.span) =
  Buffer.clear buf;
  let dur = match s.stop with Some stop -> stop -. s.start | None -> 0. in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"type":%S,"name":%S,"seq":%d,"ts":%.9f,"dur":%.9f,"arg":%d|}
       (if s.is_event then "event" else "span")
       (Trace.kind_name s.kind) s.seq s.start dur s.arg);
  if s.note <> "" then begin
    Buffer.add_string buf {|,"note":"|};
    Buffer.add_string buf (Json.escape s.note);
    Buffer.add_char buf '"'
  end;
  if (not s.is_event) && s.stop = None then
    Buffer.add_string buf {|,"open":true|};
  Buffer.add_string buf "}\n"

let write_jsonl oc =
  let buf = Buffer.create 160 in
  Trace.iter_spans (fun s ->
      jsonl_line buf s;
      output_string oc (Buffer.contents buf))

let us t = t *. 1e6

let chrome_span buf (s : Trace.span) =
  Buffer.clear buf;
  if s.is_event then
    Buffer.add_string buf
      (Printf.sprintf
         {|{"name":%S,"cat":"apex","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":1,"args":{"seq":%d,"arg":%d%s}}|}
         (Trace.kind_name s.kind) (us s.start) s.seq s.arg
         (if s.note = "" then ""
          else Printf.sprintf {|,"note":"%s"|} (Json.escape s.note)))
  else begin
    let dur = match s.stop with Some stop -> stop -. s.start | None -> 0. in
    Buffer.add_string buf
      (Printf.sprintf
         {|{"name":%S,"cat":"apex","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":1,"args":{"seq":%d,"arg":%d}}|}
         (Trace.kind_name s.kind) (us s.start) (us dur) s.seq s.arg)
  end

let write_chrome oc =
  output_string oc {|{"traceEvents":[|};
  let buf = Buffer.create 200 in
  let first = ref true in
  Trace.iter_spans (fun s ->
      if !first then first := false else output_string oc ",\n";
      chrome_span buf s;
      output_string oc (Buffer.contents buf));
  output_string oc {|],"displayTimeUnit":"ms"}|};
  output_string oc "\n"

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let save_jsonl path = with_file path write_jsonl
let save_chrome path = with_file path write_chrome

(* --- reading --- *)

type record = {
  name : string;
  is_event : bool;
  seq : int;
  ts : float;
  dur : float;
  arg : int;
  note : string;
}

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then lines := line :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let record_of_json j =
  let str key = Option.bind (Json.member key j) Json.to_str in
  let num key = Option.bind (Json.member key j) Json.to_float in
  match (str "type", str "name", num "seq", num "ts", num "dur", num "arg") with
  | Some typ, Some name, Some seq, Some ts, Some dur, Some arg ->
    Ok
      { name;
        is_event = typ = "event";
        seq = int_of_float seq;
        ts;
        dur;
        arg = int_of_float arg;
        note = Option.value (str "note") ~default:"" }
  | _ -> Error "missing or mistyped field (type/name/seq/ts/dur/arg)"

let read_jsonl path =
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match Json.parse line with
       | Error e -> Error (Printf.sprintf "line %d: %s" n e)
       | Ok j ->
         (match record_of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
          | Ok r -> go (n + 1) (r :: acc) rest))
  in
  match read_lines path with
  | lines -> go 1 [] lines
  | exception Sys_error e -> Error e

(* --- aggregation over records (for apexctl stats) --- *)

let summarize records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if not r.is_event then begin
        let h =
          match Hashtbl.find_opt tbl r.name with
          | Some h -> h
          | None ->
            let h = Metrics.Histogram.create () in
            Hashtbl.add tbl r.name h;
            h
        in
        Metrics.Histogram.record h r.dur
      end)
    records;
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let event_totals records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if r.is_event then
        Hashtbl.replace tbl r.name
          (1 + Option.value (Hashtbl.find_opt tbl r.name) ~default:0))
    records;
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- human-readable percentile table --- *)

let pp_duration f =
  if f < 1e-6 then Printf.sprintf "%.0fns" (f *. 1e9)
  else if f < 1e-3 then Printf.sprintf "%.1fus" (f *. 1e6)
  else if f < 1. then Printf.sprintf "%.2fms" (f *. 1e3)
  else Printf.sprintf "%.3fs" f

(* Low-count windows are handled explicitly rather than letting the
   quantile degenerate: an empty histogram prints "-" in every value
   column (0 is a legal latency, absent data is not), and a 1-sample
   histogram reports that sample exactly for every percentile (the
   histogram's min/max clamp collapses the bucket midpoint onto the
   single observation). *)
let percentile_table entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %8s %10s %10s %10s %10s %10s\n" "phase" "count"
       "p50" "p90" "p99" "max" "total");
  List.iter
    (fun (name, h) ->
      let n = Metrics.Histogram.count h in
      let q p =
        match Metrics.Histogram.quantile_opt h p with
        | None -> "-"
        | Some v -> pp_duration v
      in
      let whole f = if n = 0 then "-" else pp_duration (f h) in
      Buffer.add_string buf
        (Printf.sprintf "%-16s %8d %10s %10s %10s %10s %10s\n" name n
           (q 0.5) (q 0.9) (q 0.99)
           (whole Metrics.Histogram.max_value)
           (whole Metrics.Histogram.sum)))
    entries;
  Buffer.contents buf

let live_percentile_table () =
  percentile_table
    (List.map
       (fun (k, h) -> (Trace.kind_name k, h))
       (Trace.kind_histograms ()))

let event_table entries =
  let buf = Buffer.create 128 in
  List.iter
    (fun (name, n) ->
      Buffer.add_string buf (Printf.sprintf "%-20s %8d\n" name n))
    entries;
  Buffer.contents buf

(* --- Prometheus-style text exposition --- *)

(* One block per registry entry: counters and gauges as single samples,
   histograms as cumulative le-labeled buckets plus _sum/_count. Bucket
   upper bounds are the log2 histogram's bucket edges (2^b nanoseconds)
   converted to base units; only buckets up to the highest non-empty one
   are emitted, then "+Inf". Metric names are sanitized to the
   [a-zA-Z0-9_] alphabet and prefixed "apex_". *)

let exposition_name name =
  let sane =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  "apex_" ^ sane

let exposition_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* upper edge of bucket b in value units: 2^b ns (bucket 0's edge is 1ns) *)
let bucket_edge b =
  (if b = 0 then 1. else 2. ** Float.of_int b) /. Metrics.Histogram.scale

let exposition m =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      let pname = exposition_name name in
      match v with
      | Metrics.Count n ->
        line "# TYPE %s counter\n" pname;
        line "%s %d\n" pname n
      | Metrics.Level l ->
        line "# TYPE %s gauge\n" pname;
        line "%s %s\n" pname (exposition_num l)
      | Metrics.Dist h ->
        line "# TYPE %s histogram\n" pname;
        let counts = Metrics.Histogram.bucket_counts h in
        let top = ref (-1) in
        Array.iteri (fun b c -> if c > 0 then top := b) counts;
        let cum = ref 0 in
        for b = 0 to !top do
          cum := !cum + counts.(b);
          line "%s_bucket{le=\"%s\"} %d\n" pname
            (exposition_num (bucket_edge b))
            !cum
        done;
        line "%s_bucket{le=\"+Inf\"} %d\n" pname (Metrics.Histogram.count h);
        line "%s_sum %s\n" pname (exposition_num (Metrics.Histogram.sum h));
        line "%s_count %d\n" pname (Metrics.Histogram.count h))
    (Metrics.snapshot m);
  Buffer.contents buf

let write_exposition oc m = output_string oc (exposition m)
let save_exposition path m = with_file path (fun oc -> write_exposition oc m)

(* --- schema validation --- *)

module Schema = struct
  (* The checked-in schema (schemas/trace_schema.json) is a small
     domain-specific contract, not JSON Schema: per-format lists of
     required fields with expected JSON types, the set of legal record
     types / chrome phases, and the chrome top-level key. *)

  type shape = {
    required : (string * string) list;  (* field name -> json type name *)
    kinds_field : string option;  (* field constrained to [kinds] *)
    kinds : string list;
  }

  type t = {
    jsonl : shape;
    chrome : shape;
    chrome_top : string;
  }

  let shape_of_json j =
    let required =
      match Json.member "required" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun t -> (k, t)) (Json.to_str v))
          fields
      | _ -> []
    in
    let kinds_field =
      Option.bind (Json.member "kinds_field" j) Json.to_str
    in
    let kinds =
      match Json.member "kinds" j with
      | Some (Json.Arr items) -> List.filter_map Json.to_str items
      | _ -> []
    in
    { required; kinds_field; kinds }

  let load path =
    let ic = open_in path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse text with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j ->
      (match (Json.member "jsonl" j, Json.member "chrome" j) with
       | Some jl, Some ch ->
         let chrome_top =
           Option.value
             (Option.bind (Json.member "top" ch) Json.to_str)
             ~default:"traceEvents"
         in
         Ok { jsonl = shape_of_json jl; chrome = shape_of_json ch; chrome_top }
       | _ -> Error (Printf.sprintf "%s: missing jsonl/chrome sections" path))
    | exception Sys_error e -> Error e

  let check_shape shape ctx j errors =
    List.iter
      (fun (field, expected) ->
        match Json.member field j with
        | None -> errors := Printf.sprintf "%s: missing %S" ctx field :: !errors
        | Some v ->
          let actual = Json.type_name v in
          if actual <> expected then
            errors :=
              Printf.sprintf "%s: field %S is %s, expected %s" ctx field
                actual expected
              :: !errors)
      shape.required;
    match shape.kinds_field with
    | None -> ()
    | Some field ->
      (match Option.bind (Json.member field j) Json.to_str with
       | Some v when not (List.mem v shape.kinds) ->
         errors :=
           Printf.sprintf "%s: %S = %S not in schema kinds" ctx field v
           :: !errors
       | _ -> ())

  (* functional face of [check_shape], for other mini-contract documents
     (the incident schema) built from the same shape vocabulary *)
  let check shape ~ctx j =
    let errors = ref [] in
    check_shape shape ctx j errors;
    List.rev !errors

  let validate_jsonl t path =
    match read_lines path with
    | exception Sys_error e -> Error [ e ]
    | lines ->
      let errors = ref [] in
      List.iteri
        (fun i line ->
          let ctx = Printf.sprintf "%s:%d" path (i + 1) in
          match Json.parse line with
          | Error e -> errors := Printf.sprintf "%s: %s" ctx e :: !errors
          | Ok j -> check_shape t.jsonl ctx j errors)
        lines;
      if !errors = [] then Ok (List.length lines) else Error (List.rev !errors)

  let validate_chrome t path =
    let ic = open_in path in
    match
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error [ e ]
    | text ->
      (match Json.parse text with
       | Error e -> Error [ Printf.sprintf "%s: %s" path e ]
       | Ok j ->
         (match Option.bind (Json.member t.chrome_top j) Json.to_list with
          | None ->
            Error
              [ Printf.sprintf "%s: missing top-level %S array" path
                  t.chrome_top ]
          | Some events ->
            let errors = ref [] in
            List.iteri
              (fun i ev ->
                let ctx = Printf.sprintf "%s[%d]" t.chrome_top i in
                check_shape t.chrome ctx ev errors)
              events;
            if !errors = [] then Ok (List.length events)
            else Error (List.rev !errors)))
end
