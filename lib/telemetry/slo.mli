(** SLO monitor: per-objective latency targets evaluated over sliding
    windows of log2 histograms.

    Each objective (a target quantile plus a threshold in seconds) owns a
    ring of sub-window histograms. {!observe} records into the current
    sub-window; {!advance} — called by the single writer, once per drain
    or on a timer — evaluates every objective over the merged window,
    updates burn-rate counters, emits a [Trace.Slo_breach] instant per
    breached objective, and rotates the ring. The effective window covers
    the last [subwindows] advances.

    Empty windows report [st_estimate = None] and never breach; 1-sample
    windows report that sample exactly. Burn rate is the error-budget
    convention: (fraction of window samples over threshold) / (1 - q). *)

type objective = {
  slo_name : string;
  slo_quantile : float;  (** target quantile in (0,1), e.g. 0.99 *)
  slo_threshold : float;  (** seconds *)
}

type t

val create : ?subwindows:int -> ?min_samples:int -> objective list -> t
(** Default 6 sub-windows; [min_samples] (default 1) is the fewest merged
    samples a window needs before it can breach. @raise Invalid_argument
    on a quantile outside (0,1) or a non-positive threshold. *)

val objectives : t -> objective list
val n_objectives : t -> int

val index : t -> string -> int option
(** Objective position by name, for the hot [observe] side. *)

val observe : t -> int -> float -> unit
(** [observe t i latency] records one sample (seconds) against objective
    [i]. One histogram store; no allocation. *)

type status = {
  st_name : string;
  st_quantile : float;
  st_threshold : float;
  st_samples : int;  (** samples in the merged window *)
  st_estimate : float option;  (** [None]: empty window, no verdict *)
  st_burn : float;  (** error-budget burn rate over the window *)
  st_breached : bool;
  st_breaches : int;  (** cumulative breached windows *)
  st_windows : int;  (** cumulative windows evaluated *)
}

val advance : t -> status list
(** Evaluate every objective over its merged window, count and trace
    breaches, then rotate the ring (retiring the oldest sub-window). *)

val current : t -> status list
(** Evaluate without rotating or counting — the introspection view. *)

val breach_total : t -> int
(** Total breached windows across all objectives. *)

val breached : t -> bool
(** Did the most recent {!advance} breach any objective? *)

val advances : t -> int
val to_json : t -> Json.t

val default_objectives : objective list
(** q1/q2/q3 at p99 <= 50ms — lenient defaults for bench serve. *)

val parse_objectives : string -> (objective list, string) result
(** Parse "name:pQQ:threshold_seconds" specs joined by commas, e.g.
    ["q1:p99:0.005,q2:p99.9:0.02"]. *)
