(** Flight recorder: an always-on, fixed-size incident buffer.

    A few hundred slots of coarse operational events (queries drained,
    epochs published/retired, refreshes, rollbacks, SLO breaches,
    watchdog trips) kept armed in production, so the last seconds of
    server history are already in memory when something goes wrong.
    {!record} is zero-allocation when armed: struct-of-arrays int slots,
    immediate constructors, and timestamps from a coarse internal clock
    refreshed by {!tick} rather than per-record [gettimeofday].

    {!dump} writes an incident file — flight events, the tail of the
    {!Trace} ring, and metric deltas against a baseline captured at
    {!create} — whose layout is contracted by
    [schemas/incident_schema.json] and checked by {!validate_file}. *)

type kind =
  | Query  (** a = generation served, b = latency ns *)
  | Publish  (** a = generation published, b = retired entries *)
  | Retire  (** a = epochs freed *)
  | Refresh  (** a = generation after refresh, b = plan changes *)
  | Update_batch  (** a = ops applied *)
  | Drain  (** a = observations drained, b = queue dropped total *)
  | Rollback  (** a = generation restored *)
  | Slo_breach  (** a = objective index, b = burn rate x1000 *)
  | Watchdog_trip  (** a = generation, b = latency ns *)
  | Fatal  (** recorded by {!guard} before dumping *)
  | Mark  (** free-form caller marker *)

val kind_name : kind -> string

type t

val default_capacity : int
(** 1024 slots. *)

val create : ?capacity:int -> ?metrics:Metrics.t -> unit -> t
(** Armed on creation; default {!default_capacity} slots. When [metrics]
    is given, its snapshot is captured as the delta baseline for
    {!dump}. *)

val arm : t -> unit
val disarm : t -> unit
val is_armed : t -> bool

val tick : t -> unit
(** Refresh the coarse clock (one [gettimeofday]); called by the writer
    at drain boundaries so {!record} itself never allocates. *)

val record : t -> kind -> a:int -> b:int -> unit
(** Record one event at the coarse clock's time. Zero allocation when
    armed; a flag test when disarmed. *)

val record_at : t -> kind -> a:int -> b:int -> t_ns:int -> unit
(** As {!record} with an explicit timestamp (ns since {!create}). *)

val set_watchdog : t -> threshold:float -> unit
(** Arm the latency watchdog at [threshold] seconds. *)

val clear_watchdog : t -> unit

val check_latency : t -> generation:int -> latency_ns:int -> bool
(** Trip check for one observation: over an armed threshold, count the
    trip, record a [Watchdog_trip], and return [true]. Zero allocation. *)

val trips : t -> int
val dumps : t -> int

type event = {
  ev_kind : kind;
  ev_seq : int;
  ev_t : float;  (** seconds since {!create} *)
  ev_a : int;
  ev_b : int;
}

val iter_events : t -> (event -> unit) -> unit
(** Events still retained in the ring, oldest first. *)

type stats = { recorded : int; retained : int; overwritten : int }

val stats : t -> stats
val kind_counts : t -> (kind * int) list

val incident_json : ?reason:string -> ?slo:Json.t -> t -> Json.t
(** The incident document: incident header, flight events, Trace-ring
    tail (up to 256 spans), metric deltas, and the caller's SLO state. *)

val dump : ?reason:string -> ?slo:Json.t -> t -> string -> unit
(** Write {!incident_json} to a file and count the dump. *)

val guard : t -> dump_to:string -> (unit -> 'a) -> 'a
(** Run [f]; on any exception record a [Fatal] event, dump the incident
    file to [dump_to], and re-raise. *)

val validate : schema:Json.t -> Json.t -> (unit, string list) result
(** Check an incident document against a loaded incident schema. *)

val validate_file :
  schema_path:string -> string -> (unit, string list) result
