(* Span tracer: a preallocated struct-of-arrays ring of spans plus instant
   events. Disabled (the default), [begin_] is a flag test returning -1 and
   [end_]/[event] are flag tests returning unit — no allocation, no
   syscalls, same discipline as the Fault hook in Pager. Enabled, each span
   costs two [Unix.gettimeofday] calls and array stores into preallocated
   int/float arrays (floats in a float array are unboxed).

   Tokens are plain ints (the global span sequence number), not records:
   an optional or boxed token would allocate on every hot-path call even
   when tracing is off. The ring overwrites oldest spans on wrap; a
   per-slot sequence number lets [end_] detect that its slot was reused
   and drop the close instead of corrupting an unrelated span. Per-kind
   totals and duration histograms live outside the ring, so aggregate
   statistics survive wrap. *)

type kind =
  (* query pipeline phases *)
  | Parse
  | Plan
  | Probe
  | Fetch
  | Join
  | Materialize
  (* enclosing units of work *)
  | Query
  | Refresh
  | Mine
  | Prune
  | Traverse
  | Update_apply
  | Snapshot_commit
  | Recovery
  | Decode  (* block-compressed extent decode; arg = blocks decoded *)
  (* serving lifecycle (lib/server) *)
  | Epoch_publish  (* freeze + deep-copy + registry publish; arg = generation *)
  | Epoch_retire  (* retire-list drain; arg = epochs freed *)
  | Reader_pin  (* one pinned query evaluation; arg = generation served *)
  (* adaptation events (instants, no duration) *)
  | Path_promoted
  | Path_evicted
  | Delta_flushed
  | Epoch_committed
  | Epoch_rolled_back
  | Update_aborted
  | Block_skip  (* arg = compressed blocks skipped by a header range test *)
  | Slo_breach  (* arg = objective index; note = objective name *)

let n_kinds = 26

let kind_index = function
  | Parse -> 0
  | Plan -> 1
  | Probe -> 2
  | Fetch -> 3
  | Join -> 4
  | Materialize -> 5
  | Query -> 6
  | Refresh -> 7
  | Mine -> 8
  | Prune -> 9
  | Traverse -> 10
  | Update_apply -> 11
  | Snapshot_commit -> 12
  | Recovery -> 13
  | Decode -> 14
  | Epoch_publish -> 15
  | Epoch_retire -> 16
  | Reader_pin -> 17
  | Path_promoted -> 18
  | Path_evicted -> 19
  | Delta_flushed -> 20
  | Epoch_committed -> 21
  | Epoch_rolled_back -> 22
  | Update_aborted -> 23
  | Block_skip -> 24
  | Slo_breach -> 25

let all_kinds =
  [| Parse; Plan; Probe; Fetch; Join; Materialize; Query; Refresh; Mine;
     Prune; Traverse; Update_apply; Snapshot_commit; Recovery; Decode;
     Epoch_publish; Epoch_retire; Reader_pin;
     Path_promoted; Path_evicted; Delta_flushed; Epoch_committed;
     Epoch_rolled_back; Update_aborted; Block_skip; Slo_breach |]
[@@apex.guarded "readonly"]

let kind_name = function
  | Parse -> "parse"
  | Plan -> "plan"
  | Probe -> "probe"
  | Fetch -> "fetch"
  | Join -> "join"
  | Materialize -> "materialize"
  | Query -> "query"
  | Refresh -> "refresh"
  | Mine -> "mine"
  | Prune -> "prune"
  | Traverse -> "traverse"
  | Update_apply -> "update_apply"
  | Snapshot_commit -> "snapshot_commit"
  | Recovery -> "recovery"
  | Decode -> "decode"
  | Epoch_publish -> "epoch_publish"
  | Epoch_retire -> "epoch_retire"
  | Reader_pin -> "reader_pin"
  | Path_promoted -> "path_promoted"
  | Path_evicted -> "path_evicted"
  | Delta_flushed -> "delta_flushed"
  | Epoch_committed -> "epoch_committed"
  | Epoch_rolled_back -> "epoch_rolled_back"
  | Update_aborted -> "update_aborted"
  | Block_skip -> "block_skip"
  | Slo_breach -> "slo_breach"

let kind_is_event k = kind_index k >= kind_index Path_promoted

type ring = {
  cap : int;
  kinds : int array;
  seqs : int array;  (* global seq of the span occupying each slot *)
  starts : float array;  (* seconds since [t0] *)
  stops : float array;  (* -1.0 while the span is open *)
  args : int array;
  notes : string array;
  t0 : float;
  mutable next_seq : int;
  counts : int array;  (* per kind; survives ring wrap *)
  histos : Metrics.Histogram.t array;  (* per-kind span durations *)
  mutable dropped_ends : int;  (* end_ whose slot was overwritten *)
}

(* Process-wide tracing state. The "telemetry" discipline: mutated only by
   enable/disable (harness setup, before worker domains start) and by span
   recording, whose counters tolerate benign races — traces are
   observability data, never answers. The server PR will revisit this with
   per-domain rings (see DESIGN.md "Domain-safety analysis"). *)
let enabled = ref false [@@apex.guarded "telemetry"]
let ring : ring option ref = ref None [@@apex.guarded "telemetry"]

let default_capacity = 1 lsl 16

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be positive";
  ring :=
    Some
      { cap = capacity;
        kinds = Array.make capacity 0;
        seqs = Array.make capacity (-1);
        starts = Array.make capacity 0.;
        stops = Array.make capacity 0.;
        args = Array.make capacity 0;
        notes = Array.make capacity "";
        t0 = Unix.gettimeofday ();
        next_seq = 0;
        counts = Array.make n_kinds 0;
        histos = Array.init n_kinds (fun _ -> Metrics.Histogram.create ());
        dropped_ends = 0 };
  enabled := true

let disable () = enabled := false

let reset () =
  enabled := false;
  ring := None

let is_enabled () = !enabled

let alloc_slot r k =
  let seq = r.next_seq in
  r.next_seq <- seq + 1;
  let i = seq mod r.cap in
  let ki = kind_index k in
  r.kinds.(i) <- ki;
  r.seqs.(i) <- seq;
  r.args.(i) <- 0;
  r.notes.(i) <- "";
  r.counts.(ki) <- r.counts.(ki) + 1;
  (seq, i)

let begin_ k =
  if not !enabled then -1
  else
    match !ring with
    | None -> -1
    | Some r ->
      let seq, i = alloc_slot r k in
      r.stops.(i) <- -1.0;
      r.starts.(i) <- Unix.gettimeofday () -. r.t0;
      seq

let end_arg tok arg =
  if tok >= 0 then
    match !ring with
    | None -> ()
    | Some r ->
      let i = tok mod r.cap in
      if r.seqs.(i) = tok && r.stops.(i) < 0. then begin
        let stop = Unix.gettimeofday () -. r.t0 in
        r.stops.(i) <- stop;
        r.args.(i) <- arg;
        Metrics.Histogram.record r.histos.(r.kinds.(i)) (stop -. r.starts.(i))
      end
      else r.dropped_ends <- r.dropped_ends + 1

let end_ tok = end_arg tok 0

let event k arg =
  if !enabled then
    match !ring with
    | None -> ()
    | Some r ->
      let _, i = alloc_slot r k in
      let now = Unix.gettimeofday () -. r.t0 in
      r.starts.(i) <- now;
      r.stops.(i) <- now;
      r.args.(i) <- arg

let event_note k arg note =
  if !enabled then
    match !ring with
    | None -> ()
    | Some r ->
      let _, i = alloc_slot r k in
      let now = Unix.gettimeofday () -. r.t0 in
      r.starts.(i) <- now;
      r.stops.(i) <- now;
      r.args.(i) <- arg;
      r.notes.(i) <- note

(* Cold-path convenience: exception-safe span around [f]. The closure
   allocates at the call site, so this is for refresh/commit/recovery
   lifecycles, not the per-query hot path. *)
let with_span k f =
  let tok = begin_ k in
  match f () with
  | v ->
    end_ tok;
    v
  | exception e ->
    end_ tok;
    raise e

type span = {
  kind : kind;
  seq : int;
  start : float;
  stop : float option;  (* None: still open (e.g. aborted by a fault) *)
  arg : int;
  note : string;
  is_event : bool;
}

let iter_spans f =
  match !ring with
  | None -> ()
  | Some r ->
    let first = if r.next_seq > r.cap then r.next_seq - r.cap else 0 in
    for seq = first to r.next_seq - 1 do
      let i = seq mod r.cap in
      if r.seqs.(i) = seq then begin
        let k = all_kinds.(r.kinds.(i)) in
        f
          { kind = k;
            seq;
            start = r.starts.(i);
            stop = (if r.stops.(i) < 0. then None else Some r.stops.(i));
            arg = r.args.(i);
            note = r.notes.(i);
            is_event = kind_is_event k }
      end
    done

let kind_counts () =
  match !ring with
  | None -> []
  | Some r ->
    let acc = ref [] in
    for ki = n_kinds - 1 downto 0 do
      if r.counts.(ki) > 0 then acc := (all_kinds.(ki), r.counts.(ki)) :: !acc
    done;
    !acc

let kind_histogram k =
  match !ring with
  | None -> None
  | Some r ->
    let h = r.histos.(kind_index k) in
    if Metrics.Histogram.count h = 0 then None else Some h

let kind_histograms () =
  match !ring with
  | None -> []
  | Some r ->
    let acc = ref [] in
    for ki = n_kinds - 1 downto 0 do
      let h = r.histos.(ki) in
      if Metrics.Histogram.count h > 0 then acc := (all_kinds.(ki), h) :: !acc
    done;
    !acc

type stats = {
  recorded : int;  (* spans + events ever recorded *)
  retained : int;  (* still present in the ring *)
  overwritten : int;  (* lost to ring wrap *)
  dropped_ends : int;  (* end_ calls whose slot had been reused *)
}

let stats () =
  match !ring with
  | None -> { recorded = 0; retained = 0; overwritten = 0; dropped_ends = 0 }
  | Some r ->
    let overwritten = if r.next_seq > r.cap then r.next_seq - r.cap else 0 in
    { recorded = r.next_seq;
      retained = r.next_seq - overwritten;
      overwritten;
      dropped_ends = r.dropped_ends }
