(** Metrics registry: named counters, gauges, and log-bucketed histograms.

    Handles returned by {!counter} / {!gauge} / {!histogram} are plain
    mutable records — updating one is a load and a store, with no lookup
    or allocation. Registries are per-instance so two indexes tuned in the
    same process never share counters. *)

type counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type gauge

val set : gauge -> float -> unit
val level : gauge -> float

module Histogram : sig
  (** Log2-bucketed histogram: bucket 0 holds non-positive samples,
      bucket [b >= 1] holds values in [[2^(b-1), 2^b)] nanoseconds.
      Recording is O(1); quantiles are estimated by bucket walk and are
      exact to within the bucket's factor-of-2 width. *)

  type t

  val n_buckets : int
  val create : unit -> t
  val record : t -> float -> unit
  val count : t -> int

  val sum : t -> float
  (** Compensated (Neumaier) running sum: exact up to the rounding residue
      of the compensation term itself, and — because {!merge} combines the
      compensated pairs with error-free transformations — identical no
      matter how shard histograms are associated when merging. *)

  val min_value : t -> float
  val max_value : t -> float
  val mean : t -> float

  val bucket_counts : t -> int array
  (** Copy of the per-bucket sample counts; sums to {!count}. *)

  val scale : float
  (** Value-to-bucket scale (1e9: seconds record as nanoseconds). *)

  val bucket_of : float -> int
  (** Bucket index a value records into. *)

  val bucket_mid : int -> float
  (** Geometric-ish midpoint of a bucket, back in value units. *)

  val merge : t -> t -> t
  (** Pure: returns a fresh histogram, arguments unchanged. *)

  val equal_counts : t -> t -> bool
  (** Equality over bucket counts, total count, and extrema. [sum] is
      excluded here (its internal compensated representation is not
      canonical) and compared bit-exactly by the merge properties via
      {!sum} instead. *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [[0,1]] (clamped); [0.] when empty. A
      1-sample histogram reports that sample exactly for every [q]. *)

  val quantile_opt : t -> float -> float option
  (** [None] when the histogram is empty — for callers that must
      distinguish "no data" from "zero latency" (SLO windows, percentile
      tables). *)
end

type histogram = Histogram.t

type t
(** A registry instance. *)

val create : unit -> t

val counter : t -> string -> counter
(** Get or create. @raise Invalid_argument if [name] is registered as a
    different metric kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val register_source : t -> string -> (unit -> (string * float) list) -> unit
(** [register_source t prefix f] contributes [f ()] at snapshot time as
    gauges named [prefix ^ "." ^ key] — the bridge for hot counter structs
    (Io_stats, Cost) that must stay plain records. *)

val gc_source : unit -> (string * float) list
(** GC signals from [Gc.quick_stat]: minor/promoted/major words, minor and
    major collections, compactions, heap words. *)

val register_gc : t -> unit
(** [register_source t "gc" gc_source] — allocation regressions then show
    up in every snapshot of [t]. *)

type value = Count of int | Level of float | Dist of histogram

val snapshot : t -> (string * value) list
(** All metrics plus source contributions, sorted by name. *)

val pp : Format.formatter -> t -> unit
