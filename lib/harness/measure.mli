(** Batch measurement: run a query set against an evaluator, accumulating
    logical cost and wall-clock time. *)

type result = {
  queries : int;
  answered : int;  (** queries with a non-empty result *)
  result_nodes : int;  (** total result cardinality *)
  checksum : int;
      (** FNV-1a over every result array in batch order — two engines
          returning identical result sets produce identical checksums *)
  cost : Repro_storage.Cost.t;
  wall_seconds : float;
}

val run :
  Repro_pathexpr.Query.t array ->
  (cost:Repro_storage.Cost.t -> Repro_pathexpr.Query.t -> Repro_graph.Data_graph.nid array) ->
  result
(** Evaluate every query once, with one shared cost accumulator. *)

val weighted : result -> float
(** {!Repro_storage.Cost.weighted_total} of the accumulated cost. *)

val verify_sample :
  ?n:int ->
  Repro_graph.Data_graph.t ->
  Repro_pathexpr.Query.t array ->
  (cost:Repro_storage.Cost.t -> Repro_pathexpr.Query.t -> Repro_graph.Data_graph.nid array) ->
  (unit, string) Stdlib.result
(** Check the evaluator against the naive traversal on the first [n]
    (default 25) queries — a guard that benchmark numbers measure correct
    engines. *)
