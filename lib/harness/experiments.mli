(** The paper's experiments (Section 6) plus our ablations.

    Each function prepares the required environments and indexes, runs the
    query batches, prints a paper-style table, and returns the measured
    rows so tests and EXPERIMENTS.md generation can consume them.

    A {!context} caches datasets, query sets, and built indexes across
    experiments so [run_all] does not rebuild Ged03 five times. *)

type config = {
  scale : float;  (** dataset node-target factor (1.0 = Table 1 sizes) *)
  datasets : Repro_datagen.Dataset.spec list;
  n_q1 : int;
  n_q2 : int;
  n_q3 : int;
  min_sups : float list;  (** Table 2 / Figure 13 sweep *)
  chosen_min_sup : float;  (** Figures 14–15 use one value (paper: 0.005) *)
  verify : bool;  (** cross-check evaluators against the naive traversal *)
}

val default : config
(** Full scale, all nine datasets, paper query counts,
    minSup ∈ \{0.002, 0.005, 0.01, 0.03, 0.05\}, 0.005 chosen, verify on. *)

val quick : config
(** One dataset per family at 1/10 scale with reduced query counts — used
    by the default [bench] invocation and the test suite. *)

type context

val create_context : config -> context

(** {1 Experiments} *)

type index_size = { index : string; nodes : int; edges : int }

val table1 : context -> (string * Repro_graph.Graph_stats.t) list
(** Dataset characteristics (paper Table 1). *)

val workload_characteristics :
  context -> (string * Repro_workload.Workload_stats.t) list
(** Properties of the generated QTYPE1 sets (mean length, dereference and
    root-anchored fractions — the paper reports ~25% simple path
    expressions). *)

val table2 : context -> (string * index_size list) list
(** Index sizes: strong DataGuide, APEX0, APEX per minSup (paper
    Table 2). *)

type series_point = {
  engine : string;  (** e.g. "SDG", "APEX0", "APEX(0.005)" *)
  weighted_cost : float;
  wall_seconds : float;
  cost : Repro_storage.Cost.t;
}

val fig13 : context -> (string * series_point list) list
(** Total QTYPE1 evaluation cost per dataset: SDG, APEX0, and APEX across
    the minSup sweep (paper Figure 13). *)

val fig14 : context -> (string * series_point list) list
(** Total QTYPE2 cost: SDG vs APEX0 vs APEX(chosen) (paper Figure 14). *)

val fig15 : context -> (string * series_point list) list
(** Total QTYPE3 cost: Index Fabric vs SDG vs APEX(chosen) (paper
    Figure 15). *)

val ablation : context -> unit
(** Our additions: naive vs apriori mining agreement and timing;
    incremental refresh vs fresh rebuild timing; the 1-index as a fourth
    engine on QTYPE1; buffer-pool-size sensitivity for APEX QTYPE1. *)

val run_all : config -> unit
(** All of the above, printing every table. *)

val json_bench : config -> out:string -> unit
(** End-to-end benchmark snapshot written as JSON: per dataset, APEX build
    time and size, then Q1/Q2/Q3 batch latency, weighted cost, result-set
    checksums, and extent-cache hit rates for APEX([chosen_min_sup]).
    Result sets are verified against the naive evaluator first (unless
    [verify] is off), so the timings always describe a correct engine.
    Successive snapshots with identical config must report identical
    checksums — the perf-trajectory guard. *)

val updates : config -> out:string -> unit
(** The update-maintenance experiment ([bench updates]): per dataset and
    per op-batch size (1, 4, 16, 64), build APEX([chosen_min_sup]) in a
    fresh store, apply one generated batch
    ({!Repro_workload.Update_workload}) through the incremental maintainer
    ({!Repro_update.Update.apply}), and count the pages written after the
    baseline flush — against the page writes of re-extracting and
    re-materializing the whole index over the mutated graph. Maintained
    I/O must scale with the delta, rebuild I/O with the index. A mixed
    query battery runs through both engines; their result checksums must
    be bit-identical (and, unless [verify] is off, match the naive
    evaluator). Prints the table and writes the JSON snapshot to [out]
    (recorded as [BENCH_PR4.json]). *)

val fault_smoke : config -> unit
(** Run the first dataset's QTYPE1 batch twice — once clean, once against a
    pager whose reads randomly flip bits and truncate ({!Repro_storage.Fault}
    transient kinds) — and fail unless the two result checksums agree. The
    printed table shows disk reads, CRC-triggered retries, and injected
    faults for the degraded run. *)
