module Dataset = Repro_datagen.Dataset
module Apex = Repro_apex.Apex
module Apex_query = Repro_apex.Apex_query
module Summary_index = Repro_baselines.Summary_index
module Dataguide = Repro_baselines.Dataguide
module One_index = Repro_baselines.One_index
module Index_fabric = Repro_baselines.Index_fabric
module Cost = Repro_storage.Cost
module Query = Repro_pathexpr.Query

type config = {
  scale : float;
  datasets : Dataset.spec list;
  n_q1 : int;
  n_q2 : int;
  n_q3 : int;
  min_sups : float list;
  chosen_min_sup : float;
  verify : bool;
}

let default =
  { scale = 1.0;
    datasets = Dataset.all;
    n_q1 = 5000;
    n_q2 = 500;
    n_q3 = 1000;
    min_sups = [ 0.002; 0.005; 0.01; 0.03; 0.05 ];
    chosen_min_sup = 0.005;
    verify = true
  }

let quick =
  { scale = 0.1;
    datasets = Dataset.small;
    n_q1 = 600;
    n_q2 = 80;
    n_q3 = 150;
    min_sups = [ 0.002; 0.005; 0.02; 0.05 ];
    chosen_min_sup = 0.005;
    verify = true
  }

type context = {
  config : config;
  envs : (string, Env.t) Hashtbl.t;
  apex0s : (string, Apex.t) Hashtbl.t;
  apexes : (string * string, Apex.t) Hashtbl.t;  (* keyed by (dataset, minSup string) *)
  dataguides : (string, Summary_index.t option) Hashtbl.t;
  fabrics : (string, Index_fabric.t) Hashtbl.t;
  one_indexes : (string, Summary_index.t) Hashtbl.t;
}

let create_context config =
  { config;
    envs = Hashtbl.create 8;
    apex0s = Hashtbl.create 8;
    apexes = Hashtbl.create 32;
    dataguides = Hashtbl.create 8;
    fabrics = Hashtbl.create 8;
    one_indexes = Hashtbl.create 8
  }

let memo tbl key build =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = build () in
    Hashtbl.add tbl key v;
    v

let ms_key ms = Printf.sprintf "%g" ms

let env ctx (spec : Dataset.spec) =
  memo ctx.envs spec.Dataset.name (fun () ->
      let c = ctx.config in
      Env.prepare ~scale:c.scale ~n_q1:c.n_q1 ~n_q2:c.n_q2 ~n_q3:c.n_q3 spec)

let apex0 ctx spec =
  memo ctx.apex0s spec.Dataset.name (fun () ->
      let e = env ctx spec in
      let apex = Apex.build e.Env.graph in
      Apex.materialize apex e.Env.pool;
      apex)

let apex ctx spec ms =
  memo ctx.apexes (spec.Dataset.name, ms_key ms) (fun () ->
      let e = env ctx spec in
      let apex = Apex.build_adapted e.Env.graph ~workload:e.Env.workload ~min_support:ms in
      Apex.materialize apex e.Env.pool;
      apex)

let dataguide ctx spec =
  memo ctx.dataguides spec.Dataset.name (fun () ->
      let e = env ctx spec in
      match Dataguide.build e.Env.graph with
      | dg ->
        Summary_index.materialize dg e.Env.pool;
        Some dg
      | exception Failure _ -> None)

let fabric ctx spec =
  memo ctx.fabrics spec.Dataset.name (fun () -> Index_fabric.build (env ctx spec).Env.graph)

let one_index ctx spec =
  memo ctx.one_indexes spec.Dataset.name (fun () ->
      let e = env ctx spec in
      let oi = One_index.build e.Env.graph in
      Summary_index.materialize oi e.Env.pool;
      oi)

let release ctx name =
  Hashtbl.remove ctx.envs name;
  Hashtbl.remove ctx.apex0s name;
  Hashtbl.remove ctx.dataguides name;
  Hashtbl.remove ctx.fabrics name;
  Hashtbl.remove ctx.one_indexes name;
  Hashtbl.iter
    (fun (ds, ms) _ -> if String.equal ds name then Hashtbl.remove ctx.apexes (ds, ms))
    (Hashtbl.copy ctx.apexes)

(* --- evaluator closures --- *)

let apex_eval e apex ~cost q = Apex_query.eval_query ~cost ~table:e.Env.table apex q

let summary_eval e index ~cost q = Summary_index.eval_query ~cost ~table:e.Env.table index q

let fabric_eval fab ~cost q =
  match Index_fabric.eval_query ~cost fab q with
  | Some r -> r
  | None -> [||]

let verify ctx e name queries eval =
  if ctx.config.verify then
    match Measure.verify_sample e.Env.graph queries eval with
    | Ok () -> ()
    | Error m ->
      failwith (Printf.sprintf "verification failed for %s on %s: %s" name e.Env.spec.Dataset.name m)

let measure ctx e name queries eval =
  verify ctx e name queries eval;
  Repro_storage.Buffer_pool.flush e.Env.pool;
  Measure.run queries eval

(* --- Table 1 --- *)

let table1 ctx =
  let rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        (spec.Dataset.name, Repro_graph.Graph_stats.compute e.Env.graph))
      ctx.config.datasets
  in
  Report.table ~title:"Table 1: data set characteristics"
    ~header:[ "Data Set"; "nodes"; "edges"; "labels" ]
    (List.map
       (fun (name, s) ->
         [ name;
           string_of_int s.Repro_graph.Graph_stats.nodes;
           string_of_int s.Repro_graph.Graph_stats.edges;
           Printf.sprintf "%d(%d)" s.Repro_graph.Graph_stats.labels
             s.Repro_graph.Graph_stats.idref_labels
         ])
       rows);
  rows

let workload_characteristics ctx =
  let rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        (spec.Dataset.name, Repro_workload.Workload_stats.compute e.Env.graph e.Env.q1))
      ctx.config.datasets
  in
  Report.table ~title:"Workload characteristics (QTYPE1 query set)"
    ~header:[ "Data Set"; "queries"; "distinct"; "mean len"; "max"; "deref %"; "root-anchored %" ]
    (List.map
       (fun (name, s) ->
         [ name;
           string_of_int s.Repro_workload.Workload_stats.queries;
           string_of_int s.Repro_workload.Workload_stats.distinct;
           Printf.sprintf "%.2f" s.Repro_workload.Workload_stats.mean_length;
           string_of_int s.Repro_workload.Workload_stats.max_length;
           Printf.sprintf "%.0f" (100. *. s.Repro_workload.Workload_stats.with_dereference);
           Printf.sprintf "%.0f" (100. *. s.Repro_workload.Workload_stats.root_anchored)
         ])
       rows);
  rows

(* --- Table 2 --- *)

type index_size = { index : string; nodes : int; edges : int }

let table2 ctx =
  let rows =
    List.map
      (fun spec ->
        let sdg =
          match dataguide ctx spec with
          | Some dg ->
            let n, e = Summary_index.stats dg in
            { index = "SDG"; nodes = n; edges = e }
          | None -> { index = "SDG"; nodes = -1; edges = -1 }
        in
        let n0, e0 = Apex.stats (apex0 ctx spec) in
        let apex_sizes =
          List.map
            (fun ms ->
              let n, e = Apex.stats (apex ctx spec ms) in
              { index = Printf.sprintf "APEX(%g)" ms; nodes = n; edges = e })
            ctx.config.min_sups
        in
        (spec.Dataset.name, (sdg :: { index = "APEX0"; nodes = n0; edges = e0 } :: apex_sizes)))
      ctx.config.datasets
  in
  let show n = if n < 0 then "blowup" else string_of_int n in
  Report.table ~title:"Table 2: index sizes (nodes/edges)"
    ~header:
      ("Data Set"
      :: (match rows with
          | (_, sizes) :: _ -> List.map (fun s -> s.index) sizes
          | [] -> []))
    (List.map
       (fun (name, sizes) ->
         name :: List.map (fun s -> Printf.sprintf "%s/%s" (show s.nodes) (show s.edges)) sizes)
       rows);
  rows

(* --- figures --- *)

type series_point = {
  engine : string;
  weighted_cost : float;
  wall_seconds : float;
  cost : Cost.t;
}

let point name (m : Measure.result) =
  { engine = name; weighted_cost = Measure.weighted m; wall_seconds = m.Measure.wall_seconds; cost = m.Measure.cost }

let print_series title rows =
  Report.table ~title ~header:[ "Data Set"; "engine"; "weighted cost"; "wall (s)"; "pages"; "steps" ]
    (List.concat_map
       (fun (name, points) ->
         List.map
           (fun p ->
             [ name;
               p.engine;
               Report.float0 p.weighted_cost;
               Printf.sprintf "%.3f" p.wall_seconds;
               string_of_int
                 (p.cost.Cost.extent_pages + p.cost.Cost.table_pages + p.cost.Cost.trie_pages
                 + p.cost.Cost.struct_pages);
               string_of_int
                 (p.cost.Cost.index_node_visits + p.cost.Cost.index_edge_lookups
                 + p.cost.Cost.hash_probes + p.cost.Cost.trie_node_visits)
             ])
           points)
       rows)

let fig13 ctx =
  let rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let points = ref [] in
        (match dataguide ctx spec with
         | Some dg ->
           points := [ point "SDG" (measure ctx e "SDG" e.Env.q1 (summary_eval e dg)) ]
         | None -> ());
        points :=
          !points @ [ point "APEX0" (measure ctx e "APEX0" e.Env.q1 (apex_eval e (apex0 ctx spec))) ];
        List.iter
          (fun ms ->
            let name = Printf.sprintf "APEX(%g)" ms in
            points :=
              !points @ [ point name (measure ctx e name e.Env.q1 (apex_eval e (apex ctx spec ms))) ])
          ctx.config.min_sups;
        (spec.Dataset.name, !points))
      ctx.config.datasets
  in
  print_series "Figure 13: total QTYPE1 evaluation cost" rows;
  rows

let fig14 ctx =
  let rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let ms = ctx.config.chosen_min_sup in
        let points = ref [] in
        (match dataguide ctx spec with
         | Some dg -> points := [ point "SDG" (measure ctx e "SDG" e.Env.q2 (summary_eval e dg)) ]
         | None -> ());
        points :=
          !points
          @ [ point "APEX0" (measure ctx e "APEX0" e.Env.q2 (apex_eval e (apex0 ctx spec)));
              point
                (Printf.sprintf "APEX(%g)" ms)
                (measure ctx e "APEX" e.Env.q2 (apex_eval e (apex ctx spec ms)))
            ];
        (spec.Dataset.name, !points))
      ctx.config.datasets
  in
  print_series "Figure 14: total QTYPE2 evaluation cost" rows;
  rows

let fig15 ctx =
  let rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let ms = ctx.config.chosen_min_sup in
        let points = ref [] in
        points :=
          [ point "Fabric" (measure ctx e "Fabric" e.Env.q3 (fabric_eval (fabric ctx spec))) ];
        (match dataguide ctx spec with
         | Some dg -> points := !points @ [ point "SDG" (measure ctx e "SDG" e.Env.q3 (summary_eval e dg)) ]
         | None -> ());
        points :=
          !points
          @ [ point
                (Printf.sprintf "APEX(%g)" ms)
                (measure ctx e "APEX" e.Env.q3 (apex_eval e (apex ctx spec ms)))
            ];
        (spec.Dataset.name, !points))
      ctx.config.datasets
  in
  print_series "Figure 15: total QTYPE3 evaluation cost" rows;
  rows

(* --- ablations --- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ablation ctx =
  let ms = ctx.config.chosen_min_sup in
  (* 1. mining algorithms agree; compare their runtimes *)
  let mining_rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let w = e.Env.workload in
        let naive, t_naive = time (fun () -> Repro_mining.Path_miner.frequent ~min_support:ms w) in
        let apriori, t_apriori = time (fun () -> Repro_mining.Apriori.frequent ~min_support:ms w) in
        if naive <> apriori then failwith "ablation: mining algorithms disagree";
        [ spec.Dataset.name;
          string_of_int (List.length naive);
          Printf.sprintf "%.4f" t_naive;
          Printf.sprintf "%.4f" t_apriori
        ])
      ctx.config.datasets
  in
  Report.table ~title:"Ablation: frequent-path mining (naive one-scan vs apriori)"
    ~header:[ "Data Set"; "frequent paths"; "naive (s)"; "apriori (s)" ]
    mining_rows;
  (* 2. incremental refresh vs fresh rebuild *)
  let update_rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let w = Array.of_list e.Env.workload in
        let half = Array.length w / 2 in
        let w1 = Array.to_list (Array.sub w 0 half) in
        let w2 = Array.to_list (Array.sub w half (Array.length w - half)) in
        let incremental = Apex.build_adapted e.Env.graph ~workload:w1 ~min_support:ms in
        let (), t_inc = time (fun () -> Apex.refresh incremental ~workload:w2 ~min_support:ms) in
        let _, t_fresh = time (fun () -> Apex.build_adapted e.Env.graph ~workload:w2 ~min_support:ms) in
        let n, _ = Apex.stats incremental in
        [ spec.Dataset.name;
          string_of_int n;
          Printf.sprintf "%.4f" t_inc;
          Printf.sprintf "%.4f" t_fresh;
          Printf.sprintf "%.2fx" (t_fresh /. Float.max 1e-9 t_inc)
        ])
      ctx.config.datasets
  in
  Report.table ~title:"Ablation: incremental update vs rebuild from scratch"
    ~header:[ "Data Set"; "APEX nodes"; "refresh (s)"; "rebuild (s)"; "speedup" ]
    update_rows;
  (* 3. the 1-index as a fourth QTYPE1 engine *)
  let oi_rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let oi = one_index ctx spec in
        let n, edges = Summary_index.stats oi in
        let m = measure ctx e "1-index" e.Env.q1 (summary_eval e oi) in
        [ spec.Dataset.name;
          Printf.sprintf "%d/%d" n edges;
          Report.float0 (Measure.weighted m);
          Printf.sprintf "%.3f" m.Measure.wall_seconds
        ])
      ctx.config.datasets
  in
  Report.table ~title:"Ablation: 1-index on QTYPE1"
    ~header:[ "Data Set"; "size"; "weighted cost"; "wall (s)" ]
    oi_rows;
  (* 4. buffer-pool sensitivity for APEX QTYPE1 *)
  let pool_rows =
    List.concat_map
      (fun spec ->
        let e = env ctx spec in
        List.map
          (fun pool_pages ->
            let pager = Repro_storage.Pager.create ~page_size:8192 () in
            let pool = Repro_storage.Buffer_pool.create pager ~capacity:pool_pages in
            let a = Apex.build_adapted e.Env.graph ~workload:e.Env.workload ~min_support:ms in
            Apex.materialize a pool;
            let m =
              Measure.run e.Env.q1 (fun ~cost q ->
                  Apex_query.eval_query ~cost ~table:e.Env.table a q)
            in
            let stats = Repro_storage.Pager.stats pager in
            [ spec.Dataset.name;
              string_of_int pool_pages;
              Report.float0 (Measure.weighted m);
              string_of_int stats.Repro_storage.Io_stats.disk_reads;
              string_of_int stats.Repro_storage.Io_stats.cache_hits
            ])
          [ 16; 128; 1024 ])
      ctx.config.datasets
  in
  Report.table ~title:"Ablation: buffer-pool size (APEX QTYPE1)"
    ~header:[ "Data Set"; "pool pages"; "weighted cost"; "disk reads"; "cache hits" ]
    pool_rows;
  (* 5. data-table organization: sorted heap pages + sparse directory vs a
     B+-tree, as the validation backend for QTYPE3 *)
  let table_rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let a = apex ctx spec ms in
        let heap = measure ctx e "APEX+heap-table" e.Env.q3 (apex_eval e a) in
        (* load the same values into a B+-tree and validate through it *)
        let pager = Repro_storage.Pager.create () in
        let pool = Repro_storage.Buffer_pool.create pager ~capacity:1024 in
        let btree = Repro_storage.Btree.create pool in
        Repro_storage.Data_table.iter e.Env.table (fun nid v -> Repro_storage.Btree.insert btree nid v);
        let btree_eval ~cost q =
          match Query.compile (Repro_graph.Data_graph.labels e.Env.graph) q with
          | Some (Query.C3 (path, value)) ->
            let candidates = Apex_query.eval ~cost a (Query.C1 path) in
            Array.of_seq
              (Seq.filter
                 (fun nid -> Repro_storage.Btree.find ~cost btree nid = Some value)
                 (Array.to_seq candidates))
          | Some compiled -> Apex_query.eval ~cost a compiled
          | None -> [||]
        in
        let bt = measure ctx e "APEX+btree-table" e.Env.q3 btree_eval in
        [ spec.Dataset.name;
          Report.float0 (Measure.weighted heap);
          Report.float0 (Measure.weighted bt);
          string_of_int (Repro_storage.Btree.height btree)
        ])
      ctx.config.datasets
  in
  Report.table ~title:"Ablation: QTYPE3 validation backend (heap table vs B+-tree)"
    ~header:[ "Data Set"; "heap table"; "B+-tree"; "tree height" ]
    table_rows;
  (* 6. extent codec: raw 8-byte ints vs zigzag-delta varints *)
  let codec_rows =
    List.map
      (fun spec ->
        let e = env ctx spec in
        let run codec =
          let pager = Repro_storage.Pager.create () in
          let pool = Repro_storage.Buffer_pool.create pager ~capacity:1024 in
          let a = Apex.build_adapted e.Env.graph ~workload:e.Env.workload ~min_support:ms in
          Apex.materialize ~codec a pool;
          let m =
            Measure.run e.Env.q1 (fun ~cost q ->
                Apex_query.eval_query ~cost ~table:e.Env.table a q)
          in
          (Measure.weighted m, Repro_storage.Pager.n_pages pager)
        in
        let raw_cost, raw_pages = run `Raw in
        let var_cost, var_pages = run `Delta_varint in
        [ spec.Dataset.name;
          Report.float0 raw_cost;
          string_of_int raw_pages;
          Report.float0 var_cost;
          string_of_int var_pages;
          Printf.sprintf "%.1fx" (float_of_int raw_pages /. float_of_int (max 1 var_pages))
        ])
      ctx.config.datasets
  in
  Report.table ~title:"Ablation: extent codec (raw vs delta-varint)"
    ~header:[ "Data Set"; "raw cost"; "raw pages"; "varint cost"; "varint pages"; "compression" ]
    codec_rows

(* --- machine-readable benchmark snapshot (--json) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_measure (m : Measure.result) =
  Printf.sprintf
    "{\"queries\": %d, \"answered\": %d, \"result_nodes\": %d, \"checksum\": \"%x\", \
     \"wall_seconds\": %.6f, \"weighted_cost\": %.1f, \"extent_pages\": %d, \
     \"extent_bytes\": %d, \"extent_edges\": %d, \"join_edges\": %d, \
     \"blocks_skipped\": %d, \"blocks_decoded\": %d, \"extent_cache_hits\": %d, \
     \"extent_cache_misses\": %d, \"extent_cache_hit_rate\": %.4f}"
    m.Measure.queries m.Measure.answered m.Measure.result_nodes m.Measure.checksum
    m.Measure.wall_seconds (Measure.weighted m) m.Measure.cost.Cost.extent_pages
    m.Measure.cost.Cost.extent_bytes m.Measure.cost.Cost.extent_edges
    m.Measure.cost.Cost.join_edges m.Measure.cost.Cost.blocks_skipped
    m.Measure.cost.Cost.blocks_decoded m.Measure.cost.Cost.extent_cache_hits
    m.Measure.cost.Cost.extent_cache_misses (Cost.extent_cache_hit_rate m.Measure.cost)

let json_bench config ~out =
  let ms = config.chosen_min_sup in
  let dataset_rows =
    List.map
      (fun spec ->
        let ctx = create_context { config with datasets = [ spec ] } in
        let e = env ctx spec in
        let t0 = Unix.gettimeofday () in
        let a = Apex.build_adapted e.Env.graph ~workload:e.Env.workload ~min_support:ms in
        Apex.materialize a e.Env.pool;
        let build_seconds = Unix.gettimeofday () -. t0 in
        let nodes, edges = Apex.stats a in
        let eval = apex_eval e a in
        let batch name queries =
          verify ctx e name queries eval;
          Repro_storage.Buffer_pool.flush e.Env.pool;
          Measure.run queries eval
        in
        let q1 = batch "q1" e.Env.q1 in
        let q2 = batch "q2" e.Env.q2 in
        let q3 = batch "q3" e.Env.q3 in
        (* the I/O story behind the logical costs: every pager counter for
           this dataset's pool (build + materialize + all three batches),
           emitted via [to_fields] so a new counter lands here automatically *)
        let io =
          let stats =
            Repro_storage.Pager.stats (Repro_storage.Buffer_pool.pager e.Env.pool)
          in
          String.concat ", "
            (List.map
               (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v)
               (Repro_storage.Io_stats.to_fields stats))
        in
        (* store-level compression: logical (8 bytes/edge) vs encoded size
           of everything appended to this dataset's extent store *)
        let compression_ratio =
          match Apex.store a with
          | None -> 1.0
          | Some store ->
            let logical, stored = Repro_storage.Extent_store.compression_stats store in
            if stored = 0 then 1.0 else float_of_int logical /. float_of_int stored
        in
        Printf.sprintf
          "    {\"name\": \"%s\", \"build_seconds\": %.4f, \"apex_nodes\": %d, \
           \"apex_edges\": %d, \"compression_ratio\": %.2f,\n     \
           \"q1\": %s,\n     \"q2\": %s,\n     \"q3\": %s,\n     \
           \"io\": {%s}}"
          (json_escape spec.Dataset.name) build_seconds nodes edges compression_ratio
          (json_of_measure q1) (json_of_measure q2) (json_of_measure q3) io)
      config.datasets
  in
  (* process-wide GC state at snapshot time: allocation regressions show
     up in the same artifact CI already diffs *)
  let gc =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %.0f" k v)
         (Repro_telemetry.Metrics.gc_source ()))
  in
  let doc =
    Printf.sprintf
      "{\n  \"config\": {\"scale\": %g, \"n_q1\": %d, \"n_q2\": %d, \"n_q3\": %d, \
       \"min_support\": %g, \"verified\": %b},\n  \"gc\": {%s},\n  \"datasets\": [\n%s\n  ]\n}\n"
      config.scale config.n_q1 config.n_q2 config.n_q3 ms config.verify gc
      (String.concat ",\n" dataset_rows)
  in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n%!" out

let run_all config =
  Report.section (Printf.sprintf "APEX reproduction experiments (scale %gx)" config.scale);
  (* group work per dataset so memory for one dataset's indexes can be
     released before the next *)
  List.iter
    (fun spec ->
      let sub = { config with datasets = [ spec ] } in
      let ctx = create_context sub in
      ignore (table1 ctx);
      ignore (workload_characteristics ctx);
      ignore (table2 ctx);
      ignore (fig13 ctx);
      ignore (fig14 ctx);
      ignore (fig15 ctx);
      ablation ctx;
      release ctx spec.Dataset.name)
    config.datasets

(* --- bench updates: maintained index vs rebuild, page I/O per delta --- *)

let updates config ~out =
  let module Generate = Repro_workload.Generate in
  let module Update = Repro_update.Update in
  let module Update_workload = Repro_workload.Update_workload in
  let module Io_stats = Repro_storage.Io_stats in
  let ms = config.chosen_min_sup in
  let batch_sizes = [ 1; 4; 16; 64 ] in
  let table_rows = ref [] in
  let dataset_rows =
    List.map
      (fun spec0 ->
        let spec = Dataset.scaled spec0 config.scale in
        let batch_cells =
          List.map
            (fun n ->
              (* maintained leg: fresh adapted index in a fresh store, then
                 one op batch; every page written after the baseline flush
                 is maintenance I/O *)
              let g0 = Dataset.build_graph spec in
              let rand = Random.State.make [| spec0.Dataset.seed; n; 0xBE7C |] in
              let workload = Env.compile_workload g0 (Generate.qtype1 ~n:24 rand g0) in
              let pager = Repro_storage.Pager.create ~page_size:4096 () in
              let pool = Repro_storage.Buffer_pool.create pager ~capacity:256 in
              let apex = Apex.build_adapted g0 ~workload ~min_support:ms in
              Apex.materialize apex pool;
              Repro_storage.Buffer_pool.flush pool;
              let writes0 = (Repro_storage.Pager.stats pager).Io_stats.disk_writes in
              let ops, _ = Update_workload.gen_ops ~seed:(spec0.Dataset.seed + n) ~n g0 in
              let ustats, t_maint = time (fun () -> Update.apply apex ops) in
              Repro_storage.Buffer_pool.flush pool;
              let maintained_writes =
                (Repro_storage.Pager.stats pager).Io_stats.disk_writes - writes0
              in
              (* rebuild leg: what answering the same updates costs if the
                 index is instead re-extracted and re-materialized whole *)
              let g1 = Apex.graph apex in
              let pager_r = Repro_storage.Pager.create ~page_size:4096 () in
              let pool_r = Repro_storage.Buffer_pool.create pager_r ~capacity:256 in
              let rebuilt, t_reb =
                time (fun () ->
                    let r = Apex.build_adapted g1 ~workload ~min_support:ms in
                    Apex.materialize r pool_r;
                    Repro_storage.Buffer_pool.flush pool_r;
                    r)
              in
              let rebuild_writes = (Repro_storage.Pager.stats pager_r).Io_stats.disk_writes in
              (* one query battery through both engines over the mutated
                 graph: the result checksums must be bit-identical *)
              let queries =
                Array.concat
                  [ Generate.qtype1 ~n:10 rand g1;
                    Generate.qtype2 ~n:3 rand g1;
                    Generate.qtype3 ~n:5 rand g1
                  ]
              in
              let maintained_eval ~cost q = Apex_query.eval_query ~cost apex q in
              let m_maint = Measure.run queries maintained_eval in
              let m_reb =
                Measure.run queries (fun ~cost q -> Apex_query.eval_query ~cost rebuilt q)
              in
              if m_maint.Measure.checksum <> m_reb.Measure.checksum then
                failwith
                  (Printf.sprintf
                     "bench updates: %s batch %d: maintained index diverged from rebuild"
                     spec.Dataset.name n);
              if config.verify then begin
                match Measure.verify_sample g1 queries maintained_eval with
                | Ok () -> ()
                | Error m ->
                  failwith
                    (Printf.sprintf "bench updates: %s batch %d: %s" spec.Dataset.name n m)
              end;
              let delta = ustats.Update.edges_added + ustats.Update.edges_removed in
              table_rows :=
                [ spec.Dataset.name;
                  string_of_int n;
                  string_of_int delta;
                  string_of_int ustats.Update.slots_patched;
                  string_of_int ustats.Update.extents_flushed;
                  string_of_int maintained_writes;
                  string_of_int rebuild_writes;
                  Printf.sprintf "%.4f" t_maint;
                  Printf.sprintf "%.4f" t_reb;
                  Printf.sprintf "%x" m_maint.Measure.checksum
                ]
                :: !table_rows;
              Printf.sprintf
                "      {\"batch_ops\": %d, \"delta_edges\": %d, \"slots_patched\": %d, \
                 \"extents_flushed\": %d, \"maintained_page_writes\": %d, \
                 \"rebuild_page_writes\": %d, \"maintained_seconds\": %.6f, \
                 \"rebuild_seconds\": %.6f, \"checksum\": \"%x\"}"
                n delta ustats.Update.slots_patched ustats.Update.extents_flushed
                maintained_writes rebuild_writes t_maint t_reb m_maint.Measure.checksum)
            batch_sizes
        in
        Printf.sprintf "    {\"name\": \"%s\", \"batches\": [\n%s\n    ]}"
          (json_escape spec.Dataset.name)
          (String.concat ",\n" batch_cells))
      config.datasets
  in
  Report.table ~title:"bench updates: maintained APEX vs from-scratch rebuild"
    ~header:
      [ "Data Set"; "ops"; "delta edges"; "slots"; "flushed"; "maint pages"; "rebuild pages";
        "maint (s)"; "rebuild (s)"; "checksum"
      ]
    (List.rev !table_rows);
  let doc =
    Printf.sprintf
      "{\n  \"config\": {\"scale\": %g, \"min_support\": %g, \"verified\": %b},\n  \
       \"datasets\": [\n%s\n  ]\n}\n"
      config.scale ms config.verify
      (String.concat ",\n" dataset_rows)
  in
  let oc = open_out out in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* --- fault-injection smoke --- *)

let fault_smoke config =
  match config.datasets with
  | [] -> failwith "fault_smoke: no datasets configured"
  | spec :: _ ->
    let ctx = create_context { config with datasets = [ spec ] } in
    let e = env ctx spec in
    let a = apex ctx spec config.chosen_min_sup in
    let clean = measure ctx e "APEX" e.Env.q1 (apex_eval e a) in
    (* replay the batch against a pager whose reads randomly flip bits and
       truncate: per-page CRCs detect the damage, retries heal it, and the
       result checksum must not move *)
    let fault = Repro_storage.Fault.create ~seed:7 () in
    Repro_storage.Fault.arm_random fault ~prob:0.05
      ~kinds:[ Repro_storage.Fault.Read_flip; Repro_storage.Fault.Short_read ];
    let pager = Repro_storage.Pager.create ~page_size:8192 () in
    Repro_storage.Pager.set_fault pager (Some fault);
    let pool = Repro_storage.Buffer_pool.create pager ~capacity:64 in
    Apex.materialize a pool;
    Repro_storage.Buffer_pool.flush pool;
    let faulty = Measure.run e.Env.q1 (apex_eval e a) in
    let stats = Repro_storage.Pager.stats pager in
    Report.table
      ~title:
        (Printf.sprintf "Fault smoke: %s QTYPE1 under transient read faults"
           spec.Dataset.name)
      ~header:[ "run"; "checksum"; "weighted cost"; "disk reads"; "retries"; "injections" ]
      [ [ "clean";
          Printf.sprintf "%x" clean.Measure.checksum;
          Report.float0 (Measure.weighted clean);
          "-"; "-"; "-"
        ];
        [ "faulted";
          Printf.sprintf "%x" faulty.Measure.checksum;
          Report.float0 (Measure.weighted faulty);
          string_of_int stats.Repro_storage.Io_stats.disk_reads;
          string_of_int stats.Repro_storage.Io_stats.read_retries;
          string_of_int (Repro_storage.Fault.injections fault)
        ]
      ];
    if clean.Measure.checksum <> faulty.Measure.checksum then
      failwith "fault_smoke: result checksum drifted under transient read faults";
    if Repro_storage.Fault.injections fault = 0 then
      print_endline "note: no faults fired on this batch; rerun with a larger workload"
