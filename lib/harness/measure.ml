type result = {
  queries : int;
  answered : int;
  result_nodes : int;
  checksum : int;
  cost : Repro_storage.Cost.t;
  wall_seconds : float;
}

(* FNV-1a over the concatenated result arrays (with a separator between
   queries), truncated to OCaml's int range: engine changes that alter any
   result set alter the checksum *)
let checksum_fold h r =
  let fnv h x = (h lxor x) * 0x100000001b3 land max_int in
  Array.fold_left fnv (fnv h (-1)) r

let run queries eval =
  let cost = Repro_storage.Cost.create () in
  let answered = ref 0 in
  let result_nodes = ref 0 in
  let checksum = ref 0x3bf29ce484222325 (* FNV offset basis, truncated to 62 bits *) in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun q ->
      let qtok = Repro_telemetry.Trace.begin_ Repro_telemetry.Trace.Query in
      let r = eval ~cost q in
      Repro_telemetry.Trace.end_arg qtok (Array.length r);
      if Array.length r > 0 then incr answered;
      result_nodes := !result_nodes + Array.length r;
      checksum := checksum_fold !checksum r)
    queries;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  { queries = Array.length queries;
    answered = !answered;
    result_nodes = !result_nodes;
    checksum = !checksum;
    cost;
    wall_seconds
  }

let weighted r = Repro_storage.Cost.weighted_total r.cost

let verify_sample ?(n = 25) g queries eval =
  let limit = min n (Array.length queries) in
  let rec go i =
    if i >= limit then Ok ()
    else begin
      let q = queries.(i) in
      let cost = Repro_storage.Cost.create () in
      let got = eval ~cost q in
      let expected = Repro_pathexpr.Naive_eval.eval_query g q in
      if got = expected then go (i + 1)
      else
        Error
          (Printf.sprintf "query %s: expected %d results, got %d"
             (Repro_pathexpr.Query.to_string q) (Array.length expected) (Array.length got))
    end
  in
  go 0
