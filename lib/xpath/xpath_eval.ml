module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
open Xpath_ast

(* matches within one step are (parent, node) pairs in discovery order;
   positional predicates rank them per parent *)
type matches = (G.nid * G.nid) list

let test_matches labels test l =
  match test with
  | Name n -> String.equal (Label.to_string labels l) n
  | Any -> not (Label.is_attribute labels l)

(* Generation-stamped visited marks shared across the descendant steps of
   one evaluation: allocating an n_nodes array per closure dominated queries
   with several [//] steps. stamp.(v) = gen marks v as seen in the current
   closure; bumping gen clears all marks in O(1). *)
type scratch = { mutable stamp : int array; mutable gen : int }

let make_scratch () = { stamp = [||]; gen = 0 }

let scratch_begin sc n =
  if Array.length sc.stamp < n then begin
    sc.stamp <- Array.make n 0;
    sc.gen <- 0
  end;
  sc.gen <- sc.gen + 1

(* descendant-or-self closure over non-attribute edges *)
let closure g sc nodes =
  let labels = G.labels g in
  scratch_begin sc (G.n_nodes g);
  let seen = sc.stamp and gen = sc.gen in
  let queue = Queue.create () in
  Array.iter
    (fun v ->
      if seen.(v) <> gen then begin
        seen.(v) <- gen;
        Queue.add v queue
      end)
    nodes;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    acc := u :: !acc;
    G.iter_out g u (fun l v ->
        if (not (Label.is_attribute labels l)) && seen.(v) <> gen then begin
          seen.(v) <- gen;
          Queue.add v queue
        end)
  done;
  Repro_util.Int_sorted.of_unsorted (Array.of_list !acc)

let child_matches g test (context : G.nid array) : matches =
  let labels = G.labels g in
  let acc = ref [] in
  Array.iter
    (fun u -> G.iter_out g u (fun l v -> if test_matches labels test l then acc := (u, v) :: !acc))
    context;
  List.rev !acc

let rec apply_predicate g sc (ms : matches) = function
  | Text_equals v ->
    List.filter
      (fun (_, node) -> match G.value g node with Some v' -> String.equal v v' | None -> false)
      ms
  | Exists rel ->
    List.filter
      (fun (_, node) -> Array.length (eval_steps_pairs g sc [ (node, node) ] rel) > 0)
      ms
  | Position k ->
    (* rank per parent in discovery (document) order *)
    let counts = Hashtbl.create 16 in
    List.filter
      (fun (parent, _) ->
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts parent) in
        Hashtbl.replace counts parent c;
        c = k)
      ms

and eval_step g sc (context : matches) (s : step) : matches =
  let ctx_nodes = Repro_util.Int_sorted.of_unsorted (Array.of_list (List.map snd context)) in
  let base =
    match s.axis with
    | Child -> child_matches g s.test ctx_nodes
    | Descendant -> child_matches g s.test (closure g sc ctx_nodes)
  in
  List.fold_left (apply_predicate g sc) base s.predicates

and eval_steps_pairs g sc (context : matches) steps : G.nid array =
  let final = List.fold_left (eval_step g sc) context steps in
  Repro_util.Int_sorted.of_unsorted (Array.of_list (List.map snd final))

let eval_steps g ~context steps =
  eval_steps_pairs g (make_scratch ())
    (Array.to_list (Array.map (fun v -> (v, v)) context))
    steps

let filter_predicates g nodes preds =
  if List.exists (function Position _ -> true | Text_equals _ | Exists _ -> false) preds then
    invalid_arg "Xpath_eval.filter_predicates: positional predicate without step context";
  let pairs = Array.to_list (Array.map (fun v -> (v, v)) nodes) in
  let final = List.fold_left (apply_predicate g (make_scratch ())) pairs preds in
  Repro_util.Int_sorted.of_unsorted (Array.of_list (List.map snd final))

let eval g (t : Xpath_ast.t) = eval_steps g ~context:[| G.root g |] t.steps

let eval_string g text = eval g (Xpath_parser.parse_exn text)
