open Xpath_ast

exception Fail of string

type cursor = {
  input : string;
  mutable pos : int;
}

let fail cur fmt = Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "%d: %s" cur.pos m))) fmt

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.input && String.equal (String.sub cur.input cur.pos n) s

let eat cur s =
  if looking_at cur s then cur.pos <- cur.pos + String.length s
  else fail cur "expected %S" s

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '.' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let name cur =
  let start = cur.pos in
  if looking_at cur "@" then cur.pos <- cur.pos + 1;
  while (match peek cur with Some c when is_name_char c -> true | _ -> false) do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start || (cur.input.[start] = '@' && cur.pos = start + 1) then
    fail cur "expected a name"
  else String.sub cur.input start (cur.pos - start)

let integer cur =
  let start = cur.pos in
  while (match peek cur with Some c when is_digit c -> true | _ -> false) do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur "expected an integer"
  else
    let digits = String.sub cur.input start (cur.pos - start) in
    (* [int_of_string] raises [Failure] on digit runs past [max_int];
       surface that as a positioned parse error instead of escaping the
       parser's [Fail]-based error channel. *)
    match int_of_string_opt digits with
    | Some n -> n
    | None -> fail { cur with pos = start } "integer %s out of range" digits

let value cur =
  if looking_at cur "\"" then begin
    eat cur "\"";
    let start = cur.pos in
    while (match peek cur with Some '"' -> false | Some _ -> true | None -> false) do
      cur.pos <- cur.pos + 1
    done;
    let v = String.sub cur.input start (cur.pos - start) in
    eat cur "\"";
    v
  end
  else begin
    let start = cur.pos in
    while (match peek cur with Some ']' -> false | Some _ -> true | None -> false) do
      cur.pos <- cur.pos + 1
    done;
    String.sub cur.input start (cur.pos - start)
  end

let nametest cur =
  if looking_at cur "*" then begin
    eat cur "*";
    Any
  end
  else Name (name cur)

(* separator before the next step inside a path; [=>] is dereference
   surface syntax and behaves like '/' *)
let separator cur =
  if looking_at cur "//" then begin
    eat cur "//";
    Some Descendant
  end
  else if looking_at cur "=>" then begin
    eat cur "=>";
    Some Child
  end
  else if looking_at cur "/" then begin
    eat cur "/";
    Some Child
  end
  else None

let rec predicates cur acc =
  if looking_at cur "[" then begin
    eat cur "[";
    let p =
      if looking_at cur "text()" then begin
        eat cur "text()";
        eat cur "=";
        Text_equals (value cur)
      end
      else
        match peek cur with
        | Some c when is_digit c -> Position (integer cur)
        | _ -> Exists (relpath cur)
    in
    eat cur "]";
    predicates cur (p :: acc)
  end
  else List.rev acc

and step cur ~axis =
  let test = nametest cur in
  let preds = predicates cur [] in
  { axis; test; predicates = preds }

and steps cur ~first_axis =
  let first = step cur ~axis:first_axis in
  let rec go acc =
    match separator cur with
    | Some axis -> go (step cur ~axis :: acc)
    | None -> List.rev acc
  in
  go [ first ]

and relpath cur =
  let first_axis =
    if looking_at cur ".//" then begin
      eat cur ".//";
      Descendant
    end
    else Child
  in
  steps cur ~first_axis

let parse input =
  let cur = { input; pos = 0 } in
  try
    let absolute, first_axis =
      if looking_at cur "//" then begin
        eat cur "//";
        (false, Descendant)
      end
      else if looking_at cur "/" then begin
        eat cur "/";
        (true, Child)
      end
      else raise (Fail "0: a path must start with / or //")
    in
    let steps = steps cur ~first_axis in
    if cur.pos <> String.length input then fail cur "trailing characters"
    else Ok { absolute; steps }
  with Fail m -> Error m

let parse_exn input =
  match parse input with
  | Ok p -> p
  | Error m -> invalid_arg (Printf.sprintf "Xpath_parser.parse_exn: %s" m)
