module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
module Query = Repro_pathexpr.Query
open Xpath_ast

type t =
  | Index_path of Query.compiled
  | Seeded of {
      prefix : Repro_pathexpr.Label_path.t;
      self_predicates : Xpath_ast.predicate list;
      residual : Xpath_ast.step list;
    }
  | Scan

let plain_name (s : step) =
  match s.test, s.predicates with
  | Name n, [] -> Some n
  | (Name _ | Any), _ -> None

let non_positional preds =
  List.for_all (function Position _ -> false | Text_equals _ | Exists _ -> true) preds

(* the leading //a/b/c... run: first step Descendant, then Child steps, all
   plain names. A final named step with only non-positional predicates may
   close the prefix, contributing its predicates as self-predicates. *)
let index_prefix steps =
  let close acc preds tl = (List.rev acc, preds, tl) in
  match steps with
  | ({ axis = Descendant; test = Name n; predicates } as first) :: rest ->
    if predicates <> [] then
      if non_positional predicates then close [ n ] predicates rest
      else ([], [], first :: rest)
    else
      let rec take acc = function
        | ({ axis = Child; test = Name n; predicates } as s) :: tl ->
          if predicates = [] then take (n :: acc) tl
          else if non_positional predicates then close (n :: acc) predicates tl
          else close acc [] (s :: tl)
        | tl -> close acc [] tl
      in
      take [ n ] rest
  | _ -> ([], [], steps)

let resolve labels names =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | n :: tl ->
      (match Label.find labels n with
       | Some l -> go (l :: acc) tl
       | None -> None)
  in
  go [] names

let plan g (path : Xpath_ast.t) =
  let labels = G.labels g in
  if path.absolute then Scan
  else
    match path.steps with
    (* //a//b : QTYPE2 *)
    | [ ({ axis = Descendant; _ } as s1); ({ axis = Descendant; _ } as s2) ]
      when Option.is_some (plain_name s1) && Option.is_some (plain_name s2) ->
      (match plain_name s1, plain_name s2 with
       | Some n1, Some n2 ->
         (match Label.find labels n1, Label.find labels n2 with
          | Some a, Some b -> Index_path (Query.C2 (a, b))
          | _ -> Scan (* a name absent from the data matches nothing the index knows *))
       | None, _ -> invalid_arg "Xpath_plan.plan: step 1 of //a//b lost its plain name"
       | _, None -> invalid_arg "Xpath_plan.plan: step 2 of //a//b lost its plain name")
    (* //a[text()=v] : QTYPE3 on a single step *)
    | [ { axis = Descendant; test = Name n; predicates = [ Text_equals v ] } ] ->
      (match Label.find labels n with
       | Some l -> Index_path (Query.C3 ([ l ], v))
       | None -> Scan)
    | steps ->
      let names, self_predicates, residual = index_prefix steps in
      (match names, self_predicates, residual with
       | [], _, _ -> Scan
       | names, [], [] ->
         (match resolve labels names with
          | Some p -> Index_path (Query.C1 p)
          | None -> Scan)
       | names, [ Text_equals v ], [] ->
         (* //a/b[text()=v] : QTYPE3 *)
         (match resolve labels names with
          | Some p -> Index_path (Query.C3 (p, v))
          | None -> Scan)
       | names, self_predicates, residual ->
         (match resolve labels names with
          | Some p -> Seeded { prefix = p; self_predicates; residual }
          | None -> Scan))

let describe = function
  | Index_path (Query.C1 _) -> "index(QTYPE1)"
  | Index_path (Query.C2 _) -> "index(QTYPE2)"
  | Index_path (Query.C3 _) -> "index(QTYPE3)"
  | Seeded { prefix; self_predicates; residual } ->
    Printf.sprintf "seeded(prefix=%d labels, %d self-predicates, residual=%d steps)"
      (List.length prefix) (List.length self_predicates) (List.length residual)
  | Scan -> "scan"

let execute ?cost ?table apex (path : Xpath_ast.t) =
  let module Tr = Repro_telemetry.Trace in
  let g = Repro_apex.Apex.graph apex in
  let ptok = Tr.begin_ Tr.Plan in
  let chosen = plan g path in
  Tr.end_ ptok;
  match chosen with
  | Index_path compiled -> Repro_apex.Apex_query.eval ?cost ?table apex compiled
  | Seeded { prefix; self_predicates; residual } ->
    let seeds = Repro_apex.Apex_query.eval ?cost apex (Query.C1 prefix) in
    let seeds = Xpath_eval.filter_predicates g seeds self_predicates in
    let mtok = Tr.begin_ Tr.Materialize in
    let result = Xpath_eval.eval_steps g ~context:seeds residual in
    Tr.end_arg mtok (Array.length result);
    result
  | Scan -> Xpath_eval.eval g path

let execute_string ?cost ?table apex text =
  let module Tr = Repro_telemetry.Trace in
  let ptok = Tr.begin_ Tr.Parse in
  let parsed = Xpath_parser.parse_exn text in
  Tr.end_ ptok;
  execute ?cost ?table apex parsed
