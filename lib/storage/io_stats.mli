(** Counters for the simulated disk and buffer pool. *)

type t = {
  mutable disk_reads : int;  (** pages fetched from the simulated disk *)
  mutable disk_writes : int;  (** pages written to the simulated disk *)
  mutable cache_hits : int;  (** page requests served by the buffer pool *)
  mutable cache_misses : int;
  mutable read_retries : int;
      (** re-reads after a failed page-checksum verification — transient
          corruption healed by the pager under an attached fault policy *)
  mutable refresh_aborts : int;
      (** adaptive-index refreshes rolled back to the previous snapshot
          after a storage fault (see [Self_tuning]) *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val total_page_requests : t -> int

val to_fields : t -> (string * int) list
(** Every counter as a [(name, value)] pair, in declaration order. Written
    with a complete record pattern so adding a field without extending the
    snapshot is a compile error under the dev profile. *)

val pp : Format.formatter -> t -> unit
