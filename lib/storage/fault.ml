type kind =
  | Torn_write
  | Write_flip
  | Read_flip
  | Short_read
  | Enospc

type op =
  | Read
  | Write
  | Alloc

exception Injected of { kind : kind; op : op; site : int }

type mode =
  | Off
  | Count
  | At of { kind : kind; target : int }
  | Random of { prob : float; kinds : kind array }

type t = {
  rand : Random.State.t;
  mutable mode : mode;
  counters : int array;  (* sites seen since the last arm, indexed by op *)
  mutable injections : int;
}

let op_index = function Read -> 0 | Write -> 1 | Alloc -> 2

let op_of_kind = function
  | Torn_write | Write_flip -> Write
  | Read_flip | Short_read -> Read
  | Enospc -> Alloc

let kind_name = function
  | Torn_write -> "torn-write"
  | Write_flip -> "write-bit-flip"
  | Read_flip -> "read-bit-flip"
  | Short_read -> "short-read"
  | Enospc -> "enospc"

let op_name = function Read -> "read" | Write -> "write" | Alloc -> "alloc"

let create ?(seed = 0) () =
  { rand = Random.State.make [| seed; 0xFA17 |];
    mode = Off;
    counters = Array.make 3 0;
    injections = 0
  }

let reset t =
  Array.fill t.counters 0 (Array.length t.counters) 0;
  t.injections <- 0

let disarm t = t.mode <- Off

let arm_count t =
  reset t;
  t.mode <- Count

let arm_at t kind ~site =
  if site < 0 then invalid_arg "Fault.arm_at: negative site";
  reset t;
  t.mode <- At { kind; target = site }

let arm_random t ~prob ~kinds =
  if not (prob >= 0.0 && prob <= 1.0) then invalid_arg "Fault.arm_random: prob outside [0,1]";
  (match kinds with [] -> invalid_arg "Fault.arm_random: no kinds" | _ :: _ -> ());
  reset t;
  t.mode <- Random { prob; kinds = Array.of_list kinds }

let sites t op = t.counters.(op_index op)
let fired t = t.injections > 0
let injections t = t.injections
let rand t = t.rand

let fire t op =
  match t.mode with
  | Off -> None
  | Count ->
    let i = op_index op in
    t.counters.(i) <- t.counters.(i) + 1;
    None
  | At { kind; target } ->
    let i = op_index op in
    let seen = t.counters.(i) in
    t.counters.(i) <- seen + 1;
    if Int.equal (op_index (op_of_kind kind)) i && Int.equal seen target then begin
      t.injections <- t.injections + 1;
      (* one-shot: recovery after the crash runs fault-free *)
      t.mode <- Off;
      Some kind
    end
    else None
  | Random { prob; kinds } ->
    let i = op_index op in
    t.counters.(i) <- t.counters.(i) + 1;
    let admissible =
      Array.of_seq
        (Seq.filter
           (fun k -> Int.equal (op_index (op_of_kind k)) i)
           (Array.to_seq kinds))
    in
    if Array.length admissible = 0 || Random.State.float t.rand 1.0 >= prob then None
    else begin
      t.injections <- t.injections + 1;
      Some admissible.(Random.State.int t.rand (Array.length admissible))
    end

let flip_bit t buf =
  if Bytes.length buf > 0 then begin
    let i = Random.State.int t.rand (Bytes.length buf) in
    let bit = Random.State.int t.rand 8 in
    Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl bit)))
  end

let zero_tail t buf =
  if Bytes.length buf > 0 then begin
    let from = Random.State.int t.rand (Bytes.length buf) in
    Bytes.fill buf from (Bytes.length buf - from) '\000'
  end
