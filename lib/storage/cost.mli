(** Logical cost counters for query processing.

    The paper reports wall-clock seconds on 2002 hardware with disk-resident
    data; these counters are the hardware-independent equivalent our
    benchmarks report alongside wall-clock. Each query processor increments
    the counters that correspond to its work:

    - [index_node_visits] / [index_edge_lookups] — navigation over the index
      graph (DataGuide/1-index/G_APEX traversal during pruning & rewriting);
    - [hash_probes] — H_APEX hash-tree probes;
    - [trie_node_visits] — Patricia-trie traversal (Index Fabric);
    - [extent_pages] / [extent_edges] — extent retrieval through the buffer
      pool;
    - [extent_cache_hits] / [extent_cache_misses] — probes of the
      decoded-extent LRU layered over the extent store (a hit skips page
      reads and varint decoding entirely);
    - [join_edges] — edges processed by multi-way extent joins;
    - [table_pages] — data-table pages probed for value predicates;
    - [extent_bytes] — encoded bytes fetched from extent storage (the
      resident-size counterpart of [extent_pages]);
    - [blocks_skipped] / [blocks_decoded] — block-compressed extent blocks
      rejected by a header range test vs. actually decoded by the
      decode-on-gallop kernels. *)

type t = {
  mutable index_node_visits : int;
  mutable struct_pages : int;
      (** distinct pages of disk-resident index {e structure} (summary-graph
          nodes, hash-tree hnodes) touched, deduplicated per query *)
  mutable index_edge_lookups : int;
  mutable hash_probes : int;
  mutable trie_node_visits : int;
  mutable trie_pages : int;
  mutable extent_pages : int;
  mutable extent_edges : int;
  mutable extent_cache_hits : int;
  mutable extent_cache_misses : int;
  mutable join_edges : int;
  mutable table_pages : int;
  mutable extent_bytes : int;
  mutable blocks_skipped : int;
  mutable blocks_decoded : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val extent_cache_hit_rate : t -> float
(** [extent_cache_hits / (hits + misses)], or [0.] before any probe. *)

val weighted_total : t -> float
(** Single scalar used for plot-style comparisons: page accesses dominate
    (weight 1.0 per page), in-memory structure steps cost 1/50 page, and
    per-edge streaming work costs 1/500 page. The exact weights only scale
    the series; orderings are driven by the counter magnitudes. *)

val to_fields : t -> (string * int) list
(** Every counter as a [(name, value)] pair, in declaration order. Written
    with a complete record pattern so adding a field without extending the
    snapshot is a compile error under the dev profile. *)

val pp : Format.formatter -> t -> unit
(** One line, every field: [ext_cache=h/m] prints hits and misses (not
    hits/total), so each counter appears verbatim exactly once. *)
