(* Page layouts (little-endian):
     leaf:  [u16 kind=1][u16 count][i64 next+1]  then  ([i64 key][u16 len][bytes])*
     inner: [u16 kind=2][u16 count][i64 child0]  then  ([i64 sep][i64 child])*
   An inner node with count separators has count+1 children; child i+1 holds
   keys >= sep i. *)

type t = {
  pool : Buffer_pool.t;
  mutable root : Pager.pid;
  mutable count : int;
  mutable height : int;
}

let kind_leaf = 1
let kind_inner = 2

let leaf_header = 12
let inner_header = 12
let inner_pair = 16

let page_size t = Pager.page_size (Buffer_pool.pager t.pool)

let charge cost =
  match cost with
  | Some c -> c.Cost.table_pages <- c.Cost.table_pages + 1
  | None -> ()

(* --- encode / decode --- *)

let decode_leaf buf =
  let count = Codec.get_u16 buf 2 in
  let next = Codec.get_i64 buf 4 - 1 in
  let entries = ref [] in
  let off = ref leaf_header in
  for _ = 1 to count do
    let key = Codec.get_i64 buf !off in
    let len = Codec.get_u16 buf (!off + 8) in
    entries := (key, Bytes.sub_string buf (!off + 10) len) :: !entries;
    off := !off + 10 + len
  done;
  (List.rev !entries, next)

let leaf_bytes entries =
  List.fold_left (fun acc (_, v) -> acc + 10 + String.length v) leaf_header entries

let encode_leaf t ~next entries =
  let buf = Bytes.make (page_size t) '\000' in
  Codec.set_u16 buf 0 kind_leaf;
  Codec.set_u16 buf 2 (List.length entries);
  Codec.set_i64 buf 4 (next + 1);
  let off = ref leaf_header in
  List.iter
    (fun (key, v) ->
      Codec.set_i64 buf !off key;
      Codec.set_u16 buf (!off + 8) (String.length v);
      Bytes.blit_string v 0 buf (!off + 10) (String.length v);
      off := !off + 10 + String.length v)
    entries;
  buf

let decode_inner buf =
  let count = Codec.get_u16 buf 2 in
  let child0 = Codec.get_i64 buf 4 in
  let pairs = ref [] in
  for i = 0 to count - 1 do
    let off = inner_header + (i * inner_pair) in
    pairs := (Codec.get_i64 buf off, Codec.get_i64 buf (off + 8)) :: !pairs
  done;
  (child0, List.rev !pairs)

let encode_inner t child0 pairs =
  let buf = Bytes.make (page_size t) '\000' in
  Codec.set_u16 buf 0 kind_inner;
  Codec.set_u16 buf 2 (List.length pairs);
  Codec.set_i64 buf 4 child0;
  List.iteri
    (fun i (sep, child) ->
      let off = inner_header + (i * inner_pair) in
      Codec.set_i64 buf off sep;
      Codec.set_i64 buf (off + 8) child)
    pairs;
  buf

let node_kind buf = Codec.get_u16 buf 0

(* --- construction --- *)

let create pool =
  let pager = Buffer_pool.pager pool in
  let root = Pager.alloc pager in
  let t = { pool; root; count = 0; height = 1 } in
  Buffer_pool.write pool root (encode_leaf t ~next:(-1) []);
  t

(* --- insert --- *)

let max_inner_pairs t = (page_size t - inner_header) / inner_pair

let split_list l =
  let n = List.length l in
  let rec go i acc = function
    | rest when i = n / 2 -> (List.rev acc, rest)
    | x :: rest -> go (i + 1) (x :: acc) rest
    | [] -> (List.rev acc, [])
  in
  go 0 [] l

(* returns (separator, new right sibling pid) on split *)
let rec insert_at t pid key v =
  let buf = Buffer_pool.get t.pool pid in
  if node_kind buf = kind_leaf then begin
    let entries, next = decode_leaf buf in
    let replaced = List.mem_assoc key entries in
    let entries =
      if replaced then List.map (fun (k, v') -> if k = key then (k, v) else (k, v')) entries
      else
        let rec ins = function
          | (k, _) :: _ as rest when k > key -> (key, v) :: rest
          | e :: rest -> e :: ins rest
          | [] -> [ (key, v) ]
        in
        ins entries
    in
    if not replaced then t.count <- t.count + 1;
    if leaf_bytes entries <= page_size t then begin
      Buffer_pool.write t.pool pid (encode_leaf t ~next entries);
      None
    end
    else begin
      let left, right = split_list entries in
      match right with
      | [] -> invalid_arg "Btree.insert: payload too large for a page"
      | (sep, _) :: _ ->
        let right_pid = Pager.alloc (Buffer_pool.pager t.pool) in
        Buffer_pool.write t.pool right_pid (encode_leaf t ~next right);
        Buffer_pool.write t.pool pid (encode_leaf t ~next:right_pid left);
        if List.is_empty left then invalid_arg "Btree.insert: payload too large for a page";
        Some (sep, right_pid)
    end
  end
  else begin
    let child0, pairs = decode_inner buf in
    let child =
      List.fold_left (fun acc (sep, c) -> if key >= sep then c else acc) child0 pairs
    in
    match insert_at t child key v with
    | None -> None
    | Some (sep, right_pid) ->
      let pairs =
        let rec ins = function
          | (s, _) :: _ as rest when s > sep -> (sep, right_pid) :: rest
          | p :: rest -> p :: ins rest
          | [] -> [ (sep, right_pid) ]
        in
        ins pairs
      in
      if List.length pairs <= max_inner_pairs t then begin
        Buffer_pool.write t.pool pid (encode_inner t child0 pairs);
        None
      end
      else begin
        let left, right = split_list pairs in
        match right with
        | [] -> assert false
        | (up_sep, up_child) :: right_rest ->
          let right_pid' = Pager.alloc (Buffer_pool.pager t.pool) in
          Buffer_pool.write t.pool right_pid' (encode_inner t up_child right_rest);
          Buffer_pool.write t.pool pid (encode_inner t child0 left);
          Some (up_sep, right_pid')
      end
  end

let insert t key v =
  if String.length v + 10 + leaf_header > page_size t then
    invalid_arg "Btree.insert: payload too large for a page";
  match insert_at t t.root key v with
  | None -> ()
  | Some (sep, right_pid) ->
    let new_root = Pager.alloc (Buffer_pool.pager t.pool) in
    Buffer_pool.write t.pool new_root (encode_inner t t.root [ (sep, right_pid) ]);
    t.root <- new_root;
    t.height <- t.height + 1

(* --- lookups --- *)

(* descend to the leaf for [key], charging one page per inner node; the
   caller charges the leaf page(s) it actually reads *)
let rec descend ?cost t pid key =
  let buf = Buffer_pool.get t.pool pid in
  if node_kind buf = kind_leaf then pid
  else begin
    charge cost;
    let child0, pairs = decode_inner buf in
    let child =
      List.fold_left (fun acc (sep, c) -> if key >= sep then c else acc) child0 pairs
    in
    descend ?cost t child key
  end

let find ?cost t key =
  let leaf = descend ?cost t t.root key in
  charge cost;
  let entries, _ = decode_leaf (Buffer_pool.get t.pool leaf) in
  List.assoc_opt key entries

let mem ?cost t key = Option.is_some (find ?cost t key)

let range ?cost t ~lo ~hi =
  if hi < lo then []
  else begin
    let leaf = descend ?cost t t.root lo in
    let acc = ref [] in
    let rec walk pid =
      if pid >= 0 then begin
        charge cost;
        let entries, next = decode_leaf (Buffer_pool.get t.pool pid) in
        let keep = List.filter (fun (k, _) -> k >= lo && k <= hi) entries in
        acc := List.rev_append keep !acc;
        let continue = match List.rev entries with (k, _) :: _ -> k <= hi | [] -> true in
        if continue then walk next
      end
    in
    walk leaf;
    List.rev !acc
  end

let iter t f =
  (* leftmost leaf, then the chain *)
  let rec leftmost pid =
    let buf = Buffer_pool.get t.pool pid in
    if node_kind buf = kind_leaf then pid
    else begin
      let child0, _ = decode_inner buf in
      leftmost child0
    end
  in
  let rec walk pid =
    if pid >= 0 then begin
      let entries, next = decode_leaf (Buffer_pool.get t.pool pid) in
      List.iter (fun (k, v) -> f k v) entries;
      walk next
    end
  in
  walk (leftmost t.root)

let cardinal t = t.count
let height t = t.height

let n_pages t =
  let n = ref 0 in
  let rec count pid =
    incr n;
    let buf = Buffer_pool.get t.pool pid in
    if node_kind buf = kind_inner then begin
      let child0, pairs = decode_inner buf in
      count child0;
      List.iter (fun (_, c) -> count c) pairs
    end
  in
  count t.root;
  !n
