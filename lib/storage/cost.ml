type t = {
  mutable index_node_visits : int;
  mutable struct_pages : int;
  mutable index_edge_lookups : int;
  mutable hash_probes : int;
  mutable trie_node_visits : int;
  mutable trie_pages : int;
  mutable extent_pages : int;
  mutable extent_edges : int;
  mutable extent_cache_hits : int;
  mutable extent_cache_misses : int;
  mutable join_edges : int;
  mutable table_pages : int;
  mutable extent_bytes : int;
  mutable blocks_skipped : int;
  mutable blocks_decoded : int;
}

let create () =
  { index_node_visits = 0;
    struct_pages = 0;
    index_edge_lookups = 0;
    hash_probes = 0;
    trie_node_visits = 0;
    trie_pages = 0;
    extent_pages = 0;
    extent_edges = 0;
    extent_cache_hits = 0;
    extent_cache_misses = 0;
    join_edges = 0;
    table_pages = 0;
    extent_bytes = 0;
    blocks_skipped = 0;
    blocks_decoded = 0
  }

let reset t =
  t.index_node_visits <- 0;
  t.struct_pages <- 0;
  t.index_edge_lookups <- 0;
  t.hash_probes <- 0;
  t.trie_node_visits <- 0;
  t.trie_pages <- 0;
  t.extent_pages <- 0;
  t.extent_edges <- 0;
  t.extent_cache_hits <- 0;
  t.extent_cache_misses <- 0;
  t.join_edges <- 0;
  t.table_pages <- 0;
  t.extent_bytes <- 0;
  t.blocks_skipped <- 0;
  t.blocks_decoded <- 0

let copy t =
  { index_node_visits = t.index_node_visits;
    struct_pages = t.struct_pages;
    index_edge_lookups = t.index_edge_lookups;
    hash_probes = t.hash_probes;
    trie_node_visits = t.trie_node_visits;
    trie_pages = t.trie_pages;
    extent_pages = t.extent_pages;
    extent_edges = t.extent_edges;
    extent_cache_hits = t.extent_cache_hits;
    extent_cache_misses = t.extent_cache_misses;
    join_edges = t.join_edges;
    table_pages = t.table_pages;
    extent_bytes = t.extent_bytes;
    blocks_skipped = t.blocks_skipped;
    blocks_decoded = t.blocks_decoded
  }

let add acc x =
  acc.index_node_visits <- acc.index_node_visits + x.index_node_visits;
  acc.struct_pages <- acc.struct_pages + x.struct_pages;
  acc.index_edge_lookups <- acc.index_edge_lookups + x.index_edge_lookups;
  acc.hash_probes <- acc.hash_probes + x.hash_probes;
  acc.trie_node_visits <- acc.trie_node_visits + x.trie_node_visits;
  acc.trie_pages <- acc.trie_pages + x.trie_pages;
  acc.extent_pages <- acc.extent_pages + x.extent_pages;
  acc.extent_edges <- acc.extent_edges + x.extent_edges;
  acc.extent_cache_hits <- acc.extent_cache_hits + x.extent_cache_hits;
  acc.extent_cache_misses <- acc.extent_cache_misses + x.extent_cache_misses;
  acc.join_edges <- acc.join_edges + x.join_edges;
  acc.table_pages <- acc.table_pages + x.table_pages;
  acc.extent_bytes <- acc.extent_bytes + x.extent_bytes;
  acc.blocks_skipped <- acc.blocks_skipped + x.blocks_skipped;
  acc.blocks_decoded <- acc.blocks_decoded + x.blocks_decoded

let weighted_total t =
  let pages = float_of_int (t.extent_pages + t.table_pages + t.trie_pages + t.struct_pages) in
  let steps =
    float_of_int (t.index_node_visits + t.index_edge_lookups + t.hash_probes + t.trie_node_visits)
  in
  let streaming = float_of_int (t.extent_edges + t.join_edges) in
  pages +. (steps /. 50.) +. (streaming /. 500.)

let extent_cache_hit_rate t =
  let total = t.extent_cache_hits + t.extent_cache_misses in
  if total = 0 then 0. else float_of_int t.extent_cache_hits /. float_of_int total

(* Complete destructuring on purpose: adding a field to [t] makes this
   pattern incomplete, and warning 9 (promoted to an error in the dev
   profile) forces the new field into the snapshot — the same drift guard
   the field-coverage test relies on. *)
let to_fields
    { index_node_visits;
      struct_pages;
      index_edge_lookups;
      hash_probes;
      trie_node_visits;
      trie_pages;
      extent_pages;
      extent_edges;
      extent_cache_hits;
      extent_cache_misses;
      join_edges;
      table_pages;
      extent_bytes;
      blocks_skipped;
      blocks_decoded
    } =
  [ ("index_node_visits", index_node_visits);
    ("struct_pages", struct_pages);
    ("index_edge_lookups", index_edge_lookups);
    ("hash_probes", hash_probes);
    ("trie_node_visits", trie_node_visits);
    ("trie_pages", trie_pages);
    ("extent_pages", extent_pages);
    ("extent_edges", extent_edges);
    ("extent_cache_hits", extent_cache_hits);
    ("extent_cache_misses", extent_cache_misses);
    ("join_edges", join_edges);
    ("table_pages", table_pages);
    ("extent_bytes", extent_bytes);
    ("blocks_skipped", blocks_skipped);
    ("blocks_decoded", blocks_decoded)
  ]

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d(%dp) edges=%d hash=%d trie=%d/%dp ext_pages=%d ext_edges=%d ext_cache=%d/%d join=%d table=%d ext_bytes=%d blk_skip=%d blk_dec=%d"
    t.index_node_visits t.struct_pages t.index_edge_lookups t.hash_probes t.trie_node_visits
    t.trie_pages t.extent_pages t.extent_edges t.extent_cache_hits t.extent_cache_misses
    t.join_edges t.table_pages t.extent_bytes t.blocks_skipped t.blocks_decoded
