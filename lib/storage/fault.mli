(** Seeded, deterministic storage-fault injection.

    A policy is attached to a {!Pager} ({!Pager.set_fault}); while attached,
    every page allocation, read and write is an {e injectable site}. The
    policy decides, per site, whether to deliver a fault:

    - {e crash faults} ([Torn_write], [Enospc]) leave the simulated disk in
      a mid-operation state and raise {!Injected} — the test's stand-in for
      the process dying;
    - {e silent corruption} ([Write_flip]) lands a bit-flipped page while
      recording the checksum of the intended contents, so a later read
      detects the damage;
    - {e transient corruption} ([Read_flip], [Short_read]) damages only the
      returned copy; the pager's checksum verification catches it and a
      retry heals it.

    Policies are deterministic in their seed, so a failing site replays
    exactly. The crash-matrix harness runs a schedule once in counting mode
    ({!arm_count}), reads how many sites of each class it passed, and then
    replays it once per site with {!arm_at} — an exhaustive enumeration of
    crash points.

    A pager with no policy attached pays nothing: the hook is one [match]
    on [None]. *)

type kind =
  | Torn_write  (** a write persists only a prefix of the buffer, then crash *)
  | Write_flip  (** a write lands with one bit flipped; no exception *)
  | Read_flip  (** the returned copy has one bit flipped (transient) *)
  | Short_read  (** the returned copy's tail is zeroed (transient) *)
  | Enospc  (** allocation fails, then crash *)

type op =
  | Read
  | Write
  | Alloc

exception Injected of { kind : kind; op : op; site : int }
(** The simulated crash. [site] is the 0-based index of the injectable
    site (within its op class) at which the fault fired. *)

type t

val create : ?seed:int -> unit -> t
(** A disarmed policy ([seed] defaults to 0). All randomness — site
    selection in random mode, bit positions, tear points — comes from a
    private PRNG seeded here. *)

val disarm : t -> unit
(** Stop injecting. The policy stays attached, so checksum verification on
    reads remains active — recovery code runs under a disarmed policy. *)

val arm_count : t -> unit
(** Reset site counters and count sites without injecting — the first pass
    of the crash matrix. *)

val arm_at : t -> kind -> site:int -> unit
(** Deliver [kind] at the [site]-th site of its op class, once; the policy
    disarms itself after firing. Counters are reset.
    @raise Invalid_argument when [site] is negative. *)

val arm_random : t -> prob:float -> kinds:kind list -> unit
(** At every site whose op class admits one of [kinds], deliver a uniformly
    chosen admissible kind with probability [prob]. Not one-shot.
    @raise Invalid_argument when [prob] is outside [0,1] or [kinds] is
    empty. *)

val op_of_kind : kind -> op
(** The op class whose sites a kind can fire at. *)

val sites : t -> op -> int
(** Injectable sites of the class passed since the last [arm_*]. *)

val fired : t -> bool
(** Whether any fault has been delivered since the last [arm_*]. *)

val injections : t -> int

val rand : t -> Random.State.t
(** The policy PRNG — used by the pager for tear points and bit
    positions so a whole faulty run is a function of the seed. *)

val fire : t -> op -> kind option
(** Pager-internal: record one site of class [op] and return the fault to
    deliver there, if any. *)

val flip_bit : t -> bytes -> unit
(** Corruption effector: flip one random bit (no-op on empty buffers). *)

val zero_tail : t -> bytes -> unit
(** Corruption effector: zero the buffer from a random offset on. *)

val kind_name : kind -> string
val op_name : op -> string
