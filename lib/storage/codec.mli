(** Little-endian fixed-width encodings shared by page layouts. *)

val set_i64 : bytes -> int -> int -> unit
(** Write an OCaml int (≤ 63 bits) as 8 bytes at the given offset. *)

val get_i64 : bytes -> int -> int

val set_u16 : bytes -> int -> int -> unit
(** @raise Invalid_argument when the value does not fit 16 bits. *)

val get_u16 : bytes -> int -> int

val crc32 : ?pos:int -> ?len:int -> bytes -> int
(** CRC-32 (IEEE) of [len] bytes from [pos] (defaults: the whole buffer).
    Used for per-page checksums under fault injection and for snapshot
    commit records. @raise Invalid_argument on an out-of-bounds range. *)

val crc32_ints : int array -> int
(** CRC-32 of an integer stream, each value fed as 8 little-endian bytes —
    checksums a persistence image independently of the on-page codec. *)
