module Vec = Repro_util.Vec

type pid = int

type t = {
  page_size : int;
  pages : bytes Vec.t;
  crcs : int Vec.t;  (* per-page CRC-32; -1 = unknown (written while no policy attached) *)
  zero_crc : int;
  stats : Io_stats.t;
  mutable fault : Fault.t option;
}

let create ?(page_size = 8192) () =
  if page_size < 64 then invalid_arg "Pager.create: page_size too small";
  { page_size;
    pages = Vec.create ();
    crcs = Vec.create ();
    zero_crc = Codec.crc32 (Bytes.make page_size '\000');
    stats = Io_stats.create ();
    fault = None
  }

let page_size t = t.page_size
let n_pages t = Vec.length t.pages
let stats t = t.stats
let set_fault t policy = t.fault <- policy
let fault t = t.fault

let alloc t =
  let pid = n_pages t in
  let admit crc =
    Vec.push t.pages (Bytes.make t.page_size '\000');
    Vec.push t.crcs crc;
    pid
  in
  match t.fault with
  | None -> admit (-1)
  | Some f ->
    (match Fault.fire f Fault.Alloc with
     | Some Fault.Enospc ->
       raise
         (Fault.Injected
            { kind = Fault.Enospc; op = Fault.Alloc; site = Fault.sites f Fault.Alloc - 1 })
     | Some _ | None -> admit t.zero_crc)

let check t pid =
  if pid < 0 || pid >= n_pages t then
    invalid_arg (Printf.sprintf "Pager: unknown page %d (have %d)" pid (n_pages t))

let max_read_retries = 3

let read_with_faults t f pid =
  let stored = Vec.get t.pages pid in
  let copy = Bytes.copy stored in
  (match Fault.fire f Fault.Read with
   | Some Fault.Read_flip -> Fault.flip_bit f copy
   | Some Fault.Short_read -> Fault.zero_tail f copy
   | Some (Fault.Torn_write | Fault.Write_flip | Fault.Enospc) | None -> ());
  let expected = Vec.get t.crcs pid in
  if expected = -1 then copy
  else begin
    let rec settle copy retries =
      if Codec.crc32 copy = expected then copy
      else if retries >= max_read_retries then
        invalid_arg (Printf.sprintf "Pager.read: page %d failed checksum verification" pid)
      else begin
        t.stats.read_retries <- t.stats.read_retries + 1;
        t.stats.disk_reads <- t.stats.disk_reads + 1;
        (* a fresh copy: transient corruption does not recur, persistent
           corruption (a landed bit flip) keeps failing until we give up *)
        settle (Bytes.copy stored) (retries + 1)
      end
    in
    settle copy 0
  end

let read t pid =
  check t pid;
  t.stats.disk_reads <- t.stats.disk_reads + 1;
  match t.fault with
  | None -> Bytes.copy (Vec.get t.pages pid)
  | Some f -> read_with_faults t f pid

let write t pid buf =
  check t pid;
  if Bytes.length buf <> t.page_size then
    invalid_arg
      (Printf.sprintf "Pager.write: buffer is %d bytes, page size is %d" (Bytes.length buf)
         t.page_size);
  t.stats.disk_writes <- t.stats.disk_writes + 1;
  match t.fault with
  | None ->
    Vec.set t.pages pid (Bytes.copy buf);
    Vec.set t.crcs pid (-1)
  | Some f ->
    (match Fault.fire f Fault.Write with
     | Some Fault.Torn_write ->
       (* a prefix of the new buffer lands; the page keeps its old tail.
          Sector checksums are written with the data, so the torn page is
          consistent at page level — only a higher-level checksum (commit
          record, image CRC) can tell the generations apart. *)
       let cut = 1 + Random.State.int (Fault.rand f) (t.page_size - 1) in
       let torn = Bytes.copy (Vec.get t.pages pid) in
       Bytes.blit buf 0 torn 0 cut;
       Vec.set t.pages pid torn;
       Vec.set t.crcs pid (Codec.crc32 torn);
       raise
         (Fault.Injected
            { kind = Fault.Torn_write; op = Fault.Write; site = Fault.sites f Fault.Write - 1 })
     | Some Fault.Write_flip ->
       (* silent corruption: the stored page differs from the intended
          contents whose checksum we record — detected on a later read *)
       let landed = Bytes.copy buf in
       Fault.flip_bit f landed;
       Vec.set t.pages pid landed;
       Vec.set t.crcs pid (Codec.crc32 buf)
     | Some (Fault.Read_flip | Fault.Short_read | Fault.Enospc) | None ->
       Vec.set t.pages pid (Bytes.copy buf);
       Vec.set t.crcs pid (Codec.crc32 buf))

let unsafe_borrow t pid =
  check t pid;
  Vec.get t.pages pid
