module Edge_set = Repro_graph.Edge_set
module Int_sorted = Repro_util.Int_sorted
module Vec = Repro_util.Vec

type codec =
  [ `Raw
  | `Delta_varint
  | `Block
  ]

type handle = {
  first_page : Pager.pid;
  first_off : int;
  n_bytes : int;
  n_ints : int;
  base : handle option;
      (* [Some h]: this blob is a delta — [n_removed], then the removed
         edges, then the added ones — over the extent named by [h];
         [None]: a plain full extent *)
}

(* What a cache entry holds. Under the [`Block] codec a sorted extent
   stays in its parsed-but-compressed form ([Blocks]): headers are
   materialized, payloads decode on demand through the view kernels.
   Everything else — raw/varint codecs, delta payloads, unsorted int
   streams — is a plain decoded array ([Flat]). *)
type repr =
  | Flat of int array
  | Blocks of Extent_codec.t

(* decoded-extent LRU: an intrusive doubly-linked list threaded through a
   hash table, keyed by the handle's start position (unique per extent).
   A hit returns the cached representation without touching the buffer
   pool or the varint decoder. *)
type cache_node = {
  key : int;
  repr : repr;
  size : int;  (* logical ints, for the cache budget *)
  mutable set : Edge_set.t option;
      (* resolved, validated view, built lazily; for a delta blob this is
         the extent with the whole chain applied *)
  mutable prev : cache_node;
  mutable next : cache_node;
}

type cache = {
  tbl : (int, cache_node) Hashtbl.t;
  mutable head : cache_node option;  (* most recent; the list is circular *)
  mutable cached_ints : int;
  max_entries : int;
  max_ints : int;
}

(* Guard disciplines on the shared store (see DESIGN.md "Domain-safety
   analysis"): "lru" — the decoded-extent cache, reader-path fills and
   evictions, to become per-domain or locked in the server; "append" — the
   write cursor, touched only while building/compacting a store (single
   writer); "scratch" — per-store decode space, to become per-domain;
   "stats" — monotonic counters whose races lose increments, not answers;
   "pool" — the pager/buffer-pool substrate, page reads on the query path
   go through its own fill/pin discipline. *)
type t = {
  pool : Buffer_pool.t [@apex.guarded "pool"];
  enc : codec;
  cache : cache option [@apex.guarded "lru"];
  mutable cur_page : Pager.pid; [@apex.guarded "append"]
  mutable cur_off : int; [@apex.guarded "append"]
  cur_buf : bytes [@apex.guarded "append"];
  scratch : int array [@apex.guarded "scratch"];
      (* one block's worth of decode space, reused by every view kernel
         on this store so the decode-on-gallop hot path allocates nothing
         per block *)
  mutable appended_ints : int; [@apex.guarded "stats"]
      (* lifetime logical ints appended *)
  mutable appended_bytes : int; [@apex.guarded "stats"]
      (* lifetime encoded bytes appended *)
  mutable skipped_blocks : int; [@apex.guarded "stats"]
      (* lifetime view-kernel block skips *)
  mutable decoded_blocks : int; [@apex.guarded "stats"]
      (* lifetime view-kernel block decodes *)
}
[@@apex.shared]

let create ?(codec = `Raw) ?(cache_entries = 1024) ?(cache_ints = 4_000_000) pool =
  let pager = Buffer_pool.pager pool in
  let pid = Pager.alloc pager in
  let cache =
    if cache_entries <= 0 then None
    else
      Some
        { tbl = Hashtbl.create (2 * cache_entries);
          head = None;
          cached_ints = 0;
          max_entries = cache_entries;
          max_ints = cache_ints
        }
  in
  { pool;
    enc = codec;
    cache;
    cur_page = pid;
    cur_off = 0;
    cur_buf = Bytes.make (Pager.page_size pager) '\000';
    scratch = Array.make Extent_codec.block_edges 0;
    appended_ints = 0;
    appended_bytes = 0;
    skipped_blocks = 0;
    decoded_blocks = 0
  }

let codec t = t.enc
let pool t = t.pool

let handle_fields h =
  if Option.is_some h.base then
    invalid_arg "Extent_store.handle_fields: delta handles are not persistable";
  (h.first_page, h.first_off, h.n_bytes, h.n_ints)

let handle_of_fields ~first_page ~first_off ~n_bytes ~n_ints =
  if first_page < 0 || first_off < 0 || n_bytes < 0 || n_ints < 0 then
    invalid_arg "Extent_store.handle_of_fields: negative field";
  { first_page; first_off; n_bytes; n_ints; base = None }

let rec chain_length h = match h.base with None -> 0 | Some b -> 1 + chain_length b

(* --- LRU primitives --- *)

let lru_unlink c node =
  if node.next == node then c.head <- None
  else begin
    node.prev.next <- node.next;
    node.next.prev <- node.prev;
    (match c.head with Some h when h == node -> c.head <- Some node.next | _ -> ())
  end

let lru_push_front c node =
  (match c.head with
   | None ->
     node.prev <- node;
     node.next <- node
   | Some h ->
     node.prev <- h.prev;
     node.next <- h;
     h.prev.next <- node;
     h.prev <- node);
  c.head <- Some node

let lru_touch c node =
  match c.head with
  | Some h when h == node -> ()
  | _ ->
    lru_unlink c node;
    lru_push_front c node

let lru_evict_tail c =
  match c.head with
  | None -> ()
  | Some h ->
    let tail = h.prev in
    lru_unlink c tail;
    Hashtbl.remove c.tbl tail.key;
    c.cached_ints <- c.cached_ints - tail.size

let repr_len = function
  | Flat a -> Array.length a
  | Blocks b -> Extent_codec.n_edges b

let lru_insert c key repr =
  let size = repr_len repr in
  let rec node = { key; repr; size; set = None; prev = node; next = node } in
  Hashtbl.replace c.tbl key node;
  c.cached_ints <- c.cached_ints + size;
  lru_push_front c node;
  while Hashtbl.length c.tbl > c.max_entries || c.cached_ints > c.max_ints do
    lru_evict_tail c
  done;
  node

(* --- encoding --- *)

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let add_zigzag_varints buf ints =
  let prev = ref 0 in
  Array.iter
    (fun v ->
      add_varint buf (zigzag (v - !prev));
      prev := v)
    ints

let encode enc ints =
  match enc with
  | `Raw ->
    let buf = Bytes.create (8 * Array.length ints) in
    Array.iteri (fun i v -> Codec.set_i64 buf (i * 8) v) ints;
    Bytes.unsafe_to_string buf
  | `Delta_varint ->
    let buf = Buffer.create (Array.length ints * 2) in
    add_zigzag_varints buf ints;
    Buffer.contents buf
  | `Block ->
    (* Sorted non-negative data — i.e. every full extent — gets the
       block-compressed queryable form behind tag 1. Anything else
       (delta payloads [n_removed; removed...; added...], persistence
       images) falls back to a plain zigzag varint stream behind tag 0:
       those blobs are consumed whole, never galloped. *)
    let n = Array.length ints in
    if n = 0 || (ints.(0) >= 0 && Int_sorted.is_sorted_set ints) then
      "\001" ^ Extent_codec.encode ints
    else begin
      let buf = Buffer.create (1 + (n * 2)) in
      Buffer.add_char buf '\000';
      add_zigzag_varints buf ints;
      Buffer.contents buf
    end

let decode_zigzag_varints data start n_ints =
  let out = Array.make n_ints 0 in
  let pos = ref start in
  let prev = ref 0 in
  for i = 0 to n_ints - 1 do
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let byte = Char.code data.[!pos] in
      incr pos;
      v := !v lor ((byte land 0x7F) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    done;
    prev := !prev + unzigzag !v;
    out.(i) <- !prev
  done;
  out

let decode enc data n_ints =
  match enc with
  | `Raw ->
    Array.init n_ints (fun i -> Codec.get_i64 (Bytes.unsafe_of_string data) (i * 8))
  | `Delta_varint -> decode_zigzag_varints data 0 n_ints

let repr_of_blob enc data n_ints =
  match enc with
  | `Raw -> Flat (decode `Raw data n_ints)
  | `Delta_varint -> Flat (decode `Delta_varint data n_ints)
  | `Block ->
    if String.length data = 0 then Flat [||]
    else begin
      match data.[0] with
      | '\001' ->
        let b = Extent_codec.of_encoded ~pos:1 data in
        if Extent_codec.n_edges b <> n_ints then
          invalid_arg "Extent_store: block blob edge count mismatch";
        Blocks b
      | '\000' -> Flat (decode_zigzag_varints data 1 n_ints)
      | _ -> invalid_arg "Extent_store: unknown blob tag"
    end

let repr_ints = function
  | Flat a -> a
  | Blocks b -> Extent_codec.decode_all b

(* --- page-spanning byte blobs --- *)

let flush_current t = Buffer_pool.write t.pool t.cur_page t.cur_buf

let next_page t =
  flush_current t;
  let pager = Buffer_pool.pager t.pool in
  t.cur_page <- Pager.alloc pager;
  t.cur_off <- 0;
  Bytes.fill t.cur_buf 0 (Bytes.length t.cur_buf) '\000'

(* Like [next_page], but without re-writing the tail page: every append
   ends with [flush_current], so between appends the disk already holds
   [cur_buf]. Skipping the redundant write matters under fault injection —
   a committed blob's tail page is never touched again, so a fault on a
   later append cannot corrupt earlier data. *)
let start_fresh_page t =
  let pager = Buffer_pool.pager t.pool in
  t.cur_page <- Pager.alloc pager;
  t.cur_off <- 0;
  Bytes.fill t.cur_buf 0 (Bytes.length t.cur_buf) '\000'

let append_blob t data ~n_ints =
  let pager = Buffer_pool.pager t.pool in
  let page_size = Pager.page_size pager in
  (* A blob occupies consecutive pids ([load] walks [pid; pid+1; ...]).
     Within one append, allocations are consecutive; but if another store
     allocated pages since our last write, restart on a fresh tail page. *)
  if t.cur_page <> Pager.n_pages pager - 1 then start_fresh_page t;
  if t.cur_off >= page_size then start_fresh_page t;
  let handle =
    { first_page = t.cur_page;
      first_off = t.cur_off;
      n_bytes = String.length data;
      n_ints;
      base = None
    }
  in
  t.appended_ints <- t.appended_ints + n_ints;
  t.appended_bytes <- t.appended_bytes + String.length data;
  let remaining = ref (String.length data) in
  let src = ref 0 in
  while !remaining > 0 do
    if t.cur_off >= page_size then next_page t;
    let chunk = Int.min !remaining (page_size - t.cur_off) in
    Bytes.blit_string data !src t.cur_buf t.cur_off chunk;
    t.cur_off <- t.cur_off + chunk;
    src := !src + chunk;
    remaining := !remaining - chunk
  done;
  flush_current t;
  handle

let pages_spanned t h =
  if h.n_bytes = 0 then 0
  else begin
    let page_size = Pager.page_size (Buffer_pool.pager t.pool) in
    ((h.first_off + h.n_bytes + page_size - 1) / page_size)
  end

let load_blob ?cost ?(charge_edges = true) t h =
  let page_size = Pager.page_size (Buffer_pool.pager t.pool) in
  let out = Bytes.create h.n_bytes in
  let pages = pages_spanned t h in
  let copied = ref 0 in
  for i = 0 to pages - 1 do
    let buf = Buffer_pool.get t.pool (h.first_page + i) in
    let start = if i = 0 then h.first_off else 0 in
    let chunk = Int.min (h.n_bytes - !copied) (page_size - start) in
    Bytes.blit buf start out !copied chunk;
    copied := !copied + chunk
  done;
  (match cost with
   | Some c ->
     c.Cost.extent_pages <- c.Cost.extent_pages + pages;
     c.Cost.extent_bytes <- c.Cost.extent_bytes + h.n_bytes;
     if charge_edges then c.Cost.extent_edges <- c.Cost.extent_edges + h.n_ints
   | None -> ());
  Bytes.unsafe_to_string out

(* --- public API --- *)

let append_ints t ints = append_blob t (encode t.enc ints) ~n_ints:(Array.length ints)

let append t (set : Edge_set.t) = append_ints t (set :> int array)

let append_delta t ~base ~(removed : Edge_set.t) ~(added : Edge_set.t) =
  let r = (removed :> int array) and a = (added :> int array) in
  let ints = Array.concat [ [| Array.length r |]; r; a ] in
  let h = append_blob t (encode t.enc ints) ~n_ints:(Array.length ints) in
  { h with base = Some base }

let cache_key t h =
  (h.first_page * Pager.page_size (Buffer_pool.pager t.pool)) + h.first_off

let charge_hit ?(charge_edges = true) cost h =
  match cost with
  | Some c ->
    c.Cost.extent_cache_hits <- c.Cost.extent_cache_hits + 1;
    (* the edges still stream through the caller; only page I/O is saved *)
    if charge_edges then c.Cost.extent_edges <- c.Cost.extent_edges + h.n_ints
  | None -> ()

let charge_miss cost =
  match cost with
  | Some c -> c.Cost.extent_cache_misses <- c.Cost.extent_cache_misses + 1
  | None -> ()

let load_node ?cost ?(charge_edges = true) t h =
  match t.cache with
  | None -> None
  (* an empty blob does not advance the tail, so it would share its start
     position — the cache key — with the next extent; decoding it is free
     anyway, so bypass *)
  | Some _ when h.n_bytes = 0 -> None
  | Some c ->
    let key = cache_key t h in
    (match Hashtbl.find_opt c.tbl key with
     | Some node ->
       charge_hit ~charge_edges cost h;
       lru_touch c node;
       Some node
     | None ->
       charge_miss cost;
       let repr = repr_of_blob t.enc (load_blob ?cost ~charge_edges t h) h.n_ints in
       Some (lru_insert c key repr))

(* Build (once) the validated set view of a node holding a FULL extent.
   Not meaningful for delta nodes, whose [set] is the chain-resolved
   extent and is written by [load] below. *)
let set_of_node node =
  match node.set with
  | Some s -> s
  | None ->
    let s =
      match node.repr with
      | Flat a -> Edge_set.of_packed_array a
      | Blocks b ->
        (* decode_all validates strict ascending order block by block *)
        Edge_set.unsafe_of_sorted (Extent_codec.decode_all b)
    in
    node.set <- Some s;
    s

let load_ints ?cost t h =
  match load_node ?cost t h with
  | Some node ->
    (match node.repr with
     | Flat a -> a
     | Blocks b ->
       (* deliberately NOT memoized through [set_of_node]: this entry
          point also decodes delta payloads, whose ints are raw blob
          content, not an extent — caching them as the node's resolved
          set would poison later chain resolutions *)
       Extent_codec.decode_all b)
  | None -> repr_ints (repr_of_blob t.enc (load_blob ?cost t h) h.n_ints)

(* the LRU node for [h], only if it already carries a resolved set *)
let cached_resolved t h =
  match t.cache with
  | None -> None
  | Some _ when h.n_bytes = 0 -> None
  | Some c ->
    (match Hashtbl.find_opt c.tbl (cache_key t h) with
     | Some ({ set = Some s; _ } as node) -> Some (c, node, s)
     | _ -> None)

let apply_delta base ints =
  if Array.length ints = 0 then base
  else begin
    let nr = ints.(0) in
    if nr < 0 || nr > Array.length ints - 1 then
      invalid_arg "Extent_store.load: malformed delta blob";
    let removed = Edge_set.of_packed_array (Array.sub ints 1 nr) in
    let added =
      Edge_set.of_packed_array (Array.sub ints (1 + nr) (Array.length ints - 1 - nr))
    in
    Edge_set.union (Edge_set.diff base removed) added
  end

let load ?cost t h =
  match cached_resolved t h with
  | Some (c, node, s) ->
    charge_hit cost h;
    lru_touch c node;
    s
  | None ->
    (* Resolve the delta chain from the deepest link that still has a
       resolved set cached (or the base extent), applying each delta on
       the way back up. Only the base and the handle actually requested
       memoize their resolved sets — intermediate links keep just their
       raw delta ints. A chain of L deltas therefore shares ONE resolved
       base entry instead of retaining L near-identical resolved copies,
       and the flush path that extends a chain by one link costs one blob
       decode plus one delta application, not a re-resolution per link. *)
    let rec resolve link =
      match link.base with
      | None ->
        (match load_node ?cost t link with
         | Some node -> set_of_node node
         | None ->
           Edge_set.of_packed_array
             (repr_ints (repr_of_blob t.enc (load_blob ?cost t link) link.n_ints)))
      | Some b ->
        let base =
          match cached_resolved t b with
          | Some (c, node, s) ->
            charge_hit cost b;
            lru_touch c node;
            s
          | None -> resolve b
        in
        let ints = load_ints ?cost t link in
        apply_delta base ints
    in
    let s = resolve h in
    (match t.cache with
     | Some c when h.n_bytes > 0 ->
       (match Hashtbl.find_opt c.tbl (cache_key t h) with
        | Some node -> node.set <- Some s
        | None -> ())
     | _ -> ());
    s

let cardinal h = h.n_ints
let stored_bytes h = h.n_bytes

(* --- block views: decode-on-gallop kernels --- *)

let bits = 31
let cmask = (1 lsl bits) - 1

type view = {
  vstore : t;
  vhandle : handle;
  vblocks : Extent_codec.t;
}

let view_store v = v.vstore
let view_handle v = v.vhandle
let view_cardinal v = Extent_codec.n_edges v.vblocks

let load_view ?cost t h =
  match t.enc with
  | `Raw | `Delta_varint -> None
  | `Block ->
    (match h.base with
     | Some _ -> None  (* delta chains resolve through [load] *)
     | None ->
       if h.n_bytes = 0 then None
       else begin
         (* page/byte I/O is charged as usual, but edges are not: the
            view kernels charge [extent_edges] for decoded blocks only *)
         match load_node ?cost ~charge_edges:false t h with
         | Some { repr = Blocks b; _ } -> Some { vstore = t; vhandle = h; vblocks = b }
         | Some { repr = Flat _; _ } -> None
         | None ->
           (match
              repr_of_blob t.enc (load_blob ?cost ~charge_edges:false t h) h.n_ints
            with
            | Blocks b -> Some { vstore = t; vhandle = h; vblocks = b }
            | Flat _ -> None)
       end)

let note_blocks ?cost t ~skipped ~decoded ~edges =
  t.skipped_blocks <- t.skipped_blocks + skipped;
  t.decoded_blocks <- t.decoded_blocks + decoded;
  match cost with
  | Some c ->
    c.Cost.blocks_skipped <- c.Cost.blocks_skipped + skipped;
    c.Cost.blocks_decoded <- c.Cost.blocks_decoded + decoded;
    c.Cost.extent_edges <- c.Cost.extent_edges + edges
  | None -> ()

let total_blocks_skipped t = t.skipped_blocks
let total_blocks_decoded t = t.decoded_blocks

let compression_stats t = (8 * t.appended_ints, t.appended_bytes)

(* Same contract as [Edge_set.semijoin_endpoints extent sorted_parents],
   evaluated without materializing the extent: the frontier cursor
   gallops forward block by block; a block whose header parent range
   falls outside the remaining frontier is never decoded. The cursor is
   global across blocks (both sides ascend) but each decoded block merges
   from a LOCAL copy — one parent's run can span a block boundary, so the
   global cursor must not advance past a parent until its last block. *)
let view_semijoin_endpoints ?cost v (sorted_parents : int array) =
  let b = v.vblocks and t = v.vstore in
  let np = Array.length sorted_parents in
  let nb = Extent_codec.n_blocks b in
  if np = 0 || Extent_codec.n_edges b = 0 then [||]
  else if np >= nb then
    (* dense frontier: with one probe per block on average the header
       test rejects almost nothing, and galloping would re-decode most of
       the extent on every call. The materialized set amortizes that
       decode across calls through the LRU, exactly like the pre-block
       representation — so skipping stays a strict win, never a tax. *)
    Edge_set.semijoin_endpoints (load ?cost t v.vhandle) sorted_parents
  else begin
    let out = Vec.create ~capacity:64 () in
    let scratch = t.scratch in
    let fpos = ref 0 and skipped = ref 0 and decoded = ref 0 and edges = ref 0 in
    (try
       for bi = 0 to nb - 1 do
         let plo = Extent_codec.min_parent b bi and phi = Extent_codec.max_parent b bi in
         fpos := Int_sorted.gallop_lower_bound sorted_parents !fpos np plo;
         if !fpos >= np then begin
           (* frontier exhausted: every later block is out of range too *)
           skipped := !skipped + (nb - bi);
           raise Exit
         end;
         if sorted_parents.(!fpos) > phi then incr skipped
         else begin
           let count = Extent_codec.decode_block b bi scratch in
           incr decoded;
           edges := !edges + count;
           let i = ref 0 and j = ref !fpos in
           while !i < count && !j < np do
             let pt = scratch.(!i) lsr bits and p = sorted_parents.(!j) in
             if pt < p then
               i := Int_sorted.gallop_lower_bound scratch !i count (p lsl bits)
             else if pt > p then
               j := Int_sorted.gallop_lower_bound sorted_parents !j np pt
             else begin
               Vec.push out (scratch.(!i) land cmask);
               incr i
             end
           done
         end
       done
     with Exit -> ());
    note_blocks ?cost t ~skipped:!skipped ~decoded:!decoded ~edges:!edges;
    Int_sorted.of_unsorted (Vec.to_array out)
  end

(* [Edge_set.endpoints] without retaining the decoded extent: streams
   every block through the scratch buffer. No skipping is possible — all
   children are wanted — but the resident representation stays
   compressed. *)
let view_endpoints ?cost v =
  let b = v.vblocks and t = v.vstore in
  let n = Extent_codec.n_edges b in
  let nb = Extent_codec.n_blocks b in
  let out = Array.make n 0 in
  let scratch = t.scratch in
  let k = ref 0 in
  for bi = 0 to nb - 1 do
    let count = Extent_codec.decode_block b bi scratch in
    for i = 0 to count - 1 do
      out.(!k) <- scratch.(i) land cmask;
      incr k
    done
  done;
  note_blocks ?cost t ~skipped:0 ~decoded:nb ~edges:n;
  Int_sorted.of_unsorted out

(* [Edge_set.semijoin_children] with header-driven skipping: a block is
   decoded only if the sorted probe set intersects its [min_child,
   max_child] range. Kept edges are a subsequence of the (sorted) extent,
   so the result needs no re-sort. *)
let view_semijoin_children ?cost v (sorted_children : int array) =
  let b = v.vblocks and t = v.vstore in
  let nb = Extent_codec.n_blocks b in
  if Array.length sorted_children = 0 || Extent_codec.n_edges b = 0 then begin
    note_blocks ?cost t ~skipped:nb ~decoded:0 ~edges:0;
    Edge_set.empty
  end
  else if Array.length sorted_children >= nb then
    (* same density cutoff as [view_semijoin_endpoints] *)
    Edge_set.semijoin_children (load ?cost t v.vhandle) sorted_children
  else begin
    let out = Vec.create ~capacity:64 () in
    let scratch = t.scratch in
    let skipped = ref 0 and decoded = ref 0 and edges = ref 0 in
    for bi = 0 to nb - 1 do
      if
        not
          (Int_sorted.overlaps_range sorted_children ~pos:0
             ~lo:(Extent_codec.min_child b bi) ~hi:(Extent_codec.max_child b bi))
      then incr skipped
      else begin
        let count = Extent_codec.decode_block b bi scratch in
        incr decoded;
        edges := !edges + count;
        for i = 0 to count - 1 do
          let e = scratch.(i) in
          if Int_sorted.mem sorted_children (e land cmask) then Vec.push out e
        done
      end
    done;
    note_blocks ?cost t ~skipped:!skipped ~decoded:!decoded ~edges:!edges;
    Edge_set.unsafe_of_sorted (Vec.to_array out)
  end
