type codec =
  [ `Raw
  | `Delta_varint
  ]

type handle = {
  first_page : Pager.pid;
  first_off : int;
  n_bytes : int;
  n_ints : int;
  base : handle option;
      (* [Some h]: this blob is a delta — [n_removed], then the removed
         edges, then the added ones — over the extent named by [h];
         [None]: a plain full extent *)
}

(* decoded-extent LRU: an intrusive doubly-linked list threaded through a
   hash table, keyed by the handle's start position (unique per extent).
   A hit returns the decoded array without touching the buffer pool or the
   varint decoder. *)
type cache_node = {
  key : int;
  ints : int array;
  mutable set : Repro_graph.Edge_set.t option;  (* validated view, built lazily *)
  mutable prev : cache_node;
  mutable next : cache_node;
}

type cache = {
  tbl : (int, cache_node) Hashtbl.t;
  mutable head : cache_node option;  (* most recent; the list is circular *)
  mutable cached_ints : int;
  max_entries : int;
  max_ints : int;
}

type t = {
  pool : Buffer_pool.t;
  enc : codec;
  cache : cache option;
  mutable cur_page : Pager.pid;
  mutable cur_off : int;
  cur_buf : bytes;
}

let create ?(codec = `Raw) ?(cache_entries = 1024) ?(cache_ints = 4_000_000) pool =
  let pager = Buffer_pool.pager pool in
  let pid = Pager.alloc pager in
  let cache =
    if cache_entries <= 0 then None
    else
      Some
        { tbl = Hashtbl.create (2 * cache_entries);
          head = None;
          cached_ints = 0;
          max_entries = cache_entries;
          max_ints = cache_ints
        }
  in
  { pool;
    enc = codec;
    cache;
    cur_page = pid;
    cur_off = 0;
    cur_buf = Bytes.make (Pager.page_size pager) '\000'
  }

let codec t = t.enc
let pool t = t.pool

let handle_fields h =
  if Option.is_some h.base then
    invalid_arg "Extent_store.handle_fields: delta handles are not persistable";
  (h.first_page, h.first_off, h.n_bytes, h.n_ints)

let handle_of_fields ~first_page ~first_off ~n_bytes ~n_ints =
  if first_page < 0 || first_off < 0 || n_bytes < 0 || n_ints < 0 then
    invalid_arg "Extent_store.handle_of_fields: negative field";
  { first_page; first_off; n_bytes; n_ints; base = None }

let rec chain_length h = match h.base with None -> 0 | Some b -> 1 + chain_length b

(* --- LRU primitives --- *)

let lru_unlink c node =
  if node.next == node then c.head <- None
  else begin
    node.prev.next <- node.next;
    node.next.prev <- node.prev;
    (match c.head with Some h when h == node -> c.head <- Some node.next | _ -> ())
  end

let lru_push_front c node =
  (match c.head with
   | None ->
     node.prev <- node;
     node.next <- node
   | Some h ->
     node.prev <- h.prev;
     node.next <- h;
     h.prev.next <- node;
     h.prev <- node);
  c.head <- Some node

let lru_touch c node =
  match c.head with
  | Some h when h == node -> ()
  | _ ->
    lru_unlink c node;
    lru_push_front c node

let lru_evict_tail c =
  match c.head with
  | None -> ()
  | Some h ->
    let tail = h.prev in
    lru_unlink c tail;
    Hashtbl.remove c.tbl tail.key;
    c.cached_ints <- c.cached_ints - Array.length tail.ints

let lru_insert c key ints =
  let rec node = { key; ints; set = None; prev = node; next = node } in
  Hashtbl.replace c.tbl key node;
  c.cached_ints <- c.cached_ints + Array.length ints;
  lru_push_front c node;
  while Hashtbl.length c.tbl > c.max_entries || c.cached_ints > c.max_ints do
    lru_evict_tail c
  done;
  node

(* --- encoding --- *)

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (- (v land 1))

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let encode enc ints =
  match enc with
  | `Raw ->
    let buf = Bytes.create (8 * Array.length ints) in
    Array.iteri (fun i v -> Codec.set_i64 buf (i * 8) v) ints;
    Bytes.unsafe_to_string buf
  | `Delta_varint ->
    let buf = Buffer.create (Array.length ints * 2) in
    let prev = ref 0 in
    Array.iter
      (fun v ->
        add_varint buf (zigzag (v - !prev));
        prev := v)
      ints;
    Buffer.contents buf

let decode enc data n_ints =
  match enc with
  | `Raw ->
    Array.init n_ints (fun i -> Codec.get_i64 (Bytes.unsafe_of_string data) (i * 8))
  | `Delta_varint ->
    let out = Array.make n_ints 0 in
    let pos = ref 0 in
    let prev = ref 0 in
    for i = 0 to n_ints - 1 do
      let v = ref 0 and shift = ref 0 and continue = ref true in
      while !continue do
        let byte = Char.code data.[!pos] in
        incr pos;
        v := !v lor ((byte land 0x7F) lsl !shift);
        shift := !shift + 7;
        if byte land 0x80 = 0 then continue := false
      done;
      prev := !prev + unzigzag !v;
      out.(i) <- !prev
    done;
    out

(* --- page-spanning byte blobs --- *)

let flush_current t = Buffer_pool.write t.pool t.cur_page t.cur_buf

let next_page t =
  flush_current t;
  let pager = Buffer_pool.pager t.pool in
  t.cur_page <- Pager.alloc pager;
  t.cur_off <- 0;
  Bytes.fill t.cur_buf 0 (Bytes.length t.cur_buf) '\000'

(* Like [next_page], but without re-writing the tail page: every append
   ends with [flush_current], so between appends the disk already holds
   [cur_buf]. Skipping the redundant write matters under fault injection —
   a committed blob's tail page is never touched again, so a fault on a
   later append cannot corrupt earlier data. *)
let start_fresh_page t =
  let pager = Buffer_pool.pager t.pool in
  t.cur_page <- Pager.alloc pager;
  t.cur_off <- 0;
  Bytes.fill t.cur_buf 0 (Bytes.length t.cur_buf) '\000'

let append_blob t data ~n_ints =
  let pager = Buffer_pool.pager t.pool in
  let page_size = Pager.page_size pager in
  (* A blob occupies consecutive pids ([load] walks [pid; pid+1; ...]).
     Within one append, allocations are consecutive; but if another store
     allocated pages since our last write, restart on a fresh tail page. *)
  if t.cur_page <> Pager.n_pages pager - 1 then start_fresh_page t;
  if t.cur_off >= page_size then start_fresh_page t;
  let handle =
    { first_page = t.cur_page;
      first_off = t.cur_off;
      n_bytes = String.length data;
      n_ints;
      base = None
    }
  in
  let remaining = ref (String.length data) in
  let src = ref 0 in
  while !remaining > 0 do
    if t.cur_off >= page_size then next_page t;
    let chunk = Int.min !remaining (page_size - t.cur_off) in
    Bytes.blit_string data !src t.cur_buf t.cur_off chunk;
    t.cur_off <- t.cur_off + chunk;
    src := !src + chunk;
    remaining := !remaining - chunk
  done;
  flush_current t;
  handle

let pages_spanned t h =
  if h.n_bytes = 0 then 0
  else begin
    let page_size = Pager.page_size (Buffer_pool.pager t.pool) in
    ((h.first_off + h.n_bytes + page_size - 1) / page_size)
  end

let load_blob ?cost t h =
  let page_size = Pager.page_size (Buffer_pool.pager t.pool) in
  let out = Bytes.create h.n_bytes in
  let pages = pages_spanned t h in
  let copied = ref 0 in
  for i = 0 to pages - 1 do
    let buf = Buffer_pool.get t.pool (h.first_page + i) in
    let start = if i = 0 then h.first_off else 0 in
    let chunk = Int.min (h.n_bytes - !copied) (page_size - start) in
    Bytes.blit buf start out !copied chunk;
    copied := !copied + chunk
  done;
  (match cost with
   | Some c ->
     c.Cost.extent_pages <- c.Cost.extent_pages + pages;
     c.Cost.extent_edges <- c.Cost.extent_edges + h.n_ints
   | None -> ());
  Bytes.unsafe_to_string out

(* --- public API --- *)

let append_ints t ints = append_blob t (encode t.enc ints) ~n_ints:(Array.length ints)

let append t (set : Repro_graph.Edge_set.t) = append_ints t (set :> int array)

let append_delta t ~base ~(removed : Repro_graph.Edge_set.t) ~(added : Repro_graph.Edge_set.t) =
  let r = (removed :> int array) and a = (added :> int array) in
  let ints = Array.concat [ [| Array.length r |]; r; a ] in
  let h = append_blob t (encode t.enc ints) ~n_ints:(Array.length ints) in
  { h with base = Some base }

let cache_key t h =
  (h.first_page * Pager.page_size (Buffer_pool.pager t.pool)) + h.first_off

let charge_hit cost h =
  match cost with
  | Some c ->
    c.Cost.extent_cache_hits <- c.Cost.extent_cache_hits + 1;
    (* the edges still stream through the caller; only page I/O is saved *)
    c.Cost.extent_edges <- c.Cost.extent_edges + h.n_ints
  | None -> ()

let charge_miss cost =
  match cost with
  | Some c -> c.Cost.extent_cache_misses <- c.Cost.extent_cache_misses + 1
  | None -> ()

let load_node ?cost t h =
  match t.cache with
  | None -> None
  (* an empty blob does not advance the tail, so it would share its start
     position — the cache key — with the next extent; decoding it is free
     anyway, so bypass *)
  | Some _ when h.n_bytes = 0 -> None
  | Some c ->
    let key = cache_key t h in
    (match Hashtbl.find_opt c.tbl key with
     | Some node ->
       charge_hit cost h;
       lru_touch c node;
       Some node
     | None ->
       charge_miss cost;
       let ints = decode t.enc (load_blob ?cost t h) h.n_ints in
       Some (lru_insert c key ints))

let load_ints ?cost t h =
  match load_node ?cost t h with
  | Some node -> node.ints
  | None -> decode t.enc (load_blob ?cost t h) h.n_ints

let rec load ?cost t h =
  (* a delta blob resolves against its base chain; the decoded-extent LRU
     caches the RESOLVED set per blob, so a warm chain costs no extra I/O *)
  let resolve ints =
    match h.base with
    | None -> Repro_graph.Edge_set.of_packed_array ints
    | Some b ->
      let base = load ?cost t b in
      if Array.length ints = 0 then base
      else begin
        let nr = ints.(0) in
        if nr < 0 || nr > Array.length ints - 1 then
          invalid_arg "Extent_store.load: malformed delta blob";
        let removed = Repro_graph.Edge_set.of_packed_array (Array.sub ints 1 nr) in
        let added =
          Repro_graph.Edge_set.of_packed_array
            (Array.sub ints (1 + nr) (Array.length ints - 1 - nr))
        in
        Repro_graph.Edge_set.union (Repro_graph.Edge_set.diff base removed) added
      end
  in
  match load_node ?cost t h with
  | None -> resolve (decode t.enc (load_blob ?cost t h) h.n_ints)
  | Some node ->
    (match node.set with
     | Some s -> s
     | None ->
       (* validate/resolve once; hits after this are allocation- and
          scan-free *)
       let s = resolve node.ints in
       node.set <- Some s;
       s)

let cardinal h = h.n_ints
let stored_bytes h = h.n_bytes
