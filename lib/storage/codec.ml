let set_i64 buf off v = Bytes.set_int64_le buf off (Int64.of_int v)
let get_i64 buf off = Int64.to_int (Bytes.get_int64_le buf off)

let set_u16 buf off v =
  if v < 0 || v > 0xFFFF then invalid_arg (Printf.sprintf "Codec.set_u16: %d out of range" v);
  Bytes.set_uint16_le buf off v

let get_u16 buf off = Bytes.get_uint16_le buf off

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) *)

(* Built eagerly at module initialization (256 entries, negligible cost)
   rather than under [lazy]: forcing a lazy from two domains races, and an
   init-time write-once table is safe to read from any domain. *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)
[@@apex.guarded "readonly"]

let crc_step table crc byte = table.((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let crc32 ?(pos = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Codec.crc32: range out of bounds";
  let table = crc_table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := crc_step table !crc (Char.code (Bytes.get buf i))
  done;
  !crc lxor 0xFFFFFFFF

let crc32_ints a =
  let table = crc_table in
  let crc = ref 0xFFFFFFFF in
  Array.iter
    (fun v ->
      for k = 0 to 7 do
        crc := crc_step table !crc ((v asr (8 * k)) land 0xFF)
      done)
    a;
  !crc lxor 0xFFFFFFFF
