type t = {
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable read_retries : int;
  mutable refresh_aborts : int;
}

let create () =
  { disk_reads = 0;
    disk_writes = 0;
    cache_hits = 0;
    cache_misses = 0;
    read_retries = 0;
    refresh_aborts = 0
  }

let reset t =
  t.disk_reads <- 0;
  t.disk_writes <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.read_retries <- 0;
  t.refresh_aborts <- 0

let copy t =
  { disk_reads = t.disk_reads;
    disk_writes = t.disk_writes;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    read_retries = t.read_retries;
    refresh_aborts = t.refresh_aborts
  }

let total_page_requests t = t.cache_hits + t.cache_misses

(* complete destructuring on purpose — see Cost.to_fields *)
let to_fields
    { disk_reads; disk_writes; cache_hits; cache_misses; read_retries; refresh_aborts } =
  [ ("disk_reads", disk_reads);
    ("disk_writes", disk_writes);
    ("cache_hits", cache_hits);
    ("cache_misses", cache_misses);
    ("read_retries", read_retries);
    ("refresh_aborts", refresh_aborts)
  ]

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d hits=%d misses=%d retries=%d aborts=%d" t.disk_reads
    t.disk_writes t.cache_hits t.cache_misses t.read_retries t.refresh_aborts
