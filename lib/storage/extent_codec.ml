(* Block-compressed extents: the sorted packed-edge array is cut into
   fixed-size blocks, each delta-encoded as varint gaps, with a per-block
   header (packed first/last edge, child range, payload length) kept
   separate from the payloads. The headers are what make the format a
   *queryable* representation rather than just a compressed one: a
   semijoin probes the header table, skips every block whose parent range
   misses the frontier, and decodes only the blocks that can contribute —
   decode-on-gallop. A blob-level CRC-32 rejects torn or bit-flipped
   blobs before any length field is trusted.

   Blob layout (all multi-byte values little-endian / LEB128 varints):

     [crc32 : 4 bytes]            over everything that follows
     [n_edges : varint]
     per block b (128 edges each, the last one partial):
       [first_b - last_{b-1} : varint]   (b = 0: first_0 itself)
       [last_b - first_b : varint]
       [min_child_b : varint]
       [max_child_b - min_child_b : varint]
       [payload_len_b : varint]
     per block b, per edge after the first (it comes from the header):
       [du : varint]               parent_i - parent_{i-1}
       du = 0: [dv : varint]       child_i - child_{i-1} (>= 1)
       du > 0: [v : varint]        child_i, absolute

   Splitting the packed edge beats delta-coding it whole: a gap that
   crosses a parent boundary is >= 2^31 and costs five varint bytes,
   whereas [du] is almost always one byte and a child id two or three.
   Edges are strictly increasing, so [du] >= 0, [dv] >= 1 within a
   parent, and cross-block header deltas are >= 1 — all checked at parse
   time. The parent range of a block needs no extra fields: packed order
   is (parent << 31) | child, so [first_b lsr 31, last_b lsr 31]
   brackets every parent in the block. *)

(* Packing mirrors Repro_graph.Edge_set: 31 bits per component. *)
let bits = 31
let cmask = (1 lsl bits) - 1

let block_edges = 128

type t = {
  n_edges : int;
  firsts : int array;  (* packed first edge per block *)
  lasts : int array;  (* packed last edge per block *)
  min_children : int array;
  max_children : int array;
  offsets : int array;  (* payload byte offset per block, within [payload] *)
  lens : int array;  (* payload byte length per block *)
  payload : string;  (* shared backing string *)
  payload_base : int;  (* offset of block 0's payload within [payload] *)
}

let n_edges t = t.n_edges
let n_blocks t = Array.length t.firsts

let block_count t b =
  if b = n_blocks t - 1 then t.n_edges - (b * block_edges) else block_edges

let min_parent t b = t.firsts.(b) lsr bits
let max_parent t b = t.lasts.(b) lsr bits
let min_child t b = t.min_children.(b)
let max_child t b = t.max_children.(b)

(* --- encoding --- *)

let add_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = !v land 0x7F in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let encode (ints : int array) =
  let n = Array.length ints in
  if n > 0 && ints.(0) < 0 then invalid_arg "Extent_codec.encode: negative edge";
  for i = 1 to n - 1 do
    if ints.(i - 1) >= ints.(i) then
      invalid_arg "Extent_codec.encode: edges must be strictly increasing"
  done;
  let nb = (n + block_edges - 1) / block_edges in
  let headers = Buffer.create (16 * nb) in
  let payloads = Buffer.create (2 * n) in
  add_varint headers n;
  let prev_last = ref 0 in
  for b = 0 to nb - 1 do
    let lo = b * block_edges in
    let hi = Int.min n (lo + block_edges) - 1 in
    let first = ints.(lo) and last = ints.(hi) in
    let min_c = ref (first land cmask) and max_c = ref (first land cmask) in
    let payload_start = Buffer.length payloads in
    for i = lo + 1 to hi do
      let du = (ints.(i) lsr bits) - (ints.(i - 1) lsr bits) in
      let c = ints.(i) land cmask in
      add_varint payloads du;
      if du = 0 then add_varint payloads (c - (ints.(i - 1) land cmask))
      else add_varint payloads c;
      if c < !min_c then min_c := c;
      if c > !max_c then max_c := c
    done;
    add_varint headers (first - !prev_last);
    add_varint headers (last - first);
    add_varint headers !min_c;
    add_varint headers (!max_c - !min_c);
    add_varint headers (Buffer.length payloads - payload_start);
    prev_last := last
  done;
  let body = Buffer.create (4 + Buffer.length headers + Buffer.length payloads) in
  Buffer.add_string body "\000\000\000\000";
  Buffer.add_buffer body headers;
  Buffer.add_buffer body payloads;
  let blob = Buffer.to_bytes body in
  let crc = Codec.crc32 ~pos:4 ~len:(Bytes.length blob - 4) blob in
  Bytes.set blob 0 (Char.chr (crc land 0xFF));
  Bytes.set blob 1 (Char.chr ((crc lsr 8) land 0xFF));
  Bytes.set blob 2 (Char.chr ((crc lsr 16) land 0xFF));
  Bytes.set blob 3 (Char.chr ((crc lsr 24) land 0xFF));
  Bytes.unsafe_to_string blob

(* --- parsing (headers only; payloads decode on demand) --- *)

let get_varint data pos limit =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= limit || !shift > 62 then
      invalid_arg "Extent_codec: truncated or oversized varint";
    let byte = Char.code data.[!pos] in
    incr pos;
    v := !v lor ((byte land 0x7F) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  !v

let of_encoded ?(pos = 0) data =
  let limit = String.length data in
  if limit - pos < 4 then invalid_arg "Extent_codec.of_encoded: truncated blob";
  let stored_crc =
    Char.code data.[pos]
    lor (Char.code data.[pos + 1] lsl 8)
    lor (Char.code data.[pos + 2] lsl 16)
    lor (Char.code data.[pos + 3] lsl 24)
  in
  let crc =
    Codec.crc32 ~pos:(pos + 4) ~len:(limit - pos - 4) (Bytes.unsafe_of_string data)
  in
  if crc <> stored_crc then invalid_arg "Extent_codec.of_encoded: checksum mismatch";
  let p = ref (pos + 4) in
  let n = get_varint data p limit in
  if n < 0 || n > limit * 8 then invalid_arg "Extent_codec.of_encoded: bad edge count";
  let nb = (n + block_edges - 1) / block_edges in
  let firsts = Array.make nb 0
  and lasts = Array.make nb 0
  and min_children = Array.make nb 0
  and max_children = Array.make nb 0
  and offsets = Array.make nb 0
  and lens = Array.make nb 0 in
  let prev_last = ref 0 in
  let payload_total = ref 0 in
  for b = 0 to nb - 1 do
    let dfirst = get_varint data p limit in
    if b > 0 && dfirst < 1 then invalid_arg "Extent_codec.of_encoded: blocks out of order";
    let first = !prev_last + dfirst in
    let span = get_varint data p limit in
    let last = first + span in
    if first < 0 || last < first then invalid_arg "Extent_codec.of_encoded: bad block range";
    let min_c = get_varint data p limit in
    let max_c = min_c + get_varint data p limit in
    if min_c > cmask || max_c > cmask then
      invalid_arg "Extent_codec.of_encoded: child out of range";
    let len = get_varint data p limit in
    firsts.(b) <- first;
    lasts.(b) <- last;
    min_children.(b) <- min_c;
    max_children.(b) <- max_c;
    offsets.(b) <- !payload_total;
    lens.(b) <- len;
    payload_total := !payload_total + len;
    prev_last := last
  done;
  if limit - !p <> !payload_total then
    invalid_arg "Extent_codec.of_encoded: payload size mismatch";
  { n_edges = n;
    firsts;
    lasts;
    min_children;
    max_children;
    offsets;
    lens;
    payload = data;
    payload_base = !p
  }

let decode_block t b out =
  let count = block_count t b in
  if Array.length out < count then invalid_arg "Extent_codec.decode_block: scratch too small";
  let start = t.payload_base + t.offsets.(b) in
  let limit = start + t.lens.(b) in
  let p = ref start in
  let prev = ref t.firsts.(b) in
  out.(0) <- !prev;
  for i = 1 to count - 1 do
    let du = get_varint t.payload p limit in
    let u = (!prev lsr bits) + du in
    if u > cmask then invalid_arg "Extent_codec.decode_block: parent out of range";
    let v =
      if du = 0 then begin
        let dv = get_varint t.payload p limit in
        if dv < 1 then invalid_arg "Extent_codec.decode_block: non-increasing child";
        (!prev land cmask) + dv
      end
      else get_varint t.payload p limit
    in
    if v > cmask then invalid_arg "Extent_codec.decode_block: child out of range";
    (* du = 0 forces dv >= 1 and du > 0 raises the parent, so the
       reconstructed edge is strictly above [prev] either way *)
    prev := (u lsl bits) lor v;
    out.(i) <- !prev
  done;
  if !p <> limit then invalid_arg "Extent_codec.decode_block: trailing payload bytes";
  if !prev <> t.lasts.(b) then invalid_arg "Extent_codec.decode_block: last-edge mismatch";
  count

(* The only full-materialization entry point. apex_lint rule L7 forbids
   calling it from lib/apex hot-path modules: query kernels must go
   through the per-block view API so header skip tests keep paying off.
   Storage-internal callers (cache fill, delta-chain resolution,
   compaction) are the intended users. *)
let decode_all t =
  let out = Array.make t.n_edges 0 in
  let nb = n_blocks t in
  let scratch = Array.make block_edges 0 in
  for b = 0 to nb - 1 do
    let count = decode_block t b scratch in
    Array.blit scratch 0 out (b * block_edges) count
  done;
  for i = 1 to t.n_edges - 1 do
    if out.(i - 1) >= out.(i) then invalid_arg "Extent_codec.decode_all: blocks overlap"
  done;
  out
