(** Disk-resident storage for index extents.

    Extents (edge sets, {!Repro_graph.Edge_set.t}) are serialized as a
    stream of integers appended sequentially across pages. Loading an
    extent reads every page it touches through the buffer pool and charges
    [extent_pages]/[extent_bytes]/[extent_edges] to the supplied
    {!Cost.t}, which is how "gather the extent" acquires its I/O cost in
    the benchmarks.

    Three on-page codecs:
    - [`Raw]: 8 bytes per integer;
    - [`Delta_varint]: zigzag-encoded deltas in LEB128 varints — sorted
      streams (every extent is strictly increasing) compress severalfold,
      shrinking the page counts queries pay for;
    - [`Block]: the {!Extent_codec} block-compressed form for sorted
      extents — gap varints in fixed-size blocks behind a CRC-checked
      per-block header table — which additionally supports querying
      {e without} full decode through the view API below. Unsorted blobs
      (delta payloads, persistence images) fall back to a tagged varint
      stream under the same codec.

    A decoded-extent LRU (on by default, see {!create}) sits above the
    buffer pool: repeated loads of the same extent — within one multi-way
    join and across queries — return the already-decoded array, skipping
    page reads and varint decoding. Under [`Block] the cached form is the
    parsed-but-compressed blob, so the resident footprint stays small.
    Hits charge [extent_cache_hits] (plus [extent_edges] for the
    streaming the caller still performs); misses charge
    [extent_cache_misses] on top of the usual page costs. *)

type t

type codec =
  [ `Raw
  | `Delta_varint
  | `Block
  ]

type handle
(** Location of one stored extent. *)

val create : ?codec:codec -> ?cache_entries:int -> ?cache_ints:int -> Buffer_pool.t -> t
(** Default codec [`Raw]. [cache_entries] (default 1024) bounds the
    decoded-extent LRU's entry count; [cache_ints] (default 4M, ~32 MB)
    bounds its total retained integers. [cache_entries <= 0] disables the
    cache entirely. *)

val codec : t -> codec

val pool : t -> Buffer_pool.t
(** The buffer pool this store reads and writes through. *)

val handle_fields : handle -> int * int * int * int
(** [(first_page, first_off, n_bytes, n_ints)] — the stable representation
    persisted in snapshot commit records. *)

val handle_of_fields :
  first_page:int -> first_off:int -> n_bytes:int -> n_ints:int -> handle
(** Inverse of {!handle_fields}. Fields are range-checked lazily: a handle
    naming pages the pager does not have fails at {!load} time.
    @raise Invalid_argument on negative fields. *)

val append : t -> Repro_graph.Edge_set.t -> handle
(** Serialize an extent at the current tail. Build-time writes are counted
    in the pager's {!Io_stats}. *)

val append_delta :
  t -> base:handle -> removed:Repro_graph.Edge_set.t -> added:Repro_graph.Edge_set.t -> handle
(** Serialize only a {e change} to the extent named by [base]: the blob
    holds the removed and added edges, so write I/O is proportional to the
    delta, not the extent. {!load} on the returned handle resolves the
    chain ([union (diff base removed) added]); the decoded-extent LRU
    caches the resolved set at the chain head and the base — intermediate
    links retain only their raw delta payloads — so a warm chain re-reads
    nothing and extending a chain by one link re-decodes nothing but the
    new blob. Delta handles are in-memory only — {!handle_fields} rejects
    them (snapshot commits re-encode full images). Keep chains short via
    {!chain_length}: a cold load pays one blob read per link. *)

val chain_length : handle -> int
(** Number of delta links under this handle (0 for a full extent). *)

val load : ?cost:Cost.t -> t -> handle -> Repro_graph.Edge_set.t
(** Read the extent back through the buffer pool, resolving any delta
    chain. *)

val cardinal : handle -> int
(** Number of integers, without I/O. *)

val pages_spanned : t -> handle -> int
(** Number of pages {!load} will touch. *)

val stored_bytes : handle -> int
(** Encoded size of the extent. *)

val append_ints : t -> int array -> handle
(** Store a raw int array (e.g. a DataGuide target set or a persistence
    image) with the same layout and accounting as {!append}. Values must be
    non-negative. *)

val load_ints : ?cost:Cost.t -> t -> handle -> int array
(** Counterpart of {!append_ints}. *)

(** {2 Block views — decode-on-gallop}

    Under the [`Block] codec, a stored full extent can be opened as a
    {!view}: the parsed header table plus still-compressed payloads. The
    [view_*] kernels evaluate the {!Repro_graph.Edge_set} semijoin
    operations directly on that form, skipping every block whose header
    range test proves it disjoint from the probe set and decoding the
    rest one block at a time into a per-store scratch buffer (no
    per-block allocation). They charge [blocks_skipped]/[blocks_decoded]
    and count [extent_edges] for decoded blocks only. *)

type view

val load_view : ?cost:Cost.t -> t -> handle -> view option
(** [Some] iff the store uses [`Block], the handle names a full
    (non-delta, non-empty) block-compressed extent. Page and byte I/O are
    charged as for {!load} on a miss; edges are charged by the kernels as
    blocks decode. *)

val view_store : view -> t

val view_handle : view -> handle
(** The handle the view was loaded from — [load view_store view_handle]
    materializes the same extent through the decoded-extent cache, which
    is how the semijoin kernels below serve dense frontiers (probe at
    least as long as the block count): header tests would reject almost
    nothing, so the cached materialized set beats re-decoding per call. *)

val view_cardinal : view -> int

val view_semijoin_endpoints : ?cost:Cost.t -> view -> int array -> int array
(** Same result as
    [Edge_set.semijoin_endpoints (load t h) sorted_parents]: the sorted
    distinct children of edges whose parent is in [sorted_parents]. The
    frontier cursor gallops forward across block headers. Adaptive: when
    the probe is at least as long as the block count (a dense frontier
    that header tests cannot prune), the kernel falls back to the cached
    materialized extent, so block compression never costs more than the
    flat representation did. *)

val view_endpoints : ?cost:Cost.t -> view -> int array
(** Same result as [Edge_set.endpoints (load t h)], streaming blocks
    through the scratch buffer instead of materializing the extent. *)

val view_semijoin_children : ?cost:Cost.t -> view -> int array -> Repro_graph.Edge_set.t
(** Same result as
    [Edge_set.semijoin_children (load t h) sorted_children], skipping
    blocks via the header child-range test, with the same dense-probe
    fallback as {!view_semijoin_endpoints}. *)

val total_blocks_skipped : t -> int
val total_blocks_decoded : t -> int
(** Lifetime block skip/decode counts across every view kernel call on
    this store (the trace layer diffs these around a kernel call). *)

val compression_stats : t -> int * int
(** [(logical_bytes, encoded_bytes)] appended over this store's lifetime,
    logical = 8 bytes per integer. Their ratio is the achieved
    compression factor. *)
