(** Disk-resident storage for index extents.

    Extents (edge sets, {!Repro_graph.Edge_set.t}) are serialized as a
    stream of integers appended sequentially across pages. Loading an
    extent reads every page it touches through the buffer pool and charges
    [extent_pages]/[extent_edges] to the supplied {!Cost.t}, which is how
    "gather the extent" acquires its I/O cost in the benchmarks.

    Two on-page codecs:
    - [`Raw]: 8 bytes per integer;
    - [`Delta_varint]: zigzag-encoded deltas in LEB128 varints — sorted
      streams (every extent is strictly increasing) compress severalfold,
      shrinking the page counts queries pay for. The ablation benchmark
      compares the two.

    A decoded-extent LRU (on by default, see {!create}) sits above the
    buffer pool: repeated loads of the same extent — within one multi-way
    join and across queries — return the already-decoded array, skipping
    page reads and varint decoding. Hits charge [extent_cache_hits] (plus
    [extent_edges] for the streaming the caller still performs); misses
    charge [extent_cache_misses] on top of the usual page costs. *)

type t

type codec =
  [ `Raw
  | `Delta_varint
  ]

type handle
(** Location of one stored extent. *)

val create : ?codec:codec -> ?cache_entries:int -> ?cache_ints:int -> Buffer_pool.t -> t
(** Default codec [`Raw]. [cache_entries] (default 1024) bounds the
    decoded-extent LRU's entry count; [cache_ints] (default 4M, ~32 MB)
    bounds its total retained integers. [cache_entries <= 0] disables the
    cache entirely. *)

val codec : t -> codec

val pool : t -> Buffer_pool.t
(** The buffer pool this store reads and writes through. *)

val handle_fields : handle -> int * int * int * int
(** [(first_page, first_off, n_bytes, n_ints)] — the stable representation
    persisted in snapshot commit records. *)

val handle_of_fields :
  first_page:int -> first_off:int -> n_bytes:int -> n_ints:int -> handle
(** Inverse of {!handle_fields}. Fields are range-checked lazily: a handle
    naming pages the pager does not have fails at {!load} time.
    @raise Invalid_argument on negative fields. *)

val append : t -> Repro_graph.Edge_set.t -> handle
(** Serialize an extent at the current tail. Build-time writes are counted
    in the pager's {!Io_stats}. *)

val append_delta :
  t -> base:handle -> removed:Repro_graph.Edge_set.t -> added:Repro_graph.Edge_set.t -> handle
(** Serialize only a {e change} to the extent named by [base]: the blob
    holds the removed and added edges, so write I/O is proportional to the
    delta, not the extent. {!load} on the returned handle resolves the
    chain ([union (diff base removed) added]); the decoded-extent LRU
    caches the resolved set, so a warm chain re-reads nothing. Delta
    handles are in-memory only — {!handle_fields} rejects them (snapshot
    commits re-encode full images). Keep chains short via {!chain_length}:
    a cold load pays one blob read per link. *)

val chain_length : handle -> int
(** Number of delta links under this handle (0 for a full extent). *)

val load : ?cost:Cost.t -> t -> handle -> Repro_graph.Edge_set.t
(** Read the extent back through the buffer pool, resolving any delta
    chain. *)

val cardinal : handle -> int
(** Number of integers, without I/O. *)

val pages_spanned : t -> handle -> int
(** Number of pages {!load} will touch. *)

val stored_bytes : handle -> int
(** Encoded size of the extent. *)

val append_ints : t -> int array -> handle
(** Store a raw int array (e.g. a DataGuide target set or a persistence
    image) with the same layout and accounting as {!append}. Values must be
    non-negative. *)

val load_ints : ?cost:Cost.t -> t -> handle -> int array
(** Counterpart of {!append_ints}. *)
