(** Simulated disk: an array of fixed-size pages with access counting.

    The "disk" is main memory, but every read and write is counted in
    {!Io_stats.t}, which is what the benchmark cost model consumes. Page
    contents are bytes; callers encode their records with {!Codec}.

    A {!Fault} policy may be attached ({!set_fault}), turning every
    allocation, read and write into an injectable fault site. While a
    policy is attached the pager also keeps a CRC-32 per page: reads are
    verified against it, transient corruption is healed by re-reading
    (counted in [Io_stats.read_retries]), and persistent corruption raises
    [Invalid_argument] after bounded retries. With no policy attached the
    hook is a single [match] on [None] — the hot path is unchanged. *)

type t

type pid = int
(** Page identifier, dense from 0. *)

val create : ?page_size:int -> unit -> t
(** [page_size] defaults to 8192 bytes, the block size used for the Index
    Fabric in the paper's experiments. *)

val page_size : t -> int
val n_pages : t -> int
val stats : t -> Io_stats.t

val set_fault : t -> Fault.t option -> unit
(** Attach or detach a fault-injection policy. Pages written while no
    policy is attached have no recorded checksum, so verification silently
    skips them after a later attach. *)

val fault : t -> Fault.t option

val alloc : t -> pid
(** Append a fresh zeroed page. Not counted as I/O (allocation happens at
    build time; builds report their own cost separately).
    @raise Fault.Injected when the attached policy delivers [Enospc]. *)

val read : t -> pid -> bytes
(** Copy of the page contents; counts one disk read.
    @raise Invalid_argument on an unknown pid, or when an attached fault
    policy's checksum verification keeps failing after bounded retries
    (persistent on-page corruption).
    @raise Fault.Injected never — read faults are transient and healed. *)

val write : t -> pid -> bytes -> unit
(** Replace the page contents; counts one disk write. The buffer must be
    exactly [page_size] long. @raise Invalid_argument otherwise.
    @raise Fault.Injected when the attached policy delivers [Torn_write]
    (a prefix of the buffer is persisted first — the crashed state). *)

val unsafe_borrow : t -> pid -> bytes
(** The live page buffer without copying or counting — for the buffer pool
    implementation, and for recovery code that must look at a page whose
    checksum is broken. Bypasses fault injection and verification. *)
