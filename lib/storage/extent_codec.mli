(** Block-compressed representation for sorted packed-edge extents.

    {!encode} splits a strictly increasing non-negative int array into
    fixed {!block_edges}-sized blocks, stores each block as varint gaps
    off its first element, and prefixes a header table — packed
    first/last edge and child min/max per block — plus a blob-level
    CRC-32. {!of_encoded} parses and validates headers {e only}; payloads
    stay encoded until {!decode_block} is asked for them, which is what
    lets join kernels skip whole blocks from the header ranges alone
    (decode-on-gallop, see {!Extent_store}'s view API).

    Every parse and decode validates against the bytes at hand: a
    truncated or bit-flipped blob raises [Invalid_argument] (the CRC
    catches corruption page checksums cannot, e.g. a torn multi-page
    blob), and decoded gaps must reproduce the header's last edge. *)

type t
(** A parsed blob: header table + still-encoded payloads. *)

val block_edges : int
(** Edges per block (the final block may hold fewer). *)

val encode : int array -> string
(** @raise Invalid_argument unless the array is strictly increasing and
    non-negative. *)

val of_encoded : ?pos:int -> string -> t
(** Parse a blob produced by {!encode}, starting at byte [pos]
    (default 0). @raise Invalid_argument on checksum mismatch or any
    malformed header. *)

val n_edges : t -> int
val n_blocks : t -> int

val block_count : t -> int -> int
(** Edges in block [b]. *)

val min_parent : t -> int -> int
val max_parent : t -> int -> int
(** Parent-nid range covered by block [b], from the packed header edges:
    a sorted parent frontier with no member in this closed range cannot
    match any edge of the block. *)

val min_child : t -> int -> int
val max_child : t -> int -> int
(** Child-nid range of block [b], for child-probe skip tests. *)

val decode_block : t -> int -> int array -> int
(** [decode_block t b scratch] decodes block [b] into [scratch] and
    returns its edge count ([<= block_edges]); callers reuse one scratch
    buffer so the decode path allocates nothing. @raise Invalid_argument
    on malformed payloads (non-increasing gap, length or last-edge
    mismatch). *)

val decode_all : t -> int array
(** Materialize the full extent. Restricted by apex_lint rule L7 to
    storage-internal and compaction/persist call sites — hot-path query
    code must use the block view kernels instead. *)
