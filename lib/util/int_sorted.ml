(* Parameters are annotated [int array] throughout: without the
   annotations the module generalizes to ['a array] and every comparison
   in these kernels compiles to the generic C comparator. *)

let of_unsorted (a : int array) =
  let a = Array.copy a in
  Array.sort Int.compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub out 0 !k
  end

let is_sorted_set (a : int array) =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

let lower_bound (a : int array) lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let gallop_lower_bound (a : int array) lo hi x =
  if lo >= hi || a.(lo) >= x then lo
  else begin
    (* double the probe span until it brackets x, then binary search the
       final span: O(log d) for a target d positions ahead *)
    let span = ref 1 in
    while lo + !span < hi && a.(lo + !span) < x do
      span := !span * 2
    done;
    lower_bound a (lo + (!span / 2) + 1) (Int.min (lo + !span) hi) x
  end

let mem a x =
  let i = lower_bound a 0 (Array.length a) x in
  i < Array.length a && a.(i) = x

(* Block-header skip test for decode-on-gallop kernels: does the sorted
   suffix a[pos..) contain an element in the closed range [lo, hi]?
   Binary search, no allocation — a false answer proves a compressed
   block whose key range is [lo, hi] has no match and can stay encoded. *)
let overlaps_range (a : int array) ~pos ~lo ~hi =
  let n = Array.length a in
  let i = lower_bound a pos n lo in
  i < n && a.(i) <= hi

let mem_batch a queries =
  let n = Array.length a in
  let pos = ref 0 in
  Array.map
    (fun x ->
      pos := gallop_lower_bound a !pos n x;
      !pos < n && a.(!pos) = x)
    queries

let merge_with ~keep_left_only ~keep_right_only ~keep_both (a : int array) (b : int array) =
  let na = Array.length a and nb = Array.length b in
  let out = Vec.create ~capacity:(na + nb) () in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      if keep_both then Vec.push out x;
      incr i;
      incr j
    end
    else if x < y then begin
      if keep_left_only then Vec.push out x;
      incr i
    end
    else begin
      if keep_right_only then Vec.push out y;
      incr j
    end
  done;
  if keep_left_only then
    while !i < na do
      Vec.push out a.(!i);
      incr i
    done;
  if keep_right_only then
    while !j < nb do
      Vec.push out b.(!j);
      incr j
    done;
  Vec.to_array out

let union a b =
  if Array.length a = 0 then Array.copy b
  else if Array.length b = 0 then Array.copy a
  else merge_with ~keep_left_only:true ~keep_right_only:true ~keep_both:true a b

let inter_linear a b = merge_with ~keep_left_only:false ~keep_right_only:false ~keep_both:true a b

(* walk the smaller set, galloping through the larger: O(ns log (nl/ns)) *)
let inter_gallop small large =
  let ns = Array.length small and nl = Array.length large in
  let out = Vec.create ~capacity:ns () in
  let pos = ref 0 in
  (try
     for i = 0 to ns - 1 do
       let x = small.(i) in
       pos := gallop_lower_bound large !pos nl x;
       if !pos >= nl then raise Exit;
       if large.(!pos) = x then Vec.push out x
     done
   with Exit -> ());
  Vec.to_array out

(* breakeven: galloping wins once one side is ~an order of magnitude
   smaller; below that the branch-predictable linear merge is faster *)
let gallop_ratio = 16

let inter a b =
  let na = Array.length a and nb = Array.length b in
  if na * gallop_ratio < nb then inter_gallop a b
  else if nb * gallop_ratio < na then inter_gallop b a
  else inter_linear a b

let diff a b = merge_with ~keep_left_only:true ~keep_right_only:false ~keep_both:false a b

let subset a b = Array.length (diff a b) = 0

let equal (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let i = ref 0 in
  while !i < n && a.(!i) = b.(!i) do
    incr i
  done;
  !i = n

let union_many_pairwise sets =
  let rec round = function
    | [] -> [||]
    | [ s ] -> s
    | sets ->
      let rec pair = function
        | a :: b :: rest -> union a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      round (pair sets)
  in
  round sets

(* k-way union on a binary min-heap of (head value, source): O(n log k)
   and no intermediate arrays, vs O(n log k) time but O(n) extra allocation
   per round for repeated pairing *)
let union_many sets =
  let sets = Array.of_list (List.filter (fun s -> Array.length s > 0) sets) in
  let k = Array.length sets in
  if k = 0 then [||]
  else if k = 1 then sets.(0)
  else begin
    let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 sets in
    let cursor = Array.make k 0 in
    (* heap of source indices ordered by their current head value *)
    let heap = Array.init k (fun i -> i) in
    let size = ref k in
    let head s = sets.(s).(cursor.(s)) in
    let swap i j =
      let t = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- t
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = if l < !size && head heap.(l) < head heap.(i) then l else i in
      let m = if r < !size && head heap.(r) < head heap.(m) then r else m in
      if m <> i then begin
        swap i m;
        sift_down m
      end
    in
    for i = (k / 2) - 1 downto 0 do
      sift_down i
    done;
    let out = Vec.create ~capacity:total () in
    let last = ref min_int in
    let first = ref true in
    while !size > 0 do
      let s = heap.(0) in
      let v = head s in
      if !first || v <> !last then begin
        Vec.push out v;
        last := v;
        first := false
      end;
      cursor.(s) <- cursor.(s) + 1;
      if cursor.(s) >= Array.length sets.(s) then begin
        decr size;
        heap.(0) <- heap.(!size);
        if !size > 0 then sift_down 0
      end
      else sift_down 0
    done;
    Vec.to_array out
  end
