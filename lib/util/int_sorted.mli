(** Sets of integers represented as strictly increasing arrays.

    Used for node-id result sets and packed edge sets: compact, cache
    friendly, and set operations are linear merges or — when operand sizes
    are skewed — galloping (doubling binary-search) intersections in the
    style of adaptive set-intersection algorithms from inverted-index
    engines. All functions expect (and produce) strictly increasing arrays;
    {!of_unsorted} establishes the invariant. *)

val of_unsorted : int array -> int array
(** Sort and remove duplicates (fresh array). *)

val is_sorted_set : int array -> bool
(** True when the array is strictly increasing. *)

val lower_bound : int array -> int -> int -> int -> int
(** [lower_bound a lo hi x] is the first index in [\[lo, hi)] whose element
    is [>= x] ([hi] when none is). Plain binary search. *)

val gallop_lower_bound : int array -> int -> int -> int -> int
(** Same result as {!lower_bound}, but probes at doubling distances from
    [lo] first — O(log d) when the answer is [d] positions past [lo], which
    makes ascending repeated searches adaptive. *)

val mem : int array -> int -> bool
(** Binary search. *)

val overlaps_range : int array -> pos:int -> lo:int -> hi:int -> bool
(** [overlaps_range a ~pos ~lo ~hi] — does the sorted suffix [a[pos..)]
    contain an element in the closed range [\[lo, hi\]]? The block-skip
    primitive of the decode-on-gallop kernels: a [false] answer proves a
    compressed block advertising that key range in its header cannot
    contribute and is never decoded. Allocation-free. *)

val mem_batch : int array -> int array -> bool array
(** [mem_batch a queries] answers membership in [a] for every element of
    the sorted array [queries], galloping forward from the previous hit
    position — O(|queries| log (|a|/|queries|)) on sorted batches. *)

val union : int array -> int array -> int array

val inter : int array -> int array -> int array
(** Adaptive: linear merge for comparable sizes, galloping the smaller set
    through the larger when sizes differ by more than ~16x. *)

val inter_linear : int array -> int array -> int array
(** The plain two-pointer linear merge (reference implementation; property
    tests check {!inter} against it). *)

val diff : int array -> int array -> int array
val subset : int array -> int array -> bool
val equal : int array -> int array -> bool

val union_many : int array list -> int array
(** Union of any number of sets via a k-way heap merge: O(n log k) with no
    per-round intermediate allocations. *)

val union_many_pairwise : int array list -> int array
(** Union by repeated pairwise merging (reference implementation for
    {!union_many}). *)
