type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 8) () = { data = [||]; len = -capacity }
(* A vector starts without a witness element, so [data] stays empty until the
   first push; the negative [len] remembers the requested capacity. *)

let length v = if v.len < 0 then 0 else v.len

let grow v x =
  let cap = if v.len < 0 then Int.max 8 (-v.len) else Int.max 8 (2 * Array.length v.data) in
  let data = Array.make cap x in
  Array.blit v.data 0 data 0 (length v);
  v.data <- data;
  v.len <- length v

let push v x =
  if v.len < 0 || v.len >= Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= length v then invalid_arg (Printf.sprintf "Vec: index %d out of bounds (length %d)" i (length v))

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let iter f v =
  for i = 0 to length v - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to length v - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_array v = Array.sub v.data 0 (length v)

let of_array a = { data = Array.copy a; len = Array.length a }

let clear v = if v.len > 0 then v.len <- 0
