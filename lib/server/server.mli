(** The concurrent query server: epoch-snapshot isolation over a
    self-tuning APEX.

    One writer domain owns a {!Repro_adaptive.Self_tuning} instance and
    the epoch registry; reader domains evaluate queries against published
    {!Epoch} deep copies, pinned through the registry. A publish is one
    atomic store, so refreshes and update batches land with zero reader
    downtime: queries in flight finish on the generation they pinned, new
    queries see the new one, and superseded epochs are freed once their
    pin counts drain.

    Thread contract: {!query}/{!query_pinned} may be called from any
    domain, concurrently; {!apply}, {!force_refresh}, {!drain_feedback},
    {!rollback} and {!retire} are writer-side (they serialize on an
    internal mutex, so a second writer blocks rather than corrupts, but
    the intended topology is a single writer). *)

type t

val create :
  ?log_capacity:int ->
  ?min_support:float ->
  ?refresh_every:int ->
  ?feedback_capacity:int ->
  ?pool:Repro_storage.Buffer_pool.t ->
  ?snapshot:Repro_apex.Apex_persist.Snapshot.t ->
  ?policy:Repro_adaptive.Policy.t ->
  ?slo:Repro_telemetry.Slo.objective list ->
  ?slo_subwindows:int ->
  ?watchdog:float ->
  ?incident_path:string ->
  ?flight_capacity:int ->
  Repro_graph.Data_graph.t ->
  t
(** Build APEX0 over the graph (through {!Repro_adaptive.Self_tuning.create},
    with the same durability semantics for [pool]/[snapshot]) and publish
    it as generation 1. [feedback_capacity] bounds the reader→writer query
    feedback buffer (default 4096; overflow drops, counted). With
    [policy], refreshes are decided by the cost-benefit policy: each
    reader query's measured extent/join work and latency travel through
    the feedback buffer and are attributed to the paths it used when the
    writer drains.

    Observability knobs: [slo] installs a {!Repro_telemetry.Slo} monitor
    (objectives named ["q1"]/["q2"]/["q3"] automatically receive the
    corresponding query-type latencies; the window rotates once per
    non-empty drain). [watchdog] arms the flight recorder's per-query
    latency watchdog at that many seconds. [incident_path] makes the
    writer auto-dump an incident file there whenever a drain saw a
    watchdog trip or an SLO breach. The flight recorder itself is always
    on ([flight_capacity] slots, default 1024). *)

(** {1 Reader side — any domain} *)

val query : t -> Repro_pathexpr.Query.t -> Repro_graph.Data_graph.nid array
(** Pin the current epoch, evaluate, unpin, and enqueue the query (with
    its Q2 rewrite paths and measured cost/latency signals) on the
    feedback buffer for the writer's next {!drain_feedback}. Results are
    identical to single-threaded evaluation against the pinned
    generation. *)

val query_pinned : t -> Repro_pathexpr.Query.t -> int * Repro_graph.Data_graph.nid array
(** {!query}, also returning the generation that served the query — the
    hook the differential harness uses to replay the same query against a
    single-threaded oracle pinned at the same generation. *)

(** {1 Writer side — single domain} *)

val apply : t -> Repro_update.Update.op list -> int
(** Apply one update batch through incremental maintenance
    ({!Repro_adaptive.Self_tuning.update}) and publish the result as a new
    epoch; returns the published generation. *)

val force_refresh : t -> int
(** Run frequent-path extraction + incremental update on the current log
    window and publish; returns the published generation. With a
    snapshot, a refresh aborted by a storage fault is rolled back inside
    {!Repro_adaptive.Self_tuning} and the rolled-back (older but
    consistent) state is republished under the fresh generation. *)

val drain_feedback : t -> int * int option
(** Move buffered reader queries into the self-tuning query log
    ([(drained, refreshed)]): when the drained window makes a refresh due,
    the refresh runs and publishes immediately and [refreshed] carries the
    new generation. *)

val rollback : t -> int option
(** Restore the previous generation in the registry (see
    {!Epoch_registry.rollback}) — recovery for a publish that must be
    withdrawn. Returns the restored generation. *)

val retire : t -> int
(** Drain the registry's retire list now (publishing already drains);
    returns epochs freed. *)

(** {1 Introspection} *)

val registry : t -> Epoch.t Epoch_registry.t
val tuner : t -> Repro_adaptive.Self_tuning.t

val metrics : t -> Repro_telemetry.Metrics.t
(** The tuner's registry, extended with [server.*] counters
    (publishes, epochs_freed, rollbacks, feedback_drained) and a
    [server.epoch.*] source exposing per-epoch gauges: current
    generation, pin count, retire-list length, epochs freed. *)

val generation : t -> int
val publishes : t -> int
val epochs_freed : t -> int
val rollbacks : t -> int
val feedback_drained : t -> int
val feedback_dropped : t -> int

val observed : t -> int
(** Observations the writer has attributed so far (equals
    [feedback_drained] — every drained observation is attributed). *)

val flight : t -> Repro_telemetry.Flight.t
val slo : t -> Repro_telemetry.Slo.t option

(** {2 Per-epoch attribution}

    The writer attributes every drained observation to the generation
    that served it: query count, extent/join work, and a latency
    histogram per generation, bounded to the last 64 generations. *)

type epoch_totals = {
  ep_generation : int;
  ep_queries : int;
  ep_extent_pages : int;
  ep_extent_edges : int;
  ep_join_edges : int;
  ep_latency : Repro_telemetry.Metrics.histogram;  (** seconds; a copy *)
}

val attribution : t -> epoch_totals list
(** Snapshot of the per-generation accounting, oldest generation first.
    The sum of [ep_queries] equals {!feedback_drained} (while fewer than
    64 generations have been attributed). *)

val introspect : t -> Repro_telemetry.Json.t
(** One JSON document of live server state: [server] counters, [epochs]
    (every registry entry with state/pins/age), [attribution], [slo]
    status, [policy] hysteresis state, [flight] recorder stats, and the
    full [metrics] snapshot. What [apexctl top] renders. *)

val incident_dump : ?reason:string -> t -> string -> unit
(** Force a flight-recorder incident dump (with current SLO state
    attached) to the given path, counting it in [server.incidents]. *)
