(* A published epoch: an immutable (index, graph) pair deep-copied off the
   writer's live instance.

   The copy is genuinely independent: the graph is re-snapshotted with a
   private label table and pre-forced lazy caches (Data_graph.snapshot),
   and the index is round-tripped through its persistence image
   (to_image/of_image) — a from-scratch reconstruction over the snapshot
   graph, sharing no summary node, hash-tree slot or extent with the
   writer. Freezing then pre-warms the endpoint memo and locks out every
   mutator, so the whole pair satisfies the L8 read-only discipline and
   reader domains evaluate without any synchronization.

   Epochs are always unmaterialized (store = None): extents serve from
   memory, so readers never touch the pager, buffer pool, or extent-store
   scratch state. Durability stays on the writer's side of the fence —
   [snapshot_epoch] records which committed on-disk Snapshot epoch this
   in-memory epoch corresponds to. *)

module Apex = Repro_apex.Apex
module Apex_persist = Repro_apex.Apex_persist
module Apex_query = Repro_apex.Apex_query
module Data_graph = Repro_graph.Data_graph

type t = {
  apex : Apex.t;
  graph : Data_graph.t;
  snapshot_epoch : int;  (* 0 when the server runs without durability *)
}

let of_apex ?(snapshot_epoch = 0) src =
  let graph = Data_graph.snapshot (Apex.graph src) in
  let apex = Apex_persist.of_image graph (Apex_persist.to_image src) in
  Apex.freeze apex;
  { apex; graph; snapshot_epoch }

let apex t = t.apex
let graph t = t.graph
let snapshot_epoch t = t.snapshot_epoch

let eval ?cost ?on_sequence t q = Apex_query.eval_query ?cost ?on_sequence t.apex q
