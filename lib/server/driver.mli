(** Multi-client driver for the concurrent query server: N reader domains
    with seeded query streams against a live writer applying update
    batches and self-tuning refreshes, every change published as a new
    epoch. The run is differentially checkable after the fact — readers
    log (generation, checksum) observations, the writer records each
    published generation's graph, and {!verify_observations} replays every
    observation against the single-threaded naive oracle pinned at the
    same generation. *)

type config = {
  readers : int;  (** reader domains spawned (>= 1) *)
  queries_per_reader : int;  (** stream length; readers loop over it *)
  batches : int;  (** writer update batches *)
  batch_size : int;  (** update ops per batch *)
  refresh_every_batches : int;  (** force a refresh after every k batches *)
  tuner_refresh_every : int;
      (** the tuner's periodic window — kept large by default so the
          driver's explicit cadence is the only publish source *)
  seed : int;
  log_observations : bool;
  max_logged_passes : int;
      (** per-reader observation bound; the final post-publish pass is
          always logged regardless *)
  slo : Repro_telemetry.Slo.objective list;
      (** SLO objectives passed to {!Server.create}; [[]] = no monitor *)
  watchdog : float option;  (** flight-recorder latency watchdog, seconds *)
  incident_path : string option;
      (** where the server auto-dumps an incident file on a watchdog trip
          or SLO breach *)
}

val default_config : config
(** 3 readers x 60 queries, 8 batches of 4 ops, refresh every 2 batches,
    seed 1, observations logged for the first 4 passes; no SLO monitor,
    watchdog, or incident path. *)

type observation = {
  obs_pass : int;
  obs_query : int;  (** index into the reader's stream *)
  obs_generation : int;  (** generation that served it *)
  obs_checksum : int;
  obs_length : int;
}

type reader_outcome = {
  reader : int;
  queries_run : int;
  passes : int;
      (** full passes over the stream; the last one starts after the
          writer's final publish, so it's always >= 1 *)
  errors : string list;  (** exceptions caught on the reader, oldest first *)
  latencies : Repro_telemetry.Metrics.Histogram.t;  (** seconds *)
  observations : observation list;  (** oldest first *)
}

type report = {
  config : config;
  outcomes : reader_outcome array;
  query_streams : Repro_pathexpr.Query.t array array;  (** per reader *)
  history : (int * Repro_graph.Data_graph.t) array;
      (** (generation, graph) for every published generation, ascending —
          the oracle's input *)
  registry_stats : Epoch_registry.stats;
  publishes : int;
  writer_ops : int;
  feedback_drained : int;
  feedback_dropped : int;
  wall_seconds : float;
  server : Server.t;
      (** the server the run exercised, kept for {!Server.introspect} /
          {!Server.incident_dump} / {!Server.attribution} after the fact *)
}

val checksum : int array -> int
(** FNV-1a over a result array, same fold as [Measure.checksum]. *)

val run : ?config:config -> Repro_graph.Data_graph.t -> report
(** Build a server over the graph, spawn the readers, run the writer
    schedule, join, and retire. The calling domain is the writer; it
    waits for every reader to complete one warm-up pass at the initial
    generation before applying the first batch, so each run covers both
    the pre-publish and post-publish generations. *)

val verify_observations : report -> int
(** Replay every logged observation against {!Repro_pathexpr.Naive_eval}
    on the graph of the generation that served it; returns the number of
    mismatches (0 = every concurrent result was bit-identical to the
    single-threaded oracle at its pinned generation). *)

val merged_latencies : report -> Repro_telemetry.Metrics.Histogram.t
val total_queries : report -> int
val total_errors : report -> int

val stalled_readers : report -> int
(** Readers that completed zero passes — always 0 unless a reader wedged. *)

val observed_generations : report -> int * int
(** [(min, max)] generation appearing in any observation; [(0, 0)] when
    observations were off. *)

val report_json : dataset:string -> checksum_mismatches:int -> report -> string
(** The BENCH_SERVE.json document (see README for the field reference).
    Pure — the caller writes the file. *)
