(** Epoch-based reclamation for published index generations.

    One writer publishes immutable payloads as numbered generations; any
    number of reader domains pin the current generation, evaluate against
    it, and unpin. Publishing is a single atomic store, so readers never
    block and never observe a half-installed epoch; superseded generations
    park on a retire list and are freed only once their pin count drains.
    The generation superseded by the newest publish is additionally held
    as the {e rollback target} — {!rollback} reinstates it after a failed
    publish (the GenIndex discipline), and it is exempt from {!retire}
    until the next successful publish supersedes it.

    {b Contract}: payloads must be immutable (the serving layer publishes
    frozen {!Repro_apex.Apex.freeze} copies); [pin]/[unpin] are lock-free
    and allocation-free; [publish]/[rollback]/[retire] are serialized
    internally and intended for the single writer. *)

type 'a t
type 'a entry

val create : 'a -> 'a t
(** A registry whose initial payload is generation 1 (already current — a
    registry is never empty, so {!pin} needs no option). *)

(** {1 Reader side — lock-free, allocation-free} *)

val pin : 'a t -> 'a entry
(** Pin the current generation: increment its pin count, then re-validate
    that it is still current (retrying the race with a concurrent publish).
    A successfully pinned entry is guaranteed not freed until {!unpin}. *)

val unpin : 'a entry -> unit

val payload : 'a entry -> 'a
val generation : 'a entry -> int

val current_generation : 'a t -> int
(** Generation a {!pin} issued now would return (racy by nature). *)

(** {1 Writer side — serialized internally} *)

val publish : 'a t -> 'a -> int
(** Install a new current generation with one atomic exchange and return
    its number. Published generation numbers are strictly increasing; the
    superseded entry becomes the rollback target, and the former rollback
    target joins the retire list. *)

val rollback : 'a t -> int option
(** Reinstate the generation superseded by the newest publish (after a
    failed publish, à la GenIndex): the failed current entry joins the
    retire list and the previous generation becomes current again. Returns
    the restored generation, or [None] when there is nothing to roll back
    to (no publish since the last rollback/create). *)

val retire : ?dispose:('a -> unit) -> 'a t -> int
(** Drain the retire list: free every superseded entry whose pin count is
    zero (calling [dispose] on its payload), keep the rest for the next
    drain. Neither the current entry nor the rollback target is ever
    freed. Returns the number of entries freed. *)

(** {1 Introspection} *)

val pinned : 'a t -> int
(** Pin count of the current entry (a racy snapshot, for gauges). *)

val live_retired : 'a t -> int
(** Entries still parked on the retire list. *)

val entry_pins : 'a entry -> int
val is_freed : 'a entry -> bool
(** Test-harness observability: a reader holding a validated pin must
    never see [true]. *)

type info = {
  info_generation : int;
  info_state : string;  (** ["current"], ["previous"], or ["retired"] *)
  info_pins : int;
  info_age : float;  (** seconds since the entry was created *)
}

val info : 'a t -> info list
(** Every entry the registry is holding alive — current first, then the
    rollback target (if any), then the retire list — with pin counts and
    ages. A consistent cut of writer state, for {!Server.introspect}. *)

type stats = {
  generations : int;  (** total generations ever published (incl. the first) *)
  freed : int;  (** entries drained by {!retire} so far *)
  retired_live : int;
  rolled_back : int;
}

val stats : 'a t -> stats
