(* Multi-client mixed read/write driver.

   Spawns N reader domains, each with its own seeded query stream and a
   private latency histogram, against a live writer (the calling domain)
   that alternates update batches with self-tuning refreshes, publishing
   an epoch after every change. Readers loop over their stream until the
   writer signals completion, and always finish with one full pass that
   starts after the last publish — so every run covers both "query during
   publish" and "query on the final generation". The writer also waits
   for every reader to finish one warm-up pass before its first batch,
   so every run provably serves queries at the initial generation too.

   Every query a reader runs can be logged as an observation:
   (generation served, query index, result checksum, result length).
   Together with the per-generation graph history the writer records at
   each publish, that makes the run differentially checkable after the
   fact: [verify_observations] replays every observation against the
   naive single-threaded oracle on the graph of the generation that
   served it — bit-identical results required. *)

module Data_graph = Repro_graph.Data_graph
module Naive_eval = Repro_pathexpr.Naive_eval
module Query = Repro_pathexpr.Query
module Generate = Repro_workload.Generate
module Update_workload = Repro_workload.Update_workload
module Metrics = Repro_telemetry.Metrics
module Registry = Epoch_registry

type config = {
  readers : int;
  queries_per_reader : int;
  batches : int;  (* writer update batches *)
  batch_size : int;  (* update ops per batch *)
  refresh_every_batches : int;  (* force a refresh after every k batches *)
  tuner_refresh_every : int;  (* periodic policy window (kept large: the
                                 driver's cadence is explicit) *)
  seed : int;
  log_observations : bool;
  max_logged_passes : int;  (* observation bound per reader; the final
                               post-publish pass is always logged *)
  slo : Repro_telemetry.Slo.objective list;  (* [] = no monitor *)
  watchdog : float option;  (* per-query latency watchdog, seconds *)
  incident_path : string option;  (* auto-dump target for trips/breaches *)
}

let default_config =
  { readers = 3;
    queries_per_reader = 60;
    batches = 8;
    batch_size = 4;
    refresh_every_batches = 2;
    tuner_refresh_every = 1_000_000;
    seed = 1;
    log_observations = true;
    max_logged_passes = 4;
    slo = [];
    watchdog = None;
    incident_path = None
  }

type observation = {
  obs_pass : int;
  obs_query : int;  (* index into the reader's stream *)
  obs_generation : int;  (* generation that served it *)
  obs_checksum : int;
  obs_length : int;
}

type reader_outcome = {
  reader : int;
  queries_run : int;
  passes : int;
  errors : string list;
  latencies : Metrics.Histogram.t;  (* seconds *)
  observations : observation list;  (* oldest first *)
}

type report = {
  config : config;
  outcomes : reader_outcome array;
  query_streams : Query.t array array;  (* per reader *)
  history : (int * Data_graph.t) array;  (* (generation, graph), ascending *)
  registry_stats : Registry.stats;
  publishes : int;
  writer_ops : int;
  feedback_drained : int;
  feedback_dropped : int;
  wall_seconds : float;
  server : Server.t;  (* kept alive for introspection / incident dumps *)
}

(* Same FNV-1a fold as Measure.checksum over a single result array, so
   driver observations and oracle replays compare one int. *)
let checksum r =
  let fnv h x = (h lxor x) * 0x100000001b3 land max_int in
  Array.fold_left fnv (fnv 0x3bf29ce484222325 (-1)) r

let query_stream ~seed ~reader ~n g =
  let rand = Random.State.make [| 0x5e7e; seed; reader |] in
  let n1 = max 1 (n / 2) in
  let n2 = max 1 (n / 4) in
  let n3 = max 1 (n - n1 - n2) in
  Array.concat [ Generate.qtype1 ~n:n1 rand g; Generate.qtype2 ~n:n2 rand g; Generate.qtype3 ~n:n3 rand g ]

let reader_body cfg server go writer_done first_pass_done reader stream =
  let latencies = Metrics.Histogram.create () in
  let observations = ref [] in
  let errors = ref [] in
  let queries_run = ref 0 in
  let passes = ref 0 in
  while not (Atomic.get go) do
    Domain.cpu_relax ()
  done;
  let continue = ref true in
  while !continue do
    (* sample the flag before the pass: when it was already set, this pass
       runs entirely after the writer's last publish and is the final one *)
    let last_pass = Atomic.get writer_done in
    Array.iteri
      (fun qi q ->
        let t0 = Unix.gettimeofday () in
        match Server.query_pinned server q with
        | generation, result ->
          Metrics.Histogram.record latencies (Unix.gettimeofday () -. t0);
          incr queries_run;
          if cfg.log_observations && (!passes < cfg.max_logged_passes || last_pass) then
            observations :=
              { obs_pass = !passes;
                obs_query = qi;
                obs_generation = generation;
                obs_checksum = checksum result;
                obs_length = Array.length result
              }
              :: !observations
        | exception e -> errors := Printexc.to_string e :: !errors)
      stream;
    incr passes;
    (* warm-up barrier: the writer holds its first batch until every
       reader reports one complete pass at the initial generation *)
    if !passes = 1 then Atomic.incr first_pass_done;
    if last_pass then continue := false
  done;
  { reader;
    queries_run = !queries_run;
    passes = !passes;
    errors = List.rev !errors;
    latencies;
    observations = List.rev !observations
  }

let chunk n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let run ?(config = default_config) graph =
  if config.readers < 1 then invalid_arg "Driver.run: need at least one reader";
  let server =
    Server.create ~refresh_every:config.tuner_refresh_every ~min_support:0.05
      ~slo:config.slo ?watchdog:config.watchdog ?incident_path:config.incident_path
      graph
  in
  let history = ref [] in
  let record_generation () =
    let entry = Registry.pin (Server.registry server) in
    history :=
      (Registry.generation entry, Epoch.graph (Registry.payload entry)) :: !history;
    Registry.unpin entry
  in
  record_generation ();
  let streams =
    Array.init config.readers (fun reader ->
        query_stream ~seed:config.seed ~reader ~n:config.queries_per_reader graph)
  in
  let ops, _evolved =
    Update_workload.gen_ops ~seed:config.seed ~n:(config.batches * config.batch_size) graph
  in
  let batches = chunk config.batch_size ops in
  let writer_ops = List.length ops in
  let go = Atomic.make false in
  let writer_done = Atomic.make false in
  let first_pass_done = Atomic.make 0 in
  let domains =
    Array.init config.readers (fun reader ->
        let stream = streams.(reader) in
        Domain.spawn (fun () ->
            reader_body config server go writer_done first_pass_done reader stream))
  in
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  while Atomic.get first_pass_done < config.readers do
    Domain.cpu_relax ()
  done;
  List.iteri
    (fun b batch ->
      ignore (Server.drain_feedback server : int * int option);
      ignore (Server.apply server batch : int);
      record_generation ();
      if (b + 1) mod config.refresh_every_batches = 0 then begin
        ignore (Server.force_refresh server : int);
        record_generation ()
      end)
    batches;
  ignore (Server.drain_feedback server : int * int option);
  ignore (Server.force_refresh server : int);
  record_generation ();
  Atomic.set writer_done true;
  let outcomes = Array.map Domain.join domains in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  (* one last drain now that every reader has finished: the final pass's
     observations reach the attribution table, so per-generation query
     totals reconcile exactly with total_queries - feedback_dropped *)
  ignore (Server.drain_feedback server : int * int option);
  ignore (Server.retire server : int);
  { config;
    outcomes;
    query_streams = streams;
    history = Array.of_list (List.rev !history);
    registry_stats = Registry.stats (Server.registry server);
    publishes = Server.publishes server;
    writer_ops;
    feedback_drained = Server.feedback_drained server;
    feedback_dropped = Server.feedback_dropped server;
    wall_seconds;
    server
  }

(* --- post-hoc differential verification --- *)

let verify_observations report =
  let graph_at = Hashtbl.create 32 in
  Array.iter (fun (gen, g) -> Hashtbl.replace graph_at gen g) report.history;
  let mismatches = ref 0 in
  Array.iter
    (fun outcome ->
      let stream = report.query_streams.(outcome.reader) in
      List.iter
        (fun o ->
          match Hashtbl.find_opt graph_at o.obs_generation with
          | None -> incr mismatches (* served by a generation never published *)
          | Some g ->
            let expected = Naive_eval.eval_query g stream.(o.obs_query) in
            if
              Array.length expected <> o.obs_length
              || checksum expected <> o.obs_checksum
            then incr mismatches)
        outcome.observations)
    report.outcomes;
  !mismatches

(* --- aggregates / serialization --- *)

let merged_latencies report =
  Array.fold_left
    (fun acc o -> Metrics.Histogram.merge acc o.latencies)
    (Metrics.Histogram.create ())
    report.outcomes

let total_queries report = Array.fold_left (fun acc o -> acc + o.queries_run) 0 report.outcomes
let total_errors report = Array.fold_left (fun acc o -> acc + List.length o.errors) 0 report.outcomes

let stalled_readers report =
  Array.fold_left (fun acc o -> if o.passes = 0 then acc + 1 else acc) 0 report.outcomes

let observed_generations report =
  let lo = ref max_int and hi = ref 0 in
  Array.iter
    (fun o ->
      List.iter
        (fun obs ->
          if obs.obs_generation < !lo then lo := obs.obs_generation;
          if obs.obs_generation > !hi then hi := obs.obs_generation)
        o.observations)
    report.outcomes;
  if !hi = 0 then (0, 0) else (!lo, !hi)

let report_json ~dataset ~checksum_mismatches report =
  let h = merged_latencies report in
  let q p = Metrics.Histogram.quantile h p *. 1e6 in
  let gen_lo, gen_hi = observed_generations report in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"experiment\": \"serve\",\n";
  add "  \"dataset\": \"%s\",\n" dataset;
  add "  \"readers\": %d,\n" report.config.readers;
  add "  \"queries_per_reader\": %d,\n" report.config.queries_per_reader;
  add "  \"total_queries\": %d,\n" (total_queries report);
  add "  \"reader_errors\": %d,\n" (total_errors report);
  add "  \"reader_stalls\": %d,\n" (stalled_readers report);
  add "  \"checksum_mismatches\": %d,\n" checksum_mismatches;
  add "  \"publishes\": %d,\n" report.publishes;
  add "  \"generations\": { \"published\": %d, \"observed_min\": %d, \"observed_max\": %d },\n"
    report.registry_stats.Registry.generations gen_lo gen_hi;
  add "  \"epochs\": { \"freed\": %d, \"retired_live\": %d, \"rolled_back\": %d },\n"
    report.registry_stats.Registry.freed report.registry_stats.Registry.retired_live
    report.registry_stats.Registry.rolled_back;
  add "  \"latency_us\": { \"p50\": %.2f, \"p90\": %.2f, \"p99\": %.2f, \"mean\": %.2f, \"max\": %.2f },\n"
    (q 0.5) (q 0.9) (q 0.99)
    (Metrics.Histogram.mean h *. 1e6)
    (Metrics.Histogram.max_value h *. 1e6);
  add "  \"writer\": { \"batches\": %d, \"ops\": %d },\n" report.config.batches report.writer_ops;
  add "  \"feedback\": { \"drained\": %d, \"dropped\": %d },\n" report.feedback_drained
    report.feedback_dropped;
  add "  \"wall_seconds\": %.3f\n" report.wall_seconds;
  add "}\n";
  Buffer.contents b
