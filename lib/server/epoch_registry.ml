(* Epoch-based reclamation for published index generations.

   The registry holds exactly one CURRENT entry in an [Atomic]; readers pin
   it with an increment-then-validate loop and writers publish a successor
   with one atomic exchange. Superseded entries park on a retire list and
   are freed only once their pin count has drained — the GenIndex
   discipline: queries in flight keep serving the generation they pinned,
   no publish ever waits for them, and a failed publish rolls back to the
   previous generation, which is exempt from retirement until the next
   successful publish supersedes it.

   Memory model: an entry's immutable fields ([generation], [payload]) are
   written before the [Atomic.exchange] that publishes it, and readers
   obtain the entry through [Atomic.get] — the release/acquire pairing of
   OCaml's atomics makes the payload fully visible to every reader domain.

   The pin/retire race is benign by construction: a reader may increment
   the pin count of an entry that was already superseded (it read [current]
   just before the exchange), but the validate step then sees a different
   current entry, unpins, and retries — it never *uses* the stale entry.
   [retire] in turn frees only entries whose pin count is zero at
   inspection time; a transient pin can at worst postpone the free to the
   next drain, never resurrect a freed entry, because readers only reach
   entries through [current]. *)

type 'a entry = {
  generation : int;
  payload : 'a;
  born : float;  (* wall-clock publish time, for epoch ages in [info] *)
  pins : int Atomic.t;
  freed : bool Atomic.t;
      (* observability for the test harness: set exactly once, by the
         drain that disposes the entry; a reader that validated its pin
         must never observe [true] *)
}

type 'a t = {
  current : 'a entry Atomic.t;
  next_generation : int Atomic.t;
  writer : Mutex.t;  (* serializes publish / rollback / retire *)
  mutable retired : 'a entry list; [@apex.guarded "retire"]
      (* superseded entries whose pins have not drained yet; writer-owned
         under [writer] *)
  mutable previous : 'a entry option; [@apex.guarded "retire"]
      (* the entry superseded by the newest publish — the rollback target,
         never freed while it holds this slot *)
  mutable published : int; [@apex.guarded "retire"]
  mutable freed_total : int; [@apex.guarded "retire"]
  mutable rollbacks : int; [@apex.guarded "retire"]
}
[@@apex.shared]

let make_entry ~generation payload =
  { generation;
    payload;
    born = Unix.gettimeofday ();
    pins = Atomic.make 0;
    freed = Atomic.make false }

let create payload =
  { current = Atomic.make (make_entry ~generation:1 payload);
    next_generation = Atomic.make 2;
    writer = Mutex.create ();
    retired = [];
    previous = None;
    published = 1;
    freed_total = 0;
    rollbacks = 0
  }

(* Reader side — lock-free and allocation-free. *)

let rec pin t =
  let e = Atomic.get t.current in
  Atomic.incr e.pins;
  if Atomic.get t.current == e then e
  else begin
    (* lost the race with a publish: the entry we pinned is no longer
       current — release it (its retirement may be waiting on us) and take
       the new current instead *)
    Atomic.decr e.pins;
    pin t
  end

let unpin e = Atomic.decr e.pins
let payload e = e.payload
let generation e = e.generation
let entry_pins e = Atomic.get e.pins
let is_freed e = Atomic.get e.freed
let current_generation t = (Atomic.get t.current).generation

(* Writer side — serialized on [t.writer]. *)

let publish t payload =
  Mutex.lock t.writer;
  let generation = Atomic.fetch_and_add t.next_generation 1 in
  let entry = make_entry ~generation payload in
  let old = Atomic.exchange t.current entry in
  (* the former rollback target is now two generations behind: retire it *)
  (match t.previous with
   | Some p -> t.retired <- p :: t.retired
   | None -> ());
  t.previous <- Some old;
  t.published <- t.published + 1;
  Mutex.unlock t.writer;
  generation

let rollback t =
  Mutex.lock t.writer;
  let restored =
    match t.previous with
    | None -> None
    | Some prev ->
      let bad = Atomic.exchange t.current prev in
      t.retired <- bad :: t.retired;
      t.previous <- None;
      t.rollbacks <- t.rollbacks + 1;
      Some prev.generation
  in
  Mutex.unlock t.writer;
  restored

let retire ?dispose t =
  Mutex.lock t.writer;
  let cur = Atomic.get t.current in
  let still, drained =
    List.partition (fun e -> e == cur || Atomic.get e.pins > 0) t.retired
  in
  t.retired <- still;
  t.freed_total <- t.freed_total + List.length drained;
  List.iter
    (fun e ->
      Atomic.set e.freed true;
      match dispose with Some f -> f e.payload | None -> ())
    drained;
  Mutex.unlock t.writer;
  List.length drained

let pinned t = Atomic.get (Atomic.get t.current).pins

let live_retired t =
  Mutex.lock t.writer;
  let n = List.length t.retired in
  Mutex.unlock t.writer;
  n

(* Per-entry view of everything the registry is holding alive, for the
   introspection endpoint: the current entry, the rollback target, and
   the retire list, each with its pin count and age. Taken under the
   writer lock, so the listing is a consistent cut of writer state (pin
   counts themselves stay racy snapshots, as everywhere). *)
type info = {
  info_generation : int;
  info_state : string;  (* "current" | "previous" | "retired" *)
  info_pins : int;
  info_age : float;  (* seconds since the entry was created *)
}

let info t =
  Mutex.lock t.writer;
  let now = Unix.gettimeofday () in
  let of_entry state e =
    { info_generation = e.generation;
      info_state = state;
      info_pins = Atomic.get e.pins;
      info_age = now -. e.born }
  in
  let infos =
    (of_entry "current" (Atomic.get t.current)
     ::
     (match t.previous with Some p -> [ of_entry "previous" p ] | None -> []))
    @ List.map (of_entry "retired") t.retired
  in
  Mutex.unlock t.writer;
  infos

type stats = { generations : int; freed : int; retired_live : int; rolled_back : int }

let stats t =
  Mutex.lock t.writer;
  let s =
    { generations = t.published;
      freed = t.freed_total;
      retired_live = List.length t.retired;
      rolled_back = t.rollbacks
    }
  in
  Mutex.unlock t.writer;
  s
