(** A published epoch: an immutable [(Apex.t, Data_graph.t)] pair that any
    number of reader domains can query concurrently.

    Built by deep copy off the writer's live index: the graph through
    {!Repro_graph.Data_graph.snapshot} (private label table, pre-forced
    lazy caches), the index by an image round-trip
    ({!Repro_apex.Apex_persist.to_image}/[of_image]) over that snapshot,
    then {!Repro_apex.Apex.freeze}. Nothing mutable is shared with the
    writer, and the frozen read path performs no stores. *)

type t

val of_apex : ?snapshot_epoch:int -> Repro_apex.Apex.t -> t
(** Deep-copy and freeze the given (live, possibly materialized) index
    into a publishable epoch. [snapshot_epoch] records the durable
    {!Repro_apex.Apex_persist.Snapshot} epoch this copy corresponds to
    (default 0: not durably committed). *)

val eval :
  ?cost:Repro_storage.Cost.t ->
  ?on_sequence:(Repro_pathexpr.Label_path.t -> unit) ->
  t ->
  Repro_pathexpr.Query.t ->
  Repro_graph.Data_graph.nid array
(** Evaluate a query against the frozen index. Epochs are unmaterialized,
    so [cost] accounts no page I/O — but extent-edge and join-edge charges
    still accrue, which is what the reader-side cost feedback for the
    adaptation policy measures. [on_sequence] reports the label paths Q2
    rewriting matched, exactly as {!Repro_apex.Apex_query.eval_query}
    does; the server feeds them back to the writer's query log. *)

val apex : t -> Repro_apex.Apex.t
val graph : t -> Repro_graph.Data_graph.t

val snapshot_epoch : t -> int
(** Durable snapshot epoch recorded at publish; 0 without durability. *)
