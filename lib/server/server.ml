(* The serving layer: one writer domain, any number of reader domains.

   Readers pin the current epoch in the registry, evaluate against its
   frozen index, unpin, and push what they ran into a bounded feedback
   buffer. The writer — the only domain allowed to call [apply] /
   [force_refresh] / [drain_feedback] — drains that buffer into the
   self-tuning query log, applies update batches, runs refreshes, and
   publishes a fresh deep-copied epoch after every change. Readers in
   flight keep answering from the generation they pinned; superseded
   epochs are drained from the retire list once their pins reach zero.

   Fault discipline: with a snapshot, Self_tuning absorbs storage faults
   internally (refresh rolls back to the last committed epoch, updates
   fall back to rebuild), so the writer always reaches the publish — the
   published epoch is consistent even when degraded. Without a snapshot
   the fault escapes before any registry state changed, so readers keep
   serving the surviving epoch; [rollback] additionally exposes the
   registry's own previous-generation restore for external recovery
   logic. *)

module Tr = Repro_telemetry.Trace
module Metrics = Repro_telemetry.Metrics
module Flight = Repro_telemetry.Flight
module Slo = Repro_telemetry.Slo
module Json = Repro_telemetry.Json
module Self_tuning = Repro_adaptive.Self_tuning
module Policy = Repro_adaptive.Policy
module Registry = Epoch_registry

(* one reader-executed query with its measured signals: the drain path
   feeds these to the tuner, closing the adaptation loop from the actual
   serving traffic rather than from writer-side re-execution *)
type observation = {
  ob_query : Repro_pathexpr.Query.t;
  ob_q2_paths : Repro_pathexpr.Label_path.t list;
  ob_generation : int;  (* generation that served the query *)
  ob_extent_pages : int;
  ob_extent_edges : int;
  ob_join_edges : int;
  ob_latency : float;
}

type feedback = {
  fb_lock : Mutex.t;
  fb_queue : observation Queue.t;
  fb_capacity : int;
  mutable fb_dropped : int; [@apex.guarded "feedback"]
      (* pushes refused because the buffer was full; under [fb_lock] *)
}

(* Per-generation accounting, filled by the writer as it drains feedback:
   what each serving generation cost, so "generation 7 was 3x slower than
   6" is a queryable fact rather than archaeology. Bounded to the last
   [max_attributed] generations (old cells are evicted lowest-generation
   first). *)
type attribution_cell = {
  at_generation : int;
  mutable at_queries : int; [@apex.guarded "writer"]
  mutable at_extent_pages : int; [@apex.guarded "writer"]
  mutable at_extent_edges : int; [@apex.guarded "writer"]
  mutable at_join_edges : int; [@apex.guarded "writer"]
  at_latency : Metrics.histogram;  (* seconds *)
}

type epoch_totals = {
  ep_generation : int;
  ep_queries : int;
  ep_extent_pages : int;
  ep_extent_edges : int;
  ep_join_edges : int;
  ep_latency : Metrics.histogram;
}

let max_attributed = 64

type t = {
  tuner : Self_tuning.t;  (* writer-domain only *)
  registry : Epoch.t Registry.t;
  snapshot : Repro_apex.Apex_persist.Snapshot.t option;
  writer : Mutex.t;  (* serializes every writer-side operation *)
  feedback : feedback;
  metrics : Metrics.t;
  flight : Flight.t;  (* writer-domain only (record/tick/dump) *)
  slo : Slo.t option;  (* writer-domain only *)
  slo_idx : int array;  (* objective index per qtype (1/2/3), -1 = none *)
  incident_path : string option;  (* auto-dump target for trips/breaches *)
  attribution : (int, attribution_cell) Hashtbl.t; [@apex.guarded "writer"]
      (* generation -> cost totals; writer-owned under [writer] *)
  c_publishes : Metrics.counter;
  c_epochs_freed : Metrics.counter;
  c_rollbacks : Metrics.counter;
  c_drained : Metrics.counter;
  c_observed : Metrics.counter;
  c_obs_extent_pages : Metrics.counter;
  c_obs_extent_edges : Metrics.counter;
  c_obs_join_edges : Metrics.counter;
  c_incidents : Metrics.counter;
  g_generation : Metrics.gauge;
  h_latency : Metrics.histogram;
      (* registry-level query latency (seconds) — the exposition's
         histogram family; per-epoch splits live in [attribution] *)
}

let snapshot_epoch t =
  match t.snapshot with
  | Some snap -> Repro_apex.Apex_persist.Snapshot.epoch snap
  | None -> 0

(* Deep-copy the writer's index into a frozen epoch and make it current;
   then drain what the publish superseded. Caller holds [t.writer]. *)
let publish_locked t =
  let tok = Tr.begin_ Tr.Epoch_publish in
  let epoch = Epoch.of_apex ~snapshot_epoch:(snapshot_epoch t) (Self_tuning.apex t.tuner) in
  let generation = Registry.publish t.registry epoch in
  Tr.end_arg tok generation;
  Metrics.incr t.c_publishes;
  Metrics.set t.g_generation (float_of_int generation);
  let rtok = Tr.begin_ Tr.Epoch_retire in
  let freed = Registry.retire t.registry in
  Tr.end_arg rtok freed;
  Metrics.add t.c_epochs_freed freed;
  Flight.tick t.flight;
  Flight.record t.flight Flight.Publish ~a:generation ~b:freed;
  if freed > 0 then Flight.record t.flight Flight.Retire ~a:freed ~b:0;
  generation

(* SLO objectives named "q1"/"q2"/"q3" receive the server's per-qtype
   latencies automatically; other names are the caller's to feed. *)
let qtype_names = [| "q1"; "q2"; "q3" |] [@@apex.guarded "readonly"]

let create ?log_capacity ?min_support ?(refresh_every = 500) ?(feedback_capacity = 4096)
    ?pool ?snapshot ?policy ?slo ?(slo_subwindows = 6) ?watchdog ?incident_path
    ?(flight_capacity = Flight.default_capacity) graph =
  let tuner =
    Self_tuning.create ?log_capacity ?min_support ~refresh_every ?pool ?snapshot ?policy
      graph
  in
  let registry =
    Registry.create
      (Epoch.of_apex
         ~snapshot_epoch:
           (match snapshot with
            | Some snap -> Repro_apex.Apex_persist.Snapshot.epoch snap
            | None -> 0)
         (Self_tuning.apex tuner))
  in
  let metrics = Self_tuning.metrics tuner in
  let slo =
    match slo with
    | None | Some [] -> None
    | Some objectives -> Some (Slo.create ~subwindows:slo_subwindows objectives)
  in
  let slo_idx =
    Array.map
      (fun name ->
        match slo with
        | None -> -1
        | Some s -> (match Slo.index s name with Some i -> i | None -> -1))
      qtype_names
  in
  let flight = Flight.create ~capacity:flight_capacity ~metrics () in
  (match watchdog with
   | Some threshold -> Flight.set_watchdog flight ~threshold
   | None -> ());
  let t =
    { tuner;
      registry;
      snapshot;
      writer = Mutex.create ();
      feedback =
        { fb_lock = Mutex.create ();
          fb_queue = Queue.create ();
          fb_capacity = feedback_capacity;
          fb_dropped = 0
        };
      metrics;
      flight;
      slo;
      slo_idx;
      incident_path;
      attribution = Hashtbl.create 32;
      c_publishes = Metrics.counter metrics "server.publishes";
      c_epochs_freed = Metrics.counter metrics "server.epochs_freed";
      c_rollbacks = Metrics.counter metrics "server.rollbacks";
      c_drained = Metrics.counter metrics "server.feedback_drained";
      c_observed = Metrics.counter metrics "server.observed_queries";
      c_obs_extent_pages = Metrics.counter metrics "server.observed_extent_pages";
      c_obs_extent_edges = Metrics.counter metrics "server.observed_extent_edges";
      c_obs_join_edges = Metrics.counter metrics "server.observed_join_edges";
      c_incidents = Metrics.counter metrics "server.incidents";
      g_generation = Metrics.gauge metrics "server.generation";
      h_latency = Metrics.histogram metrics "server.query_latency_seconds"
    }
  in
  Metrics.set t.g_generation 1.;
  (* per-epoch gauges: live values snapshotted whenever the registry is
     introspected (apexctl, bench) *)
  Metrics.register_source metrics "server.epoch" (fun () ->
      let s = Registry.stats t.registry in
      [ ("generation", float_of_int (Registry.current_generation t.registry));
        ("pinned", float_of_int (Registry.pinned t.registry));
        ("retired_live", float_of_int s.Registry.retired_live);
        ("freed", float_of_int s.Registry.freed);
        ("generations", float_of_int s.Registry.generations)
      ]);
  t

(* --- reader side (any domain) --- *)

let offer_feedback t ob =
  let fb = t.feedback in
  Mutex.lock fb.fb_lock;
  if Queue.length fb.fb_queue < fb.fb_capacity then Queue.push ob fb.fb_queue
  else fb.fb_dropped <- fb.fb_dropped + 1;
  Mutex.unlock fb.fb_lock

let query_pinned t q =
  let tok = Tr.begin_ Tr.Reader_pin in
  let entry = Registry.pin t.registry in
  let generation = Registry.generation entry in
  let q2_paths = ref [] in
  (* private per-query measurement: epochs are unmaterialized, so the
     page counter stays 0 and the signal is edge/join work + wall clock *)
  let cost = Repro_storage.Cost.create () in
  let t0 = Unix.gettimeofday () in
  let result =
    match
      Epoch.eval ~cost
        ~on_sequence:(fun p -> q2_paths := p :: !q2_paths)
        (Registry.payload entry) q
    with
    | r ->
      Registry.unpin entry;
      r
    | exception e ->
      Registry.unpin entry;
      Tr.end_ tok;
      raise e
  in
  Tr.end_arg tok generation;
  offer_feedback t
    { ob_query = q;
      ob_q2_paths = !q2_paths;
      ob_generation = generation;
      ob_extent_pages = cost.Repro_storage.Cost.extent_pages;
      ob_extent_edges = cost.Repro_storage.Cost.extent_edges;
      ob_join_edges = cost.Repro_storage.Cost.join_edges;
      ob_latency = Unix.gettimeofday () -. t0 };
  (generation, result)

let query t q = snd (query_pinned t q)

(* --- writer side (single domain) --- *)

let with_writer t f =
  Mutex.lock t.writer;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) f

let apply t ops =
  with_writer t (fun () ->
      Flight.tick t.flight;
      Flight.record t.flight Flight.Update_batch ~a:(List.length ops) ~b:0;
      Self_tuning.update t.tuner ops;
      publish_locked t)

let force_refresh t =
  with_writer t (fun () ->
      Self_tuning.refresh_and_publish t.tuner ~publish:(fun _apex -> publish_locked t))

let slo_json t = match t.slo with None -> Json.Null | Some s -> Slo.to_json s

(* Caller holds [t.writer]. Get-or-create the generation's accounting
   cell; beyond [max_attributed] live generations the lowest-numbered
   (oldest) cell is evicted first. *)
let attribution_cell t generation =
  match Hashtbl.find_opt t.attribution generation with
  | Some cell -> cell
  | None ->
    if Hashtbl.length t.attribution >= max_attributed then begin
      let oldest = Hashtbl.fold (fun g _ acc -> min g acc) t.attribution max_int in
      Hashtbl.remove t.attribution oldest
    end;
    let cell =
      { at_generation = generation;
        at_queries = 0;
        at_extent_pages = 0;
        at_extent_edges = 0;
        at_join_edges = 0;
        at_latency = Metrics.Histogram.create ()
      }
    in
    Hashtbl.add t.attribution generation cell;
    cell

let qtype_index = function
  | Repro_pathexpr.Query.Qtype1 _ -> 0
  | Repro_pathexpr.Query.Qtype2 _ -> 1
  | Repro_pathexpr.Query.Qtype3 _ -> 2

let drain_feedback t =
  with_writer t (fun () ->
      let fb = t.feedback in
      Mutex.lock fb.fb_lock;
      let batch = Queue.fold (fun acc item -> item :: acc) [] fb.fb_queue in
      Queue.clear fb.fb_queue;
      let dropped = fb.fb_dropped in
      Mutex.unlock fb.fb_lock;
      let batch = List.rev batch in
      (* one clock refresh per drain: every flight record below reuses the
         coarse timestamp, keeping the per-observation path allocation-free *)
      Flight.tick t.flight;
      let tripped = ref false in
      List.iter
        (fun ob ->
          Self_tuning.record_external t.tuner ~q2_paths:ob.ob_q2_paths
            ~extent_pages:ob.ob_extent_pages ~extent_edges:ob.ob_extent_edges
            ~join_edges:ob.ob_join_edges ~latency:ob.ob_latency ob.ob_query;
          let cell = attribution_cell t ob.ob_generation in
          cell.at_queries <- cell.at_queries + 1;
          cell.at_extent_pages <- cell.at_extent_pages + ob.ob_extent_pages;
          cell.at_extent_edges <- cell.at_extent_edges + ob.ob_extent_edges;
          cell.at_join_edges <- cell.at_join_edges + ob.ob_join_edges;
          Metrics.Histogram.record cell.at_latency ob.ob_latency;
          Metrics.Histogram.record t.h_latency ob.ob_latency;
          Metrics.incr t.c_observed;
          Metrics.add t.c_obs_extent_pages ob.ob_extent_pages;
          Metrics.add t.c_obs_extent_edges ob.ob_extent_edges;
          Metrics.add t.c_obs_join_edges ob.ob_join_edges;
          (match t.slo with
           | Some s ->
             let i = t.slo_idx.(qtype_index ob.ob_query) in
             if i >= 0 then Slo.observe s i ob.ob_latency
           | None -> ());
          let latency_ns = int_of_float (ob.ob_latency *. 1e9) in
          if Flight.check_latency t.flight ~generation:ob.ob_generation ~latency_ns
          then tripped := true;
          Flight.record t.flight Flight.Query ~a:ob.ob_generation ~b:latency_ns)
        batch;
      let n = List.length batch in
      Metrics.add t.c_drained n;
      Flight.record t.flight Flight.Drain ~a:n ~b:dropped;
      (* the SLO window rotates once per non-empty drain, so the effective
         window tracks served traffic rather than idle polling *)
      let breached =
        match t.slo with
        | Some s when n > 0 ->
          let statuses = Slo.advance s in
          List.iteri
            (fun i st ->
              if st.Slo.st_breached then
                Flight.record t.flight Flight.Slo_breach ~a:i
                  ~b:(int_of_float (st.Slo.st_burn *. 1000.)))
            statuses;
          List.exists (fun st -> st.Slo.st_breached) statuses
        | Some _ | None -> false
      in
      (match t.incident_path with
       | Some path when !tripped || breached ->
         Metrics.incr t.c_incidents;
         Flight.dump
           ~reason:(if !tripped then "watchdog trip" else "slo breach")
           ~slo:(slo_json t) t.flight path
       | _ -> ());
      let refreshed =
        if Self_tuning.due_for_refresh t.tuner then
          Some (Self_tuning.refresh_and_publish t.tuner ~publish:(fun _ -> publish_locked t))
        else None
      in
      (match refreshed with
       | Some generation ->
         let changes =
           match Self_tuning.policy t.tuner with
           | Some p -> Policy.last_changes p
           | None -> 0
         in
         Flight.record t.flight Flight.Refresh ~a:generation ~b:changes
       | None -> ());
      (n, refreshed))

let rollback t =
  with_writer t (fun () ->
      match Registry.rollback t.registry with
      | Some generation ->
        Metrics.incr t.c_rollbacks;
        Metrics.set t.g_generation (float_of_int generation);
        Tr.event Tr.Epoch_rolled_back generation;
        Flight.tick t.flight;
        Flight.record t.flight Flight.Rollback ~a:generation ~b:0;
        ignore (Registry.retire t.registry : int);
        Some generation
      | None -> None)

let retire t = with_writer t (fun () -> Registry.retire t.registry)

(* --- introspection --- *)

let registry t = t.registry
let tuner t = t.tuner
let metrics t = t.metrics
let generation t = Registry.current_generation t.registry
let publishes t = Metrics.value t.c_publishes
let epochs_freed t = Metrics.value t.c_epochs_freed
let rollbacks t = Metrics.value t.c_rollbacks
let feedback_drained t = Metrics.value t.c_drained

let feedback_dropped t =
  let fb = t.feedback in
  Mutex.lock fb.fb_lock;
  let n = fb.fb_dropped in
  Mutex.unlock fb.fb_lock;
  n

let observed t = Metrics.value t.c_observed
let flight t = t.flight
let slo t = t.slo

(* Caller holds [t.writer]. Snapshot the attribution table as immutable
   totals, oldest generation first; the histograms are copies, so the
   caller can keep them past the lock. *)
let attribution_locked t =
  Hashtbl.fold
    (fun _ c acc ->
      { ep_generation = c.at_generation;
        ep_queries = c.at_queries;
        ep_extent_pages = c.at_extent_pages;
        ep_extent_edges = c.at_extent_edges;
        ep_join_edges = c.at_join_edges;
        ep_latency = Metrics.Histogram.merge c.at_latency (Metrics.Histogram.create ())
      }
      :: acc)
    t.attribution []
  |> List.sort (fun a b -> Int.compare a.ep_generation b.ep_generation)

let attribution t = with_writer t (fun () -> attribution_locked t)

let num i = Json.Num (float_of_int i)

let histogram_json h =
  let q p =
    match Metrics.Histogram.quantile_opt h p with
    | None -> Json.Null
    | Some v -> Json.Num v
  in
  Json.Obj
    [ ("count", num (Metrics.Histogram.count h));
      ("p50", q 0.5);
      ("p90", q 0.9);
      ("p99", q 0.99);
      ("max",
       if Metrics.Histogram.count h = 0 then Json.Null
       else Json.Num (Metrics.Histogram.max_value h))
    ]

let introspect t =
  with_writer t (fun () ->
      let fb = t.feedback in
      Mutex.lock fb.fb_lock;
      let dropped = fb.fb_dropped in
      Mutex.unlock fb.fb_lock;
      let server =
        Json.Obj
          [ ("generation", num (Registry.current_generation t.registry));
            ("publishes", num (Metrics.value t.c_publishes));
            ("epochs_freed", num (Metrics.value t.c_epochs_freed));
            ("rollbacks", num (Metrics.value t.c_rollbacks));
            ("feedback_drained", num (Metrics.value t.c_drained));
            ("feedback_dropped", num dropped);
            ("observed_queries", num (Metrics.value t.c_observed));
            ("incidents", num (Metrics.value t.c_incidents))
          ]
      in
      let epochs =
        List.map
          (fun (i : Registry.info) ->
            Json.Obj
              [ ("generation", num i.Registry.info_generation);
                ("state", Json.Str i.Registry.info_state);
                ("pins", num i.Registry.info_pins);
                ("age_seconds", Json.Num i.Registry.info_age)
              ])
          (Registry.info t.registry)
      in
      let attribution =
        List.map
          (fun ep ->
            Json.Obj
              [ ("generation", num ep.ep_generation);
                ("queries", num ep.ep_queries);
                ("extent_pages", num ep.ep_extent_pages);
                ("extent_edges", num ep.ep_extent_edges);
                ("join_edges", num ep.ep_join_edges);
                ("latency", histogram_json ep.ep_latency)
              ])
          (attribution_locked t)
      in
      let policy =
        match Self_tuning.policy t.tuner with
        | Some p -> Policy.state_json p
        | None -> Json.Null
      in
      let fstats = Flight.stats t.flight in
      let flight =
        Json.Obj
          [ ("recorded", num fstats.Flight.recorded);
            ("retained", num fstats.Flight.retained);
            ("overwritten", num fstats.Flight.overwritten);
            ("trips", num (Flight.trips t.flight));
            ("dumps", num (Flight.dumps t.flight));
            ("armed", Json.Bool (Flight.is_armed t.flight))
          ]
      in
      let metrics =
        Json.Obj
          (List.map
             (fun (name, v) ->
               ( name,
                 match v with
                 | Metrics.Count n -> num n
                 | Metrics.Level f -> Json.Num f
                 | Metrics.Dist h -> histogram_json h ))
             (Metrics.snapshot t.metrics))
      in
      Json.Obj
        [ ("server", server);
          ("epochs", Json.Arr epochs);
          ("attribution", Json.Arr attribution);
          ("slo", slo_json t);
          ("policy", policy);
          ("flight", flight);
          ("metrics", metrics)
        ])

let incident_dump ?(reason = "on-demand") t path =
  with_writer t (fun () ->
      Flight.tick t.flight;
      Metrics.incr t.c_incidents;
      Flight.dump ~reason ~slo:(slo_json t) t.flight path)
