(* The serving layer: one writer domain, any number of reader domains.

   Readers pin the current epoch in the registry, evaluate against its
   frozen index, unpin, and push what they ran into a bounded feedback
   buffer. The writer — the only domain allowed to call [apply] /
   [force_refresh] / [drain_feedback] — drains that buffer into the
   self-tuning query log, applies update batches, runs refreshes, and
   publishes a fresh deep-copied epoch after every change. Readers in
   flight keep answering from the generation they pinned; superseded
   epochs are drained from the retire list once their pins reach zero.

   Fault discipline: with a snapshot, Self_tuning absorbs storage faults
   internally (refresh rolls back to the last committed epoch, updates
   fall back to rebuild), so the writer always reaches the publish — the
   published epoch is consistent even when degraded. Without a snapshot
   the fault escapes before any registry state changed, so readers keep
   serving the surviving epoch; [rollback] additionally exposes the
   registry's own previous-generation restore for external recovery
   logic. *)

module Tr = Repro_telemetry.Trace
module Metrics = Repro_telemetry.Metrics
module Self_tuning = Repro_adaptive.Self_tuning
module Registry = Epoch_registry

(* one reader-executed query with its measured signals: the drain path
   feeds these to the tuner, closing the adaptation loop from the actual
   serving traffic rather than from writer-side re-execution *)
type observation = {
  ob_query : Repro_pathexpr.Query.t;
  ob_q2_paths : Repro_pathexpr.Label_path.t list;
  ob_extent_edges : int;
  ob_join_edges : int;
  ob_latency : float;
}

type feedback = {
  fb_lock : Mutex.t;
  fb_queue : observation Queue.t;
  fb_capacity : int;
  mutable fb_dropped : int; [@apex.guarded "feedback"]
      (* pushes refused because the buffer was full; under [fb_lock] *)
}

type t = {
  tuner : Self_tuning.t;  (* writer-domain only *)
  registry : Epoch.t Registry.t;
  snapshot : Repro_apex.Apex_persist.Snapshot.t option;
  writer : Mutex.t;  (* serializes every writer-side operation *)
  feedback : feedback;
  metrics : Metrics.t;
  c_publishes : Metrics.counter;
  c_epochs_freed : Metrics.counter;
  c_rollbacks : Metrics.counter;
  c_drained : Metrics.counter;
  g_generation : Metrics.gauge;
}

let snapshot_epoch t =
  match t.snapshot with
  | Some snap -> Repro_apex.Apex_persist.Snapshot.epoch snap
  | None -> 0

(* Deep-copy the writer's index into a frozen epoch and make it current;
   then drain what the publish superseded. Caller holds [t.writer]. *)
let publish_locked t =
  let tok = Tr.begin_ Tr.Epoch_publish in
  let epoch = Epoch.of_apex ~snapshot_epoch:(snapshot_epoch t) (Self_tuning.apex t.tuner) in
  let generation = Registry.publish t.registry epoch in
  Tr.end_arg tok generation;
  Metrics.incr t.c_publishes;
  Metrics.set t.g_generation (float_of_int generation);
  let rtok = Tr.begin_ Tr.Epoch_retire in
  let freed = Registry.retire t.registry in
  Tr.end_arg rtok freed;
  Metrics.add t.c_epochs_freed freed;
  generation

let create ?log_capacity ?min_support ?(refresh_every = 500) ?(feedback_capacity = 4096)
    ?pool ?snapshot ?policy graph =
  let tuner =
    Self_tuning.create ?log_capacity ?min_support ~refresh_every ?pool ?snapshot ?policy
      graph
  in
  let registry =
    Registry.create
      (Epoch.of_apex
         ~snapshot_epoch:
           (match snapshot with
            | Some snap -> Repro_apex.Apex_persist.Snapshot.epoch snap
            | None -> 0)
         (Self_tuning.apex tuner))
  in
  let metrics = Self_tuning.metrics tuner in
  let t =
    { tuner;
      registry;
      snapshot;
      writer = Mutex.create ();
      feedback =
        { fb_lock = Mutex.create ();
          fb_queue = Queue.create ();
          fb_capacity = feedback_capacity;
          fb_dropped = 0
        };
      metrics;
      c_publishes = Metrics.counter metrics "server.publishes";
      c_epochs_freed = Metrics.counter metrics "server.epochs_freed";
      c_rollbacks = Metrics.counter metrics "server.rollbacks";
      c_drained = Metrics.counter metrics "server.feedback_drained";
      g_generation = Metrics.gauge metrics "server.generation"
    }
  in
  Metrics.set t.g_generation 1.;
  (* per-epoch gauges: live values snapshotted whenever the registry is
     introspected (apexctl, bench) *)
  Metrics.register_source metrics "server.epoch" (fun () ->
      let s = Registry.stats t.registry in
      [ ("generation", float_of_int (Registry.current_generation t.registry));
        ("pinned", float_of_int (Registry.pinned t.registry));
        ("retired_live", float_of_int s.Registry.retired_live);
        ("freed", float_of_int s.Registry.freed);
        ("generations", float_of_int s.Registry.generations)
      ]);
  t

(* --- reader side (any domain) --- *)

let offer_feedback t ob =
  let fb = t.feedback in
  Mutex.lock fb.fb_lock;
  if Queue.length fb.fb_queue < fb.fb_capacity then Queue.push ob fb.fb_queue
  else fb.fb_dropped <- fb.fb_dropped + 1;
  Mutex.unlock fb.fb_lock

let query_pinned t q =
  let tok = Tr.begin_ Tr.Reader_pin in
  let entry = Registry.pin t.registry in
  let generation = Registry.generation entry in
  let q2_paths = ref [] in
  (* private per-query measurement: epochs are unmaterialized, so the
     page counter stays 0 and the signal is edge/join work + wall clock *)
  let cost = Repro_storage.Cost.create () in
  let t0 = Unix.gettimeofday () in
  let result =
    match
      Epoch.eval ~cost
        ~on_sequence:(fun p -> q2_paths := p :: !q2_paths)
        (Registry.payload entry) q
    with
    | r ->
      Registry.unpin entry;
      r
    | exception e ->
      Registry.unpin entry;
      Tr.end_ tok;
      raise e
  in
  Tr.end_arg tok generation;
  offer_feedback t
    { ob_query = q;
      ob_q2_paths = !q2_paths;
      ob_extent_edges = cost.Repro_storage.Cost.extent_edges;
      ob_join_edges = cost.Repro_storage.Cost.join_edges;
      ob_latency = Unix.gettimeofday () -. t0 };
  (generation, result)

let query t q = snd (query_pinned t q)

(* --- writer side (single domain) --- *)

let with_writer t f =
  Mutex.lock t.writer;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) f

let apply t ops =
  with_writer t (fun () ->
      Self_tuning.update t.tuner ops;
      publish_locked t)

let force_refresh t =
  with_writer t (fun () ->
      Self_tuning.refresh_and_publish t.tuner ~publish:(fun _apex -> publish_locked t))

let drain_feedback t =
  with_writer t (fun () ->
      let fb = t.feedback in
      Mutex.lock fb.fb_lock;
      let batch = Queue.fold (fun acc item -> item :: acc) [] fb.fb_queue in
      Queue.clear fb.fb_queue;
      Mutex.unlock fb.fb_lock;
      let batch = List.rev batch in
      List.iter
        (fun ob ->
          Self_tuning.record_external t.tuner ~q2_paths:ob.ob_q2_paths
            ~extent_edges:ob.ob_extent_edges ~join_edges:ob.ob_join_edges
            ~latency:ob.ob_latency ob.ob_query)
        batch;
      let n = List.length batch in
      Metrics.add t.c_drained n;
      let refreshed =
        if Self_tuning.due_for_refresh t.tuner then
          Some (Self_tuning.refresh_and_publish t.tuner ~publish:(fun _ -> publish_locked t))
        else None
      in
      (n, refreshed))

let rollback t =
  with_writer t (fun () ->
      match Registry.rollback t.registry with
      | Some generation ->
        Metrics.incr t.c_rollbacks;
        Metrics.set t.g_generation (float_of_int generation);
        Tr.event Tr.Epoch_rolled_back generation;
        ignore (Registry.retire t.registry : int);
        Some generation
      | None -> None)

let retire t = with_writer t (fun () -> Registry.retire t.registry)

(* --- introspection --- *)

let registry t = t.registry
let tuner t = t.tuner
let metrics t = t.metrics
let generation t = Registry.current_generation t.registry
let publishes t = Metrics.value t.c_publishes
let epochs_freed t = Metrics.value t.c_epochs_freed
let rollbacks t = Metrics.value t.c_rollbacks
let feedback_drained t = Metrics.value t.c_drained

let feedback_dropped t =
  let fb = t.feedback in
  Mutex.lock fb.fb_lock;
  let n = fb.fb_dropped in
  Mutex.unlock fb.fb_lock;
  n
