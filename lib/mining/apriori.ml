module Label_path = Repro_pathexpr.Label_path

(* count the queries containing each candidate (set semantics per query) *)
let count_candidates candidates queries =
  let counts = Hashtbl.create (List.length candidates) in
  List.iter (fun c -> Hashtbl.replace counts c (ref 0)) candidates;
  List.iter
    (fun q ->
      List.iter
        (fun c ->
          match Hashtbl.find_opt counts c with
          | Some r when Label_path.is_subpath ~sub:c q -> incr r
          | Some _ | None -> ())
        candidates)
    queries;
  counts

let drop_first p = match p with [] -> [] | _ :: tl -> tl

let rec drop_last p =
  match p with [] | [ _ ] -> [] | x :: tl -> x :: drop_last tl

let rec last_label p =
  match p with
  | [] -> invalid_arg "Apriori.last_label: empty path"
  | [ x ] -> x
  | _ :: tl -> last_label tl

let levels ~min_support queries =
  let k =
    Path_miner.support_count ~min_support ~n_queries:(List.length queries)
  in
  let filter_frequent candidates =
    let counts = count_candidates candidates queries in
    List.filter (fun c -> !(Hashtbl.find counts c) >= k) candidates
  in
  (* level 1: all distinct labels in the workload *)
  let singles =
    List.concat_map (fun q -> List.map (fun l -> [ l ]) q) queries
    |> List.sort_uniq Label_path.compare
  in
  let l1 = filter_frequent singles in
  let rec go acc prev =
    if prev = [] then List.rev acc
    else begin
      (* candidates: p ++ [last q] for frequent p, q of the previous level
         overlapping on all but their outer labels *)
      let prev_set = Hashtbl.create (List.length prev) in
      List.iter (fun p -> Hashtbl.replace prev_set p ()) prev;
      let candidates =
        List.concat_map
          (fun p ->
            let p_tail = drop_first p in
            List.filter_map
              (fun q ->
                if Label_path.equal p_tail (drop_last q) then
                  Some (p @ [ last_label q ])
                else None)
              prev)
          prev
        |> List.sort_uniq Label_path.compare
        (* prune: every contiguous (k-1)-subpath must be frequent; with the
           overlap join only the two outer windows need checking, and both
           are by construction, so no further pruning is required *)
      in
      let next = filter_frequent candidates in
      if next = [] then List.rev acc else go (next :: acc) next
    end
  in
  Array.of_list (go [ l1 ] l1)

let frequent ~min_support queries =
  levels ~min_support queries |> Array.to_list |> List.concat
  |> List.sort Label_path.compare
