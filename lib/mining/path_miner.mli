(** Frequently-used-path extraction — the naive one-scan algorithm.

    The support of a label path [p] is the fraction of workload queries that
    contain [p] as a contiguous subpath (Section 4). A query containing [p]
    several times still counts once. This standalone miner mirrors the
    counting that {!Repro_apex.Hash_tree} performs in place and serves as
    its test oracle and as the ablation baseline. *)

val count_subpaths :
  ?max_length:int ->
  Repro_pathexpr.Label_path.t list ->
  (Repro_pathexpr.Label_path.t * int) list
(** For every distinct subpath occurring in the workload (up to
    [max_length], default unlimited), the number of queries containing it.
    Sorted by path. *)

val support_count : min_support:float -> n_queries:int -> int
(** The integer count a path needs to be frequent: the smallest [k] with
    [k >= min_support * n_queries] as a real-number inequality (compared
    with [>=], matching the paper's example where 2 of 3 queries meet
    minSup 0.6). Products whose float rounding lands within 1e-9 of an
    integer are snapped to it, so a count exactly at the boundary — e.g.
    3 of 30 queries at minSup 0.1, where the product is not representable —
    is frequent regardless of which side the rounding error fell on. *)

val frequent :
  min_support:float ->
  Repro_pathexpr.Label_path.t list ->
  Repro_pathexpr.Label_path.t list
(** Label paths with support ≥ [min_support], sorted. *)

val required :
  min_support:float ->
  all_labels:Repro_graph.Label.t list ->
  Repro_pathexpr.Label_path.t list ->
  Repro_pathexpr.Label_path.t list
(** Definition 6: the frequent paths plus every length-1 path of the data's
    label set. *)
