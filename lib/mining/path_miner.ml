module Label_path = Repro_pathexpr.Label_path

let distinct_subpaths ?max_length q =
  let subs = Label_path.subpaths q in
  match max_length with
  | None -> subs
  | Some k -> List.filter (fun p -> List.length p <= k) subs

let count_subpaths ?max_length queries =
  let counts : (Label_path.t, int ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun q ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt counts p with
          | Some r -> incr r
          | None -> Hashtbl.add counts p (ref 1))
        (distinct_subpaths ?max_length q))
    queries;
  Hashtbl.fold (fun p r acc -> (p, !r) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Label_path.compare a b)

let support_count ~min_support ~n_queries =
  (* The smallest integer count satisfying count >= min_support * n_queries
     as a real-number inequality. The float product rounds — 0.1 *. 30. is
     2.9999999999999996, 0.7 *. 10. is 7.000000000000001 — so comparing raw
     counts against it moves paths sitting exactly on the boundary to
     whichever side the representation error happened to land, and a path
     at the boundary flaps in and out of the index as the window size
     drifts. Snap products within one part in 10^9 of an integer back to
     that integer, then take the ceiling.

     An empty workload supports nothing: treat it as one phantom query so a
     positive minSup prunes every path. *)
  let exact = min_support *. float_of_int (max 1 n_queries) in
  let nearest = Float.round exact in
  let k =
    if Float.abs (exact -. nearest) <= 1e-9 *. Float.max 1. (Float.abs exact) then nearest
    else Float.ceil exact
  in
  int_of_float k

let frequent ~min_support queries =
  let k = support_count ~min_support ~n_queries:(List.length queries) in
  count_subpaths queries
  |> List.filter (fun (_, c) -> c >= k)
  |> List.map fst

let required ~min_support ~all_labels queries =
  let freq = frequent ~min_support queries in
  let singles = List.map (fun l -> [ l ]) all_labels in
  List.sort_uniq Label_path.compare (freq @ singles)
