module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
module Cost = Repro_storage.Cost
module Query = Repro_pathexpr.Query

type t = {
  graph : G.t;
  trie : Patricia.t;
  block_of : int array;  (* trie node id -> block id *)
  n_blocks : int;
}

let separator = '\000'

let designator l =
  if l < 0 || l > 254 then invalid_arg "Index_fabric: more than 255 distinct labels";
  Char.chr (l + 1)

(* document-tree parent: the first incoming edge; reference edges are
   created after the tree walk, so they always come later *)
let tree_parent g v =
  let result = ref None in
  G.iter_in g v (fun l u -> if !result = None then result := Some (l, u));
  !result

let key_of_path labels value =
  let buf = Buffer.create (List.length labels + String.length value + 1) in
  List.iter (fun l -> Buffer.add_char buf (designator l)) labels;
  Buffer.add_char buf separator;
  Buffer.add_string buf value;
  Buffer.contents buf

let root_path g v =
  let rec climb v acc =
    match tree_parent g v with
    | Some (l, u) -> climb u (l :: acc)
    | None -> acc
  in
  climb v []

let build ?(block_size = 8192) g =
  let trie = Patricia.create () in
  for v = 0 to G.n_nodes g - 1 do
    match G.value g v with
    | Some value -> Patricia.insert trie (key_of_path (root_path g v) value) v
    | None -> ()
  done;
  (* pack trie nodes into blocks depth-first: a node costs its compressed
     edge plus a fixed header, and a block never splits a node *)
  let block_of = Array.make (Patricia.n_nodes trie) 0 in
  let block = ref 0 in
  let used = ref 0 in
  Patricia.iter_nodes trie ~enter:(fun ~id ~depth:_ ~edge ~key_prefix:_ payloads ->
      let size = String.length edge + 24 + (8 * List.length payloads) in
      if !used + size > block_size && !used > 0 then begin
        incr block;
        used := 0
      end;
      used := !used + size;
      block_of.(id) <- !block);
  { graph = g; trie; block_of; n_blocks = !block + 1 }

let n_keys t = Patricia.n_keys t.trie
let n_trie_nodes t = Patricia.n_nodes t.trie
let n_blocks t = t.n_blocks

let charge_block cost seen block =
  match cost with
  | Some c ->
    if not (Hashtbl.mem seen block) then begin
      Hashtbl.add seen block ();
      c.Cost.trie_pages <- c.Cost.trie_pages + 1
    end
  | None -> ()

(* The layered-fabric traversal: the designator (label-path) region of the
   trie is scanned exhaustively — on regularly structured data it is tiny,
   on irregular data it is most of the index, which is the paper's
   explanation for the Fabric's Figure 15 behaviour — while a value subtree
   is entered only when the designator prefix ends with the query path and
   its bytes still prefix the query value. *)
let eval_q3 ?cost t path value =
  let suffix =
    (* one pass over the path; String.init + List.nth is O(n^2) *)
    path |> List.map designator |> List.to_seq |> String.of_seq
  in
  let seen_blocks = Hashtbl.create 64 in
  let results = Repro_util.Vec.create () in
  let ls = String.length suffix in
  Patricia.scan t.trie ~visit:(fun ~id ~key_prefix ~payloads ->
      (match cost with
       | Some c -> c.Cost.trie_node_visits <- c.Cost.trie_node_visits + 1
       | None -> ());
      charge_block cost seen_blocks t.block_of.(id);
      match String.index_opt key_prefix separator with
      | None -> `Descend (* still in the designator region *)
      | Some i ->
        let ll = i in
        if ls <= ll && String.equal (String.sub key_prefix (ll - ls) ls) suffix then begin
          let vlen = String.length key_prefix - i - 1 in
          let vq = String.length value in
          if vlen <= vq && String.equal (String.sub key_prefix (i + 1) vlen)
                             (String.sub value 0 vlen)
          then begin
            if vlen = vq && payloads <> [] then
              List.iter (fun nid -> Repro_util.Vec.push results nid) payloads;
            `Descend
          end
          else `Prune
        end
        else `Prune);
  Repro_util.Int_sorted.of_unsorted (Repro_util.Vec.to_array results)

let lookup_rooted ?cost t path value =
  let key = key_of_path path value in
  let payloads, visited = Patricia.find_with_path t.trie key in
  (match cost with
   | Some c ->
     c.Cost.trie_node_visits <- c.Cost.trie_node_visits + List.length visited;
     let seen = Hashtbl.create 8 in
     List.iter (fun id -> charge_block (Some c) seen t.block_of.(id)) visited
   | None -> ());
  Repro_util.Int_sorted.of_unsorted (Array.of_list payloads)

let eval_query ?cost t q =
  match q with
  | Query.Qtype3 (steps, value) ->
    let tbl = G.labels t.graph in
    let rec resolve acc = function
      | [] -> Some (List.rev acc)
      | s :: rest ->
        (match Label.find tbl s with
         | Some l -> resolve (l :: acc) rest
         | None -> None)
    in
    (match resolve [] steps with
     | Some path -> Some (eval_q3 ?cost t path value)
     | None -> Some [||])
  | Query.Qtype1 _ | Query.Qtype2 _ -> None
