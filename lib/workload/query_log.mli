(** The query workload log.

    Section 4 assumes "a database system keeps the set (= workload) of
    queries (= label paths)"; this is that component: a bounded ring of the
    most recent query paths, convertible to miner input. Bounding the log
    gives the workload a sliding window, so old interests age out of the
    index on the next refresh. *)

type t

val create : capacity:int -> t
(** Keep at most [capacity] most-recent entries (older ones are
    overwritten). @raise Invalid_argument when capacity is not positive. *)

val record : t -> Repro_pathexpr.Label_path.t -> unit
(** Log one executed query's label path. *)

val record_query :
  ?q2_paths:Repro_pathexpr.Label_path.t list ->
  t -> Repro_graph.Label.table -> Repro_pathexpr.Query.t -> unit
(** Log a query: QTYPE1 paths are recorded as-is, QTYPE3 paths without
    their value predicate.  QTYPE2 queries record the label paths the
    rewrite search matched when the evaluator supplies them as
    [q2_paths]; otherwise the minimal [a.b] suffix path is recorded.
    Unknown-label queries are skipped (they contribute no label
    path). *)

val length : t -> int
(** Entries currently held (≤ capacity). *)

val total_recorded : t -> int
(** Entries ever recorded, including overwritten ones. *)

val to_workload : t -> Repro_pathexpr.Label_path.t list
(** The current window, oldest first. *)

val clear : t -> unit
