(** The query workload log.

    Section 4 assumes "a database system keeps the set (= workload) of
    queries (= label paths)"; this is that component: a bounded ring of the
    most recent query paths, convertible to miner input. Bounding the log
    gives the workload a sliding window, so old interests age out of the
    index on the next refresh. *)

type t

val create : capacity:int -> t
(** Keep at most [capacity] most-recent entries (older ones are
    overwritten). @raise Invalid_argument when capacity is not positive. *)

val record : t -> Repro_pathexpr.Label_path.t -> unit
(** Log one executed query's label path. *)

val paths_of_query :
  ?q2_paths:Repro_pathexpr.Label_path.t list ->
  Repro_graph.Label.table -> Repro_pathexpr.Query.t ->
  Repro_pathexpr.Label_path.t list
(** The label paths one executed query contributes to the workload — at
    most one entry, so a query contributes support exactly once. QTYPE1
    paths as-is, QTYPE3 paths without their value predicate. For QTYPE2
    the single most informative matched rewriting (the longest the
    evaluator reported in [q2_paths], ties broken by path order; mining
    counts contiguous subpaths, so nested shorter rewritings still
    accrue); without evaluator feedback, the minimal [a.b] suffix.
    Unknown-label queries contribute no path. *)

val record_query :
  ?q2_paths:Repro_pathexpr.Label_path.t list ->
  t -> Repro_graph.Label.table -> Repro_pathexpr.Query.t -> unit
(** Log {!paths_of_query} — one {!record} per returned path. *)

val length : t -> int
(** Entries currently held (≤ capacity). *)

val total_recorded : t -> int
(** Entries ever recorded, including overwritten ones. *)

val to_workload : t -> Repro_pathexpr.Label_path.t list
(** The current window, oldest first. *)

val clear : t -> unit
