(** Seeded random data-update workloads.

    Generates a sequence of {!Repro_update.Update.op} valid for sequential
    replay from a starting graph: each operation is drawn against the
    graph as evolved by the ones before it (inserts can graft below
    freshly inserted elements, deletes can remove them again, reference
    ops see the current reference set). Fragment tags are sampled from the
    document's existing element labels plus a small pool of fresh ones, so
    updates both reinforce existing label paths and introduce new ones —
    the mix the incremental maintenance engine must survive. *)

val gen_ops :
  ?p_insert:float ->
  ?p_delete:float ->
  ?p_ins_ref:float ->
  ?p_del_ref:float ->
  ?max_depth:int ->
  seed:int ->
  n:int ->
  Repro_graph.Data_graph.t ->
  Repro_update.Update.op list * Repro_graph.Data_graph.t
(** [gen_ops ~seed ~n g] draws up to [n] operations (fewer when a draw
    finds no candidate, e.g. deleting from a nearly empty document) and
    returns them with the graph they produce. Deterministic in [seed] and
    [g]. Default mix: 45% subtree insert (fragments of depth
    ≤ [max_depth], default 3), 25% subtree delete (kept away from the
    root while the document is small), 20% reference insert, 10%
    reference delete; a kind with no candidates falls back to the next. *)
