type t = {
  ring : Repro_pathexpr.Label_path.t array;
  capacity : int;
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Query_log.create: capacity must be positive";
  { ring = Array.make capacity []; capacity; total = 0 }

let record t path =
  t.ring.(t.total mod t.capacity) <- path;
  t.total <- t.total + 1

let paths_of_query ?(q2_paths = []) labels q =
  let resolve steps =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | s :: tl ->
        (match Repro_graph.Label.find labels s with
         | Some l -> go (l :: acc) tl
         | None -> None)
    in
    go [] steps
  in
  match q with
  | Repro_pathexpr.Query.Qtype1 steps | Repro_pathexpr.Query.Qtype3 (steps, _) ->
    (match resolve steps with
     | Some p when not (List.is_empty p) -> [ p ]
     | Some _ | None -> [])
  | Repro_pathexpr.Query.Qtype2 (a, b) ->
    (* Partial-match queries carry workload signal too: the paths the
       rewrite search actually matched (when the evaluator reports them)
       are the frequently-used paths refresh should extend the index
       with. But one query must contribute support exactly once — logging
       every matched rewriting (or a fallback entry alongside them) counts
       a single Q2 query as several workload queries, inflating both its
       paths' support and the query total every other path is measured
       against. Keep only the most informative rewriting: the longest
       (ties broken by path order — mining counts every contiguous subpath
       of a logged path, so nested shorter rewritings still accrue).
       Without evaluator feedback, fall back to the minimal [a.b] suffix
       so Q2-heavy workloads still accumulate support. *)
    let best =
      List.fold_left
        (fun best p ->
          if List.is_empty p then best
          else
            match best with
            | None -> Some p
            | Some b ->
              let c = Int.compare (List.length p) (List.length b) in
              if c > 0 || (c = 0 && Repro_pathexpr.Label_path.compare p b < 0)
              then Some p
              else best)
        None q2_paths
    in
    (match best with
     | Some p -> [ p ]
     | None ->
       (match resolve [ a; b ] with Some p -> [ p ] | None -> []))

let record_query ?q2_paths t labels q =
  List.iter (record t) (paths_of_query ?q2_paths labels q)

let length t = min t.total t.capacity
let total_recorded t = t.total

let to_workload t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.total mod t.capacity in
  List.init n (fun i -> t.ring.((start + i) mod t.capacity))

let clear t =
  (* Blank the slots too: a cleared log must not pin the old paths
     (the ring otherwise retains up to [capacity] label paths). *)
  Array.fill t.ring 0 t.capacity [];
  t.total <- 0
