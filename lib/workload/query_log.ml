type t = {
  ring : Repro_pathexpr.Label_path.t array;
  capacity : int;
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Query_log.create: capacity must be positive";
  { ring = Array.make capacity []; capacity; total = 0 }

let record t path =
  t.ring.(t.total mod t.capacity) <- path;
  t.total <- t.total + 1

let record_query ?(q2_paths = []) t labels q =
  let resolve steps =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | s :: tl ->
        (match Repro_graph.Label.find labels s with
         | Some l -> go (l :: acc) tl
         | None -> None)
    in
    go [] steps
  in
  match q with
  | Repro_pathexpr.Query.Qtype1 steps | Repro_pathexpr.Query.Qtype3 (steps, _) ->
    (match resolve steps with Some p when p <> [] -> record t p | Some _ | None -> ())
  | Repro_pathexpr.Query.Qtype2 (a, b) ->
    (* Partial-match queries carry workload signal too: the paths the
       rewrite search actually matched (when the evaluator reports them)
       are the frequently-used paths refresh should extend the index
       with.  Without evaluator feedback, fall back to the minimal
       [a.b] suffix so Q2-heavy workloads still accumulate support. *)
    (match q2_paths with
     | _ :: _ -> List.iter (fun p -> if p <> [] then record t p) q2_paths
     | [] ->
       (match resolve [ a; b ] with
        | Some p -> record t p
        | None -> ()))

let length t = min t.total t.capacity
let total_recorded t = t.total

let to_workload t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.total mod t.capacity in
  List.init n (fun i -> t.ring.((start + i) mod t.capacity))

let clear t =
  (* Blank the slots too: a cleared log must not pin the old paths
     (the ring otherwise retains up to [capacity] label paths). *)
  Array.fill t.ring 0 t.capacity [];
  t.total <- 0
