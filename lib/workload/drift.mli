(** Phased drifting workloads for exercising the adaptation loop.

    Three phases over one data graph, each a seeded query stream whose
    composition is engineered around a support threshold [minsup] (the
    fraction of queries a path must appear in to clear mining):

    - {b hot_churn} — which expensive paths are hottest rotates every
      quarter of the phase (3.0x/2.0x minsup), so the hot labels churn
      while every rotated path stays warm;
    - {b day_night} — a diurnal pair alternates between 2.0x (day) and
      0.7x (night) every sixth of the phase, night first;
    - {b flash_crowd} — a stationary background with one path spiking to
      8x the threshold for the first fifth, then vanishing entirely.

    Every phase keeps a set of {e boundary} paths at ~0.9x [minsup] —
    their raw window counts straddle the threshold, so support-only
    mining flaps them in and out on refresh noise — and four {e
    chatter} paths at ~2x [minsup] over light-traffic labels, which
    support-only mining indexes forever and cost-benefit scoring
    correctly declines.

    The cast is selected from the weight-sorted simple-path pool so that
    all members are pairwise subpath-disjoint (no shared contiguous
    subpath of length >= 2): mining and the policy both attribute a query
    to every contiguous subpath of its path, so overlapping members would
    couple their support signals and wash out the engineered levels.
    Queries are plain QTYPE1 over paths enumerated from the graph, so
    every query has instances and a naive-oracle answer. Deterministic
    for a given (graph, seed). *)

type phase = {
  ph_name : string;
  ph_queries : Repro_pathexpr.Query.t array;
}

type cast = {
  exp_rot : Repro_pathexpr.Label_path.t list;  (** 4 rotating hot/warm *)
  exp_boundary : Repro_pathexpr.Label_path.t list;  (** 2 at 0.9x, expensive *)
  diurnal : Repro_pathexpr.Label_path.t list;  (** 2 swinging 2.0x/0.7x *)
  crowd : Repro_pathexpr.Label_path.t list;  (** 1 flash-crowd path *)
  chatter : Repro_pathexpr.Label_path.t list;  (** 4 at 2x, cheap *)
  cheap_boundary : Repro_pathexpr.Label_path.t list;  (** 2 at 0.9x, cheap *)
  noise : Repro_pathexpr.Label_path.t list;  (** 4 at 0.2x *)
}

val cast :
  ?measure:(Repro_pathexpr.Label_path.t -> float * int) ->
  Repro_graph.Data_graph.t ->
  cast
(** The engineered path roles for a graph — deterministic; the benches
    and tests use it to check which roles each miner actually indexed.
    Without [measure], the expensive/cheap tiers are split by a label
    frequency proxy. With [measure p = (unit_cost, result_size)] — the
    drift bench passes one that evaluates each candidate against APEX0 —
    expensive roles take the highest measured cost and cheap roles the
    lowest-cost candidates whose result keeps at least 32 instances (so
    their extents still occupy index pages).
    @raise Invalid_argument when the graph yields too few
    subpath-disjoint candidates (the pool must reach 24). *)

val phases :
  ?seed:int ->
  ?n_per_phase:int ->
  ?measure:(Repro_pathexpr.Label_path.t -> float * int) ->
  minsup:float ->
  Repro_graph.Data_graph.t ->
  phase list
(** The three drift phases (default seed 42, 4800 queries per phase).
    Mixes are normalized to total draw mass 1 with a filler of
    single-label queries, so the engineered levels are absolute
    fractions of the stream.
    [minsup] must match the tuner's [min_support] for the boundary
    engineering to land on the threshold.
    @raise Invalid_argument as {!cast}. *)

val stationary :
  ?seed:int ->
  ?n:int ->
  ?measure:(Repro_pathexpr.Label_path.t -> float * int) ->
  minsup:float ->
  Repro_graph.Data_graph.t ->
  Repro_pathexpr.Query.t array
(** One stationary stream from the warm background mix (rotating set all
    warm + boundary + chatter + noise), for convergence and no-flap
    checks. *)
