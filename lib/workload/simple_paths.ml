module G = Repro_graph.Data_graph

(* Enumeration walks the determinized label structure (the same subset
   construction that underlies the strong DataGuide): a state is a set of
   data nodes, transitions group the states' outgoing edges by label. Paths
   from the root state then correspond one-to-one to distinct label paths of
   the data. States are memoized so the (possibly cyclic) automaton is built
   at most once. *)

module Node_set = struct
  type t = int array (* strictly increasing *)

  let equal = Repro_util.Int_sorted.equal

  (* Not [Hashtbl.hash]: the polymorphic hash only inspects a bounded
     prefix of the array, so large DataGuide states differing only in
     their tails collapse into the same bucket chains (the apex_lint L1
     rationale).  FNV-1a folded over every element instead. *)
  let hash (t : t) =
    let h = ref 0x811c9dc5 in
    Array.iter
      (fun x ->
        let x = ref x in
        for _ = 0 to 7 do
          h := (!h lxor (!x land 0xff)) * 0x01000193 land 0x3fffffff;
          x := !x lsr 8
        done)
      t;
    !h
end

module State_tbl = Hashtbl.Make (Node_set)

let successors g (state : Node_set.t) =
  let by_label : (int, int Repro_util.Vec.t) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun u ->
      G.iter_out g u (fun l v ->
          match Hashtbl.find_opt by_label l with
          | Some vec -> Repro_util.Vec.push vec v
          | None ->
            let vec = Repro_util.Vec.create () in
            Repro_util.Vec.push vec v;
            Hashtbl.add by_label l vec))
    state;
  Hashtbl.fold
    (fun l vec acc -> (l, Repro_util.Int_sorted.of_unsorted (Repro_util.Vec.to_array vec)) :: acc)
    by_label []
  |> List.sort (fun (l1, _) (l2, _) -> compare l1 l2)

let enumerate ?(max_length = 16) ?(limit = 100_000) g =
  let memo : (int * Node_set.t) list State_tbl.t = State_tbl.create 256 in
  let out = Repro_util.Vec.create () in
  let count = ref 0 in
  let rec go state depth rev_path =
    if depth < max_length && !count < limit then begin
      let succ =
        match State_tbl.find_opt memo state with
        | Some s -> s
        | None ->
          let s = successors g state in
          State_tbl.add memo state s;
          s
      in
      List.iter
        (fun (l, next) ->
          if !count < limit then begin
            let rev_path = l :: rev_path in
            incr count;
            Repro_util.Vec.push out (List.rev rev_path);
            go next (depth + 1) rev_path
          end)
        succ
    end
  in
  go [| G.root g |] 0 [];
  List.of_seq (Array.to_seq (Repro_util.Vec.to_array out))

let random_walk rand ?(max_length = 20) ?(stop_probability = 0.25) ?(attribute_bias = 1.0) g =
  if G.out_degree g (G.root g) = 0 then
    invalid_arg "Simple_paths.random_walk: root has no outgoing edges";
  let labels = G.labels g in
  let pick_edge u =
    let deg = G.out_degree g u in
    if deg = 0 then None
    else if attribute_bias = 1.0 then begin
      let k = Random.State.int rand deg in
      let result = ref None in
      let i = ref 0 in
      G.iter_out g u (fun l v ->
          if !i = k then result := Some (l, v);
          incr i);
      !result
    end
    else begin
      (* weighted choice: attribute edges carry [attribute_bias] weight, so
         walks favour the reference chains that dominate the set of distinct
         simple path expressions on graph-shaped data *)
      let weight l = if Repro_graph.Label.is_attribute labels l then attribute_bias else 1.0 in
      let total = G.fold_out g u (fun acc l _ -> acc +. weight l) 0.0 in
      let target = Random.State.float rand total in
      let acc = ref 0.0 in
      let result = ref None in
      G.iter_out g u (fun l v ->
          if !result = None then begin
            acc := !acc +. weight l;
            if !acc > target then result := Some (l, v)
          end);
      !result
    end
  in
  let rec go u steps len =
    match pick_edge u with
    | None -> List.rev steps
    | Some (l, v) ->
      let steps = (l, v) :: steps in
      if len + 1 >= max_length || Random.State.float rand 1.0 < stop_probability then
        List.rev steps
      else go v steps (len + 1)
  in
  go (G.root g) [] 0

let walk_to_value rand ?(max_length = 20) ?(max_attempts = 64) g =
  let rec attempt k =
    if k = 0 then None
    else begin
      (* walk with no early stopping: run until a dead end, which in the
         Section 3 encoding is a value leaf or an empty element *)
      let steps = random_walk rand ~max_length ~stop_probability:0.0 g in
      match List.rev steps with
      | (_, last) :: _ ->
        (match G.value g last with
         | Some v -> Some (steps, v)
         | None -> attempt (k - 1))
      | [] -> attempt (k - 1)
    end
  in
  attempt max_attempts
