module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
module U = Repro_update.Update
module X = Repro_xml.Xml_tree

(* the document (tree) in-edge of a node is its first incoming edge *)
let tree_in_edge g v =
  let res = ref None in
  G.iter_in g v (fun l w -> if Option.is_none !res then res := Some (l, w));
  !res

(* element nodes of the document tree, in document order (root first) *)
let element_nodes g =
  let labels = G.labels g in
  let n = G.n_nodes g in
  let seen = Array.make (Int.max 1 n) false in
  let out = ref [] in
  let rec visit u =
    out := u :: !out;
    G.iter_out g u (fun l v ->
        if (not seen.(v)) && not (Label.is_attribute labels l) then
          match tree_in_edge g v with
          | Some (l', w) when Int.equal l' l && Int.equal w u ->
            seen.(v) <- true;
            visit v
          | Some _ | None -> ())
  in
  seen.(G.root g) <- true;
  visit (G.root g);
  List.rev !out

(* every (owner, attr-name, target) reference triple currently encoded *)
let ref_triples g =
  let labels = G.labels g in
  let idref : (Label.t, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace idref l ()) (G.idref_labels g);
  let out = ref [] in
  if Hashtbl.length idref > 0 then
    G.iter_edges g (fun u l a ->
        if Hashtbl.mem idref l then
          let name = Label.to_string labels l in
          let name = String.sub name 1 (String.length name - 1) in
          G.iter_out g a (fun _ target -> out := (u, name, target) :: !out));
  List.rev !out

let pick rng = function
  | [] -> invalid_arg "Update_workload.pick: empty"
  | l ->
    let a = Array.of_list l in
    a.(Random.State.int rng (Array.length a))

let fresh_tags = [ "upd0"; "upd1"; "upd2"; "upd3" ]

let tag_pool g =
  let labels = G.labels g in
  let acc = ref fresh_tags in
  for l = Label.count labels - 1 downto 0 do
    let name = Label.to_string labels l in
    if String.length name > 0 && name.[0] <> '@' && name.[0] <> '<' then acc := name :: !acc
  done;
  !acc

let rec gen_fragment rng tags ~depth =
  let tag = pick rng tags in
  if depth <= 0 || Random.State.float rng 1.0 < 0.35 then
    X.element ~children:[ X.Text (Printf.sprintf "v%d" (Random.State.int rng 64)) ] tag
  else
    let n = 1 + Random.State.int rng 3 in
    X.element
      ~children:(List.init n (fun _ -> X.Element (gen_fragment rng tags ~depth:(depth - 1))))
      tag

let gen_op ~p_insert ~p_delete ~p_ins_ref ~max_depth rng g =
  let elements = element_nodes g in
  let root = G.root g in
  let parents = List.filter (fun v -> Option.is_none (G.value g v)) elements in
  let deletable = List.filter (fun v -> not (Int.equal v root)) elements in
  let try_insert () =
    match parents with
    | [] -> None
    | _ ->
      let parent = pick rng parents in
      let depth = 1 + Random.State.int rng (Int.max 1 max_depth) in
      Some (U.Insert_subtree { parent; fragment = gen_fragment rng (tag_pool g) ~depth })
  in
  let try_delete () =
    (* keep small documents alive: deleting down to a bare root starves
       every other generator *)
    if List.length elements <= 4 then None
    else Some (U.Delete_subtree { node = pick rng deletable })
  in
  let try_ins_ref () =
    match (parents, deletable) with
    | [], _ | _, [] -> None
    | _ ->
      let owner = pick rng parents and target = pick rng deletable in
      let attr =
        let names =
          List.sort_uniq String.compare (List.map (fun (_, name, _) -> name) (ref_triples g))
        in
        if names <> [] && Random.State.bool rng then pick rng names else "ref"
      in
      Some (U.Insert_ref { owner; attr; target })
  in
  let try_del_ref () =
    match ref_triples g with
    | [] -> None
    | refs ->
      let owner, attr, target = pick rng refs in
      Some (U.Delete_ref { owner; attr; target })
  in
  let roll = Random.State.float rng 1.0 in
  let order =
    if roll < p_insert then [ try_insert; try_delete; try_ins_ref; try_del_ref ]
    else if roll < p_insert +. p_delete then [ try_delete; try_insert; try_ins_ref; try_del_ref ]
    else if roll < p_insert +. p_delete +. p_ins_ref then
      [ try_ins_ref; try_del_ref; try_insert; try_delete ]
    else [ try_del_ref; try_ins_ref; try_insert; try_delete ]
  in
  List.fold_left (fun acc f -> match acc with Some _ -> acc | None -> f ()) None order

let gen_ops ?(p_insert = 0.45) ?(p_delete = 0.25) ?(p_ins_ref = 0.2) ?(p_del_ref = 0.1)
    ?(max_depth = 3) ~seed ~n g0 =
  ignore p_del_ref;
  let rng = Random.State.make [| 0x9e3779b9; seed |] in
  let g = ref g0 in
  let ops = ref [] in
  for _ = 1 to n do
    match gen_op ~p_insert ~p_delete ~p_ins_ref ~max_depth rng !g with
    | None -> ()
    | Some op ->
      ops := op :: !ops;
      g := (U.apply_graph !g op).U.graph
  done;
  (List.rev !ops, !g)
