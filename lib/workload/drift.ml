module Label = Repro_graph.Label
module Label_path = Repro_pathexpr.Label_path
module Query = Repro_pathexpr.Query
module G = Repro_graph.Data_graph

type phase = {
  ph_name : string;
  ph_queries : Query.t array;
}

type cast = {
  exp_rot : Label_path.t list;
  exp_boundary : Label_path.t list;
  diurnal : Label_path.t list;
  crowd : Label_path.t list;
  chatter : Label_path.t list;
  cheap_boundary : Label_path.t list;
  noise : Label_path.t list;
}

(* A candidate query path with the signals the phase mixes are engineered
   from: the instance count of its labels (how much extent/join work a
   query over it streams — the cost proxy) and its rendered steps. *)
type candidate = {
  c_path : Label_path.t;
  c_steps : string list;
  c_weight : int;  (* summed per-label edge counts: streaming-cost proxy *)
}

let candidates g =
  let labels = G.labels g in
  (* per-label edge counts: a query along a path streams the extents of
     (suffixes of) its labels, so label frequency is a faithful
     how-expensive-is-this-query proxy that needs no evaluation *)
  let freq : (Label.t, int ref) Hashtbl.t = Hashtbl.create 64 in
  G.iter_edges g (fun _ l _ ->
      match Hashtbl.find_opt freq l with
      | Some r -> incr r
      | None -> Hashtbl.add freq l (ref 1));
  let weight p =
    List.fold_left
      (fun acc l ->
        acc + match Hashtbl.find_opt freq l with Some r -> !r | None -> 0)
      0 p
  in
  Simple_paths.enumerate ~max_length:4 g
  |> List.filter_map (fun p ->
         if List.length p < 2 then None
         else begin
           let steps = List.map (Label.to_string labels) p in
           (* dereference steps don't render into QTYPE1 strings *)
           if List.exists (fun s -> String.length s > 0 && s.[0] = '@') steps
           then None
           else Some { c_path = p; c_steps = steps; c_weight = weight p }
         end)
  |> List.sort (fun a b ->
         let c = Int.compare b.c_weight a.c_weight in
         if c <> 0 then c else Label_path.compare a.c_path b.c_path)

(* --- cast selection ---

   Every selected path must be pairwise subpath-disjoint from every other
   (no contiguous subpath of length >= 2 in common, containment included):
   the miner and the policy both attribute a query to every contiguous
   subpath of its path, so two overlapping cast members would couple their
   support signals and wash out the engineered traffic levels (a boundary
   path that is also a subpath of a hot path is not at the boundary). *)

let path_key p = String.concat "." (List.map string_of_int p)

let sub_keys p =
  Label_path.subpaths p
  |> List.filter (fun s -> List.length s >= 2)
  |> List.map path_key

let pick_disjoint used pool n =
  let rec go acc k = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | c :: tl ->
      let keys = sub_keys c.c_path in
      if List.exists (Hashtbl.mem used) keys then go acc k tl
      else begin
        List.iter (fun s -> Hashtbl.replace used s ()) keys;
        go (c :: acc) (k - 1) tl
      end
  in
  let picked = go [] n pool in
  if List.length picked < n then
    invalid_arg "Drift: graph yields too few subpath-disjoint candidate paths";
  picked

type roles = {
  r_exp_rot : candidate list;
  r_exp_boundary : candidate list;
  r_diurnal : candidate list;
  r_crowd : candidate list;
  r_chatter : candidate list;
  r_cheap_boundary : candidate list;
  r_noise : candidate list;
}

(* Without [measure], expensive roles come from the head of the
   weight-sorted pool and cheap roles from the third quartile — a proxy
   that needs no query evaluation. With [measure] (the drift bench passes
   one that actually evaluates each candidate against APEX0), expensive
   roles are the highest measured per-query cost and cheap roles the
   lowest-cost candidates whose result still has at least 32 instances:
   the cheap roles must remain cheap to *query* for the score gate to
   decline them, yet their extents must still occupy measurable index
   pages for the index-size comparison to mean anything. *)
let select ?measure g =
  let pool = candidates g in
  let n = List.length pool in
  if n < 24 then invalid_arg "Drift: graph too small to stage drift phases";
  let used : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let drop k l = List.filteri (fun i _ -> i >= k) l in
  let expensive_pool, cheap_pool, cheap_tail, noise_pool =
    match measure with
    | None -> (pool, drop (n / 2) pool, drop (n / 2) pool, drop (n / 4) pool)
    | Some f ->
      let measured = List.map (fun c -> (c, f c.c_path)) pool in
      let by_cost_desc =
        List.sort
          (fun (a, (ca, _)) (b, (cb, _)) ->
            let c = Float.compare cb ca in
            if c <> 0 then c else Label_path.compare a.c_path b.c_path)
          measured
      in
      let expensive = List.map fst by_cost_desc in
      let cheap =
        List.rev by_cost_desc
        |> List.filter (fun (_, (_, size)) -> size >= 32)
        |> List.map fst
      in
      (* cheap_tail: cost-ascending with no result-size floor — boundary
         paths never pass the policy's support gate, so their extent size
         does not matter, only that support-only mining flaps them *)
      (expensive, cheap, List.rev_map fst by_cost_desc, drop (n / 4) expensive)
  in
  let r_exp_rot = pick_disjoint used expensive_pool 4 in
  let r_exp_boundary = pick_disjoint used expensive_pool 2 in
  let r_diurnal = pick_disjoint used expensive_pool 2 in
  let r_crowd = pick_disjoint used expensive_pool 1 in
  let r_chatter = pick_disjoint used cheap_pool 4 in
  let r_cheap_boundary = pick_disjoint used cheap_tail 2 in
  let r_noise = pick_disjoint used noise_pool 4 in
  { r_exp_rot; r_exp_boundary; r_diurnal; r_crowd; r_chatter; r_cheap_boundary;
    r_noise }

let cast ?measure g =
  let c = select ?measure g in
  let paths = List.map (fun x -> x.c_path) in
  { exp_rot = paths c.r_exp_rot;
    exp_boundary = paths c.r_exp_boundary;
    diurnal = paths c.r_diurnal;
    crowd = paths c.r_crowd;
    chatter = paths c.r_chatter;
    cheap_boundary = paths c.r_cheap_boundary;
    noise = paths c.r_noise }

let query_of c = Query.Qtype1 c.c_steps

(* draw one query from a weighted mix; weights need not normalize *)
let draw rand mix =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. mix in
  let x = Random.State.float rand total in
  let rec pick acc = function
    | [] -> invalid_arg "Drift.draw: empty mix"
    | [ (_, q) ] -> q
    | (w, q) :: tl -> if x < acc +. w then q else pick (acc +. w) tl
  in
  pick 0. mix

(* Traffic levels, in multiples of [minsup]:
   - hot 3.0 / warm 2.0 — the rotating expensive set swings between these;
     both clear any sane promote bar, so a decayed policy promotes once
     and rides the churn, while the hottest labels still rotate;
   - boundary 0.9 — raw window counts straddle the support threshold
     (mean ~0.5 sigma below it), so support-only mining flaps these paths
     in and out on refresh noise essentially forever; a hysteresis band
     holds them out;
   - chatter 2.0 — frequent but cheap: support-only mining indexes these
     forever, cost-benefit scoring declines them — the index-size gap;
   - diurnal 2.0 by day / 0.7 by night — support-only mining follows the
     window and flaps on every day/night edge; the decayed view never
     leaves the retain band;
   - spike 8.0 — the flash crowd;
   - noise 0.2 — background that should never be indexed.

   Mix weights are draw *probabilities*, so each mix is normalized to
   total mass 1 by a filler of single-label queries: without the filler
   the levels would only be relative (a "2.0x" path in a mix of total
   mass 1.8 really runs at 1.1x — on top of the threshold). Single-label
   paths are APEX0's always-required entries, so the filler pads the
   query denominator without ever touching a promotion decision. *)
let at level ~minsup cs = List.map (fun c -> (level *. minsup, query_of c)) cs

let normalize c mix =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. mix in
  if total >= 1. then
    invalid_arg "Drift: mix mass exceeds 1 — lower minsup or the levels";
  let filler =
    match c.r_exp_rot with
    | { c_steps = step :: _; _ } :: _ -> Query.Qtype1 [ step ]
    | _ -> invalid_arg "Drift: empty expensive-rotation role"
  in
  if 1. -. total > 1e-9 then (1. -. total, filler) :: mix else mix

let background ~minsup c ~rot_mix =
  normalize c
    (List.concat
       [ rot_mix;
         at 0.9 ~minsup (c.r_exp_boundary @ c.r_cheap_boundary);
         at 2.0 ~minsup c.r_chatter;
         at 0.2 ~minsup c.r_noise
       ])

let gen rand n m = Array.init n (fun _ -> draw rand m)

(* [pieces] pieces of [n] queries total, mix rebuilt per piece *)
let piecewise rand ~n ~pieces f =
  Array.init n (fun i -> draw rand (f (i * pieces / max 1 n)))

let phases ?(seed = 42) ?(n_per_phase = 4800) ?measure ~minsup g =
  let c = select ?measure g in
  let rand = Random.State.make [| seed |] in
  (* Phase 1 — hot-label churn: which two of the four expensive paths are
     hottest rotates every quarter; the rest stay warm. Support-only
     mining keeps them all (they never leave the window) but flaps the
     boundary set throughout; the policy promotes the four once. *)
  let rot = Array.of_list c.r_exp_rot in
  let hot_churn =
    piecewise rand ~n:n_per_phase ~pieces:4 (fun k ->
        let hot = [ rot.(k mod Array.length rot); rot.((k + 1) mod Array.length rot) ] in
        let warm = List.filter (fun x -> not (List.memq x hot)) c.r_exp_rot in
        background ~minsup c ~rot_mix:(at 3.0 ~minsup hot @ at 2.0 ~minsup warm))
  in
  (* Phase 2 — day/night: the diurnal pair swings between 2.0x (day) and
     0.7x (night) every sixth, night first so the phase ends on a day
     piece; support-only mining promotes/evicts them on every edge. *)
  let day_night =
    piecewise rand ~n:n_per_phase ~pieces:6 (fun k ->
        let level = if k mod 2 = 0 then 0.7 else 2.0 in
        background ~minsup c
          ~rot_mix:(at 2.0 ~minsup c.r_exp_rot @ at level ~minsup c.r_diurnal))
  in
  (* Phase 3 — flash crowd: the crowd path takes 8x minsup for the first
     fifth, then its traffic stops entirely; the policy promotes it during
     the spike and evicts it once the decayed support cools through the
     band — exactly one promotion and one eviction. *)
  let flash_crowd =
    piecewise rand ~n:n_per_phase ~pieces:5 (fun k ->
        let rot_mix = at 2.0 ~minsup c.r_exp_rot in
        if k = 0 then
          background ~minsup c ~rot_mix:(at 8.0 ~minsup c.r_crowd @ rot_mix)
        else background ~minsup c ~rot_mix)
  in
  [ { ph_name = "hot_churn"; ph_queries = hot_churn };
    { ph_name = "day_night"; ph_queries = day_night };
    { ph_name = "flash_crowd"; ph_queries = flash_crowd }
  ]

(* a stationary stream drawn from the warm background mix, for
   convergence/no-flap checks *)
let stationary ?(seed = 43) ?(n = 4800) ?measure ~minsup g =
  let c = select ?measure g in
  let rand = Random.State.make [| seed |] in
  gen rand n (background ~minsup c ~rot_mix:(at 2.0 ~minsup c.r_exp_rot))
