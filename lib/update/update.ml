module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
module Edge_set = Repro_graph.Edge_set
module Apex = Repro_apex.Apex
module Gapex = Repro_apex.Gapex
module Hash_tree = Repro_apex.Hash_tree
module Vec = Repro_util.Vec

type op =
  | Insert_subtree of { parent : G.nid; fragment : Repro_xml.Xml_tree.element }
  | Delete_subtree of { node : G.nid }
  | Insert_ref of { owner : G.nid; attr : string; target : G.nid }
  | Delete_ref of { owner : G.nid; attr : string; target : G.nid }

type applied = {
  graph : G.t;
  added : (G.nid * Label.t * G.nid) list;
  removed : (G.nid * Label.t * G.nid) list;
}

let apply_graph g op =
  match op with
  | Insert_subtree { parent; fragment } ->
    let g' = G.append_subtree g ~parent fragment in
    (* append_subtree only appends: the delta is the suffix of every grown
       adjacency row plus the whole rows of the new nodes *)
    let n_old = G.n_nodes g in
    let added = ref [] in
    for u = 0 to G.n_nodes g' - 1 do
      let old_deg = if u < n_old then G.out_degree g u else 0 in
      let i = ref 0 in
      G.iter_out g' u (fun l v ->
          if !i >= old_deg then added := (u, l, v) :: !added;
          incr i)
    done;
    { graph = g'; added = List.rev !added; removed = [] }
  | Delete_subtree { node } ->
    let graph, removed = G.delete_subtree g ~node in
    { graph; added = []; removed }
  | Insert_ref { owner; attr; target } ->
    let graph, added = G.add_ref_edge g ~owner ~attr ~target in
    { graph; added; removed = [] }
  | Delete_ref { owner; attr; target } ->
    let graph, removed = G.remove_ref_edge g ~owner ~attr ~target in
    { graph; removed; added = [] }

type stats = {
  ops : int;
  edges_added : int;
  edges_removed : int;
  slots_patched : int;
  nodes_created : int;
  extents_flushed : int;
}

(* mutable accumulators threaded through the per-op maintenance passes *)
type acc = {
  mutable a_slots_patched : int;
  mutable a_nodes_created : int;
  (* G_APEX node id -> (node, its extent before the batch's first touch);
     turned into per-extent deltas for one batched flush at the end *)
  baseline : (int, Gapex.node * Edge_set.t) Hashtbl.t;
}

let reach_bitmap g =
  let seen = Array.make (Int.max 1 (G.n_nodes g)) false in
  let stack = ref [ G.root g ] in
  seen.(G.root g) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: tl ->
      stack := tl;
      G.iter_out g u (fun _ v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            stack := v :: !stack
          end)
  done;
  seen

type presence = { mutable in_old : bool; mutable in_new : bool }

(* Incrementally patch [t]'s hash tree and summary so they describe
   [applied.graph] instead of [g]. See update.mli for the algorithm and the
   subpath-closure argument it rests on. *)
let maintain t ~old_graph:g ~applied ~acc =
  let g' = applied.graph in
  let tree = Apex.tree t in
  let gapex = Apex.summary t in
  let n_old = G.n_nodes g and n_new = G.n_nodes g' in
  let reach_old = reach_bitmap g and reach_new = reach_bitmap g' in
  let reach_old_of x = x < n_old && reach_old.(x) in
  let reach_new_of x = x < n_new && reach_new.(x) in
  (* 1. sources whose trailing label windows may have shifted: nodes within
     depth-2 forward hops of a touched target, in either graph version *)
  let dirty_src : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let frontier = ref [] in
  let touch v =
    if not (Hashtbl.mem dirty_src v) then begin
      Hashtbl.add dirty_src v ();
      frontier := v :: !frontier
    end
  in
  List.iter (fun (_, _, v) -> touch v) applied.added;
  List.iter (fun (_, _, v) -> touch v) applied.removed;
  for _ = 1 to Int.max 0 (Hash_tree.depth tree - 2) do
    let cur = !frontier in
    frontier := [];
    List.iter
      (fun v ->
        if v < n_old then G.iter_out g v (fun _ w -> touch w);
        if v < n_new then G.iter_out g' v (fun _ w -> touch w))
      cur
  done;
  (* 2. the dirty edge set, with which graph side(s) each edge lives in *)
  let dirty : (G.nid * Label.t * G.nid, presence) Hashtbl.t = Hashtbl.create 256 in
  let mark side edge =
    let p =
      match Hashtbl.find_opt dirty edge with
      | Some p -> p
      | None ->
        let p = { in_old = false; in_new = false } in
        Hashtbl.add dirty edge p;
        p
    in
    match side with `Old -> p.in_old <- true | `New -> p.in_new <- true
  in
  List.iter (fun ((u, _, _) as e) -> if reach_old_of u then mark `Old e) applied.removed;
  List.iter (fun ((u, _, _) as e) -> if reach_new_of u then mark `New e) applied.added;
  Hashtbl.iter
    (fun x () ->
      if reach_old_of x then G.iter_out g x (fun l v -> mark `Old (x, l, v));
      if reach_new_of x then G.iter_out g' x (fun l v -> mark `New (x, l, v)))
    dirty_src;
  (* a reachability flip re-routes every out-edge of the flipped node, at
     any distance from the touched region *)
  for x = 0 to n_new - 1 do
    let was = reach_old_of x and is = reach_new.(x) in
    if was && not is then G.iter_out g x (fun l v -> mark `Old (x, l, v))
    else if is && not was then G.iter_out g' x (fun l v -> mark `New (x, l, v))
  done;
  (* 3. resolve each dirty edge's slots on both sides; diff by slot uid *)
  let in_edges_of g reach x =
    let acc = ref [] in
    G.iter_in g x (fun l w -> if reach w then acc := (l, w) :: !acc);
    !acc
  in
  let root_old = G.root g and root_new = G.root g' in
  let finder_old =
    Hash_tree.finder tree ~in_edges:(in_edges_of g reach_old_of)
      ~is_root:(fun x -> x = root_old)
  in
  let finder_new =
    Hash_tree.finder tree ~in_edges:(in_edges_of g' reach_new_of)
      ~is_root:(fun x -> x = root_new)
  in
  let removals : (int, Hash_tree.slot * int Vec.t) Hashtbl.t = Hashtbl.create 64 in
  let additions : (int, Hash_tree.slot * int Vec.t) Hashtbl.t = Hashtbl.create 64 in
  (* (source, label, slot) of every added assignment, for the linking pass *)
  let links = ref [] in
  let note table slot packed =
    let _, vec =
      let uid = Hash_tree.slot_uid slot in
      match Hashtbl.find_opt table uid with
      | Some pair -> pair
      | None ->
        let pair = (slot, Vec.create ()) in
        Hashtbl.add table uid pair;
        pair
    in
    Vec.push vec packed
  in
  Hashtbl.iter
    (fun (u, l, v) p ->
      let old_slots = if p.in_old then Hash_tree.find_slots finder_old ~label:l ~source:u else [] in
      let new_slots = if p.in_new then Hash_tree.find_slots finder_new ~label:l ~source:u else [] in
      let packed = Edge_set.pack u v in
      (* both lists are sorted by slot uid: linear symmetric difference *)
      let rec walk olds news =
        match (olds, news) with
        | [], [] -> ()
        | o :: otl, [] ->
          note removals o packed;
          walk otl []
        | [], n :: ntl ->
          note additions n packed;
          links := (u, l, n) :: !links;
          walk [] ntl
        | o :: otl, n :: ntl ->
          let c = Int.compare (Hash_tree.slot_uid o) (Hash_tree.slot_uid n) in
          if c = 0 then walk otl ntl
          else if c < 0 then begin
            note removals o packed;
            walk otl news
          end
          else begin
            note additions n packed;
            links := (u, l, n) :: !links;
            walk olds ntl
          end
      in
      walk old_slots new_slots)
    dirty;
  (* 4. patch extents: removals first, then additions, then drop emptied
     slots (as pruning does) so persistence images stay well-formed *)
  let note_dirty (n : Gapex.node) =
    if not (Hashtbl.mem acc.baseline n.Gapex.id) then
      Hashtbl.add acc.baseline n.Gapex.id (n, n.Gapex.extent)
  in
  Hashtbl.iter
    (fun _ (slot, vec) ->
      match Hash_tree.slot_get slot with
      | None -> () (* nothing was ever materialized under this slot *)
      | Some n ->
        note_dirty n;
        n.Gapex.extent <- Edge_set.diff n.Gapex.extent (Edge_set.of_packed_array (Vec.to_array vec));
        acc.a_slots_patched <- acc.a_slots_patched + 1)
    removals;
  Hashtbl.iter
    (fun _ (slot, vec) ->
      let n =
        match Hash_tree.slot_get slot with
        | Some n -> n
        | None ->
          let n = Gapex.new_node gapex in
          Hash_tree.slot_set slot (Some n);
          acc.a_nodes_created <- acc.a_nodes_created + 1;
          n
      in
      note_dirty n;
      n.Gapex.extent <- Edge_set.union n.Gapex.extent (Edge_set.of_packed_array (Vec.to_array vec));
      acc.a_slots_patched <- acc.a_slots_patched + 1)
    additions;
  Hashtbl.iter
    (fun uid (slot, _) ->
      if not (Hashtbl.mem additions uid) then
        match Hash_tree.slot_get slot with
        | Some n when Edge_set.is_empty n.Gapex.extent -> Hash_tree.slot_set slot None
        | Some _ | None -> ())
    removals;
  (* 5. re-link summary edges for the added assignments. G_APEX holds one
     child per (node, label), so each added slot must attach to exactly the
     parents that witness it — [find_assignments] pairs every resolution
     with the slot of the path it is witnessed through (a cross product
     over [find_slots] would overwrite correct edges when one (u, l) edge
     resolves to several slots along different in-paths). *)
  let xroot = Gapex.xroot gapex in
  let linked : (int * Label.t * int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (u, l, slot) ->
      match Hash_tree.slot_get slot with
      | None -> () (* the extent never became non-empty *)
      | Some child ->
        let suid = Hash_tree.slot_uid slot in
        List.iter
          (fun (parent, s) ->
            if Int.equal (Hash_tree.slot_uid s) suid then
              let x =
                match parent with
                | None -> Some xroot
                | Some ps -> Hash_tree.slot_get ps
              in
              match x with
              | None -> () (* parent path not materialized: nothing to hang on *)
              | Some x ->
                let key = (x.Gapex.id, l, child.Gapex.id) in
                if not (Hashtbl.mem linked key) then begin
                  Hashtbl.add linked key ();
                  Gapex.make_edge x l child
                end)
          (Hash_tree.find_assignments finder_new ~label:l ~source:u))
    !links

let apply_inner t ops =
  let acc = { a_slots_patched = 0; a_nodes_created = 0; baseline = Hashtbl.create 64 } in
  let n_ops = ref 0 and n_added = ref 0 and n_removed = ref 0 in
  List.iter
    (fun op ->
      let g = Apex.graph t in
      let applied = apply_graph g op in
      (* re-point the graph before maintaining: a failure in maintenance or
         flushing must not lose the data change itself *)
      Apex.set_graph t applied.graph;
      incr n_ops;
      n_added := !n_added + List.length applied.added;
      n_removed := !n_removed + List.length applied.removed;
      maintain t ~old_graph:g ~applied ~acc)
    ops;
  (* hygiene: summary edges into nodes whose slot was cleared would keep
     dead extents reachable (inflating stats and re-materialization) *)
  let gapex = Apex.summary t in
  let live_ids : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace live_ids (Gapex.xroot gapex).Gapex.id ();
  Hash_tree.iter_slots (Apex.tree t) (fun _ slot _ ->
      match Hash_tree.slot_get slot with
      | Some n -> Hashtbl.replace live_ids n.Gapex.id ()
      | None -> ());
  Gapex.prune_edges gapex ~live:(fun n -> Hashtbl.mem live_ids n.Gapex.id);
  Apex.invalidate_endpoints t;
  let dirty =
    Hashtbl.fold
      (fun _ ((n : Gapex.node), before) rest ->
        let removed = Edge_set.diff before n.Gapex.extent in
        let added = Edge_set.diff n.Gapex.extent before in
        if Edge_set.is_empty removed && Edge_set.is_empty added then rest
        else (n, removed, added) :: rest)
      acc.baseline []
  in
  Apex.flush_dirty t dirty;
  {
    ops = !n_ops;
    edges_added = !n_added;
    edges_removed = !n_removed;
    slots_patched = acc.a_slots_patched;
    nodes_created = acc.a_nodes_created;
    extents_flushed = List.length dirty;
  }

(* a fault mid-batch propagates with the span closed, so the trace shows
   the aborted application rather than a dangling open span *)
let apply t ops =
  let module Tr = Repro_telemetry.Trace in
  let tok = Tr.begin_ Tr.Update_apply in
  match apply_inner t ops with
  | stats ->
    Tr.end_arg tok stats.ops;
    stats
  | exception e ->
    Tr.end_ tok;
    raise e
