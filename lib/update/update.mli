(** Data updates with incremental APEX maintenance.

    The paper's Section 5 treats the index as living against a changing
    document: this subsystem applies subtree inserts, subtree deletes, and
    IDREF edge changes to the data graph and patches [G_APEX] extents and
    [H_APEX] slots {e in place} — no rebuild.

    The algorithm, per operation:

    + apply the change functionally to the {!Repro_graph.Data_graph},
      collecting the added and removed data edges;
    + compute the {e dirty} edge set: the changed edges themselves, every
      out-edge of a node within [Hash_tree.depth - 2] forward hops of a
      touched target (the only region whose trailing label windows — and
      hence hash-tree resolutions — can shift), and every out-edge of a
      node whose root-reachability flipped;
    + resolve each dirty edge's slot assignments by reverse label-path
      lookup ({!Repro_apex.Hash_tree.find_slots}) against the pre- and
      post-change graph; the symmetric difference of the two slot sets
      gives per-slot extent deltas;
    + patch extents with sorted delta merges ([Edge_set.diff]/[union] over
      the [Int_sorted] kernels), dropping emptied slots' nodes and creating
      nodes for newly populated slots, and re-link summary edges for every
      added assignment;
    + flush only the touched extents to the extent store as batched delta
      blobs ({!Repro_apex.Apex.flush_dirty}) — page I/O proportional to
      the change.

    Correctness leans on the required set's closure under subpaths (a
    subpath is at least as frequent as its superpaths, so uniform-threshold
    pruning preserves closure): all paths assigned to one slot extend to
    the same resolutions, so per-edge patching agrees with the build
    traversal's path-at-a-time assignment. The differential suite checks
    the result against a from-scratch rebuild after every seeded
    interleaving of updates and queries. *)

type op =
  | Insert_subtree of { parent : Repro_graph.Data_graph.nid; fragment : Repro_xml.Xml_tree.element }
      (** Graft [fragment] below [parent] ({!Repro_graph.Data_graph.append_subtree}). *)
  | Delete_subtree of { node : Repro_graph.Data_graph.nid }
      (** Remove [node], its tree descendants, and every incident edge. *)
  | Insert_ref of {
      owner : Repro_graph.Data_graph.nid;
      attr : string;
      target : Repro_graph.Data_graph.nid;
    }  (** Add an IDREF edge [owner --@attr--> · --tag--> target]. *)
  | Delete_ref of {
      owner : Repro_graph.Data_graph.nid;
      attr : string;
      target : Repro_graph.Data_graph.nid;
    }  (** Remove one such reference edge. *)

type applied = {
  graph : Repro_graph.Data_graph.t;  (** the post-operation graph *)
  added : (Repro_graph.Data_graph.nid * Repro_graph.Label.t * Repro_graph.Data_graph.nid) list;
  removed : (Repro_graph.Data_graph.nid * Repro_graph.Label.t * Repro_graph.Data_graph.nid) list;
}

val apply_graph : Repro_graph.Data_graph.t -> op -> applied
(** Apply one operation to the graph alone (no index involved) and report
    the edge-level delta. @raise Invalid_argument on invalid operands
    (unknown nids, deleting the root, removing a reference that does not
    exist, referencing a node with no document edge). *)

type stats = {
  ops : int;
  edges_added : int;
  edges_removed : int;
  slots_patched : int;  (** extent patch applications (a slot may repeat across ops) *)
  nodes_created : int;  (** fresh [G_APEX] nodes for newly populated slots *)
  extents_flushed : int;  (** extents re-persisted by the batched flush *)
}

val apply : Repro_apex.Apex.t -> op list -> stats
(** Apply the operations in order to the index's graph, maintaining the
    index incrementally after each, then flush every touched extent once
    (batched deltas) if the index is materialized. The index's graph is
    re-pointed after each operation, so a storage fault during the final
    flush leaves the data changes applied and the in-memory index
    consistent — only the store lags (re-materialize or rebuild to
    recover; {!Repro_adaptive.Self_tuning} does this automatically).
    @raise Invalid_argument as {!apply_graph}. *)
