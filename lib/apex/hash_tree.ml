module Label_path = Repro_pathexpr.Label_path
module Cost = Repro_storage.Cost
module Tr = Repro_telemetry.Trace

type slot = {
  suid : int;  (* process-unique; identifies slots across maintenance passes *)
  mutable xnode : Gapex.node option;
}

type entry = {
  label : Repro_graph.Label.t;
  mutable count : int;
  mutable is_new : bool;
  e_slot : slot;
  mutable next : hnode option;
}

and hnode = {
  hid : int;  (* process-unique; memoization key for the reverse walk *)
  entries : (Repro_graph.Label.t, entry) Hashtbl.t;
  r_slot : slot;  (* the remainder entry's xnode field *)
}

type t = { head : hnode } [@@apex.shared]

(* Process-wide id sources. Atomic so concurrent maintenance passes on
   separate indexes can never mint colliding slot/hnode ids. *)
let suid_counter = Atomic.make 0
let hid_counter = Atomic.make 0

let mk_slot () = { suid = Atomic.fetch_and_add suid_counter 1 + 1; xnode = None }

let mk_hnode () =
  {
    hid = Atomic.fetch_and_add hid_counter 1 + 1;
    entries = Hashtbl.create 8;
    r_slot = mk_slot ();
  }

let create () = { head = mk_hnode () }

let slot_get s = s.xnode
let slot_set s v = s.xnode <- v
let slot_uid s = s.suid

let mk_entry label = { label; count = 0; is_new = true; e_slot = mk_slot (); next = None }

let charge cost =
  match cost with
  | Some c -> c.Cost.hash_probes <- c.Cost.hash_probes + 1
  | None -> ()

(* Figure 9, generalized with entry creation at HashHead for update-time use
   and with path-exhaustion resolving to the deeper hnode's remainder. *)
let lookup_slot ?cost ?(create_head = false) t ~rev_path =
  let rec step hnode label rest =
    charge cost;
    match Hashtbl.find_opt hnode.entries label with
    | None ->
      if hnode != t.head then Some hnode.r_slot
      else if create_head then begin
        let e = mk_entry label in
        e.is_new <- false;
        (* not a workload discovery *)
        Hashtbl.add hnode.entries label e;
        Some e.e_slot
      end
      else None
    | Some e ->
      (match e.next with
       | None -> Some e.e_slot
       | Some sub ->
         (match rest with
          | [] -> Some sub.r_slot
          | l :: rest' -> step sub l rest'))
  in
  match rev_path with
  | [] -> invalid_arg "Hash_tree.lookup_slot: empty path"
  | last :: rest -> step t.head last rest

(* every G_APEX node in the subtree rooted at [hnode] *)
let rec collect_subtree hnode acc =
  let acc = match hnode.r_slot.xnode with Some n -> n :: acc | None -> acc in
  Hashtbl.fold
    (fun _ e acc ->
      let acc = match e.e_slot.xnode with Some n -> n :: acc | None -> acc in
      match e.next with Some sub -> collect_subtree sub acc | None -> acc)
    hnode.entries acc

type located =
  | Exact of Gapex.node list
  | Approx of Gapex.node list

let locate ?cost t ~rev_path =
  let ptok = Tr.begin_ Tr.Probe in
  let rec step hnode label rest =
    charge cost;
    match Hashtbl.find_opt hnode.entries label with
    | None ->
      if hnode == t.head then None
      else
        Some (Approx (match hnode.r_slot.xnode with Some n -> [ n ] | None -> []))
    | Some e ->
      (match e.next, rest with
       | None, [] -> Some (Exact (match e.e_slot.xnode with Some n -> [ n ] | None -> []))
       | None, _ :: _ -> Some (Approx (match e.e_slot.xnode with Some n -> [ n ] | None -> []))
       | Some sub, [] -> Some (Exact (collect_subtree sub []))
       | Some sub, l :: rest' -> step sub l rest')
  in
  match rev_path with
  | [] ->
    Tr.end_ ptok;
    invalid_arg "Hash_tree.locate: empty path"
  | last :: rest ->
    let located = step t.head last rest in
    Tr.end_arg ptok
      (match located with
       | None -> 0
       | Some (Exact nodes) | Some (Approx nodes) -> List.length nodes);
    located

(* --- extraction (Figure 8) --- *)

let rec iter_entries hnode f =
  Hashtbl.iter
    (fun _ e ->
      f e;
      match e.next with Some sub -> iter_entries sub f | None -> ())
    hnode.entries

let reset_marks t =
  iter_entries t.head (fun e ->
      e.count <- 0;
      e.is_new <- false)

(* insert one subpath (reverse navigation), creating entries/hnodes as
   needed, and bump the final entry's count *)
let count_subpath t rev_sub =
  let rec step hnode label rest =
    let e =
      match Hashtbl.find_opt hnode.entries label with
      | Some e -> e
      | None ->
        let e = mk_entry label in
        Hashtbl.add hnode.entries label e;
        e
    in
    match rest with
    | [] -> e.count <- e.count + 1
    | l :: rest' ->
      let sub =
        match e.next with
        | Some sub -> sub
        | None ->
          let sub = mk_hnode () in
          e.next <- Some sub;
          sub
      in
      step sub l rest'
  in
  match rev_sub with
  | [] -> ()
  | last :: rest -> step t.head last rest

let count_workload t queries =
  List.iter
    (fun q -> List.iter (fun sub -> count_subpath t (List.rev sub)) (Label_path.subpaths q))
    queries

(* insert the entry chain for a forward [path] without touching counts:
   lets a policy retain paths the current window never counted — the
   decide callback of [prune] is only consulted for entries that exist *)
let ensure_path t path =
  let rec step hnode label rest =
    let e =
      match Hashtbl.find_opt hnode.entries label with
      | Some e -> e
      | None ->
        let e = mk_entry label in
        Hashtbl.add hnode.entries label e;
        e
    in
    match rest with
    | [] -> ()
    | l :: rest' ->
      let sub =
        match e.next with
        | Some sub -> sub
        | None ->
          let sub = mk_hnode () in
          e.next <- Some sub;
          sub
      in
      step sub l rest'
  in
  match List.rev path with
  | [] -> ()
  | last :: rest -> step t.head last rest

let prune t ~decide =
  let rec prune_hnode hnode ~is_head suffix =
    let snapshot = Hashtbl.fold (fun _ e acc -> e :: acc) hnode.entries [] in
    List.iter
      (fun e ->
        if not (decide ~path:(e.label :: suffix) ~count:e.count ~is_new:e.is_new)
        then begin
          (* infrequent: drop its subtree; outside HashHead drop the entry
             itself, which folds its paths back into this hnode's remainder
             — so that remainder's node is stale now *)
          if Option.is_some e.next then begin
            e.next <- None;
            (* the entry now stands for everything that its subtree
               partitioned; any node it held is stale *)
            e.e_slot.xnode <- None;
            Tr.event Tr.Path_evicted e.label
          end;
          if not is_head then begin
            Hashtbl.remove hnode.entries e.label;
            Tr.event Tr.Path_evicted e.label;
            (* deleting a previously-required entry folds its paths back
               into this hnode's remainder, so its node is stale; an entry
               that was only just created by counting never had a node and
               leaves the remainder untouched *)
            if not e.is_new then hnode.r_slot.xnode <- None
          end
        end
        else begin
          (match e.next with
           | Some sub ->
             if prune_hnode sub ~is_head:false (e.label :: suffix) then begin
               e.next <- None
               (* e.e_slot is already empty by the invariant *)
             end
           | None -> ());
          (* a path that was maximal but now has longer frequent suffixes:
             its node must be rebuilt as a remainder (lines 12-13) *)
          if Option.is_some e.next && Option.is_some e.e_slot.xnode then e.e_slot.xnode <- None;
          (* a new frequent sibling changes what "remainder" means
             (lines 14-15) *)
          if e.is_new && Option.is_some hnode.r_slot.xnode then hnode.r_slot.xnode <- None
        end)
      snapshot;
    Hashtbl.length hnode.entries = 0
  in
  ignore (prune_hnode t.head ~is_head:true [])

(* --- introspection --- *)

let iter_slots t f =
  let rec walk hnode suffix =
    if not (List.is_empty suffix) then f suffix hnode.r_slot true;
    Hashtbl.iter
      (fun _ e ->
        let s = e.label :: suffix in
        f s e.e_slot false;
        match e.next with Some sub -> walk sub s | None -> ())
      hnode.entries
  in
  walk t.head []

let n_entries t =
  let n = ref 0 in
  iter_entries t.head (fun _ -> incr n);
  !n

(* --- persistence ---
   hnode   := [n_entries] entry* [remainder_idx+1]
   entry   := [label] [count] [is_new] [xnode_idx+1] [has_sub] sub?   *)

let encode t ~node_index =
  let out = ref [] in
  let push i = out := i :: !out in
  let slot_code s = match s.xnode with Some n -> node_index n + 1 | None -> 0 in
  let rec enc_hnode h =
    push (Hashtbl.length h.entries);
    let entries =
      Hashtbl.fold (fun _ e acc -> e :: acc) h.entries []
      |> List.sort (fun a b -> Int.compare a.label b.label)
    in
    List.iter
      (fun e ->
        push e.label;
        push e.count;
        push (if e.is_new then 1 else 0);
        push (slot_code e.e_slot);
        match e.next with
        | Some sub ->
          push 1;
          enc_hnode sub
        | None -> push 0)
      entries;
    push (slot_code h.r_slot)
  in
  enc_hnode t.head;
  List.rev !out

let decode ~node_of arr ~pos =
  let next () =
    if !pos >= Array.length arr then invalid_arg "Hash_tree.decode: truncated image"
    else begin
      let v = arr.(!pos) in
      incr pos;
      v
    end
  in
  let slot_of code =
    let s = mk_slot () in
    s.xnode <- (if code = 0 then None else Some (node_of (code - 1)));
    s
  in
  let rec dec_hnode () =
    let n = next () in
    let h = mk_hnode () in
    for _ = 1 to n do
      let label = next () in
      let count = next () in
      let is_new = next () = 1 in
      let slot = slot_of (next ()) in
      let has_sub = next () = 1 in
      let sub = if has_sub then Some (dec_hnode ()) else None in
      Hashtbl.add h.entries label { label; count; is_new; e_slot = slot; next = sub }
    done;
    (* remainder slot: mk_hnode made a fresh one; replace its contents *)
    let r = slot_of (next ()) in
    h.r_slot.xnode <- r.xnode;
    h
  in
  { head = dec_hnode () }

let check_invariant t =
  let ok = ref true in
  iter_entries t.head (fun e -> if Option.is_some e.next && Option.is_some e.e_slot.xnode then ok := false);
  !ok

let depth t =
  let rec go hnode =
    1
    + Hashtbl.fold
        (fun _ e acc -> match e.next with Some sub -> Int.max acc (go sub) | None -> acc)
        hnode.entries 0
  in
  go t.head

(* --- reverse slot resolution (incremental maintenance) ---

   [find_slots] enumerates every slot a data edge (u, l, v) is assigned to:
   one per distinct resolution of [lookup_slot] over [l ::] each reverse
   root-anchored label path reaching [u]. The walk descends one hnode level
   per consumed label, so recursion is bounded by the tree depth and the
   (hnode, data-node) states memoize across edges of one maintenance pass.

   Because the required set is closed under subpaths (a subpath's workload
   count is at least its superpath's, so pruning with one threshold keeps
   closure), all paths reaching a given slot extend to the same resolutions
   — which is what makes patching extents per-edge equivalent to the
   traversal's path-at-a-time assignment. *)

type finder = {
  f_tree : t;
  f_in_edges : int -> (Repro_graph.Label.t * int) list;
  f_is_root : int -> bool;
  f_memo : (int * int, slot list) Hashtbl.t;  (* (hid, data node) -> resolutions *)
}

let finder t ~in_edges ~is_root =
  { f_tree = t; f_in_edges = in_edges; f_is_root = is_root; f_memo = Hashtbl.create 256 }

let find_slots f ~label ~source =
  (* [step hnode l x]: resolutions of looking [l] up in [hnode] where [x]
     (the source of the l-edge) supplies any further labels; [consume sub x]:
     resolutions of feeding x's reverse in-paths into [sub]. Mirrors
     [lookup_slot] case by case, including HashHead entry creation. *)
  let rec step hnode l x =
    match Hashtbl.find_opt hnode.entries l with
    | None ->
      if hnode != f.f_tree.head then [ hnode.r_slot ]
      else begin
        (* length-1 paths are always required: create, as the update
           traversal's [create_head] does *)
        let e = mk_entry l in
        e.is_new <- false;
        Hashtbl.add hnode.entries l e;
        [ e.e_slot ]
      end
    | Some e ->
      (match e.next with
       | None -> [ e.e_slot ]
       | Some sub -> consume sub x)
  and consume sub x =
    match Hashtbl.find_opt f.f_memo (sub.hid, x) with
    | Some slots -> slots
    | None ->
      let acc = ref [] in
      (* a path starting at [x]: the reverse path is exhausted here and
         [lookup_slot] resolves to the deeper hnode's remainder *)
      if f.f_is_root x then acc := [ sub.r_slot ];
      List.iter (fun (l', w) -> acc := step sub l' w @ !acc) (f.f_in_edges x);
      let slots =
        List.sort_uniq (fun a b -> Int.compare a.suid b.suid) !acc
      in
      Hashtbl.add f.f_memo (sub.hid, x) slots;
      slots
  in
  List.sort_uniq (fun a b -> Int.compare a.suid b.suid) (step f.f_tree.head label source)

(* [find_assignments] refines [find_slots] into (parent, child) pairs: for
   each reverse root-anchored path [p] of [source], the resolution of [p]
   (the summary node the traversal stands on when it reaches [source]) and
   of [label :: p] (the child it assigns the edge to). G_APEX holds one
   child per (node, label), so re-linking after an extent patch must attach
   each added assignment to exactly its matching parents — under subpath
   closure the child is a function of the parent, but distinct parents of
   one edge can map to distinct children, and a cross product would
   overwrite correct edges. Both walks consume the same label stream, so
   they run in lockstep as a product automaton. *)

type walk = W_done of slot | W_at of hnode

let walk_key = function W_done s -> 2 * s.suid | W_at h -> (2 * h.hid) + 1

(* one [lookup_slot] case on an in-progress walk; mirrors [step] above *)
let advance f w l =
  match w with
  | W_done _ -> w
  | W_at h ->
    (match Hashtbl.find_opt h.entries l with
     | None ->
       if h != f.f_tree.head then W_done h.r_slot
       else begin
         let e = mk_entry l in
         e.is_new <- false;
         Hashtbl.add h.entries l e;
         W_done e.e_slot
       end
     | Some e -> (match e.next with None -> W_done e.e_slot | Some sub -> W_at sub))

let find_assignments f ~label ~source =
  let memo : (int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let emitted : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let emit parent child =
    let pk = match parent with None -> 0 | Some s -> s.suid + 1 in
    if not (Hashtbl.mem emitted (pk, child.suid)) then begin
      Hashtbl.add emitted (pk, child.suid) ();
      out := (parent, child) :: !out
    end
  in
  let resolve_child = function W_done s -> s | W_at h -> h.r_slot in
  let resolve_parent = function
    | W_done s -> Some s
    | W_at h ->
      (* still at HashHead: no label consumed, so the path is empty and the
         parent is the summary root *)
      if h == f.f_tree.head then None else Some h.r_slot
  in
  let rec go x c p =
    match (c, p) with
    | W_done sc, W_done sp ->
      (* both fixed; [x] being root-reachable guarantees an anchor exists *)
      emit (Some sp) sc
    | _ ->
      if f.f_is_root x then emit (resolve_parent p) (resolve_child c);
      let key = (walk_key c, walk_key p, x) in
      if not (Hashtbl.mem memo key) then begin
        Hashtbl.add memo key ();
        List.iter (fun (l', w) -> go w (advance f c l') (advance f p l')) (f.f_in_edges x)
      end
  in
  go source (advance f (W_at f.f_tree.head) label) (W_at f.f_tree.head);
  !out
