module Label_path = Repro_pathexpr.Label_path
module Cost = Repro_storage.Cost

type slot = { mutable xnode : Gapex.node option }

type entry = {
  label : Repro_graph.Label.t;
  mutable count : int;
  mutable is_new : bool;
  e_slot : slot;
  mutable next : hnode option;
}

and hnode = {
  entries : (Repro_graph.Label.t, entry) Hashtbl.t;
  r_slot : slot;  (* the remainder entry's xnode field *)
}

type t = { head : hnode }

let mk_hnode () = { entries = Hashtbl.create 8; r_slot = { xnode = None } }

let create () = { head = mk_hnode () }

let slot_get s = s.xnode
let slot_set s v = s.xnode <- v

let mk_entry label = { label; count = 0; is_new = true; e_slot = { xnode = None }; next = None }

let charge cost =
  match cost with
  | Some c -> c.Cost.hash_probes <- c.Cost.hash_probes + 1
  | None -> ()

(* Figure 9, generalized with entry creation at HashHead for update-time use
   and with path-exhaustion resolving to the deeper hnode's remainder. *)
let lookup_slot ?cost ?(create_head = false) t ~rev_path =
  let rec step hnode label rest =
    charge cost;
    match Hashtbl.find_opt hnode.entries label with
    | None ->
      if hnode != t.head then Some hnode.r_slot
      else if create_head then begin
        let e = mk_entry label in
        e.is_new <- false;
        (* not a workload discovery *)
        Hashtbl.add hnode.entries label e;
        Some e.e_slot
      end
      else None
    | Some e ->
      (match e.next with
       | None -> Some e.e_slot
       | Some sub ->
         (match rest with
          | [] -> Some sub.r_slot
          | l :: rest' -> step sub l rest'))
  in
  match rev_path with
  | [] -> invalid_arg "Hash_tree.lookup_slot: empty path"
  | last :: rest -> step t.head last rest

(* every G_APEX node in the subtree rooted at [hnode] *)
let rec collect_subtree hnode acc =
  let acc = match hnode.r_slot.xnode with Some n -> n :: acc | None -> acc in
  Hashtbl.fold
    (fun _ e acc ->
      let acc = match e.e_slot.xnode with Some n -> n :: acc | None -> acc in
      match e.next with Some sub -> collect_subtree sub acc | None -> acc)
    hnode.entries acc

type located =
  | Exact of Gapex.node list
  | Approx of Gapex.node list

let locate ?cost t ~rev_path =
  let rec step hnode label rest =
    charge cost;
    match Hashtbl.find_opt hnode.entries label with
    | None ->
      if hnode == t.head then None
      else
        Some (Approx (match hnode.r_slot.xnode with Some n -> [ n ] | None -> []))
    | Some e ->
      (match e.next, rest with
       | None, [] -> Some (Exact (match e.e_slot.xnode with Some n -> [ n ] | None -> []))
       | None, _ :: _ -> Some (Approx (match e.e_slot.xnode with Some n -> [ n ] | None -> []))
       | Some sub, [] -> Some (Exact (collect_subtree sub []))
       | Some sub, l :: rest' -> step sub l rest')
  in
  match rev_path with
  | [] -> invalid_arg "Hash_tree.locate: empty path"
  | last :: rest -> step t.head last rest

(* --- extraction (Figure 8) --- *)

let rec iter_entries hnode f =
  Hashtbl.iter
    (fun _ e ->
      f e;
      match e.next with Some sub -> iter_entries sub f | None -> ())
    hnode.entries

let reset_marks t =
  iter_entries t.head (fun e ->
      e.count <- 0;
      e.is_new <- false)

(* insert one subpath (reverse navigation), creating entries/hnodes as
   needed, and bump the final entry's count *)
let count_subpath t rev_sub =
  let rec step hnode label rest =
    let e =
      match Hashtbl.find_opt hnode.entries label with
      | Some e -> e
      | None ->
        let e = mk_entry label in
        Hashtbl.add hnode.entries label e;
        e
    in
    match rest with
    | [] -> e.count <- e.count + 1
    | l :: rest' ->
      let sub =
        match e.next with
        | Some sub -> sub
        | None ->
          let sub = mk_hnode () in
          e.next <- Some sub;
          sub
      in
      step sub l rest'
  in
  match rev_sub with
  | [] -> ()
  | last :: rest -> step t.head last rest

let count_workload t queries =
  List.iter
    (fun q -> List.iter (fun sub -> count_subpath t (List.rev sub)) (Label_path.subpaths q))
    queries

let prune t ~threshold =
  let rec prune_hnode hnode ~is_head =
    let snapshot = Hashtbl.fold (fun _ e acc -> e :: acc) hnode.entries [] in
    List.iter
      (fun e ->
        if float_of_int e.count < threshold then begin
          (* infrequent: drop its subtree; outside HashHead drop the entry
             itself, which folds its paths back into this hnode's remainder
             — so that remainder's node is stale now *)
          if Option.is_some e.next then begin
            e.next <- None;
            (* the entry now stands for everything that its subtree
               partitioned; any node it held is stale *)
            e.e_slot.xnode <- None
          end;
          if not is_head then begin
            Hashtbl.remove hnode.entries e.label;
            (* deleting a previously-required entry folds its paths back
               into this hnode's remainder, so its node is stale; an entry
               that was only just created by counting never had a node and
               leaves the remainder untouched *)
            if not e.is_new then hnode.r_slot.xnode <- None
          end
        end
        else begin
          (match e.next with
           | Some sub ->
             if prune_hnode sub ~is_head:false then begin
               e.next <- None
               (* e.e_slot is already empty by the invariant *)
             end
           | None -> ());
          (* a path that was maximal but now has longer frequent suffixes:
             its node must be rebuilt as a remainder (lines 12-13) *)
          if Option.is_some e.next && Option.is_some e.e_slot.xnode then e.e_slot.xnode <- None;
          (* a new frequent sibling changes what "remainder" means
             (lines 14-15) *)
          if e.is_new && Option.is_some hnode.r_slot.xnode then hnode.r_slot.xnode <- None
        end)
      snapshot;
    Hashtbl.length hnode.entries = 0
  in
  ignore (prune_hnode t.head ~is_head:true)

(* --- introspection --- *)

let iter_slots t f =
  let rec walk hnode suffix =
    if not (List.is_empty suffix) then f suffix hnode.r_slot true;
    Hashtbl.iter
      (fun _ e ->
        let s = e.label :: suffix in
        f s e.e_slot false;
        match e.next with Some sub -> walk sub s | None -> ())
      hnode.entries
  in
  walk t.head []

let n_entries t =
  let n = ref 0 in
  iter_entries t.head (fun _ -> incr n);
  !n

(* --- persistence ---
   hnode   := [n_entries] entry* [remainder_idx+1]
   entry   := [label] [count] [is_new] [xnode_idx+1] [has_sub] sub?   *)

let encode t ~node_index =
  let out = ref [] in
  let push i = out := i :: !out in
  let slot_code s = match s.xnode with Some n -> node_index n + 1 | None -> 0 in
  let rec enc_hnode h =
    push (Hashtbl.length h.entries);
    let entries =
      Hashtbl.fold (fun _ e acc -> e :: acc) h.entries []
      |> List.sort (fun a b -> Int.compare a.label b.label)
    in
    List.iter
      (fun e ->
        push e.label;
        push e.count;
        push (if e.is_new then 1 else 0);
        push (slot_code e.e_slot);
        match e.next with
        | Some sub ->
          push 1;
          enc_hnode sub
        | None -> push 0)
      entries;
    push (slot_code h.r_slot)
  in
  enc_hnode t.head;
  List.rev !out

let decode ~node_of arr ~pos =
  let next () =
    if !pos >= Array.length arr then invalid_arg "Hash_tree.decode: truncated image"
    else begin
      let v = arr.(!pos) in
      incr pos;
      v
    end
  in
  let slot_of code = { xnode = (if code = 0 then None else Some (node_of (code - 1))) } in
  let rec dec_hnode () =
    let n = next () in
    let h = mk_hnode () in
    for _ = 1 to n do
      let label = next () in
      let count = next () in
      let is_new = next () = 1 in
      let slot = slot_of (next ()) in
      let has_sub = next () = 1 in
      let sub = if has_sub then Some (dec_hnode ()) else None in
      Hashtbl.add h.entries label { label; count; is_new; e_slot = slot; next = sub }
    done;
    (* remainder slot: mk_hnode made a fresh one; replace its contents *)
    let r = slot_of (next ()) in
    h.r_slot.xnode <- r.xnode;
    h
  in
  { head = dec_hnode () }

let check_invariant t =
  let ok = ref true in
  iter_entries t.head (fun e -> if Option.is_some e.next && Option.is_some e.e_slot.xnode then ok := false);
  !ok
