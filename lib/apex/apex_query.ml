module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Label = Repro_graph.Label
module Int_sorted = Repro_util.Int_sorted
module Cost = Repro_storage.Cost
module Query = Repro_pathexpr.Query
module Tr = Repro_telemetry.Trace

(* join accounting: probe length plus the (possibly still-compressed)
   extent's cardinality, matching Edge_set-era semantics exactly *)
let charge_join_ref cost frontier ext =
  match cost with
  | Some c ->
    c.Cost.join_edges <- c.Cost.join_edges + Array.length frontier + Apex.ext_cardinal ext
  | None -> ()

(* The (approximate) extent of a prefix as the chain join consumes it: a
   single summary node stays in whatever representation the store serves —
   with the [`Block] codec a compressed view the semijoin kernels can skip
   through — and only genuine multi-node unions materialize. *)
let union_extent_refs ?cost t nodes =
  let ftok = Tr.begin_ Tr.Fetch in
  let r =
    match nodes with
    | [ n ] -> Apex.extent_ref ?cost t n
    | ns -> Apex.Mem (Edge_set.union_many (List.map (fun n -> Apex.load_extent ?cost t n) ns))
  in
  Tr.end_arg ftok (List.length nodes);
  let jtok = Tr.begin_ Tr.Join in
  Tr.end_arg jtok (Apex.ext_cardinal r);
  r

let union_endpoints ?cost t nodes =
  let ftok = Tr.begin_ Tr.Fetch in
  let arrays = List.map (fun n -> Apex.load_endpoints ?cost t n) nodes in
  Tr.end_arg ftok (List.length arrays);
  let jtok = Tr.begin_ Tr.Join in
  let u = Int_sorted.union_many arrays in
  Tr.end_arg jtok (Array.length u);
  u

(* locate a (sub)path; each lookup touches one hash-tree page (H_APEX is
   shallow: a handful of hnodes per suffix chain fit one page) *)
let locate ?cost t ~rev_path =
  (match cost with
   | Some c -> c.Cost.struct_pages <- c.Cost.struct_pages + 1
   | None -> ());
  Hash_tree.locate ?cost (Apex.tree t) ~rev_path

let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

(* Multi-way extent join for a prefix sweep: [anchor_nodes] exactly cover
   the prefix; [chain] holds the (approximate) extent unions of each longer
   prefix, in path order. One forward semijoin pass fully reduces the last
   set of a chain query, and only the reachable-node frontier needs to be
   carried between steps — no intermediate edge set is materialized.

   Selectivity ordering: before the forward pass, backward semijoin
   reductions run wherever a set dwarfs its successor (cardinalities are
   already in hand), so the most selective extents prune their bigger
   neighbors first. Each backward reduction only discards edges with no
   successor in the next set, which cannot change the final frontier. *)
let backward_reduce_ratio = 8

let chain_join ?cost t anchor_nodes chain =
  let jtok = Tr.begin_ Tr.Join in
  let result =
    let chain = Array.of_list chain in
    let k = Array.length chain in
    let empty r = Apex.ext_cardinal r = 0 in
    if Array.exists empty chain then [||]
    else begin
      let shrunk = ref false in
      for i = k - 2 downto 0 do
        if
          Apex.ext_cardinal chain.(i)
          > backward_reduce_ratio * Apex.ext_cardinal chain.(i + 1)
        then begin
          let next_parents = Edge_set.parents (Apex.ext_materialize ?cost chain.(i + 1)) in
          charge_join_ref cost next_parents chain.(i);
          chain.(i) <- Apex.Mem (Apex.ext_semijoin_children ?cost chain.(i) next_parents);
          shrunk := true
        end
      done;
      if !shrunk && Array.exists empty chain then [||]
      else begin
        let frontier = ref (union_endpoints ?cost t anchor_nodes) in
        let i = ref 0 in
        while !i < k && Array.length !frontier > 0 do
          charge_join_ref cost !frontier chain.(!i);
          frontier := Apex.ext_semijoin_endpoints ?cost chain.(!i) !frontier;
          incr i
        done;
        !frontier
      end
    end
  in
  Tr.end_arg jtok (Array.length result);
  result

let eval_q1 ?cost t path =
  let n = List.length path in
  let rev = List.rev path in
  match locate ?cost t ~rev_path:rev with
  | None -> [||]
  | Some (Hash_tree.Exact nodes) ->
    (* the whole path is a stored suffix: the answer is a k-way union of
       memoized endpoint arrays — no joins, no sorting *)
    union_endpoints ?cost t nodes
  | Some (Hash_tree.Approx nodes_full) ->
    (* sweep prefixes l_i..l_j for j = n-1 downto 1, keeping each looked-up
       edge set; the sweep must reach an exactly-covered prefix by j = 1
       since every length-1 path is required *)
    let e_full = union_extent_refs ?cost t nodes_full in
    let rec sweep j acc =
      if j = 0 then [||] (* unreachable: length-1 lookups are exact *)
      else
        let rev_prefix = drop (n - j) rev in
        match locate ?cost t ~rev_path:rev_prefix with
        | None -> [||]
        | Some (Hash_tree.Exact anchor_nodes) -> chain_join ?cost t anchor_nodes acc
        | Some (Hash_tree.Approx nodes) ->
          sweep (j - 1) (union_extent_refs ?cost t nodes :: acc)
    in
    sweep (n - 1) [ e_full ]

(* QTYPE2 is the paper's two-phase plan: (1) query pruning and rewriting by
   navigating G_APEX from the nodes whose incoming label is [la], collecting
   every label sequence la.m_1...m_k.lb reachable over non-attribute edges
   (Section 6.1's no-dereference rule); (2) each rewritten sequence is
   answered. The rewrite search already joins extents along every branch as
   its pruning oracle, so phase 2 reuses those partial joins directly: the
   union of the running joins over all branches spelling a sequence IS that
   sequence's QTYPE1 answer (each branch's join is a subset of T(seq) by
   construction, and every data path has a witnessing branch). Re-evaluation
   through [eval_q1] remains only as the fallback for sequences without a
   captured join ([reuse_partial_joins:false] forces it everywhere — the old
   two-phase plan, kept as the reference for equivalence tests). *)
let eval_q2 ?cost ?on_sequence ?(max_rewrite_depth = 16) ?(reuse_partial_joins = true) t la
    lb =
  let labels = G.labels (Apex.graph t) in
  match Hash_tree.locate ?cost (Apex.tree t) ~rev_path:[ la ] with
  | None | Some (Hash_tree.Approx _) -> [||]
  | Some (Hash_tree.Exact starts) ->
    let pages_seen = Hashtbl.create 32 in
    let visit (node : Gapex.node) =
      match cost with
      | Some c ->
        c.Cost.index_node_visits <- c.Cost.index_node_visits + 1;
        let page = node.Gapex.id / 128 in
        if not (Hashtbl.mem pages_seen page) then begin
          Hashtbl.add pages_seen page ();
          c.Cost.struct_pages <- c.Cost.struct_pages + 1
        end
      | None -> ()
    in
    (* Summary nodes may repeat along a rewriting (recursive structures
       summarize to cycles), so the search cannot simply forbid revisits;
       instead the running extent join is carried as a pruning oracle — a
       branch whose join is empty has no data witness and is cut, which is
       also what terminates cycles, with [max_rewrite_depth] as a backstop. *)
    let extent_cache : (int, Apex.extent_ref) Hashtbl.t = Hashtbl.create 64 in
    let extent_of (node : Gapex.node) =
      match Hashtbl.find_opt extent_cache node.Gapex.id with
      | Some e -> e
      | None ->
        let ftok = Tr.begin_ Tr.Fetch in
        let e = Apex.extent_ref ?cost t node in
        Tr.end_arg ftok (Apex.ext_cardinal e);
        Hashtbl.add extent_cache node.Gapex.id e;
        e
    in
    (* rewriting -> union of the running joins of the branches spelling it
       (None when partial-join reuse is off) *)
    let rewritings : (Label.t list, int array option) Hashtbl.t = Hashtbl.create 32 in
    let record seq frontier =
      if reuse_partial_joins then
        let acc =
          match Hashtbl.find_opt rewritings seq with
          | Some (Some prev) -> Int_sorted.union prev frontier
          | Some None | None -> frontier
        in
        Hashtbl.replace rewritings seq (Some acc)
      else Hashtbl.replace rewritings seq None
    in
    let rec rewrite (node : Gapex.node) frontier rev_seq depth =
      visit node;
      List.iter
        (fun (l, (y : Gapex.node)) ->
          if not (Label.is_attribute labels l) then begin
            (match cost with
             | Some c -> c.Cost.index_edge_lookups <- c.Cost.index_edge_lookups + 1
             | None -> ());
            let ey = extent_of y in
            charge_join_ref cost frontier ey;
            let nxt = Apex.ext_semijoin_endpoints ?cost ey frontier in
            if Array.length nxt > 0 then begin
              let rev_seq = l :: rev_seq in
              if l = lb then record (List.rev rev_seq) nxt;
              if depth < max_rewrite_depth then rewrite y nxt rev_seq (depth + 1)
            end
          end)
        (Gapex.out_edges node)
    in
    let jtok = Tr.begin_ Tr.Join in
    List.iter
      (fun (start : Gapex.node) ->
        rewrite start (Apex.load_endpoints ?cost t start) [ la ] 1)
      starts;
    Tr.end_arg jtok (Hashtbl.length rewritings);
    let results =
      Hashtbl.fold
        (fun seq partial acc ->
          (match on_sequence with Some f -> f seq | None -> ());
          (match partial with
           | Some frontier -> frontier
           | None -> eval_q1 ?cost t seq)
          :: acc)
        rewritings []
    in
    Int_sorted.union_many results

let eval_q3 ?cost ?table t path value =
  let candidates = eval_q1 ?cost t path in
  match table with
  | Some tbl -> Repro_storage.Data_table.filter_matching ?cost tbl candidates value
  | None ->
    let keep nid =
      match G.value (Apex.graph t) nid with
      | Some v -> String.equal v value
      | None -> false
    in
    Array.of_seq (Seq.filter keep (Array.to_seq candidates))

let eval ?cost ?table ?on_sequence ?max_rewrite_depth ?reuse_partial_joins t compiled =
  (* plan selection is a constructor dispatch — the span is (honestly)
     zero-length, but its presence makes per-query phase coverage uniform *)
  let ptok = Tr.begin_ Tr.Plan in
  Tr.end_ ptok;
  let result =
    match compiled with
    | Query.C1 path -> eval_q1 ?cost t path
    | Query.C2 (la, lb) ->
      eval_q2 ?cost ?on_sequence ?max_rewrite_depth ?reuse_partial_joins t la lb
    | Query.C3 (path, value) -> eval_q3 ?cost ?table t path value
  in
  let mtok = Tr.begin_ Tr.Materialize in
  Tr.end_arg mtok (Array.length result);
  result

let eval_query ?cost ?table ?on_sequence t q =
  let ptok = Tr.begin_ Tr.Parse in
  let compiled = Query.compile (G.labels (Apex.graph t)) q in
  Tr.end_ ptok;
  match compiled with
  | Some compiled -> eval ?cost ?table ?on_sequence t compiled
  | None -> [||]
