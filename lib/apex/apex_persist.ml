(* Image layout (flat ints):
     [magic] [n_nodes] [root_index]
     per node (in index order):
       [extent_len] extent-entries  [out_degree] ([label] [target_index])*
     hash-tree stream (Hash_tree.encode format)

   Two extent encodings, distinguished by the magic:
     v1 ("APEX"): absolute packed edges, one per entry;
     v2 ("APX2"): first edge absolute, then gaps — extents are strictly
       increasing, so every gap is >= 1 and far smaller than an absolute
       packed edge. Images written today are v2; [of_image] reads both,
       so snapshots taken before the block-compression change recover. *)

module Edge_set = Repro_graph.Edge_set
module Vec = Repro_util.Vec

let magic = 0x41504558 (* "APEX": v1 *)
let magic_v2 = 0x41505832 (* "APX2" *)

let push_extent_v1 out extent =
  Vec.push out (Array.length extent);
  Array.iter (Vec.push out) extent

let push_extent_v2 out (extent : int array) =
  let n = Array.length extent in
  Vec.push out n;
  if n > 0 then begin
    Vec.push out extent.(0);
    for i = 1 to n - 1 do
      Vec.push out (extent.(i) - extent.(i - 1))
    done
  end

let image ~v2 apex =
  let gapex = Apex.summary apex in
  let nodes = Gapex.reachable gapex in
  let index_of = Hashtbl.create (List.length nodes) in
  List.iteri (fun i (n : Gapex.node) -> Hashtbl.add index_of n.Gapex.id i) nodes;
  let node_index (n : Gapex.node) =
    match Hashtbl.find_opt index_of n.Gapex.id with
    | Some i -> i
    | None -> invalid_arg "Apex_persist.save: hash tree references an unreachable node"
  in
  let out = Vec.create ~capacity:1024 () in
  Vec.push out (if v2 then magic_v2 else magic);
  Vec.push out (List.length nodes);
  Vec.push out (node_index (Gapex.xroot gapex));
  List.iter
    (fun (n : Gapex.node) ->
      let extent = (n.Gapex.extent :> int array) in
      if v2 then push_extent_v2 out extent else push_extent_v1 out extent;
      let edges = Gapex.out_edges n in
      Vec.push out (List.length edges);
      List.iter
        (fun (l, y) ->
          Vec.push out l;
          Vec.push out (node_index y))
        edges)
    nodes;
  List.iter (Vec.push out) (Hash_tree.encode (Apex.tree apex) ~node_index);
  Vec.to_array out

let to_image apex = image ~v2:true apex
let to_image_v1 apex = image ~v2:false apex

let save apex store = Repro_storage.Extent_store.append_ints store (to_image apex)

(* Every length/count read from the image is bounded against the bytes that
   remain BEFORE allocating — a bit flip in a length field must raise
   [Invalid_argument], not attempt a multi-gigabyte allocation. *)
let of_image graph arr =
  let len_arr = Array.length arr in
  let pos = ref 0 in
  let next () =
    if !pos >= len_arr then invalid_arg "Apex_persist.load: truncated image"
    else begin
      let v = arr.(!pos) in
      incr pos;
      v
    end
  in
  let m = next () in
  let v2 =
    if m = magic then false
    else if m = magic_v2 then true
    else invalid_arg "Apex_persist.load: bad magic"
  in
  let n_nodes = next () in
  if n_nodes <= 0 || n_nodes > len_arr then invalid_arg "Apex_persist.load: bad node count";
  let root_index = next () in
  if root_index < 0 || root_index >= n_nodes then invalid_arg "Apex_persist.load: bad root";
  (* first pass: read extents and edge lists *)
  let extents = Array.make n_nodes Edge_set.empty in
  let edges = Array.make n_nodes [] in
  for i = 0 to n_nodes - 1 do
    let len = next () in
    (* both encodings spend exactly [len] words on a length-[len] extent *)
    if len < 0 || len > len_arr - !pos then
      invalid_arg "Apex_persist.load: bad extent length";
    let packed =
      if not v2 then begin
        let packed = Array.sub arr !pos len in
        pos := !pos + len;
        Array.iter
          (fun v -> if v < 0 then invalid_arg "Apex_persist.load: bad extent entry")
          packed;
        packed
      end
      else begin
        let packed = Array.make len 0 in
        if len > 0 then begin
          let first = next () in
          if first < 0 then invalid_arg "Apex_persist.load: bad extent entry";
          packed.(0) <- first;
          let acc = ref first in
          for k = 1 to len - 1 do
            let gap = next () in
            if gap < 1 then invalid_arg "Apex_persist.load: bad extent gap";
            acc := !acc + gap;
            if !acc < 0 then invalid_arg "Apex_persist.load: extent entry overflow";
            packed.(k) <- !acc
          done
        end;
        packed
      end
    in
    extents.(i) <- Edge_set.of_packed_array packed;
    let deg = next () in
    if deg < 0 || deg > (len_arr - !pos) / 2 then
      invalid_arg "Apex_persist.load: bad out-degree";
    let adj = ref [] in
    for _ = 1 to deg do
      let l = next () in
      let target = next () in
      adj := (l, target) :: !adj
    done;
    edges.(i) <- List.rev !adj
  done;
  (* materialize the node objects: the root first (Gapex.create), the rest
     via new_node, then rewire *)
  let gapex = Gapex.create ~root_extent:extents.(root_index) in
  let nodes =
    Array.init n_nodes (fun i ->
        if i = root_index then Gapex.xroot gapex
        else begin
          let n = Gapex.new_node gapex in
          n.Gapex.extent <- extents.(i);
          n
        end)
  in
  Array.iteri
    (fun i adj ->
      List.iter
        (fun (l, target) ->
          if target < 0 || target >= n_nodes then invalid_arg "Apex_persist.load: bad edge";
          Gapex.make_edge nodes.(i) l nodes.(target))
        adj)
    edges;
  let tree = Hash_tree.decode ~node_of:(fun i ->
      if i < 0 || i >= n_nodes then invalid_arg "Apex_persist.load: bad slot index"
      else nodes.(i)) arr ~pos
  in
  if !pos <> len_arr then invalid_arg "Apex_persist.load: trailing data";
  Apex.assemble ~graph ~gapex ~tree

let load graph store handle =
  of_image graph (Repro_storage.Extent_store.load_ints store handle)

module Snapshot = struct
  module ES = Repro_storage.Extent_store
  module BP = Repro_storage.Buffer_pool
  module P = Repro_storage.Pager
  module C = Repro_storage.Codec

  let super_magic = 0x41505853 (* "APXS" *)
  let slot_bytes = 64

  type t = {
    store : ES.t;
    superblock : P.pid;
    mutable epoch : int; [@apex.guarded "commit"]
        (* advanced only inside [commit]/[rollback], the single-writer
           epoch protocol the snapshot exists to implement *)
  }
  [@@apex.shared]

  (* One commit slot, 64 bytes on the superblock page:
       [magic] [epoch] [first_page] [first_off] [n_bytes] [n_ints]
       [image_crc] [slot_crc]
     [slot_crc] covers the first 56 bytes, so a torn or flipped slot is
     recognizably invalid. Slots ping-pong by epoch parity: epoch e lives at
     offset [(e land 1) * 64], so a commit never overwrites the slot it
     would fall back to. *)
  type slot = { s_epoch : int; s_handle : ES.handle; s_crc : int }

  let pager_of t = BP.pager (ES.pool t.store)

  (* The superblock must stay readable even when its page checksum is
     broken (a write fault landed on it): slot CRCs arbitrate validity, so
     fall back to the raw buffer rather than propagate [Invalid_argument]. *)
  let read_super t =
    let pager = pager_of t in
    match P.read pager t.superblock with
    | page -> page
    | exception Invalid_argument _ -> Bytes.copy (P.unsafe_borrow pager t.superblock)

  let write_slot page off ~epoch ~handle ~image_crc =
    let first_page, first_off, n_bytes, n_ints = ES.handle_fields handle in
    C.set_i64 page off super_magic;
    C.set_i64 page (off + 8) epoch;
    C.set_i64 page (off + 16) first_page;
    C.set_i64 page (off + 24) first_off;
    C.set_i64 page (off + 32) n_bytes;
    C.set_i64 page (off + 40) n_ints;
    C.set_i64 page (off + 48) image_crc;
    C.set_i64 page (off + 56) (C.crc32 ~pos:off ~len:56 page)

  let read_slot page off =
    if C.get_i64 page (off + 56) <> C.crc32 ~pos:off ~len:56 page then None
    else if C.get_i64 page off <> super_magic then None
    else begin
      let epoch = C.get_i64 page (off + 8) in
      let first_page = C.get_i64 page (off + 16) in
      let first_off = C.get_i64 page (off + 24) in
      let n_bytes = C.get_i64 page (off + 32) in
      let n_ints = C.get_i64 page (off + 40) in
      let image_crc = C.get_i64 page (off + 48) in
      if epoch <= 0 then None
      else
        match ES.handle_of_fields ~first_page ~first_off ~n_bytes ~n_ints with
        | handle -> Some { s_epoch = epoch; s_handle = handle; s_crc = image_crc }
        | exception Invalid_argument _ -> None
    end

  let valid_slots t =
    let page = read_super t in
    let slots = List.filter_map (fun i -> read_slot page (i * slot_bytes)) [ 0; 1 ] in
    List.sort (fun a b -> Int.compare b.s_epoch a.s_epoch) slots

  let create store =
    let pager = BP.pager (ES.pool store) in
    if P.page_size pager < 2 * slot_bytes then
      invalid_arg "Apex_persist.Snapshot.create: page size below 128 bytes";
    let superblock = P.alloc pager in
    { store; superblock; epoch = 0 }

  let attach store ~superblock =
    let t = { store; superblock; epoch = 0 } in
    (* resume epoch numbering past any surviving commit, so the next commit
       targets the older (or invalid) slot *)
    (match valid_slots t with s :: _ -> t.epoch <- s.s_epoch | [] -> ());
    t

  let superblock t = t.superblock
  let epoch t = t.epoch
  let store t = t.store

  let commit t apex =
    Repro_telemetry.Trace.with_span Repro_telemetry.Trace.Snapshot_commit
      (fun () ->
        let image = to_image apex in
        let image_crc = C.crc32_ints image in
        let pager = pager_of t in
        (* separator: force the store onto a page no committed image shares,
           so appending this image can never rewrite a previous image's tail
           page *)
        ignore (P.alloc pager : P.pid);
        let handle = ES.append_ints t.store image in
        let e = t.epoch + 1 in
        let page = read_super t in
        write_slot page ((e land 1) * slot_bytes) ~epoch:e ~handle ~image_crc;
        (* the commit point: the image is fully on disk before the slot that
           names it is written. A crash anywhere earlier leaves the previous
           epoch's slot as the newest valid one. *)
        BP.write (ES.pool t.store) t.superblock page;
        t.epoch <- e;
        Repro_telemetry.Trace.event Repro_telemetry.Trace.Epoch_committed e;
        e)

  let load_latest_inner t graph =
    let rec try_slots = function
      | [] -> invalid_arg "Apex_persist.Snapshot.load_latest: no valid snapshot"
      | s :: rest -> (
        match
          let image = ES.load_ints t.store s.s_handle in
          if C.crc32_ints image <> s.s_crc then
            invalid_arg "Apex_persist.Snapshot.load_latest: image checksum mismatch";
          of_image graph image
        with
        | apex ->
          (* adopt the recovered epoch: the NEXT commit then overwrites the
             other slot — the one that was corrupt or incomplete *)
          t.epoch <- s.s_epoch;
          apex
        | exception Invalid_argument _ -> try_slots rest)
    in
    try_slots (valid_slots t)

  let load_latest t graph =
    Repro_telemetry.Trace.with_span Repro_telemetry.Trace.Recovery (fun () ->
        load_latest_inner t graph)
end
