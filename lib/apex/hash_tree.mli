(** The hash tree [H_APEX] (Sections 4–5).

    Label paths are stored in {e reverse}: the root hnode (HashHead) is
    keyed by the last label of a path, subtrees by earlier labels. Each
    entry carries the five fields of Figure 7 — label, count, new, xnode,
    next — and every hnode additionally has a [remainder] slot holding the
    [G_APEX] node for "all paths ending with this suffix not covered by a
    longer required path" (Definition 9's target edge sets).

    Invariant maintained across extraction + update: an entry never has
    both a non-empty [next] and a non-empty [xnode]. *)

type t

type slot
(** A mutable xnode field — either an entry's or a remainder's. *)

val create : unit -> t

val slot_get : slot -> Gapex.node option
val slot_set : slot -> Gapex.node option -> unit

val slot_uid : slot -> int
(** Process-unique id, stable for the slot's lifetime — lets maintenance
    passes collect per-slot deltas in hash tables and compare the slot
    sets an edge resolves to before and after a data change. *)

(** {1 Lookup (Figure 9)} *)

val lookup_slot :
  ?cost:Repro_storage.Cost.t ->
  ?create_head:bool ->
  t ->
  rev_path:Repro_graph.Label.t list ->
  slot option
(** [rev_path] is the label path last-label-first (lookup order). Returns
    the slot representing the {e longest required suffix} of the path: the
    matched entry's slot when it is a maximal suffix, otherwise the
    appropriate remainder slot. With [create_head] (update-time behaviour,
    default false) a missing HashHead entry is created — length-1 paths are
    always required; without it a missing HashHead entry yields [None]. *)

type located =
  | Exact of Gapex.node list
      (** the stored suffixes cover exactly the queried path; the nodes'
          extents union to [T(path)] *)
  | Approx of Gapex.node list
      (** only a shorter suffix is stored; the nodes over-approximate and a
          join pass is needed *)

val locate : ?cost:Repro_storage.Cost.t -> t -> rev_path:Repro_graph.Label.t list -> located option
(** Query-time location: [None] means the last label is unknown (empty
    result). [Exact nodes] collects every node under the matched subtree
    (all longer-suffix entries plus remainders). *)

(** {1 Workload extraction (Figure 8)} *)

val reset_marks : t -> unit
(** Set all counts to 0 and all new-flags to false (line 1). *)

val count_workload : t -> Repro_pathexpr.Label_path.t list -> unit
(** Count every distinct subpath of every query, creating entries as
    needed; a query containing a subpath several times counts once. *)

val ensure_path : t -> Repro_pathexpr.Label_path.t -> unit
(** Create the entry chain for a forward label path without touching any
    count, so {!prune}'s decide callback is consulted for it even when the
    current window never counted it. The caller must keep the set of
    ensured-and-kept paths closed under contiguous subpaths — the closure
    that {!find_slots} and the update traversal depend on. *)

val prune :
  t ->
  decide:(path:Repro_pathexpr.Label_path.t -> count:int -> is_new:bool -> bool) ->
  unit
(** Remove entries the callback rejects (never from HashHead — a rejected
    head entry only loses its subtree), dropping emptied hnodes, and
    invalidate the xnode slots whose contents the change affects (Figure 8
    lines 10–15; additionally, deleting an entry invalidates its sibling
    remainder, whose target edge set grows — a case Figure 8's pseudo-code
    does not spell out). [path] is the entry's forward label path, [count]
    its workload count from {!count_workload}, [is_new] whether this
    window's counting created it. Support-only extraction passes
    [fun ~path:_ ~count ~is_new:_ -> count >= k]; the decide set must stay
    closed under contiguous subpaths. *)

(** {1 Introspection} *)

val iter_slots : t -> (Repro_graph.Label.t list -> slot -> bool -> unit) -> unit
(** [f suffix slot is_remainder] for every slot in the tree; [suffix] is in
    path order (first label … last label). Remainder slots are visited with
    the suffix of their {e hnode}'s path. *)

val n_entries : t -> int
(** Total entries across all hnodes (HashHead included). *)

val depth : t -> int
(** Maximum number of labels one lookup can consume (HashHead counts 1,
    each nested hnode level one more). Bounds how far downstream of a data
    change slot assignments can shift: the slot of an edge depends on at
    most [depth] trailing labels of its incoming paths. *)

(** {1 Reverse slot resolution (incremental maintenance)} *)

type finder
(** Memoized reverse walk answering "which slots is this data edge assigned
    to?" against one side (pre- or post-change) of a data graph. *)

val finder :
  t ->
  in_edges:(int -> (Repro_graph.Label.t * int) list) ->
  is_root:(int -> bool) ->
  finder
(** [in_edges x] must return the incoming [(label, source)] edges of data
    node [x] whose sources are root-reachable in the graph side being
    resolved — a {!lookup_slot} resolution is only witnessed by paths that
    complete to the root. The memo assumes both callbacks are stable for
    the finder's lifetime (use one finder per graph version). *)

val find_slots : finder -> label:Repro_graph.Label.t -> source:int -> slot list
(** All distinct slots the edge [(source, label, _)] is assigned to: one
    per distinct {!lookup_slot} resolution of [label ::] a reverse
    root-anchored path of [source], sorted by {!slot_uid}. The caller must
    ensure [source] is root-reachable. A missing HashHead entry for [label]
    is created (length-1 paths are always required), as the update
    traversal does. *)

val find_assignments :
  finder -> label:Repro_graph.Label.t -> source:int -> (slot option * slot) list
(** The {!find_slots} results paired with the slots of the paths they are
    witnessed through: [(parent, child)] where, for some root-anchored path
    [p] reaching [source], [parent] resolves [p] and [child] resolves
    [label :: p]. A [None] parent is the empty path — the summary root
    ([source] is the data root). Deduplicated; needed by re-linking because
    [G_APEX] stores one child per (node, label): each added assignment must
    attach to exactly the parents that witness it. *)

val check_invariant : t -> bool
(** No entry has both a subtree and an xnode. *)

(** {1 Persistence} *)

val encode : t -> node_index:(Gapex.node -> int) -> int list
(** Flat integer encoding of the whole tree (labels, counts, flags, slot
    node indices, subtree structure), for {!Apex_persist}. *)

val decode : node_of:(int -> Gapex.node) -> int array -> pos:int ref -> t
(** Inverse of {!encode}, reading from [arr] starting at [!pos] and
    advancing it. @raise Invalid_argument on a malformed image. *)
