(** The graph structure [G_APEX] (Section 4).

    Nodes carry extents (edge sets over the data graph) and summary edges.
    A node has at most one outgoing edge per label: [make_edge] replaces an
    existing same-label edge, as the paper's [make_edge] prescribes.
    Replaced nodes are kept alive only while something still points at them;
    the structure reported to users is the part reachable from [xroot]. *)

type node = {
  id : int;
  mutable extent : Repro_graph.Edge_set.t;
  out : (Repro_graph.Label.t, node) Hashtbl.t;
  mutable visited : bool;  (** updateAPEX traversal mark *)
  mutable handle : Repro_storage.Extent_store.handle option;
      (** set by materialization; extents then load through the buffer pool *)
}

type t

val create : root_extent:Repro_graph.Edge_set.t -> t
(** A fresh graph whose [xroot] holds the [<NULL, root>] pseudo-edge. *)

val xroot : t -> node

val new_node : t -> node
(** Fresh node with empty extent. *)

val make_edge : node -> Repro_graph.Label.t -> node -> unit
(** Add [x --l--> y], replacing any existing [l]-edge out of [x]. *)

val out_edges : node -> (Repro_graph.Label.t * node) list
(** Sorted by label for deterministic iteration. *)

val reachable : t -> node list
(** Nodes reachable from [xroot], including it. *)

val reset_visited : t -> unit
(** Clear traversal marks on all reachable nodes. *)

val prune_edges : t -> live:(node -> bool) -> unit
(** Remove every summary edge whose target fails [live] (incremental
    maintenance hygiene: edges into nodes whose hash-tree slot was cleared
    would otherwise keep dead extents reachable — inflating {!stats} and
    materialization — forever). *)

val stats : t -> int * int
(** Reachable [(nodes, edges)] — the numbers reported in Table 2 ([xroot]
    included, matching the paper's APEX0 node counts of label-count+1). *)
