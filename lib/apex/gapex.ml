type node = {
  id : int;
  mutable extent : Repro_graph.Edge_set.t;
  out : (Repro_graph.Label.t, node) Hashtbl.t;
  mutable visited : bool;
  mutable handle : Repro_storage.Extent_store.handle option;
}

type t = {
  mutable next_id : int;
  root : node;
}
[@@apex.shared]

let mk_node id extent =
  { id; extent; out = Hashtbl.create 4; visited = false; handle = None }

let create ~root_extent = { next_id = 1; root = mk_node 0 root_extent }

let xroot t = t.root

let new_node t =
  let n = mk_node t.next_id Repro_graph.Edge_set.empty in
  t.next_id <- t.next_id + 1;
  n

let make_edge x l y = Hashtbl.replace x.out l y

let out_edges x =
  Hashtbl.fold (fun l y acc -> (l, y) :: acc) x.out []
  |> List.sort (fun (l1, _) (l2, _) -> Int.compare l1 l2)

let iter_reachable t f =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      f n;
      Hashtbl.iter (fun _ y -> go y) n.out
    end
  in
  go t.root

let reachable t =
  let acc = ref [] in
  iter_reachable t (fun n -> acc := n :: !acc);
  List.rev !acc

let reset_visited t = iter_reachable t (fun n -> n.visited <- false)

let prune_edges t ~live =
  (* snapshot the node list first: removing edges during [iter_reachable]
     would mutate the tables being traversed *)
  List.iter
    (fun n ->
      let dead = Hashtbl.fold (fun l y acc -> if live y then acc else l :: acc) n.out [] in
      List.iter (Hashtbl.remove n.out) dead)
    (reachable t)

let stats t =
  let nodes = ref 0 and edges = ref 0 in
  iter_reachable t (fun n ->
      incr nodes;
      edges := !edges + Hashtbl.length n.out);
  (!nodes, !edges)
