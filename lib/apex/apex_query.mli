(** Query evaluation over APEX (Section 6.1, "Query Processor
    Implementation").

    - QTYPE1 [//l_i/.../l_n]: look the full path up in [H_APEX] (in reverse);
      if the longest stored suffix covers the whole path, the answer is a
      k-way union of memoized endpoint arrays ({!Apex.load_endpoints}) — no
      joins. Otherwise the processor looks up each prefix [l_i..l_j]
      (j decreasing) until one is covered exactly, keeping the union of
      extents per lookup, and reduces the chain with semijoins: backward
      reductions wherever a set dwarfs its successor (selectivity ordering —
      the cardinalities are already in hand), then one forward pass carrying
      only the reachable-node frontier (an int array) between steps, never
      materializing an intermediate edge set.
    - QTYPE2 [//l_i//l_j]: query pruning and rewriting on [G_APEX] — a
      depth-first search from the nodes whose incoming label is [l_i],
      following non-attribute edges, joining extents along the way and
      emitting results whenever an [l_j]-edge is crossed. Branches with an
      empty running edge set are pruned. The running joins double as the
      answers: the union of the frontiers over all branches spelling a
      rewriting equals that rewriting's QTYPE1 result, so re-evaluation is
      only a fallback.
    - QTYPE3 [//path\[text()=v\]]: QTYPE1 followed by data-table probes.

    Results are nid arrays sorted ascending (document order). *)

val eval :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  ?on_sequence:(Repro_pathexpr.Label_path.t -> unit) ->
  ?max_rewrite_depth:int ->
  ?reuse_partial_joins:bool ->
  Apex.t ->
  Repro_pathexpr.Query.compiled ->
  Repro_graph.Data_graph.nid array
(** [table] is used for QTYPE3 value checks when provided (charging
    [table_pages]); otherwise values are read from the in-memory graph.
    [on_sequence] is called once per QTYPE2 rewriting the search matched
    (the label sequences la.m_1...m_k.lb with data witnesses) — the
    workload-logging hook: these are the concrete paths a partial-match
    query used.
    [max_rewrite_depth] (default 16) bounds QTYPE2 rewriting length —
    summary nodes may repeat along a rewriting (recursive structures
    summarize to cycles); branches whose running edge set joins to empty
    are pruned, which on data whose non-attribute region is acyclic makes
    the bound vacuous for paths that could produce results.
    [reuse_partial_joins] (default [true]) answers QTYPE2 rewritings from
    the running joins carried by the rewrite search; [false] re-evaluates
    every rewriting through QTYPE1 — the paper's original two-phase plan,
    kept as the reference for equivalence tests. Both produce identical
    results. *)

val eval_query :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  ?on_sequence:(Repro_pathexpr.Label_path.t -> unit) ->
  Apex.t ->
  Repro_pathexpr.Query.t ->
  Repro_graph.Data_graph.nid array
(** Compile against the data graph's label table, then {!eval}; a query
    naming an unknown label returns the empty result. *)
