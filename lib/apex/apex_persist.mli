(** Persistence: serialize a whole APEX instance — [G_APEX] nodes, extents,
    summary edges, and the [H_APEX] hash tree — into the page store, and
    load it back against the same data graph.

    The image is a flat integer stream stored like any extent, so it rides
    the same pager/buffer-pool machinery. Loading restores structure and
    extents exactly ({!Apex_spec.apex_extents} of the copy equals the
    original's); materialization state is not part of the image — call
    {!Apex.materialize} on the loaded index before running costed
    queries.

    {!Snapshot} adds crash consistency on top: atomic commit epochs with
    ping-pong commit slots and CRC-validated images, recovering to the
    newest complete epoch after a crash mid-save. *)

val to_image : Apex.t -> int array
(** The flat integer image of the index, independent of any store.
    Written in the v2 format ("APX2" magic): extents are stored as a
    first edge plus gaps, which shrinks images the same way the [`Block]
    extent codec shrinks stored extents. *)

val to_image_v1 : Apex.t -> int array
(** The legacy v1 image ("APEX" magic, absolute extent entries) — kept so
    back-compat reads stay testable against freshly generated images. *)

val of_image : Repro_graph.Data_graph.t -> int array -> Apex.t
(** Inverse of {!to_image}; dispatches on the magic word and accepts both
    the v1 and v2 formats, so pre-existing snapshots keep loading. Every
    length and count field is validated against the remaining stream
    before use, so arbitrarily corrupted images fail cleanly instead of
    over-allocating or looping (v2 additionally rejects non-positive
    gaps).
    @raise Invalid_argument on any malformed image. *)

val save : Apex.t -> Repro_storage.Extent_store.t -> Repro_storage.Extent_store.handle
(** Write the index image at the store's tail. *)

val load :
  Repro_graph.Data_graph.t ->
  Repro_storage.Extent_store.t ->
  Repro_storage.Extent_store.handle ->
  Apex.t
(** Rebuild the index from an image. The graph must be the one the saved
    index was built over (extents reference its nids).
    @raise Invalid_argument on a malformed image. *)

(** Crash-consistent snapshot epochs.

    A snapshot owns one superblock page holding two 64-byte commit slots.
    {!Snapshot.commit} appends the full index image to the extent store
    (never sharing a page with a previously committed image), then writes a
    commit slot — [epoch], image location, image CRC-32, and a slot CRC —
    as the last step. Slots ping-pong by epoch parity, so the slot a
    recovery would fall back to is never the one being overwritten.

    {!Snapshot.load_latest} picks the valid slot with the highest epoch,
    verifies the image CRC, and falls back to the other slot if the image
    fails to parse — a crash at ANY injectable fault site during commit
    recovers either the epoch being written (if it completed) or the
    previous one. *)
module Snapshot : sig
  type t

  val create : Repro_storage.Extent_store.t -> t
  (** Allocate a fresh superblock page in the store's pager. Requires a
      page size of at least 128 bytes. @raise Invalid_argument otherwise. *)

  val attach : Repro_storage.Extent_store.t -> superblock:Repro_storage.Pager.pid -> t
  (** Re-open an existing snapshot after a crash: point a (possibly fresh)
      store at the surviving superblock page. Epoch numbering resumes past
      the newest valid slot. *)

  val superblock : t -> Repro_storage.Pager.pid
  (** The superblock's page id — the only value a caller must remember
      across a crash. *)

  val epoch : t -> int
  (** Newest committed (or recovered) epoch; 0 before any commit. *)

  val store : t -> Repro_storage.Extent_store.t

  val commit : t -> Apex.t -> int
  (** Atomically persist a new epoch; returns its number. On a fault mid-
      commit ({!Repro_storage.Fault.Injected} or [Invalid_argument]) the
      previous epoch remains the recovery target and [epoch t] is
      unchanged. *)

  val load_latest : t -> Repro_graph.Data_graph.t -> Apex.t
  (** Recover the newest complete epoch, falling back across slots on any
      validation failure. @raise Invalid_argument if no valid snapshot
      survives (e.g. before the first completed commit). *)
end
