(** APEX — the adaptive path index (Sections 4–5).

    An index instance owns a hash tree ({!Hash_tree}) and a graph summary
    ({!Gapex}) over one data graph. {!build} constructs APEX0 (Figure 6,
    every label path of length ≤ 2 represented); {!refresh} runs
    frequently-used-path extraction over a query workload (Figure 8)
    followed by the incremental update (Figure 11) — it never rebuilds from
    scratch.

    The update engine unifies Figure 6 and Figure 11: both are a traversal
    that, per visited node, groups the outgoing data edges of its extent's
    endpoints by label, routes each group to the [G_APEX] node designated by
    the hash-tree lookup of the traversal path (creating nodes for
    invalidated or new slots), and recurses on extent growth. It deviates
    from Figure 11's letter in one respect: a node first visited through an
    extent-delta still verifies {e all} its outgoing groups (the pseudo-code
    would verify only the delta-derived ones and later skip the node as
    visited, leaving stale children unverified). An explicit work stack
    replaces recursion so deep reference chains cannot overflow. *)

type t

val build : Repro_graph.Data_graph.t -> t
(** APEX0: the required set is exactly the length-1 paths. *)

val refresh :
  ?decide:
    (path:Repro_pathexpr.Label_path.t -> count:int -> is_new:bool -> bool) ->
  ?ensure:Repro_pathexpr.Label_path.t list ->
  t -> workload:Repro_pathexpr.Label_path.t list -> min_support:float -> unit
(** Extract frequently used paths from the workload (support = fraction of
    queries containing the path as a contiguous subpath, Definition 6) and
    incrementally update the index. With an empty workload this prunes every
    longer path and the index degenerates back to APEX0 shape.

    [decide] overrides the default support test ([count >= k] with [k] from
    {!Repro_mining.Path_miner.support_count}) — an adaptation policy keeps
    or drops each counted path from richer signals than the current window's
    count; the kept set must stay closed under contiguous subpaths. [ensure]
    pre-creates entries for paths the policy retains even when this window
    never counted them, so [decide] is consulted for them too. *)

val extend_data : t -> Repro_graph.Data_graph.t -> unit
(** Re-point the index at a grown version of its data graph (typically from
    {!Repro_graph.Data_graph.append_subtree}) and update it incrementally:
    existing extents are reused and only the consequences of the new edges
    propagate — target edge sets only grow under document growth, which is
    exactly the monotone case the update engine converges on. The result is
    indistinguishable from an index built fresh over the grown graph.
    Re-materialize before running costed queries again.
    @raise Invalid_argument when the graph does not extend the indexed one
    (fewer nodes/edges, or a shrunken adjacency list). *)

val build_adapted :
  Repro_graph.Data_graph.t ->
  workload:Repro_pathexpr.Label_path.t list ->
  min_support:float ->
  t
(** [build] then [refresh]. *)

val graph : t -> Repro_graph.Data_graph.t
val tree : t -> Hash_tree.t
val summary : t -> Gapex.t

val stats : t -> int * int
(** Reachable [(nodes, edges)] of [G_APEX] — Table 2's APEX rows. *)

val assemble :
  graph:Repro_graph.Data_graph.t -> gapex:Gapex.t -> tree:Hash_tree.t -> t
(** Wrap pre-built components into an index (used by {!Apex_persist.load});
    the caller is responsible for their consistency. *)

val materialize :
  ?codec:Repro_storage.Extent_store.codec -> t -> Repro_storage.Buffer_pool.t -> unit
(** Write every reachable extent to an extent store (default codec
    [`Block], the block-compressed queryable form) so query evaluation
    pays page I/O. Call after the last [refresh]; refreshing again
    requires re-materializing. *)

val load_extent :
  ?cost:Repro_storage.Cost.t -> t -> Gapex.node -> Repro_graph.Edge_set.t
(** The node's extent, through the buffer pool when materialized (charging
    [extent_pages]/[extent_edges]); the in-memory extent otherwise (charging
    only [extent_edges]). *)

(** {1 Block-view extent access}

    With the [`Block] store codec, query kernels consume extents through
    {!extent_ref} instead of {!load_extent}: a compressed extent stays
    compressed, and the semijoin skips blocks by header range tests,
    decoding survivors into a reusable scratch buffer
    (decode-on-gallop). When the node is not block-materialized — no
    store, delta chain pending resolution, non-[`Block] codec — the
    reference degrades to the materialized edge set and the kernels below
    behave exactly like their {!Repro_graph.Edge_set} counterparts. *)

type extent_ref =
  | Mem of Repro_graph.Edge_set.t
  | View of Repro_storage.Extent_store.view

val extent_ref : ?cost:Repro_storage.Cost.t -> t -> Gapex.node -> extent_ref
(** The node's extent in whichever representation is cheapest to serve.
    Cost accounting matches {!load_extent} except that a [View] charges
    [extent_edges] lazily, as blocks actually decode. *)

val ext_cardinal : extent_ref -> int

val ext_materialize :
  ?cost:Repro_storage.Cost.t -> extent_ref -> Repro_graph.Edge_set.t
(** The fully materialized edge set behind the reference. A [View] resolves
    through its store's decoded-extent cache, so forcing the same extent
    repeatedly decodes it once; use only where a whole-set operation
    (e.g. [Edge_set.parents]) is genuinely needed. *)

val ext_semijoin_endpoints :
  ?cost:Repro_storage.Cost.t -> extent_ref -> int array -> int array
(** [Edge_set.semijoin_endpoints] on either representation. On a [View]
    this emits a [Decode] trace span (arg = blocks decoded) and a
    [Block_skip] event when header tests rejected blocks. *)

val ext_semijoin_children :
  ?cost:Repro_storage.Cost.t -> extent_ref -> int array -> Repro_graph.Edge_set.t
(** [Edge_set.semijoin_children] on either representation, with the same
    [Decode]/[Block_skip] telemetry as {!ext_semijoin_endpoints}. *)

(** {1 Incremental-maintenance hooks}

    Used by the data-update subsystem ([Repro_update.Update]), which owns
    the consistency argument: it patches extents/slots to match a mutated
    graph, then re-points the index and flushes only what changed. *)

val store : t -> Repro_storage.Extent_store.t option
(** The extent store of the last {!materialize}, if any. *)

val set_graph : t -> Repro_graph.Data_graph.t -> unit
(** Re-point the index at a mutated graph {e without} updating anything —
    the caller must have already patched extents and summary to match. *)

val invalidate_endpoints : t -> unit
(** Drop the per-node endpoint memo (call after mutating any extent). *)

val flush_dirty :
  t -> (Gapex.node * Repro_graph.Edge_set.t * Repro_graph.Edge_set.t) list -> unit
(** [flush_dirty t [(node, removed, added); ...]] re-persists exactly the
    changed extents: each node with an existing handle and a small change
    gets a delta blob ({!Repro_storage.Extent_store.append_delta}) chained
    on its previous handle; new nodes, long chains (> 4 links), and deltas
    no smaller than the extent get a full re-append. Page I/O is therefore
    proportional to the change, not the index. No-op when the index was
    never materialized. Entries whose both sets are empty are skipped. *)

val load_endpoints :
  ?cost:Repro_storage.Cost.t -> t -> Gapex.node -> int array
(** [Edge_set.endpoints] of the node's extent, memoized per node on the
    index: an exact hash-tree hit answers a query by k-way-unioning these
    arrays without re-sorting anything. The memo is invalidated by
    {!refresh}/{!extend_data} (extents change) and {!materialize} (store
    replaced); a warm hit charges no cost — the first computation charges
    the underlying {!load_extent}. On a {!freeze}-d index a miss
    recomputes without storing, so concurrent readers never write. *)

(** {1 Read-only publication}

    The serving layer ([Repro_server]) publishes epochs as frozen,
    unmaterialized deep copies: after {!freeze}, the instance is
    structurally immutable — every mutator raises and the query path
    performs no stores — so any number of reader domains can evaluate
    against it concurrently without synchronization. *)

val freeze : t -> unit
(** Make the index read-only: pre-warm the endpoint memo over every
    reachable summary node, then lock out {!refresh}, {!extend_data},
    {!materialize}, {!set_graph}, {!flush_dirty} and
    {!invalidate_endpoints} (they raise [Invalid_argument]). Idempotent.
    @raise Invalid_argument on a materialized index — store reads mutate
    the buffer pool, so only unmaterialized copies can be shared
    lock-free. *)

val frozen : t -> bool
