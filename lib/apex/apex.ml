module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Cost = Repro_storage.Cost
module Vec = Repro_util.Vec
module Tr = Repro_telemetry.Trace

type t = {
  mutable graph : G.t;
  gapex : Gapex.t;
  tree : Hash_tree.t;
  mutable store : Repro_storage.Extent_store.t option;
  endpoint_cache : (int, int array) Hashtbl.t [@apex.guarded "memo"];
      (* Gapex.node id -> endpoints of its extent; memoizes the sort that
         [Edge_set.endpoints] performs. Invalidated whenever extents can
         change (update traversal) or the store is replaced. The "memo"
         discipline: reader-path fills are idempotent recomputations; a
         frozen instance pre-warms the memo and never fills it again, so
         reader domains share it without a lock. *)
  mutable frozen : bool;
      (* set once by [freeze], before the instance is published to reader
         domains; from then on every mutator raises and the read path
         stores nothing *)
}
[@@apex.shared]

let endpoint_cache_cap = 16_384

let graph t = t.graph
let tree t = t.tree
let summary t = t.gapex
let stats t = Gapex.stats t.gapex

(* Outgoing data edges of the endpoints of [source], grouped by label.
   Returned sorted by label for deterministic traversal. *)
let successor_groups g source =
  let by_label : (int, int Vec.t) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      G.iter_out g v (fun l w ->
          let vec =
            match Hashtbl.find_opt by_label l with
            | Some vec -> vec
            | None ->
              let vec = Vec.create () in
              Hashtbl.add by_label l vec;
              vec
          in
          Vec.push vec (Edge_set.pack v w)))
    (Edge_set.endpoints source);
  Hashtbl.fold (fun l vec acc -> (l, Edge_set.of_packed_array (Vec.to_array vec)) :: acc) by_label []
  |> List.sort (fun (l1, _) (l2, _) -> Int.compare l1 l2)

(* The unified Figure 6 / Figure 11 traversal. Tasks carry the G_APEX node,
   the extent delta that caused the (re)visit, and the reversed label path
   by which the traversal reached the node. *)
let run_update t =
  Hashtbl.reset t.endpoint_cache;
  Gapex.reset_visited t.gapex;
  let stack = Stack.create () in
  Stack.push (Gapex.xroot t.gapex, Edge_set.empty, []) stack;
  while not (Stack.is_empty stack) do
    let xnode, delta, rev_path = Stack.pop stack in
    let first_visit = not xnode.Gapex.visited in
    if first_visit || not (Edge_set.is_empty delta) then begin
      xnode.Gapex.visited <- true;
      (* on a first visit verify everything the full extent implies; on a
         revisit only the delta's consequences can have changed *)
      let source = if first_visit then xnode.Gapex.extent else delta in
      List.iter
        (fun (l, edges) ->
          let rev_child = l :: rev_path in
          match Hash_tree.lookup_slot ~create_head:true t.tree ~rev_path:rev_child with
          | None -> assert false (* create_head guarantees a slot *)
          | Some slot ->
            let xchild =
              match Hash_tree.slot_get slot with
              | Some n -> n
              | None ->
                let n = Gapex.new_node t.gapex in
                Hash_tree.slot_set slot (Some n);
                (* a frequent path earned its own summary node + extent *)
                Tr.event Tr.Path_promoted n.Gapex.id;
                n
            in
            let grow = Edge_set.diff edges xchild.Gapex.extent in
            xchild.Gapex.extent <- Edge_set.union xchild.Gapex.extent grow;
            Gapex.make_edge xnode l xchild;
            Stack.push (xchild, grow, rev_child) stack)
        (successor_groups t.graph source)
    end
  done

let build g =
  let t =
    { graph = g;
      gapex = Gapex.create ~root_extent:(G.root_edge g);
      tree = Hash_tree.create ();
      store = None;
      endpoint_cache = Hashtbl.create 256;
      frozen = false
    }
  in
  run_update t;
  t

let frozen t = t.frozen

let check_not_frozen t ctx =
  if t.frozen then
    invalid_arg (Printf.sprintf "Apex.%s: the index is frozen (published epoch)" ctx)

let refresh ?decide ?(ensure = []) t ~workload ~min_support =
  check_not_frozen t "refresh";
  let rtok = Tr.begin_ Tr.Refresh in
  let mtok = Tr.begin_ Tr.Mine in
  Hash_tree.reset_marks t.tree;
  Hash_tree.count_workload t.tree workload;
  List.iter (Hash_tree.ensure_path t.tree) ensure;
  let decide =
    match decide with
    | Some d -> d
    | None ->
      let k =
        Repro_mining.Path_miner.support_count ~min_support
          ~n_queries:(List.length workload)
      in
      fun ~path:_ ~count ~is_new:_ -> count >= k
  in
  Tr.end_arg mtok (List.length workload);
  let ptok = Tr.begin_ Tr.Prune in
  Hash_tree.prune t.tree ~decide;
  Tr.end_ ptok;
  t.store <- None;
  let ttok = Tr.begin_ Tr.Traverse in
  run_update t;
  Tr.end_arg ttok (fst (Gapex.stats t.gapex));
  Tr.end_ rtok

let extend_data t g' =
  check_not_frozen t "extend_data";
  let g = t.graph in
  if G.n_nodes g' < G.n_nodes g || G.n_edges g' < G.n_edges g then
    invalid_arg "Apex.extend_data: the new graph must extend the indexed one";
  for v = 0 to G.n_nodes g - 1 do
    if G.out_degree g' v < G.out_degree g v then
      invalid_arg "Apex.extend_data: the new graph must extend the indexed one"
  done;
  t.graph <- g';
  t.store <- None;
  run_update t

let build_adapted g ~workload ~min_support =
  let t = build g in
  refresh t ~workload ~min_support;
  t

let assemble ~graph ~gapex ~tree =
  { graph; gapex; tree; store = None; endpoint_cache = Hashtbl.create 256; frozen = false }

let materialize ?(codec = `Block) t pool =
  check_not_frozen t "materialize";
  let store = Repro_storage.Extent_store.create ~codec pool in
  List.iter
    (fun (n : Gapex.node) ->
      n.Gapex.handle <- Some (Repro_storage.Extent_store.append store n.Gapex.extent))
    (Gapex.reachable t.gapex);
  (* endpoints are still valid, but clearing keeps the invariant simple:
     the first query against a fresh store pays its I/O *)
  Hashtbl.reset t.endpoint_cache;
  t.store <- Some store

let load_extent ?cost t (n : Gapex.node) =
  match t.store, n.Gapex.handle with
  | Some store, Some h -> Repro_storage.Extent_store.load ?cost store h
  | _ ->
    (match cost with
     | Some c -> c.Cost.extent_edges <- c.Cost.extent_edges + Edge_set.cardinal n.Gapex.extent
     | None -> ());
    n.Gapex.extent

(* --- block-view extent access (decode-on-gallop) --- *)

module ES = Repro_storage.Extent_store

(* An extent as the join kernels consume it: either a materialized edge
   set, or a still-compressed block view whose semijoins skip and decode
   per block. Which one a node yields depends on the store codec; callers
   go through [ext_*] and never branch on the representation again. *)
type extent_ref =
  | Mem of Edge_set.t
  | View of ES.view

let extent_ref ?cost t (n : Gapex.node) =
  match t.store, n.Gapex.handle with
  | Some store, Some h ->
    (match ES.load_view ?cost store h with
     | Some v -> View v
     | None -> Mem (ES.load ?cost store h))
  | _ ->
    (match cost with
     | Some c -> c.Cost.extent_edges <- c.Cost.extent_edges + Edge_set.cardinal n.Gapex.extent
     | None -> ());
    Mem n.Gapex.extent

let ext_cardinal = function
  | Mem e -> Edge_set.cardinal e
  | View v -> ES.view_cardinal v

(* the fully materialized set behind a reference; a [View] resolves
   through the store's decoded-extent LRU, so repeated forcing decodes
   once *)
let ext_materialize ?cost = function
  | Mem e -> e
  | View v -> ES.load ?cost (ES.view_store v) (ES.view_handle v)

let ext_semijoin_endpoints ?cost r frontier =
  match r with
  | Mem e -> Edge_set.semijoin_endpoints e frontier
  | View v ->
    let tok = Tr.begin_ Tr.Decode in
    if tok < 0 then ES.view_semijoin_endpoints ?cost v frontier
    else begin
      let store = ES.view_store v in
      let d0 = ES.total_blocks_decoded store and s0 = ES.total_blocks_skipped store in
      let out = ES.view_semijoin_endpoints ?cost v frontier in
      Tr.end_arg tok (ES.total_blocks_decoded store - d0);
      let skipped = ES.total_blocks_skipped store - s0 in
      if skipped > 0 then Tr.event Tr.Block_skip skipped;
      out
    end

let ext_semijoin_children ?cost r sorted_children =
  match r with
  | Mem e -> Edge_set.semijoin_children e sorted_children
  | View v ->
    let tok = Tr.begin_ Tr.Decode in
    if tok < 0 then ES.view_semijoin_children ?cost v sorted_children
    else begin
      let store = ES.view_store v in
      let d0 = ES.total_blocks_decoded store and s0 = ES.total_blocks_skipped store in
      let out = ES.view_semijoin_children ?cost v sorted_children in
      Tr.end_arg tok (ES.total_blocks_decoded store - d0);
      let skipped = ES.total_blocks_skipped store - s0 in
      if skipped > 0 then Tr.event Tr.Block_skip skipped;
      out
    end

(* --- incremental-maintenance hooks (lib/update) --- *)

let store t = t.store

let set_graph t g =
  check_not_frozen t "set_graph";
  t.graph <- g

let invalidate_endpoints t =
  check_not_frozen t "invalidate_endpoints";
  Hashtbl.reset t.endpoint_cache

let max_delta_chain = 4

let flush_dirty t dirty =
  check_not_frozen t "flush_dirty";
  match t.store with
  | None -> ()
  | Some store ->
    List.iter
      (fun ((n : Gapex.node), removed, added) ->
        if not (Edge_set.is_empty removed && Edge_set.is_empty added) then begin
          let handle =
            match n.Gapex.handle with
            | Some base
              when Repro_storage.Extent_store.chain_length base < max_delta_chain
                   && Edge_set.cardinal removed + Edge_set.cardinal added
                      < Edge_set.cardinal n.Gapex.extent ->
              Repro_storage.Extent_store.append_delta store ~base ~removed ~added
            | Some _ | None ->
              (* new node, long chain, or a delta no smaller than the
                 extent: write (or compact to) the full extent *)
              Repro_storage.Extent_store.append store n.Gapex.extent
          in
          n.Gapex.handle <- Some handle
        end)
      dirty;
    Tr.event Tr.Delta_flushed (List.length dirty);
    Hashtbl.reset t.endpoint_cache

let load_endpoints ?cost t (n : Gapex.node) =
  match Hashtbl.find_opt t.endpoint_cache n.Gapex.id with
  | Some eps -> eps
  | None ->
    let eps =
      (* a block view streams the endpoints out of the compressed form
         instead of materializing the extent first *)
      match extent_ref ?cost t n with
      | Mem e -> Edge_set.endpoints e
      | View v ->
        let tok = Tr.begin_ Tr.Decode in
        if tok < 0 then ES.view_endpoints ?cost v
        else begin
          let store = ES.view_store v in
          let d0 = ES.total_blocks_decoded store in
          let out = ES.view_endpoints ?cost v in
          Tr.end_arg tok (ES.total_blocks_decoded store - d0);
          out
        end
    in
    if not t.frozen then begin
      (* a frozen index is shared read-only across domains: the memo was
         pre-warmed by [freeze], and a miss (evicted by the cap during
         pre-warm) recomputes without storing *)
      if Hashtbl.length t.endpoint_cache >= endpoint_cache_cap then
        Hashtbl.reset t.endpoint_cache;
      Hashtbl.add t.endpoint_cache n.Gapex.id eps
    end;
    eps

(* --- read-only publication (lib/server) --- *)

let freeze t =
  if not t.frozen then begin
    (match t.store with
     | Some _ ->
       invalid_arg
         "Apex.freeze: cannot freeze a materialized index (the store and \
          buffer pool mutate on reads); freeze an unmaterialized copy"
     | None -> ());
    (* pre-warm the endpoint memo over every reachable summary node so the
       frozen read path is pure Hashtbl lookups *)
    List.iter
      (fun (n : Gapex.node) -> ignore (load_endpoints t n : int array))
      (Gapex.reachable t.gapex);
    t.frozen <- true
  end
