(** A self-tuning APEX: query evaluation, workload logging, and periodic
    incremental refresh behind one handle.

    This is the loop of Figure 4 run automatically: every evaluated query
    is recorded in a bounded {!Repro_workload.Query_log}; after each
    [refresh_every] recorded queries the frequently-used-path extraction
    and incremental update run on the current window. The paper leaves the
    refresh trigger to the end user ("by request or periodical") — this
    component implements both: the periodic policy plus {!force_refresh}. *)

type t

val create :
  ?log_capacity:int ->
  ?min_support:float ->
  ?refresh_every:int ->
  ?pool:Repro_storage.Buffer_pool.t ->
  ?snapshot:Repro_apex.Apex_persist.Snapshot.t ->
  ?policy:Policy.t ->
  Repro_graph.Data_graph.t ->
  t
(** Builds APEX0 over the graph. Defaults: a 1000-entry log, minSup 0.005,
    refresh every 500 recorded queries. When [pool] is given the index is
    (re)materialized there after every refresh, so costed evaluation pays
    page I/O throughout.

    When [snapshot] is given, APEX0 is committed as the first epoch and
    every successful refresh commits a new one; a refresh that hits a
    storage fault ({!Repro_storage.Fault.Injected} or a detected-corruption
    [Invalid_argument]) is rolled back — the index reloads from the newest
    committed epoch and keeps answering queries, the abort is counted in
    [Io_stats.refresh_aborts] and {!aborted_refreshes}, and the refresh
    window is consumed so the next attempt waits a full window.

    When [policy] is given, refreshes are decided by the cost-benefit
    {!Policy} instead of raw window support: every evaluated query is
    measured (extent pages / extent edges / join edges against a private
    {!Repro_storage.Cost}, plus wall-clock latency) and attributed to the
    paths it used; each refresh rolls the policy's decayed accumulators,
    prunes/keeps paths through {!Policy.decide}, and commits the plan only
    after the refresh (and its epoch commit) landed — a rolled-back
    refresh leaves the policy's hysteresis state untouched. Results remain
    identical either way; only which paths get promoted/evicted moves. *)

val query :
  ?cost:Repro_storage.Cost.t ->
  ?table:Repro_storage.Data_table.t ->
  t ->
  Repro_pathexpr.Query.t ->
  Repro_graph.Data_graph.nid array
(** Evaluate, log, and refresh if the policy says so. Results are always
    identical to evaluating against a non-adaptive APEX — adaptation only
    moves cost. *)

val force_refresh : t -> unit
(** Run extraction + update on the current log window immediately. *)

(** {1 Serving-layer entry points}

    The concurrent server ([Repro_server]) evaluates queries on reader
    domains against published read-only epochs, so {!query}'s
    evaluate-log-refresh loop splits into writer-domain pieces: readers'
    executed queries arrive through {!record_external}, the writer polls
    {!due_for_refresh}, and {!refresh_and_publish} runs the refresh with
    the epoch-publication continuation — the refresh-through-registry
    path. *)

val record_external : t -> ?q2_paths:Repro_pathexpr.Label_path.t list ->
  ?extent_pages:int -> ?extent_edges:int -> ?join_edges:int ->
  ?latency:float -> Repro_pathexpr.Query.t -> unit
(** Log a query that was evaluated elsewhere (a reader domain, against a
    published epoch) without evaluating or triggering a refresh here.
    [q2_paths] are the label paths Q2 rewriting matched, as reported by
    the evaluator's [on_sequence]; the cost counters and [latency] (all
    defaulting to 0) are the reader's measurements, fed to the adaptation
    policy when one was supplied. Call only from the writer domain. *)

val due_for_refresh : t -> bool
(** Whether a full [refresh_every] window has been recorded since the last
    refresh — the periodic policy exposed as a poll, for callers that must
    couple the refresh with an epoch publish. *)

val refresh_and_publish : t -> publish:(Repro_apex.Apex.t -> 'a) -> 'a
(** {!force_refresh}, then hand the post-refresh index to [publish] (the
    server's epoch-publication entry point) and return its result. When
    the refresh was rolled back after a fault, [publish] still runs — on
    the rolled-back index — so the serving side republishes a consistent
    (if older) state under a fresh generation. *)

val update : t -> Repro_update.Update.op list -> unit
(** Apply data updates through the incremental maintenance engine
    ({!Repro_update.Update.apply}) — the index is patched, never rebuilt,
    and only the touched extents are re-persisted. Updates interleave
    freely with {!query}/{!force_refresh}; a refresh after updates starts
    from the maintained index. When a snapshot was supplied, the
    post-update state is committed as a new epoch. A storage fault while
    flushing falls back to rebuilding the in-memory index over the mutated
    graph (the data change is never lost) and counts in
    {!aborted_updates}; operand errors ([Invalid_argument]) propagate with
    every operation before the offending one applied. *)

val apex : t -> Repro_apex.Apex.t
val log : t -> Repro_workload.Query_log.t

val policy : t -> Policy.t option
(** The cost-benefit policy supplied to {!create}, if any. *)

val metrics : t -> Repro_telemetry.Metrics.t
(** This instance's registry: the [self_tuning.*] adaptation counters that
    back the accessors below, plus an [io.*] source over the pool's pager
    stats when a pool was supplied. *)

val refreshes : t -> int
(** Number of refreshes completed successfully so far (periodic and
    forced). Aborted refreshes are not counted here. *)

val aborted_refreshes : t -> int
(** Number of refreshes rolled back to the previous snapshot epoch after a
    storage fault. Always 0 when no snapshot was supplied to {!create}. *)

val updates : t -> int
(** Number of update operations applied so far. *)

val aborted_updates : t -> int
(** Number of update batches whose incremental flush or epoch commit hit a
    storage fault (each recovered without losing the data change). *)
