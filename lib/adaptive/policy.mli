(** Cost-benefit adaptation policy: "index what pays", not just "index
    what's used".

    Support-only mining compares each path's raw window count against one
    threshold, so a path whose support sits at the boundary flaps in and
    out of the index on every refresh — rebuild I/O with zero query
    benefit — and a frequent-but-cheap path occupies index pages a rarely
    used but expensive path would repay better. This policy closes the
    loop from the measured signals instead:

    - {b support} — decayed count of queries touching the path (through
      {!Repro_telemetry.Attribution}, rolled once per refresh, so cooling
      paths fade geometrically);
    - {b cost} — per-path extent pages / extent edges / join edges from
      {!Repro_storage.Cost}, reduced to one page-equivalent scalar;
    - {b latency} — wall-clock seconds, tracked for reporting only
      (deterministic decisions need deterministic inputs).

    Scoring: [score p = support p * (rel_cost p ** cost_weight)], where
    [rel_cost] is the path's mean per-query cost over the fixed
    [cost_scale] — [cost_weight = 0] degenerates to support-only mining.
    The scale is deliberately absolute rather than the live workload mean:
    once the expensive paths are indexed their queries become cheap, the
    mean collapses, and a mean-relative score would re-rate every
    remaining path as "expensive relative to what's left", growing the
    index without bound — the same self-referential feedback loop the
    support-based eviction rule avoids.

    Hysteresis: candidates must clear a band around the support threshold
    [base = min_support * decayed_queries], not the raw threshold:
    promotion needs both [support >= base * (1 + hysteresis)] and
    [score >= base * (1 + hysteresis)]; an indexed path is retained while
    [support >= base * (1 - hysteresis)]. Both transitions gate on
    support, so flipping state twice requires the decayed support to
    travel the whole band; under stationary traffic the decayed signals
    converge geometrically and support/base is a ratio over one shared
    decay horizon, so each path crosses each band edge at most once: no
    path changes state in two consecutive refreshes, and after
    convergence no path changes state at all.

    Eviction deliberately tests support rather than score: a promoted
    path's queries become exact hash-tree hits, so its measured cost — and
    any cost-weighted score — collapses on the refresh after promotion.
    Scoring retention would evict it, re-raising its cost: an oscillation
    driven by the policy's own effect. Support is invariant under
    indexing. Promotion is support-gated for the symmetric reason: a
    cooling path that just dropped below the retain edge still shows a
    large cost factor, and a score-only promote rule would re-admit it. *)

type config = {
  min_support : float;  (** support threshold as a fraction of queries *)
  decay : float;  (** per-refresh retention of accumulated signals, [0, 1) *)
  hysteresis : float;  (** half-width of the promote/retain band, [0, 1) *)
  cost_weight : float;  (** exponent on relative cost; 0 = support-only *)
  cost_scale : float;
      (** page-equivalents of per-query work at which a path's cost factor
          is neutral (rel_cost = 1) — "how much work must a query burn
          before indexing its path starts paying" *)
  max_paths : int;  (** attribution table bound; cooled paths drop first *)
}

val default_config : config
(** minSup 0.005 (matching {!Self_tuning.create}), decay 0.6, hysteresis
    0.3, cost_weight 1.0, cost_scale 1.0, max_paths 16384. *)

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument when [hysteresis] is outside [[0, 1)] or
    [min_support] is not positive. *)

val config : t -> config

val unit_cost : extent_pages:int -> extent_edges:int -> join_edges:int -> float
(** One query's cost in page-equivalents, mirroring
    {!Repro_storage.Cost.weighted_total}'s weights: pages + streamed
    edge/join work at 500 per page. *)

val observe :
  t ->
  paths:Repro_pathexpr.Label_path.t list ->
  extent_pages:int ->
  extent_edges:int ->
  join_edges:int ->
  latency:float ->
  unit
(** Attribute one executed query to the paths it used ({!Repro_workload.
    Query_log.paths_of_query}) — the query's cost signals accrue to every
    contiguous subpath, exactly as mining counts support. *)

(** {1 Refresh planning}

    One refresh = {!plan} (rolls the decayed windows and scores every
    tracked path), then {!Repro_apex.Apex.refresh} with {!decide} and
    {!keep_paths} as the [ensure] list, then — once the refresh has
    actually landed — {!commit}. Committing only on success keeps the
    hysteresis comparing against the state the index really reached when
    a mid-refresh fault rolls the epoch back. *)

type plan

val plan : t -> plan
(** Roll the attribution windows and decide every candidate path. The
    kept set is closed under contiguous subpaths (the invariant
    {!Repro_apex.Hash_tree.find_slots} depends on). *)

val keep_paths : plan -> Repro_pathexpr.Label_path.t list
(** The kept candidate paths — pass as [ensure] so paths retained across
    a window that never counted them still have hash-tree entries. *)

val decide :
  plan ->
  path:Repro_pathexpr.Label_path.t -> count:int -> is_new:bool -> bool
(** The [decide] callback for {!Repro_apex.Apex.refresh}: length-1 paths
    are always required; longer entries live iff the plan kept them. *)

val promotions : plan -> Repro_pathexpr.Label_path.t list
val evictions : plan -> Repro_pathexpr.Label_path.t list
(** State changes relative to the last committed plan, sorted. *)

val commit : t -> plan -> unit
(** Adopt the plan's kept set as the policy's view of the index. *)

(** {1 Introspection} *)

val score : t -> Repro_pathexpr.Label_path.t -> float
(** Current score from the decayed accumulators (0 when untracked). *)

val indexed_paths : t -> Repro_pathexpr.Label_path.t list
val observed_queries : t -> float
val tracked_paths : t -> int
val refreshes : t -> int
val total_promotions : t -> int
val total_evictions : t -> int

val last_changes : t -> int
(** Promotions + evictions in the most recently committed plan — 0 once
    the policy has converged on a stationary workload. *)

val state_json : t -> Repro_telemetry.Json.t
(** Live policy state for [Server.introspect]: config, the current
    hysteresis band edges ([support_base] / [promote_edge] /
    [retain_edge], recomputed as {!plan} would), and the cumulative
    adaptation counters. *)
