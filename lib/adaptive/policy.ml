module Label_path = Repro_pathexpr.Label_path

(* FNV-1a over the interned label ints; the lint pass bans polymorphic
   hashing in hot paths, and label paths need a content hash anyway *)
module Path_key = struct
  type t = Label_path.t

  let equal = Label_path.equal

  let hash p =
    List.fold_left (fun h l -> (h lxor l) * 0x01000193 land max_int) 0x811c9dc5 p
end

module Attr = Repro_telemetry.Attribution.Make (Path_key)
module PH = Hashtbl.Make (Path_key)

type config = {
  min_support : float;
  decay : float;
  hysteresis : float;
  cost_weight : float;
  cost_scale : float;
  max_paths : int;
}

let default_config =
  { min_support = 0.005;
    decay = 0.6;
    hysteresis = 0.3;
    cost_weight = 1.0;
    cost_scale = 1.0;
    max_paths = 16384 }

type t = {
  config : config;
  attr : Attr.t;
  (* the policy's own view of which candidate paths (length >= 2) are in
     the index — committed after each planned refresh lands, so hysteresis
     compares against the state the index actually reached, not against a
     plan that may have been rolled back *)
  indexed : unit PH.t;
  mutable n_refreshes : int;
  mutable n_promotions : int;
  mutable n_evictions : int;
  mutable n_last_changes : int;
}

let create ?(config = default_config) () =
  if not (config.hysteresis >= 0. && config.hysteresis < 1.) then
    invalid_arg "Policy.create: hysteresis must be in [0, 1)";
  if config.min_support <= 0. then
    invalid_arg "Policy.create: min_support must be positive";
  { config;
    attr = Attr.create ~max_keys:config.max_paths ~decay:config.decay ();
    indexed = PH.create 64;
    n_refreshes = 0;
    n_promotions = 0;
    n_evictions = 0;
    n_last_changes = 0 }

let config t = t.config

(* One scalar per query in page-equivalents, mirroring the weights of
   Cost.weighted_total: a page read dominates, streamed edge/join work
   amortizes 500 per page. Latency is *not* folded in — it restates what
   the logical counters already measure, and adaptation decisions must be
   deterministic for a given query stream (wall clock is not); it is
   tracked separately for reporting. *)
let unit_cost ~extent_pages ~extent_edges ~join_edges =
  float_of_int extent_pages
  +. (float_of_int (extent_edges + join_edges) /. 500.)

let observe t ~paths ~extent_pages ~extent_edges ~join_edges ~latency =
  let cost = unit_cost ~extent_pages ~extent_edges ~join_edges in
  Attr.observe_query t.attr ~cost ~latency;
  (* attribute to every contiguous subpath, exactly as mining counts
     support: the policy's support numbers stay comparable to the
     hash-tree counts they replace *)
  let subs =
    List.sort_uniq Label_path.compare (List.concat_map Label_path.subpaths paths)
  in
  List.iter (fun p -> Attr.observe t.attr p ~cost ~latency) subs

(* --- planning ---

   Score: decayed support, scaled by how expensive the path's queries are
   relative to the workload mean, raised to [cost_weight] —

     score(p) = support(p) * (cost_per_query(p) / mean_query_cost) ^ w

   With w = 0 this degenerates to support-only mining. With w > 0 a path
   whose queries burn more pages/joins than average clears the bar at
   lower support ("index what pays"), and a frequent-but-cheap path must
   be *very* frequent to justify its index pages.

   Hysteresis: candidates are compared against a band around the support
   threshold [base = min_support * queries], not the threshold itself:

     promote when not indexed and support >= base * (1 + h)
                              and score   >= base * (1 + h)
     retain  when indexed     and support >= base * (1 - h)

   Why this cannot flap: both transitions are gated on *support* — a path
   promotes only above the band's top edge and evicts only below its
   bottom edge, so flipping state twice requires the decayed support to
   travel the full band width 2h * base. Under stationary traffic the
   decayed signals converge geometrically (acc_n = w * (1 - d^n) / (1-d),
   monotone), and support/base is a ratio of two such quantities with the
   *same* decay horizon, so its remaining movement shrinks geometrically:
   each path crosses each band edge at most once per workload regime, and
   never changes state in two consecutive refreshes. The score gate only
   makes promotion *rarer* (cheap paths never enter), so it cannot add
   transitions.

   Eviction tests support, not score: once a path is indexed its queries
   become exact hash-tree hits and its measured cost collapses — scoring
   the indexed path by its now-cheap queries would evict it, making it
   expensive again: a promote/evict oscillation driven by the policy's own
   effect (the classic adaptive-index feedback trap). Support is invariant
   under indexing, so retention asks "is the workload still using it?",
   which is exactly the paper's eviction criterion, with decay + band.
   Symmetrically, promotion is support-gated too: a cooling expensive path
   that just fell below the retain edge still has a large cost factor, and
   a score-only promote rule would pick it right back up. *)

type plan = {
  p_keep : unit PH.t;  (* kept candidate paths, closed under subpaths *)
  p_promotions : Label_path.t list;
  p_evictions : Label_path.t list;
}

let score t p =
  let s = Attr.stats t.attr p in
  if s.Attr.support <= 0. then 0.
  else begin
    (* relative cost against the *fixed* [cost_scale], not against the
       live workload mean: the mean collapses as expensive paths get
       indexed, which would re-rate every cheap path as "expensive
       relative to what's left" and grow the index without bound — the
       same self-referential feedback the support-based eviction rule
       avoids. An absolute scale keeps the decision function stationary
       whenever the traffic is. *)
    let rel =
      Float.max 0.01 (s.Attr.cost /. s.Attr.support /. t.config.cost_scale)
    in
    s.Attr.support *. (rel ** t.config.cost_weight)
  end

let plan t =
  Attr.roll t.attr;
  let base = t.config.min_support *. Float.max 1. (Attr.queries t.attr) in
  let promote_edge = base *. (1. +. t.config.hysteresis) in
  let retain_edge = base *. (1. -. t.config.hysteresis) in
  let keep = PH.create 64 in
  Attr.iter t.attr (fun p s ->
      if List.length p >= 2 then begin
        let kept =
          if PH.mem t.indexed p then s.Attr.support >= retain_edge
          else s.Attr.support >= promote_edge && score t p >= promote_edge
        in
        if kept then PH.replace keep p ()
      end);
  (* an indexed path the decayed table no longer tracks (fully cooled and
     dropped from the attribution table) has zero support: not kept *)
  (* close the kept set under contiguous subpaths: find_slots and the
     update traversal rely on "required" being subpath-closed, and with
     cost-weighted scores a superpath can legitimately outscore a subpath *)
  let kept = PH.fold (fun p () acc -> p :: acc) keep [] in
  List.iter
    (fun p ->
      List.iter
        (fun s -> if List.length s >= 2 then PH.replace keep s ())
        (Label_path.subpaths p))
    kept;
  (* state changes = symmetric difference between the old indexed set and
     the closed kept set (closure can promote subpaths that never got a
     verdict of their own) *)
  let promotions = ref [] and evictions = ref [] in
  PH.iter (fun p () -> if not (PH.mem t.indexed p) then promotions := p :: !promotions) keep;
  PH.iter (fun p () -> if not (PH.mem keep p) then evictions := p :: !evictions) t.indexed;
  { p_keep = keep;
    p_promotions = List.sort Label_path.compare !promotions;
    p_evictions = List.sort Label_path.compare !evictions }

let keep_paths plan = PH.fold (fun p () acc -> p :: acc) plan.p_keep []

let decide plan ~path ~count:_ ~is_new:_ =
  (* length-1 paths are always required (APEX0); longer entries live iff
     the plan kept them. The hash-tree counts are ignored: the decayed
     attribution table has already folded this window in. *)
  match path with
  | [] | [ _ ] -> true
  | _ -> PH.mem plan.p_keep path

let promotions plan = plan.p_promotions
let evictions plan = plan.p_evictions

let commit t plan =
  PH.reset t.indexed;
  PH.iter (fun p () -> PH.replace t.indexed p ()) plan.p_keep;
  t.n_refreshes <- t.n_refreshes + 1;
  t.n_promotions <- t.n_promotions + List.length plan.p_promotions;
  t.n_evictions <- t.n_evictions + List.length plan.p_evictions;
  t.n_last_changes <- List.length plan.p_promotions + List.length plan.p_evictions

let indexed_paths t = List.sort Label_path.compare (PH.fold (fun p () acc -> p :: acc) t.indexed [])
let observed_queries t = Attr.queries t.attr
let tracked_paths t = Attr.tracked t.attr
let refreshes t = t.n_refreshes
let total_promotions t = t.n_promotions
let total_evictions t = t.n_evictions
let last_changes t = t.n_last_changes

(* Live policy state for the introspection endpoint: config, the current
   hysteresis band edges (recomputed exactly as [plan] does), and the
   cumulative adaptation counters. *)
let state_json t =
  let module Json = Repro_telemetry.Json in
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  let base = t.config.min_support *. Float.max 1. (Attr.queries t.attr) in
  Json.Obj
    [ ("min_support", num t.config.min_support);
      ("decay", num t.config.decay);
      ("hysteresis", num t.config.hysteresis);
      ("cost_weight", num t.config.cost_weight);
      ("cost_scale", num t.config.cost_scale);
      ("observed_queries", num (Attr.queries t.attr));
      ("support_base", num base);
      ("promote_edge", num (base *. (1. +. t.config.hysteresis)));
      ("retain_edge", num (base *. (1. -. t.config.hysteresis)));
      ("tracked_paths", int (Attr.tracked t.attr));
      ("indexed_paths", int (PH.length t.indexed));
      ("rolls", int (Attr.rolls t.attr));
      ("refreshes", int t.n_refreshes);
      ("promotions", int t.n_promotions);
      ("evictions", int t.n_evictions);
      ("last_changes", int t.n_last_changes) ]
