module Tr = Repro_telemetry.Trace
module Metrics = Repro_telemetry.Metrics

type t = {
  mutable apex : Repro_apex.Apex.t;
  log : Repro_workload.Query_log.t;
  min_support : float;
  refresh_every : int;
  policy : Policy.t option;
  pool : Repro_storage.Buffer_pool.t option;
  snapshot : Repro_apex.Apex_persist.Snapshot.t option;
  mutable last_refresh_at : int;  (* total_recorded at the last refresh *)
  (* adaptation counters live in a per-instance registry: two indexes tuned
     in the same process must not share counts, and the registry is what
     apexctl/bench snapshot for introspection *)
  metrics : Metrics.t;
  c_refreshes : Metrics.counter;
  c_aborted_refreshes : Metrics.counter;
  c_updates : Metrics.counter;
  c_aborted_updates : Metrics.counter;
}

let materialize t =
  match t.pool with
  | Some pool -> Repro_apex.Apex.materialize t.apex pool
  | None -> ()

let create ?(log_capacity = 1000) ?(min_support = 0.005) ?(refresh_every = 500) ?pool
    ?snapshot ?policy graph =
  let metrics = Metrics.create () in
  (* allocation regressions show up next to the adaptation counters in
     every snapshot (bench --json, apexctl, the exposition endpoint) *)
  Metrics.register_gc metrics;
  (match pool with
   | Some pool ->
     let stats = Repro_storage.Pager.stats (Repro_storage.Buffer_pool.pager pool) in
     Metrics.register_source metrics "io" (fun () ->
         List.map
           (fun (k, v) -> (k, float_of_int v))
           (Repro_storage.Io_stats.to_fields stats))
   | None -> ());
  let t =
    { apex = Repro_apex.Apex.build graph;
      log = Repro_workload.Query_log.create ~capacity:log_capacity;
      min_support;
      refresh_every;
      policy;
      pool;
      snapshot;
      last_refresh_at = 0;
      metrics;
      c_refreshes = Metrics.counter metrics "self_tuning.refreshes";
      c_aborted_refreshes = Metrics.counter metrics "self_tuning.aborted_refreshes";
      c_updates = Metrics.counter metrics "self_tuning.updates";
      c_aborted_updates = Metrics.counter metrics "self_tuning.aborted_updates"
    }
  in
  materialize t;
  (* the recovery baseline: APEX0 is committed before any query runs, so a
     fault during the very first refresh still has an epoch to roll back to *)
  (match snapshot with
   | Some snap -> ignore (Repro_apex.Apex_persist.Snapshot.commit snap t.apex : int)
   | None -> ());
  t

let mark_window t =
  t.last_refresh_at <- Repro_workload.Query_log.total_recorded t.log

let refresh_and_commit t =
  let workload = Repro_workload.Query_log.to_workload t.log in
  let plan =
    match t.policy with
    | None ->
      Repro_apex.Apex.refresh t.apex ~workload ~min_support:t.min_support;
      None
    | Some policy ->
      (* the policy decides from its decayed cost/support accumulators;
         the window's raw counts were already folded in by [plan]'s roll *)
      let plan = Policy.plan policy in
      Repro_apex.Apex.refresh t.apex ~workload ~min_support:t.min_support
        ~decide:(Policy.decide plan) ~ensure:(Policy.keep_paths plan);
      Some (policy, plan)
  in
  materialize t;
  (match t.snapshot with
   | Some snap -> ignore (Repro_apex.Apex_persist.Snapshot.commit snap t.apex : int)
   | None -> ());
  (* commit the plan only after the refresh has fully landed: a fault
     above rolls the epoch back, and the hysteresis must keep comparing
     against the state the index actually reached *)
  match plan with Some (policy, plan) -> Policy.commit policy plan | None -> ()

(* A fault mid-refresh (or mid-commit) can leave the in-memory index and
   its materialized pages in a mixed state. Roll back to the last committed
   snapshot epoch and keep serving queries from it — degraded (the refresh
   didn't land) but never wrong. Without a snapshot there is nothing to
   roll back to, so the exception propagates. *)
let force_refresh t =
  match t.snapshot with
  | None ->
    refresh_and_commit t;
    mark_window t;
    Metrics.incr t.c_refreshes
  | Some snap -> (
    match refresh_and_commit t with
    | () ->
      mark_window t;
      Metrics.incr t.c_refreshes
    | exception (Repro_storage.Fault.Injected _ | Invalid_argument _) ->
      let stats =
        Repro_storage.Pager.stats
          (Repro_storage.Buffer_pool.pager
             (Repro_storage.Extent_store.pool
                (Repro_apex.Apex_persist.Snapshot.store snap)))
      in
      stats.Repro_storage.Io_stats.refresh_aborts <-
        stats.Repro_storage.Io_stats.refresh_aborts + 1;
      Metrics.incr t.c_aborted_refreshes;
      t.apex <-
        Repro_apex.Apex_persist.Snapshot.load_latest snap
          (Repro_apex.Apex.graph t.apex);
      Tr.event Tr.Epoch_rolled_back
        (Repro_apex.Apex_persist.Snapshot.epoch snap);
      materialize t;
      (* consume the window anyway: an immediate retry would hit the
         same fault pattern — wait for the next full window instead *)
      mark_window t)

let due_for_refresh t =
  Repro_workload.Query_log.total_recorded t.log - t.last_refresh_at >= t.refresh_every

let maybe_refresh t = if due_for_refresh t then force_refresh t

(* --- serving-layer entry points (lib/server) ---

   The server evaluates queries on reader domains against published
   epochs, so the evaluate-and-log loop of [query] splits: readers report
   what they ran through [record_external] (via the server's feedback
   buffer, drained on the writer domain), and the writer decides when the
   window is due and runs [refresh_and_publish] — the refresh-through-
   registry path, where the post-refresh index is handed to the epoch
   publication continuation instead of being served in place. *)

let observe_policy t ~paths ~extent_pages ~extent_edges ~join_edges ~latency =
  match t.policy with
  | None -> ()
  | Some policy ->
    Policy.observe policy ~paths ~extent_pages ~extent_edges ~join_edges ~latency

let record_external t ?q2_paths ?(extent_pages = 0) ?(extent_edges = 0)
    ?(join_edges = 0) ?(latency = 0.) q =
  let labels = Repro_graph.Data_graph.labels (Repro_apex.Apex.graph t.apex) in
  let paths = Repro_workload.Query_log.paths_of_query ?q2_paths labels q in
  List.iter (Repro_workload.Query_log.record t.log) paths;
  observe_policy t ~paths ~extent_pages ~extent_edges ~join_edges ~latency

let refresh_and_publish t ~publish =
  force_refresh t;
  publish t.apex

let query ?cost ?table t q =
  (* Q2 rewritings matched by the search are the concrete label paths the
     query used; feed them to the log so partial-match-heavy workloads
     accumulate support for the paths they actually touch. *)
  let q2_paths = ref [] in
  let on_sequence seq = q2_paths := seq :: !q2_paths in
  let labels = Repro_graph.Data_graph.labels (Repro_apex.Apex.graph t.apex) in
  let result =
    match t.policy with
    | None ->
      let r = Repro_apex.Apex_query.eval_query ?cost ?table ~on_sequence t.apex q in
      Repro_workload.Query_log.record_query ~q2_paths:!q2_paths t.log labels q;
      r
    | Some _ ->
      (* the policy needs this query's cost even when the caller doesn't:
         evaluate against a private Cost and latency clock, then fold the
         charges into the caller's accumulator *)
      let mcost = Repro_storage.Cost.create () in
      let t0 = Unix.gettimeofday () in
      let r = Repro_apex.Apex_query.eval_query ~cost:mcost ?table ~on_sequence t.apex q in
      let dt = Unix.gettimeofday () -. t0 in
      (match cost with Some c -> Repro_storage.Cost.add c mcost | None -> ());
      let paths = Repro_workload.Query_log.paths_of_query ~q2_paths:!q2_paths labels q in
      List.iter (Repro_workload.Query_log.record t.log) paths;
      observe_policy t ~paths
        ~extent_pages:mcost.Repro_storage.Cost.extent_pages
        ~extent_edges:mcost.Repro_storage.Cost.extent_edges
        ~join_edges:mcost.Repro_storage.Cost.join_edges ~latency:dt;
      r
  in
  maybe_refresh t;
  result

(* Data updates interleave with queries and refreshes: the index is
   maintained incrementally (never rebuilt) on the happy path, and the next
   refresh starts from the maintained index. A storage fault while flushing
   extent deltas leaves the data change applied but the store behind; the
   in-memory index is rebuilt over the mutated graph and re-materialized —
   degraded (the incremental path was abandoned) but never wrong. Operand
   errors ([Invalid_argument], e.g. deleting the root) propagate: the ops
   before the bad one are applied and maintained, the rest are not. *)
let update t ops =
  (match Repro_update.Update.apply t.apex ops with
   | (_ : Repro_update.Update.stats) -> ()
   | exception Repro_storage.Fault.Injected _ ->
     Metrics.incr t.c_aborted_updates;
     Tr.event Tr.Update_aborted (List.length ops);
     t.apex <- Repro_apex.Apex.build (Repro_apex.Apex.graph t.apex);
     materialize t);
  Metrics.add t.c_updates (List.length ops);
  (* commit the post-update state as a snapshot epoch: recovery must not
     resurrect an index describing the pre-update document *)
  match t.snapshot with
  | None -> ()
  | Some snap -> (
    match Repro_apex.Apex_persist.Snapshot.commit snap t.apex with
    | (_ : int) -> ()
    | exception (Repro_storage.Fault.Injected _ | Invalid_argument _) ->
      (* the epoch lags; queries serve from memory and the next successful
         commit (refresh or update) catches the store up *)
      Metrics.incr t.c_aborted_updates;
      Tr.event Tr.Update_aborted (List.length ops))

let apex t = t.apex
let log t = t.log
let policy t = t.policy
let metrics t = t.metrics
let refreshes t = Metrics.value t.c_refreshes
let aborted_refreshes t = Metrics.value t.c_aborted_refreshes
let updates t = Metrics.value t.c_updates
let aborted_updates t = Metrics.value t.c_aborted_updates
