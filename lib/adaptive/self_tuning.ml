type t = {
  mutable apex : Repro_apex.Apex.t;
  log : Repro_workload.Query_log.t;
  min_support : float;
  refresh_every : int;
  pool : Repro_storage.Buffer_pool.t option;
  snapshot : Repro_apex.Apex_persist.Snapshot.t option;
  mutable last_refresh_at : int;  (* total_recorded at the last refresh *)
  mutable refreshes : int;
  mutable aborted : int;
  mutable updates : int;
  mutable aborted_updates : int;
}

let materialize t =
  match t.pool with
  | Some pool -> Repro_apex.Apex.materialize t.apex pool
  | None -> ()

let create ?(log_capacity = 1000) ?(min_support = 0.005) ?(refresh_every = 500) ?pool
    ?snapshot graph =
  let t =
    { apex = Repro_apex.Apex.build graph;
      log = Repro_workload.Query_log.create ~capacity:log_capacity;
      min_support;
      refresh_every;
      pool;
      snapshot;
      last_refresh_at = 0;
      refreshes = 0;
      aborted = 0;
      updates = 0;
      aborted_updates = 0
    }
  in
  materialize t;
  (* the recovery baseline: APEX0 is committed before any query runs, so a
     fault during the very first refresh still has an epoch to roll back to *)
  (match snapshot with
   | Some snap -> ignore (Repro_apex.Apex_persist.Snapshot.commit snap t.apex : int)
   | None -> ());
  t

let mark_window t =
  t.last_refresh_at <- Repro_workload.Query_log.total_recorded t.log

let refresh_and_commit t =
  Repro_apex.Apex.refresh t.apex
    ~workload:(Repro_workload.Query_log.to_workload t.log)
    ~min_support:t.min_support;
  materialize t;
  match t.snapshot with
  | Some snap -> ignore (Repro_apex.Apex_persist.Snapshot.commit snap t.apex : int)
  | None -> ()

(* A fault mid-refresh (or mid-commit) can leave the in-memory index and
   its materialized pages in a mixed state. Roll back to the last committed
   snapshot epoch and keep serving queries from it — degraded (the refresh
   didn't land) but never wrong. Without a snapshot there is nothing to
   roll back to, so the exception propagates. *)
let force_refresh t =
  match t.snapshot with
  | None ->
    refresh_and_commit t;
    mark_window t;
    t.refreshes <- t.refreshes + 1
  | Some snap -> (
    match refresh_and_commit t with
    | () ->
      mark_window t;
      t.refreshes <- t.refreshes + 1
    | exception (Repro_storage.Fault.Injected _ | Invalid_argument _) ->
      let stats =
        Repro_storage.Pager.stats
          (Repro_storage.Buffer_pool.pager
             (Repro_storage.Extent_store.pool
                (Repro_apex.Apex_persist.Snapshot.store snap)))
      in
      stats.Repro_storage.Io_stats.refresh_aborts <-
        stats.Repro_storage.Io_stats.refresh_aborts + 1;
      t.aborted <- t.aborted + 1;
      t.apex <-
        Repro_apex.Apex_persist.Snapshot.load_latest snap
          (Repro_apex.Apex.graph t.apex);
      materialize t;
      (* consume the window anyway: an immediate retry would hit the same
         fault pattern — wait for the next full window instead *)
      mark_window t)

let maybe_refresh t =
  if Repro_workload.Query_log.total_recorded t.log - t.last_refresh_at >= t.refresh_every then
    force_refresh t

let query ?cost ?table t q =
  (* Q2 rewritings matched by the search are the concrete label paths the
     query used; feed them to the log so partial-match-heavy workloads
     accumulate support for the paths they actually touch. *)
  let q2_paths = ref [] in
  let on_sequence seq = q2_paths := seq :: !q2_paths in
  let result = Repro_apex.Apex_query.eval_query ?cost ?table ~on_sequence t.apex q in
  Repro_workload.Query_log.record_query ~q2_paths:!q2_paths t.log
    (Repro_graph.Data_graph.labels (Repro_apex.Apex.graph t.apex))
    q;
  maybe_refresh t;
  result

(* Data updates interleave with queries and refreshes: the index is
   maintained incrementally (never rebuilt) on the happy path, and the next
   refresh starts from the maintained index. A storage fault while flushing
   extent deltas leaves the data change applied but the store behind; the
   in-memory index is rebuilt over the mutated graph and re-materialized —
   degraded (the incremental path was abandoned) but never wrong. Operand
   errors ([Invalid_argument], e.g. deleting the root) propagate: the ops
   before the bad one are applied and maintained, the rest are not. *)
let update t ops =
  (match Repro_update.Update.apply t.apex ops with
   | (_ : Repro_update.Update.stats) -> ()
   | exception Repro_storage.Fault.Injected _ ->
     t.aborted_updates <- t.aborted_updates + 1;
     t.apex <- Repro_apex.Apex.build (Repro_apex.Apex.graph t.apex);
     materialize t);
  t.updates <- t.updates + List.length ops;
  (* commit the post-update state as a snapshot epoch: recovery must not
     resurrect an index describing the pre-update document *)
  match t.snapshot with
  | None -> ()
  | Some snap -> (
    match Repro_apex.Apex_persist.Snapshot.commit snap t.apex with
    | (_ : int) -> ()
    | exception (Repro_storage.Fault.Injected _ | Invalid_argument _) ->
      (* the epoch lags; queries serve from memory and the next successful
         commit (refresh or update) catches the store up *)
      t.aborted_updates <- t.aborted_updates + 1)

let apex t = t.apex
let log t = t.log
let refreshes t = t.refreshes
let aborted_refreshes t = t.aborted
let updates t = t.updates
let aborted_updates t = t.aborted_updates
