module Int_sorted = Repro_util.Int_sorted
module Vec = Repro_util.Vec

type t = int array

let bits = 31
let mask = (1 lsl bits) - 1
let null = mask

let pack u v =
  if u < 0 || u > mask || v < 0 || v > mask then
    invalid_arg (Printf.sprintf "Edge_set.pack: component out of range (%d, %d)" u v)
  else (u lsl bits) lor v

let unpack e = (e lsr bits, e land mask)

(* zero-length: there is no element to mutate, sharing it is safe *)
let empty = [||] [@@apex.guarded "readonly"]

let of_packed_array a = if Int_sorted.is_sorted_set a then a else Int_sorted.of_unsorted a

let unsafe_of_sorted a = a

let of_list l = of_packed_array (Array.of_list (List.map (fun (u, v) -> pack u v) l))

let to_list t = Array.to_list (Array.map unpack t)
let cardinal = Array.length
let is_empty t = Array.length t = 0
let mem t u v = Int_sorted.mem t (pack u v)
let union = Int_sorted.union
let union_many = Int_sorted.union_many
let inter = Int_sorted.inter
let diff = Int_sorted.diff
let subset = Int_sorted.subset
let equal = Int_sorted.equal

let iter f t =
  Array.iter
    (fun e ->
      let u, v = unpack e in
      f u v)
    t

let fold f acc t =
  let acc = ref acc in
  iter (fun u v -> acc := f !acc u v) t;
  !acc

let endpoints t = Int_sorted.of_unsorted (Array.map (fun e -> e land mask) t)

(* packed order is (parent, child) lexicographic, so the parent components
   are already non-decreasing: extraction is a linear dedup, no sort *)
let parents t =
  let out = Vec.create ~capacity:(Array.length t) () in
  let prev = ref (-1) in
  Array.iter
    (fun e ->
      let u = e lsr bits in
      if u <> !prev then begin
        prev := u;
        if u <> null then Vec.push out u
      end)
    t;
  Vec.to_array out

(* The packed order also makes the edges of any one parent a contiguous
   range, so a semijoin against an ascending parent array never sorts or
   scans the whole set: per wanted parent, gallop to the range start and
   copy the run. When the parent array is dense relative to the edge set a
   two-pointer merge over runs is cheaper — selected by size ratio, like
   {!Int_sorted.inter}. *)

let semijoin_runs ~emit t sorted_parents =
  let nt = Array.length t and np = Array.length sorted_parents in
  if nt = 0 || np = 0 then ()
  else if np * 4 >= nt then begin
    (* merge walk: advance whichever side is behind *)
    let i = ref 0 and j = ref 0 in
    while !i < nt && !j < np do
      let pt = t.(!i) lsr bits and p = sorted_parents.(!j) in
      if pt < p then i := Int_sorted.gallop_lower_bound t !i nt (p lsl bits)
      else if pt > p then j := Int_sorted.gallop_lower_bound sorted_parents !j np pt
      else begin
        emit t.(!i);
        incr i
      end
    done
  end
  else begin
    (* sparse parents: gallop to each parent's range and copy the run *)
    let pos = ref 0 in
    (try
       Array.iter
         (fun p ->
           pos := Int_sorted.gallop_lower_bound t !pos nt (p lsl bits);
           while !pos < nt && t.(!pos) lsr bits = p do
             emit t.(!pos);
             incr pos
           done;
           if !pos >= nt then raise Exit)
         sorted_parents
     with Exit -> ())
  end

let semijoin_parents t sorted_parents =
  let out = Vec.create ~capacity:(Int.min (Array.length t) 64) () in
  semijoin_runs ~emit:(fun e -> Vec.push out e) t sorted_parents;
  (* runs are emitted in ascending parent order and each run is sorted *)
  Vec.to_array out

let semijoin_endpoints t sorted_parents =
  let out = Vec.create ~capacity:(Int.min (Array.length t) 64) () in
  semijoin_runs ~emit:(fun e -> Vec.push out (e land mask)) t sorted_parents;
  (* children interleave across parent runs: sort the (output-sized) result *)
  Int_sorted.of_unsorted (Vec.to_array out)

let semijoin_children t sorted_children =
  let out = Vec.create ~capacity:(Int.min (Array.length t) 64) () in
  Array.iter (fun e -> if Int_sorted.mem sorted_children (e land mask) then Vec.push out e) t;
  Vec.to_array out

let join a b = semijoin_parents b (endpoints a)

let pp ppf t =
  Format.fprintf ppf "{@[<hov>";
  iter
    (fun u v ->
      if u = null then Format.fprintf ppf "<NULL,%d>@ " v else Format.fprintf ppf "<%d,%d>@ " u v)
    t;
  Format.fprintf ppf "@]}"
