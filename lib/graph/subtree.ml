module T = Repro_xml.Xml_tree

(* a node's tree (document) edge is its first incoming edge; reference
   edges are added after the tree walk, so they always come later *)
let tree_in_edge g v =
  let result = ref None in
  Data_graph.iter_in g v (fun l u -> if Option.is_none !result then result := Some (l, u));
  !result

let is_tree_child g ~parent ~label v =
  match tree_in_edge g v with
  | Some (l, u) -> l = label && u = parent
  | None -> false

let id_or_placeholder g v =
  match Data_graph.id_of g v with
  | Some id -> id
  | None -> Printf.sprintf "#%d" v

let rec build g nid ~tag =
  let labels = Data_graph.labels g in
  let attrs = ref [] in
  let children = ref [] in
  Data_graph.iter_out g nid (fun l v ->
      let name = Label.to_string labels l in
      if Label.is_attribute labels l then begin
        let attr_name = String.sub name 1 (String.length name - 1) in
        if Data_graph.out_degree g v = 0 then
          (* plain attribute: value leaf *)
          attrs := (attr_name, Option.value ~default:"" (Data_graph.value g v)) :: !attrs
        else begin
          (* IDREF attribute node: collect the target ids *)
          let targets = ref [] in
          Data_graph.iter_out g v (fun _ target -> targets := target :: !targets);
          let rendered = List.rev_map (id_or_placeholder g) !targets in
          attrs := (attr_name, String.concat " " rendered) :: !attrs
        end
      end
      else if is_tree_child g ~parent:nid ~label:l v then
        children := T.Element (build g v ~tag:name) :: !children);
  let attrs =
    match Data_graph.id_of g nid with
    | Some id -> ("id", id) :: List.rev !attrs
    | None -> List.rev !attrs
  in
  let children =
    match Data_graph.value g nid with
    | Some v -> [ T.Text v ]
    | None -> List.rev !children
  in
  { T.tag; attrs; children }

let element ?tag g nid =
  let tag =
    match tag with
    | Some t -> t
    | None ->
      (match tree_in_edge g nid with
       | Some (l, _) -> Label.to_string (Data_graph.labels g) l
       | None -> "root")
  in
  build g nid ~tag

let to_xml_string ?tag g nid =
  Repro_xml.Xml_print.to_string ~decl:false { T.decl = []; root = element ?tag g nid }
