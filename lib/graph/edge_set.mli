(** Sets of graph edges, the contents of index extents.

    An extent element is a pair [<parent_nid, nid>] (Definition 7 of the
    paper: the incoming edge of a node reachable by a label path). Pairs are
    packed into single OCaml ints — 31 bits per component — and stored as
    strictly increasing arrays, so set operations are linear merges and the
    natural order is (parent, child) lexicographic.

    The special parent [null] encodes the paper's [<NULL, root>] edge. *)

type t = private int array

val null : int
(** Pseudo-nid used as the parent of the root edge. *)

val pack : int -> int -> int
(** [pack u v] packs parent [u] (or {!null}) and child [v].
    @raise Invalid_argument when a component exceeds 31 bits. *)

val unpack : int -> int * int

val empty : t
val of_list : (int * int) list -> t
val of_packed_array : int array -> t
(** Takes ownership conceptually; sorts/dedups if needed. *)

val unsafe_of_sorted : int array -> t
(** Wrap an array the caller {e guarantees} is a strictly increasing packed
    edge array, skipping the O(n) validation of {!of_packed_array} — for
    storage-layer caches returning arrays that were validated when first
    decoded. The caller must never mutate the array afterwards. *)

val to_list : t -> (int * int) list
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> int -> bool
val union : t -> t -> t
val union_many : t list -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val iter : (int -> int -> unit) -> t -> unit
val fold : ('acc -> int -> int -> 'acc) -> 'acc -> t -> 'acc

val endpoints : t -> int array
(** Strictly increasing array of the child components — the nodes an extent
    denotes as query results. *)

val parents : t -> int array
(** Strictly increasing array of the parent components ({!null} excluded).
    Linear — the packed order already sorts parents. *)

val join : t -> t -> t
(** [join a b] keeps the edges of [b] whose parent is an endpoint of [a] —
    one step of the paper's multi-way extent join. *)

val semijoin_parents : t -> int array -> t
(** Keep the edges of the set whose parent occurs in the given sorted
    array. Exploits that packed edges sorted by [(parent lsl 31) lor child]
    are range-contiguous per parent: binary-searches (with galloping) the
    range of each wanted parent instead of scanning, or merge-walks runs
    when the parent array is dense — never materializes or re-sorts
    endpoint arrays. *)

val semijoin_endpoints : t -> int array -> int array
(** [semijoin_endpoints t frontier] is
    [endpoints (semijoin_parents t frontier)] without materializing the
    intermediate edge set — one step of a multi-way extent join when only
    the reachable-node frontier is needed downstream. *)

val semijoin_children : t -> int array -> t
(** Keep the edges of the set whose {e child} occurs in the given sorted
    array (per-edge binary search; children are not range-contiguous).
    Used for backward selectivity reductions in multi-way joins. *)

val pp : Format.formatter -> t -> unit
