(** The XML data graph [G_XML] (Definition 1 of the paper).

    A rooted, directed, edge-labeled graph. Nodes are dense integer ids
    ([nid]) assigned in document order, so sorting result nids ascending
    yields document order. Leaf nodes may carry a data value (character
    data or an attribute value).

    Built either from a parsed XML document ({!of_document}), which encodes
    attributes and ID/IDREF references exactly as Section 3 prescribes, or
    directly through {!Builder} (tests, tiny examples). *)

type t

type nid = int

(** {1 Accessors} *)

val labels : t -> Label.table
val root : t -> nid
val n_nodes : t -> int
val n_edges : t -> int

val value : t -> nid -> string option
(** Data value of a leaf node. *)

val out_degree : t -> nid -> int

val iter_out : t -> nid -> (Label.t -> nid -> unit) -> unit
(** Iterate the outgoing edges of a node, in insertion (document) order. *)

val fold_out : t -> nid -> ('acc -> Label.t -> nid -> 'acc) -> 'acc -> 'acc

val iter_in : t -> nid -> (Label.t -> nid -> unit) -> unit
(** Iterate the incoming edges of a node as [(label, source)]. The reverse
    adjacency is computed on first use and cached. *)

val iter_edges : t -> (nid -> Label.t -> nid -> unit) -> unit
(** Iterate every edge as [(source, label, target)]. *)

val idref_labels : t -> Label.t list
(** Labels that were introduced for IDREF-typed attributes (the ['@']-edges
    created by reference resolution, not the reference edges themselves). *)

val root_edge : t -> Edge_set.t
(** The singleton [<NULL, root>] pseudo-edge set seeding index builds. *)

val id_of : t -> nid -> string option
(** The XML id under which the node was registered at encoding time (for
    graphs built by {!of_document} with ID-typed attributes); [None]
    otherwise. The inverse map is built on first use and extended lazily. *)

val edges_with_label : t -> Label.t -> Edge_set.t
(** All edges [<u, v>] such that [u --l--> v]; computed on first use per
    label and cached. *)

(** {1 Construction} *)

val of_document :
  ?id_attrs:string list ->
  ?idref_attrs:string list ->
  Repro_xml.Xml_tree.document ->
  t
(** Encode a parsed document per Section 3:
    - each element becomes a node; an edge labeled with the child's tag
      links parent to child;
    - an element whose content is only character data becomes a leaf
      carrying that text;
    - an attribute named in [idref_attrs] becomes an edge labeled
      [@name] to a fresh attribute node, and from there one reference
      edge per whitespace-separated target id, labeled with the {e target
      element's} tag;
    - an attribute named in [id_attrs] (default [["id"]]) registers the
      element for reference resolution and produces no edge;
    - any other attribute becomes a leaf node reached by an [@name] edge,
      carrying the attribute value.

    Dangling IDREFs (no element with that id) are silently dropped.
    Attribute-name matching is exact (case-sensitive). *)

val of_document_dtd : Repro_xml.Dtd.t -> Repro_xml.Xml_tree.document -> t
(** {!of_document} with the ID and IDREF attribute names taken from the
    DTD's [<!ATTLIST>] declarations — the paper's Section 3 setting, where
    attribute typing comes from the document type definition. *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_node : ?value:string -> t -> nid
  (** Fresh node; nids are assigned densely from 0. *)

  val add_edge : t -> nid -> string -> nid -> unit
  (** [add_edge b u label v] adds [u --label--> v].
      @raise Invalid_argument on unknown nids. *)

  val build : root:nid -> t -> graph
  (** Freeze. Labels beginning with ['@'] whose target has outgoing edges
      are recorded as IDREF labels. @raise Invalid_argument on unknown
      root. *)
end

val append_subtree :
  ?id_attrs:string list ->
  ?idref_attrs:string list ->
  t ->
  parent:nid ->
  Repro_xml.Xml_tree.element ->
  t
(** Functional document growth: a new graph extending this one with the
    fragment encoded per Section 3 and linked below [parent] by an edge
    labeled with the fragment's tag. New nodes get nids after all existing
    ones; existing nids, edges and extents of the old graph are unchanged
    (the old value remains valid). IDREFs in the fragment resolve against
    ids recorded when the original document was encoded plus the fragment's
    own; dangling references are dropped. The label table is shared (it
    only ever grows). @raise Invalid_argument on an unknown parent. *)

val delete_subtree : t -> node:nid -> t * (nid * Label.t * nid) list
(** Functional subtree deletion: a new graph without [node], its tree
    descendants (nodes whose document-parent chain passes through [node],
    including attribute leaves and IDREF attribute nodes), and {e every}
    edge incident to a deleted node — tree edges, attribute edges, and
    reference edges in either direction. Returns the removed edges as
    [(source, label, target)] triples, in document order. Deleted nids stay
    allocated but fully disconnected (dense nids keep every other node's
    id stable); their ids are dropped from the reference-resolution table.
    @raise Invalid_argument on the root or an unknown nid. *)

val add_ref_edge : t -> owner:nid -> attr:string -> target:nid -> t * (nid * Label.t * nid) list
(** Functional IDREF edge insertion, encoded as {!of_document} encodes
    references: a fresh attribute node reached from [owner] by [@attr],
    with one reference edge to [target] labeled by the target's document
    tag. Returns the two added edges. @raise Invalid_argument when [target]
    has no document edge (nothing to label the reference with). *)

val remove_ref_edge : t -> owner:nid -> attr:string -> target:nid -> t * (nid * Label.t * nid) list
(** Remove one reference edge [owner --@attr--> a --tag--> target]. When
    this empties the attribute node [a], the [@attr] edge to it is removed
    too (and [a] is left disconnected). Returns the removed edges.
    @raise Invalid_argument when no such reference exists. *)

val snapshot : t -> t
(** A reader-safe copy: same nodes, edges, values and label ids, but with
    a private label table ({!Label.copy_table}), a private id table, and
    every lazy cache (reverse adjacency, per-label edge sets, id inverse)
    forced eagerly — so no read on the copy ever writes to it, and no
    writer-side {!append_subtree}/{!add_ref_edge} on the original can race
    a reader of the copy. Used by the serving layer to publish epochs. *)

(** {1 Queries used by tests and the naive evaluator} *)

val reachable_by_label_path : t -> Label.t list -> Edge_set.t
(** [T(p)] of Definition 7 computed by direct graph traversal: the set of
    incoming edges of nodes reachable from {e any} node by traversing the
    label path [p]. Exact but O(nodes × path length); reference semantics
    for testing indexes. *)

val pp_stats : Format.formatter -> t -> unit
