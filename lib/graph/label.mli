(** Interned edge labels.

    All labels of a data graph (element tags, ['@'] attribute names, and the
    tags used on ID/IDREF reference edges) are interned to small integers so
    that hot paths compare and hash ints. A {!table} is owned by one data
    graph and shared with every index built over it. *)

type t = int
(** An interned label. Valid only with the table that produced it. *)

type table

val create_table : unit -> table

val intern : table -> string -> t
(** Existing id for the string, or a fresh one. *)

val copy_table : table -> table
(** An independent table with the same string↔id assignments. Interning
    into either afterwards does not affect the other; ids already handed
    out stay valid against both. The serving layer snapshots a graph's
    table this way so reader domains never race a writer's {!intern}. *)

val find : table -> string -> t option
(** Existing id only; [None] when the string was never interned. *)

val to_string : table -> t -> string
(** @raise Invalid_argument on an id not produced by this table. *)

val count : table -> int
(** Number of distinct labels interned so far. *)

val is_attribute : table -> t -> bool
(** True when the label string starts with ['@'] (attribute / IDREF edge out
    of an element, per Section 3 of the paper). *)

val pp : table -> Format.formatter -> t -> unit
