type t = int

type table = {
  by_string : (string, int) Hashtbl.t;
  by_id : string Repro_util.Vec.t;
}

let create_table () =
  { by_string = Hashtbl.create 64; by_id = Repro_util.Vec.create () }

let intern tbl s =
  match Hashtbl.find_opt tbl.by_string s with
  | Some id -> id
  | None ->
    let id = Repro_util.Vec.length tbl.by_id in
    Hashtbl.add tbl.by_string s id;
    Repro_util.Vec.push tbl.by_id s;
    id

let copy_table tbl =
  { by_string = Hashtbl.copy tbl.by_string;
    by_id = Repro_util.Vec.of_array (Repro_util.Vec.to_array tbl.by_id)
  }

let find tbl s = Hashtbl.find_opt tbl.by_string s

let to_string tbl id =
  if id < 0 || id >= Repro_util.Vec.length tbl.by_id then
    invalid_arg (Printf.sprintf "Label.to_string: unknown label id %d" id)
  else Repro_util.Vec.get tbl.by_id id

let count tbl = Repro_util.Vec.length tbl.by_id

let is_attribute tbl id =
  let s = to_string tbl id in
  String.length s > 0 && Char.equal s.[0] '@'

let pp tbl ppf id = Format.pp_print_string ppf (to_string tbl id)
