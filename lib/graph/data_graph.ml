module Vec = Repro_util.Vec

type nid = int

(* Outgoing/incoming adjacency entries pack (label, other-node) into one int:
   labels fit 30 bits, nids fit 31 bits. *)
let pack_adj label node = (label lsl 32) lor node
let adj_label e = e lsr 32
let adj_node e = e land ((1 lsl 32) - 1)

type t = {
  labels : Label.table;
  root : nid;
  out : int array array;
  values : string option array;
  n_edges : int;
  idref_label_ids : Label.t list;
  ids : (string, int * string) Hashtbl.t;
      (* XML id -> (nid, tag); retained so fragments appended later can
         reference existing elements *)
  mutable id_inv : (int, string) Hashtbl.t option;  (* nid -> id, lazy *)
  mutable in_adj : int array array option;
  mutable by_label : (Label.t, Edge_set.t) Hashtbl.t option;
}

let labels g = g.labels
let root g = g.root
let n_nodes g = Array.length g.out
let n_edges g = g.n_edges

let check_nid g v ctx =
  if v < 0 || v >= n_nodes g then
    invalid_arg (Printf.sprintf "Data_graph.%s: unknown nid %d" ctx v)

let value g v =
  check_nid g v "value";
  g.values.(v)

let out_degree g v =
  check_nid g v "out_degree";
  Array.length g.out.(v)

let iter_out g v f =
  check_nid g v "iter_out";
  Array.iter (fun e -> f (adj_label e) (adj_node e)) g.out.(v)

let fold_out g v f acc =
  check_nid g v "fold_out";
  Array.fold_left (fun acc e -> f acc (adj_label e) (adj_node e)) acc g.out.(v)

let iter_edges g f =
  Array.iteri (fun u adj -> Array.iter (fun e -> f u (adj_label e) (adj_node e)) adj) g.out

let ensure_in_adj g =
  match g.in_adj with
  | Some a -> a
  | None ->
    let degree = Array.make (n_nodes g) 0 in
    iter_edges g (fun _ _ v -> degree.(v) <- degree.(v) + 1);
    let a = Array.map (fun d -> Array.make d 0) degree in
    let fill = Array.make (n_nodes g) 0 in
    iter_edges g (fun u l v ->
        a.(v).(fill.(v)) <- pack_adj l u;
        fill.(v) <- fill.(v) + 1);
    g.in_adj <- Some a;
    a

let iter_in g v f =
  check_nid g v "iter_in";
  let a = ensure_in_adj g in
  Array.iter (fun e -> f (adj_label e) (adj_node e)) a.(v)

let idref_labels g = g.idref_label_ids

let id_of g nid =
  check_nid g nid "id_of";
  let inv =
    match g.id_inv with
    | Some inv when Hashtbl.length inv = Hashtbl.length g.ids -> inv
    | Some _ | None ->
      let inv = Hashtbl.create (Hashtbl.length g.ids) in
      Hashtbl.iter (fun id (v, _) -> Hashtbl.replace inv v id) g.ids;
      g.id_inv <- Some inv;
      inv
  in
  Hashtbl.find_opt inv nid

let root_edge g = Edge_set.of_list [ (Edge_set.null, g.root) ]

let ensure_by_label g =
  match g.by_label with
  | Some tbl -> tbl
  | None ->
    let groups : (Label.t, int Vec.t) Hashtbl.t = Hashtbl.create 64 in
    iter_edges g (fun u l v ->
        let vec =
          match Hashtbl.find_opt groups l with
          | Some vec -> vec
          | None ->
            let vec = Vec.create () in
            Hashtbl.add groups l vec;
            vec
        in
        Vec.push vec (Edge_set.pack u v));
    let tbl = Hashtbl.create (Hashtbl.length groups) in
    Hashtbl.iter (fun l vec -> Hashtbl.add tbl l (Edge_set.of_packed_array (Vec.to_array vec))) groups;
    g.by_label <- Some tbl;
    tbl

let edges_with_label g l =
  match Hashtbl.find_opt (ensure_by_label g) l with
  | Some set -> set
  | None -> Edge_set.empty

module Builder = struct
  type t = {
    b_labels : Label.table;
    b_values : string option Vec.t;
    b_out : int list ref Vec.t;
    mutable b_edges : int;
  }

  let create () =
    { b_labels = Label.create_table (); b_values = Vec.create (); b_out = Vec.create (); b_edges = 0 }

  let add_node ?value b =
    let nid = Vec.length b.b_values in
    Vec.push b.b_values value;
    Vec.push b.b_out (ref []);
    nid

  let check b v ctx =
    if v < 0 || v >= Vec.length b.b_values then
      invalid_arg (Printf.sprintf "Data_graph.Builder.%s: unknown nid %d" ctx v)

  let add_edge b u label v =
    check b u "add_edge";
    check b v "add_edge";
    let l = Label.intern b.b_labels label in
    let adj = Vec.get b.b_out u in
    adj := pack_adj l v :: !adj;
    b.b_edges <- b.b_edges + 1

  let freeze ?idref_label_ids ~root b =
    check b root "build";
    let out = Array.map (fun l -> Array.of_list (List.rev !l)) (Vec.to_array b.b_out) in
    let g =
      { labels = b.b_labels;
        root;
        out;
        values = Vec.to_array b.b_values;
        n_edges = b.b_edges;
        idref_label_ids = [];
        ids = Hashtbl.create 4;
        id_inv = None;
        in_adj = None;
        by_label = None
      }
    in
    let idrefs =
      match idref_label_ids with
      | Some ids -> ids
      | None ->
        (* Heuristic for hand-built graphs: an '@' label whose targets have
           outgoing edges is an IDREF attribute edge. *)
        let candidates = Hashtbl.create 8 in
        iter_edges g (fun _ l v ->
            if Label.is_attribute g.labels l && Array.length out.(v) > 0 then
              Hashtbl.replace candidates l ());
        List.sort Int.compare (Hashtbl.fold (fun l () acc -> l :: acc) candidates [])
    in
    { g with idref_label_ids = idrefs }

  let build ~root b = freeze ~root b
end

let of_document ?(id_attrs = [ "id" ]) ?(idref_attrs = []) (doc : Repro_xml.Xml_tree.document) =
  let b = Builder.create () in
  let ids : (string, nid * string) Hashtbl.t = Hashtbl.create 256 in
  (* (element nid, attr name, idref values) collected for the second pass *)
  let pending_refs : (nid * string * string list) Vec.t = Vec.create () in
  let is_id name = List.mem name id_attrs in
  let is_idref name = List.mem name idref_attrs in
  let split_refs v =
    String.split_on_char ' ' v |> List.concat_map (String.split_on_char '\n')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> String.length s > 0)
  in
  let rec walk (e : Repro_xml.Xml_tree.element) =
    let only_text =
      not (List.is_empty e.children) && List.for_all (function Repro_xml.Xml_tree.Text _ -> true | _ -> false) e.children
    in
    let value =
      if only_text then
        Some
          (String.concat ""
             (List.map (function Repro_xml.Xml_tree.Text s -> s | Repro_xml.Xml_tree.Element _ -> "") e.children))
      else None
    in
    let me = Builder.add_node ?value b in
    List.iter
      (fun (name, v) ->
        if is_id name then
          (if not (Hashtbl.mem ids v) then Hashtbl.add ids v (me, e.tag))
        else if is_idref name then Vec.push pending_refs (me, name, split_refs v)
        else begin
          let leaf = Builder.add_node ~value:v b in
          Builder.add_edge b me ("@" ^ name) leaf
        end)
      e.attrs;
    if not only_text then
      List.iter
        (function
          | Repro_xml.Xml_tree.Text _ -> ()
          | Repro_xml.Xml_tree.Element child ->
            let c = walk child in
            Builder.add_edge b me child.tag c)
        e.children;
    me
  in
  let root = walk doc.root in
  let idref_label_names = Hashtbl.create 8 in
  Vec.iter
    (fun (owner, name, refs) ->
      let targets =
        List.filter_map
          (fun r ->
            match Hashtbl.find_opt ids r with
            | Some (target, tag) -> Some (target, tag)
            | None -> None)
          refs
      in
      match targets with
      | [] -> ()
      | targets ->
        let attr_node = Builder.add_node b in
        Builder.add_edge b owner ("@" ^ name) attr_node;
        Hashtbl.replace idref_label_names ("@" ^ name) ();
        List.iter (fun (target, tag) -> Builder.add_edge b attr_node tag target) targets)
    pending_refs;
  let idref_label_ids =
    Hashtbl.fold
      (fun name () acc ->
        match Label.find b.Builder.b_labels name with
        | Some id -> id :: acc
        | None -> acc)
      idref_label_names []
    |> List.sort Int.compare
  in
  let g = Builder.freeze ~idref_label_ids ~root b in
  Hashtbl.iter (fun id target -> Hashtbl.replace g.ids id target) ids;
  g

let of_document_dtd dtd doc =
  of_document
    ~id_attrs:(Repro_xml.Dtd.id_attributes dtd)
    ~idref_attrs:(Repro_xml.Dtd.idref_attributes dtd)
    doc

let append_subtree ?(id_attrs = [ "id" ]) ?(idref_attrs = [ ]) g ~parent
    (fragment : Repro_xml.Xml_tree.element) =
  check_nid g parent "append_subtree";
  let base = n_nodes g in
  let new_values : string option Vec.t = Vec.create () in
  let new_out : int list ref Vec.t = Vec.create () in
  let new_edges = ref 0 in
  let fresh ?value () =
    let nid = base + Vec.length new_values in
    Vec.push new_values value;
    Vec.push new_out (ref []);
    nid
  in
  let parent_extra = ref [] in
  let add_edge u label v =
    let l = Label.intern g.labels label in
    if u = parent then parent_extra := pack_adj l v :: !parent_extra
    else begin
      let adj = Vec.get new_out (u - base) in
      adj := pack_adj l v :: !adj
    end;
    incr new_edges
  in
  let ids = Hashtbl.copy g.ids in
  let pending_refs : (nid * string * string list) Vec.t = Vec.create () in
  let is_id name = List.mem name id_attrs in
  let is_idref name = List.mem name idref_attrs in
  let split_refs v =
    String.split_on_char ' ' v
    |> List.concat_map (String.split_on_char '\n')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> String.length s > 0)
  in
  let rec walk (e : Repro_xml.Xml_tree.element) =
    let only_text =
      not (List.is_empty e.children)
      && List.for_all (function Repro_xml.Xml_tree.Text _ -> true | _ -> false) e.children
    in
    let value =
      if only_text then
        Some
          (String.concat ""
             (List.map
                (function Repro_xml.Xml_tree.Text s -> s | Repro_xml.Xml_tree.Element _ -> "")
                e.children))
      else None
    in
    let me = fresh ?value () in
    List.iter
      (fun (name, v) ->
        if is_id name then begin
          if not (Hashtbl.mem ids v) then Hashtbl.add ids v (me, e.tag)
        end
        else if is_idref name then Vec.push pending_refs (me, name, split_refs v)
        else begin
          let leaf = fresh ~value:v () in
          add_edge me ("@" ^ name) leaf
        end)
      e.attrs;
    if not only_text then
      List.iter
        (function
          | Repro_xml.Xml_tree.Text _ -> ()
          | Repro_xml.Xml_tree.Element child ->
            let c = walk child in
            add_edge me child.tag c)
        e.children;
    me
  in
  let fragment_root = walk fragment in
  add_edge parent fragment.tag fragment_root;
  let idref_label_names = Hashtbl.create 4 in
  Vec.iter
    (fun (owner, name, refs) ->
      let targets = List.filter_map (fun r -> Hashtbl.find_opt ids r) refs in
      match targets with
      | [] -> ()
      | targets ->
        let attr_node = fresh () in
        add_edge owner ("@" ^ name) attr_node;
        Hashtbl.replace idref_label_names ("@" ^ name) ();
        List.iter (fun (target, tag) -> add_edge attr_node tag target) targets)
    pending_refs;
  let k = Vec.length new_values in
  let out =
    Array.init (base + k) (fun i ->
        if i = parent then Array.append g.out.(i) (Array.of_list (List.rev !parent_extra))
        else if i < base then g.out.(i)
        else Array.of_list (List.rev !(Vec.get new_out (i - base))))
  in
  let values =
    Array.init (base + k) (fun i ->
        if i < base then g.values.(i) else Vec.get new_values (i - base))
  in
  let idref_label_ids =
    Hashtbl.fold
      (fun name () acc ->
        match Label.find g.labels name with Some id -> id :: acc | None -> acc)
      idref_label_names g.idref_label_ids
    |> List.sort_uniq Int.compare
  in
  { labels = g.labels;
    root = g.root;
    out;
    values;
    n_edges = g.n_edges + !new_edges;
    idref_label_ids;
    ids;
    id_inv = None;
    in_adj = None;
    by_label = None
  }

(* A node's tree (document) edge is its first incoming edge — reference
   edges always come from attribute nodes created after the referencing
   element, so they sort later in the reverse adjacency (see Subtree). *)
let tree_in_edge_packed g v =
  let a = ensure_in_adj g in
  if Array.length a.(v) = 0 then None else Some a.(v).(0)

let delete_subtree g ~node =
  check_nid g node "delete_subtree";
  if node = g.root then invalid_arg "Data_graph.delete_subtree: cannot delete the root";
  ignore (ensure_in_adj g : int array array);
  let n = n_nodes g in
  let deleted = Array.make n false in
  deleted.(node) <- true;
  (* tree descendants: nodes whose document-parent chain passes through
     [node]; attribute leaves and IDREF attribute nodes hang off their
     owners by tree edges too, so they come along *)
  let stack = ref [ node ] in
  while not (List.is_empty !stack) do
    match !stack with
    | [] -> ()
    | u :: tl ->
      stack := tl;
      iter_out g u (fun _ v ->
          if (not deleted.(v)) && v <> g.root then
            match tree_in_edge_packed g v with
            | Some e when adj_node e = u ->
              deleted.(v) <- true;
              stack := v :: !stack
            | Some _ | None -> ())
  done;
  let removed = ref [] in
  let n_removed = ref 0 in
  iter_edges g (fun u l v ->
      if deleted.(u) || deleted.(v) then begin
        removed := (u, l, v) :: !removed;
        incr n_removed
      end);
  let out =
    Array.mapi
      (fun u adj ->
        if deleted.(u) then [||]
        else if Array.exists (fun e -> deleted.(adj_node e)) adj then
          Array.of_seq (Seq.filter (fun e -> not deleted.(adj_node e)) (Array.to_seq adj))
        else adj)
      g.out
  in
  let values = Array.mapi (fun v value -> if deleted.(v) then None else value) g.values in
  let ids = Hashtbl.create (Hashtbl.length g.ids) in
  Hashtbl.iter (fun id (v, tag) -> if not deleted.(v) then Hashtbl.add ids id (v, tag)) g.ids;
  let g' =
    { labels = g.labels;
      root = g.root;
      out;
      values;
      n_edges = g.n_edges - !n_removed;
      idref_label_ids = g.idref_label_ids;
      ids;
      id_inv = None;
      in_adj = None;
      by_label = None
    }
  in
  (g', List.rev !removed)

let add_ref_edge g ~owner ~attr ~target =
  check_nid g owner "add_ref_edge";
  check_nid g target "add_ref_edge";
  let target_tag =
    match tree_in_edge_packed g target with
    | Some e -> adj_label e
    | None ->
      invalid_arg "Data_graph.add_ref_edge: target has no document edge to label the reference"
  in
  let l_attr = Label.intern g.labels ("@" ^ attr) in
  (* a fresh attribute node keeps every reference edge's source younger
     than any tree parent, preserving the first-in-edge-is-tree-edge
     convention for all targets *)
  let attr_node = n_nodes g in
  let out =
    Array.init (attr_node + 1) (fun u ->
        if u = owner then Array.append g.out.(u) [| pack_adj l_attr attr_node |]
        else if u = attr_node then [| pack_adj target_tag target |]
        else g.out.(u))
  in
  let values = Array.init (attr_node + 1) (fun v -> if v = attr_node then None else g.values.(v)) in
  let g' =
    { labels = g.labels;
      root = g.root;
      out;
      values;
      n_edges = g.n_edges + 2;
      idref_label_ids = List.sort_uniq Int.compare (l_attr :: g.idref_label_ids);
      ids = g.ids;
      id_inv = None;
      in_adj = None;
      by_label = None
    }
  in
  (g', [ (owner, l_attr, attr_node); (attr_node, target_tag, target) ])

let remove_ref_edge g ~owner ~attr ~target =
  check_nid g owner "remove_ref_edge";
  check_nid g target "remove_ref_edge";
  let l_attr =
    match Label.find g.labels ("@" ^ attr) with
    | Some l -> l
    | None -> invalid_arg "Data_graph.remove_ref_edge: unknown attribute"
  in
  (* find an attribute node reached from [owner] by [@attr] that holds a
     reference edge to [target] *)
  let found = ref None in
  Array.iter
    (fun e ->
      if Option.is_none !found && adj_label e = l_attr then begin
        let a = adj_node e in
        Array.iter
          (fun e' -> if Option.is_none !found && adj_node e' = target then found := Some (a, adj_label e'))
          g.out.(a)
      end)
    g.out.(owner);
  match !found with
  | None -> invalid_arg "Data_graph.remove_ref_edge: no such reference"
  | Some (attr_node, target_tag) ->
    let remove_first arr e =
      let idx = ref (-1) in
      Array.iteri (fun i x -> if !idx < 0 && Int.equal x e then idx := i) arr;
      if !idx < 0 then arr
      else Array.init (Array.length arr - 1) (fun i -> if i < !idx then arr.(i) else arr.(i + 1))
    in
    let attr_out = remove_first g.out.(attr_node) (pack_adj target_tag target) in
    let orphaned = Array.length attr_out = 0 in
    let removed = ref [ (attr_node, target_tag, target) ] in
    let out =
      Array.mapi
        (fun u adj ->
          if u = attr_node then attr_out
          else if u = owner && orphaned then begin
            removed := (owner, l_attr, attr_node) :: !removed;
            remove_first adj (pack_adj l_attr attr_node)
          end
          else adj)
        g.out
    in
    let n_removed = if orphaned then 2 else 1 in
    let g' =
      { labels = g.labels;
        root = g.root;
        out;
        values = g.values;
        n_edges = g.n_edges - n_removed;
        idref_label_ids = g.idref_label_ids;
        ids = g.ids;
        id_inv = None;
        in_adj = None;
        by_label = None
      }
    in
    (g', List.rev !removed)

(* A reader-safe copy for the serving layer. Adjacency rows, values and the
   edge count are shared — they are never mutated in place (updates build
   new arrays) — but everything a concurrent writer can grow or a reader
   can lazily force is privatized: the label table (a writer's
   [append_subtree] interns into the shared one), the id table, and the
   three lazy caches, which are forced eagerly here so reads on the copy
   never store into it. *)
let snapshot g =
  let g' =
    { g with
      labels = Label.copy_table g.labels;
      ids = Hashtbl.copy g.ids;
      id_inv = None;
      in_adj = None;
      by_label = None
    }
  in
  ignore (ensure_in_adj g' : int array array);
  ignore (ensure_by_label g' : (Label.t, Edge_set.t) Hashtbl.t);
  let inv = Hashtbl.create (Hashtbl.length g'.ids) in
  Hashtbl.iter (fun id (v, _) -> Hashtbl.replace inv v id) g'.ids;
  g'.id_inv <- Some inv;
  g'

let reachable_by_label_path g path =
  match path with
  | [] -> invalid_arg "Data_graph.reachable_by_label_path: empty path"
  | path ->
    let n = n_nodes g in
    let rec go (current : bool array option) = function
      | [] -> assert false
      | [ last ] ->
        let edges = Vec.create () in
        let consider u =
          iter_out g u (fun l v -> if l = last then Vec.push edges (Edge_set.pack u v))
        in
        (match current with
         | None ->
           for u = 0 to n - 1 do
             consider u
           done
         | Some cur ->
           for u = 0 to n - 1 do
             if cur.(u) then consider u
           done);
        Edge_set.of_packed_array (Vec.to_array edges)
      | l :: rest ->
        let next = Array.make n false in
        let consider u = iter_out g u (fun l' v -> if l' = l then next.(v) <- true) in
        (match current with
         | None ->
           for u = 0 to n - 1 do
             consider u
           done
         | Some cur ->
           for u = 0 to n - 1 do
             if cur.(u) then consider u
           done);
        go (Some next) rest
    in
    go None path

let pp_stats ppf g =
  Format.fprintf ppf "nodes=%d edges=%d labels=%d(%d idref)" (n_nodes g) (n_edges g)
    (Label.count g.labels)
    (List.length g.idref_label_ids)
