let pick rand arr =
  if Array.length arr = 0 then invalid_arg "Vocab.pick: empty array";
  arr.(Random.State.int rand (Array.length arr))

(* Write-never vocabulary tables: arrays for O(1) random indexing, filled
   at module initialization and never mutated — safe to read from any
   domain, hence the "readonly" guard. *)
let given_names =
  [| "Alice"; "Bruno"; "Carmen"; "Dmitri"; "Elena"; "Felix"; "Greta"; "Hugo"; "Ingrid"; "Jonas";
     "Kira"; "Leo"; "Mara"; "Nils"; "Olga"; "Pavel"; "Quincy"; "Rosa"; "Stefan"; "Tilda";
     "Ursula"; "Viktor"; "Wanda"; "Xavier"; "Yara"; "Zeno"
  |] [@@apex.guarded "readonly"]

let family_names =
  [| "Archer"; "Bennett"; "Castillo"; "Drummond"; "Eriksen"; "Fontaine"; "Galloway"; "Hartmann";
     "Ivanov"; "Jacobsen"; "Keller"; "Lindqvist"; "Moreau"; "Novak"; "Okafor"; "Petrov";
     "Quintero"; "Rasmussen"; "Silva"; "Thornton"; "Ueda"; "Vargas"; "Whitfield"; "Yamada"
  |] [@@apex.guarded "readonly"]

let words =
  [| "shadow"; "river"; "golden"; "night"; "storm"; "ancient"; "silver"; "whisper"; "ember";
     "frost"; "garden"; "hollow"; "iron"; "jade"; "kingdom"; "lantern"; "meadow"; "nebula";
     "ocean"; "prairie"; "quarry"; "raven"; "summit"; "thunder"; "umbra"; "valley"; "willow";
     "zephyr"; "crimson"; "dusty"; "echo"; "fable"
  |] [@@apex.guarded "readonly"]

let places =
  [| "Springfield"; "Riverton"; "Oakdale"; "Millbrook"; "Fairview"; "Ashford"; "Brookhaven";
     "Cedarville"; "Dunmore"; "Eastleigh"; "Foxborough"; "Glenwood"
  |] [@@apex.guarded "readonly"]

let months =
  [| "JAN"; "FEB"; "MAR"; "APR"; "MAY"; "JUN"; "JUL"; "AUG"; "SEP"; "OCT"; "NOV"; "DEC" |]
[@@apex.guarded "readonly"]

let given_name rand = pick rand given_names
let family_name rand = pick rand family_names
let person_name rand = given_name rand ^ " " ^ family_name rand

let capitalize s = String.capitalize_ascii s

let title rand =
  let n = 2 + Random.State.int rand 3 in
  String.concat " " (List.init n (fun _ -> capitalize (pick rand words)))

let sentence rand =
  let n = 6 + Random.State.int rand 11 in
  capitalize (String.concat " " (List.init n (fun _ -> pick rand words))) ^ "."

let line rand =
  let n = 4 + Random.State.int rand 5 in
  capitalize (String.concat " " (List.init n (fun _ -> pick rand words)))

let year rand = string_of_int (1900 + Random.State.int rand 102)

let date rand =
  Printf.sprintf "%d %s %s" (1 + Random.State.int rand 28) (pick rand months) (year rand)

let place rand = pick rand places

let chance rand p = Random.State.float rand 1.0 < p

let int_between rand lo hi =
  if hi < lo then invalid_arg "Vocab.int_between: hi < lo";
  lo + Random.State.int rand (hi - lo + 1)
