(* Field-drift guard for the counter structs that feed telemetry.

   [Cost.to_fields] / [Io_stats.to_fields] are written with complete
   record patterns, so *omitting* a field is already a compile error.
   What the compiler cannot check is that [reset]/[copy]/[add]/[pp]
   handle every field, or that [to_fields] does not duplicate or
   misorder names. These tests close that gap with sentinel records:
   every field carries a distinct value, so a counter dropped by any of
   the lifecycle functions — or by the pretty-printer — shows up as a
   missing sentinel. *)

module Cost = Repro_storage.Cost
module Io_stats = Repro_storage.Io_stats

let str_of pp v = Format.asprintf "%a" pp v

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* distinct sentinels, far enough apart that no sentinel is a substring
   of another's decimal rendering and no sum collides with a sentinel *)
let sentinel i = 1009 + (101 * i)

let cost_sentinel base =
  let c = Cost.create () in
  let i = ref 0 in
  let next () = incr i; base + sentinel !i in
  c.Cost.index_node_visits <- next ();
  c.Cost.struct_pages <- next ();
  c.Cost.index_edge_lookups <- next ();
  c.Cost.hash_probes <- next ();
  c.Cost.trie_node_visits <- next ();
  c.Cost.trie_pages <- next ();
  c.Cost.extent_pages <- next ();
  c.Cost.extent_edges <- next ();
  c.Cost.extent_cache_hits <- next ();
  c.Cost.extent_cache_misses <- next ();
  c.Cost.join_edges <- next ();
  c.Cost.table_pages <- next ();
  c.Cost.extent_bytes <- next ();
  c.Cost.blocks_skipped <- next ();
  c.Cost.blocks_decoded <- next ();
  c

let io_sentinel base =
  let s = Io_stats.create () in
  let i = ref 0 in
  let next () = incr i; base + sentinel !i in
  s.Io_stats.disk_reads <- next ();
  s.Io_stats.disk_writes <- next ();
  s.Io_stats.cache_hits <- next ();
  s.Io_stats.cache_misses <- next ();
  s.Io_stats.read_retries <- next ();
  s.Io_stats.refresh_aborts <- next ();
  s

let distinct_names fields =
  let names = List.map fst fields in
  List.length (List.sort_uniq String.compare names) = List.length names

let cost_to_fields () =
  let c = cost_sentinel 0 in
  let fields = Cost.to_fields c in
  Alcotest.(check bool) "names distinct" true (distinct_names fields);
  List.iteri
    (fun i (name, v) ->
      Alcotest.(check int) ("declaration order: " ^ name) (sentinel (i + 1)) v)
    fields

let cost_pp_covers_fields () =
  let c = cost_sentinel 0 in
  let out = str_of Cost.pp c in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "pp prints %s=%d" name v)
        true
        (contains ~needle:(string_of_int v) out))
    (Cost.to_fields c)

let cost_add_sums () =
  let acc = cost_sentinel 0 and x = cost_sentinel 1_000_000 in
  let before_x = Cost.to_fields x in
  Cost.add acc x;
  List.iteri
    (fun i (name, v) ->
      let expected = (2 * sentinel (i + 1)) + 1_000_000 in
      Alcotest.(check int) ("add sums " ^ name) expected v)
    (Cost.to_fields acc);
  Alcotest.(check (list (pair string int)))
    "add leaves its argument alone" before_x (Cost.to_fields x)

let cost_copy_independent () =
  let c = cost_sentinel 0 in
  let d = Cost.copy c in
  Alcotest.(check (list (pair string int)))
    "copy preserves every field" (Cost.to_fields c) (Cost.to_fields d);
  d.Cost.hash_probes <- 0;
  Alcotest.(check int)
    "copy is detached" (sentinel 4) c.Cost.hash_probes

let cost_reset_zeroes () =
  let c = cost_sentinel 0 in
  Cost.reset c;
  List.iter
    (fun (name, v) -> Alcotest.(check int) ("reset zeroes " ^ name) 0 v)
    (Cost.to_fields c)

let io_to_fields () =
  let s = io_sentinel 0 in
  let fields = Io_stats.to_fields s in
  Alcotest.(check bool) "names distinct" true (distinct_names fields);
  List.iteri
    (fun i (name, v) ->
      Alcotest.(check int) ("declaration order: " ^ name) (sentinel (i + 1)) v)
    fields

let io_pp_covers_fields () =
  let s = io_sentinel 0 in
  let out = str_of Io_stats.pp s in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "pp prints %s=%d" name v)
        true
        (contains ~needle:(string_of_int v) out))
    (Io_stats.to_fields s)

let io_copy_reset () =
  let s = io_sentinel 0 in
  let d = Io_stats.copy s in
  Alcotest.(check (list (pair string int)))
    "copy preserves every field" (Io_stats.to_fields s) (Io_stats.to_fields d);
  d.Io_stats.disk_reads <- 0;
  Alcotest.(check int) "copy is detached" (sentinel 1) s.Io_stats.disk_reads;
  Io_stats.reset s;
  List.iter
    (fun (name, v) -> Alcotest.(check int) ("reset zeroes " ^ name) 0 v)
    (Io_stats.to_fields s)

let io_total_requests () =
  let s = io_sentinel 0 in
  Alcotest.(check int)
    "total = hits + misses"
    (s.Io_stats.cache_hits + s.Io_stats.cache_misses)
    (Io_stats.total_page_requests s)

let () =
  Alcotest.run "cost_guard"
    [
      ( "cost",
        [
          Alcotest.test_case "to_fields sentinels" `Quick cost_to_fields;
          Alcotest.test_case "pp covers fields" `Quick cost_pp_covers_fields;
          Alcotest.test_case "add sums fields" `Quick cost_add_sums;
          Alcotest.test_case "copy independent" `Quick cost_copy_independent;
          Alcotest.test_case "reset zeroes" `Quick cost_reset_zeroes;
        ] );
      ( "io_stats",
        [
          Alcotest.test_case "to_fields sentinels" `Quick io_to_fields;
          Alcotest.test_case "pp covers fields" `Quick io_pp_covers_fields;
          Alcotest.test_case "copy and reset" `Quick io_copy_reset;
          Alcotest.test_case "total page requests" `Quick io_total_requests;
        ] );
    ]
