open Repro_util

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" (99 * 99) (Vec.get v 99)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec: index 1 out of bounds (length 1)")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "negative index" (Invalid_argument "Vec: index -1 out of bounds (length 1)")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_set () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Vec.set v 1 42;
  Alcotest.(check (array int)) "after set" [| 1; 42; 3 |] (Vec.to_array v)

let test_vec_clear () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Vec.clear v;
  Alcotest.(check int) "empty after clear" 0 (Vec.length v);
  Vec.push v 7;
  Alcotest.(check (array int)) "reusable" [| 7 |] (Vec.to_array v)

let test_vec_iteri_fold () =
  let v = Vec.of_array [| 10; 20; 30 |] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (2, 30); (1, 20); (0, 10) ] !acc;
  Alcotest.(check int) "fold" 60 (Vec.fold_left ( + ) 0 v)

(* --- Int_sorted --- *)

let test_of_unsorted () =
  Alcotest.(check (array int)) "dedup+sort" [| 1; 2; 5; 9 |]
    (Int_sorted.of_unsorted [| 5; 1; 9; 2; 5; 1 |]);
  Alcotest.(check (array int)) "empty" [||] (Int_sorted.of_unsorted [||])

let test_mem () =
  let a = [| 1; 3; 5; 7; 11 |] in
  List.iter (fun x -> Alcotest.(check bool) (string_of_int x) true (Int_sorted.mem a x)) [ 1; 5; 11 ];
  List.iter (fun x -> Alcotest.(check bool) (string_of_int x) false (Int_sorted.mem a x)) [ 0; 2; 12 ]

let test_set_ops () =
  let a = [| 1; 2; 3; 5 |] and b = [| 2; 4; 5; 6 |] in
  Alcotest.(check (array int)) "union" [| 1; 2; 3; 4; 5; 6 |] (Int_sorted.union a b);
  Alcotest.(check (array int)) "inter" [| 2; 5 |] (Int_sorted.inter a b);
  Alcotest.(check (array int)) "diff" [| 1; 3 |] (Int_sorted.diff a b);
  Alcotest.(check bool) "subset yes" true (Int_sorted.subset [| 2; 5 |] b);
  Alcotest.(check bool) "subset no" false (Int_sorted.subset a b)

let test_union_many () =
  Alcotest.(check (array int)) "3-way" [| 1; 2; 3; 4 |]
    (Int_sorted.union_many [ [| 1; 3 |]; [| 2 |]; [| 3; 4 |] ]);
  Alcotest.(check (array int)) "none" [||] (Int_sorted.union_many []);
  Alcotest.(check (array int)) "single" [| 7 |] (Int_sorted.union_many [ [| 7 |] ])

let gen_set = QCheck.Gen.(map Repro_util.Int_sorted.of_unsorted (array_size (int_bound 40) (int_bound 60)))
let arb_set = QCheck.make ~print:(fun a -> QCheck.Print.(array int) a) gen_set

(* adversarial size skew: a handful of probes against thousands of elements,
   the regime where [inter] switches to galloping *)
let gen_skewed_pair =
  QCheck.Gen.(
    pair
      (map Int_sorted.of_unsorted (array_size (int_bound 12) (int_bound 100_000)))
      (map Int_sorted.of_unsorted (array_size (return 4_000) (int_bound 100_000))))

let arb_skewed_pair =
  QCheck.make
    ~print:(fun (a, b) -> QCheck.Print.(pair (array int) (array int)) (a, b))
    gen_skewed_pair

let prop_ops_agree_with_lists =
  QCheck.Test.make ~count:300 ~name:"set ops agree with list model" (QCheck.pair arb_set arb_set)
    (fun (a, b) ->
      let la = Array.to_list a and lb = Array.to_list b in
      let model_union = List.sort_uniq compare (la @ lb) in
      let model_inter = List.filter (fun x -> List.mem x lb) la in
      let model_diff = List.filter (fun x -> not (List.mem x lb)) la in
      Array.to_list (Int_sorted.union a b) = model_union
      && Array.to_list (Int_sorted.inter a b) = model_inter
      && Array.to_list (Int_sorted.diff a b) = model_diff)

let prop_results_sorted =
  QCheck.Test.make ~count:300 ~name:"set ops preserve invariant" (QCheck.pair arb_set arb_set)
    (fun (a, b) ->
      Int_sorted.is_sorted_set (Int_sorted.union a b)
      && Int_sorted.is_sorted_set (Int_sorted.inter a b)
      && Int_sorted.is_sorted_set (Int_sorted.diff a b))

let prop_gallop_inter_agrees =
  QCheck.Test.make ~count:100 ~name:"gallop inter = linear inter on skewed sizes"
    arb_skewed_pair
    (fun (small, large) ->
      Int_sorted.equal (Int_sorted.inter small large) (Int_sorted.inter_linear small large)
      && Int_sorted.equal (Int_sorted.inter large small) (Int_sorted.inter_linear large small)
      (* force some overlap too: intersecting with a superset must be identity *)
      && Int_sorted.equal (Int_sorted.inter small (Int_sorted.union small large)) small)

let prop_lower_bound_agrees =
  QCheck.Test.make ~count:300 ~name:"gallop_lower_bound = lower_bound"
    (QCheck.pair arb_set QCheck.(int_bound 70))
    (fun (a, x) ->
      let n = Array.length a in
      Int_sorted.gallop_lower_bound a 0 n x = Int_sorted.lower_bound a 0 n x
      && (n = 0
          || Int_sorted.gallop_lower_bound a (n / 2) n x = Int_sorted.lower_bound a (n / 2) n x))

let prop_mem_batch_agrees =
  QCheck.Test.make ~count:100 ~name:"mem_batch = pointwise mem" arb_skewed_pair
    (fun (queries, a) ->
      let batch = Int_sorted.mem_batch a queries in
      Array.length batch = Array.length queries
      && Array.for_all2 (fun r q -> r = Int_sorted.mem a q) batch queries)

let gen_many =
  QCheck.Gen.(list_size (int_bound 9) (map Int_sorted.of_unsorted (array_size (int_bound 300) (int_bound 2_000))))

let prop_union_many_agrees =
  QCheck.Test.make ~count:100 ~name:"k-way union_many = pairwise reference"
    (QCheck.make ~print:QCheck.Print.(list (array int)) gen_many)
    (fun sets ->
      let kway = Int_sorted.union_many sets in
      Int_sorted.is_sorted_set kway
      && Int_sorted.equal kway (Int_sorted.union_many_pairwise sets)
      && Int_sorted.equal kway (List.fold_left Int_sorted.union [||] sets))

let () =
  Alcotest.run "util"
    [ ( "vec",
        [ Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds checks" `Quick test_vec_bounds;
          Alcotest.test_case "set" `Quick test_vec_set;
          Alcotest.test_case "clear" `Quick test_vec_clear;
          Alcotest.test_case "iteri/fold" `Quick test_vec_iteri_fold
        ] );
      ( "int_sorted",
        [ Alcotest.test_case "of_unsorted" `Quick test_of_unsorted;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "union/inter/diff/subset" `Quick test_set_ops;
          Alcotest.test_case "union_many" `Quick test_union_many
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_ops_agree_with_lists;
          QCheck_alcotest.to_alcotest prop_results_sorted;
          QCheck_alcotest.to_alcotest prop_gallop_inter_agrees;
          QCheck_alcotest.to_alcotest prop_lower_bound_agrees;
          QCheck_alcotest.to_alcotest prop_mem_batch_agrees;
          QCheck_alcotest.to_alcotest prop_union_many_agrees
        ] )
    ]
