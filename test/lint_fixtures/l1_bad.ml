(* fixture: polymorphic comparison in hot-path scope *)
let sort_ids (a : int array) = Array.sort compare a
let hash_node n = Hashtbl.hash n
