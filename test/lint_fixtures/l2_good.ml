(* fixture: checked access *)
let get (a : int array) i = Array.get a i
