(* the sanctioned shape: per-block access through headers, no full decode *)
module Extent_codec = struct
  type t = int array

  let n_blocks (t : t) = (Array.length t + 127) / 128

  let decode_block (t : t) b out =
    let remaining = Array.length t - (b * 128) in
    let count = if remaining < 128 then remaining else 128 in
    Array.blit t (b * 128) out 0 count
end

let touch_blocks ext scratch =
  for b = 0 to Extent_codec.n_blocks ext - 1 do
    Extent_codec.decode_block ext b scratch
  done
