(* fixture: Obj.magic is banned everywhere *)
let cast (x : int) : bool = Obj.magic x
