(* fixture: unsafe access outside the kernel allowlist *)
let get (a : int array) i = Array.unsafe_get a i
