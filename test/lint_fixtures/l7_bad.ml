(* a hot query path materializing a whole compressed extent: the blocks
   should be skipped/decoded through the view kernels instead *)
module Extent_codec = struct
  type t = int array

  let decode_all (t : t) = Array.copy t
end

let cardinal_via_full_decode ext = Array.length (Extent_codec.decode_all ext)
