(* fixture: total replacements *)
let first = function [] -> None | x :: _ -> Some x
let force name o = match o with Some v -> v | None -> invalid_arg name
