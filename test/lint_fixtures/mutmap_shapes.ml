(* Mutability-map unit-test shapes: one declared type per lattice rule.
   test_lint typechecks this file in-process, feeds the structure to
   Lint_mutmap, and asserts each verdict. *)

type imm_rec = { a : int; b : string list }

type mut_rec = { mutable c : int }

type deep = { d : mut_rec }

type via_ref = { r : int ref }

type arrowed = { f : int -> int }

type atomicf = { g : int Atomic.t }

type opt_imm = { o : imm_rec option }

type tbl = { h : (int, string) Hashtbl.t }

type variant_mut = Leaf of int | Node of mut_rec

type inline_mut = Box of { mutable payload : int }

type alias_mut = deep

type lazily = { z : int lazy_t }

let _ =
  ( (fun (x : imm_rec) -> x),
    (fun (x : mut_rec) -> x),
    (fun (x : deep) -> x),
    (fun (x : via_ref) -> x),
    (fun (x : arrowed) -> x),
    (fun (x : atomicf) -> x),
    (fun (x : opt_imm) -> x),
    (fun (x : tbl) -> x),
    (fun (x : variant_mut) -> x),
    (fun (x : inline_mut) -> x),
    (fun (x : alias_mut) -> x),
    (fun (x : lazily) -> x) )
