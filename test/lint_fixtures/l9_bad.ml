(* L9 true positives: top-level mutable values are process-wide state
   shared by every domain. *)

let cache : (string, int) Hashtbl.t = Hashtbl.create 16

let hits = ref 0

let lookup k =
  incr hits;
  Hashtbl.find_opt cache k
