(* fixture: equality that only the typedtree pass can judge — generic on
   lists (flagged), specialized on ints (allowed) *)
let eq_lists (a : int list) (b : int list) = a = b
let eq_ints (a : int) (b : int) = a = b
