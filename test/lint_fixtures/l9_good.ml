(* L9 clean: immutable top-level values, and mutable state that is
   per-call (allocated inside the function body, never escaping a call). *)

let limit = 42

let banner = "apex"

let histogram xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let n = match Hashtbl.find_opt tbl x with Some n -> n | None -> 0 in
      Hashtbl.replace tbl x (n + 1))
    xs;
  tbl

let _ = (limit, banner, histogram)
