(* fixture: honest conversion instead of Obj.magic *)
let cast (x : int) : bool = x <> 0
