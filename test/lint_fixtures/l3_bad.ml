(* fixture: partial stdlib functions in library code *)
let first l = List.hd l
let pick l i = List.nth l i
let force (o : int option) = Option.get o
