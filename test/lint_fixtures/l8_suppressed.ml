(* L8 suppressed: the violation is real but carries a justified
   suppression comment, so it must not be reported. *)

module Root = struct
  type t = { mutable version : int } [@@apex.shared]

  let create () = { version = 0 }
end

let _ = Root.create

(* apex_lint: allow L8 -- migration shim until the epoch server lands *)
let bump (r : Root.t) = r.version <- r.version + 1
