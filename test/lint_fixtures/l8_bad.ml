(* L8 true positive: a module outside the shared type's defining module
   (and outside the writer surface) mutates state reachable from an
   [@@apex.shared] root. *)

module Root = struct
  type t = { mutable published : int array } [@@apex.shared]

  let create () = { published = [||] }
end

let _ = Root.create

let reader_bump (r : Root.t) = r.published <- Array.make 4 0
