(* L8 guarded: the mutated field carries [@apex.guarded], so reader-path
   fills classify as guarded-discipline sites, not violations. *)

module Root = struct
  type t = { memo : (int, int) Hashtbl.t [@apex.guarded "memo"] } [@@apex.shared]

  let create () = { memo = Hashtbl.create 8 }
end

let _ = Root.create

let cached (r : Root.t) k =
  match Hashtbl.find_opt r.memo k with
  | Some v -> v
  | None ->
    let v = k * k in
    Hashtbl.add r.memo k v;
    v
