(* fixture: wildcard handler swallows every exception *)
let swallow f = try Some (f ()) with _ -> None
