(* L9 suppressed: a justified suppression disables the rule on the next
   line. *)

(* apex_lint: allow L9 -- single-threaded CLI tool, never runs on domains *)
let invocation_count = ref 0

let tick () = incr invocation_count
