module Extent_codec = struct
  type t = int array

  let decode_all (t : t) = Array.copy t
end

(* apex_lint: allow L7 -- compaction rewrites the extent, a full decode is the point *)
let compact ext = Extent_codec.decode_all ext
