(* fixture: a suppression only disables the rule it names *)
let get (a : int array) i =
  (* apex_lint: allow L3 -- names the wrong rule; L2 must still fire *)
  Array.unsafe_get a i
