(* fixture: the documented suppression syntax disables the rule on the
   next line *)
let get (a : int array) i =
  (* apex_lint: allow L2 -- fixture: caller established the bounds *)
  Array.unsafe_get a i
