(* the sanctioned shapes: build strings, print to a caller-supplied
   formatter, or buffer — the caller chooses the sink *)
let describe n = Printf.sprintf "processed %d" n

let pp ppf n = Format.fprintf ppf "processed %d" n

let render n =
  let buf = Buffer.create 16 in
  Buffer.add_string buf (describe n);
  Buffer.contents buf
