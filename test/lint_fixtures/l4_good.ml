(* fixture: handles only the exception it expects; a constructor
   argument wildcard is not a catch-all *)
let guard f = try Some (f ()) with Not_found | Failure _ -> None
