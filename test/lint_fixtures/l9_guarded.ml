(* L9 guarded: the binding declares its discipline, so it is inventoried
   as guarded global state, not flagged. *)

let intern_pool : (string, int) Hashtbl.t = Hashtbl.create 64
[@@apex.guarded "intern"]

let atomically_counted = Atomic.make 0

let intern s =
  ignore (Atomic.fetch_and_add atomically_counted 1);
  match Hashtbl.find_opt intern_pool s with
  | Some id -> id
  | None ->
    let id = Hashtbl.length intern_pool in
    Hashtbl.add intern_pool s id;
    id
