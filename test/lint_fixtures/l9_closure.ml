(* L9 via closure capture: the binding's type is a function, but a
   mutable allocation on the let-spine above the lambda outlives every
   call — a hidden global only the typed pass can see. *)

let fresh_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter
