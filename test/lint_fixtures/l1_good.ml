(* fixture: monomorphic comparator and key hashing *)
let sort_ids (a : int array) = Array.sort Int.compare a
let hash_node (n : int) = n land max_int
