(* L8 clean: the only mutation of the shared root lives in its defining
   module — owner-side maintenance API, inventoried but not a violation —
   and the outside world only reads. *)

module Root = struct
  type t = { mutable published : int array } [@@apex.shared]

  let create () = { published = [||] }

  let rebuild t data = t.published <- data
end

let _ = Root.create

let _ = Root.rebuild

let width (r : Root.t) = Array.length r.published
