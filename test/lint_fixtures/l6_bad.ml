(* three direct console prints: Printf to stdout, a bare Stdlib printer,
   and Format to stderr *)
let report n =
  Printf.printf "processed %d\n" n;
  print_endline "done";
  Format.eprintf "warning: %d leftovers@." n
