(* apex_lint: allow L6 -- deliberate one-shot progress line in a long build *)
let announce name = Printf.printf "building %s...\n%!" name
