(* Differential testing: every index engine against the index-free oracle.

   Seeded random graphs from all three generator families (Play, Flix,
   Ged), random QTYPE1/QTYPE2/QTYPE3 workloads; APEX0, APEX(minSup), the
   strong DataGuide, the 1-index and the Index Fabric must all answer
   exactly like naive traversal — on a zero-fault pager, and (for the
   materialized APEX) on a pager injecting transient read corruption that
   the storage layer must detect and retry away. *)

module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query
module Naive = Repro_pathexpr.Naive_eval
module Generate = Repro_workload.Generate
module Dataset = Repro_datagen.Dataset
module Apex = Repro_apex.Apex
module Apex_query = Repro_apex.Apex_query
module Fault = Repro_storage.Fault
module Pager = Repro_storage.Pager
module Buffer_pool = Repro_storage.Buffer_pool
module Io_stats = Repro_storage.Io_stats

let scale = 0.05

let specs = List.map (fun s -> Dataset.scaled s scale) Dataset.small

let queries_for rand g =
  Array.concat
    [ Generate.qtype1 ~n:40 rand g;
      Generate.qtype2 ~n:10 rand g;
      Generate.qtype3 ~n:15 rand g ]

(* --- zero-fault leg: all engines, materialized through a clean pager --- *)

let test_engines_agree spec () =
  let g = Dataset.build_graph spec in
  let rand = Random.State.make [| spec.Dataset.seed; 0xD1FF |] in
  let queries = queries_for rand g in
  let workload =
    Repro_harness.Env.compile_workload g
      (Generate.sample rand ~fraction:0.3 (Generate.qtype1 ~n:40 rand g))
  in
  let pager = Pager.create () in
  let pool = Buffer_pool.create pager ~capacity:256 in
  let apex0 = Apex.build g in
  Apex.materialize apex0 pool;
  let adapted = Apex.build_adapted g ~workload ~min_support:0.02 in
  Apex.materialize adapted pool;
  (* subset construction can blow up on irregular graphs — skipping is the
     documented behavior, not a failure of the differential *)
  let dataguide =
    match Repro_baselines.Dataguide.build g with
    | t ->
      Repro_baselines.Summary_index.materialize t pool;
      Some t
    | exception Failure _ -> None
  in
  let one_index = Repro_baselines.One_index.build g in
  Repro_baselines.Summary_index.materialize one_index pool;
  let fabric = Repro_baselines.Index_fabric.build g in
  Array.iter
    (fun q ->
      let expected = Naive.eval_query g q in
      let tag engine = Printf.sprintf "%s %s [%s]" spec.Dataset.name (Query.to_string q) engine in
      Alcotest.(check (array int)) (tag "apex0") expected (Apex_query.eval_query apex0 q);
      Alcotest.(check (array int)) (tag "apex-minsup") expected
        (Apex_query.eval_query adapted q);
      (match dataguide with
       | Some t ->
         Alcotest.(check (array int)) (tag "dataguide") expected
           (Repro_baselines.Summary_index.eval_query t q)
       | None -> ());
      Alcotest.(check (array int)) (tag "1-index") expected
        (Repro_baselines.Summary_index.eval_query one_index q);
      match Repro_baselines.Index_fabric.eval_query fabric q with
      | Some got -> Alcotest.(check (array int)) (tag "fabric") expected got
      | None -> ())
    queries

(* --- fault-injected leg: transient read corruption must be healed --- *)

let test_fault_injected spec () =
  let g = Dataset.build_graph spec in
  let rand = Random.State.make [| spec.Dataset.seed; 0xFA17 |] in
  let queries = queries_for rand g in
  let pager = Pager.create ~page_size:4096 () in
  let fault = Fault.create ~seed:7 () in
  Pager.set_fault pager (Some fault);
  let pool = Buffer_pool.create pager ~capacity:64 in
  let apex = Apex.build g in
  Apex.materialize apex pool;
  Fault.arm_random fault ~prob:0.05 ~kinds:[ Fault.Read_flip; Fault.Short_read ];
  let check_all () =
    Array.iter
      (fun q ->
        let expected = Naive.eval_query g q in
        Alcotest.(check (array int))
          (Printf.sprintf "%s %s [apex under faults]" spec.Dataset.name (Query.to_string q))
          expected (Apex_query.eval_query apex q))
      queries
  in
  check_all ();
  (* a second cold-cache pass: plenty of disk reads, so the policy is
     statistically certain to have fired *)
  Buffer_pool.flush pool;
  check_all ();
  let stats = Pager.stats pager in
  Alcotest.(check bool) "read faults fired" true (Fault.injections fault > 0);
  Alcotest.(check bool) "retries healed corrupted reads" true (stats.Io_stats.read_retries > 0)

let () =
  let cases =
    List.concat_map
      (fun spec ->
        [ Alcotest.test_case (spec.Dataset.name ^ " engines agree") `Slow
            (test_engines_agree spec);
          Alcotest.test_case (spec.Dataset.name ^ " healed under read faults") `Slow
            (test_fault_injected spec)
        ])
      specs
  in
  Alcotest.run "differential" [ ("engines-vs-oracle", cases) ]
