(* The crash matrix: every injectable fault site along the
   save -> crash -> recover -> query schedules of [Crash_matrix], for every
   fault kind, for every seed in CRASH_SEEDS (comma-separated, default
   "1,2,3" — CI runs one seed per job and publishes it on failure).

   A failing site is reported as "seed=N kind=K site=I: <violation>", which
   is everything needed to replay it locally:
     CRASH_SEEDS=N dune exec test/test_crash_matrix.exe *)

module Fault = Repro_storage.Fault
module Generate = Repro_workload.Generate
module Crash_matrix = Test_support.Crash_matrix
module Fixtures = Test_support.Fixtures

let seeds =
  match Sys.getenv_opt "CRASH_SEEDS" with
  | None | Some "" -> [ 1; 2; 3 ]
  | Some s ->
    List.map
      (fun tok ->
        match int_of_string_opt (String.trim tok) with
        | Some n -> n
        | None -> failwith (Printf.sprintf "CRASH_SEEDS: bad token %S" tok))
      (String.split_on_char ',' s)

let graph = Fixtures.movie_db ()

(* one workload per seed so seeds differ in schedule shape, not just in the
   fault policy's PRNG *)
let snapshot_queries seed =
  let rand = Random.State.make [| seed; 0xC4A5 |] in
  Array.concat
    [ Generate.qtype1 ~n:5 rand graph;
      Generate.qtype2 ~n:2 rand graph;
      Generate.qtype3 ~n:2 rand graph ]

(* QTYPE1 only: [Query_log] records these, so a short refresh window is
   guaranteed to trigger refreshes mid-stream *)
let selftuning_queries seed =
  let rand = Random.State.make [| seed; 0x57 |] in
  Generate.qtype1 ~n:18 rand graph

(* small but mixed: the serving matrix replays the whole multi-domain
   schedule once per site, so the per-site workload stays lean *)
let server_queries seed =
  let rand = Random.State.make [| seed; 0x5e4e |] in
  Array.concat [ Generate.qtype1 ~n:6 rand graph; Generate.qtype3 ~n:3 rand graph ]

let check_report r =
  print_endline (Crash_matrix.report_to_string r);
  Alcotest.(check (list string)) "every site honors its guarantee" [] r.Crash_matrix.failures;
  Alcotest.(check bool) "matrix enumerated at least one site" true (r.Crash_matrix.sites > 0)

let snapshot_case seed kind () =
  check_report (Crash_matrix.run_matrix ~seed graph (snapshot_queries seed) kind)

let selftuning_case seed kind () =
  check_report (Crash_matrix.run_selftuning_matrix ~seed graph (selftuning_queries seed) kind)

let server_case seed kind () =
  check_report (Crash_matrix.run_server_matrix ~seed graph (server_queries seed) kind)

let () =
  let snapshot_cases =
    List.concat_map
      (fun seed ->
        List.map
          (fun kind ->
            Alcotest.test_case
              (Printf.sprintf "seed=%d %s" seed (Fault.kind_name kind))
              `Slow (snapshot_case seed kind))
          Crash_matrix.all_kinds)
      seeds
  in
  let selftuning_cases =
    List.concat_map
      (fun seed ->
        List.map
          (fun kind ->
            Alcotest.test_case
              (Printf.sprintf "seed=%d %s" seed (Fault.kind_name kind))
              `Slow (selftuning_case seed kind))
          Crash_matrix.selftuning_kinds)
      seeds
  in
  let server_cases =
    List.concat_map
      (fun seed ->
        List.map
          (fun kind ->
            Alcotest.test_case
              (Printf.sprintf "seed=%d %s" seed (Fault.kind_name kind))
              `Slow (server_case seed kind))
          Crash_matrix.selftuning_kinds)
      seeds
  in
  Alcotest.run "crash-matrix"
    [ ("snapshot", snapshot_cases);
      ("self-tuning", selftuning_cases);
      ("serving", server_cases)
    ]
