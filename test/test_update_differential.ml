(* Differential testing of incremental index maintenance.

   For each generator family (Play, Flix, Ged) and >= 100 seeds, a seeded
   interleaving of update batches and queries runs against one maintained
   APEX; after every batch its answers must be bit-identical to a
   from-scratch rebuild over the mutated graph AND to the index-free
   oracle. A refresh is interleaved mid-stream so maintenance composes
   with extraction. Two legs: a clean pager, and a pager injecting
   transient read corruption the storage layer must heal.

   UPDATE_DIFF_SEEDS=n (or a comma-separated list) overrides the seed
   count for CI sharding; the default runs seeds 1..34 per family, giving
   102 interleavings per generator family across the two legs. *)

module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query
module Naive = Repro_pathexpr.Naive_eval
module Generate = Repro_workload.Generate
module Update_workload = Repro_workload.Update_workload
module Update = Repro_update.Update
module Dataset = Repro_datagen.Dataset
module Apex = Repro_apex.Apex
module Apex_query = Repro_apex.Apex_query
module Fault = Repro_storage.Fault
module Pager = Repro_storage.Pager
module Buffer_pool = Repro_storage.Buffer_pool

let seeds =
  match Sys.getenv_opt "UPDATE_DIFF_SEEDS" with
  | None -> List.init 34 (fun i -> i + 1)
  | Some s ->
    String.split_on_char ',' (String.trim s)
    |> List.concat_map (fun tok ->
           match int_of_string_opt (String.trim tok) with
           | Some n when n > 0 -> if String.contains s ',' then [ n ] else List.init n (fun i -> i + 1)
           | _ -> failwith (Printf.sprintf "UPDATE_DIFF_SEEDS: bad token %S" tok))

let specs = List.map (fun s -> Dataset.scaled s 0.02) Dataset.small

let checksum answers =
  (* FNV-1a over the concatenated result arrays: the acceptance criterion
     is bit-identical answers, surfaced as one comparable number *)
  List.fold_left
    (fun h arr ->
      Array.fold_left
        (fun h x ->
          let h = ref h and x = ref (x + 1) in
          for _ = 0 to 7 do
            h := (!h lxor (!x land 0xff)) * 0x01000193 land 0x3fffffffffffff;
            x := !x lsr 8
          done;
          !h)
        h arr)
    0x811c9dc5 answers

let queries_for rand g =
  Array.concat
    [ Generate.qtype1 ~n:6 rand g; Generate.qtype2 ~n:2 rand g; Generate.qtype3 ~n:3 rand g ]

(* one seeded interleaving: update batch -> queries -> update batch ->
   refresh -> update batch -> queries, every round compared to a rebuild
   and the oracle *)
let run_interleaving ~fault spec seed =
  let g0 = Dataset.build_graph spec in
  let rand = Random.State.make [| spec.Dataset.seed; seed; (if fault then 1 else 0) |] in
  let workload =
    Repro_harness.Env.compile_workload g0
      (Generate.sample rand ~fraction:0.4 (Generate.qtype1 ~n:20 rand g0))
  in
  let pager = Pager.create ~page_size:4096 () in
  let fault_policy =
    if fault then begin
      let f = Fault.create ~seed:(seed * 131) () in
      Pager.set_fault pager (Some f);
      Some f
    end
    else None
  in
  let pool = Buffer_pool.create pager ~capacity:128 in
  let apex = Apex.build_adapted g0 ~workload ~min_support:0.05 in
  Apex.materialize apex pool;
  (match fault_policy with
   | Some f ->
     Fault.arm_random f ~prob:0.02 ~kinds:[ Fault.Read_flip; Fault.Short_read ]
   | None -> ());
  let check round =
    let g = Apex.graph apex in
    let queries = queries_for rand g in
    let rebuilt = Apex.build g in
    let maintained_answers = ref [] and rebuilt_answers = ref [] in
    Array.iter
      (fun q ->
        let expected = Naive.eval_query g q in
        let got = Apex_query.eval_query apex q in
        let reb = Apex_query.eval_query rebuilt q in
        maintained_answers := got :: !maintained_answers;
        rebuilt_answers := reb :: !rebuilt_answers;
        let tag engine =
          Printf.sprintf "%s seed=%d round=%d %s [%s]%s" spec.Dataset.name seed round
            (Query.to_string q) engine
            (if fault then " (faults)" else "")
        in
        Alcotest.(check (array int)) (tag "maintained") expected got;
        Alcotest.(check (array int)) (tag "rebuilt") expected reb)
      queries;
    Alcotest.(check int)
      (Printf.sprintf "%s seed=%d round=%d checksum" spec.Dataset.name seed round)
      (checksum !rebuilt_answers) (checksum !maintained_answers)
  in
  let batch i n =
    let ops, _ = Update_workload.gen_ops ~seed:((seed * 7) + i) ~n (Apex.graph apex) in
    ignore (Update.apply apex ops : Update.stats)
  in
  batch 1 3;
  check 1;
  batch 2 2;
  (* refresh mid-stream: extraction must start from the maintained index *)
  Apex.refresh apex ~workload ~min_support:0.05;
  Apex.materialize apex pool;
  check 2;
  batch 3 3;
  check 3;
  match fault_policy with
  | Some f -> ignore (Fault.injections f : int)
  | None -> ()

let test_family spec ~fault () = List.iter (run_interleaving ~fault spec) seeds

let () =
  let cases =
    List.concat_map
      (fun spec ->
        [ Alcotest.test_case
            (Printf.sprintf "%s x%d interleavings" spec.Dataset.name (List.length seeds))
            `Slow (test_family spec ~fault:false);
          Alcotest.test_case
            (Printf.sprintf "%s x%d interleavings under read faults" spec.Dataset.name
               (List.length seeds))
            `Slow (test_family spec ~fault:true)
        ])
      specs
  in
  Alcotest.run "update-differential" [ ("maintained-vs-rebuild", cases) ]
