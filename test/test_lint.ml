(* apex_lint fixture corpus: each known-bad file must fire exactly the
   expected rule ids, each known-good file none, and the suppression
   comment must disable precisely the rule it names.

   The parse-mode tests drive the same engine entry point the CLI uses.
   The typed-mode tests typecheck the fixture in-process against the
   stdlib and run the Tast checker, which is what `dune build @lint`
   exercises via .cmt files — including the cases only the typedtree can
   judge (generic `=` on lists vs specialized `=` on ints). *)

open Apex_lint_core

let fixture name = Filename.concat "lint_fixtures" name

(* hot-path library scope, no unsafe allowlist: every rule armed *)
let armed =
  {
    Lint_rules.hot_path = true;
    l2_allowed = false;
    lib_code = true;
    no_direct_print = true;
    no_full_decode = true;
    shared_escape = true;
    writer_side = false;
    global_audit = true;
  }

let rule_ids diags =
  diags |> List.map (fun d -> Lint_rules.rule_id d.Lint_diag.rule) |> List.sort String.compare

let check_parse name expected () =
  let file = fixture name in
  let _mode, diags =
    Lint_engine.lint_file ~scope:armed ~build_dir:"."
      ~cmt_index:(Hashtbl.create 1) file
  in
  Alcotest.(check (list string)) name expected (rule_ids diags)

let typecheck file =
  let str = Pparse.parse_implementation ~tool_name:"test_lint" file in
  let tstr, _, _, _, _ = Typemod.type_structure (Compmisc.initial_env ()) str in
  tstr

let check_typed name expected () =
  let file = fixture name in
  let tstr = typecheck file in
  let diags = Lint_typed_check.check ~expand_env:Fun.id ~scope:armed ~file tstr in
  let sups = Lint_diag.suppressions_of_file file in
  let diags = List.filter (fun d -> not (Lint_diag.is_suppressed sups d)) diags in
  Alcotest.(check (list string)) name expected (rule_ids diags)

(* --- L8/L9: the whole-program escape pass, driven in-process ---

   The fixture is typechecked against the stdlib, its own declarations
   feed the mutability map (so [@@apex.shared] roots inside the fixture
   are the analysis roots), and Lint_escape runs exactly as the engine
   runs it on a .cmt. *)

let modname_of_fixture name =
  String.capitalize_ascii (Filename.remove_extension name)

let run_escape ?(scope = armed) name =
  let file = fixture name in
  let tstr = typecheck file in
  let modname = modname_of_fixture name in
  let table = Lint_mutmap.create () in
  Lint_mutmap.add_structure table ~library:"<fixture>" ~modname tstr;
  let reach = Lint_mutmap.reachability table in
  Lint_escape.check ~table ~reach ~scope ~modname ~file tstr

let check_escape name expected () =
  let r = run_escape name in
  let sups = Lint_diag.suppressions_of_file (fixture name) in
  let diags =
    List.filter (fun d -> not (Lint_diag.is_suppressed sups d)) r.Lint_escape.diags
  in
  Alcotest.(check (list string)) name expected (rule_ids diags)

let escape_corpus =
  [
    ("l8_bad.ml", [ "L8" ]);
    ("l8_good.ml", []);
    ("l8_guarded.ml", []);
    ("l8_suppressed.ml", []);
    ("l9_bad.ml", [ "L9"; "L9" ]);
    ("l9_good.ml", []);
    ("l9_guarded.ml", []);
    ("l9_suppressed.ml", []);
    ("l9_closure.ml", [ "L9" ]);
  ]

let escape_cases =
  List.map
    (fun (name, expected) ->
      Alcotest.test_case ("escape " ^ name) `Quick (check_escape name expected))
    escape_corpus

(* the parse fallback judges the same corpus syntactically: top-level
   allocator bindings fire, closures and field mutations are invisible *)
let escape_parse_corpus =
  [
    ("l8_bad.ml", []);
    ("l8_guarded.ml", []);
    ("l9_bad.ml", [ "L9"; "L9" ]);
    ("l9_good.ml", []);
    ("l9_guarded.ml", []);
    ("l9_suppressed.ml", []);
    ("l9_closure.ml", []);
  ]

let site_classes name =
  let r = run_escape name in
  List.map
    (fun (s : Lint_escape.site) -> Lint_escape.class_id s.s_class)
    r.Lint_escape.sites

let site_classification () =
  Alcotest.(check (list string)) "bad is a violation" [ "violation" ]
    (site_classes "l8_bad.ml");
  Alcotest.(check (list string)) "owner-side is inventoried" [ "owner" ]
    (site_classes "l8_good.ml");
  Alcotest.(check (list string)) "guarded field is inventoried" [ "guarded" ]
    (site_classes "l8_guarded.ml");
  (* the suppression hides the diagnostic, not the site *)
  Alcotest.(check (list string)) "suppressed is still a site" [ "violation" ]
    (site_classes "l8_suppressed.ml");
  (* the same mutation inside the writer surface is writer-side *)
  let writer = { armed with Lint_rules.writer_side = true } in
  let r = run_escape ~scope:writer "l8_bad.ml" in
  Alcotest.(check (list string)) "writer scope reclassifies" [ "writer" ]
    (List.map
       (fun (s : Lint_escape.site) -> Lint_escape.class_id s.s_class)
       r.Lint_escape.sites);
  Alcotest.(check (list string)) "writer scope has no findings" []
    (rule_ids r.Lint_escape.diags);
  (* guard tags survive into the inventory *)
  let r = run_escape "l8_guarded.ml" in
  (match r.Lint_escape.sites with
   | [ { s_class = Lint_escape.Guarded tag; s_target; _ } ] ->
     Alcotest.(check string) "guard tag" "memo" tag;
     Alcotest.(check string) "target" "Root.t" s_target
   | _ -> Alcotest.fail "expected exactly one guarded site");
  (* the globals inventory classifies guarded and atomic bindings *)
  let r = run_escape "l9_guarded.ml" in
  let inv =
    List.map
      (fun (g : Lint_escape.global_entry) ->
        ( g.g_name,
          match g.g_class with
          | Lint_escape.Gmutable -> "mutable"
          | Lint_escape.Gatomic -> "atomic"
          | Lint_escape.Gguarded t -> "guarded:" ^ t ))
      r.Lint_escape.globals
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "globals inventory"
    [
      ("L9_guarded.atomically_counted", "atomic");
      ("L9_guarded.intern_pool", "guarded:intern");
    ]
    inv

(* --- the mutability lattice itself, over fixture-declared shapes --- *)

let mutmap_shapes () =
  let tstr = typecheck (fixture "mutmap_shapes.ml") in
  let table = Lint_mutmap.create () in
  Lint_mutmap.add_structure table ~library:"<fixture>" ~modname:"Mutmap_shapes" tstr;
  let verdict name =
    match Lint_mutmap.verdict table ("Mutmap_shapes." ^ name) with
    | Some v ->
      Lint_mutmap.verdict_id v
      ^ (match v with Lint_mutmap.Mut { atomic_only = true; _ } -> ":atomic" | _ -> "")
    | None -> "<missing>"
  in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check string) name expected (verdict name))
    [
      ("imm_rec", "immutable");
      ("mut_rec", "mutable");
      ("deep", "mutable");
      ("via_ref", "mutable");
      ("arrowed", "mutable");
      ("atomicf", "mutable:atomic");
      ("opt_imm", "immutable");
      ("tbl", "mutable");
      ("variant_mut", "mutable");
      ("inline_mut", "mutable");
      ("alias_mut", "mutable");
      ("lazily", "mutable");
    ]

(* --- the real build: Apex.t and friends through their actual .cmt --- *)

let real_tree () =
  (* cwd is _build/default/test; the sibling library directories hold the
     .cmt files of everything test_lint links against *)
  let ctx = Lint_engine.build_global_ctx ".." in
  let verdict key =
    match Lint_mutmap.verdict ctx.Lint_engine.table key with
    | Some v -> Lint_mutmap.verdict_id v
    | None -> "<missing>"
  in
  List.iter
    (fun key -> Alcotest.(check string) key "mutable" (verdict key))
    [ "Apex.t"; "Gapex.t"; "Hash_tree.t"; "Extent_store.t"; "Snapshot.t";
      "Epoch_registry.t"; "Flight.t"; "Slo.t" ];
  Alcotest.(check string) "Xpath_ast.t" "immutable" (verdict "Xpath_ast.t");
  Alcotest.(check string) "Xpath_ast.step" "immutable" (verdict "Xpath_ast.step");
  let roots =
    Lint_mutmap.shared_roots ctx.Lint_engine.table
    |> List.map (fun (d : Lint_mutmap.decl) -> d.key)
  in
  Alcotest.(check (list string))
    "shared roots"
    [ "Apex.t"; "Epoch_registry.t"; "Extent_store.t"; "Flight.t"; "Gapex.t";
      "Hash_tree.t"; "Slo.t"; "Snapshot.t" ]
    roots;
  (* guard disciplines flow down the reachability closure *)
  let guard_of key =
    match Hashtbl.find_opt ctx.Lint_engine.reach key with
    | Some (e : Lint_mutmap.reach_entry) -> Option.value e.guard ~default:"<none>"
    | None -> "<unreached>"
  in
  Alcotest.(check string) "lru cache guarded" "lru" (guard_of "Extent_store.cache");
  Alcotest.(check string) "lru nodes inherit" "lru" (guard_of "Extent_store.cache_node");
  Alcotest.(check string) "pool subtree guarded" "pool" (guard_of "Buffer_pool.t");
  Alcotest.(check string) "flight ring guarded" "flight" (guard_of "Flight.ring");
  Alcotest.(check string) "slo cells inherit" "slo" (guard_of "Slo.cell");
  Alcotest.(check string) "roots are unguarded" "<none>" (guard_of "Apex.t");
  (* the epoch registry's writer-side fields carry the retire discipline;
     the root itself (readers go through the Atomic) is unguarded *)
  Alcotest.(check string) "registry root unguarded" "<none>" (guard_of "Epoch_registry.t")

(* --- ordering and dedup of diagnostics --- *)

let dedup_ordering () =
  let mk file line rule = { Lint_diag.file; line; col = 0; rule; ident = "x"; hint = "" } in
  let a = mk "b.ml" 3 Lint_rules.L8 in
  let b = mk "a.ml" 9 Lint_rules.L9 in
  let c = mk "a.ml" 2 Lint_rules.L1 in
  let out = List.sort_uniq Lint_diag.compare_diag [ a; b; c; a; b; c ] in
  Alcotest.(check (list string))
    "sorted by file, line, rule; duplicates collapsed"
    [ "a.ml:2:L1"; "a.ml:9:L9"; "b.ml:3:L8" ]
    (List.map
       (fun (d : Lint_diag.t) ->
         Printf.sprintf "%s:%d:%s" d.file d.line (Lint_rules.rule_id d.rule))
       out);
  (* the engine path is deterministic across runs *)
  let run_once () =
    let _mode, diags =
      Lint_engine.lint_file ~scope:armed ~build_dir:"."
        ~cmt_index:(Hashtbl.create 1) (fixture "l9_bad.ml")
    in
    List.map (fun (d : Lint_diag.t) -> (d.line, Lint_rules.rule_id d.rule)) diags
  in
  Alcotest.(check (list (pair int string))) "stable across runs" (run_once ()) (run_once ())

let corpus =
  [
    ("l1_bad.ml", [ "L1"; "L1" ]);
    ("l1_good.ml", []);
    (* parse mode cannot judge `=` at all; typed mode flags the list
       equality and exempts the specialized int equality *)
    ("l2_bad.ml", [ "L2" ]);
    ("l2_good.ml", []);
    ("l3_bad.ml", [ "L3"; "L3"; "L3" ]);
    ("l3_good.ml", []);
    ("l4_bad.ml", [ "L4" ]);
    ("l4_good.ml", []);
    ("l5_bad.ml", [ "L5" ]);
    ("l5_good.ml", []);
    ("l6_bad.ml", [ "L6"; "L6"; "L6" ]);
    ("l6_good.ml", []);
    ("l6_suppressed.ml", []);
    ("l7_bad.ml", [ "L7" ]);
    ("l7_good.ml", []);
    ("l7_suppressed.ml", []);
    ("suppressed.ml", []);
    ("suppressed_mismatch.ml", [ "L2" ]);
  ]

let parse_cases =
  List.map
    (fun (name, expected) ->
      Alcotest.test_case ("parse " ^ name) `Quick (check_parse name expected))
    (("l1_poly_eq.ml", []) :: corpus)

let typed_cases =
  List.map
    (fun (name, expected) ->
      Alcotest.test_case ("typed " ^ name) `Quick (check_typed name expected))
    (("l1_poly_eq.ml", [ "L1" ]) :: corpus)

(* the scope gates: the same bad files are clean when their rule does not
   apply to the file's location *)
let scope_gates () =
  let off =
    {
      Lint_rules.hot_path = false;
      l2_allowed = true;
      lib_code = false;
      no_direct_print = false;
      no_full_decode = false;
      shared_escape = false;
      writer_side = false;
      global_audit = false;
    }
  in
  List.iter
    (fun name ->
      let _mode, diags =
        Lint_engine.lint_file ~scope:off ~build_dir:"."
          ~cmt_index:(Hashtbl.create 1) (fixture name)
      in
      Alcotest.(check (list string)) (name ^ " out of scope") [] (rule_ids diags))
    [ "l1_bad.ml"; "l2_bad.ml"; "l3_bad.ml"; "l6_bad.ml"; "l7_bad.ml" ]

let scope_of_path () =
  let s = Lint_rules.scope_of_path "lib/util/int_sorted.ml" in
  Alcotest.(check bool) "util is hot" true s.Lint_rules.hot_path;
  Alcotest.(check bool) "int_sorted may use unsafe" true s.Lint_rules.l2_allowed;
  let s = Lint_rules.scope_of_path "lib/xml/dtd.ml" in
  Alcotest.(check bool) "xml not hot" false s.Lint_rules.hot_path;
  Alcotest.(check bool) "xml is lib code" true s.Lint_rules.lib_code;
  let s = Lint_rules.scope_of_path "bench/micro.ml" in
  Alcotest.(check bool) "bench not lib code" false s.Lint_rules.lib_code;
  (* a directory sharing the prefix string is not a hot-path match *)
  let s = Lint_rules.scope_of_path "lib/utilities/foo.ml" in
  Alcotest.(check bool) "prefix needs a separator" false s.Lint_rules.hot_path;
  (* L6 arms everywhere in lib/ except the sanctioned printing layers *)
  let s = Lint_rules.scope_of_path "lib/apex/apex.ml" in
  Alcotest.(check bool) "lib code may not print" true s.Lint_rules.no_direct_print;
  let s = Lint_rules.scope_of_path "lib/harness/report.ml" in
  Alcotest.(check bool) "harness may print" false s.Lint_rules.no_direct_print;
  let s = Lint_rules.scope_of_path "lib/telemetry/export.ml" in
  Alcotest.(check bool) "telemetry may print" false s.Lint_rules.no_direct_print;
  let s = Lint_rules.scope_of_path "bench/micro.ml" in
  Alcotest.(check bool) "bench may print" false s.Lint_rules.no_direct_print;
  (* L7 arms only the query-path apex modules; persistence/compaction and
     everything outside lib/apex may decode whole extents *)
  let s = Lint_rules.scope_of_path "lib/apex/apex_query.ml" in
  Alcotest.(check bool) "apex query path may not full-decode" true s.Lint_rules.no_full_decode;
  let s = Lint_rules.scope_of_path "lib/apex/apex_persist.ml" in
  Alcotest.(check bool) "apex persist may full-decode" false s.Lint_rules.no_full_decode;
  let s = Lint_rules.scope_of_path "lib/storage/extent_store.ml" in
  Alcotest.(check bool) "storage may full-decode" false s.Lint_rules.no_full_decode

let () =
  (* one-time compiler setup for the typed cases: stdlib on the load path *)
  Compmisc.init_path ();
  Alcotest.run "lint"
    [
      ("parse_mode", parse_cases);
      ("typed_mode", typed_cases);
      ("escape_mode", escape_cases);
      ( "escape_parse_mode",
        List.map
          (fun (name, expected) ->
            Alcotest.test_case ("parse " ^ name) `Quick (check_parse name expected))
          escape_parse_corpus );
      ( "escape_analysis",
        [
          Alcotest.test_case "site classification" `Quick site_classification;
          Alcotest.test_case "mutability lattice shapes" `Quick mutmap_shapes;
          Alcotest.test_case "real tree mutability map" `Quick real_tree;
          Alcotest.test_case "dedup and ordering" `Quick dedup_ordering;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "scope gates" `Quick scope_gates;
          Alcotest.test_case "scope of path" `Quick scope_of_path;
        ] );
    ]
