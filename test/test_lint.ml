(* apex_lint fixture corpus: each known-bad file must fire exactly the
   expected rule ids, each known-good file none, and the suppression
   comment must disable precisely the rule it names.

   The parse-mode tests drive the same engine entry point the CLI uses.
   The typed-mode tests typecheck the fixture in-process against the
   stdlib and run the Tast checker, which is what `dune build @lint`
   exercises via .cmt files — including the cases only the typedtree can
   judge (generic `=` on lists vs specialized `=` on ints). *)

open Apex_lint_core

let fixture name = Filename.concat "lint_fixtures" name

(* hot-path library scope, no unsafe allowlist: every rule armed *)
let armed =
  {
    Lint_rules.hot_path = true;
    l2_allowed = false;
    lib_code = true;
    no_direct_print = true;
    no_full_decode = true;
  }

let rule_ids diags =
  diags |> List.map (fun d -> Lint_rules.rule_id d.Lint_diag.rule) |> List.sort String.compare

let check_parse name expected () =
  let file = fixture name in
  let _mode, diags =
    Lint_engine.lint_file ~scope:armed ~build_dir:"."
      ~cmt_index:(Hashtbl.create 1) file
  in
  Alcotest.(check (list string)) name expected (rule_ids diags)

let typecheck file =
  let str = Pparse.parse_implementation ~tool_name:"test_lint" file in
  let tstr, _, _, _, _ = Typemod.type_structure (Compmisc.initial_env ()) str in
  tstr

let check_typed name expected () =
  let file = fixture name in
  let tstr = typecheck file in
  let diags = Lint_typed_check.check ~expand_env:Fun.id ~scope:armed ~file tstr in
  let sups = Lint_diag.suppressions_of_file file in
  let diags = List.filter (fun d -> not (Lint_diag.is_suppressed sups d)) diags in
  Alcotest.(check (list string)) name expected (rule_ids diags)

let corpus =
  [
    ("l1_bad.ml", [ "L1"; "L1" ]);
    ("l1_good.ml", []);
    (* parse mode cannot judge `=` at all; typed mode flags the list
       equality and exempts the specialized int equality *)
    ("l2_bad.ml", [ "L2" ]);
    ("l2_good.ml", []);
    ("l3_bad.ml", [ "L3"; "L3"; "L3" ]);
    ("l3_good.ml", []);
    ("l4_bad.ml", [ "L4" ]);
    ("l4_good.ml", []);
    ("l5_bad.ml", [ "L5" ]);
    ("l5_good.ml", []);
    ("l6_bad.ml", [ "L6"; "L6"; "L6" ]);
    ("l6_good.ml", []);
    ("l6_suppressed.ml", []);
    ("l7_bad.ml", [ "L7" ]);
    ("l7_good.ml", []);
    ("l7_suppressed.ml", []);
    ("suppressed.ml", []);
    ("suppressed_mismatch.ml", [ "L2" ]);
  ]

let parse_cases =
  List.map
    (fun (name, expected) ->
      Alcotest.test_case ("parse " ^ name) `Quick (check_parse name expected))
    (("l1_poly_eq.ml", []) :: corpus)

let typed_cases =
  List.map
    (fun (name, expected) ->
      Alcotest.test_case ("typed " ^ name) `Quick (check_typed name expected))
    (("l1_poly_eq.ml", [ "L1" ]) :: corpus)

(* the scope gates: the same bad files are clean when their rule does not
   apply to the file's location *)
let scope_gates () =
  let off =
    {
      Lint_rules.hot_path = false;
      l2_allowed = true;
      lib_code = false;
      no_direct_print = false;
      no_full_decode = false;
    }
  in
  List.iter
    (fun name ->
      let _mode, diags =
        Lint_engine.lint_file ~scope:off ~build_dir:"."
          ~cmt_index:(Hashtbl.create 1) (fixture name)
      in
      Alcotest.(check (list string)) (name ^ " out of scope") [] (rule_ids diags))
    [ "l1_bad.ml"; "l2_bad.ml"; "l3_bad.ml"; "l6_bad.ml"; "l7_bad.ml" ]

let scope_of_path () =
  let s = Lint_rules.scope_of_path "lib/util/int_sorted.ml" in
  Alcotest.(check bool) "util is hot" true s.Lint_rules.hot_path;
  Alcotest.(check bool) "int_sorted may use unsafe" true s.Lint_rules.l2_allowed;
  let s = Lint_rules.scope_of_path "lib/xml/dtd.ml" in
  Alcotest.(check bool) "xml not hot" false s.Lint_rules.hot_path;
  Alcotest.(check bool) "xml is lib code" true s.Lint_rules.lib_code;
  let s = Lint_rules.scope_of_path "bench/micro.ml" in
  Alcotest.(check bool) "bench not lib code" false s.Lint_rules.lib_code;
  (* a directory sharing the prefix string is not a hot-path match *)
  let s = Lint_rules.scope_of_path "lib/utilities/foo.ml" in
  Alcotest.(check bool) "prefix needs a separator" false s.Lint_rules.hot_path;
  (* L6 arms everywhere in lib/ except the sanctioned printing layers *)
  let s = Lint_rules.scope_of_path "lib/apex/apex.ml" in
  Alcotest.(check bool) "lib code may not print" true s.Lint_rules.no_direct_print;
  let s = Lint_rules.scope_of_path "lib/harness/report.ml" in
  Alcotest.(check bool) "harness may print" false s.Lint_rules.no_direct_print;
  let s = Lint_rules.scope_of_path "lib/telemetry/export.ml" in
  Alcotest.(check bool) "telemetry may print" false s.Lint_rules.no_direct_print;
  let s = Lint_rules.scope_of_path "bench/micro.ml" in
  Alcotest.(check bool) "bench may print" false s.Lint_rules.no_direct_print;
  (* L7 arms only the query-path apex modules; persistence/compaction and
     everything outside lib/apex may decode whole extents *)
  let s = Lint_rules.scope_of_path "lib/apex/apex_query.ml" in
  Alcotest.(check bool) "apex query path may not full-decode" true s.Lint_rules.no_full_decode;
  let s = Lint_rules.scope_of_path "lib/apex/apex_persist.ml" in
  Alcotest.(check bool) "apex persist may full-decode" false s.Lint_rules.no_full_decode;
  let s = Lint_rules.scope_of_path "lib/storage/extent_store.ml" in
  Alcotest.(check bool) "storage may full-decode" false s.Lint_rules.no_full_decode

let () =
  (* one-time compiler setup for the typed cases: stdlib on the load path *)
  Compmisc.init_path ();
  Alcotest.run "lint"
    [
      ("parse_mode", parse_cases);
      ("typed_mode", typed_cases);
      ( "scoping",
        [
          Alcotest.test_case "scope gates" `Quick scope_gates;
          Alcotest.test_case "scope of path" `Quick scope_of_path;
        ] );
    ]
