(* Data-update operations: graph-level semantics and incremental index
   maintenance equivalence against from-scratch rebuilds. Node ids below
   refer to the movie_db fixture map in test/support/fixtures.ml. *)

module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Label = Repro_graph.Label
module Edge_set = Repro_graph.Edge_set
module Update = Repro_update.Update
module Apex = Repro_apex.Apex
module Apex_query = Repro_apex.Apex_query
module Gapex = Repro_apex.Gapex
module Query = Repro_pathexpr.Query
module Naive = Repro_pathexpr.Naive_eval
module X = Repro_xml.Xml_tree

(* --- graph-level operations --- *)

let test_delete_director () =
  let g = F.movie_db () in
  (* director 5's tree child is its name leaf 8; movie 6's document parent
     is the root (root's edge came first), so 6 survives *)
  let g', removed = G.delete_subtree g ~node:5 in
  Alcotest.(check int) "nids stay allocated" (G.n_nodes g) (G.n_nodes g');
  Alcotest.(check int) "three edges removed" (G.n_edges g - 3) (G.n_edges g');
  Alcotest.(check int) "removed edges reported" 3 (List.length removed);
  Alcotest.(check int) "director row emptied" 0 (G.out_degree g' 5);
  Alcotest.(check (option string)) "leaf value dropped" None (G.value g' 8);
  Alcotest.(check int) "movie kept its row" (G.out_degree g 6) (G.out_degree g' 6);
  (* the old graph is untouched *)
  Alcotest.(check int) "old edge count intact" 14 (G.n_edges g)

let test_delete_actor_cascades_refs () =
  let g = F.movie_db () in
  (* actor 1 owns @movie node 10; deleting it must also sever the inbound
     reference edge 9 --actor--> 1 *)
  let g', removed = G.delete_subtree g ~node:1 in
  (* root->1, 1->2, 1->@10, 10->6, 9->1 *)
  Alcotest.(check int) "five edges removed" 5 (List.length removed);
  Alcotest.(check int) "edge count drops" (G.n_edges g - 5) (G.n_edges g');
  Alcotest.(check bool) "inbound ref gone" true
    (List.exists (fun (u, _, v) -> u = 9 && v = 1) removed);
  Alcotest.(check int) "attr node 10 emptied" 0 (G.out_degree g' 10)

let test_delete_root_raises () =
  let g = F.movie_db () in
  (match G.delete_subtree g ~node:(G.root g) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument on root")

let test_add_ref_edge () =
  let g = F.movie_db () in
  (* director 5 gains a @movie reference to actor 3 (document tag "actor") *)
  let g', added = G.add_ref_edge g ~owner:5 ~attr:"movie" ~target:3 in
  Alcotest.(check int) "one fresh attr node" (G.n_nodes g + 1) (G.n_nodes g');
  Alcotest.(check int) "two edges added" (G.n_edges g + 2) (G.n_edges g');
  Alcotest.(check int) "both reported" 2 (List.length added);
  let labels = G.labels g' in
  (match added with
   | [ (o, l1, a); (a', l2, tgt) ] ->
     Alcotest.(check int) "owner" 5 o;
     Alcotest.(check string) "attr label" "@movie" (Label.to_string labels l1);
     Alcotest.(check int) "fresh node is the link" a a';
     Alcotest.(check string) "ref labeled by target tag" "actor" (Label.to_string labels l2);
     Alcotest.(check int) "target" 3 tgt;
     (* the fresh attr node's first (tree) in-edge is the owner's, keeping
        the tree-edge-first convention delete_subtree depends on *)
     Alcotest.(check int) "attr node is newest nid" (G.n_nodes g) a
   | _ -> Alcotest.fail "expected exactly two added edges");
  (match G.add_ref_edge g ~owner:5 ~attr:"movie" ~target:(G.root g) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "root has no document tag to label the ref with")

let test_remove_ref_edge () =
  let g = F.movie_db () in
  (* @actor node 9 holds two refs (to 1 and 3) owned by movie 6; removing
     one keeps the @actor edge, removing the last cascades it *)
  let g1, removed1 = G.remove_ref_edge g ~owner:6 ~attr:"actor" ~target:1 in
  Alcotest.(check int) "one edge removed" 1 (List.length removed1);
  Alcotest.(check int) "attr edge kept" (G.n_edges g - 1) (G.n_edges g1);
  let g2, removed2 = G.remove_ref_edge g1 ~owner:6 ~attr:"actor" ~target:3 in
  Alcotest.(check int) "ref and attr edge removed" 2 (List.length removed2);
  Alcotest.(check int) "attr node orphaned" 0 (G.out_degree g2 9);
  (match G.remove_ref_edge g2 ~owner:6 ~attr:"actor" ~target:3 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument on missing reference")

let test_apply_graph_insert_delta () =
  let g = F.movie_db () in
  let fragment =
    X.element
      ~children:
        [ X.Element (X.element ~children:[ X.Text "SF" ] "genre");
          X.Element (X.element ~children:[ X.Text "1995" ] "year")
        ]
      "info"
  in
  let { Update.graph = g'; added; removed } =
    Update.apply_graph g (Update.Insert_subtree { parent = 6; fragment })
  in
  Alcotest.(check int) "no removals" 0 (List.length removed);
  Alcotest.(check int) "delta matches edge-count growth" (G.n_edges g' - G.n_edges g)
    (List.length added);
  List.iter
    (fun (u, l, v) ->
      let present = ref false in
      G.iter_out g' u (fun l' v' -> if l = l' && v = v' then present := true);
      Alcotest.(check bool) "added edge present" true !present)
    added

(* --- incremental maintenance ≡ rebuild --- *)

(* every non-attribute label as a QTYPE1, some longer paths, a QTYPE2 and a
   QTYPE3: broad enough that a wrong extent anywhere shows up *)
let battery g =
  let labels = G.labels g in
  let names = ref [] in
  for l = 0 to Label.count labels - 1 do
    let s = Label.to_string labels l in
    if String.length s > 0 && s.[0] <> '@' then names := s :: !names
  done;
  List.map (fun n -> Query.Qtype1 [ n ]) !names
  @ [ Query.Qtype1 [ "actor"; "name" ];
      Query.Qtype1 [ "movie"; "title" ];
      Query.Qtype1 [ "director"; "movie"; "title" ];
      Query.Qtype1 [ "movie"; "actor"; "name" ];
      Query.Qtype2 ("director", "title");
      Query.Qtype2 ("movie", "name");
      Query.Qtype3 ([ "name" ], "Kevin")
    ]

let check_equiv msg apex =
  let g = Apex.graph apex in
  let rebuilt = Apex.build g in
  List.iter
    (fun q ->
      let expected = Naive.eval_query g q in
      Alcotest.(check (array int))
        (Printf.sprintf "%s: %s [maintained]" msg (Query.to_string q))
        expected
        (Apex_query.eval_query apex q);
      Alcotest.(check (array int))
        (Printf.sprintf "%s: %s [rebuilt]" msg (Query.to_string q))
        expected
        (Apex_query.eval_query rebuilt q))
    (battery g)

let fragment_small =
  X.element
    ~children:[ X.Element (X.element ~children:[ X.Text "Nichols" ] "name") ]
    "director"

let test_maintain_insert () =
  let apex = Apex.build (F.movie_db ()) in
  let stats =
    Update.apply apex [ Update.Insert_subtree { parent = 0; fragment = fragment_small } ]
  in
  Alcotest.(check int) "one op" 1 stats.Update.ops;
  Alcotest.(check bool) "edges added" true (stats.Update.edges_added >= 2);
  check_equiv "insert" apex

let test_maintain_delete () =
  let apex = Apex.build (F.movie_db ()) in
  let stats = Update.apply apex [ Update.Delete_subtree { node = 1 } ] in
  Alcotest.(check int) "five edges removed" 5 stats.Update.edges_removed;
  check_equiv "delete" apex

let test_maintain_refs () =
  let apex = Apex.build (F.movie_db ()) in
  ignore (Update.apply apex [ Update.Insert_ref { owner = 5; attr = "movie"; target = 3 } ]);
  check_equiv "insert ref" apex;
  ignore (Update.apply apex [ Update.Delete_ref { owner = 6; attr = "actor"; target = 1 } ]);
  check_equiv "delete ref" apex

let test_maintain_mixed_batch () =
  let apex = Apex.build (F.movie_db ()) in
  let stats =
    Update.apply apex
      [ Update.Insert_subtree { parent = 0; fragment = fragment_small };
        Update.Delete_ref { owner = 6; attr = "actor"; target = 3 };
        Update.Insert_ref { owner = 3; attr = "movie"; target = 6 };
        Update.Delete_subtree { node = 5 }
      ]
  in
  Alcotest.(check int) "four ops" 4 stats.Update.ops;
  check_equiv "mixed batch" apex

let test_maintain_on_refreshed_index () =
  (* a deep hash tree (length-3 required paths) exercises the depth-bounded
     dirty frontier and multi-level reverse resolution *)
  let g = F.movie_db () in
  let workload =
    [ F.path g [ "actor"; "name" ];
      F.path g [ "actor"; "name" ];
      F.path g [ "director"; "movie"; "title" ];
      F.path g [ "director"; "movie"; "title" ]
    ]
  in
  let apex = Apex.build_adapted g ~workload ~min_support:0.4 in
  ignore
    (Update.apply apex
       [ Update.Insert_subtree
           { parent = 0;
             fragment =
               X.element
                 ~children:
                   [ X.Element
                       (X.element
                          ~children:
                            [ X.Element (X.element ~children:[ X.Text "Dune" ] "title") ]
                          "movie")
                   ]
                 "director"
           }
       ]);
  check_equiv "insert under refreshed index" apex;
  ignore (Update.apply apex [ Update.Delete_subtree { node = 5 } ]);
  check_equiv "delete under refreshed index" apex

let test_maintain_materialized_flush () =
  (* repeated small batches against a materialized index: answers must keep
     coming back right through the store (delta chains + compaction) *)
  let g = F.movie_db () in
  let apex = Apex.build g in
  let pager = Repro_storage.Pager.create () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:64 in
  Apex.materialize apex pool;
  for i = 1 to 6 do
    let stats =
      Update.apply apex
        [ Update.Insert_subtree
            { parent = 0;
              fragment = X.element ~children:[ X.Text (string_of_int i) ] "note"
            }
        ]
    in
    Alcotest.(check bool)
      (Printf.sprintf "batch %d flushed something" i)
      true
      (stats.Update.extents_flushed > 0)
  done;
  let g' = Apex.graph apex in
  let cost = Repro_storage.Cost.create () in
  let got = Apex_query.eval_query ~cost apex (Query.Qtype1 [ "note" ]) in
  Alcotest.(check (array int)) "notes found through the store"
    (Naive.eval_query g' (Query.Qtype1 [ "note" ]))
    got;
  check_equiv "after six flushed batches" apex

let test_refresh_after_updates () =
  (* a refresh after updates starts from the maintained index and must land
     on the same answers as building adapted from scratch *)
  let g = F.movie_db () in
  let apex = Apex.build g in
  ignore
    (Update.apply apex
       [ Update.Insert_subtree { parent = 0; fragment = fragment_small };
         Update.Delete_ref { owner = 6; attr = "actor"; target = 1 }
       ]);
  let g' = Apex.graph apex in
  let workload = [ F.path g' [ "actor"; "name" ]; F.path g' [ "actor"; "name" ] ] in
  Apex.refresh apex ~workload ~min_support:0.5;
  let rebuilt = Apex.build_adapted g' ~workload ~min_support:0.5 in
  List.iter
    (fun q ->
      Alcotest.(check (array int))
        (Printf.sprintf "refresh-after-update: %s" (Query.to_string q))
        (Apex_query.eval_query rebuilt q)
        (Apex_query.eval_query apex q))
    (battery g')

let () =
  Alcotest.run "update-ops"
    [ ( "graph",
        [ Alcotest.test_case "delete director subtree" `Quick test_delete_director;
          Alcotest.test_case "delete cascades references" `Quick test_delete_actor_cascades_refs;
          Alcotest.test_case "delete root raises" `Quick test_delete_root_raises;
          Alcotest.test_case "add ref edge" `Quick test_add_ref_edge;
          Alcotest.test_case "remove ref edge" `Quick test_remove_ref_edge;
          Alcotest.test_case "insert delta reporting" `Quick test_apply_graph_insert_delta
        ] );
      ( "maintenance",
        [ Alcotest.test_case "insert" `Quick test_maintain_insert;
          Alcotest.test_case "delete" `Quick test_maintain_delete;
          Alcotest.test_case "references" `Quick test_maintain_refs;
          Alcotest.test_case "mixed batch" `Quick test_maintain_mixed_batch;
          Alcotest.test_case "refreshed index" `Quick test_maintain_on_refreshed_index;
          Alcotest.test_case "materialized flush" `Quick test_maintain_materialized_flush;
          Alcotest.test_case "refresh after updates" `Quick test_refresh_after_updates
        ] )
    ]
