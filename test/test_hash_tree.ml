(* White-box tests of H_APEX (Figures 7, 8, 9): counting, pruning and
   lookup behaviour on hand-driven trees, independent of the update
   engine. Labels: A=0, B=1, C=2, D=3. *)

open Repro_apex

let a = 0
let b = 1
let c = 2
let d = 3

(* a detached G_APEX to mint marker nodes from *)
let fresh_gapex () = Gapex.create ~root_extent:Repro_graph.Edge_set.empty

let mark gapex slot =
  let n = Gapex.new_node gapex in
  Hash_tree.slot_set slot (Some n);
  n

let slot_exn tree rev_path =
  match Hash_tree.lookup_slot tree ~rev_path with
  | Some s -> s
  | None -> Alcotest.fail "expected a slot"

(* --- counting (Figure 7-(b)) --- *)

let test_counting_creates_entries () =
  let tree = Hash_tree.create () in
  (* prior state: required paths {A, B, C, D, B.D} *)
  Hash_tree.count_workload tree [ [ a ]; [ b ]; [ c ]; [ d ]; [ b; d ] ];
  Hash_tree.reset_marks tree;
  (* workload {A.D, C, A.D} *)
  Hash_tree.count_workload tree [ [ a; d ]; [ c ]; [ a; d ] ];
  (* head entry counts: A=2, C=1, D=2; B untouched = 0; subentry A.D=2, B.D=0 *)
  Alcotest.(check int) "entries exist" 6 (Hash_tree.n_entries tree)

let test_lookup_head_miss_without_create () =
  let tree = Hash_tree.create () in
  Alcotest.(check bool) "miss" true (Hash_tree.lookup_slot tree ~rev_path:[ a ] = None);
  Alcotest.(check bool) "create_head makes it" true
    (Hash_tree.lookup_slot ~create_head:true tree ~rev_path:[ a ] <> None);
  Alcotest.(check bool) "now present" true (Hash_tree.lookup_slot tree ~rev_path:[ a ] <> None)

(* --- Figure 9 lookup semantics --- *)

(* build: required {A, B, C, D, A.D}; mark nodes for A, B, C, remainder.D
   and A.D *)
let build_fig9 () =
  let tree = Hash_tree.create () in
  let gapex = fresh_gapex () in
  Hash_tree.count_workload tree [ [ a ]; [ b ]; [ c ]; [ d ]; [ a; d ] ];
  let n_a = mark gapex (slot_exn tree [ a ]) in
  let _n_b = mark gapex (slot_exn tree [ b ]) in
  let n_ad = mark gapex (slot_exn tree [ d; a ]) in
  (* the remainder of D: looked up via a path ending with D but not A.D *)
  let n_rd = mark gapex (slot_exn tree [ d; b ]) in
  (tree, n_a, n_ad, n_rd)

let test_lookup_maximal_suffix () =
  let tree, n_a, n_ad, n_rd = build_fig9 () in
  (* path B.A: longest required suffix is A (entry, next=NULL) *)
  (match Hash_tree.slot_get (slot_exn tree [ a; b ]) with
   | Some n -> Alcotest.(check int) "suffix A" n_a.Gapex.id n.Gapex.id
   | None -> Alcotest.fail "no node");
  (* path C.A.D: matches the stored A.D *)
  (match Hash_tree.slot_get (slot_exn tree [ d; a; c ]) with
   | Some n -> Alcotest.(check int) "suffix A.D" n_ad.Gapex.id n.Gapex.id
   | None -> Alcotest.fail "no node");
  (* path C.B.D: D stored with subtree, B not a subentry -> remainder.D *)
  (match Hash_tree.slot_get (slot_exn tree [ d; b; c ]) with
   | Some n -> Alcotest.(check int) "remainder.D" n_rd.Gapex.id n.Gapex.id
   | None -> Alcotest.fail "no node")

let test_lookup_path_exhaustion_is_remainder () =
  let tree, _, _, n_rd = build_fig9 () in
  (* the path "D" itself: D's entry has a subtree; nothing precedes D, so it
     belongs to the remainder *)
  match Hash_tree.slot_get (slot_exn tree [ d ]) with
  | Some n -> Alcotest.(check int) "root D -> remainder" n_rd.Gapex.id n.Gapex.id
  | None -> Alcotest.fail "no node"

let test_locate_exact_subtree_union () =
  let tree, _, n_ad, n_rd = build_fig9 () in
  (* query //D: exact, and the answer is the whole subtree under D *)
  match Hash_tree.locate tree ~rev_path:[ d ] with
  | Some (Hash_tree.Exact nodes) ->
    let ids = List.sort compare (List.map (fun (n : Gapex.node) -> n.Gapex.id) nodes) in
    Alcotest.(check (list int)) "A.D + remainder"
      (List.sort compare [ n_ad.Gapex.id; n_rd.Gapex.id ])
      ids
  | _ -> Alcotest.fail "expected Exact"

let test_locate_approx () =
  let tree, _, _, n_rd = build_fig9 () in
  (* query //C/B/D: B not under D -> approximate via remainder.D *)
  match Hash_tree.locate tree ~rev_path:[ d; b; c ] with
  | Some (Hash_tree.Approx [ n ]) -> Alcotest.(check int) "remainder" n_rd.Gapex.id n.Gapex.id
  | _ -> Alcotest.fail "expected Approx [remainder]"

let test_locate_unknown_label () =
  let tree, _, _, _ = build_fig9 () in
  Alcotest.(check bool) "unknown head label" true (Hash_tree.locate tree ~rev_path:[ 9 ] = None)

(* --- Figure 8 pruning --- *)

(* support-only extraction: keep an entry iff its window count reaches k *)
let by_count k ~path:_ ~count ~is_new:_ = count >= k

let test_prune_drops_infrequent_subentry () =
  let tree = Hash_tree.create () in
  let gapex = fresh_gapex () in
  Hash_tree.count_workload tree [ [ a ]; [ b ]; [ c ]; [ d ]; [ b; d ] ];
  ignore (mark gapex (slot_exn tree [ d; b ]));
  ignore (mark gapex (slot_exn tree [ d; a ]));
  (* remainder of D *)
  Hash_tree.reset_marks tree;
  Hash_tree.count_workload tree [ [ a; d ]; [ c ]; [ a; d ] ];
  (* minSup 0.6 over 3 queries: integer threshold ceil(1.8) = 2 counts
     (the paper's example) *)
  Hash_tree.prune tree ~decide:(by_count 2);
  Alcotest.(check bool) "invariant" true (Hash_tree.check_invariant tree);
  (* B.D pruned: the slot for path X.B.D is now D's remainder, which was
     invalidated (it pointed to stale content) *)
  (match Hash_tree.lookup_slot tree ~rev_path:[ d; b ] with
   | Some slot -> Alcotest.(check bool) "remainder invalidated" true (Hash_tree.slot_get slot = None)
   | None -> Alcotest.fail "expected remainder slot");
  (* A.D newly frequent: present with an empty slot awaiting update *)
  match Hash_tree.lookup_slot tree ~rev_path:[ d; a ] with
  | Some slot -> Alcotest.(check bool) "new entry empty" true (Hash_tree.slot_get slot = None)
  | None -> Alcotest.fail "expected A.D entry"

let test_prune_keeps_head_entries () =
  let tree = Hash_tree.create () in
  Hash_tree.count_workload tree [ [ a ]; [ b ] ];
  Hash_tree.reset_marks tree;
  (* nothing in the new workload mentions B, but head entries survive *)
  Hash_tree.count_workload tree [ [ a ] ];
  Hash_tree.prune tree ~decide:(by_count 1);
  Alcotest.(check bool) "B kept as length-1 required" true
    (Hash_tree.lookup_slot tree ~rev_path:[ b ] <> None)

let test_prune_invalidates_entry_gaining_subtree () =
  let tree = Hash_tree.create () in
  let gapex = fresh_gapex () in
  Hash_tree.count_workload tree [ [ d ] ];
  let slot_d = slot_exn tree [ d ] in
  ignore (mark gapex slot_d);
  Hash_tree.reset_marks tree;
  (* A.D becomes frequent: D's old node covered all of T(D) and is stale *)
  Hash_tree.count_workload tree [ [ a; d ]; [ a; d ] ];
  Hash_tree.prune tree ~decide:(by_count 2);
  Alcotest.(check bool) "invariant" true (Hash_tree.check_invariant tree);
  match Hash_tree.lookup_slot tree ~rev_path:[ d ] with
  | Some slot -> Alcotest.(check bool) "old D slot invalidated" true (Hash_tree.slot_get slot = None)
  | None -> Alcotest.fail "expected a slot for D"

let test_prune_collapses_empty_hnode () =
  let tree = Hash_tree.create () in
  Hash_tree.count_workload tree [ [ a; d ]; [ a; d ] ];
  Hash_tree.prune tree ~decide:(by_count 2);
  Alcotest.(check int) "A, D, A.D" 3 (Hash_tree.n_entries tree);
  (* new workload never touches A.D: the subtree collapses *)
  Hash_tree.reset_marks tree;
  Hash_tree.count_workload tree [ [ b ]; [ b ] ];
  Hash_tree.prune tree ~decide:(by_count 2);
  Alcotest.(check int) "A, D, B" 3 (Hash_tree.n_entries tree);
  (* D's entry is a plain maximal suffix again *)
  match Hash_tree.locate tree ~rev_path:[ d; a ] with
  | Some (Hash_tree.Approx _) -> ()
  | _ -> Alcotest.fail "A.D should no longer be stored exactly"

let () =
  Alcotest.run "hash_tree"
    [ ( "counting",
        [ Alcotest.test_case "creates entries" `Quick test_counting_creates_entries;
          Alcotest.test_case "head miss/create" `Quick test_lookup_head_miss_without_create
        ] );
      ( "lookup",
        [ Alcotest.test_case "maximal suffix" `Quick test_lookup_maximal_suffix;
          Alcotest.test_case "path exhaustion -> remainder" `Quick test_lookup_path_exhaustion_is_remainder;
          Alcotest.test_case "locate exact subtree union" `Quick test_locate_exact_subtree_union;
          Alcotest.test_case "locate approx" `Quick test_locate_approx;
          Alcotest.test_case "locate unknown label" `Quick test_locate_unknown_label
        ] );
      ( "pruning",
        [ Alcotest.test_case "drops infrequent subentry" `Quick test_prune_drops_infrequent_subentry;
          Alcotest.test_case "keeps head entries" `Quick test_prune_keeps_head_entries;
          Alcotest.test_case "invalidates entry gaining subtree" `Quick
            test_prune_invalidates_entry_gaining_subtree;
          Alcotest.test_case "collapses empty hnode" `Quick test_prune_collapses_empty_hnode
        ] )
    ]
