open Repro_baselines
module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query
module Naive = Repro_pathexpr.Naive_eval

let movie_queries =
  [ "//actor/name";
    "//name";
    "//title";
    "//movie/title";
    "//director/movie/title";
    "//movie/@actor=>actor/name";
    "//@movie=>movie";
    "//director//title";
    "//director//name";
    "//actor//title";
    "//movie//title";
    {|//name[text()="Kevin"]|};
    {|//movie/title[text()="Waterworld"]|};
    {|//movie/title[text()="Nope"]|}
  ]

let check_against_naive index queries =
  let g = Summary_index.graph index in
  List.iter
    (fun qs ->
      match Query.parse qs with
      | Error m -> Alcotest.failf "parse %s: %s" qs m
      | Ok q ->
        Alcotest.(check (array int)) qs (Naive.eval_query g q) (Summary_index.eval_query index q))
    queries

(* --- strong DataGuide --- *)

let test_dataguide_tree_structure () =
  let g = F.small_tree () in
  let dg = Dataguide.build g in
  (* distinct root paths: a, a.b, a.c -> 3 states + root *)
  let nodes, edges = Summary_index.stats dg in
  Alcotest.(check int) "nodes" 4 nodes;
  Alcotest.(check int) "edges" 3 edges

let test_dataguide_movie_db_structure () =
  let g = F.movie_db () in
  let dg = Dataguide.build g in
  let nodes, _ = Summary_index.stats dg in
  (* subset construction on the cyclic movie graph terminates and stays
     moderate *)
  Alcotest.(check bool) (Printf.sprintf "nodes=%d reasonable" nodes) true (nodes > 5 && nodes < 60)

let test_dataguide_queries () =
  let g = F.movie_db () in
  check_against_naive (Dataguide.build g) movie_queries

let test_dataguide_query_cost_counts_navigation () =
  let g = F.movie_db () in
  let dg = Dataguide.build g in
  let cost = Repro_storage.Cost.create () in
  ignore (Summary_index.eval_query ~cost dg (Query.Qtype1 [ "actor"; "name" ]));
  Alcotest.(check bool) "node visits" true (cost.Repro_storage.Cost.index_node_visits > 0);
  Alcotest.(check bool) "edge lookups" true (cost.Repro_storage.Cost.index_edge_lookups > 0)

let test_dataguide_materialized () =
  let g = F.movie_db () in
  let dg = Dataguide.build g in
  let pager = Repro_storage.Pager.create ~page_size:256 () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:8 in
  Summary_index.materialize dg pool;
  check_against_naive dg movie_queries;
  let cost = Repro_storage.Cost.create () in
  ignore (Summary_index.eval_query ~cost dg (Query.Qtype1 [ "name" ]));
  (* the earlier verification queries warmed the decoded-extent LRU: this
     load is a hit — edges stream without page I/O *)
  Alcotest.(check bool) "edges charged" true (cost.Repro_storage.Cost.extent_edges > 0);
  Alcotest.(check bool) "cache probes recorded" true
    (cost.Repro_storage.Cost.extent_cache_hits + cost.Repro_storage.Cost.extent_cache_misses > 0)

let test_dataguide_max_nodes_guard () =
  let g = F.movie_db () in
  match Dataguide.build ~max_nodes:2 g with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected state-explosion guard to trip"

(* --- 1-index --- *)

let test_one_index_tree_coincides_with_dataguide () =
  (* Milo & Suciu: the 1-index coincides with the strong DataGuide on tree
     data *)
  let g = F.small_tree () in
  let dg_nodes, dg_edges = Summary_index.stats (Dataguide.build g) in
  let oi_nodes, oi_edges = Summary_index.stats (One_index.build g) in
  Alcotest.(check int) "nodes" dg_nodes oi_nodes;
  Alcotest.(check int) "edges" dg_edges oi_edges

let test_one_index_queries () =
  let g = F.movie_db () in
  check_against_naive (One_index.build g) movie_queries

let test_one_index_blocks_bounded_by_nodes () =
  let g = F.movie_db () in
  Alcotest.(check bool) "blocks <= nodes" true (One_index.n_blocks g <= G.n_nodes g)

let test_one_index_partition_is_valid () =
  let g = F.movie_db () in
  let oi = One_index.build g in
  (* the blocks' target sets partition the node set *)
  let seen = Array.make (G.n_nodes g) 0 in
  let n, _ = Summary_index.stats oi in
  for id = 0 to n - 1 do
    Array.iter (fun v -> seen.(v) <- seen.(v) + 1) (Summary_index.targets oi id)
  done;
  Array.iteri
    (fun v count ->
      if count <> 1 then Alcotest.failf "node %d appears in %d blocks" v count)
    seen

(* --- Index Fabric --- *)

let test_fabric_keys () =
  let g = F.movie_db () in
  let fabric = Index_fabric.build g in
  (* value nodes: 2 names, 1 dname, 1 title = 4 *)
  Alcotest.(check int) "keys" 4 (Index_fabric.n_keys fabric);
  Alcotest.(check bool) "has trie nodes" true (Index_fabric.n_trie_nodes fabric > 1);
  Alcotest.(check bool) "has blocks" true (Index_fabric.n_blocks fabric >= 1)

let test_fabric_q3 () =
  let g = F.movie_db () in
  let fabric = Index_fabric.build g in
  let l s = Option.get (Repro_graph.Label.find (G.labels g) s) in
  Alcotest.(check (array int)) "//name[Kevin]" [| 2 |]
    (Index_fabric.eval_q3 fabric [ l "name" ] "Kevin");
  Alcotest.(check (array int)) "//movie/title[Waterworld]" [| 7 |]
    (Index_fabric.eval_q3 fabric [ l "movie"; l "title" ] "Waterworld");
  Alcotest.(check (array int)) "wrong value" [||]
    (Index_fabric.eval_q3 fabric [ l "title" ] "Nope");
  Alcotest.(check (array int)) "suffix longer than any path" [||]
    (Index_fabric.eval_q3 fabric [ l "name"; l "name"; l "name"; l "name" ] "Kevin")

let test_fabric_q3_matches_naive () =
  let g = F.movie_db () in
  let fabric = Index_fabric.build g in
  List.iter
    (fun qs ->
      match Query.parse qs with
      | Ok (Query.Qtype3 _ as q) ->
        (match Index_fabric.eval_query fabric q with
         | Some result -> Alcotest.(check (array int)) qs (Naive.eval_query g q) result
         | None -> Alcotest.failf "fabric refused %s" qs)
      | Ok _ | Error _ -> Alcotest.failf "expected a QTYPE3 query: %s" qs)
    [ {|//name[text()="Kevin"]|};
      {|//name[text()="Jeanne"]|};
      {|//movie/title[text()="Waterworld"]|};
      {|//director/name[text()="Reynolds"]|};
      {|//title[text()="Missing"]|}
    ]

let test_fabric_rejects_q1_q2 () =
  let g = F.movie_db () in
  let fabric = Index_fabric.build g in
  Alcotest.(check bool) "q1 unsupported" true
    (Index_fabric.eval_query fabric (Query.Qtype1 [ "name" ]) = None);
  Alcotest.(check bool) "q2 unsupported" true
    (Index_fabric.eval_query fabric (Query.Qtype2 ("movie", "title")) = None)

let test_fabric_lookup_rooted () =
  let g = F.movie_db () in
  let fabric = Index_fabric.build g in
  let l s = Option.get (Repro_graph.Label.find (G.labels g) s) in
  Alcotest.(check (array int)) "exact root path" [| 7 |]
    (Index_fabric.lookup_rooted fabric [ l "movie"; l "title" ] "Waterworld");
  (* note: fabric keys are tree paths; [movie] under the root is the tree
     parent of [title] here *)
  Alcotest.(check (array int)) "partial path is not a key" [||]
    (Index_fabric.lookup_rooted fabric [ l "title" ] "Waterworld")

let test_fabric_cost () =
  let g = F.movie_db () in
  let fabric = Index_fabric.build g in
  let l s = Option.get (Repro_graph.Label.find (G.labels g) s) in
  let cost = Repro_storage.Cost.create () in
  ignore (Index_fabric.eval_q3 ~cost fabric [ l "name" ] "Kevin");
  (* exhaustive scan touches every trie node *)
  Alcotest.(check int) "all trie nodes visited" (Index_fabric.n_trie_nodes fabric)
    cost.Repro_storage.Cost.trie_node_visits;
  Alcotest.(check bool) "blocks charged" true (cost.Repro_storage.Cost.trie_pages >= 1);
  let cost2 = Repro_storage.Cost.create () in
  ignore (Index_fabric.lookup_rooted ~cost:cost2 fabric [ l "movie"; l "title" ] "Waterworld");
  Alcotest.(check bool) "rooted lookup is cheaper" true
    (cost2.Repro_storage.Cost.trie_node_visits < cost.Repro_storage.Cost.trie_node_visits)

(* --- Patricia --- *)

let test_patricia_basic () =
  let t = Patricia.create () in
  List.iteri (fun i k -> Patricia.insert t k i)
    [ "romane"; "romanus"; "romulus"; "rubens"; "ruber"; "rubicon"; "rubicundus" ];
  Alcotest.(check int) "keys" 7 (Patricia.n_keys t);
  Alcotest.(check (list int)) "find romanus" [ 1 ] (Patricia.find t "romanus");
  Alcotest.(check (list int)) "find missing" [] (Patricia.find t "roman");
  Alcotest.(check (list int)) "find missing 2" [] (Patricia.find t "rubensx");
  Patricia.insert t "romanus" 99;
  Alcotest.(check int) "dup key" 7 (Patricia.n_keys t);
  Alcotest.(check (list int)) "both payloads" [ 1; 99 ]
    (List.sort compare (Patricia.find t "romanus"))

let test_patricia_prefix_keys () =
  let t = Patricia.create () in
  Patricia.insert t "ab" 1;
  Patricia.insert t "abcd" 2;
  Patricia.insert t "a" 3;
  Alcotest.(check (list int)) "a" [ 3 ] (Patricia.find t "a");
  Alcotest.(check (list int)) "ab" [ 1 ] (Patricia.find t "ab");
  Alcotest.(check (list int)) "abcd" [ 2 ] (Patricia.find t "abcd");
  Alcotest.(check (list int)) "abc absent" [] (Patricia.find t "abc")

let prop_patricia_model =
  QCheck.Test.make ~count:300 ~name:"patricia = assoc-list model"
    QCheck.(list (pair (string_of_size (QCheck.Gen.int_range 1 8)) small_nat))
    (fun kvs ->
      let t = Patricia.create () in
      List.iter (fun (k, v) -> Patricia.insert t k v) kvs;
      let model k =
        List.filter_map (fun (k', v) -> if String.equal k k' then Some v else None) kvs
        |> List.sort compare
      in
      List.for_all
        (fun (k, _) -> List.sort compare (Patricia.find t k) = model k)
        kvs
      && Patricia.n_keys t
         = List.length (List.sort_uniq compare (List.map fst kvs)))

(* --- property: summary indexes match naive on random DAGs --- *)

let prop_summary_indexes_match_naive =
  QCheck.Test.make ~count:100 ~name:"DataGuide & 1-index = naive on DAGs" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let dg = Dataguide.build g in
      let oi = One_index.build g in
      let tbl = G.labels g in
      let all_labels = List.init (Repro_graph.Label.count tbl) (fun i -> i) in
      let queries =
        List.concat_map
          (fun a -> [ Query.C1 [ a ] ] @ List.map (fun b -> Query.C1 [ a; b ]) all_labels)
          all_labels
        @ List.concat_map
            (fun a -> List.map (fun b -> Query.C2 (a, b)) all_labels)
            all_labels
      in
      List.for_all
        (fun q ->
          let expected = Naive.eval g q in
          Summary_index.eval dg q = expected && Summary_index.eval oi q = expected)
        queries)

let prop_fabric_exact_on_trees =
  (* fabric keys are tree paths; on tree data Q3 must match naive *)
  QCheck.Test.make ~count:100 ~name:"Index Fabric Q3 = naive on trees" F.arb_dag
    (fun (n, edges) ->
      (* keep only the spanning edges (first edge to each target) => a tree *)
      let seen = Hashtbl.create 16 in
      let tree_edges =
        List.filter
          (fun (_, _, v) ->
            if Hashtbl.mem seen v then false
            else begin
              Hashtbl.add seen v ();
              true
            end)
          edges
      in
      let g = F.dag_of_spec (n, tree_edges) in
      let fabric = Index_fabric.build g in
      let tbl = G.labels g in
      let all_labels = List.init (Repro_graph.Label.count tbl) (fun i -> i) in
      let values = List.init n (fun i -> Printf.sprintf "v%d" i) in
      List.for_all
        (fun l ->
          List.for_all
            (fun v ->
              Index_fabric.eval_q3 fabric [ l ] v = Naive.eval g (Query.C3 ([ l ], v)))
            values)
        all_labels)

let prop_one_index_blocks_are_bisimilar =
  (* members of a block have identical (label, block-of-parent) incoming
     signatures — the defining property of backward bisimulation *)
  QCheck.Test.make ~count:100 ~name:"1-index blocks are backward-bisimilar" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let oi = One_index.build g in
      let n, _ = Summary_index.stats oi in
      let block_of = Array.make (G.n_nodes g) (-1) in
      for id = 0 to n - 1 do
        Array.iter (fun v -> block_of.(v) <- id) (Summary_index.targets oi id)
      done;
      let signature v =
        let acc = ref [] in
        G.iter_in g v (fun l u -> acc := (l, block_of.(u)) :: !acc);
        List.sort_uniq compare !acc
      in
      let ok = ref true in
      for id = 0 to n - 1 do
        match Array.to_list (Summary_index.targets oi id) with
        | [] | [ _ ] -> ()
        | first :: rest ->
          let s = signature first in
          if not (List.for_all (fun v -> signature v = s) rest) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "baselines"
    [ ( "dataguide",
        [ Alcotest.test_case "tree structure" `Quick test_dataguide_tree_structure;
          Alcotest.test_case "movie_db structure" `Quick test_dataguide_movie_db_structure;
          Alcotest.test_case "queries vs naive" `Quick test_dataguide_queries;
          Alcotest.test_case "navigation cost" `Quick test_dataguide_query_cost_counts_navigation;
          Alcotest.test_case "materialized" `Quick test_dataguide_materialized;
          Alcotest.test_case "max_nodes guard" `Quick test_dataguide_max_nodes_guard
        ] );
      ( "one_index",
        [ Alcotest.test_case "coincides with DataGuide on trees" `Quick
            test_one_index_tree_coincides_with_dataguide;
          Alcotest.test_case "queries vs naive" `Quick test_one_index_queries;
          Alcotest.test_case "blocks bounded" `Quick test_one_index_blocks_bounded_by_nodes;
          Alcotest.test_case "partition valid" `Quick test_one_index_partition_is_valid
        ] );
      ( "index_fabric",
        [ Alcotest.test_case "keys" `Quick test_fabric_keys;
          Alcotest.test_case "q3" `Quick test_fabric_q3;
          Alcotest.test_case "q3 vs naive" `Quick test_fabric_q3_matches_naive;
          Alcotest.test_case "rejects q1/q2" `Quick test_fabric_rejects_q1_q2;
          Alcotest.test_case "rooted lookup" `Quick test_fabric_lookup_rooted;
          Alcotest.test_case "cost accounting" `Quick test_fabric_cost
        ] );
      ( "patricia",
        [ Alcotest.test_case "basic" `Quick test_patricia_basic;
          Alcotest.test_case "prefix keys" `Quick test_patricia_prefix_keys;
          QCheck_alcotest.to_alcotest prop_patricia_model
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_summary_indexes_match_naive;
          QCheck_alcotest.to_alcotest prop_fabric_exact_on_trees;
          QCheck_alcotest.to_alcotest prop_one_index_blocks_are_bisimilar
        ] )
    ]
