open Repro_xpath
module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
open Xpath_ast

let parse = Xpath_parser.parse_exn

(* --- parsing --- *)

let step ?(axis = Child) ?(preds = []) test = { axis; test; predicates = preds }

let check_parse text expected =
  match Xpath_parser.parse text with
  | Ok got ->
    if not (Xpath_ast.equal got expected) then
      Alcotest.failf "parse %s: got %s" text (Xpath_ast.to_string got)
  | Error m -> Alcotest.failf "parse %s failed: %s" text m

let test_parse_basic () =
  check_parse "//actor/name"
    { absolute = false; steps = [ step ~axis:Descendant (Name "actor"); step (Name "name") ] };
  check_parse "/MovieDB/actor"
    { absolute = true; steps = [ step (Name "MovieDB"); step (Name "actor") ] };
  check_parse "//a//b"
    { absolute = false; steps = [ step ~axis:Descendant (Name "a"); step ~axis:Descendant (Name "b") ] };
  check_parse "//movie/*"
    { absolute = false; steps = [ step ~axis:Descendant (Name "movie"); step Any ] }

let test_parse_deref () =
  check_parse "//movie/@actor=>actor"
    { absolute = false;
      steps = [ step ~axis:Descendant (Name "movie"); step (Name "@actor"); step (Name "actor") ]
    }

let test_parse_predicates () =
  check_parse {|//name[text()="Kevin"]|}
    { absolute = false;
      steps = [ step ~axis:Descendant ~preds:[ Text_equals "Kevin" ] (Name "name") ]
    };
  check_parse "//SCENE/SPEECH[2]"
    { absolute = false;
      steps = [ step ~axis:Descendant (Name "SCENE"); step ~preds:[ Position 2 ] (Name "SPEECH") ]
    };
  check_parse "//movie[title]/year"
    { absolute = false;
      steps =
        [ step ~axis:Descendant ~preds:[ Exists [ step (Name "title") ] ] (Name "movie");
          step (Name "year")
        ]
    };
  check_parse "//director[.//title]"
    { absolute = false;
      steps =
        [ step ~axis:Descendant
            ~preds:[ Exists [ step ~axis:Descendant (Name "title") ] ]
            (Name "director")
        ]
    }

let test_parse_errors () =
  List.iter
    (fun text ->
      match Xpath_parser.parse text with
      | Error _ -> ()
      | Ok p -> Alcotest.failf "expected error on %s, got %s" text (Xpath_ast.to_string p))
    [ "actor/name"; "//"; "//a["; "//a[]"; "//a]"; "//a/"; "//a[text()=v" ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let test_parse_error_paths () =
  (* a digit run past [max_int] must surface as a positioned parse error,
     not as [int_of_string]'s [Failure] escaping the parser *)
  (match Xpath_parser.parse "//a[99999999999999999999]" with
   | Ok p -> Alcotest.failf "overflow accepted: %s" (Xpath_ast.to_string p)
   | Error m ->
     Alcotest.(check bool)
       (Printf.sprintf "positioned at the digits: %s" m)
       true
       (String.length m >= 2 && String.equal (String.sub m 0 2) "4:");
     Alcotest.(check bool)
       (Printf.sprintf "names the range problem: %s" m)
       true (contains m "out of range"));
  (* the largest representable position still parses *)
  (match Xpath_parser.parse (Printf.sprintf "//a[%d]" max_int) with
   | Ok _ -> ()
   | Error m -> Alcotest.failf "max_int rejected: %s" m);
  (* an unterminated string literal consumes to end-of-input and must
     report the missing quote as an error *)
  match Xpath_parser.parse {|//name[text()="Kevin]|} with
  | Ok p -> Alcotest.failf "unterminated literal accepted: %s" (Xpath_ast.to_string p)
  | Error _ -> ()

let test_to_string_roundtrip () =
  List.iter
    (fun text ->
      let p = parse text in
      let p' = parse (Xpath_ast.to_string p) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %s" text) true (Xpath_ast.equal p p'))
    [ "//actor/name";
      "/MovieDB/actor";
      "//a//b/c";
      {|//name[text()="Kevin Reynolds"]|};
      "//SCENE/SPEECH[2]/LINE";
      "//movie[title][year]/*";
      "//director[.//title]/name"
    ]

(* --- direct evaluation on the MovieDB fixture --- *)

let ev g text = Xpath_eval.eval_string g text

let test_eval_child_paths () =
  let g = F.movie_db () in
  Alcotest.(check (array int)) "/actor" [| 1; 3 |] (ev g "/actor");
  Alcotest.(check (array int)) "/actor/name" [| 2; 4 |] (ev g "/actor/name");
  Alcotest.(check (array int)) "//name" [| 2; 4; 8 |] (ev g "//name");
  Alcotest.(check (array int)) "//director/movie/title" [| 7 |] (ev g "//director/movie/title")

let test_eval_wildcard () =
  let g = F.movie_db () in
  (* every non-attribute child of directors: movie + name *)
  Alcotest.(check (array int)) "//director/*" [| 6; 8 |] (ev g "//director/*");
  (* root's children *)
  Alcotest.(check (array int)) "/*" [| 1; 3; 5; 6 |] (ev g "/*")

let test_eval_descendant () =
  let g = F.movie_db () in
  Alcotest.(check (array int)) "//director//title" [| 7 |] (ev g "//director//title");
  (* descendant axis does not cross references: actors reach no title *)
  Alcotest.(check (array int)) "//actor//title" [||] (ev g "//actor//title");
  (* but explicit attribute steps do *)
  Alcotest.(check (array int)) "//actor/@movie=>movie/title" [| 7 |]
    (ev g "//actor/@movie=>movie/title")

let test_eval_text_predicate () =
  let g = F.movie_db () in
  Alcotest.(check (array int)) "name=Kevin" [| 2 |] (ev g {|//name[text()="Kevin"]|});
  Alcotest.(check (array int)) "no match" [||] (ev g {|//name[text()="Zelda"]|})

let test_eval_exists_predicate () =
  let g = F.movie_db () in
  (* only the director has a movie child *)
  Alcotest.(check (array int)) "//*[movie]" [| 5 |] (ev g "//*[movie]");
  Alcotest.(check (array int)) "directors with titles somewhere below" [| 5 |]
    (ev g "//director[.//title]");
  Alcotest.(check (array int)) "actors with a movie attr ref" [| 1 |] (ev g "//actor[@movie]")

let test_eval_position () =
  let g = F.movie_db () in
  Alcotest.(check (array int)) "first actor" [| 1 |] (ev g "/actor[1]");
  Alcotest.(check (array int)) "second actor" [| 3 |] (ev g "/actor[2]");
  Alcotest.(check (array int)) "third actor" [||] (ev g "/actor[3]");
  (* position after a filtering predicate re-ranks *)
  Alcotest.(check (array int)) "first named actor" [| 1 |] (ev g "//actor[name][1]")

let test_eval_unknown_label () =
  let g = F.movie_db () in
  Alcotest.(check (array int)) "unknown" [||] (ev g "//nonexistent/name")

(* --- planner --- *)

let plan_of g text = Xpath_plan.plan g (parse text)

let test_plan_shapes () =
  let g = F.movie_db () in
  let check text expected =
    Alcotest.(check string) text expected (Xpath_plan.describe (plan_of g text))
  in
  check "//actor/name" "index(QTYPE1)";
  check "//movie//title" "index(QTYPE2)";
  check {|//name[text()="Kevin"]|} "index(QTYPE3)";
  check {|//movie/title[text()="Waterworld"]|} "index(QTYPE3)";
  check "/actor/name" "scan";
  check "//*[movie]" "scan";
  (* a non-positional predicate closes the prefix and rides along *)
  check "//actor[name]/name" "seeded(prefix=1 labels, 1 self-predicates, residual=1 steps)";
  (* prefix seeding: //director/movie + residual *)
  check "//director/movie/*" "seeded(prefix=2 labels, 0 self-predicates, residual=1 steps)";
  check "//actor/name[1]" "seeded(prefix=1 labels, 0 self-predicates, residual=1 steps)"

let test_execute_matches_direct () =
  let g = F.movie_db () in
  let apex =
    Repro_apex.Apex.build_adapted g
      ~workload:[ F.path g [ "actor"; "name" ] ]
      ~min_support:0.5
  in
  List.iter
    (fun text ->
      Alcotest.(check (array int)) text (ev g text) (Xpath_plan.execute_string apex text))
    [ "//actor/name";
      "//name";
      "//movie//title";
      "//director//name";
      {|//name[text()="Kevin"]|};
      {|//movie/title[text()="Waterworld"]|};
      "/actor/name";
      "//director/movie/*";
      "//actor[name]/name";
      "//actor/@movie=>movie/title";
      "//movie/@actor=>actor/name";
      "//actor/name[1]";
      "//*[movie]";
      "/actor[2]/name"
    ]

(* --- property: planner = direct evaluator on random DAGs --- *)

let gen_xpath_text =
  (* random small paths over the DAG test alphabet l0..l3 *)
  QCheck.Gen.(
    let name = map (Printf.sprintf "l%d") (int_bound 3) in
    let sep = oneofl [ "/"; "//" ] in
    list_size (int_range 1 3) (pair sep name) >>= fun steps ->
    oneofl [ "//"; "/" ] >>= fun lead ->
    (* occasionally add a text or exists predicate on the last step *)
    oneofl [ ""; "[text()=\"v1\"]"; "[l0]"; "[1]" ] >>= fun suffix ->
    let body =
      String.concat "" (List.mapi (fun i (s, n) -> (if i = 0 then "" else s) ^ n) steps)
    in
    (* rebuild with separators: first step uses lead *)
    let rendered =
      lead
      ^ String.concat ""
          (List.mapi (fun i (s, n) -> if i = 0 then n else s ^ n) steps)
      ^ suffix
    in
    ignore body;
    pure rendered)

let prop_planner_equals_direct =
  QCheck.Test.make ~count:200 ~name:"planned execution = direct evaluation"
    (QCheck.pair F.arb_dag (QCheck.make gen_xpath_text))
    (fun (spec, text) ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec |] in
      let workload =
        if G.out_degree g (G.root g) = 0 then []
        else
          List.init 4 (fun _ ->
              List.map fst (Repro_workload.Simple_paths.random_walk rand ~max_length:4 g))
      in
      QCheck.assume (workload <> []);
      let apex = Repro_apex.Apex.build_adapted g ~workload ~min_support:0.4 in
      match Xpath_parser.parse text with
      | Error _ -> QCheck.assume_fail ()
      | Ok path ->
        let direct = Xpath_eval.eval g path in
        let planned = Xpath_plan.execute apex path in
        if direct = planned then true
        else
          QCheck.Test.fail_reportf "path %s (%s): direct %d results, planned %d" text
            (Xpath_plan.describe (Xpath_plan.plan g path))
            (Array.length direct) (Array.length planned))

let prop_xpath_agrees_with_query_semantics =
  (* two independently written semantics: the XPath evaluator on //a/b and
     //a//b must agree with the QTYPE1/QTYPE2 reference evaluator *)
  QCheck.Test.make ~count:150 ~name:"xpath //a/b = QTYPE1, //a//b = QTYPE2" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let tbl = G.labels g in
      let all = List.init (Repro_graph.Label.count tbl) (fun i -> i) in
      let name l = Repro_graph.Label.to_string tbl l in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let q1 =
                Repro_pathexpr.Naive_eval.eval g (Repro_pathexpr.Query.C1 [ a; b ])
              in
              let x1 = Xpath_eval.eval_string g (Printf.sprintf "//%s/%s" (name a) (name b)) in
              let q2 =
                Repro_pathexpr.Naive_eval.eval g (Repro_pathexpr.Query.C2 (a, b))
              in
              let x2 = Xpath_eval.eval_string g (Printf.sprintf "//%s//%s" (name a) (name b)) in
              q1 = x1 && q2 = x2)
            all)
        all)

let () =
  Alcotest.run "xpath"
    [ ( "parser",
        [ Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "dereference" `Quick test_parse_deref;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error paths" `Quick test_parse_error_paths;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip
        ] );
      ( "eval",
        [ Alcotest.test_case "child paths" `Quick test_eval_child_paths;
          Alcotest.test_case "wildcard" `Quick test_eval_wildcard;
          Alcotest.test_case "descendant" `Quick test_eval_descendant;
          Alcotest.test_case "text predicate" `Quick test_eval_text_predicate;
          Alcotest.test_case "exists predicate" `Quick test_eval_exists_predicate;
          Alcotest.test_case "position" `Quick test_eval_position;
          Alcotest.test_case "unknown label" `Quick test_eval_unknown_label
        ] );
      ( "planner",
        [ Alcotest.test_case "plan shapes" `Quick test_plan_shapes;
          Alcotest.test_case "execute = direct" `Quick test_execute_matches_direct;
          QCheck_alcotest.to_alcotest prop_planner_equals_direct
        ] );
      ( "cross-validation",
        [ QCheck_alcotest.to_alcotest prop_xpath_agrees_with_query_semantics ] )
    ]
