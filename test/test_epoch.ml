(* Epoch-registry model test.

   A QCheck state machine drives random pin/unpin/publish/rollback/retire
   command sequences against [Epoch_registry] and a trivial reference
   model, checking after every step the guarantees the serving layer
   builds on:

   - no epoch is ever freed while a validated pin holds it;
   - published generations are strictly monotone (the registry's
     generation counter is never reused, even across rollbacks);
   - rollback restores exactly the previous published generation, and a
     second rollback without an intervening publish restores nothing;
   - after quiescence (all pins dropped, one superseding publish) the
     retire list drains completely and every entry except the current
     one and its rollback target has been freed.

   Payloads echo their generation number, so a pin that returned the
   wrong entry (torn publish, resurrection of a freed epoch) is caught by
   a payload/generation mismatch and not just by bookkeeping.

   Two concurrent checks ride along: a multi-domain hammer (readers
   pin/validate/hold/unpin in a loop while the writer publishes and
   retires 200 generations) and a Gc-based proof that the reader
   pin/unpin hot path allocates no minor words. *)

module Registry = Repro_server.Epoch_registry

let n_slots = 4

type cmd = Pin of int | Unpin of int | Publish | Rollback | Retire

let cmd_to_string = function
  | Pin s -> Printf.sprintf "Pin %d" s
  | Unpin s -> Printf.sprintf "Unpin %d" s
  | Publish -> "Publish"
  | Rollback -> "Rollback"
  | Retire -> "Retire"

let gen_cmd =
  QCheck.Gen.(
    frequency
      [ (3, map (fun s -> Pin s) (int_bound (n_slots - 1)));
        (3, map (fun s -> Unpin s) (int_bound (n_slots - 1)));
        (3, return Publish);
        (1, return Rollback);
        (2, return Retire)
      ])

let arb_cmds =
  QCheck.make
    ~print:(fun cmds -> String.concat "; " (List.map cmd_to_string cmds))
    QCheck.Gen.(list_size (int_range 1 60) gen_cmd)

(* Interpret the command list sequentially, failing (with the trace
   semantics violated) on any divergence from the model. *)
let run_model cmds =
  let reg = Registry.create 1 in
  let slots = Array.make n_slots None in
  let cur = ref 1 in
  let prev = ref None in
  let next_gen = ref 2 in
  let publishes = ref 0 in
  let rollbacks = ref 0 in
  let check_held ctx =
    Array.iteri
      (fun s held ->
        match held with
        | None -> ()
        | Some e ->
          if Registry.is_freed e then
            failwith
              (Printf.sprintf "%s: slot %d holds freed generation %d" ctx s
                 (Registry.generation e)))
      slots;
    if Registry.current_generation reg <> !cur then
      failwith
        (Printf.sprintf "%s: current generation %d, model says %d" ctx
           (Registry.current_generation reg) !cur)
  in
  List.iter
    (fun cmd ->
      (match cmd with
       | Pin s ->
         if slots.(s) = None then begin
           let e = Registry.pin reg in
           if Registry.is_freed e then failwith "pin returned a freed epoch";
           if Registry.generation e <> !cur then
             failwith
               (Printf.sprintf "pin returned generation %d, model says %d"
                  (Registry.generation e) !cur);
           if Registry.payload e <> Registry.generation e then
             failwith "payload does not echo its generation";
           slots.(s) <- Some e
         end
       | Unpin s -> (
         match slots.(s) with
         | Some e ->
           Registry.unpin e;
           slots.(s) <- None
         | None -> ())
       | Publish ->
         (* generation numbers are never reused, so with a sequential
            writer the next one is deterministic — returning anything else
            breaks monotonicity *)
         let g = Registry.publish reg !next_gen in
         if g <> !next_gen then
           failwith (Printf.sprintf "publish returned %d, expected %d" g !next_gen);
         prev := Some !cur;
         cur := g;
         incr next_gen;
         incr publishes
       | Rollback -> (
         match (Registry.rollback reg, !prev) with
         | None, None -> ()
         | Some g, Some pg when g = pg ->
           cur := pg;
           prev := None;
           incr rollbacks
         | restored, expected ->
           let show = function None -> "none" | Some g -> string_of_int g in
           failwith
             (Printf.sprintf "rollback restored %s, model says %s" (show restored)
                (show expected)))
       | Retire -> ignore (Registry.retire reg : int));
      check_held (cmd_to_string cmd))
    cmds;
  (* quiescence: drop every pin, supersede the current entry once so the
     rollback-target slot rotates, then one drain must free everything
     except the new current and its rollback target *)
  Array.iteri
    (fun s held ->
      match held with
      | Some e ->
        Registry.unpin e;
        slots.(s) <- None
      | None -> ())
    slots;
  ignore (Registry.publish reg !next_gen : int);
  incr publishes;
  ignore (Registry.retire reg : int);
  let s = Registry.stats reg in
  if Registry.pinned reg <> 0 then failwith "pins did not drain to zero";
  if s.Registry.retired_live <> 0 then
    failwith (Printf.sprintf "%d retired entries survived quiescence" s.Registry.retired_live);
  if s.Registry.generations <> 1 + !publishes then
    failwith
      (Printf.sprintf "published %d generations, model says %d" s.Registry.generations
         (1 + !publishes));
  if s.Registry.freed <> s.Registry.generations - 2 then
    failwith
      (Printf.sprintf "freed %d of %d generations (want all but current + rollback target)"
         s.Registry.freed s.Registry.generations);
  if s.Registry.rolled_back <> !rollbacks then
    failwith
      (Printf.sprintf "registry counted %d rollbacks, model says %d" s.Registry.rolled_back
         !rollbacks);
  true

let prop_registry_model =
  QCheck.Test.make ~count:300 ~name:"registry agrees with pin/publish/retire model" arb_cmds
    run_model

(* ---------- multi-domain hammer ---------- *)

(* Readers pin, validate, hold across a delay (so publishes and retires
   land mid-hold), re-validate, unpin. The writer publishes 200
   generations with a retire after each. Any freed-while-pinned or
   payload/generation tear is reported by the reader that saw it. *)
let hammer_smoke () =
  let reg = Registry.create 1 in
  let stop = Atomic.make false in
  let reader () =
    let checked = ref 0 in
    let failures = ref [] in
    let once () =
      let e = Registry.pin reg in
      if Registry.is_freed e then failures := "freed at pin" :: !failures;
      if Registry.payload e <> Registry.generation e then
        failures := "payload tear" :: !failures;
      for _ = 1 to 50 do
        Domain.cpu_relax ()
      done;
      if Registry.is_freed e then failures := "freed while held" :: !failures;
      Registry.unpin e;
      incr checked
    in
    (* at least one validated pin even if the writer finishes before this
       domain gets scheduled *)
    once ();
    while not (Atomic.get stop) do
      once ()
    done;
    (!checked, !failures)
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn reader) in
  for g = 2 to 201 do
    let got = Registry.publish reg g in
    Alcotest.(check int) "writer generations deterministic" g got;
    ignore (Registry.retire reg : int)
  done;
  Atomic.set stop true;
  let outcomes = Array.map Domain.join domains in
  Array.iteri
    (fun i (checked, failures) ->
      Alcotest.(check (list string)) (Printf.sprintf "reader %d clean" i) [] failures;
      Alcotest.(check bool) (Printf.sprintf "reader %d made progress" i) true (checked > 0))
    outcomes;
  (* quiescent drain: supersede once, then everything but current+previous
     frees even after the concurrent storm *)
  ignore (Registry.publish reg 202 : int);
  ignore (Registry.retire reg : int);
  let s = Registry.stats reg in
  Alcotest.(check int) "retire list drained" 0 s.Registry.retired_live;
  Alcotest.(check int) "pins drained" 0 (Registry.pinned reg);
  Alcotest.(check int) "all superseded epochs freed" (s.Registry.generations - 2)
    s.Registry.freed

(* ---------- reader hot path: zero allocation ---------- *)

let pin_unpin_zero_alloc () =
  let reg = Registry.create 0 in
  for _ = 1 to 100 do
    Registry.unpin (Registry.pin reg)
  done;
  let n = 100_000 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    Registry.unpin (Registry.pin reg)
  done;
  let delta = Gc.minor_words () -. before in
  let per_op = delta /. float_of_int n in
  if per_op >= 0.01 then
    Alcotest.failf "pin/unpin allocates: %.0f minor words over %d ops" delta n

let () =
  Alcotest.run "epoch"
    [ ("model", [ QCheck_alcotest.to_alcotest prop_registry_model ]);
      ( "concurrent",
        [ Alcotest.test_case "multi-domain hammer" `Quick hammer_smoke;
          Alcotest.test_case "pin/unpin allocates nothing" `Quick pin_unpin_zero_alloc
        ] )
    ]
