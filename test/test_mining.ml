open Repro_mining
module Label_path = Repro_pathexpr.Label_path

let path_list = Alcotest.(list (list int))

(* --- count_subpaths --- *)

let test_counts_basic () =
  (* workload from Figure 7: {A.D, C, A.D} over labels A=0 B=1 C=2 D=3 *)
  let queries = [ [ 0; 3 ]; [ 2 ]; [ 0; 3 ] ] in
  let counts = Path_miner.count_subpaths queries in
  let get p = List.assoc_opt p counts in
  Alcotest.(check (option int)) "A" (Some 2) (get [ 0 ]);
  Alcotest.(check (option int)) "D" (Some 2) (get [ 3 ]);
  Alcotest.(check (option int)) "A.D" (Some 2) (get [ 0; 3 ]);
  Alcotest.(check (option int)) "C" (Some 1) (get [ 2 ]);
  Alcotest.(check (option int)) "absent" None (get [ 1 ])

let test_counts_once_per_query () =
  (* 'a' occurs twice in the query but the query counts once *)
  let counts = Path_miner.count_subpaths [ [ 0; 1; 0 ] ] in
  Alcotest.(check (option int)) "a counted once" (Some 1) (List.assoc_opt [ 0 ] counts);
  Alcotest.(check (option int)) "a.b" (Some 1) (List.assoc_opt [ 0; 1 ] counts);
  Alcotest.(check (option int)) "b.a" (Some 1) (List.assoc_opt [ 1; 0 ] counts)

let test_max_length () =
  let counts = Path_miner.count_subpaths ~max_length:1 [ [ 0; 1; 2 ] ] in
  Alcotest.(check int) "only singles" 3 (List.length counts)

(* --- frequent, Figure 7 semantics --- *)

let test_figure7_pruning () =
  (* minSup = 0.6 over 3 queries: threshold 1.8, so count 2 survives *)
  let queries = [ [ 0; 3 ]; [ 2 ]; [ 0; 3 ] ] in
  let freq = Path_miner.frequent ~min_support:0.6 queries in
  Alcotest.check path_list "A, D, A.D survive" [ [ 0 ]; [ 0; 3 ]; [ 3 ] ] freq

let test_threshold_equality_keeps () =
  (* support exactly equal to minSup is frequent *)
  let queries = [ [ 0 ]; [ 1 ] ] in
  let freq = Path_miner.frequent ~min_support:0.5 queries in
  Alcotest.check path_list "both kept" [ [ 0 ]; [ 1 ] ] freq

let test_threshold_boundary_miner_matches_index () =
  (* an exactly-integral threshold (minSup 0.5 over 4 queries = count 2)
     must land on the same side in the standalone miner and in the index
     construction: both compare counts against the shared
     [Path_miner.support_threshold] with [>=], so a count-2 path is kept
     by both and a count-1 path pruned by both *)
  let module F = Test_support.Fixtures in
  let g = F.movie_db () in
  let an = F.path g [ "actor"; "name" ] in
  let mt = F.path g [ "movie"; "title" ] in
  let workload = [ an; an; mt; F.path g [ "name" ] ] in
  Alcotest.(check int) "integral threshold" 2
    (Path_miner.support_count ~min_support:0.5 ~n_queries:4);
  let freq = Path_miner.frequent ~min_support:0.5 workload in
  Alcotest.(check bool) "boundary path kept by the miner" true (List.mem an freq);
  Alcotest.(check bool) "below-threshold path pruned by the miner" false (List.mem mt freq);
  let apex = Repro_apex.Apex.build_adapted g ~workload ~min_support:0.5 in
  let locate p =
    Repro_apex.Hash_tree.locate (Repro_apex.Apex.tree apex) ~rev_path:(List.rev p)
  in
  (match locate an with
   | Some (Repro_apex.Hash_tree.Exact _) -> ()
   | Some (Repro_apex.Hash_tree.Approx _) | None ->
     Alcotest.fail "boundary path must be indexed exactly");
  match locate mt with
  | Some (Repro_apex.Hash_tree.Exact _) ->
    Alcotest.fail "pruned path must not get an exact slot"
  | Some (Repro_apex.Hash_tree.Approx _) | None -> ()

let test_support_count_float_boundary () =
  (* regression: the old float threshold compared counts against
     [min_support *. n_queries] directly, so products that are not
     representable (0.1 * 30 = 3.0000000000000004) pushed a path with
     exactly the boundary count below the bar on some (minsup, window)
     pairs and above it on others. The integer threshold snaps
     near-integral products before ceiling. *)
  Alcotest.(check int) "0.1 x 30 snaps to 3" 3
    (Path_miner.support_count ~min_support:0.1 ~n_queries:30);
  Alcotest.(check int) "0.7 x 10 snaps to 7" 7
    (Path_miner.support_count ~min_support:0.7 ~n_queries:10);
  Alcotest.(check int) "non-integral products still ceil" 16
    (Path_miner.support_count ~min_support:0.04 ~n_queries:400);
  Alcotest.(check int) "paper example: 0.6 x 3 -> 2" 2
    (Path_miner.support_count ~min_support:0.6 ~n_queries:3);
  (* a count exactly at the snapped boundary is frequent *)
  let queries =
    List.init 30 (fun i -> if i < 3 then [ 0; 1 ] else [ 2 ])
  in
  let freq = Path_miner.frequent ~min_support:0.1 queries in
  Alcotest.(check bool) "3-of-30 at minsup 0.1 is frequent" true
    (List.mem [ 0; 1 ] freq)

let test_broken_antimonotonicity_example () =
  (* A.B.C frequent does NOT make the non-contiguous A.C frequent — it is
     never even a candidate (Section 5.2) *)
  let queries = [ [ 0; 1; 2 ]; [ 0; 1; 2 ] ] in
  let freq = Path_miner.frequent ~min_support:1.0 queries in
  Alcotest.(check bool) "A.C not present" false (List.mem [ 0; 2 ] freq);
  Alcotest.(check bool) "A.B.C present" true (List.mem [ 0; 1; 2 ] freq)

let test_required_includes_singles () =
  let queries = [ [ 0; 3 ]; [ 0; 3 ] ] in
  let required = Path_miner.required ~min_support:1.0 ~all_labels:[ 0; 1; 2; 3 ] queries in
  (* all four labels plus the frequent A.D *)
  Alcotest.check path_list "singles + frequent"
    [ [ 0 ]; [ 0; 3 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    required

(* --- apriori agrees with the naive miner --- *)

let gen_workload =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (list_size (int_range 1 6) (int_bound 4)))

let arb_workload =
  QCheck.make ~print:QCheck.Print.(list (list int)) gen_workload

let prop_apriori_equals_naive =
  QCheck.Test.make ~count:200 ~name:"apriori = naive one-scan" arb_workload
    (fun queries ->
      List.for_all
        (fun min_support ->
          let a = Apriori.frequent ~min_support queries in
          let b = Path_miner.frequent ~min_support queries in
          a = b)
        [ 0.1; 0.3; 0.5; 0.9 ])

let prop_antimonotone_contiguous =
  QCheck.Test.make ~count:200 ~name:"contiguous subpaths of frequent are frequent" arb_workload
    (fun queries ->
      let freq = Path_miner.frequent ~min_support:0.4 queries in
      List.for_all
        (fun p -> List.for_all (fun sub -> List.mem sub freq) (Label_path.subpaths p))
        freq)

let prop_monotone_in_minsup =
  QCheck.Test.make ~count:100 ~name:"higher minSup yields fewer paths" arb_workload
    (fun queries ->
      let low = Path_miner.frequent ~min_support:0.2 queries in
      let high = Path_miner.frequent ~min_support:0.8 queries in
      List.for_all (fun p -> List.mem p low) high)

let test_apriori_levels () =
  let queries = [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1 ] ] in
  let levels = Apriori.levels ~min_support:0.6 queries in
  Alcotest.(check int) "3 levels" 3 (Array.length levels);
  Alcotest.check path_list "L1" [ [ 0 ]; [ 1 ]; [ 2 ] ] levels.(0);
  Alcotest.check path_list "L2" [ [ 0; 1 ]; [ 1; 2 ] ] levels.(1);
  Alcotest.check path_list "L3" [ [ 0; 1; 2 ] ] levels.(2)

let () =
  Alcotest.run "mining"
    [ ( "path_miner",
        [ Alcotest.test_case "basic counting" `Quick test_counts_basic;
          Alcotest.test_case "once per query" `Quick test_counts_once_per_query;
          Alcotest.test_case "max_length" `Quick test_max_length;
          Alcotest.test_case "figure 7 pruning" `Quick test_figure7_pruning;
          Alcotest.test_case "threshold equality" `Quick test_threshold_equality_keeps;
          Alcotest.test_case "integral threshold: miner = index" `Quick
            test_threshold_boundary_miner_matches_index;
          Alcotest.test_case "float boundary support counts" `Quick
            test_support_count_float_boundary;
          Alcotest.test_case "broken anti-monotonicity" `Quick test_broken_antimonotonicity_example;
          Alcotest.test_case "required includes singles" `Quick test_required_includes_singles
        ] );
      ( "apriori",
        [ Alcotest.test_case "levels" `Quick test_apriori_levels;
          QCheck_alcotest.to_alcotest prop_apriori_equals_naive;
          QCheck_alcotest.to_alcotest prop_antimonotone_contiguous;
          QCheck_alcotest.to_alcotest prop_monotone_in_minsup
        ] )
    ]
