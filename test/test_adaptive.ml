module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query
module Query_log = Repro_workload.Query_log
module Self_tuning = Repro_adaptive.Self_tuning

(* --- Query_log --- *)

let test_log_basics () =
  let log = Query_log.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Query_log.length log);
  Query_log.record log [ 1 ];
  Query_log.record log [ 2 ];
  Alcotest.(check int) "two entries" 2 (Query_log.length log);
  Alcotest.(check (list (list int))) "window" [ [ 1 ]; [ 2 ] ] (Query_log.to_workload log)

let test_log_window_slides () =
  let log = Query_log.create ~capacity:3 in
  List.iter (fun i -> Query_log.record log [ i ]) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "bounded" 3 (Query_log.length log);
  Alcotest.(check int) "total keeps counting" 5 (Query_log.total_recorded log);
  Alcotest.(check (list (list int))) "oldest first" [ [ 3 ]; [ 4 ]; [ 5 ] ]
    (Query_log.to_workload log)

let test_log_record_query () =
  let g = F.movie_db () in
  let labels = G.labels g in
  let log = Query_log.create ~capacity:10 in
  Query_log.record_query log labels (Query.Qtype1 [ "actor"; "name" ]);
  Query_log.record_query log labels (Query.Qtype3 ([ "title" ], "Waterworld"));
  Query_log.record_query log labels (Query.Qtype2 ("movie", "title"));
  (* recorded via the minimal [movie.title] fallback *)
  Query_log.record_query log labels (Query.Qtype1 [ "unknown" ]);
  (* skipped: unknown label *)
  Alcotest.(check int) "three recorded" 3 (Query_log.length log);
  (* evaluator feedback overrides the fallback: one entry — the longest
     matched rewriting; mining counts contiguous subpaths, so the nested
     shorter rewriting still accrues through it *)
  Query_log.record_query ~q2_paths:[ [ 4; 5 ]; [ 1; 2; 3 ] ] log labels
    (Query.Qtype2 ("movie", "title"));
  Alcotest.(check int) "single entry per query" 4 (Query_log.length log);
  (match List.rev (Query_log.to_workload log) with
   | last :: _ -> Alcotest.(check (list int)) "longest rewriting wins" [ 1; 2; 3 ] last
   | [] -> Alcotest.fail "expected entries");
  (* an unresolvable fallback still records nothing *)
  Query_log.record_query log labels (Query.Qtype2 ("movie", "unknown"));
  Alcotest.(check int) "unknown q2 skipped" 4 (Query_log.length log)

let test_log_q2_single_support () =
  (* regression: a QTYPE2 with several matched rewritings used to record
     every one, so one executed query contributed support several times
     and could promote paths no full query ever used at that rate *)
  let g = F.movie_db () in
  let labels = G.labels g in
  let log = Query_log.create ~capacity:10 in
  Query_log.record_query ~q2_paths:[ [ 4; 5 ]; [ 1; 2 ] ] log labels
    (Query.Qtype2 ("movie", "title"));
  Alcotest.(check int) "exactly one entry" 1 (Query_log.length log);
  Alcotest.(check int) "one total" 1 (Query_log.total_recorded log);
  (* equal lengths: ties broken by path order, deterministically *)
  Query_log.record_query ~q2_paths:[ [ 4; 5 ]; [ 1; 2 ] ] log labels
    (Query.Qtype2 ("movie", "title"));
  Query_log.record_query ~q2_paths:[ [ 1; 2 ]; [ 4; 5 ] ] log labels
    (Query.Qtype2 ("movie", "title"));
  match List.rev (Query_log.to_workload log) with
  | a :: b :: _ ->
    Alcotest.(check (list int)) "order-independent tie-break" a b;
    Alcotest.(check (list int)) "smallest path wins ties" [ 1; 2 ] a
  | _ -> Alcotest.fail "expected two entries"

let test_log_clear () =
  let log = Query_log.create ~capacity:3 in
  Query_log.record log [ 1 ];
  Query_log.clear log;
  Alcotest.(check int) "cleared" 0 (Query_log.length log);
  Alcotest.(check (list (list int))) "empty window" [] (Query_log.to_workload log)

let test_log_clear_releases () =
  (* regression: [clear] used to only reset the counter, so the ring kept
     strong references to up to [capacity] label paths until they were
     overwritten — a leak for long-lived tuners. The path must be
     heap-allocated at runtime (a literal would be statically allocated
     and never collected). *)
  let log = Query_log.create ~capacity:4 in
  let w = Weak.create 1 in
  let record () =
    let path = List.init 3 (fun i -> i + 100) in
    Weak.set w 0 (Some path);
    Query_log.record log path
  in
  record ();
  Gc.full_major ();
  Alcotest.(check bool) "retained while logged" true (Weak.check w 0);
  Query_log.clear log;
  Gc.full_major ();
  Alcotest.(check bool) "released by clear" false (Weak.check w 0)

let test_log_rejects_bad_capacity () =
  match Query_log.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_log_wraparound_boundaries () =
  (* exactly at capacity: nothing lost yet *)
  let log = Query_log.create ~capacity:5 in
  List.iter (fun i -> Query_log.record log [ i ]) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "full, not wrapped" 5 (Query_log.length log);
  Alcotest.(check (list (list int))) "all present" [ [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [ 5 ] ]
    (Query_log.to_workload log);
  (* capacity + 1: the single oldest entry falls off *)
  Query_log.record log [ 6 ];
  Alcotest.(check int) "still bounded" 5 (Query_log.length log);
  Alcotest.(check (list (list int))) "oldest dropped" [ [ 2 ]; [ 3 ]; [ 4 ]; [ 5 ]; [ 6 ] ]
    (Query_log.to_workload log);
  (* several full wraps: the window is exactly the last [capacity] entries,
     oldest first, and total_recorded counts everything ever seen *)
  for i = 7 to 17 do
    Query_log.record log [ i ]
  done;
  Alcotest.(check int) "total counts overwritten entries" 17 (Query_log.total_recorded log);
  Alcotest.(check (list (list int))) "window after wraps"
    [ [ 13 ]; [ 14 ]; [ 15 ]; [ 16 ]; [ 17 ] ]
    (Query_log.to_workload log)

(* --- Self_tuning --- *)

let test_adapts_to_hot_path () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:10 ~min_support:0.5 g in
  let n0, _ = Repro_apex.Apex.stats (Self_tuning.apex st) in
  for _ = 1 to 12 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]))
  done;
  Alcotest.(check bool) "refreshed at least once" true (Self_tuning.refreshes st >= 1);
  let n1, _ = Repro_apex.Apex.stats (Self_tuning.apex st) in
  Alcotest.(check bool) "hot path got its own node" true (n1 > n0);
  (* actor.name is now a stored suffix: a direct hash hit *)
  let cost = Repro_storage.Cost.create () in
  ignore (Self_tuning.query ~cost st (Query.Qtype1 [ "actor"; "name" ]));
  Alcotest.(check int) "no joins" 0 cost.Repro_storage.Cost.join_edges

let test_results_never_change () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:5 ~min_support:0.3 g in
  let reference = Repro_apex.Apex.build g in
  let queries =
    [ Query.Qtype1 [ "actor"; "name" ];
      Query.Qtype1 [ "name" ];
      Query.Qtype2 ("director", "title");
      Query.Qtype3 ([ "title" ], "Waterworld");
      Query.Qtype1 [ "movie"; "title" ]
    ]
  in
  for _ = 1 to 8 do
    List.iter
      (fun q ->
        Alcotest.(check (array int))
          (Query.to_string q)
          (Repro_apex.Apex_query.eval_query reference q)
          (Self_tuning.query st q))
      queries
  done

let test_workload_shift_ages_out () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~log_capacity:20 ~refresh_every:20 ~min_support:0.5 g in
  (* phase 1: hot on actor.name *)
  for _ = 1 to 20 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]))
  done;
  let locate_exact path =
    match
      Repro_apex.Hash_tree.lookup_slot (Repro_apex.Apex.tree (Self_tuning.apex st))
        ~rev_path:(List.rev (F.path g path))
    with
    | Some slot -> Repro_apex.Hash_tree.slot_get slot <> None
    | None -> false
  in
  Alcotest.(check bool) "actor.name indexed" true (locate_exact [ "actor"; "name" ]);
  (* phase 2: interest moves entirely to movie.title; the window slides *)
  for _ = 1 to 20 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "movie"; "title" ]))
  done;
  Alcotest.(check bool) "movie.title indexed" true (locate_exact [ "movie"; "title" ]);
  (* actor.name aged out: its lookup now lands on a shorter suffix *)
  let tree = Repro_apex.Apex.tree (Self_tuning.apex st) in
  (match
     Repro_apex.Hash_tree.locate tree ~rev_path:(List.rev (F.path g [ "actor"; "name" ]))
   with
   | Some (Repro_apex.Hash_tree.Approx _) -> ()
   | Some (Repro_apex.Hash_tree.Exact _) -> Alcotest.fail "actor.name should have aged out"
   | None -> Alcotest.fail "name label vanished")

let test_forced_refresh_counts () =
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:1000 g in
  ignore (Self_tuning.query st (Query.Qtype1 [ "name" ]));
  Alcotest.(check int) "no periodic refresh yet" 0 (Self_tuning.refreshes st);
  Self_tuning.force_refresh st;
  Alcotest.(check int) "forced" 1 (Self_tuning.refreshes st)

let test_refresh_pacing () =
  (* refreshes land exactly when the policy says: every [refresh_every]
     recorded queries, so 35 queries at a 10-query window = 3 refreshes *)
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:10 ~min_support:0.5 g in
  for i = 1 to 35 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]));
    let expected = i / 10 in
    Alcotest.(check int) (Printf.sprintf "refreshes after %d queries" i) expected
      (Self_tuning.refreshes st)
  done;
  Alcotest.(check int) "no aborts without faults" 0 (Self_tuning.aborted_refreshes st)

let test_forced_refresh_consumes_window () =
  (* a forced refresh mid-window resets the pacing clock: the periodic
     policy must not double-count the queries the forced refresh consumed *)
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:10 ~min_support:0.5 g in
  for _ = 1 to 7 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]))
  done;
  Self_tuning.force_refresh st;
  Alcotest.(check int) "forced counts once" 1 (Self_tuning.refreshes st);
  (* 9 more queries: window is 7 + 9 = 16 since the last periodic mark, but
     only 9 since the forced one — no periodic refresh yet *)
  for _ = 1 to 9 do
    ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]))
  done;
  Alcotest.(check int) "window restarted at the forced refresh" 1 (Self_tuning.refreshes st);
  (* the 10th query since the forced refresh triggers the periodic one *)
  ignore (Self_tuning.query st (Query.Qtype1 [ "actor"; "name" ]));
  Alcotest.(check int) "periodic fires a full window later" 2 (Self_tuning.refreshes st)

let test_q2_workload_extends_index () =
  (* regression for the record_query Qtype2 drop: partial-match queries
     must feed the log (via their matched rewritings), so a Q2-heavy
     workload extends the index with the concrete paths it touches —
     here the length-3 rewriting director.movie.title *)
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:8 ~min_support:0.4 g in
  let locate_rev3 () =
    Repro_apex.Hash_tree.locate
      (Repro_apex.Apex.tree (Self_tuning.apex st))
      ~rev_path:(List.rev (F.path g [ "director"; "movie"; "title" ]))
  in
  (match locate_rev3 () with
   | Some (Repro_apex.Hash_tree.Exact _) -> Alcotest.fail "APEX0 must not index length-3 paths"
   | Some (Repro_apex.Hash_tree.Approx _) | None -> ());
  let reference = Repro_apex.Apex.build g in
  let q = Query.Qtype2 ("director", "title") in
  let expected = Repro_apex.Apex_query.eval_query reference q in
  for _ = 1 to 10 do
    Alcotest.(check (array int)) "q2 answers stable" expected (Self_tuning.query st q)
  done;
  Alcotest.(check bool) "refreshed at least once" true (Self_tuning.refreshes st >= 1);
  match locate_rev3 () with
  | Some (Repro_apex.Hash_tree.Exact _) -> ()
  | Some (Repro_apex.Hash_tree.Approx _) | None ->
    Alcotest.fail "q2 rewriting director.movie.title should be indexed after refresh"

let test_update_interleaves_with_queries () =
  (* data updates through the tuner: the maintained index answers like the
     mutated document immediately, the update is counted, and the next
     periodic refresh starts from the maintained index *)
  let g = F.movie_db () in
  let st = Self_tuning.create ~refresh_every:6 ~min_support:0.4 g in
  let q = Query.Qtype1 [ "actor"; "name" ] in
  for _ = 1 to 4 do
    ignore (Self_tuning.query st q)
  done;
  let frag =
    Repro_xml.Xml_tree.element "actor"
      ~children:
        [ Repro_xml.Xml_tree.Element
            (Repro_xml.Xml_tree.element "name" ~children:[ Repro_xml.Xml_tree.Text "New" ])
        ]
  in
  Self_tuning.update st [ Repro_update.Update.Insert_subtree { parent = 0; fragment = frag } ];
  Alcotest.(check int) "update counted" 1 (Self_tuning.updates st);
  let g' = Repro_apex.Apex.graph (Self_tuning.apex st) in
  let expected = Repro_pathexpr.Naive_eval.eval_query g' q in
  Alcotest.(check (array int)) "maintained answer sees the insert" expected
    (Self_tuning.query st q);
  for _ = 1 to 6 do
    Alcotest.(check (array int)) "stable across the refresh" expected (Self_tuning.query st q)
  done;
  Alcotest.(check bool) "refreshed after the update" true (Self_tuning.refreshes st >= 1);
  Alcotest.(check int) "no aborted updates" 0 (Self_tuning.aborted_updates st)

let test_snapshot_rollback_on_faulted_refresh () =
  (* a refresh whose commit crashes rolls back to the previous epoch and
     keeps answering; the abort is visible in both counters *)
  let g = F.movie_db () in
  let pager = Repro_storage.Pager.create ~page_size:512 () in
  let fault = Repro_storage.Fault.create ~seed:11 () in
  Repro_storage.Pager.set_fault pager (Some fault);
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:8 in
  let store = Repro_storage.Extent_store.create ~cache_entries:0 pool in
  let snap = Repro_apex.Apex_persist.Snapshot.create store in
  let st =
    Self_tuning.create ~refresh_every:10 ~min_support:0.5 ~pool ~snapshot:snap g
  in
  let reference = Repro_apex.Apex.build g in
  let q = Query.Qtype1 [ "actor"; "name" ] in
  let expected = Repro_apex.Apex_query.eval_query reference q in
  (* crash the next write — it will be part of the refresh's re-materialize
     or commit *)
  Repro_storage.Fault.arm_at fault Repro_storage.Fault.Torn_write ~site:0;
  for _ = 1 to 12 do
    Alcotest.(check (array int)) "answers stay correct across the abort" expected
      (Self_tuning.query st q)
  done;
  Alcotest.(check int) "abort counted" 1 (Self_tuning.aborted_refreshes st);
  Alcotest.(check int) "abort visible in io stats" 1
    (Repro_storage.Pager.stats pager).Repro_storage.Io_stats.refresh_aborts;
  Alcotest.(check int) "aborted refresh not counted as done" 0 (Self_tuning.refreshes st);
  (* the next full window retries and succeeds (the one-shot fault is gone) *)
  for _ = 1 to 10 do
    Alcotest.(check (array int)) "still correct" expected (Self_tuning.query st q)
  done;
  Alcotest.(check int) "later refresh lands" 1 (Self_tuning.refreshes st);
  Alcotest.(check int) "no further aborts" 1 (Self_tuning.aborted_refreshes st)

let () =
  Alcotest.run "adaptive"
    [ ( "query_log",
        [ Alcotest.test_case "basics" `Quick test_log_basics;
          Alcotest.test_case "window slides" `Quick test_log_window_slides;
          Alcotest.test_case "record_query" `Quick test_log_record_query;
          Alcotest.test_case "q2_single_support" `Quick test_log_q2_single_support;
          Alcotest.test_case "clear" `Quick test_log_clear;
          Alcotest.test_case "clear releases retained paths" `Quick test_log_clear_releases;
          Alcotest.test_case "bad capacity" `Quick test_log_rejects_bad_capacity;
          Alcotest.test_case "wraparound boundaries" `Quick test_log_wraparound_boundaries
        ] );
      ( "self_tuning",
        [ Alcotest.test_case "adapts to hot path" `Quick test_adapts_to_hot_path;
          Alcotest.test_case "results never change" `Quick test_results_never_change;
          Alcotest.test_case "workload shift ages out" `Quick test_workload_shift_ages_out;
          Alcotest.test_case "forced refresh" `Quick test_forced_refresh_counts;
          Alcotest.test_case "refresh pacing" `Quick test_refresh_pacing;
          Alcotest.test_case "forced refresh consumes window" `Quick
            test_forced_refresh_consumes_window;
          Alcotest.test_case "q2 workload extends the index" `Quick
            test_q2_workload_extends_index;
          Alcotest.test_case "updates interleave with queries" `Quick
            test_update_interleaves_with_queries;
          Alcotest.test_case "rollback on faulted refresh" `Quick
            test_snapshot_rollback_on_faulted_refresh
        ] )
    ]
