open Repro_storage
module Edge_set = Repro_graph.Edge_set
module F = Test_support.Fixtures

let edge_set = Alcotest.testable Edge_set.pp Edge_set.equal

(* --- Pager --- *)

let test_pager_alloc_rw () =
  let p = Pager.create ~page_size:128 () in
  let a = Pager.alloc p and b = Pager.alloc p in
  Alcotest.(check int) "pids dense" 1 (b - a);
  let buf = Bytes.make 128 'x' in
  Pager.write p a buf;
  Alcotest.(check bytes) "read back" buf (Pager.read p a);
  Alcotest.(check bytes) "other page untouched" (Bytes.make 128 '\000') (Pager.read p b);
  Alcotest.(check int) "reads counted" 2 (Pager.stats p).Io_stats.disk_reads;
  Alcotest.(check int) "writes counted" 1 (Pager.stats p).Io_stats.disk_writes

let test_pager_rejects () =
  let p = Pager.create ~page_size:128 () in
  let a = Pager.alloc p in
  Alcotest.check_raises "bad size"
    (Invalid_argument "Pager.write: buffer is 4 bytes, page size is 128")
    (fun () -> Pager.write p a (Bytes.make 4 ' '));
  (match Pager.read p 99 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument on unknown pid")

(* --- Buffer pool --- *)

let test_pool_hit_miss () =
  let p = Pager.create ~page_size:128 () in
  let pids = Array.init 4 (fun _ -> Pager.alloc p) in
  Array.iteri (fun i pid -> Pager.write p pid (Bytes.make 128 (Char.chr (65 + i)))) pids;
  Io_stats.reset (Pager.stats p);
  let pool = Buffer_pool.create p ~capacity:2 in
  ignore (Buffer_pool.get pool pids.(0));
  ignore (Buffer_pool.get pool pids.(0));
  let s = Pager.stats p in
  Alcotest.(check int) "1 miss" 1 s.Io_stats.cache_misses;
  Alcotest.(check int) "1 hit" 1 s.Io_stats.cache_hits;
  Alcotest.(check int) "1 disk read" 1 s.Io_stats.disk_reads

let test_pool_lru_eviction () =
  let p = Pager.create ~page_size:128 () in
  let pids = Array.init 3 (fun _ -> Pager.alloc p) in
  Io_stats.reset (Pager.stats p);
  let pool = Buffer_pool.create p ~capacity:2 in
  ignore (Buffer_pool.get pool pids.(0));
  ignore (Buffer_pool.get pool pids.(1));
  ignore (Buffer_pool.get pool pids.(0));
  (* LRU is page 1; loading page 2 evicts it *)
  ignore (Buffer_pool.get pool pids.(2));
  ignore (Buffer_pool.get pool pids.(0));
  (* page 0 still cached *)
  Alcotest.(check int) "page 0 stayed hot" 2 (Pager.stats p).Io_stats.cache_hits;
  ignore (Buffer_pool.get pool pids.(1));
  (* page 1 was evicted: another miss *)
  Alcotest.(check int) "page 1 evicted" 4 (Pager.stats p).Io_stats.cache_misses

let test_pool_write_through () =
  let p = Pager.create ~page_size:128 () in
  let pid = Pager.alloc p in
  let pool = Buffer_pool.create p ~capacity:2 in
  ignore (Buffer_pool.get pool pid);
  let buf = Bytes.make 128 'z' in
  Buffer_pool.write pool pid buf;
  Alcotest.(check bytes) "cache updated" buf (Buffer_pool.get pool pid);
  Alcotest.(check bytes) "disk updated" buf (Pager.read p pid)

let test_pool_flush () =
  let p = Pager.create ~page_size:128 () in
  let pid = Pager.alloc p in
  let pool = Buffer_pool.create p ~capacity:2 in
  ignore (Buffer_pool.get pool pid);
  Alcotest.(check int) "cached" 1 (Buffer_pool.cached_pages pool);
  Buffer_pool.flush pool;
  Alcotest.(check int) "emptied" 0 (Buffer_pool.cached_pages pool);
  ignore (Buffer_pool.get pool pid);
  Alcotest.(check int) "cold again" 2 (Pager.stats p).Io_stats.cache_misses

let prop_pool_invariants =
  (* random Get/Write/Flush traces against a shadow model: cached_pages
     never exceeds capacity, hit+miss reconciles with the pager's counters,
     and write-through means the disk alone reconstructs every page *)
  QCheck.Test.make ~count:200 ~name:"buffer pool invariants on random traces"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 120) (pair (int_bound 9) (int_bound 11)))
    (fun trace ->
      let page_size = 64 in
      let n_pids = 12 and capacity = 4 in
      let p = Pager.create ~page_size () in
      let pids = Array.init n_pids (fun _ -> Pager.alloc p) in
      let pool = Buffer_pool.create p ~capacity in
      Io_stats.reset (Pager.stats p);
      let model = Array.init n_pids (fun _ -> Bytes.make page_size '\000') in
      let gets = ref 0 and writes = ref 0 and stamp = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, i) ->
          (match op with
           | 0 | 1 | 2 | 3 | 4 | 5 ->
             incr gets;
             if not (Bytes.equal (Buffer_pool.get pool pids.(i)) model.(i)) then ok := false
           | 6 | 7 | 8 ->
             incr writes;
             incr stamp;
             let buf = Bytes.make page_size (Char.chr (33 + (!stamp mod 90))) in
             Buffer_pool.write pool pids.(i) buf;
             model.(i) <- buf
           | _ -> Buffer_pool.flush pool);
          if Buffer_pool.cached_pages pool > capacity then ok := false)
        trace;
      (* write-through visibility: drop the cache, the disk must serve the
         model exactly *)
      Buffer_pool.flush pool;
      Array.iteri
        (fun i pid -> if not (Bytes.equal (Pager.read p pid) model.(i)) then ok := false)
        pids;
      let s = Pager.stats p in
      !ok
      && s.Io_stats.cache_hits + s.Io_stats.cache_misses = !gets
      && s.Io_stats.disk_reads = s.Io_stats.cache_misses + n_pids
      && s.Io_stats.disk_writes = !writes)

(* --- fault injection & page checksums --- *)

let test_crc32_known () =
  (* "123456789" -> 0xCBF43926, the standard CRC-32/IEEE check value *)
  Alcotest.(check int) "check value" 0xCBF43926 (Codec.crc32 (Bytes.of_string "123456789"));
  Alcotest.(check int) "windowed" 0xCBF43926
    (Codec.crc32 ~pos:2 ~len:9 (Bytes.of_string "xx123456789yy"))

let with_faulty_pager ?(seed = 42) () =
  let p = Pager.create ~page_size:128 () in
  let f = Fault.create ~seed () in
  Pager.set_fault p (Some f);
  (p, f)

let test_fault_read_flip_healed () =
  let p, f = with_faulty_pager () in
  let pid = Pager.alloc p in
  let buf = Bytes.make 128 'a' in
  Pager.write p pid buf;
  Fault.arm_at f Fault.Read_flip ~site:0;
  Alcotest.(check bytes) "healed by verified re-read" buf (Pager.read p pid);
  Alcotest.(check bool) "retry counted" true ((Pager.stats p).Io_stats.read_retries > 0);
  Alcotest.(check bool) "fired" true (Fault.fired f);
  (* transient: the stored page was never damaged *)
  Alcotest.(check bytes) "clean after heal" buf (Pager.read p pid)

let test_fault_short_read_healed () =
  let p, f = with_faulty_pager () in
  let pid = Pager.alloc p in
  let buf = Bytes.init 128 (fun i -> Char.chr (32 + (i mod 64))) in
  Pager.write p pid buf;
  Fault.arm_at f Fault.Short_read ~site:0;
  Alcotest.(check bytes) "healed by verified re-read" buf (Pager.read p pid)

let test_fault_write_flip_detected () =
  let p, f = with_faulty_pager () in
  let pid = Pager.alloc p in
  let buf = Bytes.make 128 'a' in
  Fault.arm_at f Fault.Write_flip ~site:0;
  Pager.write p pid buf;
  (* silent at write time *)
  Alcotest.(check bool) "landed corrupted" false
    (Bytes.equal buf (Pager.unsafe_borrow p pid));
  (* loud at read time: persistent corruption survives every retry *)
  (match Pager.read p pid with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected checksum failure");
  Alcotest.(check int) "bounded retries" 3 (Pager.stats p).Io_stats.read_retries

let test_fault_torn_write_crashes () =
  let p, f = with_faulty_pager () in
  let pid = Pager.alloc p in
  Pager.write p pid (Bytes.make 128 'a');
  Fault.arm_at f Fault.Torn_write ~site:0;
  (match Pager.write p pid (Bytes.make 128 'b') with
   | exception Fault.Injected { kind = Fault.Torn_write; _ } -> ()
   | () -> Alcotest.fail "expected the simulated crash");
  (* a prefix of the new generation over the tail of the old one *)
  let torn = Pager.unsafe_borrow p pid in
  Alcotest.(check char) "head is new" 'b' (Bytes.get torn 0);
  Alcotest.(check char) "tail is old" 'a' (Bytes.get torn 127);
  (* sector checksums travel with the data: page-level verification cannot
     see the tear — only a higher-level checksum can *)
  Alcotest.(check bytes) "torn page reads back consistently" torn (Pager.read p pid)

let test_fault_enospc_crashes () =
  let p, f = with_faulty_pager () in
  Fault.arm_at f Fault.Enospc ~site:0;
  (match Pager.alloc p with
   | exception Fault.Injected { kind = Fault.Enospc; _ } -> ()
   | _ -> Alcotest.fail "expected allocation failure");
  (* one-shot: the policy disarmed itself *)
  Alcotest.(check int) "next alloc succeeds" 0 (Pager.alloc p)

let test_no_policy_no_verification () =
  (* without a policy the hot path never checksums: hand-corrupted pages
     read back silently, exactly like the pre-fault pager *)
  let p = Pager.create ~page_size:128 () in
  let pid = Pager.alloc p in
  Pager.write p pid (Bytes.make 128 'a');
  Bytes.set (Pager.unsafe_borrow p pid) 7 'X';
  Alcotest.(check char) "corruption invisible" 'X' (Bytes.get (Pager.read p pid) 7)

(* --- Extent store --- *)

let with_store ?(page_size = 128) ?(capacity = 8) () =
  let p = Pager.create ~page_size () in
  let pool = Buffer_pool.create p ~capacity in
  (p, pool, Extent_store.create pool)

let test_extent_roundtrip () =
  let _, _, store = with_store () in
  let sets =
    [ Edge_set.of_list [ (1, 2); (3, 4) ];
      Edge_set.empty;
      Edge_set.of_list (List.init 100 (fun i -> (i, i + 1)));
      Edge_set.of_list [ (Edge_set.null, 0) ]
    ]
  in
  let handles = List.map (Extent_store.append store) sets in
  List.iter2
    (fun set h -> Alcotest.check edge_set "roundtrip" set (Extent_store.load store h))
    sets handles

let test_extent_cost_charged () =
  let _, _, store = with_store ~page_size:128 () in
  (* 128-byte pages hold 16 ints; 100 edges span ≥ 7 pages *)
  let set = Edge_set.of_list (List.init 100 (fun i -> (i, i + 1))) in
  let h = Extent_store.append store set in
  let cost = Cost.create () in
  ignore (Extent_store.load ~cost store h);
  Alcotest.(check int) "edges charged" 100 cost.Cost.extent_edges;
  Alcotest.(check bool) "pages charged" true (cost.Cost.extent_pages >= 7);
  Alcotest.(check int) "pages match prediction" (Extent_store.pages_spanned store h)
    cost.Cost.extent_pages

let test_extent_interleaved_alloc () =
  (* another component allocating pages between appends must not corrupt
     extents (they require consecutive pids) *)
  let p, _, store = with_store () in
  let s1 = Edge_set.of_list [ (1, 1) ] in
  let h1 = Extent_store.append store s1 in
  ignore (Pager.alloc p);
  (* foreign page at the tail *)
  let s2 = Edge_set.of_list (List.init 40 (fun i -> (i, i))) in
  let h2 = Extent_store.append store s2 in
  Alcotest.check edge_set "first intact" s1 (Extent_store.load store h1);
  Alcotest.check edge_set "second spans fresh pages" s2 (Extent_store.load store h2)

let test_extent_delta_chain () =
  let _, _, store = with_store ~page_size:128 () in
  let base_set = Edge_set.of_list (List.init 60 (fun i -> (i, i + 1))) in
  let h0 = Extent_store.append store base_set in
  Alcotest.(check int) "full extent has no links" 0 (Extent_store.chain_length h0);
  let removed = Edge_set.of_list [ (0, 1); (2, 3) ] in
  let added = Edge_set.of_list [ (100, 101) ] in
  let h1 = Extent_store.append_delta store ~base:h0 ~removed ~added in
  Alcotest.(check int) "one link" 1 (Extent_store.chain_length h1);
  Alcotest.check edge_set "chain resolves"
    (Edge_set.union (Edge_set.diff base_set removed) added)
    (Extent_store.load store h1);
  (* write I/O proportional to the change: the blob holds 3 edges + a
     count, not the 58-edge extent *)
  Alcotest.(check bool) "delta blob smaller than the extent" true
    (Extent_store.stored_bytes h1 < Extent_store.stored_bytes h0);
  (* a second link may retract an edge the first one added *)
  let h2 = Extent_store.append_delta store ~base:h1 ~removed:added ~added:Edge_set.empty in
  Alcotest.(check int) "two links" 2 (Extent_store.chain_length h2);
  Alcotest.check edge_set "retraction resolves"
    (Edge_set.diff base_set removed)
    (Extent_store.load store h2);
  (* the base handle still names the original set *)
  Alcotest.check edge_set "base unchanged" base_set (Extent_store.load store h0);
  (* delta handles are in-memory only: snapshot commits must re-encode *)
  match Extent_store.handle_fields h1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "handle_fields must reject a delta handle"

let test_extent_delta_uncached () =
  (* with the decoded-extent LRU off, every load re-reads and re-resolves
     the whole chain — and still agrees *)
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let store = Extent_store.create ~cache_entries:0 pool in
  let base_set = Edge_set.of_list (List.init 30 (fun i -> (2 * i, 2 * i)) ) in
  let h = ref (Extent_store.append store base_set) in
  let expected = ref base_set in
  for i = 0 to 3 do
    let added = Edge_set.of_list [ (1000 + i, i) ] in
    h := Extent_store.append_delta store ~base:!h ~removed:Edge_set.empty ~added;
    expected := Edge_set.union !expected added
  done;
  Alcotest.(check int) "four links" 4 (Extent_store.chain_length !h);
  Alcotest.check edge_set "first load" !expected (Extent_store.load store !h);
  Alcotest.check edge_set "second load identical" !expected (Extent_store.load store !h)

let test_extent_varint_roundtrip () =
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let store = Extent_store.create ~codec:`Delta_varint pool in
  let sets =
    [ Edge_set.of_list [ (1, 2); (3, 4) ];
      Edge_set.empty;
      Edge_set.of_list (List.init 200 (fun i -> (i * 3, i + 1)));
      (* extremes of the packed-edge range *)
      Edge_set.of_list [ (Edge_set.null, (1 lsl 31) - 1); (0, 0) ]
    ]
  in
  let handles = List.map (Extent_store.append store) sets in
  List.iter2
    (fun set h -> Alcotest.check edge_set "varint roundtrip" set (Extent_store.load store h))
    sets handles

let test_extent_varint_compresses () =
  let p = Pager.create ~page_size:8192 () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let raw = Extent_store.create ~codec:`Raw pool in
  let var = Extent_store.create ~codec:`Delta_varint pool in
  (* a dense, sorted extent: consecutive edges under one parent *)
  let set = Edge_set.of_list (List.init 512 (fun i -> (7, i))) in
  let hr = Extent_store.append raw set in
  let hv = Extent_store.append var set in
  Alcotest.(check int) "raw is 8 bytes/int" (512 * 8) (Extent_store.stored_bytes hr);
  Alcotest.(check bool)
    (Printf.sprintf "varint %d bytes << raw" (Extent_store.stored_bytes hv))
    true
    (Extent_store.stored_bytes hv * 3 < Extent_store.stored_bytes hr);
  Alcotest.check edge_set "still equal" (Extent_store.load raw hr) (Extent_store.load var hv)

let prop_extent_varint_roundtrip =
  QCheck.Test.make ~count:150 ~name:"delta-varint extent roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_bound 80) (pair (int_bound 2_000_000) (int_bound 2_000_000)))
    (fun pairs ->
      let p = Pager.create ~page_size:256 () in
      let pool = Buffer_pool.create p ~capacity:8 in
      let store = Extent_store.create ~codec:`Delta_varint pool in
      let set = Edge_set.of_list pairs in
      let h = Extent_store.append store set in
      Edge_set.equal set (Extent_store.load store h))

let prop_extent_roundtrip =
  QCheck.Test.make ~count:100 ~name:"extent store roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_bound 60) (pair (int_bound 1000) (int_bound 1000)))
    (fun pairs ->
      let _, _, store = with_store () in
      let set = Edge_set.of_list pairs in
      let h = Extent_store.append store set in
      Edge_set.equal set (Extent_store.load store h))

let test_extent_block_roundtrip () =
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let store = Extent_store.create ~codec:`Block pool in
  let sets =
    [ Edge_set.of_list [ (1, 2); (3, 4) ];
      Edge_set.empty;
      (* several blocks' worth, runs spanning block boundaries *)
      Edge_set.of_list (List.init 500 (fun i -> (i / 90, i)));
      (* extremes of the packed-edge range *)
      Edge_set.of_list [ (Edge_set.null, (1 lsl 31) - 1); (0, 0) ]
    ]
  in
  let handles = List.map (Extent_store.append store) sets in
  List.iter2
    (fun set h -> Alcotest.check edge_set "block roundtrip" set (Extent_store.load store h))
    sets handles;
  (* delta chains still resolve over the block codec *)
  let base = List.nth sets 2 and h = List.nth handles 2 in
  let removed = Edge_set.of_list [ (0, 0); (0, 1) ] in
  let added = Edge_set.of_list [ (9, 900) ] in
  let hd = Extent_store.append_delta store ~base:h ~removed ~added in
  Alcotest.check edge_set "block delta resolves"
    (Edge_set.union (Edge_set.diff base removed) added)
    (Extent_store.load store hd)

let test_extent_block_compresses () =
  let p = Pager.create ~page_size:8192 () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let raw = Extent_store.create ~codec:`Raw pool in
  let blk = Extent_store.create ~codec:`Block pool in
  let set = Edge_set.of_list (List.init 512 (fun i -> (7, i))) in
  let hr = Extent_store.append raw set in
  let hb = Extent_store.append blk set in
  Alcotest.(check bool)
    (Printf.sprintf "block %d bytes << raw %d" (Extent_store.stored_bytes hb)
       (Extent_store.stored_bytes hr))
    true
    (Extent_store.stored_bytes hb * 3 < Extent_store.stored_bytes hr);
  Alcotest.check edge_set "still equal" (Extent_store.load raw hr) (Extent_store.load blk hb);
  let logical, stored = Extent_store.compression_stats blk in
  Alcotest.(check int) "logical bytes = 8/int" (512 * 8) logical;
  Alcotest.(check bool) "stats agree with handle" true (stored = Extent_store.stored_bytes hb)

let test_extent_chain_shares_base () =
  (* the decoded-extent LRU must share ONE resolved base across a delta
     chain: re-resolving (or worse, re-decoding) the base once per link
     made chained loads O(chain^2) *)
  let _, _, store = with_store ~page_size:128 () in
  let base_set = Edge_set.of_list (List.init 200 (fun i -> (i, i + 1))) in
  let h = ref (Extent_store.append store base_set) in
  let expected = ref base_set in
  for i = 0 to 3 do
    let added = Edge_set.of_list [ (5000 + i, i) ] in
    h := Extent_store.append_delta store ~base:!h ~removed:Edge_set.empty ~added;
    expected := Edge_set.union !expected added
  done;
  Alcotest.(check int) "chain at the cap" 4 (Extent_store.chain_length !h);
  (* cold: base + 4 delta blobs, each decoded exactly once *)
  let cold = Cost.create () in
  Alcotest.check edge_set "cold resolve" !expected (Extent_store.load ~cost:cold store !h);
  Alcotest.(check int) "cold misses" 5 cold.Cost.extent_cache_misses;
  Alcotest.(check int) "cold hits" 0 cold.Cost.extent_cache_hits;
  (* warm: the resolved head is cached whole *)
  let warm = Cost.create () in
  Alcotest.check edge_set "warm resolve" !expected (Extent_store.load ~cost:warm store !h);
  Alcotest.(check int) "warm hits" 1 warm.Cost.extent_cache_hits;
  Alcotest.(check int) "warm misses" 0 warm.Cost.extent_cache_misses;
  Alcotest.(check int) "warm reads no pages" 0 warm.Cost.extent_pages;
  (* extending the chain by one link costs one new blob decode plus one
     cached-base hit — NOT a re-resolution of every link *)
  let added = Edge_set.of_list [ (6000, 0) ] in
  let h5 = Extent_store.append_delta store ~base:!h ~removed:Edge_set.empty ~added in
  let ext = Cost.create () in
  Alcotest.check edge_set "extended resolve"
    (Edge_set.union !expected added)
    (Extent_store.load ~cost:ext store h5);
  Alcotest.(check int) "extend misses only the new blob" 1 ext.Cost.extent_cache_misses;
  Alcotest.(check int) "extend hits the resolved base" 1 ext.Cost.extent_cache_hits

let test_extent_block_delta_payload_not_poisoned () =
  (* regression: a delta whose payload ints happen to be strictly
     ascending is block-encoded like an extent; resolving THROUGH it must
     not cache the raw payload as that link's resolved set *)
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let store = Extent_store.create ~codec:`Block pool in
  let base_set = Edge_set.of_list [ (0, 2); (0, 5); (0, 7) ] in
  let h0 = Extent_store.append store base_set in
  (* payload = [1; pack(0,5); pack(0,9)] = [1; 5; 9] — sorted, ascending *)
  let h1 =
    Extent_store.append_delta store ~base:h0
      ~removed:(Edge_set.of_list [ (0, 5) ])
      ~added:(Edge_set.of_list [ (0, 9) ])
  in
  let h2 =
    Extent_store.append_delta store ~base:h1 ~removed:Edge_set.empty
      ~added:(Edge_set.of_list [ (0, 11) ])
  in
  let want1 = Edge_set.of_list [ (0, 2); (0, 7); (0, 9) ] in
  (* loading h2 first resolves h1's blob as an intermediate link *)
  Alcotest.check edge_set "chain through ascending delta"
    (Edge_set.union want1 (Edge_set.of_list [ (0, 11) ]))
    (Extent_store.load store h2);
  Alcotest.check edge_set "intermediate link unpoisoned" want1 (Extent_store.load store h1)

(* --- Data table --- *)

let test_data_table_basic () =
  let g = F.movie_db () in
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:4 in
  let table = Data_table.build pool g in
  Alcotest.(check int) "entries = leaves with values" 4 (Data_table.n_entries table);
  Alcotest.(check (option string)) "title" (Some "Waterworld") (Data_table.lookup table 7);
  Alcotest.(check (option string)) "name" (Some "Kevin") (Data_table.lookup table 2);
  Alcotest.(check (option string)) "non-leaf" None (Data_table.lookup table 6);
  Alcotest.(check bool) "matches yes" true (Data_table.matches table 7 "Waterworld");
  Alcotest.(check bool) "matches no" false (Data_table.matches table 7 "Not")

let test_data_table_cost () =
  let g = F.movie_db () in
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:4 in
  let table = Data_table.build pool g in
  let cost = Cost.create () in
  ignore (Data_table.lookup ~cost table 7);
  ignore (Data_table.lookup ~cost table 2);
  Alcotest.(check int) "pages charged" 2 cost.Cost.table_pages;
  ignore (Data_table.lookup ~cost table 6);
  (* probing a nid below the table range costs no page *)
  Alcotest.(check bool) "miss may still read one page" true (cost.Cost.table_pages <= 3)

let test_data_table_iter () =
  let g = F.movie_db () in
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:4 in
  let table = Data_table.build pool g in
  let seen = ref [] in
  Data_table.iter table (fun nid v -> seen := (nid, v) :: !seen);
  Alcotest.(check (list (pair int string)))
    "all records in nid order"
    [ (2, "Kevin"); (4, "Jeanne"); (7, "Waterworld"); (8, "Reynolds") ]
    (List.rev !seen)

let test_data_table_many_pages () =
  let b = Repro_graph.Data_graph.Builder.create () in
  let root = Repro_graph.Data_graph.Builder.add_node b in
  for i = 0 to 199 do
    let leaf = Repro_graph.Data_graph.Builder.add_node ~value:(Printf.sprintf "value-%04d" i) b in
    Repro_graph.Data_graph.Builder.add_edge b root "item" leaf
  done;
  let g = Repro_graph.Data_graph.Builder.build ~root b in
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:4 in
  let table = Data_table.build pool g in
  Alcotest.(check bool) "spans many pages" true (Data_table.n_pages table > 10);
  (* every record still retrievable *)
  for i = 0 to 199 do
    Alcotest.(check (option string))
      (Printf.sprintf "nid %d" (i + 1))
      (Some (Printf.sprintf "value-%04d" i))
      (Data_table.lookup table (i + 1))
  done

(* --- Cost --- *)

let test_cost_add () =
  let a = Cost.create () and b = Cost.create () in
  a.Cost.hash_probes <- 3;
  b.Cost.hash_probes <- 4;
  b.Cost.extent_pages <- 2;
  Cost.add a b;
  Alcotest.(check int) "probes" 7 a.Cost.hash_probes;
  Alcotest.(check int) "pages" 2 a.Cost.extent_pages

let test_cost_weighted () =
  let c = Cost.create () in
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Cost.weighted_total c);
  c.Cost.extent_pages <- 10;
  let base = Cost.weighted_total c in
  c.Cost.hash_probes <- 50;
  Alcotest.(check bool) "probes add less than a page" true
    (Cost.weighted_total c -. base < 1.01 && Cost.weighted_total c > base)

let () =
  Alcotest.run "storage"
    [ ( "pager",
        [ Alcotest.test_case "alloc/read/write" `Quick test_pager_alloc_rw;
          Alcotest.test_case "rejects bad input" `Quick test_pager_rejects
        ] );
      ( "buffer_pool",
        [ Alcotest.test_case "hit/miss accounting" `Quick test_pool_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_pool_lru_eviction;
          Alcotest.test_case "write-through" `Quick test_pool_write_through;
          Alcotest.test_case "flush" `Quick test_pool_flush;
          QCheck_alcotest.to_alcotest prop_pool_invariants
        ] );
      ( "faults",
        [ Alcotest.test_case "crc32 check value" `Quick test_crc32_known;
          Alcotest.test_case "read flip healed" `Quick test_fault_read_flip_healed;
          Alcotest.test_case "short read healed" `Quick test_fault_short_read_healed;
          Alcotest.test_case "write flip detected" `Quick test_fault_write_flip_detected;
          Alcotest.test_case "torn write crashes" `Quick test_fault_torn_write_crashes;
          Alcotest.test_case "enospc crashes" `Quick test_fault_enospc_crashes;
          Alcotest.test_case "no policy, no verification" `Quick test_no_policy_no_verification
        ] );
      ( "extent_store",
        [ Alcotest.test_case "roundtrip" `Quick test_extent_roundtrip;
          Alcotest.test_case "cost charged" `Quick test_extent_cost_charged;
          Alcotest.test_case "interleaved alloc" `Quick test_extent_interleaved_alloc;
          Alcotest.test_case "delta chain" `Quick test_extent_delta_chain;
          Alcotest.test_case "delta chain uncached" `Quick test_extent_delta_uncached;
          Alcotest.test_case "varint roundtrip" `Quick test_extent_varint_roundtrip;
          Alcotest.test_case "varint compresses" `Quick test_extent_varint_compresses;
          Alcotest.test_case "block roundtrip" `Quick test_extent_block_roundtrip;
          Alcotest.test_case "block compresses" `Quick test_extent_block_compresses;
          Alcotest.test_case "chain shares base" `Quick test_extent_chain_shares_base;
          Alcotest.test_case "ascending delta payload" `Quick
            test_extent_block_delta_payload_not_poisoned;
          QCheck_alcotest.to_alcotest prop_extent_roundtrip;
          QCheck_alcotest.to_alcotest prop_extent_varint_roundtrip
        ] );
      ( "data_table",
        [ Alcotest.test_case "basic lookup" `Quick test_data_table_basic;
          Alcotest.test_case "cost accounting" `Quick test_data_table_cost;
          Alcotest.test_case "iter" `Quick test_data_table_iter;
          Alcotest.test_case "many pages" `Quick test_data_table_many_pages
        ] );
      ( "cost",
        [ Alcotest.test_case "add" `Quick test_cost_add;
          Alcotest.test_case "weighted total" `Quick test_cost_weighted
        ] )
    ]
