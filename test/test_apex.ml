open Repro_apex
module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Label_path = Repro_pathexpr.Label_path
module Query = Repro_pathexpr.Query
module Naive = Repro_pathexpr.Naive_eval

let edge_set = Alcotest.testable Edge_set.pp Edge_set.equal

(* the Figure 12 mini graph: root -A-> n1; n1 -B-> n2; n2 -D-> n3; n1 -D-> n4 *)
let fig12 () =
  let b = G.Builder.create () in
  let n () = G.Builder.add_node b in
  let root = n () and n1 = n () and n2 = n () and n3 = n () and n4 = n () in
  let e = G.Builder.add_edge b in
  e root "A" n1;
  e n1 "B" n2;
  e n2 "D" n3;
  e n1 "D" n4;
  G.Builder.build ~root b

let lp g names = F.path g names

(* --- APEX0 --- *)

let test_apex0_movie_db () =
  let g = F.movie_db () in
  let apex = Apex.build g in
  let nodes, edges = Apex.stats apex in
  (* one node per label + xroot *)
  Alcotest.(check int) "nodes = labels + 1" 8 nodes;
  Alcotest.(check bool) "has edges" true (edges > 0);
  (* every label node's extent is exactly the label's edge group *)
  List.iter
    (fun name ->
      let l = F.label g name in
      match Hash_tree.lookup_slot (Apex.tree apex) ~rev_path:[ l ] with
      | Some slot ->
        (match Hash_tree.slot_get slot with
         | Some node ->
           Alcotest.check edge_set
             (Printf.sprintf "extent(%s)" name)
             (G.edges_with_label g l) node.Gapex.extent
         | None -> Alcotest.failf "no node for %s" name)
      | None -> Alcotest.failf "no slot for %s" name)
    [ "actor"; "name"; "director"; "movie"; "title"; "@actor"; "@movie" ]

let test_apex0_length2_paths_exist_in_data () =
  (* Theorem 2: every length-2 label path in G_APEX is in G_XML *)
  let g = F.movie_db () in
  let apex = Apex.build g in
  List.iter
    (fun (x : Gapex.node) ->
      List.iter
        (fun (l1, (y : Gapex.node)) ->
          List.iter
            (fun (l2, (_ : Gapex.node)) ->
              let t = G.reachable_by_label_path g [ l1; l2 ] in
              if Edge_set.is_empty t then
                Alcotest.failf "label path %d.%d in G_APEX but not in data" l1 l2;
              ignore y)
            (Gapex.out_edges y))
        (Gapex.out_edges x))
    (Gapex.reachable (Apex.summary apex))

(* --- Figure 7 / Figure 12 walkthrough --- *)

let test_fig12_adaptation () =
  let g = fig12 () in
  let a = F.label g "A" and b = F.label g "B" and d = F.label g "D" in
  let apex = Apex.build g in
  (* APEX0 extents *)
  let extent path =
    match Hash_tree.lookup_slot (Apex.tree apex) ~rev_path:(List.rev path) with
    | Some slot ->
      (match Hash_tree.slot_get slot with
       | Some node -> node.Gapex.extent
       | None -> Edge_set.empty)
    | None -> Edge_set.empty
  in
  Alcotest.check edge_set "APEX0 T(D)" (Edge_set.of_list [ (1, 4); (2, 3) ]) (extent [ d ]);
  (* workload {A.D, A.D, B}, minSup 0.6 -> A.D frequent (Figure 7 semantics) *)
  Apex.refresh apex ~workload:[ [ a; d ]; [ a; d ]; [ b ] ] ~min_support:0.6;
  Alcotest.(check bool) "invariant" true (Hash_tree.check_invariant (Apex.tree apex));
  Alcotest.check edge_set "T^R(A.D)" (Edge_set.of_list [ (1, 4) ]) (extent [ a; d ]);
  Alcotest.check edge_set "T^R(remainder.D)" (Edge_set.of_list [ (2, 3) ]) (extent [ d ]);
  Alcotest.check edge_set "T(A) unchanged" (Edge_set.of_list [ (0, 1) ]) (extent [ a ]);
  (* workload changes to favour B.D: A.D is dropped, B.D appears *)
  Apex.refresh apex ~workload:[ [ b; d ]; [ b; d ]; [ a ] ] ~min_support:0.6;
  Alcotest.check edge_set "T^R(B.D)" (Edge_set.of_list [ (2, 3) ]) (extent [ b; d ]);
  Alcotest.check edge_set "T^R(remainder.D) after swap" (Edge_set.of_list [ (1, 4) ])
    (extent [ d ]);
  (* A.D slot now resolves to the remainder *)
  Alcotest.check edge_set "A.D resolves to remainder" (Edge_set.of_list [ (1, 4) ])
    (extent [ a; d ])

let test_refresh_empty_workload_degenerates () =
  let g = F.movie_db () in
  let apex0 = Apex.build g in
  let adapted =
    Apex.build_adapted g
      ~workload:[ lp g [ "actor"; "name" ]; lp g [ "actor"; "name" ] ]
      ~min_support:0.5
  in
  let n_adapted, _ = Apex.stats adapted in
  let n0, e0 = Apex.stats apex0 in
  Alcotest.(check bool) "adaptation adds nodes" true (n_adapted > n0);
  (* an empty workload prunes everything back to APEX0 shape *)
  Apex.refresh adapted ~workload:[] ~min_support:0.5;
  let n', e' = Apex.stats adapted in
  Alcotest.(check int) "nodes back to APEX0" n0 n';
  Alcotest.(check int) "edges back to APEX0" e0 e'

(* --- query evaluation vs the naive evaluator on the cyclic fixture --- *)

let movie_queries =
  [ "//actor/name";
    "//name";
    "//title";
    "//movie/title";
    "//director/movie/title";
    "//movie/@actor=>actor/name";
    "//actor/@movie=>movie/title";
    "//@movie=>movie";
    "//director//title";
    "//director//name";
    "//actor//title";
    "//movie//title";
    {|//name[text()="Kevin"]|};
    {|//movie/title[text()="Waterworld"]|};
    {|//movie/title[text()="Nope"]|}
  ]

let check_queries_against_naive apex queries =
  let g = Apex.graph apex in
  List.iter
    (fun qs ->
      match Query.parse qs with
      | Error m -> Alcotest.failf "parse %s: %s" qs m
      | Ok q ->
        Alcotest.(check (array int))
          qs
          (Naive.eval_query g q)
          (Apex_query.eval_query apex q))
    queries

let test_queries_apex0 () =
  let g = F.movie_db () in
  check_queries_against_naive (Apex.build g) movie_queries

let test_queries_adapted () =
  let g = F.movie_db () in
  let workload =
    [ lp g [ "actor"; "name" ];
      lp g [ "actor"; "name" ];
      lp g [ "movie"; "title" ];
      lp g [ "director"; "movie" ];
      lp g [ "@actor"; "actor" ]
    ]
  in
  List.iter
    (fun min_support ->
      let apex = Apex.build_adapted g ~workload ~min_support in
      Alcotest.(check bool) "invariant" true (Hash_tree.check_invariant (Apex.tree apex));
      check_queries_against_naive apex movie_queries)
    [ 0.1; 0.4; 0.9 ]

let test_queries_materialized () =
  let g = F.movie_db () in
  let apex =
    Apex.build_adapted g ~workload:[ lp g [ "actor"; "name" ] ] ~min_support:0.5
  in
  let pager = Repro_storage.Pager.create ~page_size:256 () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:8 in
  Apex.materialize apex pool;
  check_queries_against_naive apex movie_queries;
  (* extent loads are charged on an approximate path (its sweep re-joins
     extents every time): the earlier queries warmed the decoded LRU, so
     this one is served as cache hits — edges stream, pages don't. The
     exact path [actor.name] is answered from the endpoint memo and would
     charge nothing at all. *)
  let cost = Repro_storage.Cost.create () in
  ignore (Apex_query.eval_query ~cost apex (Query.Qtype1 [ "movie"; "title" ]));
  Alcotest.(check bool) "edges charged" true (cost.Repro_storage.Cost.extent_edges > 0);
  Alcotest.(check bool) "cache hits recorded" true
    (cost.Repro_storage.Cost.extent_cache_hits > 0);
  (* a cold store (fresh materialization) pays page I/O *)
  let pager = Repro_storage.Pager.create ~page_size:256 () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:8 in
  Apex.materialize apex pool;
  let cost = Repro_storage.Cost.create () in
  ignore (Apex_query.eval_query ~cost apex (Query.Qtype1 [ "actor"; "name" ]));
  Alcotest.(check bool) "pages charged when cold" true
    (cost.Repro_storage.Cost.extent_pages > 0)

let test_q2_partial_join_reuse () =
  (* answering rewritings from the running joins of the rewrite search must
     be indistinguishable from re-evaluating every rewriting (the paper's
     two-phase plan, [reuse_partial_joins:false]) — on every label pair,
     including pairs with empty answers, over APEX0 and an adapted index *)
  let g = F.movie_db () in
  let labels = G.labels g in
  let names = [ "actor"; "name"; "director"; "movie"; "title" ] in
  let check apex =
    List.iter
      (fun la ->
        List.iter
          (fun lb ->
            match Query.compile labels (Query.Qtype2 (la, lb)) with
            | None -> Alcotest.failf "label pair %s//%s did not compile" la lb
            | Some c ->
              Alcotest.(check (array int))
                (Printf.sprintf "//%s//%s" la lb)
                (Apex_query.eval ~reuse_partial_joins:false apex c)
                (Apex_query.eval apex c))
          names)
      names
  in
  check (Apex.build g);
  check (Apex.build_adapted g ~workload:[ lp g [ "actor"; "name" ] ] ~min_support:0.5)

let test_queries_materialized_varint () =
  (* compressed extents change cost, never results *)
  let g = F.movie_db () in
  let apex =
    Apex.build_adapted g ~workload:[ lp g [ "actor"; "name" ] ] ~min_support:0.5
  in
  let pager = Repro_storage.Pager.create ~page_size:256 () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:8 in
  Apex.materialize ~codec:`Delta_varint apex pool;
  check_queries_against_naive apex movie_queries

let test_qtype3_with_table () =
  let g = F.movie_db () in
  let apex = Apex.build g in
  let pager = Repro_storage.Pager.create ~page_size:256 () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:8 in
  let table = Repro_storage.Data_table.build pool g in
  let cost = Repro_storage.Cost.create () in
  let result =
    Apex_query.eval_query ~cost ~table apex (Query.Qtype3 ([ "name" ], "Kevin"))
  in
  Alcotest.(check (array int)) "value query" [| 2 |] result;
  Alcotest.(check bool) "table probed" true (cost.Repro_storage.Cost.table_pages > 0)

let test_degenerate_graphs () =
  (* a single node, no edges *)
  let b = G.Builder.create () in
  let root = G.Builder.add_node b in
  let g = G.Builder.build ~root b in
  let apex = Apex.build g in
  let n, e = Apex.stats apex in
  Alcotest.(check (pair int int)) "only xroot" (1, 0) (n, e);
  (* a chain with repeated labels (self-similar suffixes) *)
  let b = G.Builder.create () in
  let n0 = G.Builder.add_node b in
  let n1 = G.Builder.add_node b in
  let n2 = G.Builder.add_node b in
  let n3 = G.Builder.add_node b in
  G.Builder.add_edge b n0 "x" n1;
  G.Builder.add_edge b n1 "x" n2;
  G.Builder.add_edge b n2 "x" n3;
  let g = G.Builder.build ~root:n0 b in
  let apex = Apex.build_adapted g ~workload:[ [ 0; 0 ]; [ 0; 0 ] ] ~min_support:0.5 in
  Alcotest.(check (array int)) "//x" [| 1; 2; 3 |] (Apex_query.eval apex (Query.C1 [ 0 ]));
  Alcotest.(check (array int)) "//x/x" [| 2; 3 |] (Apex_query.eval apex (Query.C1 [ 0; 0 ]));
  Alcotest.(check (array int)) "//x/x/x" [| 3 |] (Apex_query.eval apex (Query.C1 [ 0; 0; 0 ]));
  Alcotest.(check (array int)) "//x//x" [| 2; 3 |] (Apex_query.eval apex (Query.C2 (0, 0)))

let test_spec_rejects_cyclic () =
  (* the declarative reference is only defined on acyclic data *)
  let g = F.movie_db () in
  match Apex_spec.target_edge_sets g ~required:[ [ F.label g "name" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on cyclic data"

let test_unknown_label_queries () =
  let g = F.movie_db () in
  let apex = Apex.build g in
  Alcotest.(check (array int)) "q1" [||] (Apex_query.eval_query apex (Query.Qtype1 [ "zzz" ]));
  Alcotest.(check (array int)) "q2" [||]
    (Apex_query.eval_query apex (Query.Qtype2 ("zzz", "name")));
  Alcotest.(check (array int)) "q3" [||]
    (Apex_query.eval_query apex (Query.Qtype3 ([ "zzz" ], "v")))

(* --- spec equivalence and properties on random DAGs --- *)

let workload_of_dag rand g =
  (* random walks turned into label paths; may be empty for degenerate graphs *)
  if G.out_degree g (G.root g) = 0 then []
  else
    List.init 6 (fun _ ->
        List.map fst (Repro_workload.Simple_paths.random_walk rand ~max_length:5 g))

let prop_spec_equivalence =
  QCheck.Test.make ~count:120 ~name:"operational extents = declarative T^R" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec |] in
      let workload = workload_of_dag rand g in
      QCheck.assume (workload <> []);
      let min_support = 0.34 in
      let apex = Apex.build_adapted g ~workload ~min_support in
      let actual = Apex_spec.apex_extents apex in
      let required = Apex_spec.required_of_workload g ~workload ~min_support in
      let expected = Apex_spec.target_edge_sets g ~required in
      let show l =
        String.concat "; "
          (List.map
             (fun (p, e) ->
               Printf.sprintf "%s=%s"
                 (String.concat "." (List.map string_of_int p))
                 (Format.asprintf "%a" Edge_set.pp e))
             l)
      in
      if
        List.length actual = List.length expected
        && List.for_all2
             (fun (p1, e1) (p2, e2) -> Label_path.equal p1 p2 && Edge_set.equal e1 e2)
             actual expected
      then true
      else
        QCheck.Test.fail_reportf "mismatch:@.actual:   %s@.expected: %s" (show actual)
          (show expected))

let prop_incremental_equals_fresh =
  QCheck.Test.make ~count:100 ~name:"incremental refresh = fresh rebuild" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec + 7 |] in
      let w1 = workload_of_dag rand g in
      let w2 = workload_of_dag rand g in
      QCheck.assume (w1 <> [] && w2 <> []);
      (* incremental: adapt to w1, then w2; fresh: adapt to w2 only *)
      let incremental = Apex.build_adapted g ~workload:w1 ~min_support:0.3 in
      Apex.refresh incremental ~workload:w2 ~min_support:0.3;
      let fresh = Apex.build_adapted g ~workload:w2 ~min_support:0.3 in
      let a = Apex_spec.apex_extents incremental in
      let b = Apex_spec.apex_extents fresh in
      List.length a = List.length b
      && List.for_all2
           (fun (p1, e1) (p2, e2) -> Label_path.equal p1 p2 && Edge_set.equal e1 e2)
           a b)

let prop_queries_match_naive_on_dags =
  QCheck.Test.make ~count:120 ~name:"APEX query results = naive traversal" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec + 13 |] in
      let workload = workload_of_dag rand g in
      QCheck.assume (workload <> []);
      let apex = Apex.build_adapted g ~workload ~min_support:0.3 in
      let tbl = G.labels g in
      let all_labels = List.init (Repro_graph.Label.count tbl) (fun i -> i) in
      (* QTYPE1: all length-1..3 paths over the alphabet (alphabet ≤ 4) *)
      let q1s =
        List.concat_map
          (fun a ->
            [ a ] :: List.concat_map (fun b -> [ [ a; b ] ]) all_labels)
          all_labels
      in
      let ok_q1 =
        List.for_all
          (fun p -> Naive.eval g (Query.C1 p) = Apex_query.eval apex (Query.C1 p))
          q1s
      in
      let ok_q2 =
        List.for_all
          (fun a ->
            List.for_all
              (fun b -> Naive.eval g (Query.C2 (a, b)) = Apex_query.eval apex (Query.C2 (a, b)))
              all_labels)
          all_labels
      in
      ok_q1 && ok_q2)

let prop_invariant_after_refresh =
  QCheck.Test.make ~count:100 ~name:"hash-tree invariant holds after refreshes" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec + 99 |] in
      let apex = Apex.build g in
      let ok = ref (Hash_tree.check_invariant (Apex.tree apex)) in
      for _ = 1 to 3 do
        let w = workload_of_dag rand g in
        if w <> [] then begin
          Apex.refresh apex ~workload:w ~min_support:0.4;
          ok := !ok && Hash_tree.check_invariant (Apex.tree apex)
        end
      done;
      !ok)

let prop_theorem2_on_dags =
  QCheck.Test.make ~count:80 ~name:"Theorem 2: length-2 G_APEX paths exist in data" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec + 21 |] in
      let workload = workload_of_dag rand g in
      QCheck.assume (workload <> []);
      let apex = Apex.build_adapted g ~workload ~min_support:0.3 in
      List.for_all
        (fun (x : Gapex.node) ->
          List.for_all
            (fun ((l1 : int), (y : Gapex.node)) ->
              List.for_all
                (fun ((l2 : int), (_ : Gapex.node)) ->
                  not (Edge_set.is_empty (G.reachable_by_label_path g [ l1; l2 ])))
                (Gapex.out_edges y))
            (Gapex.out_edges x))
        (Gapex.reachable (Apex.summary apex)))

let () =
  Alcotest.run "apex"
    [ ( "apex0",
        [ Alcotest.test_case "movie_db structure" `Quick test_apex0_movie_db;
          Alcotest.test_case "theorem 2 on movie_db" `Quick test_apex0_length2_paths_exist_in_data
        ] );
      ( "adaptation",
        [ Alcotest.test_case "figure 12 walkthrough" `Quick test_fig12_adaptation;
          Alcotest.test_case "empty workload degenerates" `Quick test_refresh_empty_workload_degenerates
        ] );
      ( "queries",
        [ Alcotest.test_case "APEX0 vs naive" `Quick test_queries_apex0;
          Alcotest.test_case "adapted vs naive" `Quick test_queries_adapted;
          Alcotest.test_case "materialized vs naive" `Quick test_queries_materialized;
          Alcotest.test_case "Q2 partial-join reuse" `Quick test_q2_partial_join_reuse;
          Alcotest.test_case "varint-materialized vs naive" `Quick test_queries_materialized_varint;
          Alcotest.test_case "QTYPE3 via data table" `Quick test_qtype3_with_table;
          Alcotest.test_case "unknown labels" `Quick test_unknown_label_queries;
          Alcotest.test_case "spec rejects cyclic data" `Quick test_spec_rejects_cyclic;
          Alcotest.test_case "degenerate graphs" `Quick test_degenerate_graphs
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_spec_equivalence;
          QCheck_alcotest.to_alcotest prop_incremental_equals_fresh;
          QCheck_alcotest.to_alcotest prop_queries_match_naive_on_dags;
          QCheck_alcotest.to_alcotest prop_invariant_after_refresh;
          QCheck_alcotest.to_alcotest prop_theorem2_on_dags
        ] )
    ]
