(* Save/load round-trips for whole APEX instances. *)

module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Edge_set = Repro_graph.Edge_set
module Query = Repro_pathexpr.Query
open Repro_apex

let with_store () =
  let pager = Repro_storage.Pager.create ~page_size:512 () in
  let pool = Repro_storage.Buffer_pool.create pager ~capacity:32 in
  (pool, Repro_storage.Extent_store.create pool)

let extents_equal a b =
  let ea = Apex_spec.apex_extents a and eb = Apex_spec.apex_extents b in
  List.length ea = List.length eb
  && List.for_all2
       (fun (p1, s1) (p2, s2) ->
         Repro_pathexpr.Label_path.equal p1 p2 && Edge_set.equal s1 s2)
       ea eb

let movie_workload g =
  [ F.path g [ "actor"; "name" ]; F.path g [ "actor"; "name" ]; F.path g [ "movie"; "title" ] ]

let test_roundtrip_apex0 () =
  let g = F.movie_db () in
  let apex = Apex.build g in
  let _, store = with_store () in
  let handle = Apex_persist.save apex store in
  let loaded = Apex_persist.load g store handle in
  Alcotest.(check bool) "extents identical" true (extents_equal apex loaded);
  Alcotest.(check bool) "stats identical" true (Apex.stats apex = Apex.stats loaded)

let test_roundtrip_adapted () =
  let g = F.movie_db () in
  let apex = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  let _, store = with_store () in
  let handle = Apex_persist.save apex store in
  let loaded = Apex_persist.load g store handle in
  Alcotest.(check bool) "extents identical" true (extents_equal apex loaded);
  Alcotest.(check bool) "invariant holds" true (Hash_tree.check_invariant (Apex.tree loaded))

let test_loaded_queries_match () =
  let g = F.movie_db () in
  let apex = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  let _, store = with_store () in
  let loaded = Apex_persist.load g store (Apex_persist.save apex store) in
  List.iter
    (fun text ->
      let q = Result.get_ok (Query.parse text) in
      Alcotest.(check (array int)) text (Apex_query.eval_query apex q)
        (Apex_query.eval_query loaded q))
    [ "//actor/name"; "//name"; "//movie//title"; "//director//name";
      {|//name[text()="Kevin"]|}; "//@movie=>movie" ]

let test_loaded_index_refreshable () =
  (* the loaded copy keeps adapting: counts/flags survive the round trip *)
  let g = F.movie_db () in
  let apex = Apex.build g in
  let _, store = with_store () in
  let loaded = Apex_persist.load g store (Apex_persist.save apex store) in
  Apex.refresh loaded ~workload:(movie_workload g) ~min_support:0.5;
  let fresh = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  Alcotest.(check bool) "refresh after load = fresh adapt" true (extents_equal loaded fresh)

let test_multiple_images_one_store () =
  let g = F.movie_db () in
  let apex0 = Apex.build g in
  let adapted = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  let _, store = with_store () in
  let h0 = Apex_persist.save apex0 store in
  let h1 = Apex_persist.save adapted store in
  Alcotest.(check bool) "first image intact" true
    (extents_equal apex0 (Apex_persist.load g store h0));
  Alcotest.(check bool) "second image intact" true
    (extents_equal adapted (Apex_persist.load g store h1))

let test_corrupt_image_rejected () =
  let g = F.movie_db () in
  let _, store = with_store () in
  let bogus = Repro_storage.Extent_store.append_ints store [| 1; 2; 3 |] in
  match Apex_persist.load g store bogus with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a bad image"

(* --- image fuzzing: of_image must return or reject, never die --- *)

(* Contract under arbitrary corruption: [of_image] either returns an index
   or raises [Invalid_argument]. Anything else — another exception, a
   huge-allocation attempt from a smashed length field, a hang — is a bug.
   (Wrong-but-parseable images are the snapshot layer's problem: its CRCs
   reject them before [of_image] ever runs.) *)
let fuzz_image g apex image seed =
  let n = Array.length image in
  let rand = Random.State.make [| seed |] in
  let attempt tag arr =
    match Apex_persist.of_image g arr with
    | (_ : Apex.t) -> ()
    | exception Invalid_argument _ -> ()
    | exception e -> Alcotest.failf "%s: of_image escaped with %s" tag (Printexc.to_string e)
  in
  (* truncations: all short prefixes, then sampled longer ones *)
  for len = 0 to Int.min n 40 do
    attempt "truncate" (Array.sub image 0 len)
  done;
  for _ = 1 to 200 do
    attempt "truncate" (Array.sub image 0 (Random.State.int rand (n + 1)))
  done;
  (* single bit flips — length fields become huge or negative *)
  for _ = 1 to 500 do
    let m = Array.copy image in
    let i = Random.State.int rand n in
    m.(i) <- m.(i) lxor (1 lsl Random.State.int rand 62);
    attempt "bitflip" m
  done;
  (* whole-value smashes, including negatives *)
  for _ = 1 to 300 do
    let m = Array.copy image in
    m.(Random.State.int rand n) <- Random.State.int rand 0x3FFFFFFF - 0x1FFFFFFF;
    attempt "smash" m
  done;
  (* pairwise permutations *)
  for _ = 1 to 300 do
    let m = Array.copy image in
    let i = Random.State.int rand n and j = Random.State.int rand n in
    let tmp = m.(i) in
    m.(i) <- m.(j);
    m.(j) <- tmp;
    attempt "swap" m
  done;
  (* splices: two random slices glued together *)
  for _ = 1 to 200 do
    let slice () =
      let a = Random.State.int rand n and b = Random.State.int rand n in
      Array.sub image (Int.min a b) (abs (a - b))
    in
    attempt "splice" (Array.append (slice ()) (slice ()))
  done;
  (* sanity: the unmutated image still round-trips *)
  Alcotest.(check bool) "pristine image loads" true
    (extents_equal apex (Apex_persist.of_image g image))

(* both on-disk formats face the same battery: v2 (gap-coded, written
   today) and v1 (absolute entries, pre-block-compression snapshots) *)
let test_fuzz_of_image () =
  let g = F.movie_db () in
  let apex = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  fuzz_image g apex (Apex_persist.to_image apex) 0xF022;
  fuzz_image g apex (Apex_persist.to_image_v1 apex) 0xF023

let test_v1_image_compat () =
  (* a legacy v1 image loads bit-for-bit like its v2 counterpart and is
     strictly larger (gaps beat absolute packed edges) *)
  let g = F.movie_db () in
  let apex = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  let v1 = Apex_persist.to_image_v1 apex and v2 = Apex_persist.to_image apex in
  Alcotest.(check bool) "formats differ" true (v1 <> v2);
  Alcotest.(check int) "same word count" (Array.length v1) (Array.length v2);
  let from_v1 = Apex_persist.of_image g v1 and from_v2 = Apex_persist.of_image g v2 in
  Alcotest.(check bool) "v1 loads" true (extents_equal apex from_v1);
  Alcotest.(check bool) "v1 = v2" true (extents_equal from_v1 from_v2);
  (* queries through the v1-loaded copy agree with the original *)
  List.iter
    (fun text ->
      let q = Result.get_ok (Query.parse text) in
      Alcotest.(check (array int)) text (Apex_query.eval_query apex q)
        (Apex_query.eval_query from_v1 q))
    [ "//actor/name"; "//name"; "//movie//title" ]

(* --- crash-consistent snapshot epochs --- *)

module Snapshot = Apex_persist.Snapshot

let test_snapshot_epochs () =
  let g = F.movie_db () in
  let _pool, store = with_store () in
  let snap = Snapshot.create store in
  (match Snapshot.load_latest snap g with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "load_latest before any commit must raise");
  let apex0 = Apex.build g in
  let adapted = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  Alcotest.(check int) "first epoch" 1 (Snapshot.commit snap apex0);
  Alcotest.(check bool) "epoch 1 loads" true (extents_equal apex0 (Snapshot.load_latest snap g));
  Alcotest.(check int) "second epoch" 2 (Snapshot.commit snap adapted);
  Alcotest.(check bool) "epoch 2 loads" true
    (extents_equal adapted (Snapshot.load_latest snap g));
  Alcotest.(check int) "epoch counter" 2 (Snapshot.epoch snap)

let test_snapshot_attach_after_restart () =
  let g = F.movie_db () in
  let pool, store = with_store () in
  let pager = Repro_storage.Buffer_pool.pager pool in
  let snap = Snapshot.create store in
  let adapted = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  ignore (Snapshot.commit snap (Apex.build g) : int);
  ignore (Snapshot.commit snap adapted : int);
  (* "restart": a fresh pool and store over the surviving pager, knowing
     only the superblock pid *)
  let pool2 = Repro_storage.Buffer_pool.create pager ~capacity:32 in
  let store2 = Repro_storage.Extent_store.create pool2 in
  let snap2 = Snapshot.attach store2 ~superblock:(Snapshot.superblock snap) in
  Alcotest.(check int) "epoch numbering resumes" 2 (Snapshot.epoch snap2);
  Alcotest.(check bool) "survives restart" true
    (extents_equal adapted (Snapshot.load_latest snap2 g))

let test_snapshot_falls_back_on_corruption () =
  let g = F.movie_db () in
  let pool, store = with_store () in
  let pager = Repro_storage.Buffer_pool.pager pool in
  let snap = Snapshot.create store in
  let apex0 = Apex.build g in
  let adapted = Apex.build_adapted g ~workload:(movie_workload g) ~min_support:0.5 in
  ignore (Snapshot.commit snap apex0 : int);
  let pages_before = Repro_storage.Pager.n_pages pager in
  ignore (Snapshot.commit snap adapted : int);
  (* smash every page epoch 2 wrote (separator + image pages; the
     superblock predates both commits, so it is not in the range) *)
  for pid = pages_before to Repro_storage.Pager.n_pages pager - 1 do
    let buf = Repro_storage.Pager.unsafe_borrow pager pid in
    Bytes.set buf 0 (Char.chr (Char.code (Bytes.get buf 0) lxor 0x55))
  done;
  (* drop cached copies so the corruption is actually read back *)
  Repro_storage.Buffer_pool.flush pool;
  let recovered = Snapshot.load_latest snap g in
  Alcotest.(check bool) "fell back to epoch 1" true (extents_equal apex0 recovered);
  Alcotest.(check int) "epoch rewound" 1 (Snapshot.epoch snap);
  (* the next commit replaces the corrupt epoch's slot and moves on *)
  Alcotest.(check int) "recommit" 2 (Snapshot.commit snap adapted);
  Alcotest.(check bool) "recommitted epoch loads" true
    (extents_equal adapted (Snapshot.load_latest snap g))

let prop_roundtrip_on_dags =
  QCheck.Test.make ~count:100 ~name:"persist round-trip on random DAGs" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let rand = Random.State.make [| Hashtbl.hash spec + 5 |] in
      let workload =
        if G.out_degree g (G.root g) = 0 then []
        else
          List.init 4 (fun _ ->
              List.map fst (Repro_workload.Simple_paths.random_walk rand ~max_length:4 g))
      in
      QCheck.assume (workload <> []);
      let apex = Apex.build_adapted g ~workload ~min_support:0.4 in
      let _, store = with_store () in
      let loaded = Apex_persist.load g store (Apex_persist.save apex store) in
      extents_equal apex loaded)

let () =
  Alcotest.run "persist"
    [ ( "roundtrip",
        [ Alcotest.test_case "apex0" `Quick test_roundtrip_apex0;
          Alcotest.test_case "adapted" `Quick test_roundtrip_adapted;
          Alcotest.test_case "queries match" `Quick test_loaded_queries_match;
          Alcotest.test_case "refreshable after load" `Quick test_loaded_index_refreshable;
          Alcotest.test_case "multiple images" `Quick test_multiple_images_one_store;
          Alcotest.test_case "corrupt image rejected" `Quick test_corrupt_image_rejected;
          Alcotest.test_case "v1 image compat" `Quick test_v1_image_compat
        ] );
      ( "fuzz",
        [ Alcotest.test_case "of_image on mutated images" `Quick test_fuzz_of_image ] );
      ( "snapshot",
        [ Alcotest.test_case "epochs commit and load" `Quick test_snapshot_epochs;
          Alcotest.test_case "attach after restart" `Quick test_snapshot_attach_after_restart;
          Alcotest.test_case "falls back on corruption" `Quick
            test_snapshot_falls_back_on_corruption
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_roundtrip_on_dags ] )
    ]
