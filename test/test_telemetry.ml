(* Telemetry subsystem tests.

   The load-bearing guarantee is the disabled path: instrumentation sits
   unconditionally in per-query hot loops, so with tracing off every
   entry point must be a flag test — no allocation at all. We assert
   that with [Gc.minor_words], the same way one would catch an
   accidental [Some]/closure allocation sneaking into [begin_]/[end_arg].

   The enabled path is checked end to end: ring wrap accounting,
   JSONL/Chrome export, the file reader, and the schema validator run
   against the checked-in [schemas/trace_schema.json]. Histogram
   arithmetic is property-tested: merge associativity/commutativity
   modulo float [sum] (excluded by [equal_counts]) and bucket-count
   conservation. *)

module Metrics = Repro_telemetry.Metrics
module Trace = Repro_telemetry.Trace
module Export = Repro_telemetry.Export
module Flight = Repro_telemetry.Flight
module Slo = Repro_telemetry.Slo
module Json = Repro_telemetry.Json

let schema_path = Filename.concat ".." (Filename.concat "schemas" "trace_schema.json")

let incident_schema_path =
  Filename.concat ".." (Filename.concat "schemas" "incident_schema.json")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------- disabled path: zero allocation ---------- *)

let disabled_zero_alloc () =
  Trace.reset ();
  Alcotest.(check bool) "tracer off" false (Trace.is_enabled ());
  let n = 100_000 in
  (* warm up so any one-time lazy setup is paid before measuring *)
  for _ = 1 to 100 do
    Trace.end_arg (Trace.begin_ Trace.Probe) 1
  done;
  let before = Gc.minor_words () in
  for i = 1 to n do
    let tok = Trace.begin_ Trace.Probe in
    Trace.end_arg tok i;
    let tok2 = Trace.begin_ Trace.Fetch in
    Trace.end_ tok2;
    Trace.event Trace.Path_promoted i;
    (* the serving-layer kinds sit on the reader/writer hot paths of the
       concurrent server — same zero-allocation bar *)
    Trace.end_arg (Trace.begin_ Trace.Reader_pin) i;
    Trace.end_arg (Trace.begin_ Trace.Epoch_publish) i;
    Trace.end_arg (Trace.begin_ Trace.Epoch_retire) i
  done;
  let delta = Gc.minor_words () -. before in
  let per_op = delta /. float_of_int (11 * n) in
  if per_op >= 0.01 then
    Alcotest.failf "disabled tracer allocates: %.0f minor words over %d ops"
      delta (11 * n);
  Alcotest.(check int) "begin_ returns -1 when off" (-1) (Trace.begin_ Trace.Join)

let disabled_end_is_noop () =
  Trace.reset ();
  Trace.end_ (-1);
  Trace.end_arg (-1) 42;
  let st = Trace.stats () in
  Alcotest.(check int) "nothing recorded" 0 st.Trace.recorded;
  Alcotest.(check int) "no dropped ends" 0 st.Trace.dropped_ends

(* ---------- ring accounting ---------- *)

let ring_wrap_accounting () =
  Trace.enable ~capacity:8 ();
  for i = 1 to 20 do
    Trace.end_arg (Trace.begin_ Trace.Query) i
  done;
  let st = Trace.stats () in
  Alcotest.(check int) "recorded all" 20 st.Trace.recorded;
  Alcotest.(check int) "retained = capacity" 8 st.Trace.retained;
  Alcotest.(check int) "overwritten = rest" 12 st.Trace.overwritten;
  (* per-kind totals survive the wrap *)
  Alcotest.(check int)
    "kind_counts survives wrap" 20
    (List.assoc Trace.Query (Trace.kind_counts ()));
  (match Trace.kind_histogram Trace.Query with
   | None -> Alcotest.fail "no duration histogram"
   | Some h -> Alcotest.(check int) "histogram saw every close" 20 (Metrics.Histogram.count h));
  (* retained window is oldest-first and contiguous *)
  let seqs = ref [] in
  Trace.iter_spans (fun s -> seqs := s.Trace.seq :: !seqs);
  Alcotest.(check (list int)) "oldest first" [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.rev !seqs);
  Trace.reset ()

let stale_token_dropped () =
  Trace.enable ~capacity:4 ();
  let tok = Trace.begin_ Trace.Join in
  (* wrap the ring so tok's slot is reused before the close arrives *)
  for i = 1 to 8 do
    Trace.end_arg (Trace.begin_ Trace.Query) i
  done;
  Trace.end_arg tok 7;
  let st = Trace.stats () in
  Alcotest.(check int) "stale end counted, not applied" 1 st.Trace.dropped_ends;
  Trace.reset ()

(* ---------- export round-trip + schema ---------- *)

let populate_ring () =
  Trace.enable ~capacity:64 ();
  List.iter
    (fun k ->
      let tok = Trace.begin_ k in
      Trace.end_arg tok 11)
    [ Trace.Parse; Trace.Plan; Trace.Probe; Trace.Fetch; Trace.Join;
      Trace.Materialize; Trace.Query ];
  Trace.event Trace.Path_promoted 3;
  Trace.event_note Trace.Path_evicted 5 "b.c";
  ignore (Trace.begin_ Trace.Refresh) (* left open: aborted lifecycle *)

let export_roundtrip () =
  populate_ring ();
  let jsonl = Filename.temp_file "apex_trace" ".jsonl" in
  Export.save_jsonl jsonl;
  (match Export.read_jsonl jsonl with
   | Error m -> Alcotest.failf "read_jsonl: %s" m
   | Ok records ->
     Alcotest.(check int) "all slots exported" 10 (List.length records);
     let spans = List.filter (fun r -> not r.Export.is_event) records in
     let events = List.filter (fun r -> r.Export.is_event) records in
     Alcotest.(check int) "8 spans" 8 (List.length spans);
     Alcotest.(check int) "2 events" 2 (List.length events);
     let names = List.map (fun r -> r.Export.name) spans in
     List.iter
       (fun n ->
         Alcotest.(check bool) ("span " ^ n) true (List.mem n names))
       [ "parse"; "plan"; "probe"; "fetch"; "join"; "materialize"; "query";
         "refresh" ];
     let noted = List.find (fun r -> r.Export.name = "path_evicted") events in
     Alcotest.(check string) "note survives" "b.c" noted.Export.note;
     Alcotest.(check int) "arg survives" 5 noted.Export.arg;
     (* aggregation: every closed span kind lands in summarize *)
     let hists = Export.summarize records in
     Alcotest.(check bool) "probe summarized" true
       (List.mem_assoc "probe" hists);
     Alcotest.(check (list (pair string int)))
       "event totals" [ ("path_evicted", 1); ("path_promoted", 1) ]
       (Export.event_totals records));
  Sys.remove jsonl;
  Trace.reset ()

(* The serving-lifecycle kinds (concurrent server, lib/server) are spans —
   they carry durations for the publish/retire/pin phases — with stable
   export names that downstream tooling (apexctl stats) keys on. *)
let serving_kinds_export () =
  Trace.enable ~capacity:16 ();
  Trace.end_arg (Trace.begin_ Trace.Epoch_publish) 2;
  Trace.end_arg (Trace.begin_ Trace.Epoch_retire) 1;
  Trace.end_arg (Trace.begin_ Trace.Reader_pin) 2;
  List.iter
    (fun (k, name) ->
      Alcotest.(check string) "kind_name" name (Trace.kind_name k);
      Alcotest.(check bool) (name ^ " is a span") false (Trace.kind_is_event k))
    [ (Trace.Epoch_publish, "epoch_publish");
      (Trace.Epoch_retire, "epoch_retire");
      (Trace.Reader_pin, "reader_pin")
    ];
  let jsonl = Filename.temp_file "apex_trace" ".jsonl" in
  Export.save_jsonl jsonl;
  (match Export.read_jsonl jsonl with
   | Error m -> Alcotest.failf "read_jsonl: %s" m
   | Ok records ->
     let spans = List.filter (fun r -> not r.Export.is_event) records in
     Alcotest.(check int) "3 spans" 3 (List.length spans);
     let names = List.map (fun r -> r.Export.name) spans in
     List.iter
       (fun n -> Alcotest.(check bool) ("span " ^ n) true (List.mem n names))
       [ "epoch_publish"; "epoch_retire"; "reader_pin" ]);
  Sys.remove jsonl;
  Trace.reset ()

let schema_validation () =
  populate_ring ();
  let jsonl = Filename.temp_file "apex_trace" ".jsonl" in
  let chrome = Filename.temp_file "apex_trace" ".trace.json" in
  Export.save_jsonl jsonl;
  Export.save_chrome chrome;
  (match Export.Schema.load schema_path with
   | Error m -> Alcotest.failf "schema load: %s" m
   | Ok schema ->
     (match Export.Schema.validate_jsonl schema jsonl with
      | Error errs -> Alcotest.failf "jsonl invalid: %s" (String.concat "; " errs)
      | Ok n -> Alcotest.(check int) "jsonl lines conform" 10 n);
     (match Export.Schema.validate_chrome schema chrome with
      | Error errs -> Alcotest.failf "chrome invalid: %s" (String.concat "; " errs)
      | Ok n -> Alcotest.(check int) "chrome events conform" 10 n);
     (* the validator must actually reject garbage *)
     let bad = Filename.temp_file "apex_trace_bad" ".jsonl" in
     let oc = open_out bad in
     output_string oc "{\"type\":\"span\",\"name\":\"x\"}\n";
     close_out oc;
     (match Export.Schema.validate_jsonl schema bad with
      | Ok _ -> Alcotest.fail "validator accepted a record missing fields"
      | Error _ -> ());
     Sys.remove bad);
  Sys.remove jsonl;
  Sys.remove chrome;
  Trace.reset ()

(* ---------- metrics registry ---------- *)

let registry_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "q.count" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  let c' = Metrics.counter m "q.count" in
  Metrics.incr c';
  Alcotest.(check int) "get-or-create shares state" 6 (Metrics.value c);
  let g = Metrics.gauge m "pool.fill" in
  Metrics.set g 0.75;
  (match Metrics.snapshot m with
   | [ ("pool.fill", Metrics.Level l); ("q.count", Metrics.Count n) ] ->
     Alcotest.(check (float 1e-9)) "gauge level" 0.75 l;
     Alcotest.(check int) "count" 6 n
   | _ -> Alcotest.fail "snapshot shape");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: \"q.count\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge m "q.count"))

let registry_sources () =
  let m = Metrics.create () in
  let hits = ref 0 in
  Metrics.register_source m "io" (fun () ->
      [ ("hits", float_of_int !hits); ("misses", 2.) ]);
  hits := 9;
  let snap = Metrics.snapshot m in
  (match List.assoc "io.hits" snap with
   | Metrics.Level l -> Alcotest.(check (float 1e-9)) "live source value" 9. l
   | _ -> Alcotest.fail "io.hits not a gauge");
  Alcotest.(check bool) "prefixed" true (List.mem_assoc "io.misses" snap)

(* ---------- histogram properties ---------- *)

let of_samples l =
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.record h) l;
  h

(* durations in seconds: zero, sub-ns, and up to ~minutes, plus negatives
   (clock went backwards) which must land in bucket 0, not crash *)
let gen_sample =
  QCheck.Gen.(
    oneof
      [
        return 0.;
        map (fun x -> x *. 1e-9) (float_bound_inclusive 10.);
        map (fun x -> x *. 1e-3) (float_bound_inclusive 10.);
        float_bound_inclusive 100.;
        map Float.neg (float_bound_inclusive 1.);
      ])

let arb_samples =
  QCheck.make
    ~print:QCheck.Print.(list float)
    QCheck.Gen.(list_size (int_bound 50) gen_sample)

let prop_merge_assoc =
  QCheck.Test.make ~count:300 ~name:"histogram merge is associative"
    (QCheck.triple arb_samples arb_samples arb_samples)
    (fun (a, b, c) ->
      let ha = of_samples a and hb = of_samples b and hc = of_samples c in
      let open Metrics.Histogram in
      equal_counts (merge (merge ha hb) hc) (merge ha (merge hb hc))
      && equal_counts (merge ha hb) (merge hb ha))

let prop_merge_sum_stable =
  (* [sum] is carried as a compensated (hi, comp) pair and merge combines
     the pairs with error-free transformations, so the merged sum must be
     *bit-identical* no matter how shards are associated or ordered — the
     guarantee that lets sharded collectors merge in whatever order their
     threads finish. Float.equal, not a tolerance. *)
  QCheck.Test.make ~count:300 ~name:"merged sum is association-invariant"
    (QCheck.triple arb_samples arb_samples arb_samples)
    (fun (a, b, c) ->
      let ha = of_samples a and hb = of_samples b and hc = of_samples c in
      let open Metrics.Histogram in
      Float.equal (sum (merge (merge ha hb) hc)) (sum (merge ha (merge hb hc)))
      && Float.equal (sum (merge ha hb)) (sum (merge hb ha)))

let test_sum_compensation () =
  (* regression: the histogram sum used to be a bare [+.] accumulator, so
     recording [1e16; 1.; -1e16] returned 0. — the 1. fell below the
     accumulator's ulp and p50/p99 reports on long mixed-magnitude runs
     drifted. The compensated pair keeps it. *)
  let h = of_samples [ 1e16; 1.; -1e16 ] in
  Alcotest.(check (float 0.0)) "small term survives" 1. (Metrics.Histogram.sum h);
  let shards = [ of_samples [ 1e16 ]; of_samples [ 1. ]; of_samples [ -1e16 ] ] in
  let merged = List.fold_left Metrics.Histogram.merge (Metrics.Histogram.create ()) shards in
  Alcotest.(check (float 0.0)) "survives sharded merge too" 1.
    (Metrics.Histogram.sum merged)

let prop_merge_is_concat =
  QCheck.Test.make ~count:300 ~name:"merge a b = histogram of a @ b"
    (QCheck.pair arb_samples arb_samples)
    (fun (a, b) ->
      Metrics.Histogram.equal_counts
        (Metrics.Histogram.merge (of_samples a) (of_samples b))
        (of_samples (a @ b)))

let prop_bucket_conservation =
  QCheck.Test.make ~count:300 ~name:"bucket counts sum to sample count"
    arb_samples
    (fun l ->
      let h = of_samples l in
      let buckets = Metrics.Histogram.bucket_counts h in
      Array.length buckets = Metrics.Histogram.n_buckets
      && Array.fold_left ( + ) 0 buckets = List.length l
      && Metrics.Histogram.count h = List.length l)

let prop_quantile_bounded =
  QCheck.Test.make ~count:300 ~name:"quantiles stay within observed range"
    arb_samples
    (fun l ->
      QCheck.assume (l <> []);
      let h = of_samples l in
      let lo = Metrics.Histogram.min_value h
      and hi = Metrics.Histogram.max_value h in
      List.for_all
        (fun q ->
          let v = Metrics.Histogram.quantile h q in
          v >= lo && v <= hi)
        [ 0.; 0.5; 0.9; 0.99; 1. ])

(* ---------- flight recorder ---------- *)

(* The whole point of the flight recorder is staying armed in production:
   the record path must not allocate. Same Gc.minor_words technique as
   the disabled-tracer test. *)
let flight_zero_alloc () =
  let f = Flight.create ~capacity:256 () in
  Flight.tick f;
  Flight.set_watchdog f ~threshold:1.0;
  Alcotest.(check bool) "armed on creation" true (Flight.is_armed f);
  for i = 1 to 100 do
    Flight.record f Flight.Query ~a:1 ~b:i;
    ignore (Flight.check_latency f ~generation:1 ~latency_ns:i : bool)
  done;
  let n = 100_000 in
  let before = Gc.minor_words () in
  for i = 1 to n do
    Flight.record f Flight.Query ~a:1 ~b:i;
    Flight.record f Flight.Publish ~a:i ~b:0;
    ignore (Flight.check_latency f ~generation:i ~latency_ns:1000 : bool)
  done;
  let per_op = (Gc.minor_words () -. before) /. float_of_int (3 * n) in
  Alcotest.(check bool)
    (Printf.sprintf "armed record allocates (%.4f words/op)" per_op)
    true (per_op < 0.01)

let flight_ring_wrap () =
  let f = Flight.create ~capacity:8 () in
  Flight.tick f;
  for i = 1 to 20 do
    Flight.record f Flight.Mark ~a:i ~b:0
  done;
  let st = Flight.stats f in
  Alcotest.(check int) "recorded" 20 st.Flight.recorded;
  Alcotest.(check int) "retained" 8 st.Flight.retained;
  Alcotest.(check int) "overwritten" 12 st.Flight.overwritten;
  (* oldest first, contiguous sequence, and only the newest 8 survive *)
  let seen = ref [] in
  Flight.iter_events f (fun e -> seen := e.Flight.ev_a :: !seen);
  Alcotest.(check (list int)) "newest retained oldest-first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.rev !seen);
  Alcotest.(check int) "per-kind count survives wrap" 20
    (List.assoc Flight.Mark (Flight.kind_counts f));
  (* disarm: records become flag tests, nothing changes *)
  Flight.disarm f;
  Flight.record f Flight.Mark ~a:99 ~b:0;
  Alcotest.(check int) "disarmed record dropped" 20 (Flight.stats f).Flight.recorded

let flight_watchdog () =
  let f = Flight.create ~capacity:32 () in
  Flight.tick f;
  Alcotest.(check bool) "no threshold, no trip" false
    (Flight.check_latency f ~generation:1 ~latency_ns:1_000_000_000);
  Flight.set_watchdog f ~threshold:0.001;
  Alcotest.(check bool) "under threshold" false
    (Flight.check_latency f ~generation:1 ~latency_ns:500_000);
  Alcotest.(check bool) "over threshold trips" true
    (Flight.check_latency f ~generation:2 ~latency_ns:2_000_000);
  Alcotest.(check int) "trip counted" 1 (Flight.trips f);
  Alcotest.(check int) "trip recorded as event" 1
    (List.assoc Flight.Watchdog_trip (Flight.kind_counts f))

(* dump -> validate against the committed contract -> parse back *)
let flight_incident_roundtrip () =
  let metrics = Metrics.create () in
  let c = Metrics.counter metrics "test.queries" in
  let f = Flight.create ~capacity:16 ~metrics () in
  Flight.tick f;
  Flight.record f Flight.Publish ~a:2 ~b:0;
  Flight.record f Flight.Query ~a:2 ~b:1500;
  Metrics.add c 7;
  let path = Filename.temp_file "apex_incident" ".json" in
  Flight.dump ~reason:"unit test" f path;
  Alcotest.(check int) "dump counted" 1 (Flight.dumps f);
  (match Flight.validate_file ~schema_path:incident_schema_path path with
   | Ok () -> ()
   | Error errors ->
     Alcotest.failf "incident file invalid: %s" (String.concat "; " errors));
  let text = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  let json =
    match Json.parse text with Ok v -> v | Error e -> Alcotest.failf "parse: %s" e
  in
  (match Option.bind (Json.member "incident" json) (Json.member "reason") with
   | Some (Json.Str "unit test") -> ()
   | _ -> Alcotest.fail "reason not preserved");
  (* the counter bumped after the baseline snapshot must show delta 7 *)
  let deltas = match Json.member "metrics" json with Some (Json.Arr l) -> l | _ -> [] in
  let test_delta =
    List.find_opt
      (fun m -> Json.member "name" m = Some (Json.Str "test.queries"))
      deltas
  in
  (match Option.bind test_delta (Json.member "delta") with
   | Some (Json.Num d) -> Alcotest.(check (float 1e-9)) "metric delta" 7. d
   | _ -> Alcotest.fail "test.queries delta missing")

let flight_guard_dumps_on_raise () =
  let f = Flight.create ~capacity:16 () in
  let path = Filename.temp_file "apex_incident" ".json" in
  (match Flight.guard f ~dump_to:path (fun () -> failwith "boom") with
   | () -> Alcotest.fail "guard swallowed the exception"
   | exception Failure m -> Alcotest.(check string) "re-raised" "boom" m);
  Alcotest.(check int) "fatal recorded" 1
    (List.assoc Flight.Fatal (Flight.kind_counts f));
  (match Flight.validate_file ~schema_path:incident_schema_path path with
   | Ok () -> ()
   | Error errors -> Alcotest.failf "fatal dump invalid: %s" (String.concat "; " errors));
  Sys.remove path

(* ---------- SLO monitor ---------- *)

let objective name q threshold =
  { Slo.slo_name = name; slo_quantile = q; slo_threshold = threshold }

let slo_empty_no_breach () =
  let s = Slo.create [ objective "q1" 0.99 0.01 ] in
  let st = List.hd (Slo.advance s) in
  Alcotest.(check bool) "no estimate on empty window" true (st.Slo.st_estimate = None);
  Alcotest.(check bool) "empty window never breaches" false st.Slo.st_breached;
  Alcotest.(check (float 1e-9)) "no burn" 0. st.Slo.st_burn;
  Alcotest.(check int) "nothing counted" 0 (Slo.breach_total s)

let slo_single_sample_exact () =
  let s = Slo.create [ objective "q" 0.99 0.005 ] in
  Slo.observe s 0 0.004;
  let st = List.hd (Slo.current s) in
  (match st.Slo.st_estimate with
   | Some e -> Alcotest.(check (float 1e-9)) "1-sample window reports the sample" 0.004 e
   | None -> Alcotest.fail "no estimate");
  Alcotest.(check bool) "under threshold" false st.Slo.st_breached

let slo_breach_burn_and_rotation () =
  let s = Slo.create ~subwindows:2 [ objective "q1" 0.5 0.001 ] in
  (match Slo.index s "q1" with
   | Some 0 -> ()
   | _ -> Alcotest.fail "index by name");
  Alcotest.(check bool) "unknown name" true (Slo.index s "nope" = None);
  for _ = 1 to 100 do
    Slo.observe s 0 0.1 (* two decades over the 1ms threshold *)
  done;
  let st = List.hd (Slo.advance s) in
  Alcotest.(check bool) "breached" true st.Slo.st_breached;
  Alcotest.(check int) "samples" 100 st.Slo.st_samples;
  Alcotest.(check bool) "burn rate positive" true (st.Slo.st_burn > 1.);
  Alcotest.(check int) "breach counted" 1 (Slo.breach_total s);
  Alcotest.(check bool) "breached flag latched" true (Slo.breached s);
  (* rotation: after [subwindows] further advances the samples age out and
     the objective recovers *)
  ignore (Slo.advance s : Slo.status list);
  let st = List.hd (Slo.advance s) in
  Alcotest.(check bool) "window drained after rotation" true
    (st.Slo.st_estimate = None);
  Alcotest.(check bool) "breach clears" false (Slo.breached s)

let slo_parse_and_validate () =
  (match Slo.parse_objectives "q1:p99:0.005, q2:p99.9:0.02" with
   | Ok [ a; b ] ->
     Alcotest.(check string) "first name" "q1" a.Slo.slo_name;
     Alcotest.(check (float 1e-9)) "p99" 0.99 a.Slo.slo_quantile;
     Alcotest.(check (float 1e-9)) "p99.9" 0.999 b.Slo.slo_quantile;
     Alcotest.(check (float 1e-9)) "threshold" 0.02 b.Slo.slo_threshold
   | Ok _ -> Alcotest.fail "wrong arity"
   | Error e -> Alcotest.fail e);
  (match Slo.parse_objectives "bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted a bogus spec");
  (match Slo.parse_objectives "q1:p200:0.1" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted p200");
  (match Slo.create [ objective "x" 1.5 0.1 ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "accepted quantile 1.5");
  match Slo.create [ objective "x" 0.9 0. ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero threshold"

(* ---------- low-count percentile handling ---------- *)

let low_count_percentiles () =
  let h0 = Metrics.Histogram.create () in
  let h1 = Metrics.Histogram.create () in
  Metrics.Histogram.record h1 0.0042;
  Alcotest.(check bool) "quantile_opt empty" true
    (Metrics.Histogram.quantile_opt h0 0.5 = None);
  (match Metrics.Histogram.quantile_opt h1 0.99 with
   | Some v -> Alcotest.(check (float 1e-12)) "single sample exact" 0.0042 v
   | None -> Alcotest.fail "quantile_opt on 1 sample");
  let table = Export.percentile_table [ ("empty", h0); ("single", h1) ] in
  (* the empty row renders "-" in every value column (0 is a legal
     latency, absent data is not); the 1-sample row reports the sample *)
  Alcotest.(check bool) "empty row dashed" true (contains table "-");
  Alcotest.(check bool) "no bogus 0ns from the empty row" false (contains table "0ns");
  Alcotest.(check bool) "single row exact" true (contains table "4.20ms")

(* ---------- GC source ---------- *)

let gc_source_registered () =
  let m = Metrics.create () in
  Metrics.register_gc m;
  let names = List.map fst (Metrics.snapshot m) in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("gc." ^ key) true (List.mem ("gc." ^ key) names))
    [ "minor_words"; "major_words"; "heap_words"; "minor_collections" ];
  (* sanity: a fresh allocation moves the minor-words gauge *)
  let level () =
    match List.assoc "gc.minor_words" (Metrics.snapshot m) with
    | Metrics.Level l -> l
    | _ -> Alcotest.fail "gc.minor_words not a gauge"
  in
  let before = level () in
  (* small boxed allocations land in the minor heap *)
  let acc = ref [] in
  for i = 1 to 1000 do
    acc := (i, float_of_int i) :: !acc
  done;
  ignore (Sys.opaque_identity !acc);
  Alcotest.(check bool) "minor words advance" true (level () > before)

(* ---------- Prometheus-style exposition ---------- *)

let exposition_format () =
  let m = Metrics.create () in
  let c = Metrics.counter m "server.publishes" in
  Metrics.add c 3;
  let g = Metrics.gauge m "server.generation" in
  Metrics.set g 4.;
  let h = Metrics.histogram m "query latency (s)" in
  Metrics.Histogram.record h 0.001;
  Metrics.Histogram.record h 0.004;
  let text = Export.exposition m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains text needle))
    [ "# TYPE apex_server_publishes counter";
      "apex_server_publishes 3";
      "# TYPE apex_server_generation gauge";
      "apex_server_generation 4";
      (* names sanitized to [a-zA-Z0-9_] *)
      "# TYPE apex_query_latency__s_ histogram";
      "apex_query_latency__s__bucket{le=\"";
      "apex_query_latency__s__bucket{le=\"+Inf\"} 2";
      "apex_query_latency__s__count 2"
    ];
  (* cumulative buckets: counts along le-ordered buckets never decrease
     and end at _count *)
  let bucket_counts =
    List.filter_map
      (fun line ->
        if contains line "_bucket{le=" then
          match String.rindex_opt line ' ' with
          | Some i ->
            int_of_string_opt (String.sub line (i + 1) (String.length line - i - 1))
          | None -> None
        else None)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "buckets cumulative" true
    (List.sort compare bucket_counts = bucket_counts);
  Alcotest.(check int) "last bucket is total" 2
    (List.nth bucket_counts (List.length bucket_counts - 1))

let () =
  Alcotest.run "telemetry"
    [
      ( "disabled_path",
        [
          Alcotest.test_case "zero allocation" `Quick disabled_zero_alloc;
          Alcotest.test_case "end on -1 is a no-op" `Quick disabled_end_is_noop;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wrap accounting" `Quick ring_wrap_accounting;
          Alcotest.test_case "stale token dropped" `Quick stale_token_dropped;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl round-trip" `Quick export_roundtrip;
          Alcotest.test_case "serving kinds" `Quick serving_kinds_export;
          Alcotest.test_case "schema validation" `Quick schema_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry basics" `Quick registry_basics;
          Alcotest.test_case "live sources" `Quick registry_sources;
        ] );
      ( "histogram_properties",
        [
          QCheck_alcotest.to_alcotest prop_merge_assoc;
          QCheck_alcotest.to_alcotest prop_merge_sum_stable;
          Alcotest.test_case "compensated sum" `Quick test_sum_compensation;
          QCheck_alcotest.to_alcotest prop_merge_is_concat;
          QCheck_alcotest.to_alcotest prop_bucket_conservation;
          QCheck_alcotest.to_alcotest prop_quantile_bounded;
        ] );
      ( "flight",
        [
          Alcotest.test_case "armed record is zero-alloc" `Quick flight_zero_alloc;
          Alcotest.test_case "ring wrap accounting" `Quick flight_ring_wrap;
          Alcotest.test_case "latency watchdog" `Quick flight_watchdog;
          Alcotest.test_case "incident dump validates" `Quick flight_incident_roundtrip;
          Alcotest.test_case "guard dumps on raise" `Quick flight_guard_dumps_on_raise;
        ] );
      ( "slo",
        [
          Alcotest.test_case "empty window never breaches" `Quick slo_empty_no_breach;
          Alcotest.test_case "1-sample window exact" `Quick slo_single_sample_exact;
          Alcotest.test_case "breach, burn, rotation" `Quick slo_breach_burn_and_rotation;
          Alcotest.test_case "spec parsing and validation" `Quick slo_parse_and_validate;
        ] );
      ( "observability_export",
        [
          Alcotest.test_case "low-count percentile rows" `Quick low_count_percentiles;
          Alcotest.test_case "gc source registered" `Quick gc_source_registered;
          Alcotest.test_case "prometheus exposition" `Quick exposition_format;
        ] );
    ]
