(* Telemetry subsystem tests.

   The load-bearing guarantee is the disabled path: instrumentation sits
   unconditionally in per-query hot loops, so with tracing off every
   entry point must be a flag test — no allocation at all. We assert
   that with [Gc.minor_words], the same way one would catch an
   accidental [Some]/closure allocation sneaking into [begin_]/[end_arg].

   The enabled path is checked end to end: ring wrap accounting,
   JSONL/Chrome export, the file reader, and the schema validator run
   against the checked-in [schemas/trace_schema.json]. Histogram
   arithmetic is property-tested: merge associativity/commutativity
   modulo float [sum] (excluded by [equal_counts]) and bucket-count
   conservation. *)

module Metrics = Repro_telemetry.Metrics
module Trace = Repro_telemetry.Trace
module Export = Repro_telemetry.Export

let schema_path = Filename.concat ".." (Filename.concat "schemas" "trace_schema.json")

(* ---------- disabled path: zero allocation ---------- *)

let disabled_zero_alloc () =
  Trace.reset ();
  Alcotest.(check bool) "tracer off" false (Trace.is_enabled ());
  let n = 100_000 in
  (* warm up so any one-time lazy setup is paid before measuring *)
  for _ = 1 to 100 do
    Trace.end_arg (Trace.begin_ Trace.Probe) 1
  done;
  let before = Gc.minor_words () in
  for i = 1 to n do
    let tok = Trace.begin_ Trace.Probe in
    Trace.end_arg tok i;
    let tok2 = Trace.begin_ Trace.Fetch in
    Trace.end_ tok2;
    Trace.event Trace.Path_promoted i;
    (* the serving-layer kinds sit on the reader/writer hot paths of the
       concurrent server — same zero-allocation bar *)
    Trace.end_arg (Trace.begin_ Trace.Reader_pin) i;
    Trace.end_arg (Trace.begin_ Trace.Epoch_publish) i;
    Trace.end_arg (Trace.begin_ Trace.Epoch_retire) i
  done;
  let delta = Gc.minor_words () -. before in
  let per_op = delta /. float_of_int (11 * n) in
  if per_op >= 0.01 then
    Alcotest.failf "disabled tracer allocates: %.0f minor words over %d ops"
      delta (11 * n);
  Alcotest.(check int) "begin_ returns -1 when off" (-1) (Trace.begin_ Trace.Join)

let disabled_end_is_noop () =
  Trace.reset ();
  Trace.end_ (-1);
  Trace.end_arg (-1) 42;
  let st = Trace.stats () in
  Alcotest.(check int) "nothing recorded" 0 st.Trace.recorded;
  Alcotest.(check int) "no dropped ends" 0 st.Trace.dropped_ends

(* ---------- ring accounting ---------- *)

let ring_wrap_accounting () =
  Trace.enable ~capacity:8 ();
  for i = 1 to 20 do
    Trace.end_arg (Trace.begin_ Trace.Query) i
  done;
  let st = Trace.stats () in
  Alcotest.(check int) "recorded all" 20 st.Trace.recorded;
  Alcotest.(check int) "retained = capacity" 8 st.Trace.retained;
  Alcotest.(check int) "overwritten = rest" 12 st.Trace.overwritten;
  (* per-kind totals survive the wrap *)
  Alcotest.(check int)
    "kind_counts survives wrap" 20
    (List.assoc Trace.Query (Trace.kind_counts ()));
  (match Trace.kind_histogram Trace.Query with
   | None -> Alcotest.fail "no duration histogram"
   | Some h -> Alcotest.(check int) "histogram saw every close" 20 (Metrics.Histogram.count h));
  (* retained window is oldest-first and contiguous *)
  let seqs = ref [] in
  Trace.iter_spans (fun s -> seqs := s.Trace.seq :: !seqs);
  Alcotest.(check (list int)) "oldest first" [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.rev !seqs);
  Trace.reset ()

let stale_token_dropped () =
  Trace.enable ~capacity:4 ();
  let tok = Trace.begin_ Trace.Join in
  (* wrap the ring so tok's slot is reused before the close arrives *)
  for i = 1 to 8 do
    Trace.end_arg (Trace.begin_ Trace.Query) i
  done;
  Trace.end_arg tok 7;
  let st = Trace.stats () in
  Alcotest.(check int) "stale end counted, not applied" 1 st.Trace.dropped_ends;
  Trace.reset ()

(* ---------- export round-trip + schema ---------- *)

let populate_ring () =
  Trace.enable ~capacity:64 ();
  List.iter
    (fun k ->
      let tok = Trace.begin_ k in
      Trace.end_arg tok 11)
    [ Trace.Parse; Trace.Plan; Trace.Probe; Trace.Fetch; Trace.Join;
      Trace.Materialize; Trace.Query ];
  Trace.event Trace.Path_promoted 3;
  Trace.event_note Trace.Path_evicted 5 "b.c";
  ignore (Trace.begin_ Trace.Refresh) (* left open: aborted lifecycle *)

let export_roundtrip () =
  populate_ring ();
  let jsonl = Filename.temp_file "apex_trace" ".jsonl" in
  Export.save_jsonl jsonl;
  (match Export.read_jsonl jsonl with
   | Error m -> Alcotest.failf "read_jsonl: %s" m
   | Ok records ->
     Alcotest.(check int) "all slots exported" 10 (List.length records);
     let spans = List.filter (fun r -> not r.Export.is_event) records in
     let events = List.filter (fun r -> r.Export.is_event) records in
     Alcotest.(check int) "8 spans" 8 (List.length spans);
     Alcotest.(check int) "2 events" 2 (List.length events);
     let names = List.map (fun r -> r.Export.name) spans in
     List.iter
       (fun n ->
         Alcotest.(check bool) ("span " ^ n) true (List.mem n names))
       [ "parse"; "plan"; "probe"; "fetch"; "join"; "materialize"; "query";
         "refresh" ];
     let noted = List.find (fun r -> r.Export.name = "path_evicted") events in
     Alcotest.(check string) "note survives" "b.c" noted.Export.note;
     Alcotest.(check int) "arg survives" 5 noted.Export.arg;
     (* aggregation: every closed span kind lands in summarize *)
     let hists = Export.summarize records in
     Alcotest.(check bool) "probe summarized" true
       (List.mem_assoc "probe" hists);
     Alcotest.(check (list (pair string int)))
       "event totals" [ ("path_evicted", 1); ("path_promoted", 1) ]
       (Export.event_totals records));
  Sys.remove jsonl;
  Trace.reset ()

(* The serving-lifecycle kinds (concurrent server, lib/server) are spans —
   they carry durations for the publish/retire/pin phases — with stable
   export names that downstream tooling (apexctl stats) keys on. *)
let serving_kinds_export () =
  Trace.enable ~capacity:16 ();
  Trace.end_arg (Trace.begin_ Trace.Epoch_publish) 2;
  Trace.end_arg (Trace.begin_ Trace.Epoch_retire) 1;
  Trace.end_arg (Trace.begin_ Trace.Reader_pin) 2;
  List.iter
    (fun (k, name) ->
      Alcotest.(check string) "kind_name" name (Trace.kind_name k);
      Alcotest.(check bool) (name ^ " is a span") false (Trace.kind_is_event k))
    [ (Trace.Epoch_publish, "epoch_publish");
      (Trace.Epoch_retire, "epoch_retire");
      (Trace.Reader_pin, "reader_pin")
    ];
  let jsonl = Filename.temp_file "apex_trace" ".jsonl" in
  Export.save_jsonl jsonl;
  (match Export.read_jsonl jsonl with
   | Error m -> Alcotest.failf "read_jsonl: %s" m
   | Ok records ->
     let spans = List.filter (fun r -> not r.Export.is_event) records in
     Alcotest.(check int) "3 spans" 3 (List.length spans);
     let names = List.map (fun r -> r.Export.name) spans in
     List.iter
       (fun n -> Alcotest.(check bool) ("span " ^ n) true (List.mem n names))
       [ "epoch_publish"; "epoch_retire"; "reader_pin" ]);
  Sys.remove jsonl;
  Trace.reset ()

let schema_validation () =
  populate_ring ();
  let jsonl = Filename.temp_file "apex_trace" ".jsonl" in
  let chrome = Filename.temp_file "apex_trace" ".trace.json" in
  Export.save_jsonl jsonl;
  Export.save_chrome chrome;
  (match Export.Schema.load schema_path with
   | Error m -> Alcotest.failf "schema load: %s" m
   | Ok schema ->
     (match Export.Schema.validate_jsonl schema jsonl with
      | Error errs -> Alcotest.failf "jsonl invalid: %s" (String.concat "; " errs)
      | Ok n -> Alcotest.(check int) "jsonl lines conform" 10 n);
     (match Export.Schema.validate_chrome schema chrome with
      | Error errs -> Alcotest.failf "chrome invalid: %s" (String.concat "; " errs)
      | Ok n -> Alcotest.(check int) "chrome events conform" 10 n);
     (* the validator must actually reject garbage *)
     let bad = Filename.temp_file "apex_trace_bad" ".jsonl" in
     let oc = open_out bad in
     output_string oc "{\"type\":\"span\",\"name\":\"x\"}\n";
     close_out oc;
     (match Export.Schema.validate_jsonl schema bad with
      | Ok _ -> Alcotest.fail "validator accepted a record missing fields"
      | Error _ -> ());
     Sys.remove bad);
  Sys.remove jsonl;
  Sys.remove chrome;
  Trace.reset ()

(* ---------- metrics registry ---------- *)

let registry_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "q.count" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  let c' = Metrics.counter m "q.count" in
  Metrics.incr c';
  Alcotest.(check int) "get-or-create shares state" 6 (Metrics.value c);
  let g = Metrics.gauge m "pool.fill" in
  Metrics.set g 0.75;
  (match Metrics.snapshot m with
   | [ ("pool.fill", Metrics.Level l); ("q.count", Metrics.Count n) ] ->
     Alcotest.(check (float 1e-9)) "gauge level" 0.75 l;
     Alcotest.(check int) "count" 6 n
   | _ -> Alcotest.fail "snapshot shape");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: \"q.count\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge m "q.count"))

let registry_sources () =
  let m = Metrics.create () in
  let hits = ref 0 in
  Metrics.register_source m "io" (fun () ->
      [ ("hits", float_of_int !hits); ("misses", 2.) ]);
  hits := 9;
  let snap = Metrics.snapshot m in
  (match List.assoc "io.hits" snap with
   | Metrics.Level l -> Alcotest.(check (float 1e-9)) "live source value" 9. l
   | _ -> Alcotest.fail "io.hits not a gauge");
  Alcotest.(check bool) "prefixed" true (List.mem_assoc "io.misses" snap)

(* ---------- histogram properties ---------- *)

let of_samples l =
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.record h) l;
  h

(* durations in seconds: zero, sub-ns, and up to ~minutes, plus negatives
   (clock went backwards) which must land in bucket 0, not crash *)
let gen_sample =
  QCheck.Gen.(
    oneof
      [
        return 0.;
        map (fun x -> x *. 1e-9) (float_bound_inclusive 10.);
        map (fun x -> x *. 1e-3) (float_bound_inclusive 10.);
        float_bound_inclusive 100.;
        map Float.neg (float_bound_inclusive 1.);
      ])

let arb_samples =
  QCheck.make
    ~print:QCheck.Print.(list float)
    QCheck.Gen.(list_size (int_bound 50) gen_sample)

let prop_merge_assoc =
  QCheck.Test.make ~count:300 ~name:"histogram merge is associative"
    (QCheck.triple arb_samples arb_samples arb_samples)
    (fun (a, b, c) ->
      let ha = of_samples a and hb = of_samples b and hc = of_samples c in
      let open Metrics.Histogram in
      equal_counts (merge (merge ha hb) hc) (merge ha (merge hb hc))
      && equal_counts (merge ha hb) (merge hb ha))

let prop_merge_sum_stable =
  (* [sum] is carried as a compensated (hi, comp) pair and merge combines
     the pairs with error-free transformations, so the merged sum must be
     *bit-identical* no matter how shards are associated or ordered — the
     guarantee that lets sharded collectors merge in whatever order their
     threads finish. Float.equal, not a tolerance. *)
  QCheck.Test.make ~count:300 ~name:"merged sum is association-invariant"
    (QCheck.triple arb_samples arb_samples arb_samples)
    (fun (a, b, c) ->
      let ha = of_samples a and hb = of_samples b and hc = of_samples c in
      let open Metrics.Histogram in
      Float.equal (sum (merge (merge ha hb) hc)) (sum (merge ha (merge hb hc)))
      && Float.equal (sum (merge ha hb)) (sum (merge hb ha)))

let test_sum_compensation () =
  (* regression: the histogram sum used to be a bare [+.] accumulator, so
     recording [1e16; 1.; -1e16] returned 0. — the 1. fell below the
     accumulator's ulp and p50/p99 reports on long mixed-magnitude runs
     drifted. The compensated pair keeps it. *)
  let h = of_samples [ 1e16; 1.; -1e16 ] in
  Alcotest.(check (float 0.0)) "small term survives" 1. (Metrics.Histogram.sum h);
  let shards = [ of_samples [ 1e16 ]; of_samples [ 1. ]; of_samples [ -1e16 ] ] in
  let merged = List.fold_left Metrics.Histogram.merge (Metrics.Histogram.create ()) shards in
  Alcotest.(check (float 0.0)) "survives sharded merge too" 1.
    (Metrics.Histogram.sum merged)

let prop_merge_is_concat =
  QCheck.Test.make ~count:300 ~name:"merge a b = histogram of a @ b"
    (QCheck.pair arb_samples arb_samples)
    (fun (a, b) ->
      Metrics.Histogram.equal_counts
        (Metrics.Histogram.merge (of_samples a) (of_samples b))
        (of_samples (a @ b)))

let prop_bucket_conservation =
  QCheck.Test.make ~count:300 ~name:"bucket counts sum to sample count"
    arb_samples
    (fun l ->
      let h = of_samples l in
      let buckets = Metrics.Histogram.bucket_counts h in
      Array.length buckets = Metrics.Histogram.n_buckets
      && Array.fold_left ( + ) 0 buckets = List.length l
      && Metrics.Histogram.count h = List.length l)

let prop_quantile_bounded =
  QCheck.Test.make ~count:300 ~name:"quantiles stay within observed range"
    arb_samples
    (fun l ->
      QCheck.assume (l <> []);
      let h = of_samples l in
      let lo = Metrics.Histogram.min_value h
      and hi = Metrics.Histogram.max_value h in
      List.for_all
        (fun q ->
          let v = Metrics.Histogram.quantile h q in
          v >= lo && v <= hi)
        [ 0.; 0.5; 0.9; 0.99; 1. ])

let () =
  Alcotest.run "telemetry"
    [
      ( "disabled_path",
        [
          Alcotest.test_case "zero allocation" `Quick disabled_zero_alloc;
          Alcotest.test_case "end on -1 is a no-op" `Quick disabled_end_is_noop;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wrap accounting" `Quick ring_wrap_accounting;
          Alcotest.test_case "stale token dropped" `Quick stale_token_dropped;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl round-trip" `Quick export_roundtrip;
          Alcotest.test_case "serving kinds" `Quick serving_kinds_export;
          Alcotest.test_case "schema validation" `Quick schema_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry basics" `Quick registry_basics;
          Alcotest.test_case "live sources" `Quick registry_sources;
        ] );
      ( "histogram_properties",
        [
          QCheck_alcotest.to_alcotest prop_merge_assoc;
          QCheck_alcotest.to_alcotest prop_merge_sum_stable;
          Alcotest.test_case "compensated sum" `Quick test_sum_compensation;
          QCheck_alcotest.to_alcotest prop_merge_is_concat;
          QCheck_alcotest.to_alcotest prop_bucket_conservation;
          QCheck_alcotest.to_alcotest prop_quantile_bounded;
        ] );
    ]
