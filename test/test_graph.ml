open Repro_graph
module F = Test_support.Fixtures

let edge_set = Alcotest.testable Edge_set.pp Edge_set.equal

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.equal (String.sub haystack i n) needle || go (i + 1)) in
  n = 0 || go 0

(* --- Edge_set --- *)

let test_pack_unpack () =
  List.iter
    (fun (u, v) -> Alcotest.(check (pair int int)) "roundtrip" (u, v) (Edge_set.unpack (Edge_set.pack u v)))
    [ (0, 0); (1, 2); (123456, 654321); (Edge_set.null, 0); ((1 lsl 31) - 1, (1 lsl 31) - 1) ]

let test_pack_bounds () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Edge_set.pack: component out of range (-1, 0)")
    (fun () -> ignore (Edge_set.pack (-1) 0));
  match Edge_set.pack (1 lsl 31) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out-of-range failure"

let test_edge_set_ops () =
  let a = Edge_set.of_list [ (1, 2); (3, 4) ] in
  let b = Edge_set.of_list [ (3, 4); (5, 6) ] in
  Alcotest.check edge_set "union" (Edge_set.of_list [ (1, 2); (3, 4); (5, 6) ]) (Edge_set.union a b);
  Alcotest.check edge_set "inter" (Edge_set.of_list [ (3, 4) ]) (Edge_set.inter a b);
  Alcotest.check edge_set "diff" (Edge_set.of_list [ (1, 2) ]) (Edge_set.diff a b);
  Alcotest.(check bool) "mem" true (Edge_set.mem a 3 4);
  Alcotest.(check bool) "not mem" false (Edge_set.mem a 3 5);
  Alcotest.(check int) "cardinal" 2 (Edge_set.cardinal a)

let test_endpoints_parents () =
  let s = Edge_set.of_list [ (Edge_set.null, 0); (1, 2); (3, 2); (1, 4) ] in
  Alcotest.(check (array int)) "endpoints" [| 0; 2; 4 |] (Edge_set.endpoints s);
  Alcotest.(check (array int)) "parents (null excluded)" [| 1; 3 |] (Edge_set.parents s)

let test_join () =
  (* a: reaches nodes 2 and 4; b: edges out of 2 and of 9 *)
  let a = Edge_set.of_list [ (1, 2); (3, 4) ] in
  let b = Edge_set.of_list [ (2, 7); (9, 8); (4, 6) ] in
  Alcotest.check edge_set "join keeps connected" (Edge_set.of_list [ (2, 7); (4, 6) ]) (Edge_set.join a b)

(* --- Label --- *)

let test_label_interning () =
  let t = Label.create_table () in
  let a = Label.intern t "movie" in
  let b = Label.intern t "actor" in
  let a' = Label.intern t "movie" in
  Alcotest.(check int) "same id" a a';
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check string) "to_string" "movie" (Label.to_string t a);
  Alcotest.(check int) "count" 2 (Label.count t);
  Alcotest.(check (option int)) "find known" (Some b) (Label.find t "actor");
  Alcotest.(check (option int)) "find unknown" None (Label.find t "nope")

let test_label_attribute () =
  let t = Label.create_table () in
  let at = Label.intern t "@actor" in
  let plain = Label.intern t "actor" in
  Alcotest.(check bool) "@ label" true (Label.is_attribute t at);
  Alcotest.(check bool) "plain label" false (Label.is_attribute t plain)

(* --- Data_graph on the MovieDB fixture --- *)

let test_movie_db_shape () =
  let g = F.movie_db () in
  Alcotest.(check int) "nodes" 11 (Data_graph.n_nodes g);
  Alcotest.(check int) "edges" 14 (Data_graph.n_edges g);
  Alcotest.(check int) "root" 0 (Data_graph.root g);
  Alcotest.(check (option string)) "leaf value" (Some "Waterworld") (Data_graph.value g 7);
  Alcotest.(check (option string)) "non-leaf value" None (Data_graph.value g 6)

let test_movie_db_t_paths () =
  let g = F.movie_db () in
  let t names = Data_graph.reachable_by_label_path g (F.path g names) in
  Alcotest.check edge_set "T(title)" (Edge_set.of_list [ (6, 7) ]) (t [ "title" ]);
  Alcotest.check edge_set "T(name)"
    (Edge_set.of_list [ (1, 2); (3, 4); (5, 8) ])
    (t [ "name" ]);
  Alcotest.check edge_set "T(actor.name)" (Edge_set.of_list [ (1, 2); (3, 4) ]) (t [ "actor"; "name" ]);
  Alcotest.check edge_set "T(movie.title)" (Edge_set.of_list [ (6, 7) ]) (t [ "movie"; "title" ]);
  Alcotest.check edge_set "T(@actor.actor)" (Edge_set.of_list [ (9, 1); (9, 3) ]) (t [ "@actor"; "actor" ]);
  Alcotest.check edge_set "T(director.name)" (Edge_set.of_list [ (5, 8) ]) (t [ "director"; "name" ]);
  (* cyclic traversal terminates: @movie.movie.@actor.actor.@movie.movie *)
  Alcotest.check edge_set "long cyclic path"
    (Edge_set.of_list [ (10, 6) ])
    (t [ "@movie"; "movie"; "@actor"; "actor"; "@movie"; "movie" ])

let test_edges_with_label () =
  let g = F.movie_db () in
  Alcotest.check edge_set "actor edges"
    (Edge_set.of_list [ (0, 1); (0, 3); (9, 1); (9, 3) ])
    (Data_graph.edges_with_label g (F.label g "actor"));
  Alcotest.check edge_set "movie edges"
    (Edge_set.of_list [ (0, 6); (5, 6); (10, 6) ])
    (Data_graph.edges_with_label g (F.label g "movie"));
  (* length-1 reachability coincides with the label grouping *)
  Alcotest.check edge_set "consistency"
    (Data_graph.reachable_by_label_path g [ F.label g "name" ])
    (Data_graph.edges_with_label g (F.label g "name"))

let test_iter_in () =
  let g = F.movie_db () in
  let incoming = ref [] in
  Data_graph.iter_in g 6 (fun l u -> incoming := (Label.to_string (Data_graph.labels g) l, u) :: !incoming);
  let sorted = List.sort compare !incoming in
  Alcotest.(check (list (pair string int)))
    "movie node incoming"
    [ ("movie", 0); ("movie", 5); ("movie", 10) ]
    sorted

let test_in_out_degree_sum () =
  let g = F.movie_db () in
  let total_in = ref 0 in
  for v = 0 to Data_graph.n_nodes g - 1 do
    Data_graph.iter_in g v (fun _ _ -> incr total_in)
  done;
  Alcotest.(check int) "sum of in-degrees = edges" (Data_graph.n_edges g) !total_in

let test_idref_heuristic () =
  let g = F.movie_db () in
  let names =
    List.map (Label.to_string (Data_graph.labels g)) (Data_graph.idref_labels g) |> List.sort compare
  in
  Alcotest.(check (list string)) "idref labels" [ "@actor"; "@movie" ] names

let test_root_edge () =
  let g = F.movie_db () in
  Alcotest.check edge_set "root pseudo-edge"
    (Edge_set.of_list [ (Edge_set.null, 0) ])
    (Data_graph.root_edge g)

let test_unknown_nid_rejected () =
  let g = F.movie_db () in
  match Data_graph.value g 999 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- of_document: Section 3 encoding --- *)

let movie_xml =
  {|<MovieDB>
      <actor id="a1" movie="m1"><name>Kevin</name></actor>
      <actor id="a2"><name>Jeanne</name></actor>
      <director id="d1">
        <name>Reynolds</name>
        <movie id="m1" actor="a1 a2" year="1995"><title>Waterworld</title></movie>
      </director>
    </MovieDB>|}

let graph_of_xml ?id_attrs ?idref_attrs s =
  Data_graph.of_document ?id_attrs ?idref_attrs (Repro_xml.Xml_parser.parse_string s)

let test_of_document_basic () =
  let g = graph_of_xml ~idref_attrs:[ "movie"; "actor" ] movie_xml in
  (* elements: MovieDB, 2 actors, 2 names, director, dname, movie, title = 9
     plus @year leaf, @movie attr node, @actor attr node = 12 *)
  Alcotest.(check int) "nodes" 12 (Data_graph.n_nodes g);
  let labels = Data_graph.labels g in
  let l s =
    match Label.find labels s with
    | Some l -> l
    | None -> Alcotest.failf "label %s missing" s
  in
  (* reference edge carries the *target's* tag *)
  let via_at_actor = Data_graph.reachable_by_label_path g [ l "@actor"; l "actor"; l "name" ] in
  Alcotest.(check int) "names reachable through @actor" 2 (Edge_set.cardinal via_at_actor);
  let via_at_movie = Data_graph.reachable_by_label_path g [ l "@movie"; l "movie"; l "title" ] in
  Alcotest.(check int) "title reachable through @movie" 1 (Edge_set.cardinal via_at_movie)

let test_of_document_attrs_and_values () =
  let g = graph_of_xml ~idref_attrs:[ "movie"; "actor" ] movie_xml in
  let labels = Data_graph.labels g in
  let l s = Option.get (Label.find labels s) in
  (* ordinary attribute year becomes a leaf under @year *)
  let year_edges = Data_graph.edges_with_label g (l "@year") in
  Alcotest.(check int) "one @year edge" 1 (Edge_set.cardinal year_edges);
  let _, year_leaf = List.hd (Edge_set.to_list year_edges) in
  Alcotest.(check (option string)) "@year value" (Some "1995") (Data_graph.value g year_leaf);
  (* text-only element became a leaf with its text *)
  let title_edges = Data_graph.edges_with_label g (l "title") in
  let _, title_leaf = List.hd (Edge_set.to_list title_edges) in
  Alcotest.(check (option string)) "title value" (Some "Waterworld") (Data_graph.value g title_leaf)

let test_of_document_idref_labels () =
  let g = graph_of_xml ~idref_attrs:[ "movie"; "actor" ] movie_xml in
  Alcotest.(check int) "2 idref labels" 2 (List.length (Data_graph.idref_labels g))

let test_of_document_id_not_an_edge () =
  let g = graph_of_xml ~idref_attrs:[ "movie"; "actor" ] movie_xml in
  Alcotest.(check (option int)) "@id never interned" None (Label.find (Data_graph.labels g) "@id")

let test_of_document_dangling_ref () =
  let g = graph_of_xml ~idref_attrs:[ "ref" ] {|<r><a id="x"/><b ref="nope"/></r>|} in
  (* dangling ref dropped: only r, a, b *)
  Alcotest.(check int) "nodes" 3 (Data_graph.n_nodes g);
  Alcotest.(check int) "edges" 2 (Data_graph.n_edges g)

let test_of_document_no_idref_config () =
  (* without idref_attrs, 'movie'/'actor' attrs become plain value leaves *)
  let g = graph_of_xml movie_xml in
  let labels = Data_graph.labels g in
  Alcotest.(check bool) "@movie exists as value leaf" true (Label.find labels "@movie" <> None);
  Alcotest.(check int) "no idref labels" 0 (List.length (Data_graph.idref_labels g))

let test_graph_stats () =
  let g = F.movie_db () in
  let s = Graph_stats.compute g in
  Alcotest.(check int) "nodes" 11 s.Graph_stats.nodes;
  Alcotest.(check int) "edges" 14 s.Graph_stats.edges;
  (* labels: actor, name, director, movie, title, @actor, @movie *)
  Alcotest.(check int) "labels" 7 s.Graph_stats.labels;
  Alcotest.(check int) "idref labels" 2 s.Graph_stats.idref_labels

(* --- Subtree materialization --- *)

let movie_xml_for_subtree =
  {|<MovieDB><actor id="a1" movie="m1"><name>Kevin</name></actor><director id="d1"><name>Reynolds</name><movie id="m1" actor="a1"><title>Waterworld</title></movie></director></MovieDB>|}

let test_subtree_roundtrip_document () =
  let doc = Repro_xml.Xml_parser.parse_string movie_xml_for_subtree in
  let g = Data_graph.of_document ~idref_attrs:[ "movie"; "actor" ] doc in
  let rebuilt = Subtree.element ~tag:"MovieDB" g (Data_graph.root g) in
  (* re-encode the rebuilt XML: it must produce an identical graph *)
  let g' =
    Data_graph.of_document ~idref_attrs:[ "movie"; "actor" ]
      { Repro_xml.Xml_tree.decl = []; root = rebuilt }
  in
  Alcotest.(check int) "same node count" (Data_graph.n_nodes g) (Data_graph.n_nodes g');
  Alcotest.(check int) "same edge count" (Data_graph.n_edges g) (Data_graph.n_edges g')

let test_subtree_fragment () =
  let doc = Repro_xml.Xml_parser.parse_string movie_xml_for_subtree in
  let g = Data_graph.of_document ~idref_attrs:[ "movie"; "actor" ] doc in
  (* nid 1 is the first actor *)
  let xml = Subtree.to_xml_string g 1 in
  Alcotest.(check bool) "names the tag" true (String.length xml > 0 && String.sub xml 0 6 = "<actor");
  let frag = Repro_xml.Xml_parser.parse_string xml in
  Alcotest.(check (option string)) "idref attribute recovered" (Some "m1")
    (Repro_xml.Xml_tree.attr frag.root "movie");
  Alcotest.(check (option string)) "id attribute recovered" (Some "a1")
    (Repro_xml.Xml_tree.attr frag.root "id");
  Alcotest.(check string) "text value recovered" "Kevin" (Repro_xml.Xml_tree.text_content frag.root)

let test_subtree_default_tag () =
  let g = F.movie_db () in
  (* Builder graphs have no ids: references render as #nid placeholders *)
  let xml = Subtree.to_xml_string g 1 in
  Alcotest.(check bool) "placeholder reference" true
    (contains_sub xml "movie=\"#6\"")

let test_id_of () =
  let doc = Repro_xml.Xml_parser.parse_string movie_xml_for_subtree in
  let g = Data_graph.of_document ~idref_attrs:[ "movie"; "actor" ] doc in
  Alcotest.(check (option string)) "actor id" (Some "a1") (Data_graph.id_of g 1);
  Alcotest.(check (option string)) "root has no id" None (Data_graph.id_of g 0)

(* --- properties on random DAGs --- *)

let prop_t_path_chains =
  QCheck.Test.make ~count:150 ~name:"T(p.q) endpoints ⊆ step from T(p) endpoints" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let tbl = Data_graph.labels g in
      match Label.find tbl "l0", Label.find tbl "l1" with
      | Some l0, Some l1 ->
        let t01 = Data_graph.reachable_by_label_path g [ l0; l1 ] in
        let t0 = Data_graph.reachable_by_label_path g [ l0 ] in
        (* every edge in T(l0.l1) must start at an endpoint of T(l0) *)
        Edge_set.fold
          (fun ok u _ -> ok && Repro_util.Int_sorted.mem (Edge_set.endpoints t0) u)
          true t01
      | _ -> QCheck.assume_fail ())

(* --- semijoin properties against filter references --- *)

(* narrow nid range so parents repeat — the range-contiguity fast path in
   semijoin_parents only matters when a parent owns a run of edges *)
let gen_edge_set =
  QCheck.Gen.(
    map
      (fun pairs -> Edge_set.of_list pairs)
      (list_size (int_bound 400) (pair (int_bound 50) (int_bound 50))))

let arb_edge_set =
  QCheck.make ~print:(Format.asprintf "%a" Edge_set.pp) gen_edge_set

let gen_nid_set =
  QCheck.Gen.(map Repro_util.Int_sorted.of_unsorted (array_size (int_bound 30) (int_bound 60)))

let arb_semijoin_case =
  QCheck.make
    ~print:(fun (t, sp) ->
      Format.asprintf "%a / %s" Edge_set.pp t (QCheck.Print.(array int) sp))
    QCheck.Gen.(pair gen_edge_set gen_nid_set)

let filter_edges pred t =
  Edge_set.of_list (List.filter pred (Edge_set.to_list t))

let prop_semijoin_parents =
  QCheck.Test.make ~count:200 ~name:"semijoin_parents = filter by parent" arb_semijoin_case
    (fun (t, sp) ->
      Edge_set.equal
        (Edge_set.semijoin_parents t sp)
        (filter_edges (fun (u, _) -> Repro_util.Int_sorted.mem sp u) t))

let prop_semijoin_endpoints =
  QCheck.Test.make ~count:200 ~name:"semijoin_endpoints = endpoints of filter" arb_semijoin_case
    (fun (t, sp) ->
      Edge_set.semijoin_endpoints t sp
      = Edge_set.endpoints (filter_edges (fun (u, _) -> Repro_util.Int_sorted.mem sp u) t))

let prop_semijoin_children =
  QCheck.Test.make ~count:200 ~name:"semijoin_children = filter by child" arb_semijoin_case
    (fun (t, sc) ->
      Edge_set.equal
        (Edge_set.semijoin_children t sc)
        (filter_edges (fun (_, v) -> Repro_util.Int_sorted.mem sc v) t))

let prop_join_reference =
  QCheck.Test.make ~count:200 ~name:"join = filter by endpoints of lhs"
    (QCheck.pair arb_edge_set arb_edge_set)
    (fun (a, b) ->
      let eps = Edge_set.endpoints a in
      Edge_set.equal (Edge_set.join a b)
        (filter_edges (fun (u, _) -> Repro_util.Int_sorted.mem eps u) b))

let prop_length1_equals_grouping =
  QCheck.Test.make ~count:150 ~name:"T(l) = edges_with_label l" F.arb_dag
    (fun spec ->
      let g = F.dag_of_spec spec in
      let tbl = Data_graph.labels g in
      let ok = ref true in
      for l = 0 to Label.count tbl - 1 do
        if
          not
            (Edge_set.equal
               (Data_graph.reachable_by_label_path g [ l ])
               (Data_graph.edges_with_label g l))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "graph"
    [ ( "edge_set",
        [ Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
          Alcotest.test_case "pack bounds" `Quick test_pack_bounds;
          Alcotest.test_case "set ops" `Quick test_edge_set_ops;
          Alcotest.test_case "endpoints/parents" `Quick test_endpoints_parents;
          Alcotest.test_case "join" `Quick test_join
        ] );
      ( "label",
        [ Alcotest.test_case "interning" `Quick test_label_interning;
          Alcotest.test_case "attribute detection" `Quick test_label_attribute
        ] );
      ( "data_graph",
        [ Alcotest.test_case "movie_db shape" `Quick test_movie_db_shape;
          Alcotest.test_case "movie_db T(p)" `Quick test_movie_db_t_paths;
          Alcotest.test_case "edges_with_label" `Quick test_edges_with_label;
          Alcotest.test_case "iter_in" `Quick test_iter_in;
          Alcotest.test_case "in/out degree sum" `Quick test_in_out_degree_sum;
          Alcotest.test_case "idref heuristic" `Quick test_idref_heuristic;
          Alcotest.test_case "root_edge" `Quick test_root_edge;
          Alcotest.test_case "unknown nid rejected" `Quick test_unknown_nid_rejected
        ] );
      ( "of_document",
        [ Alcotest.test_case "basic encoding" `Quick test_of_document_basic;
          Alcotest.test_case "attrs and values" `Quick test_of_document_attrs_and_values;
          Alcotest.test_case "idref labels" `Quick test_of_document_idref_labels;
          Alcotest.test_case "id makes no edge" `Quick test_of_document_id_not_an_edge;
          Alcotest.test_case "dangling ref dropped" `Quick test_of_document_dangling_ref;
          Alcotest.test_case "no idref config" `Quick test_of_document_no_idref_config;
          Alcotest.test_case "graph stats" `Quick test_graph_stats
        ] );
      ( "subtree",
        [ Alcotest.test_case "document roundtrip" `Quick test_subtree_roundtrip_document;
          Alcotest.test_case "fragment" `Quick test_subtree_fragment;
          Alcotest.test_case "placeholder references" `Quick test_subtree_default_tag;
          Alcotest.test_case "id_of" `Quick test_id_of
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_t_path_chains;
          QCheck_alcotest.to_alcotest prop_length1_equals_grouping;
          QCheck_alcotest.to_alcotest prop_semijoin_parents;
          QCheck_alcotest.to_alcotest prop_semijoin_endpoints;
          QCheck_alcotest.to_alcotest prop_semijoin_children;
          QCheck_alcotest.to_alcotest prop_join_reference
        ] )
    ]
