(* Block-compressed extent codec: round-trip identity, header soundness
   (the skip test must never reject a block that holds a match — checked
   by equivalence against the Edge_set reference kernels), and corruption
   rejection, standalone and through the fault-injecting pager. *)

module EC = Repro_storage.Extent_codec
module ES = Repro_storage.Extent_store
module Pager = Repro_storage.Pager
module Buffer_pool = Repro_storage.Buffer_pool
module Fault = Repro_storage.Fault
module Cost = Repro_storage.Cost
module Edge_set = Repro_graph.Edge_set
module Int_sorted = Repro_util.Int_sorted

let edge_set = Alcotest.testable Edge_set.pp Edge_set.equal

(* arbitrary extents: duplicate-heavy (parent, child) pairs collapse to a
   sorted packed-edge set; sizes straddle several 128-edge blocks *)
let arb_pairs =
  QCheck.(list_of_size (Gen.int_bound 400) (pair (int_bound 40) (int_bound 3000)))

let set_of_pairs pairs = Edge_set.of_list pairs

let arb_probe = QCheck.(list_of_size (Gen.int_bound 60) (int_bound 45))

let sorted_probe l = Int_sorted.of_unsorted (Array.of_list l)

let with_view ?(page_size = 256) set f =
  let p = Pager.create ~page_size () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let store = ES.create ~codec:`Block pool in
  let h = ES.append store set in
  match ES.load_view store h with
  | Some v -> f v
  | None -> Alcotest.fail "block store must serve a view for a full extent"

let prop_codec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"encode/decode identity" arb_pairs (fun pairs ->
      let ints = (set_of_pairs pairs :> int array) in
      let b = EC.of_encoded (EC.encode ints) in
      EC.n_edges b = Array.length ints && EC.decode_all b = ints)

let prop_header_soundness =
  QCheck.Test.make ~count:200 ~name:"headers bound their block" arb_pairs (fun pairs ->
      let ints = (set_of_pairs pairs :> int array) in
      let b = EC.of_encoded (EC.encode ints) in
      let scratch = Array.make EC.block_edges 0 in
      let ok = ref true in
      for bi = 0 to EC.n_blocks b - 1 do
        let count = EC.decode_block b bi scratch in
        if count <> EC.block_count b bi then ok := false;
        for i = 0 to count - 1 do
          let parent = scratch.(i) lsr 31 and child = scratch.(i) land ((1 lsl 31) - 1) in
          if parent < EC.min_parent b bi || parent > EC.max_parent b bi then ok := false;
          if child < EC.min_child b bi || child > EC.max_child b bi then ok := false
        done
      done;
      !ok)

(* kernel equivalence IS the skip-test soundness property: a block
   wrongly skipped would drop exactly the edges the reference finds *)
let prop_semijoin_endpoints_equiv =
  QCheck.Test.make ~count:300 ~name:"view semijoin_endpoints = reference"
    QCheck.(pair arb_pairs arb_probe)
    (fun (pairs, probe) ->
      let set = set_of_pairs pairs in
      let frontier = sorted_probe probe in
      let expected = Edge_set.semijoin_endpoints set frontier in
      with_view set (fun v -> ES.view_semijoin_endpoints v frontier = expected))

let prop_endpoints_equiv =
  QCheck.Test.make ~count:200 ~name:"view endpoints = reference" arb_pairs (fun pairs ->
      let set = set_of_pairs pairs in
      with_view set (fun v -> ES.view_endpoints v = Edge_set.endpoints set))

let prop_semijoin_children_equiv =
  QCheck.Test.make ~count:300 ~name:"view semijoin_children = reference"
    QCheck.(pair arb_pairs (list_of_size (Gen.int_bound 60) (int_bound 3200)))
    (fun (pairs, probe) ->
      let set = set_of_pairs pairs in
      let children = sorted_probe probe in
      let expected = Edge_set.semijoin_children set children in
      with_view set (fun v -> Edge_set.equal (ES.view_semijoin_children v children) expected))

let test_blocks_actually_skip () =
  (* 1000 single-child parents = 8 blocks; a one-parent frontier decodes
     exactly the block holding it and skips the rest *)
  let set = Edge_set.of_list (List.init 1000 (fun i -> (i, i))) in
  with_view set (fun v ->
      let cost = Cost.create () in
      let out = ES.view_semijoin_endpoints ~cost v [| 5 |] in
      Alcotest.(check (array int)) "result" [| 5 |] out;
      Alcotest.(check int) "one block decoded" 1 cost.Cost.blocks_decoded;
      Alcotest.(check int) "the rest skipped" 7 cost.Cost.blocks_skipped;
      Alcotest.(check int) "edges charged lazily" EC.block_edges cost.Cost.extent_edges)

let test_truncation_rejected () =
  let ints = (Edge_set.of_list (List.init 300 (fun i -> (i / 9, i))) :> int array) in
  let blob = EC.encode ints in
  for len = 0 to String.length blob - 1 do
    match EC.of_encoded (String.sub blob 0 len) with
    | exception Invalid_argument _ -> ()
    | b ->
      (* header parse may succeed on a truncated payload; decoding must
         not *)
      (match EC.decode_all b with
       | exception Invalid_argument _ -> ()
       | _ -> Alcotest.failf "truncation to %d bytes accepted" len)
  done

let test_bitflip_rejected () =
  (* CRC-32 catches every single-bit error, wherever it lands *)
  let ints = (Edge_set.of_list (List.init 300 (fun i -> (i / 9, i))) :> int array) in
  let blob = EC.encode ints in
  for i = 0 to String.length blob - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string blob in
      Bytes.set b i (Char.chr (Char.code blob.[i] lxor (1 lsl bit)));
      match EC.of_encoded (Bytes.unsafe_to_string b) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "flip at byte %d bit %d accepted" i bit
    done
  done

let test_stored_corruption_detected () =
  (* a pager with no fault policy never checksums pages: the codec's own
     CRC is the last line of defense for a silently damaged stored blob *)
  let p = Pager.create ~page_size:128 () in
  let pool = Buffer_pool.create p ~capacity:8 in
  let store = ES.create ~codec:`Block ~cache_entries:0 pool in
  let set = Edge_set.of_list (List.init 300 (fun i -> (i / 9, i))) in
  let h = ES.append store set in
  Alcotest.check edge_set "clean load" set (ES.load store h);
  let first_page, first_off, _, _ = ES.handle_fields h in
  let buf = Pager.unsafe_borrow p first_page in
  Bytes.set buf (first_off + 5) (Char.chr (Char.code (Bytes.get buf (first_off + 5)) lxor 0x10));
  Buffer_pool.flush pool;
  (match ES.load store h with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "corrupted stored blob accepted");
  match ES.load_view store h with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "corrupted stored blob served as a view"

let test_fault_pager_heals_block_reads () =
  (* transient read faults are the pager's problem: its page checksums
     heal them before the codec ever sees the bytes *)
  let p = Pager.create ~page_size:128 () in
  let f = Fault.create ~seed:11 () in
  Pager.set_fault p (Some f);
  let pool = Buffer_pool.create p ~capacity:2 in
  let store = ES.create ~codec:`Block ~cache_entries:0 pool in
  let set = Edge_set.of_list (List.init 300 (fun i -> (i / 9, i))) in
  let h = ES.append store set in
  Fault.arm_random f ~prob:0.2 ~kinds:[ Fault.Read_flip; Fault.Short_read ];
  for _ = 1 to 20 do
    Buffer_pool.flush pool;
    Alcotest.check edge_set "heals under read faults" set (ES.load store h)
  done;
  Alcotest.(check bool) "faults actually fired" true (Fault.fired f)

let () =
  Alcotest.run "extent_codec"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_codec_roundtrip;
            prop_header_soundness;
            prop_semijoin_endpoints_equiv;
            prop_endpoints_equiv;
            prop_semijoin_children_equiv
          ] );
      ( "skipping", [ Alcotest.test_case "blocks skip" `Quick test_blocks_actually_skip ] );
      ( "corruption",
        [ Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
          Alcotest.test_case "bit flips rejected" `Quick test_bitflip_rejected;
          Alcotest.test_case "stored blob corruption" `Quick test_stored_corruption_detected;
          Alcotest.test_case "fault pager heals" `Quick test_fault_pager_heals_block_reads
        ] )
    ]
