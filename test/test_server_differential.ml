(* Server differential suite: N reader domains with seeded query streams
   against a live writer applying update batches and self-tuning
   refreshes, every change published as a fresh epoch.

   Correctness bar: each query a reader ran concurrently must be
   bit-identical (checksum and length) to a single-threaded naive-oracle
   replay pinned at the same epoch generation — snapshot isolation means
   a concurrent publish can change *which* generation serves a query, but
   never what that generation answers.

   Seeds come from SERVER_DIFF_SEEDS (comma-separated, default "1,2" —
   CI shards one seed per job). Replay a failure locally with
     SERVER_DIFF_SEEDS=N dune exec test/test_server_differential.exe *)

module Driver = Repro_server.Driver
module Server = Repro_server.Server
module Fixtures = Test_support.Fixtures

let seeds =
  match Sys.getenv_opt "SERVER_DIFF_SEEDS" with
  | None | Some "" -> [ 1; 2 ]
  | Some s ->
    List.map
      (fun tok ->
        match int_of_string_opt (String.trim tok) with
        | Some n -> n
        | None -> failwith (Printf.sprintf "SERVER_DIFF_SEEDS: bad token %S" tok))
      (String.split_on_char ',' s)

let config seed =
  { Driver.default_config with
    Driver.seed;
    readers = 3;
    queries_per_reader = 30;
    batches = 8;
    batch_size = 3;
    refresh_every_batches = 2
  }

let check_run seed () =
  let graph = Fixtures.movie_db () in
  let cfg = config seed in
  let report = Driver.run ~config:cfg graph in
  (* liveness: nobody crashed, nobody wedged, everyone got at least one
     full pass in (the last one always lands after the final publish) *)
  Alcotest.(check (list string))
    "no reader errors" []
    (Array.fold_left (fun acc o -> acc @ o.Driver.errors) [] report.Driver.outcomes);
  Alcotest.(check int) "no stalled readers" 0 (Driver.stalled_readers report);
  Array.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "reader %d completed passes" o.Driver.reader)
        true (o.Driver.passes >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "reader %d logged observations" o.Driver.reader)
        true (o.Driver.observations <> []))
    report.Driver.outcomes;
  (* the writer's schedule is deterministic: one publish per batch, one per
     forced refresh (every 2 batches), one final refresh *)
  let expected_publishes = cfg.Driver.batches + (cfg.Driver.batches / 2) + 1 in
  Alcotest.(check int) "publishes" expected_publishes report.Driver.publishes;
  Alcotest.(check int) "every publish recorded for the oracle"
    (expected_publishes + 1)
    (Array.length report.Driver.history);
  (* readers served across the publish stream: the warm-up barrier pins
     every reader's first pass at generation 1, and the final pass always
     lands after the last publish — both ends are deterministic *)
  let gen_lo, gen_hi = Driver.observed_generations report in
  Alcotest.(check int) "final generation observed" (expected_publishes + 1) gen_hi;
  Alcotest.(check int) "initial generation observed" 1 gen_lo;
  (* the differential core: every logged observation replays bit-identical
     on the single-threaded oracle at its pinned generation *)
  Alcotest.(check int) "oracle mismatches" 0 (Driver.verify_observations report);
  (* epoch hygiene: the run ends retired — nothing leaks, nothing lingers *)
  Alcotest.(check int) "retire list drained" 0
    report.Driver.registry_stats.Repro_server.Epoch_registry.retired_live;
  Alcotest.(check int) "no rollbacks on a fault-free run" 0
    report.Driver.registry_stats.Repro_server.Epoch_registry.rolled_back;
  (* attribution reconciliation: the driver's final drain means every
     observation that made it into the feedback buffer is attributed to
     exactly one serving generation — per-epoch totals must re-add to the
     global counters, and the per-epoch latency histograms must hold one
     sample per attributed query *)
  let server = report.Driver.server in
  let attribution = Server.attribution server in
  let attributed =
    List.fold_left (fun acc e -> acc + e.Server.ep_queries) 0 attribution
  in
  Alcotest.(check int) "attributed queries = feedback drained"
    (Server.feedback_drained server) attributed;
  Alcotest.(check int) "drained + dropped = queries observed"
    (Server.observed server)
    (Server.feedback_drained server);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "generation %d in served range" e.Server.ep_generation)
        true
        (e.Server.ep_generation >= gen_lo && e.Server.ep_generation <= gen_hi);
      Alcotest.(check int)
        (Printf.sprintf "generation %d latency samples" e.Server.ep_generation)
        e.Server.ep_queries
        (Repro_telemetry.Metrics.Histogram.count e.Server.ep_latency))
    attribution;
  (* the introspection document is well-formed JSON exposing the same
     totals the typed API just reconciled *)
  let module J = Repro_telemetry.Json in
  let doc =
    match J.parse (J.to_string (Server.introspect server)) with
    | Ok v -> v
    | Error m -> Alcotest.failf "introspect does not round-trip: %s" m
  in
  let get o k =
    match J.member k o with
    | Some v -> v
    | None -> Alcotest.failf "introspect: missing %S" k
  in
  let int_field o k =
    match J.to_float (get o k) with
    | Some f -> int_of_float f
    | None -> Alcotest.failf "introspect: %S is not a number" k
  in
  Alcotest.(check int) "introspect generation"
    (Server.generation server)
    (int_field (get doc "server") "generation");
  Alcotest.(check int) "introspect drained"
    (Server.feedback_drained server)
    (int_field (get doc "server") "feedback_drained");
  let attr_json =
    match J.to_list (get doc "attribution") with
    | Some l -> l
    | None -> Alcotest.failf "introspect: attribution is not an array"
  in
  Alcotest.(check int) "introspect epoch count"
    (List.length attribution)
    (List.length attr_json)

let () =
  let cases =
    List.map
      (fun seed ->
        Alcotest.test_case (Printf.sprintf "seed=%d" seed) `Quick (check_run seed))
      seeds
  in
  Alcotest.run "server-differential" [ ("readers-vs-oracle", cases) ]
