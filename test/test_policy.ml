(* Cost-benefit adaptation policy tests.

   The unit tests drive [Policy] directly with synthetic windows where
   every signal is chosen by hand, so the promote/retain arithmetic is
   checked against numbers computed on paper: min_support 0.1 over
   100-query windows gives base 10, promote edge 13, retain edge 7
   (hysteresis 0.3, before decay — every assertion below is on ratios,
   which decay preserves).

   The differential tests drive a policy-backed [Self_tuning] end to end
   and hold its answers against the naive evaluator before, during, and
   after promotion and eviction: adaptation must only ever move cost. *)

module F = Test_support.Fixtures
module G = Repro_graph.Data_graph
module Query = Repro_pathexpr.Query
module Naive_eval = Repro_pathexpr.Naive_eval
module Policy = Repro_adaptive.Policy
module Self_tuning = Repro_adaptive.Self_tuning

let config =
  { Policy.default_config with
    Policy.min_support = 0.1;
    decay = 0.6;
    hysteresis = 0.3;
    cost_weight = 1.0;
    cost_scale = 1.0
  }

let e_path = [ 1; 2 ] (* expensive: 10 page-equivalents per query *)
let c_path = [ 3; 4 ] (* cheap: 0.2 page-equivalents per query *)
let b_path = [ 5; 6 ] (* boundary: expensive but under the support bar *)
let filler = [ 9 ] (* length-1: APEX0-required, never a candidate *)

(* one window: [specs] = (path, queries, extent_pages, extent_edges) —
   padded with filler queries to exactly [total] so support levels are
   absolute fractions, like the drift workloads *)
let window ?(total = 100) t specs =
  let used = ref 0 in
  List.iter
    (fun (p, n, pages, edges) ->
      used := !used + n;
      for _ = 1 to n do
        Policy.observe t ~paths:[ p ] ~extent_pages:pages ~extent_edges:edges
          ~join_edges:0 ~latency:0.
      done)
    specs;
  for _ = 1 to total - !used do
    Policy.observe t ~paths:[ filler ] ~extent_pages:0 ~extent_edges:0
      ~join_edges:0 ~latency:0.
  done

let refresh t =
  let plan = Policy.plan t in
  Policy.commit t plan;
  plan

let test_promotes_expensive_rejects_cheap () =
  let t = Policy.create ~config () in
  (* E and C both at 2x the support threshold; B at 0.9x. E streams 10
     pages a query, C a fifth of a page. *)
  window t [ (e_path, 20, 10, 0); (c_path, 20, 0, 100); (b_path, 9, 10, 0) ];
  let plan = refresh t in
  Alcotest.(check (list (list int))) "only the expensive path promoted"
    [ e_path ] (Policy.promotions plan);
  Alcotest.(check (list (list int))) "nothing evicted" [] (Policy.evictions plan);
  Alcotest.(check bool) "decide keeps E" true
    (Policy.decide plan ~path:e_path ~count:0 ~is_new:false);
  Alcotest.(check bool) "decide drops the cheap-frequent path" false
    (Policy.decide plan ~path:c_path ~count:0 ~is_new:false);
  Alcotest.(check bool) "decide drops the boundary path" false
    (Policy.decide plan ~path:b_path ~count:0 ~is_new:false);
  Alcotest.(check bool) "length-1 always required" true
    (Policy.decide plan ~path:filler ~count:0 ~is_new:true);
  Alcotest.(check (list (list int))) "indexed set adopted" [ e_path ]
    (Policy.indexed_paths t);
  (* the cheap path's score is support * rel_cost = 20 * 0.2 = 4, far
     under the promote edge even though its support clears it *)
  Alcotest.(check bool) "cheap score under the edge" true (Policy.score t c_path < 13.)

let test_hysteresis_no_flap () =
  let t = Policy.create ~config () in
  (* promote E at 2x, with B already straddling the threshold *)
  window t [ (e_path, 20, 10, 0); (b_path, 9, 10, 0) ];
  let plan = refresh t in
  Alcotest.(check (list (list int))) "E promoted once" [ e_path ]
    (Policy.promotions plan);
  (* eight windows where E's support oscillates +-5% around the raw
     threshold (inside the band) and B straddles it from below: support-
     only mining flips both on nearly every window; the band holds E in
     and B out with zero state changes *)
  for i = 1 to 8 do
    let e_n = if i mod 2 = 0 then 11 else 9 in
    let b_n = if i mod 2 = 0 then 9 else 11 in
    window t [ (e_path, e_n, 10, 0); (b_path, b_n, 10, 0) ];
    let plan = refresh t in
    Alcotest.(check (list (list int))) "no promotions while oscillating" []
      (Policy.promotions plan);
    Alcotest.(check (list (list int))) "no evictions while oscillating" []
      (Policy.evictions plan);
    Alcotest.(check int) "last_changes reports converged" 0 (Policy.last_changes t)
  done;
  Alcotest.(check (list (list int))) "E still indexed" [ e_path ]
    (Policy.indexed_paths t);
  Alcotest.(check int) "exactly one promotion ever" 1 (Policy.total_promotions t);
  Alcotest.(check int) "no evictions ever" 0 (Policy.total_evictions t)

let test_cooling_path_evicted_once () =
  let t = Policy.create ~config () in
  window t [ (e_path, 20, 10, 0) ];
  ignore (refresh t);
  Alcotest.(check (list (list int))) "promoted" [ e_path ] (Policy.indexed_paths t);
  (* E's traffic stops entirely; its decayed support halves-ish per
     refresh and must cross the retain edge exactly once — and, because
     promotion is support-gated too, its still-large cost factor must not
     pull it back in on the next refresh (the flap this PR fixes) *)
  let eviction_rounds = ref [] in
  for i = 1 to 6 do
    window t [];
    let plan = refresh t in
    if Policy.evictions plan <> [] then eviction_rounds := i :: !eviction_rounds;
    Alcotest.(check (list (list int))) "never re-promoted" []
      (Policy.promotions plan)
  done;
  (match !eviction_rounds with
   | [ _ ] -> ()
   | rounds ->
     Alcotest.failf "expected exactly one eviction round, got %d"
       (List.length rounds));
  Alcotest.(check (list (list int))) "index empty after cooling" []
    (Policy.indexed_paths t);
  Alcotest.(check int) "one eviction total" 1 (Policy.total_evictions t)

let test_keep_set_subpath_closed () =
  let t = Policy.create ~config () in
  let long = [ 1; 2; 3 ] in
  window t [ (long, 20, 10, 0) ];
  let plan = refresh t in
  let kept = List.sort compare (Policy.keep_paths plan) in
  (* the long path's contiguous length-2 subpaths ride along even though
     no query hit them at promote level on their own *)
  Alcotest.(check (list (list int))) "closed under contiguous subpaths"
    [ [ 1; 2 ]; [ 1; 2; 3 ]; [ 2; 3 ] ] kept

(* --- differential: adaptation only moves cost, never answers --- *)

let check_query g tuner q =
  let got = Self_tuning.query tuner q in
  let want = Naive_eval.eval_query g q in
  let sort a = List.sort Int.compare (Array.to_list a) in
  Alcotest.(check (list int)) "matches naive oracle" (sort want) (sort got)

let policy_exn tuner =
  match Self_tuning.policy tuner with
  | Some p -> p
  | None -> Alcotest.fail "tuner should carry the policy"

let test_eviction_differential () =
  let g = F.movie_db () in
  (* cost_weight 0: a toy in-memory graph measures near-zero per-query
     cost, which the score gate would (correctly) never promote; this
     test targets eviction correctness, so degenerate to support +
     hysteresis and let the server-feedback test below exercise the
     cost-weighted gate with explicit measurements *)
  let policy = Policy.create ~config:{ config with Policy.cost_weight = 0. } () in
  let tuner =
    Self_tuning.create ~log_capacity:40 ~min_support:0.1 ~refresh_every:40
      ~policy g
  in
  let hot = Query.Qtype1 [ "actor"; "name" ] in
  let hot_path = F.path g [ "actor"; "name" ] in
  let background =
    [ Query.Qtype1 [ "movie"; "title" ]; Query.Qtype1 [ "director" ];
      Query.Qtype3 ([ "name" ], "Kevin"); Query.Qtype2 ("movie", "title") ]
  in
  (* phase A: the hot path at 50% of traffic — promoted *)
  for i = 1 to 120 do
    if i mod 2 = 0 then check_query g tuner hot
    else check_query g tuner (List.nth background (i mod 4))
  done;
  Alcotest.(check bool) "hot path promoted" true
    (List.mem hot_path (Policy.indexed_paths (policy_exn tuner)));
  (* phase B: the hot path's traffic stops; answers must stay correct
     through the eviction and after it *)
  for i = 1 to 240 do
    check_query g tuner (List.nth background (i mod 4))
  done;
  Alcotest.(check bool) "hot path evicted after cooling" false
    (List.mem hot_path (Policy.indexed_paths (policy_exn tuner)));
  Alcotest.(check bool) "at least one eviction committed" true
    (Policy.total_evictions (policy_exn tuner) >= 1);
  (* and the evicted path still answers correctly as an approximate hit *)
  check_query g tuner hot

let test_server_feedback_reaches_policy () =
  (* the serving path: readers evaluate elsewhere and report through
     record_external — the policy must see those signals too *)
  let g = F.movie_db () in
  let policy = Policy.create ~config () in
  let tuner =
    Self_tuning.create ~log_capacity:40 ~min_support:0.1 ~refresh_every:40
      ~policy g
  in
  let hot = Query.Qtype1 [ "actor"; "name" ] in
  for _ = 1 to 20 do
    Self_tuning.record_external tuner ~extent_pages:10 ~latency:1e-4 hot
  done;
  for _ = 1 to 20 do
    Self_tuning.record_external tuner ~extent_pages:0
      (Query.Qtype1 [ "director" ])
  done;
  Alcotest.(check bool) "window full" true (Self_tuning.due_for_refresh tuner);
  Self_tuning.force_refresh tuner;
  Alcotest.(check bool) "externally-observed path promoted" true
    (List.mem (F.path g [ "actor"; "name" ])
       (Policy.indexed_paths (policy_exn tuner)))

let test_config_validation () =
  let bad h = { config with Policy.hysteresis = h } in
  Alcotest.check_raises "hysteresis >= 1 rejected"
    (Invalid_argument "Policy.create: hysteresis must be in [0, 1)") (fun () ->
      ignore (Policy.create ~config:(bad 1.0) ()));
  Alcotest.check_raises "non-positive min_support rejected"
    (Invalid_argument "Policy.create: min_support must be positive") (fun () ->
      ignore
        (Policy.create ~config:{ config with Policy.min_support = 0. } ()))

(* --- the attribution substrate the policy scores from --- *)

module Cost = Repro_storage.Cost

module Attr = Repro_telemetry.Attribution.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

(* costs are small integers and latencies small dyadics (n/64), so window
   sums are exact and the properties below only tolerate the decay
   multiplications *)
let arb_observations =
  QCheck.(
    make
      ~print:Print.(list (triple int float float))
      Gen.(
        list_size (int_range 1 40)
          (triple (int_bound 7)
             (map float_of_int (int_bound 100))
             (map (fun n -> float_of_int n /. 64.) (int_bound 64)))))

let approx a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs b)

let feed t obs =
  List.iter
    (fun (k, c, l) ->
      Attr.observe_query t ~cost:c ~latency:l;
      Attr.observe t k ~cost:c ~latency:l)
    obs

let keys_of obs = List.sort_uniq compare (List.map (fun (k, _, _) -> k) obs)

let prop_decay_monotone =
  let arb =
    QCheck.(
      pair
        (make ~print:string_of_float Gen.(oneofl [ 0.; 0.25; 0.5; 0.9 ]))
        arb_observations)
  in
  QCheck.Test.make ~count:100 ~name:"empty rolls decay stats geometrically" arb
    (fun (decay, obs) ->
      let t = Attr.create ~decay () in
      feed t obs;
      Attr.roll t;
      let base = List.map (fun k -> (k, Attr.stats t k)) (keys_of obs) in
      let q0 = Attr.queries t in
      Attr.roll t;
      Attr.roll t;
      let expect = decay *. decay in
      let ok (k, (s : Attr.stats)) =
        let s' = Attr.stats t k in
        approx s'.Attr.support (expect *. s.Attr.support)
        && approx s'.Attr.cost (expect *. s.Attr.cost)
        && approx s'.Attr.latency (expect *. s.Attr.latency)
        (* monotone: support never grows across an empty window *)
        && s'.Attr.support <= s.Attr.support +. 1e-9
      in
      approx (Attr.queries t) (expect *. q0) && List.for_all ok base)

let prop_window_order_invariant =
  QCheck.Test.make ~count:100 ~name:"window stats are order-invariant"
    arb_observations (fun obs ->
      let run l =
        let t = Attr.create ~decay:0.5 () in
        feed t l;
        Attr.roll t;
        t
      in
      let a = run obs and b = run (List.rev obs) in
      let same k =
        let sa = Attr.stats a k and sb = Attr.stats b k in
        approx sa.Attr.support sb.Attr.support
        && approx sa.Attr.cost sb.Attr.cost
        && approx sa.Attr.latency sb.Attr.latency
      in
      approx (Attr.queries a) (Attr.queries b) && List.for_all same (keys_of obs))

(* [Policy.unit_cost] must stay the restriction of [Cost.weighted_total]
   to the three counters the feedback channel carries — the policy's
   page-equivalents are directly comparable to benchmark cost curves *)
let test_unit_cost_matches_weighted_total () =
  List.iter
    (fun (pages, ee, je) ->
      let c = Cost.create () in
      c.Cost.extent_pages <- pages;
      c.Cost.extent_edges <- ee;
      c.Cost.join_edges <- je;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "pages=%d ee=%d je=%d" pages ee je)
        (Cost.weighted_total c)
        (Policy.unit_cost ~extent_pages:pages ~extent_edges:ee ~join_edges:je))
    [ (0, 0, 0); (1, 0, 0); (0, 500, 0); (0, 0, 500); (3, 250, 750);
      (17, 9999, 1234) ]

let () =
  Alcotest.run "policy"
    [ ( "scoring",
        [ Alcotest.test_case "promote expensive, reject cheap" `Quick
            test_promotes_expensive_rejects_cheap;
          Alcotest.test_case "keep set subpath-closed" `Quick
            test_keep_set_subpath_closed;
          Alcotest.test_case "config validation" `Quick test_config_validation
        ] );
      ( "hysteresis",
        [ Alcotest.test_case "no flap at the boundary" `Quick
            test_hysteresis_no_flap;
          Alcotest.test_case "cooling path evicted exactly once" `Quick
            test_cooling_path_evicted_once
        ] );
      ( "differential",
        [ Alcotest.test_case "answers exact through evict" `Quick
            test_eviction_differential;
          Alcotest.test_case "server feedback reaches policy" `Quick
            test_server_feedback_reaches_policy
        ] );
      ( "attribution",
        [ QCheck_alcotest.to_alcotest prop_decay_monotone;
          QCheck_alcotest.to_alcotest prop_window_order_invariant;
          Alcotest.test_case "unit cost matches weighted total" `Quick
            test_unit_cost_matches_weighted_total
        ] )
    ]
