(* Exhaustive crash-point enumeration over the fault-injection layer.

   A schedule is one save/refresh/query lifecycle run against a pager with
   an attached {!Repro_storage.Fault} policy. The harness first runs the
   schedule in counting mode to learn how many injectable sites of the
   fault's op class it passes, then replays it once per site with the fault
   armed to fire exactly there. After each replay it disarms the policy,
   re-opens the snapshot as crash recovery would, and checks the guarantee
   tier the fault kind promises:

   - crash faults (Torn_write, Enospc) abort the schedule; if at least one
     commit completed, recovery must restore a committed epoch whose
     answers equal the naive-traversal oracle. Before the first commit,
     either nothing recovers or the interrupted commit actually made it to
     disk — both are consistent outcomes of a crash.
   - silent corruption (Write_flip) never produces a wrong answer: the
     schedule either completes with oracle-equal answers or surfaces
     [Invalid_argument] from checksum verification; recovery always
     succeeds (ping-pong slots mean one bit flip cannot take out both
     epochs).
   - transient corruption (Read_flip, Short_read) is healed by the pager's
     verified re-read: the schedule completes, answers equal the oracle.

   Failure strings carry the seed, kind and site so CI can publish an
   exact reproduction. *)

module Fault = Repro_storage.Fault
module Pager = Repro_storage.Pager
module Buffer_pool = Repro_storage.Buffer_pool
module Extent_store = Repro_storage.Extent_store
module Io_stats = Repro_storage.Io_stats
module Apex = Repro_apex.Apex
module Apex_query = Repro_apex.Apex_query
module Snapshot = Repro_apex.Apex_persist.Snapshot
module Query_log = Repro_workload.Query_log
module Naive_eval = Repro_pathexpr.Naive_eval
module Data_graph = Repro_graph.Data_graph
module Self_tuning = Repro_adaptive.Self_tuning

let page_size = 512

(* deliberately tiny: evictions force query evaluation back to the pager,
   multiplying the injectable read sites the matrix enumerates *)
let pool_capacity = 4
let min_support = 0.34

type outcome =
  | Completed
  | Crashed  (* Fault.Injected escaped: the simulated process death *)
  | Detected  (* Invalid_argument escaped: corruption caught by a checksum *)

type recovery =
  | Recovered of { epoch : int; bad_answers : int }
  | No_snapshot

type report = {
  kind : Fault.kind;
  sites : int;
  crashes : int;
  detected : int;
  completions : int;
  recoveries : int;
  read_retries : int;
  failures : string list;  (* empty = every site honored its guarantee *)
}

let all_kinds =
  [ Fault.Torn_write; Fault.Write_flip; Fault.Read_flip; Fault.Short_read; Fault.Enospc ]

let nid_arrays_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if v <> b.(i) then ok := false) a;
       !ok
     end

let oracle_answers graph queries =
  Array.map (fun q -> Naive_eval.eval_query graph q) queries

let report_to_string r =
  Printf.sprintf
    "%-11s sites=%-4d crashes=%d detected=%d completed=%d recovered=%d retries=%d failures=%d"
    (Fault.kind_name r.kind) r.sites r.crashes r.detected r.completions r.recoveries
    r.read_retries (List.length r.failures)

(* --- the save -> crash -> recover -> query schedule --- *)

(* Build APEX0, materialize, commit epoch 1; refresh against the query
   workload, re-materialize, commit epoch 2; answer every query. The fault
   policy is armed before the first page allocation, so environment setup
   is inside the matrix too. *)
let run_schedule ~seed ~arm graph queries oracle =
  let fault = Fault.create ~seed () in
  arm fault;
  let pager = Pager.create ~page_size () in
  Pager.set_fault pager (Some fault);
  let progress = ref 0 in
  let mismatches = ref 0 in
  let superblock = ref (-1) in
  let outcome =
    match
      (* the extent cache would serve decoded images from memory and mask
         on-page corruption — the matrix always reads through the pager *)
      let pool = Buffer_pool.create pager ~capacity:pool_capacity in
      let store = Extent_store.create ~cache_entries:0 pool in
      let snap = Snapshot.create store in
      superblock := Snapshot.superblock snap;
      let apex = Apex.build graph in
      Apex.materialize apex pool;
      ignore (Snapshot.commit snap apex : int);
      progress := 1;
      let log = Query_log.create ~capacity:256 in
      Array.iter (fun q -> Query_log.record_query log (Data_graph.labels graph) q) queries;
      Apex.refresh apex ~workload:(Query_log.to_workload log) ~min_support;
      Apex.materialize apex pool;
      ignore (Snapshot.commit snap apex : int);
      progress := 2;
      Array.iteri
        (fun i q ->
          if not (nid_arrays_equal (Apex_query.eval_query apex q) oracle.(i)) then
            incr mismatches)
        queries
    with
    | () -> Completed
    | exception Fault.Injected _ -> Crashed
    | exception Invalid_argument _ -> Detected
  in
  (fault, pager, !superblock, !progress, !mismatches, outcome)

(* What a restarted process does: fresh pool and store over the surviving
   pager, re-attach the snapshot by its superblock pid, load the newest
   complete epoch and answer the whole workload from it. *)
let recover fault pager superblock graph queries oracle =
  Fault.disarm fault;
  if superblock < 0 then No_snapshot
  else begin
    let pool = Buffer_pool.create pager ~capacity:pool_capacity in
    let store = Extent_store.create ~cache_entries:0 pool in
    let snap = Snapshot.attach store ~superblock in
    match Snapshot.load_latest snap graph with
    | apex ->
      Apex.materialize apex pool;
      let bad = ref 0 in
      Array.iteri
        (fun i q ->
          if not (nid_arrays_equal (Apex_query.eval_query apex q) oracle.(i)) then incr bad)
        queries;
      Recovered { epoch = Snapshot.epoch snap; bad_answers = !bad }
    | exception Invalid_argument _ -> No_snapshot
  end

let run_matrix ?(seed = 1) graph queries kind =
  let oracle = oracle_answers graph queries in
  let fault, _, _, _, mism, outcome =
    run_schedule ~seed ~arm:Fault.arm_count graph queries oracle
  in
  (match outcome with
   | Completed when mism = 0 -> ()
   | Completed | Crashed | Detected ->
     failwith "crash_matrix: counting pass must complete with oracle-equal answers");
  let sites = Fault.sites fault (Fault.op_of_kind kind) in
  let crashes = ref 0 and detected = ref 0 and completions = ref 0 in
  let recoveries = ref 0 and retries = ref 0 in
  let failures = ref [] in
  let fail site msg =
    failures :=
      Printf.sprintf "seed=%d kind=%s site=%d: %s" seed (Fault.kind_name kind) site msg
      :: !failures
  in
  for site = 0 to sites - 1 do
    let fault, pager, superblock, progress, mism, outcome =
      run_schedule ~seed ~arm:(fun f -> Fault.arm_at f kind ~site) graph queries oracle
    in
    retries := !retries + (Pager.stats pager).Io_stats.read_retries;
    (match outcome with
     | Crashed -> incr crashes
     | Detected -> incr detected
     | Completed -> incr completions);
    let recovery = recover fault pager superblock graph queries oracle in
    (match recovery with Recovered _ -> incr recoveries | No_snapshot -> ());
    (match kind with
     | Fault.Torn_write | Fault.Enospc ->
       (match outcome with
        | Crashed -> ()
        | Completed | Detected -> fail site "crash fault did not abort the schedule");
       (match (recovery, progress) with
        | Recovered { bad_answers = 0; epoch }, _ when epoch >= 1 -> ()
        | Recovered { bad_answers; epoch }, _ ->
          fail site
            (Printf.sprintf "recovered epoch %d but %d answers diverged from the oracle"
               epoch bad_answers)
        | No_snapshot, 0 -> ()
        | No_snapshot, p ->
          fail site (Printf.sprintf "nothing recovered after %d completed commits" p))
     | Fault.Write_flip ->
       (match outcome with
        | Crashed -> fail site "silent-corruption fault raised Injected"
        | Completed when mism > 0 ->
          fail site (Printf.sprintf "%d answers diverged without detection" mism)
        | Completed | Detected -> ());
       (match recovery with
        | Recovered { bad_answers = 0; _ } -> ()
        | Recovered { bad_answers; _ } ->
          fail site (Printf.sprintf "recovery served %d wrong answers" bad_answers)
        | No_snapshot -> fail site "a single bit flip defeated both commit slots")
     | Fault.Read_flip | Fault.Short_read ->
       (match outcome with
        | Completed when mism = 0 -> ()
        | Completed -> fail site (Printf.sprintf "%d answers diverged from the oracle" mism)
        | Crashed | Detected -> fail site "transient fault was not healed by retry");
       if not (Fault.fired fault) then fail site "armed fault never fired";
       (match recovery with
        | Recovered { bad_answers = 0; _ } -> ()
        | Recovered _ | No_snapshot -> fail site "recovery failed after a transient fault"))
  done;
  { kind;
    sites;
    crashes = !crashes;
    detected = !detected;
    completions = !completions;
    recoveries = !recoveries;
    read_retries = !retries;
    failures = List.rev !failures
  }

(* --- the self-tuning (graceful degradation) matrix --- *)

(* Write_flip is excluded: a landed flip on a materialized extent page is
   reported by the pager as [Invalid_argument] from the query path itself,
   which is storage honestly reporting corruption, not an index-consistency
   failure — the snapshot matrix above covers that contract. *)
let selftuning_kinds =
  [ Fault.Torn_write; Fault.Enospc; Fault.Read_flip; Fault.Short_read ]

(* Stream queries through a snapshot-backed {!Self_tuning} handle with a
   short refresh window. The policy is armed only after construction: the
   matrix targets steady-state operation, where every crash-class site sits
   inside a refresh and must be absorbed by rollback. *)
let run_selftuning_schedule ~seed ~arm graph queries oracle =
  let fault = Fault.create ~seed () in
  let pager = Pager.create ~page_size () in
  Pager.set_fault pager (Some fault);
  let pool = Buffer_pool.create pager ~capacity:pool_capacity in
  let store = Extent_store.create ~cache_entries:0 pool in
  let snap = Snapshot.create store in
  let st =
    Self_tuning.create ~log_capacity:64 ~min_support ~refresh_every:5 ~pool ~snapshot:snap
      graph
  in
  arm fault;
  let mismatches = ref 0 in
  let outcome =
    match
      Array.iteri
        (fun i q ->
          if not (nid_arrays_equal (Self_tuning.query st q) oracle.(i)) then
            incr mismatches)
        queries
    with
    | () -> Completed
    | exception Fault.Injected _ -> Crashed
    | exception Invalid_argument _ -> Detected
  in
  (fault, pager, st, !mismatches, outcome)

let run_selftuning_matrix ?(seed = 1) graph queries kind =
  let oracle = oracle_answers graph queries in
  let fault, _, st0, mism0, outcome0 =
    run_selftuning_schedule ~seed ~arm:Fault.arm_count graph queries oracle
  in
  (match outcome0 with
   | Completed when mism0 = 0 && Self_tuning.refreshes st0 > 0 -> ()
   | Completed | Crashed | Detected ->
     failwith "crash_matrix: self-tuning counting pass must complete and refresh");
  let sites = Fault.sites fault (Fault.op_of_kind kind) in
  let crashes = ref 0 and detected = ref 0 and completions = ref 0 in
  let retries = ref 0 in
  let failures = ref [] in
  let fail site msg =
    failures :=
      Printf.sprintf "selftuning seed=%d kind=%s site=%d: %s" seed (Fault.kind_name kind)
        site msg
      :: !failures
  in
  for site = 0 to sites - 1 do
    let fault, pager, st, mism, outcome =
      run_selftuning_schedule ~seed
        ~arm:(fun f -> Fault.arm_at f kind ~site)
        graph queries oracle
    in
    let stats = Pager.stats pager in
    retries := !retries + stats.Io_stats.read_retries;
    (match outcome with
     | Crashed -> incr crashes
     | Detected -> incr detected
     | Completed -> incr completions);
    (match outcome with
     | Completed when mism = 0 -> ()
     | Completed -> fail site (Printf.sprintf "%d answers diverged from the oracle" mism)
     | Crashed -> fail site "fault escaped the query loop as Injected"
     | Detected -> fail site "fault escaped the query loop as Invalid_argument");
    if not (Fault.fired fault) then fail site "armed fault never fired";
    (match kind with
     | Fault.Torn_write | Fault.Enospc ->
       if Self_tuning.aborted_refreshes st <> 1 then
         fail site
           (Printf.sprintf "expected exactly 1 aborted refresh, saw %d"
              (Self_tuning.aborted_refreshes st));
       if stats.Io_stats.refresh_aborts <> 1 then
         fail site
           (Printf.sprintf "Io_stats.refresh_aborts = %d, expected 1"
              stats.Io_stats.refresh_aborts)
     | Fault.Read_flip | Fault.Short_read ->
       if Self_tuning.aborted_refreshes st <> 0 then
         fail site "transient fault must heal, not abort a refresh"
     | Fault.Write_flip -> ())
  done;
  { kind;
    sites;
    crashes = !crashes;
    detected = !detected;
    completions = !completions;
    recoveries = 0;
    read_retries = !retries;
    failures = List.rev !failures
  }

(* --- the concurrent serving matrix --- *)

module Server = Repro_server.Server

(* Readers keep serving published epochs while the writer's refresh hits an
   injected fault mid-publish. Published epochs are unmaterialized deep
   copies, so the reader path never touches the pager: every armed site
   lands on the writer side (refresh / materialize / epoch commit) and must
   be absorbed there by snapshot rollback — the writer reaches its publish
   every round, possibly with the rolled-back index. The schedule is
   refresh-only (no data updates), so the oracle is constant: readers check
   every answer against it and must never observe a wrong answer, an
   exception, or a torn index, no matter where the fault fires. *)

let server_rounds = 3

let run_server_schedule ~seed ~arm graph queries oracle =
  let fault = Fault.create ~seed () in
  let pager = Pager.create ~page_size () in
  Pager.set_fault pager (Some fault);
  let pool = Buffer_pool.create pager ~capacity:pool_capacity in
  let store = Extent_store.create ~cache_entries:0 pool in
  let snap = Snapshot.create store in
  let server =
    Server.create ~log_capacity:64 ~min_support ~refresh_every:1_000_000 ~pool
      ~snapshot:snap graph
  in
  (* steady state: APEX0 is committed and published as generation 1; every
     armed site sits inside one of the refresh rounds below *)
  arm fault;
  let stop = Atomic.make false in
  let reader () =
    let served = ref 0 and bad = ref 0 in
    let errors = ref [] in
    let pass () =
      Array.iteri
        (fun i q ->
          match Server.query server q with
          | r ->
            incr served;
            if not (nid_arrays_equal r oracle.(i)) then incr bad
          | exception e -> errors := Printexc.to_string e :: !errors)
        queries
    in
    (* at least one full pass even if the writer wins the race outright *)
    pass ();
    while not (Atomic.get stop) do
      pass ()
    done;
    (!served, !bad, !errors)
  in
  let domains = Array.init 2 (fun _ -> Domain.spawn reader) in
  let outcome =
    match
      for _round = 1 to server_rounds do
        (* the refresh workload is recorded writer-side so the pager's op
           sequence — and with it the site count — is identical between the
           counting pass and every replay, independent of reader timing *)
        Array.iter
          (fun q -> Self_tuning.record_external (Server.tuner server) q)
          queries;
        ignore (Server.force_refresh server : int)
      done
    with
    | () -> Completed
    | exception Fault.Injected _ -> Crashed
    | exception Invalid_argument _ -> Detected
  in
  Atomic.set stop true;
  let readers = Array.map Domain.join domains in
  (fault, pager, Snapshot.superblock snap, server, readers, outcome)

let run_server_matrix ?(seed = 1) graph queries kind =
  let oracle = oracle_answers graph queries in
  let fault0, _, _, server0, readers0, outcome0 =
    run_server_schedule ~seed ~arm:Fault.arm_count graph queries oracle
  in
  (match outcome0 with
   | Completed
     when Self_tuning.refreshes (Server.tuner server0) = server_rounds
          && Array.for_all (fun (_, bad, errs) -> bad = 0 && errs = []) readers0 -> ()
   | Completed | Crashed | Detected ->
     failwith "crash_matrix: server counting pass must complete and refresh cleanly");
  let sites = Fault.sites fault0 (Fault.op_of_kind kind) in
  let crashes = ref 0 and detected = ref 0 and completions = ref 0 in
  let recoveries = ref 0 in
  let retries = ref 0 in
  let failures = ref [] in
  let fail site msg =
    failures :=
      Printf.sprintf "server seed=%d kind=%s site=%d: %s" seed (Fault.kind_name kind) site
        msg
      :: !failures
  in
  for site = 0 to sites - 1 do
    let fault, pager, superblock, server, readers, outcome =
      run_server_schedule ~seed
        ~arm:(fun f -> Fault.arm_at f kind ~site)
        graph queries oracle
    in
    let stats = Pager.stats pager in
    retries := !retries + stats.Io_stats.read_retries;
    (match outcome with
     | Crashed -> incr crashes
     | Detected -> incr detected
     | Completed -> incr completions);
    (* the writer never dies: with a snapshot every fault class is absorbed
       inside the refresh and the publish still happens *)
    (match outcome with
     | Completed -> ()
     | Crashed -> fail site "fault escaped the writer loop as Injected"
     | Detected -> fail site "fault escaped the writer loop as Invalid_argument");
    if not (Fault.fired fault) then fail site "armed fault never fired";
    (* readers never observe the fault at all *)
    Array.iteri
      (fun i (served, bad, errors) ->
        if errors <> [] then
          fail site (Printf.sprintf "reader %d observed %s" i (List.hd errors));
        if bad > 0 then
          fail site (Printf.sprintf "reader %d served %d wrong answers" i bad);
        if served = 0 then fail site (Printf.sprintf "reader %d starved" i))
      readers;
    (* publish cadence survives the fault: one generation per round on top
       of the initial publication *)
    if Server.generation server <> 1 + server_rounds then
      fail site
        (Printf.sprintf "generation %d after %d rounds (wanted %d)"
           (Server.generation server) server_rounds (1 + server_rounds));
    (match kind with
     | Fault.Torn_write | Fault.Enospc ->
       if Self_tuning.aborted_refreshes (Server.tuner server) <> 1 then
         fail site
           (Printf.sprintf "expected exactly 1 aborted refresh, saw %d"
              (Self_tuning.aborted_refreshes (Server.tuner server)));
       if stats.Io_stats.refresh_aborts <> 1 then
         fail site
           (Printf.sprintf "Io_stats.refresh_aborts = %d, expected 1"
              stats.Io_stats.refresh_aborts)
     | Fault.Read_flip | Fault.Short_read ->
       if Self_tuning.aborted_refreshes (Server.tuner server) <> 0 then
         fail site "transient fault must heal, not abort a refresh"
     | Fault.Write_flip -> ());
    (* what a restarted process finds: the newest complete epoch, serving
       oracle-equal answers *)
    (match recover fault pager superblock graph queries oracle with
     | Recovered { bad_answers = 0; _ } -> incr recoveries
     | Recovered { bad_answers; _ } ->
       fail site (Printf.sprintf "recovery served %d wrong answers" bad_answers)
     | No_snapshot -> fail site "no epoch survived a writer-side fault")
  done;
  { kind;
    sites;
    crashes = !crashes;
    detected = !detected;
    completions = !completions;
    recoveries = !recoveries;
    read_retries = !retries;
    failures = List.rev !failures
  }
