(* The serve benchmark: multi-client mixed read/write workload against the
   concurrent query server, reporting reader latency percentiles and epoch
   lifecycle counts as BENCH_SERVE.json.

   The run is also a correctness check: every logged reader observation is
   replayed against the naive single-threaded oracle pinned at the same
   generation, and the mismatch count lands in the JSON — a green serve
   bench is a differential pass, not just a timing. *)

module Driver = Repro_server.Driver
module Server = Repro_server.Server
module Dataset = Repro_datagen.Dataset
module Experiments = Repro_harness.Experiments
module Slo = Repro_telemetry.Slo
module Export = Repro_telemetry.Export
module Json = Repro_telemetry.Json

(* With --obs PREFIX the run turns the observability layer on — SLO
   monitor (default or --slo objectives), latency watchdog, auto incident
   dumps — and ends by writing the introspection document, a forced
   incident dump, and a Prometheus-style exposition next to the JSON
   report. The CI observability-smoke job validates these artifacts. *)
let obs_watchdog = 0.25  (* seconds; far above any healthy query *)

let run ?obs ?slo (config : Experiments.config) ~out =
  let spec =
    match config.Experiments.datasets with
    | spec :: _ -> Dataset.scaled spec config.Experiments.scale
    | [] -> failwith "serve: no dataset configured"
  in
  Printf.printf "serve: dataset %s (target %d nodes)\n%!" spec.Dataset.name
    spec.Dataset.target_nodes;
  let g = Dataset.build_graph spec in
  let driver_config =
    match obs with
    | None -> Driver.default_config
    | Some prefix ->
      { Driver.default_config with
        Driver.slo = Option.value slo ~default:Slo.default_objectives;
        watchdog = Some obs_watchdog;
        incident_path = Some (prefix ^ ".incident.json")
      }
  in
  let report = Driver.run ~config:driver_config g in
  let mismatches = Driver.verify_observations report in
  let json = Driver.report_json ~dataset:spec.Dataset.name ~checksum_mismatches:mismatches report in
  Out_channel.with_open_text out (fun oc -> output_string oc json);
  (match obs with
   | None -> ()
   | Some prefix ->
     let server = report.Driver.server in
     Server.incident_dump ~reason:"bench serve: forced dump" server
       (prefix ^ ".incident.json");
     Export.save_exposition (prefix ^ ".prom") (Server.metrics server);
     Out_channel.with_open_text (prefix ^ ".status.json") (fun oc ->
         output_string oc (Json.to_string (Server.introspect server));
         output_char oc '\n');
     Printf.printf "serve: wrote %s.incident.json, %s.prom, %s.status.json\n%!" prefix
       prefix prefix);
  let h = Driver.merged_latencies report in
  let q p = Repro_telemetry.Metrics.Histogram.quantile h p *. 1e6 in
  Printf.printf
    "serve: %d queries on %d readers across %d publishes — p50 %.1fus p99 %.1fus, %d errors, \
     %d stalls, %d oracle mismatches -> %s\n\
     %!"
    (Driver.total_queries report)
    report.Driver.config.Driver.readers report.Driver.publishes (q 0.5) (q 0.99)
    (Driver.total_errors report)
    (Driver.stalled_readers report)
    mismatches out;
  if Driver.total_errors report > 0 || Driver.stalled_readers report > 0 || mismatches > 0 then
    failwith "serve: reader errors, stalls, or oracle mismatches"
