(* The serve benchmark: multi-client mixed read/write workload against the
   concurrent query server, reporting reader latency percentiles and epoch
   lifecycle counts as BENCH_SERVE.json.

   The run is also a correctness check: every logged reader observation is
   replayed against the naive single-threaded oracle pinned at the same
   generation, and the mismatch count lands in the JSON — a green serve
   bench is a differential pass, not just a timing. *)

module Driver = Repro_server.Driver
module Dataset = Repro_datagen.Dataset
module Experiments = Repro_harness.Experiments

let run (config : Experiments.config) ~out =
  let spec =
    match config.Experiments.datasets with
    | spec :: _ -> Dataset.scaled spec config.Experiments.scale
    | [] -> failwith "serve: no dataset configured"
  in
  Printf.printf "serve: dataset %s (target %d nodes)\n%!" spec.Dataset.name
    spec.Dataset.target_nodes;
  let g = Dataset.build_graph spec in
  let report = Driver.run g in
  let mismatches = Driver.verify_observations report in
  let json = Driver.report_json ~dataset:spec.Dataset.name ~checksum_mismatches:mismatches report in
  Out_channel.with_open_text out (fun oc -> output_string oc json);
  let h = Driver.merged_latencies report in
  let q p = Repro_telemetry.Metrics.Histogram.quantile h p *. 1e6 in
  Printf.printf
    "serve: %d queries on %d readers across %d publishes — p50 %.1fus p99 %.1fus, %d errors, \
     %d stalls, %d oracle mismatches -> %s\n\
     %!"
    (Driver.total_queries report)
    report.Driver.config.Driver.readers report.Driver.publishes (q 0.5) (q 0.99)
    (Driver.total_errors report)
    (Driver.stalled_readers report)
    mismatches out;
  if Driver.total_errors report > 0 || Driver.stalled_readers report > 0 || mismatches > 0 then
    failwith "serve: reader errors, stalls, or oracle mismatches"
