(* Benchmark driver: regenerates every evaluation artifact of the paper
   (Tables 1-2, Figures 13-15) plus our ablations, and offers bechamel
   micro-benchmarks of the core operations.

   With no arguments it runs the whole experiment grid on all nine datasets
   at their Table 1 sizes with moderate query counts; `--full` switches to
   the paper's query counts (5000/500/1000), `--quick` to a 1/10-scale
   three-dataset smoke run. *)

module Experiments = Repro_harness.Experiments
module Dataset = Repro_datagen.Dataset
module Trace = Repro_telemetry.Trace
module Export = Repro_telemetry.Export

let standard =
  { Experiments.default with
    (* full-size data, moderate query batches so the grid completes in
       minutes; --full restores the paper's counts *)
    n_q1 = 500;
    n_q2 = 50;
    n_q3 = 100
  }

let resolve_config ~quick ~full ~scale ~datasets ~no_verify =
  let base =
    if quick then Experiments.quick
    else if full then Experiments.default
    else standard
  in
  let base = match scale with Some s -> { base with Experiments.scale = s } | None -> base in
  let base =
    match datasets with
    | [] -> base
    | names ->
      let specs =
        List.map
          (fun n ->
            match Dataset.by_name n with
            | Some s -> s
            | None -> failwith (Printf.sprintf "unknown dataset %s" n))
          names
      in
      { base with Experiments.datasets = specs }
  in
  if no_verify then { base with Experiments.verify = false } else base

let run_experiment ?json ?obs ?slo name config =
  match (name, json) with
  | "updates", _ ->
    (* --json overrides the default snapshot path *)
    Experiments.updates config ~out:(Option.value json ~default:"BENCH_PR4.json")
  | "serve", _ -> Serve.run ?obs ?slo config ~out:(Option.value json ~default:"BENCH_SERVE.json")
  | "drift", _ -> Drift_bench.run config ~out:(Option.value json ~default:"BENCH_DRIFT.json")
  | _, Some out -> Experiments.json_bench config ~out
  | _, None ->
  match name with
  | "all" -> Experiments.run_all config
  | "table1" -> ignore (Experiments.table1 (Experiments.create_context config))
  | "table2" -> ignore (Experiments.table2 (Experiments.create_context config))
  | "fig13" -> ignore (Experiments.fig13 (Experiments.create_context config))
  | "fig14" -> ignore (Experiments.fig14 (Experiments.create_context config))
  | "fig15" -> ignore (Experiments.fig15 (Experiments.create_context config))
  | "ablation" -> Experiments.ablation (Experiments.create_context config)
  | "faults" -> Experiments.fault_smoke config
  | "micro" -> Micro.run ()
  | other -> failwith (Printf.sprintf "unknown experiment %s" other)

open Cmdliner

let experiment =
  let doc =
    "Experiment to run: all, table1, table2, fig13, fig14, fig15, ablation, updates, serve, \
     faults, or micro."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"1/10-scale smoke run on one dataset per family.")

let full =
  Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale query counts (5000/500/1000).")

let scale =
  Arg.(value & opt (some float) None & info [ "scale" ] ~doc:"Dataset node-target factor.")

let datasets =
  Arg.(
    value
    & opt (list string) []
    & info [ "datasets" ] ~doc:"Comma-separated dataset names (default: all nine).")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip result verification against the naive evaluator.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Instead of the table experiments, write a machine-readable benchmark snapshot \
           (build time, Q1/Q2/Q3 latency, result checksums, cache hit rates) to $(docv).")

let obs =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs" ] ~docv:"PREFIX"
        ~doc:
          "(serve only) Run with the observability layer on — SLO monitor, latency \
           watchdog, auto incident dumps — and write $(docv).incident.json (flight-recorder \
           incident file), $(docv).prom (Prometheus-style exposition), and \
           $(docv).status.json (live introspection document).")

let slo =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "(serve, with --obs) SLO objectives as comma-separated name:pQQ:threshold_seconds \
           specs, e.g. q1:p99:0.005,q2:p99.9:0.02. Default: q1/q2/q3 at p99 <= 50ms.")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PREFIX"
        ~doc:
          "Record query-phase spans and adaptation events while the experiment runs, then \
           write $(docv).jsonl (JSONL event log) and $(docv).trace.json (Chrome trace_event \
           format — load into chrome://tracing or ui.perfetto.dev) and print per-phase \
           latency percentiles.")

(* large enough that a full nine-dataset sweep keeps every span; aggregate
   histograms survive a wrap regardless *)
let trace_capacity = 1 lsl 18

let finish_trace prefix =
  Trace.disable ();
  let jsonl = prefix ^ ".jsonl" and chrome = prefix ^ ".trace.json" in
  Export.save_jsonl jsonl;
  Export.save_chrome chrome;
  let st = Trace.stats () in
  Printf.printf "\n== trace: %d spans/events recorded (%d retained, %d lost to ring wrap)\n"
    st.Trace.recorded st.Trace.retained st.Trace.overwritten;
  Printf.printf "wrote %s and %s\n\n%s" jsonl chrome (Export.live_percentile_table ());
  let events =
    List.filter_map
      (fun (k, n) -> if Trace.kind_is_event k then Some (Trace.kind_name k, n) else None)
      (Trace.kind_counts ())
  in
  if events <> [] then
    Printf.printf "\nadaptation events:\n%s" (Export.event_table events)

let cmd =
  let run experiment quick full scale datasets no_verify json obs slo trace =
    let config = resolve_config ~quick ~full ~scale ~datasets ~no_verify in
    let slo =
      Option.map
        (fun spec ->
          match Repro_telemetry.Slo.parse_objectives spec with
          | Ok objectives -> objectives
          | Error msg -> failwith (Printf.sprintf "--slo: %s" msg))
        slo
    in
    match trace with
    | None -> run_experiment ?json ?obs ?slo experiment config
    | Some prefix ->
      Trace.enable ~capacity:trace_capacity ();
      Fun.protect
        ~finally:(fun () -> finish_trace prefix)
        (fun () -> run_experiment ?json ?obs ?slo experiment config)
  in
  Cmd.v
    (Cmd.info "apex-bench" ~doc:"APEX reproduction benchmarks")
    Term.(
      const run $ experiment $ quick $ full $ scale $ datasets $ no_verify $ json $ obs $ slo
      $ trace)

let () = exit (Cmd.eval cmd)
